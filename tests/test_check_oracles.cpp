// Sanity and cross-checks for the reference oracles themselves
// (src/check/oracles.hpp). An oracle that silently disagrees with the
// textbook definitions would poison every differential test built on it,
// so the linear-scan LPM oracle is checked against BOTH production LPM
// implementations, and the analytic token bucket against closed-form
// expectations.
#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "tables/lpm_dir24.hpp"
#include "tables/lpm_trie.hpp"

namespace albatross {
namespace {

class LpmOracleDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmOracleDifferential, AgreesWithDir24AndTrie) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  LpmDir24 dir24;
  LpmTrie trie;
  check::LinearLpmOracle oracle;

  struct Rule {
    Ipv4Address prefix;
    std::uint8_t depth;
  };
  std::vector<Rule> live;

  const auto random_prefix = [&rng] {
    const std::uint32_t base =
        static_cast<std::uint32_t>(rng.next_below(4)) << 28;
    return Ipv4Address{base |
                       static_cast<std::uint32_t>(rng.next_below(1 << 20))};
  };

  for (int step = 0; step < 1500; ++step) {
    if (rng.next_below(10) < 6 || live.empty()) {
      const auto depth =
          static_cast<std::uint8_t>(8 + rng.next_below(25));  // 8..32
      const auto prefix = random_prefix();
      const auto hop = static_cast<NextHop>(rng.next_below(kMaxNextHop));
      const bool ok = oracle.add(prefix, depth, hop);
      ASSERT_EQ(dir24.add(prefix, depth, hop), ok) << "step=" << step;
      ASSERT_EQ(trie.add(prefix, depth, hop), ok) << "step=" << step;
      live.push_back(Rule{prefix, depth});
    } else {
      const std::size_t i = rng.next_below(live.size());
      const Rule r = live[i];
      const bool ok = oracle.remove(r.prefix, r.depth);
      ASSERT_EQ(dir24.remove(r.prefix, r.depth), ok) << "step=" << step;
      ASSERT_EQ(trie.remove(r.prefix, r.depth), ok) << "step=" << step;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }

    for (int probe = 0; probe < 4; ++probe) {
      Ipv4Address addr;
      if (!live.empty() && probe < 3) {
        const Rule& r = live[rng.next_below(live.size())];
        addr = Ipv4Address{r.prefix.addr ^ static_cast<std::uint32_t>(
                                               rng.next_below(1 << 10))};
      } else {
        addr = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
      }
      const auto want = oracle.lookup(addr);
      ASSERT_EQ(dir24.lookup(addr), want)
          << "addr=" << addr.to_string() << " step=" << step;
      ASSERT_EQ(trie.lookup(addr), want)
          << "addr=" << addr.to_string() << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmOracleDifferential,
                         ::testing::Values(3ull, 7ull, 42ull));

TEST(LpmOracle, RejectsInvalidRules) {
  check::LinearLpmOracle oracle;
  EXPECT_FALSE(oracle.add(Ipv4Address::from_octets(10, 0, 0, 0), 33, 1));
  EXPECT_FALSE(
      oracle.add(Ipv4Address::from_octets(10, 0, 0, 0), 8, kMaxNextHop + 1));
  EXPECT_EQ(oracle.rule_count(), 0u);
  EXPECT_FALSE(oracle.remove(Ipv4Address::from_octets(10, 0, 0, 0), 8));
}

TEST(LpmOracle, LongestPrefixWinsAndReexposesOnDelete) {
  check::LinearLpmOracle oracle;
  const auto addr = Ipv4Address::from_octets(10, 1, 2, 3);
  ASSERT_TRUE(oracle.add(Ipv4Address::from_octets(10, 0, 0, 0), 8, 100));
  ASSERT_TRUE(oracle.add(Ipv4Address::from_octets(10, 1, 0, 0), 16, 200));
  EXPECT_EQ(oracle.lookup(addr), 200u);
  ASSERT_TRUE(oracle.remove(Ipv4Address::from_octets(10, 1, 0, 0), 16));
  EXPECT_EQ(oracle.lookup(addr), 100u);
  ASSERT_TRUE(oracle.remove(Ipv4Address::from_octets(10, 0, 0, 0), 8));
  EXPECT_EQ(oracle.lookup(addr), std::nullopt);
}

TEST(TokenBucketOracle, ClosedFormRefillAndBurstCap) {
  check::TokenBucketOracle oracle(1e6, 100.0);  // 1 Mpps, 100-pkt bucket
  // Starts full; draining 100 packets at t=0 empties it.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(oracle.consume(Nanos{0}));
  EXPECT_FALSE(oracle.consume(Nanos{0}));
  // 1 Mpps == 1 token/us: after 50us exactly ~50 tokens are back.
  EXPECT_NEAR(oracle.level_at(50 * kMicrosecond), 50.0, 1e-6);
  // The bucket never exceeds its depth no matter how long it idles.
  EXPECT_NEAR(oracle.level_at(10 * kSecond), 100.0, 1e-6);
}

TEST(TokenBucketOracle, ResyncAbsorbsBoundaryDisagreement) {
  check::TokenBucketOracle oracle(1e6, 10.0);
  // Observed implementation passed a packet the oracle would have
  // dropped: resync zeroes the allowance (the packet was spent).
  oracle.resync(true);
  EXPECT_NEAR(oracle.level_at(Nanos{0}), 0.0, 1e-9);
  // Observed drop refunds the charge, capped at the bucket depth.
  oracle.resync(false, 100.0);
  EXPECT_NEAR(oracle.level_at(Nanos{0}), 10.0, 1e-9);
}

TEST(TokenBucketOracle, ZeroRateMeansUnlimited) {
  check::TokenBucketOracle oracle(0.0, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(oracle.consume(Nanos{0}));
}

TEST(ReorderSortOracle, ExpectedSequenceIsSortedKeptPsns) {
  check::ReorderSortOracle oracle;
  oracle.record(5, false);
  oracle.record(3, true);  // drop-flagged: excluded
  oracle.record(1, false);
  oracle.record(4, false);
  EXPECT_EQ(oracle.kept_count(), 3u);
  EXPECT_EQ(oracle.expected(), (std::vector<Psn>{1, 4, 5}));
}

}  // namespace
}  // namespace albatross
