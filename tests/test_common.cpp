// Unit tests for the common substrate: hashes (including the published
// Microsoft RSS verification vectors), RNG/distributions, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/endian.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace albatross {
namespace {

TEST(Endian, RoundTrip) {
  std::uint8_t buf[8];
  store_be16(buf, 0xBEEF);
  EXPECT_EQ(load_be16(buf), 0xBEEF);
  store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);
  store_be64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFull);
  store_le32(buf, 0xCAFEBABE);
  EXPECT_EQ(load_le32(buf), 0xCAFEBABEu);
  store_le64(buf, 0x1122334455667788ull);
  EXPECT_EQ(load_le64(buf), 0x1122334455667788ull);
}

TEST(Endian, ByteOrderOnWire) {
  std::uint8_t buf[4];
  store_be32(buf, 0x0A0B0C0D);
  EXPECT_EQ(buf[0], 0x0A);
  EXPECT_EQ(buf[3], 0x0D);
  store_le32(buf, 0x0A0B0C0D);
  EXPECT_EQ(buf[0], 0x0D);
  EXPECT_EQ(buf[3], 0x0A);
}

// Published Microsoft RSS verification suite vectors (IPv4 with TCP/UDP
// port extension). Source: the canonical "Verifying the RSS hash
// calculation" table.
struct RssVector {
  FiveTuple tuple;
  std::uint32_t expected;
};

class ToeplitzVectors : public ::testing::TestWithParam<RssVector> {};

TEST_P(ToeplitzVectors, MatchesPublishedHash) {
  EXPECT_EQ(rss_hash(GetParam().tuple), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Microsoft, ToeplitzVectors,
    ::testing::Values(
        // dst 161.142.100.80:1766 <- src 66.9.149.187:2794
        RssVector{FiveTuple{Ipv4Address::from_octets(66, 9, 149, 187),
                            Ipv4Address::from_octets(161, 142, 100, 80),
                            2794, 1766, IpProto::kTcp},
                  0x51ccc178u},
        // dst 65.69.140.83:4739 <- src 199.92.111.2:14230
        RssVector{FiveTuple{Ipv4Address::from_octets(199, 92, 111, 2),
                            Ipv4Address::from_octets(65, 69, 140, 83),
                            14230, 4739, IpProto::kTcp},
                  0xc626b0eau},
        // dst 12.22.207.184:38024 <- src 24.19.198.95:12898
        RssVector{FiveTuple{Ipv4Address::from_octets(24, 19, 198, 95),
                            Ipv4Address::from_octets(12, 22, 207, 184),
                            12898, 38024, IpProto::kTcp},
                  0x5c2b394au},
        // dst 209.142.163.6:2217 <- src 38.27.205.30:48228
        RssVector{FiveTuple{Ipv4Address::from_octets(38, 27, 205, 30),
                            Ipv4Address::from_octets(209, 142, 163, 6),
                            48228, 2217, IpProto::kTcp},
                  0xafc7327fu},
        // dst 202.188.127.2:1303 <- src 153.39.163.191:44251
        RssVector{FiveTuple{Ipv4Address::from_octets(153, 39, 163, 191),
                            Ipv4Address::from_octets(202, 188, 127, 2),
                            44251, 1303, IpProto::kTcp},
                  0x10e828a2u}));

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vectors (CRC32C of 32 zero bytes / 32 0xff bytes).
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  // "123456789" -> 0xe3069283 (Castagnoli check value).
  const std::string digits = "123456789";
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(digits.data()),
                digits.size())),
            0xe3069283u);
}

TEST(Crc32c, FiveTupleStability) {
  FiveTuple t{Ipv4Address::from_octets(10, 0, 0, 1),
              Ipv4Address::from_octets(10, 0, 0, 2), 1234, 80,
              IpProto::kUdp};
  const auto h1 = crc32c(t);
  const auto h2 = crc32c(t);
  EXPECT_EQ(h1, h2);
  t.src_port = 1235;
  EXPECT_NE(crc32c(t), h1);
}

TEST(Mix64, Avalanche) {
  // Single-bit input changes should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x1234567890abcdefull);
    const std::uint64_t b = mix64(0x1234567890abcdefull ^ (1ull << bit));
    total += std::popcount(a ^ b);
  }
  const double avg = static_cast<double>(total) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto r = rng.next_range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.next_gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ParetoTail) {
  Rng rng(17);
  int above2x = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_pareto(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    if (v > 2.0) ++above2x;
  }
  // P(X > 2) = (1/2)^2 = 0.25 for Pareto(xm=1, alpha=2).
  EXPECT_NEAR(static_cast<double>(above2x) / n, 0.25, 0.01);
}

TEST(Zipf, SkewConcentratesMass) {
  Rng rng(19);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 should dominate rank 99 by roughly 100x under alpha=1.
  EXPECT_GT(counts[0], counts[99] * 30);
  // PMF sums to ~1.
  double mass = 0;
  for (std::size_t i = 0; i < 1000; ++i) mass += zipf.pmf(i);
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Zipf, UniformWhenAlphaZero) {
  Rng rng(23);
  ZipfSampler zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(LogHistogram, ExactSmallValues) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(LogHistogram, QuantileAccuracy) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-linear buckets guarantee a few percent relative error.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 4000.0);
  EXPECT_EQ(h.quantile(1.0), 100000u);
}

TEST(LogHistogram, FractionAbove) {
  LogHistogram h;
  for (int i = 0; i < 99; ++i) h.record(10);
  h.record(1'000'000);
  EXPECT_NEAR(h.fraction_above(100'000), 0.01, 1e-6);
}

TEST(LogHistogram, MergeAndClear) {
  LogHistogram a, b;
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1000u);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0u);
}

TEST(LogHistogram, MeanTracksSum) {
  LogHistogram h;
  h.record_n(10, 5);
  h.record_n(20, 5);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_NEAR(s.variance(), 9.1666, 1e-3);  // sample variance of 1..10
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Types, MacRoundTrip) {
  const auto m = MacAddress::from_u64(0x001122334455ull);
  EXPECT_EQ(m.to_u64(), 0x001122334455ull);
  EXPECT_EQ(m.bytes[0], 0x00);
  EXPECT_EQ(m.bytes[5], 0x55);
}

TEST(Types, Ipv4Formatting) {
  EXPECT_EQ(Ipv4Address::from_octets(192, 168, 1, 10).to_string(),
            "192.168.1.10");
}

TEST(Types, PaperConstants) {
  EXPECT_EQ(kReorderQueueEntries, 4096u);
  EXPECT_EQ(kReorderTimeout, 100 * kMicrosecond);
  EXPECT_EQ(kPsnIndexMask, 0xfffu);
}

}  // namespace
}  // namespace albatross
