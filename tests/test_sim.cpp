// Discrete-event engine, descriptor rings, NUMA and cache-model tests.
#include <gtest/gtest.h>

#include "sim/cache_model.hpp"
#include "sim/event_loop.hpp"
#include "sim/numa.hpp"
#include "sim/ring.hpp"

namespace albatross {
namespace {

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(Nanos{300}, [&] { order.push_back(3); });
  loop.schedule_at(Nanos{100}, [&] { order.push_back(1); });
  loop.schedule_at(Nanos{200}, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), NanoTime{300});
  EXPECT_EQ(loop.events_processed(), 3u);
}

TEST(EventLoop, FifoAmongSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(Nanos{50}, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, NestedSchedulingAndRunUntil) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(Nanos{10}, [&] {
    ++fired;
    loop.schedule_in(Nanos{10}, [&] { ++fired; });
    loop.schedule_in(Nanos{1000}, [&] { ++fired; });
  });
  loop.run_until(Nanos{500});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), NanoTime{500});
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_at(Nanos{100}, [] {});
  loop.run();
  NanoTime seen = NanoTime{-1};
  loop.schedule_at(Nanos{5}, [&] { seen = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(seen, NanoTime{100});
}

TEST(EventLoop, PeriodicStopsWhenFalse) {
  EventLoop loop;
  int ticks = 0;
  schedule_periodic(loop, Nanos{10}, [&] { return ++ticks < 5; });
  loop.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(loop.now(), NanoTime{50});
}

TEST(PacketRing, DropsWhenFullAndCountsWatermark) {
  PacketRing ring(2);
  EXPECT_EQ(ring.push(Packet::make_synthetic(FiveTuple{}, 0, 64)),
            PushResult::kOk);
  EXPECT_EQ(ring.push(Packet::make_synthetic(FiveTuple{}, 0, 64)),
            PushResult::kOk);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.push(Packet::make_synthetic(FiveTuple{}, 0, 64)),
            PushResult::kFull);
  EXPECT_EQ(ring.stats().drops, 1u);
  EXPECT_EQ(ring.stats().high_watermark, 2u);
  EXPECT_DOUBLE_EQ(ring.occupancy(), 1.0);
  EXPECT_NE(ring.pop(), nullptr);
  EXPECT_NE(ring.pop(), nullptr);
  EXPECT_EQ(ring.pop(), nullptr);
  EXPECT_EQ(ring.stats().dequeued, 2u);
}

TEST(Numa, LocalVsRemoteLatency) {
  NumaTopology numa;
  EXPECT_LT(numa.dram_latency(NumaNodeId{0}, NumaNodeId{0}), numa.dram_latency(NumaNodeId{0}, NumaNodeId{1}));
  EXPECT_EQ(numa.node_of_core(CoreId{0}), NumaNodeId{0});
  EXPECT_EQ(numa.node_of_core(CoreId{47}), NumaNodeId{0});
  EXPECT_EQ(numa.node_of_core(CoreId{48}), NumaNodeId{1});
  EXPECT_EQ(numa.total_cores(), 96);
}

TEST(Numa, MemoryFrequencyScalesLatency) {
  NumaTopology numa;
  const auto at4800 = numa.dram_latency(NumaNodeId{0}, NumaNodeId{0});
  numa.set_memory_mts(5600);
  const auto at5600 = numa.dram_latency(NumaNodeId{0}, NumaNodeId{0});
  EXPECT_LT(at5600, at4800);
  // ~= 4800/5600 scaling.
  EXPECT_NEAR(static_cast<double>(at5600.count()),
              static_cast<double>(at4800.count()) * 4800.0 / 5600.0, 2.0);
}

TEST(NumaBalancer, DisabledNeverStalls) {
  NumaBalancer::Config cfg;
  cfg.enabled = false;
  NumaBalancer bal(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(bal.maybe_stall(i * kMillisecond, 1.0), NanoTime{});
  }
}

TEST(NumaBalancer, StallsAppearUnderHighLoadOnly) {
  NumaBalancer::Config cfg;
  cfg.scan_period = kMillisecond;
  NumaBalancer low(cfg), high(cfg);
  NanoTime low_stall = Nanos{0}, high_stall = Nanos{0};
  for (int i = 0; i < 5000; ++i) {
    low_stall += low.maybe_stall(i * kMillisecond, 0.1);
    high_stall += high.maybe_stall(i * kMillisecond, 0.95);
  }
  EXPECT_GT(high_stall, low_stall * 10);
  EXPECT_GT(high.stalls(), 100u);
}

TEST(CacheModel, HitRateMatchesZipfCoverage) {
  CacheModel cache;
  // Paper regime: ~200MB cache over multi-GB tables -> 30-45% L3 hits.
  cache.set_working_set_bytes(4ull << 30);
  EXPECT_GT(cache.l3_hit_rate(), 0.30);
  EXPECT_LT(cache.l3_hit_rate(), 0.45);
  // Tiny working set: everything fits.
  cache.set_working_set_bytes(100 << 20);
  EXPECT_DOUBLE_EQ(cache.l3_hit_rate(), 1.0);
}

TEST(CacheModel, SampledLatencyMatchesMean) {
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  Rng rng(3);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>((cache.access_latency(rng, NumaNodeId{0}, NumaNodeId{0}, false)).count());
  }
  EXPECT_NEAR(sum / n, cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, false), 1.5);
}

TEST(CacheModel, FlowAffinityIsMarginal) {
  // The entire RSS-vs-PLB locality difference must stay sub-1% of the
  // access cost — the §4.2 result.
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double plb = cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, false);
  const double rss = cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, true);
  EXPECT_LT(rss, plb);
  EXPECT_LT((plb - rss) / plb, 0.01);
}

TEST(CacheModel, CrossNumaCostsMore) {
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  EXPECT_GT(cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{1}, false),
            cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, false));
}

}  // namespace
}  // namespace albatross
