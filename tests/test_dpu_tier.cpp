// Unit + property tests for the DPU co-offload tier (docs/DPU_TIER.md):
// the TierController's stability disciplines (hysteresis, budgets,
// coldest-first eviction), the forced-op safety gates fuzz traces drive,
// the chaos hooks, and the FPGA session table's exact-capacity overflow
// edge. The cross-cutting behaviour-invariance claim lives in
// tests/test_dpu_diff.cpp; this file pins the component contracts those
// differential runs lean on.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "dpu/dpu_datapath.hpp"
#include "dpu/dpu_tier.hpp"
#include "nic/nic_pipeline.hpp"
#include "nic/session_offload.hpp"
#include "traffic/flow_gen.hpp"

namespace albatross {
namespace {

/// Canonical distinct tuples, same layout the traffic generators use.
FiveTuple tuple_for(std::uint64_t i) {
  return make_flow(i, static_cast<Vni>(1 + i % 250),
                   static_cast<std::uint32_t>(i / 250))
      .tuple;
}

// --- hysteresis ----------------------------------------------------------

// A single flow whose rate oscillates across both thresholds every few
// milliseconds. Without the dwell timer the controller would migrate on
// every crossing; with it, promotions+demotions are bounded by the
// number of dwell windows in the horizon, and the blocked crossings are
// counted as dwell_suppressed.
TEST(TierHysteresis, OscillatingRateCannotFlap) {
  const std::uint64_t seed = check::test_seed(0xa11b);
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  DpuTierConfig cfg;
  cfg.controller.promote_pps = 50'000.0;
  cfg.controller.demote_pps = 20'000.0;
  cfg.controller.dwell_min = 4 * kMillisecond;
  cfg.controller.admit_forwards = 2;
  // Effectively unlimited budgets: this test isolates the dwell timer
  // as the one migration bound.
  cfg.controller.admit_budget = 1'000'000;
  cfg.controller.migration_budget = 1'000'000;
  cfg.fpga.capacity = 1'024;
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);

  const FiveTuple flow = tuple_for(7);
  const NanoTime horizon = 60 * kMillisecond;
  const NanoTime phase_len = 3 * kMillisecond;
  NanoTime t{0};
  while (t < horizon) {
    // Fast phases run ~100kpps (above promote), slow phases ~4kpps
    // (below demote); the jitter keeps the EWMA trajectory seed-varied
    // without moving either phase across a threshold.
    const bool fast = (t.count() / phase_len.count()) % 2 == 0;
    const auto served = tier.serve(flow, 256, t, t + kMicrosecond);
    if (!served.has_value()) tier.observe_forward(flow, t + 3 * kMicrosecond);
    EXPECT_LE(fpga.size(), cfg.fpga.capacity);
    const NanoTime gap = fast ? 10 * kMicrosecond : 250 * kMicrosecond;
    t = t + gap + rng.next_below(Nanos{2'000});
  }

  const TierControllerStats& cs = tier.controller().stats();
  const auto max_moves =
      static_cast<std::uint64_t>(horizon.count() /
                                 cfg.controller.dwell_min.count()) +
      2;
  EXPECT_GE(cs.promotions, 1u);  // the flow did reach the FPGA tier...
  EXPECT_GE(cs.demotions, 1u);   // ...and did come back down
  EXPECT_LE(cs.promotions + cs.demotions, max_moves);
  EXPECT_GE(cs.dwell_suppressed, 1u);
  EXPECT_EQ(cs.budget_exhausted, 0u);
}

// --- FPGA capacity + eviction -------------------------------------------

// Overflowing the FPGA tier demotes exactly the coldest pinned flow
// (minimum last_seen), and the table never exceeds its BRAM capacity.
TEST(TierEviction, FpgaOverflowEvictsColdestPinnedFlow) {
  DpuTierConfig cfg;
  cfg.controller.admit_forwards = 0;  // admit on first arrival
  cfg.controller.dwell_min = NanoTime{0};
  cfg.fpga.capacity = 4;
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);

  // Five flows admitted to the DPU with strictly increasing last_seen:
  // flow 0 is the coldest.
  for (std::uint64_t i = 0; i < 5; ++i) {
    const NanoTime at = Nanos{static_cast<std::int64_t>(i) * 10'000};
    const auto sv = tier.serve(tuple_for(i), 128, at, at + kMicrosecond);
    ASSERT_TRUE(sv.has_value());
    EXPECT_EQ(sv->tier, TierLevel::kDpu);
  }

  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(tier.force_promote(tuple_for(i), kMillisecond));
    EXPECT_LE(fpga.size(), cfg.fpga.capacity);
  }
  ASSERT_EQ(fpga.size(), 4u);

  // The fifth promotion must evict flow 0 — and only flow 0.
  EXPECT_TRUE(tier.force_promote(tuple_for(4), 2 * kMillisecond));
  EXPECT_EQ(fpga.size(), 4u);
  EXPECT_EQ(tier.controller().stats().evictions_cold, 1u);
  EXPECT_FALSE(fpga.peek(tuple_for(0)).has_value());
  EXPECT_TRUE(fpga.peek(tuple_for(4)).has_value());
  ASSERT_NE(tier.controller().find(tuple_for(0)), nullptr);
  EXPECT_EQ(tier.controller().find(tuple_for(0))->tier, TierLevel::kDpu);
  EXPECT_TRUE(tier.datapath().resident(tuple_for(0)));
}

// Property: whatever order flows are promoted in, the FPGA table never
// exceeds its capacity and every overflow demotes a victim.
TEST(TierEviction, PromotionsNeverExceedFpgaCapacity) {
  const std::uint64_t seed = check::test_seed(0x5eed);
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  DpuTierConfig cfg;
  cfg.controller.admit_forwards = 0;
  cfg.controller.dwell_min = NanoTime{0};
  cfg.controller.admit_budget = 1'000'000;
  cfg.controller.migration_budget = 1'000'000;
  cfg.fpga.capacity = 8;
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);

  constexpr std::uint64_t kFlows = 48;
  for (std::uint64_t i = 0; i < kFlows; ++i) {
    const NanoTime at = Nanos{static_cast<std::int64_t>(i) * 5'000};
    ASSERT_TRUE(tier.serve(tuple_for(i), 128, at, at + kMicrosecond));
  }

  const std::uint64_t start = rng.next_below(kFlows);
  NanoTime t = kMillisecond;
  for (std::uint64_t i = 0; i < kFlows; ++i) {
    EXPECT_TRUE(tier.force_promote(tuple_for((start + i) % kFlows), t));
    EXPECT_LE(fpga.size(), cfg.fpga.capacity);
    t = t + 10 * kMicrosecond;
  }
  EXPECT_EQ(fpga.size(), cfg.fpga.capacity);
  EXPECT_GE(tier.controller().stats().evictions_cold,
            kFlows - cfg.fpga.capacity);
}

// --- migration budgets ---------------------------------------------------

// The migration channel meters FPGA<->DPU moves per epoch; exhausting it
// defers promotions (the flow keeps being served by the DPU — lossless)
// until the next epoch refill. Admissions ride a separate channel and
// are never starved by intra-NIC churn.
TEST(TierBudget, MigrationBudgetDefersMovesUntilEpochRefill) {
  DpuTierConfig cfg;
  cfg.controller.admit_forwards = 0;
  cfg.controller.dwell_min = NanoTime{0};
  cfg.controller.promote_pps = 50'000.0;
  cfg.controller.migration_budget = 1;
  cfg.controller.admit_budget = 64;
  cfg.controller.migration_epoch = 10 * kMillisecond;
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);

  // Drive flow 0 hot: admitted on the first arrival, promoted as soon
  // as its EWMA crosses — consuming the epoch's single migration token.
  NanoTime t{0};
  bool flow0_fpga = false;
  for (int i = 0; i < 20; ++i) {
    const auto sv = tier.serve(tuple_for(0), 128, t, t + kMicrosecond);
    ASSERT_TRUE(sv.has_value());
    flow0_fpga = flow0_fpga || sv->tier == TierLevel::kFpga;
    t = t + 10 * kMicrosecond;
  }
  EXPECT_TRUE(flow0_fpga);
  EXPECT_EQ(tier.controller().stats().promotions, 1u);

  // Flow 1 gets admitted (separate channel) but its promotion is
  // deferred: no migration tokens left in this epoch.
  t = 300 * kMicrosecond;
  for (int i = 0; i < 20; ++i) {
    const auto sv = tier.serve(tuple_for(1), 128, t, t + kMicrosecond);
    ASSERT_TRUE(sv.has_value());
    EXPECT_EQ(sv->tier, TierLevel::kDpu);  // served anyway — lossless
    t = t + 10 * kMicrosecond;
  }
  EXPECT_EQ(tier.controller().stats().admissions, 2u);
  EXPECT_EQ(tier.controller().stats().promotions, 1u);
  EXPECT_GE(tier.controller().stats().budget_exhausted, 1u);
  ASSERT_NE(tier.controller().find(tuple_for(1)), nullptr);
  EXPECT_EQ(tier.controller().find(tuple_for(1))->tier, TierLevel::kDpu);

  // Next epoch: the budget refills and the deferred promotion lands.
  const auto sv = tier.serve(tuple_for(1), 128, 11 * kMillisecond,
                             11 * kMillisecond + kMicrosecond);
  ASSERT_TRUE(sv.has_value());
  EXPECT_EQ(sv->tier, TierLevel::kFpga);
  EXPECT_EQ(tier.controller().stats().promotions, 2u);
}

// --- forced-op safety gates ----------------------------------------------

// Fuzz/chaos tier ops run through the same order-safety gates as organic
// migrations: an unsafe op is a deterministic no-op, never a fault.
TEST(TierGates, ForcedPromoteHonorsInflightHandoverGate) {
  DpuTierConfig cfg;
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);
  const FiveTuple flow = tuple_for(21);

  EXPECT_FALSE(tier.force_promote(flow, NanoTime{0}));  // unknown flow
  EXPECT_FALSE(tier.serve(flow, 256, NanoTime{0}, kMicrosecond).has_value());
  // One CPU packet still in flight: forced admission must refuse, or the
  // DPU-served successor could overtake it at the wire.
  EXPECT_FALSE(tier.force_promote(flow, 10 * kMicrosecond));
  tier.observe_forward(flow, 20 * kMicrosecond);
  EXPECT_TRUE(tier.force_promote(flow, 30 * kMicrosecond));
  ASSERT_NE(tier.controller().find(flow), nullptr);
  EXPECT_EQ(tier.controller().find(flow)->tier, TierLevel::kDpu);
  EXPECT_EQ(tier.stats().forced_promotes, 1u);
}

TEST(TierGates, ForcedMovesWaitForTheFlowsDpuQueueToDrain) {
  DpuTierConfig cfg;
  cfg.controller.admit_forwards = 0;
  cfg.controller.dwell_min = NanoTime{0};
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);
  const FiveTuple flow = tuple_for(33);

  const auto sv = tier.serve(flow, 256, kMillisecond,
                             kMillisecond + kMicrosecond);
  ASSERT_TRUE(sv.has_value());
  ASSERT_EQ(sv->tier, TierLevel::kDpu);
  const NanoTime busy_end =
      kMillisecond + kMicrosecond + tier.datapath().packet_cost();

  // DPU -> FPGA: refused while the flow's core is still serving it.
  EXPECT_FALSE(tier.force_promote(flow, busy_end - kMicrosecond));
  EXPECT_TRUE(tier.force_promote(flow, busy_end + kMicrosecond));
  EXPECT_TRUE(fpga.peek(flow).has_value());

  // FPGA -> DPU is always safe: the slower tier only adds latency.
  EXPECT_TRUE(tier.force_demote(flow, busy_end + 2 * kMicrosecond));
  EXPECT_FALSE(fpga.peek(flow).has_value());
  ASSERT_NE(tier.controller().find(flow), nullptr);
  EXPECT_EQ(tier.controller().find(flow)->tier, TierLevel::kDpu);

  // DPU -> CPU waits for the queue drain too (CPU latency floors above
  // the deparser residue only once nothing is queued behind).
  const auto sv2 = tier.serve(flow, 256, busy_end + 3 * kMicrosecond,
                              busy_end + 4 * kMicrosecond);
  ASSERT_TRUE(sv2.has_value());
  const NanoTime busy2 =
      busy_end + 4 * kMicrosecond + tier.datapath().packet_cost();
  EXPECT_FALSE(tier.force_demote(flow, busy2 - kMicrosecond));
  EXPECT_TRUE(tier.force_demote(flow, busy2 + kMicrosecond));
  EXPECT_EQ(tier.controller().find(flow)->tier, TierLevel::kCpu);
  EXPECT_FALSE(tier.datapath().resident(flow));
  EXPECT_EQ(tier.stats().forced_demotes, 2u);
}

// --- chaos hooks ----------------------------------------------------------

// A wedged DPU core delays every queued packet but never drops one.
TEST(TierChaos, CoreStallDelaysButNeverDrops) {
  DpuDatapath dp;
  const FiveTuple flow = tuple_for(3);
  ASSERT_TRUE(dp.install(flow, NanoTime{0}));

  const auto first = dp.serve(flow, 256, 10 * kMicrosecond);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->count(), dp.packet_cost().count());

  dp.stall_core(dp.core_for(flow), kMillisecond);
  const auto second = dp.serve(flow, 256, 20 * kMicrosecond);
  ASSERT_TRUE(second.has_value());
  const NanoTime expected =
      kMillisecond - 20 * kMicrosecond + dp.packet_cost();
  EXPECT_EQ(second->count(), expected.count());
  EXPECT_EQ(dp.stats().core_stalls, 1u);
  EXPECT_EQ(dp.stats().hits, 2u);
  EXPECT_EQ(dp.stats().misses, 0u);
}

// A tier-table flush drops every DPU-resident flow back to the CPU path;
// re-admission must be re-earned through the mice filter from scratch.
TEST(TierChaos, TableFlushRetiersToCpuAndReadmits) {
  DpuTierConfig cfg;  // default mice filter: 2 forwards
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);
  const FiveTuple flow = tuple_for(11);
  const auto step = [&](NanoTime t) {
    return tier.serve(flow, 256, t, t + kMicrosecond);
  };

  // Two CPU round-trips earn admission; the third arrival is DPU-served.
  EXPECT_FALSE(step(NanoTime{0}).has_value());
  tier.observe_forward(flow, 5 * kMicrosecond);
  EXPECT_FALSE(step(100 * kMicrosecond).has_value());
  tier.observe_forward(flow, 105 * kMicrosecond);
  const auto admitted = step(200 * kMicrosecond);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_EQ(admitted->tier, TierLevel::kDpu);
  EXPECT_TRUE(tier.datapath().resident(flow));

  EXPECT_EQ(tier.flush_tier_table(300 * kMicrosecond), 1u);
  EXPECT_EQ(tier.datapath().size(), 0u);
  EXPECT_EQ(tier.stats().table_flushes, 1u);
  ASSERT_NE(tier.controller().find(flow), nullptr);
  EXPECT_EQ(tier.controller().find(flow)->tier, TierLevel::kCpu);

  EXPECT_FALSE(step(400 * kMicrosecond).has_value());
  tier.observe_forward(flow, 405 * kMicrosecond);
  EXPECT_FALSE(step(500 * kMicrosecond).has_value());
  tier.observe_forward(flow, 505 * kMicrosecond);
  const auto readmitted = step(600 * kMicrosecond);
  ASSERT_TRUE(readmitted.has_value());
  EXPECT_EQ(readmitted->tier, TierLevel::kDpu);
}

// The NIC-level injectors are graceful no-ops on a pod without the tier
// (a chaos plan generated for a tiered topology can replay anywhere).
TEST(TierChaos, InjectorsAreNoOpsWithoutTheTier) {
  NicPipeline nic{NicPipelineConfig{}};
  PlbEngineConfig plb;
  plb.num_rx_queues = 2;
  plb.num_reorder_queues = 2;
  nic.register_pod(0, plb, PktDirConfig{}, LbMode::kPlb);

  EXPECT_FALSE(nic.dpu_tier_enabled(0));
  nic.inject_dpu_core_stall(0, 3, kMillisecond);  // must not crash
  EXPECT_EQ(nic.inject_tier_table_flush(0, kMillisecond), 0u);

  nic.enable_dpu_tier(0);
  EXPECT_TRUE(nic.dpu_tier_enabled(0));
  nic.inject_dpu_core_stall(0, 3, 2 * kMillisecond);
  EXPECT_EQ(nic.dpu_tier(0).datapath().stats().core_stalls, 1u);
  EXPECT_EQ(nic.inject_tier_table_flush(0, 2 * kMillisecond), 0u);
  EXPECT_EQ(nic.dpu_tier(0).stats().table_flushes, 1u);
}

// --- housekeeping ---------------------------------------------------------

// Aging reclaims idle DPU sessions; the flow then falls back to the CPU
// tier at its next arrival and must re-earn admission.
TEST(TierHousekeeping, AgeReclaimsIdleDpuSessions) {
  DpuTierConfig cfg;  // datapath idle_timeout: 5s
  SessionOffload fpga(cfg.fpga);
  DpuTier tier(cfg, fpga);
  const FiveTuple flow = tuple_for(17);

  EXPECT_FALSE(tier.serve(flow, 256, NanoTime{0}, kMicrosecond).has_value());
  tier.observe_forward(flow, 5 * kMicrosecond);
  EXPECT_FALSE(tier.serve(flow, 256, 100 * kMicrosecond,
                          101 * kMicrosecond)
                   .has_value());
  tier.observe_forward(flow, 105 * kMicrosecond);
  ASSERT_TRUE(tier.serve(flow, 256, 200 * kMicrosecond, 201 * kMicrosecond)
                  .has_value());
  ASSERT_TRUE(tier.datapath().resident(flow));

  EXPECT_EQ(tier.age(kSecond), 0u);  // not idle yet
  EXPECT_EQ(tier.age(10 * kSecond), 1u);
  EXPECT_FALSE(tier.datapath().resident(flow));

  // Next arrival misses (session gone, admission reset) and re-tags the
  // flow CPU-resident.
  EXPECT_FALSE(tier.serve(flow, 256, 10 * kSecond + kMillisecond,
                          10 * kSecond + kMillisecond + kMicrosecond)
                   .has_value());
  ASSERT_NE(tier.controller().find(flow), nullptr);
  EXPECT_EQ(tier.controller().find(flow)->tier, TierLevel::kCpu);

  // Idle CPU-resident state itself ages out of the controller table.
  EXPECT_EQ(tier.age(20 * kSecond), 1u);
  EXPECT_EQ(tier.controller().find(flow), nullptr);
}

// --- FPGA session table overflow edge ------------------------------------

// Regression for the exact-capacity edge: fill the BRAM table to its
// 64K limit, verify the 64K+1st install is rejected (and counted),
// evict one session, and verify the slot is immediately reusable with
// the stats ledger balancing throughout.
TEST(SessionOffloadOverflow, InsertEvictReinsertAtExactCapacity) {
  SessionOffload off;  // default: the paper's 64K BRAM-bounded table
  const std::size_t cap = off.config().capacity;
  ASSERT_EQ(cap, 65'536u);

  for (std::size_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(off.install(tuple_for(i), 0, NanoTime{0})) << "i=" << i;
  }
  EXPECT_EQ(off.size(), cap);
  EXPECT_EQ(off.stats().installs, cap);

  const FiveTuple extra = tuple_for(cap);
  EXPECT_FALSE(off.install(extra, 0, kMicrosecond));
  EXPECT_EQ(off.stats().install_rejected_full, 1u);
  EXPECT_EQ(off.size(), cap);
  EXPECT_FALSE(off.fast_path(extra, 128, kMicrosecond).has_value());
  EXPECT_TRUE(off.fast_path(tuple_for(0), 128, kMicrosecond).has_value());

  EXPECT_TRUE(off.remove(tuple_for(0)));
  EXPECT_EQ(off.size(), cap - 1);
  EXPECT_TRUE(off.install(extra, 0, 2 * kMicrosecond));
  EXPECT_EQ(off.size(), cap);
  EXPECT_EQ(off.stats().installs, cap + 1);

  // The evicted flow misses, the reinserted one hits.
  EXPECT_FALSE(off.fast_path(tuple_for(0), 128, 3 * kMicrosecond).has_value());
  EXPECT_TRUE(off.fast_path(extra, 128, 3 * kMicrosecond).has_value());
  EXPECT_EQ(off.stats().install_rejected_full, 1u);
}

}  // namespace
}  // namespace albatross
