// DPU tier differential: the hierarchical co-offload (docs/DPU_TIER.md)
// is a *latency* optimisation and must be outcome-invariant — which tier
// serves a packet can never change whether it is delivered, dropped or
// reordered. Two differential claims, each over many seeded traces:
//
//   on-vs-off     the identical op list runs with the tier disabled
//                 (pure CPU path) and enabled; the packet-conservation
//                 ledgers must match field-for-field after folding the
//                 tier-served packets back into the CPU buckets (a
//                 tier-served packet is one the CPU would have processed
//                 and forwarded itself).
//   capacity      with the tier on, sweeping the FPGA session-table
//                 capacity (512 / 4K / 64K) must leave the ledger — and
//                 the total NIC-served packet count — EXACTLY identical:
//                 capacity only moves flows between the FPGA and DPU
//                 tiers, both NIC-resident, and the split admit/migration
//                 budgets keep intra-NIC churn from starving admissions.
//
// The fuzz runner arms the per-flow wire-order oracle, so a tier
// handover that let a fast-path packet overtake its flow's slow-path
// predecessor shows up as a ledger mismatch in flow_order_violations.
//
// The on-vs-off claim only holds below CPU saturation (above it,
// offloading genuinely rescues packets the CPU would drop — that is the
// tier's whole point, measured in bench_ext_dpu_tiering); traces are
// rescaled to a sub-saturation rate and the OFF run is asserted clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "check/testseed.hpp"
#include "check/trace_gen.hpp"

namespace albatross {
namespace {

using check::ChaosMode;
using check::FuzzReport;
using check::FuzzTrace;
using check::PodLedger;

std::string ledger_str(const PodLedger& l) {
  return "offered=" + std::to_string(l.offered) +
         " delivered=" + std::to_string(l.delivered) +
         " in_order=" + std::to_string(l.delivered_in_order) +
         " disordered=" + std::to_string(l.delivered_disordered) +
         " drop_rl=" + std::to_string(l.dropped_rate_limit) +
         " drop_reorder=" + std::to_string(l.dropped_reorder_full) +
         " blackholed=" + std::to_string(l.blackholed) +
         " order_viol=" + std::to_string(l.flow_order_violations) +
         " pod_proc=" + std::to_string(l.pod_processed) +
         " pod_fwd=" + std::to_string(l.pod_forwarded) +
         " pod_drop_svc=" + std::to_string(l.pod_dropped_service) +
         " pod_drop_ring=" + std::to_string(l.pod_dropped_ring) +
         " pod_proto=" + std::to_string(l.pod_protocol_packets) +
         " pod_dflags=" + std::to_string(l.pod_drop_flags_sent);
}

/// Folds tier-served packets back into the CPU buckets: every packet a
/// NIC tier served is one the CPU path would have processed AND
/// forwarded (the tier only admits flows the CPU was already forwarding
/// cleanly), so after the fold the tiered ledger must equal the pure-CPU
/// one field for field. With the tier off the fold is the identity.
PodLedger fold_tier(const FuzzReport& r) {
  PodLedger l = r.ledger;
  const std::uint64_t hits = r.tier_fpga_hits + r.tier_dpu_hits;
  l.pod_processed += hits;
  l.pod_forwarded += hits;
  return l;
}

/// Stretches a trace's timeline (integer factor, order-preserving) until
/// the offered rate sits at or below `target_pps`, comfortably inside
/// the CPU path's capacity, so the OFF run loses nothing to overload.
void rescale_to(FuzzTrace& trace, double target_pps) {
  const std::size_t pkts = trace.packet_count();
  if (pkts == 0 || trace.scenario.horizon.count() <= 0) return;
  const double rate =
      static_cast<double>(pkts) / nanos_to_seconds(trace.scenario.horizon);
  const auto factor = static_cast<std::int64_t>(rate / target_pps) + 1;
  if (factor <= 1) return;
  for (auto& op : trace.ops) op.at = op.at * factor;
  trace.scenario.horizon = trace.scenario.horizon * factor;
}

constexpr double kCleanRegimePps = 250'000.0;

/// Asserts a report came from a run with no CPU-side loss or disorder —
/// the regime in which tiering is provably outcome-invariant.
void expect_clean_cpu_run(const FuzzReport& r, const char* label) {
  SCOPED_TRACE(label);
  ASSERT_TRUE(r.ledger_checked);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.ledger.delivered_disordered, 0u);
  EXPECT_EQ(r.ledger.dropped_reorder_full, 0u);
  EXPECT_EQ(r.ledger.pod_dropped_ring, 0u);
  EXPECT_EQ(r.ledger.flow_order_violations, 0u);
}

/// One on-vs-off differential: the same trace, tier disabled then
/// enabled, folded ledgers byte-identical.
void expect_tier_invariant(std::uint64_t seed, bool with_forced_ops) {
  FuzzTrace trace =
      check::generate_trace(seed, 1500, ChaosMode::kNone, with_forced_ops);
  rescale_to(trace, kCleanRegimePps);

  trace.scenario.dpu_tier = false;
  const FuzzReport off = check::run_trace(trace);
  expect_clean_cpu_run(off, "tier off");

  trace.scenario.dpu_tier = true;
  const FuzzReport on = check::run_trace(trace);
  ASSERT_TRUE(on.ledger_checked);
  EXPECT_EQ(on.violations, 0u);
  // The tier must actually serve packets, or the diff proves nothing.
  EXPECT_GT(on.tier_fpga_hits + on.tier_dpu_hits, 0u);

  EXPECT_TRUE(fold_tier(on) == fold_tier(off))
      << "tier off: " << ledger_str(fold_tier(off)) << "\n"
      << "tier on:  " << ledger_str(fold_tier(on));
}

class TierOnOffSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// 50 base seeds x {organic, forced-migration} = 100 on-vs-off
// differential runs. The organic arm exercises the controller's own
// admission/promotion decisions; the forced arm sprinkles tier_promote/
// tier_demote ops through the trace (no-ops in the OFF run) so the
// FPGA tier and the migration safety gates see mid-stream traffic.
TEST_P(TierOnOffSeeds, FoldedLedgerIdenticalTierOnVsOff) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_tier_invariant(seed, /*with_forced_ops=*/false);
}

TEST_P(TierOnOffSeeds, FoldedLedgerIdenticalWithForcedMigrations) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_tier_invariant(seed, /*with_forced_ops=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierOnOffSeeds,
                         ::testing::Range(std::uint64_t{300},
                                          std::uint64_t{350}));

// Deterministic FPGA-tier exercise: promote the trace's hottest flow
// (Zipf rank 0) into the DPU and then the FPGA mid-run, and require
// both invariance AND that the FPGA tier actually served packets.
TEST(TierOnOff, FpgaTierServesAndStaysInvariant) {
  const std::uint64_t seed = check::test_seed(77);
  SCOPED_TRACE(check::seed_banner(seed));
  FuzzTrace trace = check::generate_trace(seed, 1500, ChaosMode::kNone);
  rescale_to(trace, kCleanRegimePps);

  // Two staged promotions for flow 0: CPU -> DPU once the mice filter
  // has seen its forwards, DPU -> FPGA once its core drains.
  for (int i = 1; i <= 2; ++i) {
    check::TraceOp op;
    op.kind = check::TraceOpKind::kTierPromote;
    op.at = trace.scenario.horizon * i / 8;
    op.flow = 0;
    trace.ops.push_back(op);
  }
  std::stable_sort(trace.ops.begin(), trace.ops.end(),
                   [](const check::TraceOp& a, const check::TraceOp& b) {
                     return a.at < b.at;
                   });

  trace.scenario.dpu_tier = false;
  const FuzzReport off = check::run_trace(trace);
  expect_clean_cpu_run(off, "tier off");

  trace.scenario.dpu_tier = true;
  const FuzzReport on = check::run_trace(trace);
  EXPECT_EQ(on.violations, 0u);
  EXPECT_GT(on.tier_fpga_hits, 0u);
  EXPECT_TRUE(fold_tier(on) == fold_tier(off))
      << "tier off: " << ledger_str(fold_tier(off)) << "\n"
      << "tier on:  " << ledger_str(fold_tier(on));
}

/// FPGA-capacity sweep: a 128x smaller FPGA table must yield EXACTLY
/// the same ledger and the same NIC-served packet total — only the
/// FPGA/DPU split may move. Valid even under benign chaos (DMA faults
/// and core stalls are latency-only and identical across the sweep).
void expect_capacity_invariant(std::uint64_t seed, ChaosMode chaos) {
  FuzzTrace trace = check::generate_trace(seed, 1500, chaos,
                                          /*with_tier=*/true);
  rescale_to(trace, kCleanRegimePps);
  trace.scenario.dpu_tier = true;

  trace.scenario.fpga_capacity = 65'536;
  const FuzzReport base = check::run_trace(trace);
  ASSERT_TRUE(base.ledger_checked);
  EXPECT_GT(base.tier_fpga_hits + base.tier_dpu_hits, 0u);

  for (const std::size_t cap : {std::size_t{512}, std::size_t{4'096}}) {
    trace.scenario.fpga_capacity = cap;
    const FuzzReport swept = check::run_trace(trace);
    SCOPED_TRACE("fpga_capacity=" + std::to_string(cap));
    EXPECT_EQ(base.violations, swept.violations);
    EXPECT_TRUE(base.ledger == swept.ledger)
        << "cap=65536: " << ledger_str(base.ledger) << "\n"
        << "cap=" << cap << ": " << ledger_str(swept.ledger);
    EXPECT_EQ(base.tier_fpga_hits + base.tier_dpu_hits,
              swept.tier_fpga_hits + swept.tier_dpu_hits);
    EXPECT_EQ(base.tier_misses, swept.tier_misses);
  }
}

class TierCapacitySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TierCapacitySeeds, LedgerExactAcrossFpgaCapacitySweep) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_capacity_invariant(seed, ChaosMode::kNone);
}

TEST_P(TierCapacitySeeds, LedgerExactAcrossSweepUnderBenignChaos) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_capacity_invariant(seed, ChaosMode::kBenign);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierCapacitySeeds,
                         ::testing::Range(std::uint64_t{400},
                                          std::uint64_t{412}));

// Tier + burst cross-check: tiering changes CPU timing and burst size
// changes batching, but neither may change packet outcomes, so the
// folded ledger must also survive both at once.
TEST(TierBurstCross, FoldedLedgerIdenticalTieredAtBurst32) {
  const std::uint64_t seed = check::test_seed(55);
  SCOPED_TRACE(check::seed_banner(seed));
  FuzzTrace trace = check::generate_trace(seed, 1500, ChaosMode::kNone,
                                          /*with_tier=*/true);
  rescale_to(trace, kCleanRegimePps);
  trace.scenario.dpu_tier = false;
  trace.scenario.rx_burst = 1;
  const FuzzReport off = check::run_trace(trace);
  expect_clean_cpu_run(off, "tier off, burst 1");

  trace.scenario.dpu_tier = true;
  trace.scenario.rx_burst = 32;
  const FuzzReport on = check::run_trace(trace);
  EXPECT_EQ(on.violations, 0u);
  EXPECT_GT(on.tier_fpga_hits + on.tier_dpu_hits, 0u);
  EXPECT_TRUE(fold_tier(on) == fold_tier(off))
      << "off/b1:  " << ledger_str(fold_tier(off)) << "\n"
      << "on/b32: " << ledger_str(fold_tier(on));
}

}  // namespace
}  // namespace albatross
