// Table substrate unit tests: DIR-24-8 LPM semantics, cuckoo table,
// flow table aging, ACL matching, token-bucket / trTCM meters, VM-NC map.
#include <gtest/gtest.h>

#include "tables/acl.hpp"
#include "tables/cuckoo_table.hpp"
#include "tables/flow_table.hpp"
#include "tables/lpm_dir24.hpp"
#include "tables/meter.hpp"
#include "tables/vm_nc_map.hpp"

namespace albatross {
namespace {

TEST(LpmDir24, BasicLongestPrefixWins) {
  LpmDir24 lpm;
  EXPECT_TRUE(lpm.add(Ipv4Address::from_octets(10, 0, 0, 0), 8, 100));
  EXPECT_TRUE(lpm.add(Ipv4Address::from_octets(10, 1, 0, 0), 16, 200));
  EXPECT_TRUE(lpm.add(Ipv4Address::from_octets(10, 1, 2, 0), 24, 300));
  EXPECT_TRUE(lpm.add(Ipv4Address::from_octets(10, 1, 2, 3), 32, 400));

  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 9, 9, 9)), 100u);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 1, 9, 9)), 200u);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 1, 2, 9)), 300u);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 1, 2, 3)), 400u);
  EXPECT_FALSE(lpm.lookup(Ipv4Address::from_octets(11, 0, 0, 0)).has_value());
  EXPECT_EQ(lpm.rule_count(), 4u);
}

TEST(LpmDir24, RemoveReexposesCoveringRule) {
  LpmDir24 lpm;
  lpm.add(Ipv4Address::from_octets(10, 0, 0, 0), 8, 1);
  lpm.add(Ipv4Address::from_octets(10, 1, 0, 0), 16, 2);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 1, 5, 5)), 2u);
  EXPECT_TRUE(lpm.remove(Ipv4Address::from_octets(10, 1, 0, 0), 16));
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 1, 5, 5)), 1u);
  EXPECT_TRUE(lpm.remove(Ipv4Address::from_octets(10, 0, 0, 0), 8));
  EXPECT_FALSE(
      lpm.lookup(Ipv4Address::from_octets(10, 1, 5, 5)).has_value());
  EXPECT_FALSE(lpm.remove(Ipv4Address::from_octets(10, 0, 0, 0), 8));
}

TEST(LpmDir24, DeepRulesUseTbl8) {
  LpmDir24 lpm;
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 0u);
  lpm.add(Ipv4Address::from_octets(20, 0, 0, 0), 8, 5);
  lpm.add(Ipv4Address::from_octets(20, 1, 1, 128), 25, 6);
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 1u);
  // The deep rule covers .128-.255; the /8 covers the rest.
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(20, 1, 1, 200)), 6u);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(20, 1, 1, 100)), 5u);
  // Removing the deep rule collapses the tbl8 group.
  EXPECT_TRUE(lpm.remove(Ipv4Address::from_octets(20, 1, 1, 128), 25));
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 0u);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(20, 1, 1, 200)), 5u);
}

TEST(LpmDir24, ReplaceUpdatesNextHop) {
  LpmDir24 lpm;
  lpm.add(Ipv4Address::from_octets(10, 0, 0, 0), 24, 1);
  lpm.add(Ipv4Address::from_octets(10, 0, 0, 0), 24, 9);
  EXPECT_EQ(lpm.lookup(Ipv4Address::from_octets(10, 0, 0, 1)), 9u);
  EXPECT_EQ(lpm.rule_count(), 1u);
}

TEST(LpmDir24, RejectsInvalidInput) {
  LpmDir24 lpm;
  EXPECT_FALSE(lpm.add(Ipv4Address{1}, 0, 1));
  EXPECT_FALSE(lpm.add(Ipv4Address{1}, 33, 1));
  EXPECT_FALSE(lpm.add(Ipv4Address{1}, 8, kMaxNextHop + 1));
}

TEST(LpmDir24, MillionRuleCapacity) {
  // Tab. 6: Albatross holds >10M LPM rules in DRAM. Inserting 1M /32s
  // here keeps the test fast while exercising tbl8 scaling; memory
  // accounting extrapolates the 10M headline.
  LpmDir24 lpm;
  const std::uint32_t n = 1'000'000;
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(lpm.add(Ipv4Address{0x30000000u + i}, 32,
                        i & kMaxNextHop));
  }
  EXPECT_EQ(lpm.rule_count(), n);
  EXPECT_EQ(lpm.lookup(Ipv4Address{0x30000000u + 123456}), 123456u);
  // 10M rules extrapolate to ~single-digit GB, well within 512GB DRAM.
  const double bytes_per_rule =
      static_cast<double>(lpm.memory_bytes()) / n;
  EXPECT_LT(bytes_per_rule * 10e6, 5e9);
}

TEST(CuckooTable, InsertFindEraseUpdate) {
  CuckooTable<std::uint64_t, std::uint64_t> t(1024);
  for (std::uint64_t k = 0; k < 700; ++k) {
    ASSERT_TRUE(t.insert(k, k * 10));
  }
  EXPECT_EQ(t.size(), 700u);
  for (std::uint64_t k = 0; k < 700; ++k) {
    ASSERT_EQ(t.find(k), k * 10);
  }
  EXPECT_FALSE(t.find(9999).has_value());
  EXPECT_TRUE(t.insert(5, 555));  // update
  EXPECT_EQ(t.find(5), 555u);
  EXPECT_EQ(t.size(), 700u);
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.find(5).has_value());
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.size(), 699u);
}

TEST(CuckooTable, FindMutAllowsInPlaceUpdate) {
  CuckooTable<std::uint64_t, std::uint64_t> t(64);
  t.insert(1, 100);
  auto* v = t.find_mut(1);
  ASSERT_NE(v, nullptr);
  *v = 200;
  EXPECT_EQ(t.find(1), 200u);
  EXPECT_EQ(t.find_mut(42), nullptr);
}

TEST(CuckooTable, HighLoadFactorNoLoss) {
  // Bucketed cuckoo with 2x4 slots should reach >90% load.
  CuckooTable<std::uint64_t, std::uint64_t> t(1 << 12);
  const std::size_t target = t.capacity() * 9 / 10;
  std::size_t inserted = 0;
  for (std::uint64_t k = 0; inserted < target; ++k) {
    if (t.insert(k ^ 0x5bd1e995, k)) ++inserted;
    if (k > t.capacity() * 2) break;  // safety
  }
  EXPECT_GE(t.load_factor(), 0.89);
  // Every claimed-inserted key must be findable (stash guarantees no
  // silent loss on kick-chain overflow).
  std::size_t found = 0;
  for (std::uint64_t k = 0;; ++k) {
    if (t.find(k ^ 0x5bd1e995).has_value()) ++found;
    if (found == inserted) break;
    if (k > t.capacity() * 4) break;
  }
  EXPECT_EQ(found, inserted);
}

TEST(CuckooTable, ForEachEraseIf) {
  CuckooTable<std::uint64_t, std::uint64_t> t(256);
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k, k);
  t.for_each_erase_if([](std::uint64_t k, std::uint64_t) { return k % 2 == 0; });
  EXPECT_EQ(t.size(), 50u);
  EXPECT_TRUE(t.find(2).has_value());
  EXPECT_FALSE(t.find(3).has_value());
}

TEST(FlowTable, CreateOnMissAndHit) {
  FlowTable ft(1024, 10 * kSecond);
  FiveTuple t{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kTcp};
  FlowState* s = ft.lookup(t, Nanos{100});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ft.stats().misses, 1u);
  s->packets = 5;
  FlowState* again = ft.lookup(t, Nanos{200});
  ASSERT_EQ(again->packets, 5u);
  EXPECT_EQ(ft.stats().hits, 1u);
  EXPECT_EQ(again->last_seen, NanoTime{200});
  EXPECT_EQ(ft.lookup(FiveTuple{}, Nanos{0}, /*create_on_miss=*/false), nullptr);
}

TEST(FlowTable, AgingReclaimsIdleFlows) {
  FlowTable ft(1024, 1 * kSecond);
  for (std::uint16_t i = 0; i < 10; ++i) {
    ft.lookup(FiveTuple{Ipv4Address{i}, Ipv4Address{1}, i, 1, IpProto::kUdp},
              Nanos{0});
  }
  // Refresh half at t=0.9s.
  for (std::uint16_t i = 0; i < 5; ++i) {
    ft.lookup(FiveTuple{Ipv4Address{i}, Ipv4Address{1}, i, 1, IpProto::kUdp},
              900 * kMillisecond);
  }
  EXPECT_EQ(ft.age(1500 * kMillisecond), 5u);
  EXPECT_EQ(ft.size(), 5u);
  EXPECT_EQ(ft.stats().aged_out, 5u);
}

TEST(Acl, PriorityAndFirstMatch) {
  Acl acl;
  AclRule deny;
  deny.rule_id = 1;
  deny.priority = 10;
  deny.dst_prefix = Ipv4Address::from_octets(9, 9, 9, 0);
  deny.dst_prefix_len = 24;
  deny.action = AclAction::kDeny;
  acl.add_rule(deny);

  AclRule permit;
  permit.rule_id = 2;
  permit.priority = 5;  // higher priority (lower value)
  permit.dst_prefix = Ipv4Address::from_octets(9, 9, 9, 9);
  permit.dst_prefix_len = 32;
  permit.action = AclAction::kPermit;
  acl.add_rule(permit);

  FiveTuple blocked{Ipv4Address{1}, Ipv4Address::from_octets(9, 9, 9, 8), 1,
                    2, IpProto::kUdp};
  FiveTuple excepted{Ipv4Address{1}, Ipv4Address::from_octets(9, 9, 9, 9), 1,
                     2, IpProto::kUdp};
  EXPECT_EQ(acl.evaluate(blocked), AclAction::kDeny);
  EXPECT_EQ(acl.evaluate(excepted), AclAction::kPermit);
  const auto [action, rule] = acl.evaluate_verbose(blocked);
  EXPECT_EQ(action, AclAction::kDeny);
  EXPECT_EQ(rule, 1u);
}

TEST(Acl, PortRangesAndProtocol) {
  Acl acl;
  AclRule r;
  r.rule_id = 7;
  r.dst_port_lo = 1000;
  r.dst_port_hi = 2000;
  r.proto = IpProto::kTcp;
  r.action = AclAction::kDeny;
  acl.add_rule(r);

  FiveTuple in_range{Ipv4Address{1}, Ipv4Address{2}, 1, 1500, IpProto::kTcp};
  FiveTuple udp{Ipv4Address{1}, Ipv4Address{2}, 1, 1500, IpProto::kUdp};
  FiveTuple out_of_range{Ipv4Address{1}, Ipv4Address{2}, 1, 2500,
                         IpProto::kTcp};
  EXPECT_EQ(acl.evaluate(in_range), AclAction::kDeny);
  EXPECT_EQ(acl.evaluate(udp), AclAction::kPermit);
  EXPECT_EQ(acl.evaluate(out_of_range), AclAction::kPermit);
  EXPECT_TRUE(acl.remove_rule(7));
  EXPECT_EQ(acl.evaluate(in_range), AclAction::kPermit);
}

TEST(Acl, DefaultActionConfigurable) {
  Acl acl;
  acl.set_default_action(AclAction::kDeny);
  EXPECT_EQ(acl.evaluate(FiveTuple{}), AclAction::kDeny);
}

TEST(TokenBucket, RateEnforcement) {
  // 1000 pps, burst 10: after the burst drains, ~1 token per ms.
  TokenBucket tb(1000.0, 10.0);
  int passed = 0;
  for (int i = 0; i < 20; ++i) {
    if (tb.consume(Nanos{0})) ++passed;
  }
  EXPECT_EQ(passed, 10);  // burst exhausted
  EXPECT_TRUE(tb.consume(5 * kMillisecond));  // 5 tokens refilled
  EXPECT_TRUE(tb.consume(5 * kMillisecond));
  EXPECT_TRUE(tb.consume(5 * kMillisecond));
  EXPECT_TRUE(tb.consume(5 * kMillisecond));
  EXPECT_TRUE(tb.consume(5 * kMillisecond));
  EXPECT_FALSE(tb.consume(5 * kMillisecond));
}

TEST(TokenBucket, SteadyStateRate) {
  TokenBucket tb(1e6, 100.0);  // 1 Mpps
  std::uint64_t passed = 0;
  // Offer 2 Mpps for one simulated second.
  for (NanoTime t = NanoTime{0}; t < kSecond; t += NanoTime{500}) {
    if (tb.consume(t)) ++passed;
  }
  EXPECT_NEAR(static_cast<double>(passed), 1e6, 1e4);
}

TEST(TokenBucket, UnlimitedWhenRateZero) {
  TokenBucket tb;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tb.consume(Nanos{0}));
}

TEST(TrTcm, ColorsByRate) {
  // CIR 1000 pps, PIR 2000 pps.
  TrTcmMeter m(1000, 10, 2000, 20);
  int green = 0, yellow = 0, red = 0;
  // Offer 4000 pps for 1 s.
  for (NanoTime t = NanoTime{0}; t < kSecond; t += NanoTime{250} * 1000) {
    switch (m.color(t)) {
      case MeterColor::kGreen: ++green; break;
      case MeterColor::kYellow: ++yellow; break;
      case MeterColor::kRed: ++red; break;
    }
  }
  EXPECT_NEAR(green, 1000, 60);
  EXPECT_NEAR(yellow, 1000, 60);
  EXPECT_NEAR(red, 2000, 80);
}

TEST(VmNcMap, SyntheticPopulationResolves) {
  VmNcMap map(1 << 12);
  EXPECT_EQ(map.populate_synthetic(10, 4), 40u);
  EXPECT_EQ(map.size(), 40u);
  const auto loc = map.lookup(3, VmNcMap::synthetic_vm_ip(3, 2));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->nc_ip, VmNcMap::synthetic_nc_ip(3, 2));
  EXPECT_FALSE(map.lookup(3, Ipv4Address{0xdeadbeef}).has_value());
  EXPECT_TRUE(map.erase(3, VmNcMap::synthetic_vm_ip(3, 2)));
  EXPECT_FALSE(map.lookup(3, VmNcMap::synthetic_vm_ip(3, 2)).has_value());
}

TEST(VmNcMap, LiveMigrationBumpsVersion) {
  VmNcMap map(1 << 10);
  map.populate_synthetic(2, 2);
  const auto vm = VmNcMap::synthetic_vm_ip(1, 0);
  const auto before = map.lookup(1, vm);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->version, 0);

  const auto new_nc = Ipv4Address::from_octets(172, 31, 0, 99);
  const auto v = map.migrate(1, vm, new_nc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  const auto after = map.lookup(1, vm);
  EXPECT_EQ(after->nc_ip, new_nc);
  EXPECT_EQ(after->vm_mac, before->vm_mac);  // identity unchanged
  // Second migration keeps counting; unknown VMs are rejected.
  EXPECT_EQ(map.migrate(1, vm, Ipv4Address{1}), 2);
  EXPECT_FALSE(map.migrate(9, vm, Ipv4Address{1}).has_value());
}

}  // namespace
}  // namespace albatross
