// Fleet engine tests: scenario spec round-trip, diurnal curve math,
// million-tenant population sharding, the LogHistogram / weighted-
// quantile percentile edges the SLO report depends on, fault scoping,
// and the end-to-end smoke scenario (determinism, conservation, the
// failover envelope and the zero-blackhole upgrade wave).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/testseed.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "telemetry/metrics.hpp"

namespace albatross {
namespace {

// --- scenario spec -------------------------------------------------------

TEST(FleetSpec, JsonRoundTrip) {
  const fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  const fleet::FleetSpec back = fleet::FleetSpec::from_json(spec.to_json());

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.horizon, spec.horizon);
  EXPECT_EQ(back.tick, spec.tick);
  EXPECT_EQ(back.drain, spec.drain);
  EXPECT_EQ(back.tenants, spec.tenants);
  EXPECT_DOUBLE_EQ(back.tenant_zipf_alpha, spec.tenant_zipf_alpha);
  EXPECT_EQ(back.local_vnis, spec.local_vnis);
  EXPECT_EQ(back.hot_tenants_per_gateway, spec.hot_tenants_per_gateway);
  EXPECT_EQ(back.flows_per_gateway, spec.flows_per_gateway);
  EXPECT_DOUBLE_EQ(back.total_rate_pps, spec.total_rate_pps);
  EXPECT_DOUBLE_EQ(back.slo_target, spec.slo_target);
  EXPECT_EQ(back.pod_startup, spec.pod_startup);
  EXPECT_EQ(back.validation, spec.validation);
  EXPECT_EQ(back.diurnal.period, spec.diurnal.period);
  EXPECT_DOUBLE_EQ(back.diurnal.trough, spec.diurnal.trough);
  EXPECT_DOUBLE_EQ(back.diurnal.peak, spec.diurnal.peak);
  EXPECT_EQ(back.upgrade.enabled, spec.upgrade.enabled);
  EXPECT_EQ(back.upgrade.start, spec.upgrade.start);
  EXPECT_EQ(back.upgrade.stagger, spec.upgrade.stagger);
  EXPECT_EQ(back.upgrade.parallel_per_az, spec.upgrade.parallel_per_az);

  ASSERT_EQ(back.azs.size(), spec.azs.size());
  for (std::size_t i = 0; i < spec.azs.size(); ++i) {
    EXPECT_EQ(back.azs[i].name, spec.azs[i].name);
    EXPECT_EQ(back.azs[i].pod_sets, spec.azs[i].pod_sets);
    EXPECT_EQ(back.azs[i].gateways_per_set, spec.azs[i].gateways_per_set);
    EXPECT_EQ(back.azs[i].servers, spec.azs[i].servers);
    EXPECT_EQ(back.azs[i].dual_proxy, spec.azs[i].dual_proxy);
    EXPECT_EQ(back.azs[i].diurnal_phase, spec.azs[i].diurnal_phase);
  }
  ASSERT_EQ(back.faults.size(), spec.faults.size());
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    EXPECT_EQ(back.faults[i].az, spec.faults[i].az);
    EXPECT_EQ(back.faults[i].event.at, spec.faults[i].event.at);
    EXPECT_EQ(back.faults[i].event.kind, spec.faults[i].event.kind);
    EXPECT_EQ(back.faults[i].event.gateway, spec.faults[i].event.gateway);
  }
  EXPECT_EQ(back.total_gateways(), spec.total_gateways());
}

TEST(FleetSpec, ParsesWrapperAndMsFields) {
  const std::string text = R"({
    "fleet": {
      "name": "mini", "seed": 7, "horizon_ms": 2000, "tick_ms": 100,
      "tenants": 5000, "local_vnis": 8,
      "upgrade": { "enabled": true, "start_ms": 500, "stagger_ms": 200,
                   "gateways_per_az": 2 },
      "azs": [ { "name": "a", "pod_sets": 2, "gateways_per_set": 3 } ],
      "faults": [ { "az": -1, "at_ms": 900, "kind": "link_flap",
                    "gateway": 1, "duration_ms": 50 } ]
    }
  })";
  const fleet::FleetSpec spec = fleet::FleetSpec::from_json_text(text);
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.horizon, 2 * kSecond);
  EXPECT_EQ(spec.tick, 100 * kMillisecond);
  EXPECT_EQ(spec.tenants, 5000u);
  ASSERT_EQ(spec.azs.size(), 1u);
  EXPECT_EQ(spec.azs[0].gateways(), 6u);
  EXPECT_EQ(spec.total_gateways(), 6u);
  EXPECT_TRUE(spec.upgrade.enabled);
  EXPECT_EQ(spec.upgrade.parallel_per_az, 2u);
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0].az, -1);
  EXPECT_EQ(spec.faults[0].event.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(spec.faults[0].event.duration, 50 * kMillisecond);
}

TEST(FleetSpec, RejectsMalformedScenarios) {
  EXPECT_THROW((void)fleet::FleetSpec::from_json_text("not json"),
               std::runtime_error);
  // No AZs at all.
  EXPECT_THROW((void)fleet::FleetSpec::from_json_text(R"({"azs": []})"),
               std::runtime_error);
  // A fault pinned to an AZ that does not exist.
  EXPECT_THROW((void)fleet::FleetSpec::from_json_text(R"({
    "azs": [ { "name": "a" } ],
    "faults": [ { "az": 3, "at_ms": 1, "kind": "pod_crash" } ]
  })"),
               std::runtime_error);
  // Unknown fault kind propagates from fault_kind_from_name.
  EXPECT_THROW((void)fleet::FleetSpec::from_json_text(R"({
    "azs": [ { "name": "a" } ],
    "faults": [ { "az": 0, "at_ms": 1, "kind": "gamma_ray" } ]
  })"),
               std::runtime_error);
}

// --- diurnal curve -------------------------------------------------------

TEST(Diurnal, CosineTroughPeakAndWrap) {
  fleet::DiurnalConfig cfg;
  cfg.period = 8 * kSecond;
  cfg.trough = 0.4;
  cfg.peak = 1.0;
  const fleet::DiurnalCurve curve(cfg);

  EXPECT_NEAR(curve.multiplier(NanoTime{0}), 0.4, 1e-9);
  EXPECT_NEAR(curve.multiplier(4 * kSecond), 1.0, 1e-9);
  EXPECT_NEAR(curve.multiplier(2 * kSecond), 0.7, 1e-9);  // midpoint
  // Wraps modulo the period.
  EXPECT_NEAR(curve.multiplier(8 * kSecond), curve.multiplier(NanoTime{0}),
              1e-9);
  EXPECT_NEAR(curve.multiplier(13 * kSecond), curve.multiplier(5 * kSecond),
              1e-9);
  // Closed-form mean of a raised cosine is the midpoint.
  EXPECT_NEAR(curve.mean_multiplier(), 0.7, 1e-9);
}

TEST(Diurnal, PhaseShiftsTheCurve) {
  fleet::DiurnalConfig cfg;
  cfg.period = 8 * kSecond;
  cfg.phase = 4 * kSecond;  // half a period: peak lands at t = 0
  const fleet::DiurnalCurve curve(cfg);
  EXPECT_NEAR(curve.multiplier(NanoTime{0}), cfg.peak, 1e-9);
  EXPECT_NEAR(curve.multiplier(4 * kSecond), cfg.trough, 1e-9);
}

TEST(Diurnal, PiecewisePointsInterpolateAndWrap) {
  fleet::DiurnalConfig cfg;
  cfg.period = 8 * kSecond;
  cfg.points = {{NanoTime{0}, 0.5}, {4 * kSecond, 1.0}};
  const fleet::DiurnalCurve curve(cfg);

  EXPECT_NEAR(curve.multiplier(NanoTime{0}), 0.5, 1e-9);
  EXPECT_NEAR(curve.multiplier(2 * kSecond), 0.75, 1e-9);
  EXPECT_NEAR(curve.multiplier(4 * kSecond), 1.0, 1e-9);
  // Past the last point the curve wraps back toward the first.
  EXPECT_NEAR(curve.multiplier(6 * kSecond), 0.75, 1e-9);
  // Trapezoid mean of the symmetric ramp.
  EXPECT_NEAR(curve.mean_multiplier(), 0.75, 1e-9);
}

// --- tenant population ---------------------------------------------------

TEST(TenantPopulation, ShardsEveryTenantExactlyOnce) {
  const std::uint64_t seed = check::test_seed(42);
  const fleet::TenantPopulation pop(10'000, 1.05, seed, 8, 64);

  double share_sum = 0.0;
  std::uint64_t count_sum = 0;
  for (std::uint32_t g = 0; g < pop.gateway_count(); ++g) {
    share_sum += pop.gateway_share(g);
    count_sum += pop.gateway_tenant_count(g);
    const auto& hot = pop.tenants_for_gateway(g);
    EXPECT_LE(hot.size(), 64u);
    // Ids are assigned in weight order, so the sample is ascending and
    // therefore heaviest-first.
    for (std::size_t i = 1; i < hot.size(); ++i) {
      EXPECT_LT(hot[i - 1], hot[i]);
    }
    for (const std::uint64_t t : hot) EXPECT_EQ(pop.gateway(t), g);
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_EQ(count_sum, 10'000u);
}

TEST(TenantPopulation, ZipfWeightsDecreaseWithRank) {
  const fleet::TenantPopulation pop(1000, 1.2, 1, 4, 16);
  EXPECT_GT(pop.weight(0), pop.weight(1));
  EXPECT_GT(pop.weight(1), pop.weight(10));
  EXPECT_GT(pop.weight(10), pop.weight(999));
  EXPECT_GT(pop.weight(0), 0.0);
  EXPECT_LT(pop.weight(0), 1.0);
}

TEST(TenantPopulation, DeterministicForSameSeed) {
  const fleet::TenantPopulation a(5000, 1.05, 99, 6, 32);
  const fleet::TenantPopulation b(5000, 1.05, 99, 6, 32);
  const fleet::TenantPopulation c(5000, 1.05, 100, 6, 32);
  bool differs_from_c = false;
  for (std::uint32_t g = 0; g < 6; ++g) {
    EXPECT_DOUBLE_EQ(a.gateway_share(g), b.gateway_share(g));
    EXPECT_EQ(a.gateway_tenant_count(g), b.gateway_tenant_count(g));
    EXPECT_EQ(a.tenants_for_gateway(g), b.tenants_for_gateway(g));
    differs_from_c |= a.tenants_for_gateway(g) != c.tenants_for_gateway(g);
  }
  EXPECT_TRUE(differs_from_c);  // a different seed shards differently
}

// --- shared Zipf / alias sampler (satellite: factored into common) ------

TEST(ZipfAlias, SamplerDelegatesToSharedAlias) {
  const std::size_t n = 1024;
  const double alpha = 0.9;
  const ZipfSampler zipf(n, alpha);
  const AliasSampler alias(ZipfSampler::rank_weights(n, alpha));

  double pmf_sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(zipf.pmf(r), alias.pmf(r));
    pmf_sum += zipf.pmf(r);
  }
  EXPECT_NEAR(pmf_sum, 1.0, 1e-9);

  // One uniform per draw, identical streams => identical ranks.
  Rng r1(check::test_seed(7));
  Rng r2(check::test_seed(7));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(r1), alias.pick(r2.next_double()));
  }
}

// --- percentile math the SLO report is built on --------------------------

TEST(HistogramEdge, EmptyHistogramQuantilesAreZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.999), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 0.0);
}

TEST(HistogramEdge, SingleBucketEveryQuantileIsTheValue) {
  LogHistogram h;
  h.record(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.0), 5u);
  EXPECT_EQ(h.quantile(0.5), 5u);
  EXPECT_EQ(h.quantile(0.99), 5u);
  EXPECT_EQ(h.quantile(0.999), 5u);
  EXPECT_EQ(h.quantile(1.0), 5u);
}

TEST(HistogramEdge, P99AndP999AtBucketEdges) {
  // 990 fast samples + 10 slow ones: p99 sits exactly on the edge of
  // the fast bucket (ceil(0.99 * 1000) = 990), p999 crosses into the
  // slow one.
  LogHistogram h;
  h.record_n(1, 990);
  h.record_n(1'000'000, 10);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_EQ(h.quantile(0.99), 1u);
  EXPECT_EQ(h.quantile(0.991), 1'000'000u);
  EXPECT_EQ(h.quantile(0.999), 1'000'000u);
  EXPECT_EQ(h.quantile(1.0), 1'000'000u);
  EXPECT_DOUBLE_EQ(h.fraction_above(1), 0.01);
}

TEST(WeightedQuantile, Edges) {
  using fleet::WeightedSample;
  using fleet::weighted_quantile;

  EXPECT_DOUBLE_EQ(weighted_quantile({}, 0.5), 0.0);

  // A single sample answers every q with its value.
  const std::vector<WeightedSample> one = {{7.5, 3.0}};
  for (const double q : {-1.0, 0.0, 0.5, 0.999, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(weighted_quantile(one, q), 7.5);
  }

  // Two equal-weight samples: the cumulative edge belongs to the lower
  // value (cumulative weight >= q * total).
  const std::vector<WeightedSample> two = {{2.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(weighted_quantile(two, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(two, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(two, 0.51), 2.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(two, 1.0), 2.0);

  // Skewed weights: the heavy sample dominates the high quantiles.
  const std::vector<WeightedSample> skew = {{10.0, 0.01}, {1.0, 0.99}};
  EXPECT_DOUBLE_EQ(weighted_quantile(skew, 0.99), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(skew, 0.995), 10.0);

  // All-zero weights degrade to the smallest value, not a crash.
  const std::vector<WeightedSample> zero = {{4.0, 0.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(weighted_quantile(zero, 0.5), 2.0);
}

// --- fault scoping -------------------------------------------------------

TEST(FleetEngine, AzScopedFaultStaysInItsZone) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);
  spec.upgrade.enabled = false;
  spec.faults.clear();
  fleet::FleetFaultSpec crash;
  crash.az = 0;
  crash.event.at = 2 * kSecond;
  crash.event.kind = FaultKind::kPodCrash;
  crash.event.gateway = 0;
  spec.faults.push_back(crash);

  const fleet::FleetResult result = fleet::run_fleet(spec);
  ASSERT_EQ(result.azs.size(), 2u);
  EXPECT_EQ(result.azs[0].injected.applied, 1u);
  EXPECT_EQ(result.azs[1].injected.applied, 0u);
  EXPECT_GE(result.azs[0].incidents.size(), 1u);
  EXPECT_EQ(result.azs[1].incidents.size(), 0u);
}

TEST(FleetEngine, FleetWideFaultLandsInEveryZone) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);
  spec.upgrade.enabled = false;
  spec.faults.clear();
  fleet::FleetFaultSpec crash;
  crash.az = -1;
  crash.event.at = 2 * kSecond;
  crash.event.kind = FaultKind::kPodCrash;
  crash.event.gateway = 1;
  spec.faults.push_back(crash);

  const fleet::FleetResult result = fleet::run_fleet(spec);
  for (const auto& az : result.azs) {
    EXPECT_EQ(az.injected.applied, 1u) << az.name;
    EXPECT_GE(az.incidents.size(), 1u) << az.name;
  }
}

// --- end-to-end smoke: determinism, conservation, SLO math ---------------

TEST(FleetEngine, SmokeRunIsDeterministicAndConserving) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);

  const fleet::FleetResult a = fleet::run_fleet(spec);
  const fleet::FleetResult b = fleet::run_fleet(spec);

  // Byte-identical canonical report and SLO JSON across same-seed runs.
  EXPECT_EQ(a.report_text(), b.report_text());
  EXPECT_EQ(a.slo.to_json().dump(), b.slo.to_json().dump());
  EXPECT_EQ(a.events_total, b.events_total);

  // Packet conservation holds in every AZ after the drain.
  EXPECT_EQ(a.conformance_violations, 0u);
  for (const auto& az : a.azs) {
    EXPECT_EQ(az.ledger_violations, 0u) << az.name;
    EXPECT_GT(az.offered, 0u) << az.name;
    EXPECT_GT(az.delivered, 0u) << az.name;
  }

  // The scripted crash opened and recovered an incident.
  EXPECT_GE(a.slo.incidents, 1u);
  EXPECT_GE(a.slo.recovered, 1u);
  EXPECT_GT(a.slo.availability, 0.0);
  EXPECT_LE(a.slo.availability, 1.0);

  // The upgrade wave actually ran.
  std::size_t started = 0;
  for (const auto& u : a.upgrades) started += u.started ? 1 : 0;
  EXPECT_GE(started, 1u);
}

TEST(FleetEngine, FailoverEnvelopeAndSloConsistency) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);
  const fleet::FleetResult result = fleet::run_fleet(spec);
  const fleet::SloReport& slo = result.slo;

  // The crash incident obeys the failover-bench envelope: BFD-scale
  // detection, sub-second blackhole, recovery inside the shortened
  // orchestrator timings (1 s startup + 0.5 s validation << 5 s).
  std::size_t crashes = 0;
  for (const auto& az : result.azs) {
    for (const auto& inc : az.incidents) {
      if (inc.kind != FaultKind::kPodCrash) continue;
      ++crashes;
      EXPECT_TRUE(inc.recovered);
      EXPECT_TRUE(inc.redeployed);
      EXPECT_LT(inc.detect_latency(), kSecond);
      EXPECT_LT(inc.blackhole_ns(), kSecond);
      EXPECT_LT(inc.recovery_ns(), 5 * kSecond);
    }
  }
  EXPECT_GE(crashes, 1u);

  // Availability must equal the per-gateway roll-up it claims to be:
  // 1 - sum_g share_g * downtime_g / horizon.
  const double horizon_ms = nanos_to_millis(spec.horizon);
  double weighted_down = 0.0;
  for (const auto& gw : slo.per_gateway) {
    weighted_down += gw.share * gw.downtime_ms;
  }
  EXPECT_NEAR(slo.availability, 1.0 - weighted_down / horizon_ms, 1e-9);
  EXPECT_NEAR(slo.error_budget_burn,
              (1.0 - slo.availability) / (1.0 - slo.slo_target), 1e-9);
  EXPECT_EQ(slo.slo_met, slo.availability >= slo.slo_target);
  EXPECT_EQ(slo.gateways, spec.total_gateways());
  EXPECT_EQ(slo.tenants, spec.tenants);
}

TEST(FleetEngine, HealthyUpgradeWaveBlackholesNothing) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);
  spec.faults.clear();  // upgrades only, no scripted faults

  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::size_t started = 0;
  std::size_t completed = 0;
  for (const auto& u : result.upgrades) {
    started += u.started ? 1 : 0;
    completed += u.completed ? 1 : 0;
  }
  EXPECT_GE(started, 1u);
  EXPECT_GE(completed, 1u);

  // Make-before-break: no incidents, no downtime, full availability.
  EXPECT_EQ(result.slo.incidents, 0u);
  EXPECT_EQ(result.slo.packets_lost, 0u);
  EXPECT_DOUBLE_EQ(result.slo.availability, 1.0);
  EXPECT_TRUE(result.slo.slo_met);
  for (const auto& az : result.azs) {
    EXPECT_EQ(az.ledger_violations, 0u) << az.name;
  }
}

TEST(FleetEngine, MetricsRegistryExportsFleetAggregates) {
  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  spec.seed = check::test_seed(spec.seed);
  fleet::FleetEngine engine(spec);
  engine.run();

  MetricsRegistry registry;
  register_fleet_metrics(registry, engine);
  EXPECT_GT(registry.size(), 0u);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("fleet_incidents_opened"), std::string::npos);
  EXPECT_NE(text.find("fleet_packets_lost"), std::string::npos);
  EXPECT_NE(text.find("az-a"), std::string::npos);
  EXPECT_NE(text.find("az-b"), std::string::npos);
}

// --- shrunk-trace replay bridge ------------------------------------------

TEST(FleetTraceReplay, MatchesCheckRunTrace) {
  const check::FuzzTrace trace =
      check::generate_trace(check::test_seed(11), 400, check::ChaosMode::kNone);
  const check::FuzzReport direct = check::run_trace(trace);
  const check::FuzzReport bridged = fleet::run_fleet_trace(trace);

  EXPECT_EQ(bridged.violations, direct.violations);
  EXPECT_EQ(bridged.packets, direct.packets);
  EXPECT_EQ(bridged.offered, direct.offered);
  EXPECT_EQ(bridged.delivered, direct.delivered);
  EXPECT_EQ(bridged.events, direct.events);
  EXPECT_EQ(bridged.ledger_checked, direct.ledger_checked);
  EXPECT_EQ(bridged.ledger, direct.ledger);
}

}  // namespace
}  // namespace albatross
