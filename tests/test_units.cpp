// Unit tests for the strong unit types in common/units.hpp: Nanos /
// FpgaCycles arithmetic and conversions, the wrapping Psn12 index space
// (including the 4095 -> 0 boundary the reorder engine depends on), and
// the CoreId / NumaNodeId identifier types.
#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

#include "common/types.hpp"
#include "nic/nic_pipeline.hpp"

namespace albatross {
namespace {

TEST(Quantity, AdditiveGroupAndComparisons) {
  const Nanos a{100};
  const Nanos b{250};
  EXPECT_EQ(a + b, Nanos{350});
  EXPECT_EQ(b - a, Nanos{150});
  EXPECT_EQ(-a, Nanos{-100});
  EXPECT_LT(a, b);
  EXPECT_EQ(abs(Nanos{-7}), Nanos{7});

  Nanos acc{};
  acc += a;
  acc -= Nanos{40};
  EXPECT_EQ(acc, Nanos{60});
}

TEST(Quantity, DimensionlessScaling) {
  EXPECT_EQ(Nanos{100} * 3, Nanos{300});
  EXPECT_EQ(4 * Nanos{25}, Nanos{100});
  EXPECT_EQ(Nanos{100} / 4, Nanos{25});
  // Floating scaling truncates toward zero like the casts it replaced.
  EXPECT_EQ(Nanos{100} * 1.5, Nanos{150});
  EXPECT_EQ(Nanos{101} * 0.5, Nanos{50});
  // Ratio of like quantities is dimensionless.
  EXPECT_EQ(Nanos{300} / Nanos{100}, 3);
  EXPECT_DOUBLE_EQ(ratio(Nanos{1}, Nanos{2}), 0.5);
  EXPECT_EQ(Nanos{350} % Nanos{100}, Nanos{50});
}

TEST(Quantity, UnitLiteralsAndHelpers) {
  EXPECT_EQ(5_us, Nanos{5'000});
  EXPECT_EQ(2_ms, Nanos{2'000'000});
  EXPECT_EQ(7_ns, Nanos{7});
  EXPECT_EQ(kMicrosecond, 1_us);
  EXPECT_EQ(kSecond, 1'000'000'000_ns);
  EXPECT_DOUBLE_EQ(nanos_to_millis(Nanos{1'500'000}), 1.5);
  EXPECT_EQ(millis_to_nanos(1.5), Nanos{1'500'000});
  EXPECT_DOUBLE_EQ(nanos_to_seconds(kSecond), 1.0);
}

TEST(Quantity, NumericLimitsSpecialized) {
  // Regression: the unspecialized primary template silently returns
  // Quantity{} (zero) from max(), which broke every "min over next
  // arrival times" scan in the traffic generators.
  EXPECT_EQ(std::numeric_limits<NanoTime>::max(), NanoTime::max());
  EXPECT_GT(std::numeric_limits<NanoTime>::max(), Nanos{1});
  EXPECT_LT(std::numeric_limits<NanoTime>::min(), Nanos{0});
  static_assert(std::numeric_limits<NanoTime>::is_specialized);
}

TEST(FpgaCycles, ClockConversions) {
  // One 250 MHz cycle is exactly 4 ns.
  EXPECT_EQ(cycles_to_nanos(FpgaCycles{1}), Nanos{4});
  EXPECT_EQ(cycles_to_nanos(FpgaCycles{25}), Nanos{100});
  // At the 500 MHz datapath clock, 2 ns.
  EXPECT_EQ(cycles_to_nanos(FpgaCycles{290}, 500), Nanos{580});
  // nanos -> cycles rounds up: hardware cannot finish mid-cycle.
  EXPECT_EQ(nanos_to_cycles(Nanos{4}), FpgaCycles{1});
  EXPECT_EQ(nanos_to_cycles(Nanos{5}), FpgaCycles{2});
  EXPECT_EQ(nanos_to_cycles(Nanos{100}, 500), FpgaCycles{50});
  EXPECT_EQ(7_cycles, FpgaCycles{7});
}

TEST(FpgaCycles, NicTimingsMatchPaperNanoseconds) {
  // The Tab. 4 figures are specified in datapath cycles; converting at
  // the stated clock must reproduce the paper's nanosecond values.
  const NicTimings t;
  EXPECT_EQ(t.basic_rx_ns(), Nanos{580});
  EXPECT_EQ(t.basic_tx_ns(), Nanos{840});
  EXPECT_EQ(t.overload_det_rx_ns(), Nanos{100});
  EXPECT_EQ(t.plb_rx_ns(), Nanos{50});
  EXPECT_EQ(t.plb_tx_ns(), Nanos{350});
  EXPECT_EQ(t.dma_rx_base_ns(), Nanos{3170});
  EXPECT_EQ(t.dma_tx_base_ns(), Nanos{2980});
}

TEST(Psn12, TruncatesToTwelveBits) {
  EXPECT_EQ(Psn12{0x1fff}.value(), 0xfffu);
  EXPECT_EQ(Psn12{4096}.value(), 0u);
  EXPECT_EQ(Psn12{4095}, Psn12{8191});
}

TEST(Psn12, WrapDistanceAtBoundary) {
  // The 4095 -> 0 boundary: a naive `to - from` comparison underflows,
  // a naive `<` says 0 comes before 4095. distance() must see one step.
  EXPECT_EQ(Psn12::distance(Psn12{4095}, Psn12{0}), 1u);
  EXPECT_EQ(Psn12::distance(Psn12{4095}, Psn12{4094}), 4095u);
  EXPECT_EQ(Psn12::distance(Psn12{0}, Psn12{4095}), 4095u);
  EXPECT_EQ(Psn12::distance(Psn12{7}, Psn12{7}), 0u);
  // Generalized power-of-two rings (queues configured below 4K).
  EXPECT_EQ(Psn12::distance(15u, 0u, 16u), 1u);
  EXPECT_EQ(Psn12::distance(0u, 15u, 16u), 15u);
  EXPECT_EQ(Psn12::slot_of(4097u, Psn12::kMod), 1u);
  EXPECT_EQ(Psn12::slot_of(17u, 16u), 1u);
  EXPECT_EQ(Psn12{4095} + 1, Psn12{0});
}

TEST(Psn12, ReorderQueueLegalCheckAcrossWrap) {
  // Drive a full-size (4K) reorder queue across the 4095 -> 0 PSN
  // boundary: every reserve/writeback/drain cycle must stay in-order
  // through the wrap, which only works if the legal check computes the
  // wrapping distance rather than comparing raw masked PSNs.
  ReorderQueue q(kReorderQueueEntries, kReorderTimeout);
  std::vector<ReorderEgress> out;
  const std::uint32_t kCycles = Psn12::kMod + 64;  // cross the boundary
  for (std::uint32_t i = 0; i < kCycles; ++i) {
    const NanoTime now = Nanos{static_cast<std::int64_t>(i) * 10};
    const auto psn = q.reserve(now);
    ASSERT_TRUE(psn.has_value());
    ASSERT_EQ(*psn, i);  // free-running, not truncated
    PlbMeta meta;
    meta.psn = *psn;
    q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta,
                now + Nanos{1}, out);
    q.drain(now + Nanos{2}, out);
  }
  EXPECT_EQ(out.size(), kCycles);
  EXPECT_EQ(q.stats().in_order_tx, kCycles);
  EXPECT_EQ(q.stats().legal_check_fail, 0u);
  EXPECT_EQ(q.stats().best_effort_tx, 0u);
  for (std::uint32_t i = 0; i < kCycles; ++i) {
    EXPECT_TRUE(out[i].in_order);
    EXPECT_EQ(out[i].meta.psn, i);
  }
}

TEST(StrongIds, DistinctTagsDistinctTypes) {
  const CoreId c{3};
  const NumaNodeId n{1};
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(c.index(), 3u);
  EXPECT_EQ(n.value(), 1u);
  EXPECT_LT(CoreId{2}, CoreId{5});
  static_assert(!std::is_same_v<CoreId, NumaNodeId>);
  static_assert(!std::is_convertible_v<CoreId, NumaNodeId>);
  static_assert(!std::is_convertible_v<std::uint16_t, CoreId>);

  std::unordered_set<CoreId> set;
  set.insert(CoreId{1});
  set.insert(CoreId{1});
  set.insert(CoreId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongTypes, MixingUnitsDoesNotCompile) {
  // Compile-time contract of the whole header: cross-unit arithmetic
  // and implicit raw-count construction are errors.
  static_assert(!std::is_invocable_v<std::plus<>, Nanos, FpgaCycles>);
  static_assert(!std::is_invocable_v<std::equal_to<>, Nanos, std::int64_t>);
  static_assert(!std::is_convertible_v<std::int64_t, Nanos>);
  static_assert(!std::is_invocable_v<std::less<>, Psn12, Psn12>);
}

}  // namespace
}  // namespace albatross
