// Traffic-generator tests: rates, flow identity, profiles, bursts.
#include <gtest/gtest.h>

#include "traffic/flow_gen.hpp"
#include "traffic/heavy_hitter.hpp"
#include "traffic/microburst.hpp"
#include "traffic/tenant_gen.hpp"

namespace albatross {
namespace {

/// Drains a source until `until`, returning packet count and a rate.
std::uint64_t drain_until(TrafficSource& src, NanoTime until) {
  std::uint64_t n = 0;
  while (true) {
    const auto t = src.next_time();
    if (!t || *t > until) break;
    auto pkt = src.emit();
    EXPECT_NE(pkt, nullptr);
    ++n;
  }
  return n;
}

TEST(PoissonFlowSource, RateIsRespected) {
  PoissonFlowConfig cfg;
  cfg.num_flows = 1000;
  cfg.rate_pps = 1e6;
  PoissonFlowSource src(cfg);
  const auto n = drain_until(src, 100 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(n), 1e5, 3e3);
}

TEST(PoissonFlowSource, DeterministicSpacingWhenConfigured) {
  PoissonFlowConfig cfg;
  cfg.rate_pps = 1000;
  cfg.poisson = false;
  PoissonFlowSource src(cfg);
  const auto t1 = *src.next_time();
  src.emit();
  const auto t2 = *src.next_time();
  EXPECT_EQ(t2 - t1, kMillisecond);
}

TEST(PoissonFlowSource, FlowsCarryConsistentIdentity) {
  PoissonFlowConfig cfg;
  cfg.num_flows = 50;
  cfg.tenants = 5;
  cfg.rate_pps = 1e6;
  PoissonFlowSource src(cfg);
  for (int i = 0; i < 1000; ++i) {
    auto pkt = src.emit();
    ASSERT_NE(pkt, nullptr);
    ASSERT_LT(pkt->flow_id, 50u);
    const FlowInfo& f = src.flows()[pkt->flow_id];
    EXPECT_EQ(pkt->tuple, f.tuple);
    EXPECT_EQ(pkt->vni, f.vni);
    EXPECT_GE(pkt->vni, 1u);
    EXPECT_LE(pkt->vni, 5u);
  }
}

TEST(PoissonFlowSource, PerFlowSequencesAreMonotonic) {
  PoissonFlowConfig cfg;
  cfg.num_flows = 10;
  cfg.rate_pps = 1e6;
  PoissonFlowSource src(cfg);
  std::vector<std::uint64_t> last(10, 0);
  for (int i = 0; i < 2000; ++i) {
    auto pkt = src.emit();
    if (pkt->seq_in_flow != 0) {
      EXPECT_GT(pkt->seq_in_flow, last[pkt->flow_id]);
    }
    last[pkt->flow_id] = pkt->seq_in_flow;
  }
}

TEST(PoissonFlowSource, SetRateZeroExhausts) {
  PoissonFlowConfig cfg;
  cfg.rate_pps = 1000;
  PoissonFlowSource src(cfg);
  src.set_rate(0);
  EXPECT_FALSE(src.next_time().has_value());
}

TEST(RateProfile, PiecewiseLookups) {
  RateProfile p{{NanoTime{0}, 100.0}, {10 * kSecond, 0.0}, {20 * kSecond, 50.0}};
  EXPECT_DOUBLE_EQ(p.rate_at(Nanos{0}), 100.0);
  EXPECT_DOUBLE_EQ(p.rate_at(5 * kSecond), 100.0);
  EXPECT_DOUBLE_EQ(p.rate_at(15 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(p.rate_at(25 * kSecond), 50.0);
  EXPECT_EQ(p.next_change(Nanos{0}), 10 * kSecond);
  EXPECT_EQ(p.next_change(12 * kSecond), 20 * kSecond);
  EXPECT_FALSE(p.next_change(30 * kSecond).has_value());
  RateProfile empty;
  EXPECT_DOUBLE_EQ(empty.rate_at(Nanos{1}), 0.0);
}

TEST(HeavyHitterSource, FollowsProfile) {
  HeavyHitterConfig cfg;
  cfg.flow = make_flow(99, 7, 0);
  cfg.profile = RateProfile{{NanoTime{0}, 1000.0}, {kSecond, 10000.0}};
  HeavyHitterSource src(cfg);
  // First second: ~1000 packets; second second: ~10000.
  std::uint64_t first = 0, second = 0;
  while (true) {
    const auto t = src.next_time();
    if (!t || *t > 2 * kSecond) break;
    (*t <= kSecond ? first : second) += 1;
    src.emit();
  }
  EXPECT_NEAR(static_cast<double>(first), 1000, 5);
  EXPECT_NEAR(static_cast<double>(second), 10000, 15);
}

TEST(HeavyHitterSource, ZeroRateSegmentsSkipped) {
  HeavyHitterConfig cfg;
  cfg.flow = make_flow(1, 1, 0);
  cfg.profile =
      RateProfile{{NanoTime{0}, 0.0}, {kSecond, 100.0}, {2 * kSecond, 0.0}};
  HeavyHitterSource src(cfg);
  const auto first = src.next_time();
  ASSERT_TRUE(first.has_value());
  EXPECT_GT(*first, kSecond);
  const auto n = drain_until(src, 10 * kSecond);
  EXPECT_NEAR(static_cast<double>(n), 100, 3);
  EXPECT_FALSE(src.next_time().has_value());
}

TEST(MicroburstSource, BurstsAreClustered) {
  MicroburstConfig cfg;
  cfg.mean_burst_gap = 10 * kMillisecond;
  cfg.mean_burst_packets = 100;
  cfg.burst_rate_pps = 10e6;
  MicroburstSource src(cfg);
  // Collect inter-arrival gaps; they must be bimodal: 100ns in-burst
  // spacing vs multi-ms gaps.
  std::uint64_t small_gaps = 0, big_gaps = 0;
  auto prev = *src.next_time();
  src.emit();
  for (int i = 0; i < 5000; ++i) {
    const auto t = *src.next_time();
    ((t - prev) < 10 * kMicrosecond ? small_gaps : big_gaps) += 1;
    prev = t;
    src.emit();
  }
  EXPECT_GT(small_gaps, big_gaps * 10);
  EXPECT_GT(src.bursts_started(), 10u);
}

TEST(MicroburstSource, SingleFlowBurstsStickToOneFlow) {
  MicroburstConfig cfg;
  cfg.single_flow_bursts = true;
  cfg.mean_burst_packets = 50;
  MicroburstSource src(cfg);
  // Packets within one burst share the flow id.
  auto first = src.emit();
  const auto id = first->flow_id;
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    auto pkt = src.emit();
    if (pkt->flow_id == id) ++same;
  }
  EXPECT_GT(same, 10);
}

TEST(TenantTrafficSource, RatesPerTenant) {
  std::vector<TenantSpec> tenants;
  for (Vni v = 1; v <= 4; ++v) {
    TenantSpec t;
    t.vni = v;
    // Fig. 13 setup (scaled 1/1000): 4/3/2/1 Kpps.
    t.profile = RateProfile{{NanoTime{0}, static_cast<double>(5 - v) * 1000.0}};
    tenants.push_back(t);
  }
  TenantTrafficSource src(std::move(tenants), NanoTime{});
  drain_until(src, kSecond);
  EXPECT_NEAR(static_cast<double>(src.emitted(1)), 4000, 10);
  EXPECT_NEAR(static_cast<double>(src.emitted(2)), 3000, 10);
  EXPECT_NEAR(static_cast<double>(src.emitted(3)), 2000, 10);
  EXPECT_NEAR(static_cast<double>(src.emitted(4)), 1000, 10);
  EXPECT_EQ(src.emitted(99), 0u);
}

TEST(TrafficMux, MergesInTimeOrder) {
  auto mk = [](double pps, std::uint64_t seed) {
    PoissonFlowConfig cfg;
    cfg.rate_pps = pps;
    cfg.seed = seed;
    cfg.num_flows = 4;
    return std::make_unique<PoissonFlowSource>(cfg);
  };
  TrafficMux mux;
  mux.add(mk(1000, 1));
  mux.add(mk(2000, 2));
  NanoTime prev = NanoTime{0};
  std::uint64_t n = 0;
  while (true) {
    const auto t = mux.next_time();
    if (!t || *t > kSecond) break;
    EXPECT_GE(*t, prev);
    prev = *t;
    mux.emit();
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n), 3000, 200);
}

}  // namespace
}  // namespace albatross
