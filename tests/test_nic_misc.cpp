// pkt_dir classification, DMA model, payload buffer / header-split,
// SR-IOV partitioning, FPGA resource ledger and NicPipeline integration.
#include <gtest/gtest.h>

#include "common/endian.hpp"
#include "nic/basic_pipeline.hpp"
#include "nic/dma.hpp"
#include "nic/nic_pipeline.hpp"
#include "nic/pkt_dir.hpp"
#include "nic/resources.hpp"
#include "nic/sriov.hpp"
#include "packet/parser.hpp"

namespace albatross {
namespace {

FiveTuple udp_tuple(std::uint16_t dport) {
  return FiveTuple{Ipv4Address::from_octets(10, 0, 0, 1),
                   Ipv4Address::from_octets(8, 0, 0, 1), 40000, dport,
                   IpProto::kUdp};
}

TEST(PktDir, ClassifiesProtocolVsData) {
  PktDir dir;
  dir.configure_pod(0, PktDirConfig{});

  auto bfd = Packet::make_synthetic(udp_tuple(kBfdPort), 0, 80);
  EXPECT_EQ(dir.classify_annotated(0, *bfd).cls, PktClass::kPriority);

  FiveTuple bgp_t = udp_tuple(kBgpPort);
  bgp_t.proto = IpProto::kTcp;
  auto bgp = Packet::make_synthetic(bgp_t, 0, 80);
  EXPECT_EQ(dir.classify_annotated(0, *bgp).cls, PktClass::kPriority);

  auto data = Packet::make_synthetic(udp_tuple(5000), 3, 256);
  EXPECT_EQ(dir.classify_annotated(0, *data).cls, PktClass::kPlb);
  EXPECT_EQ(dir.stats().priority, 2u);
  EXPECT_EQ(dir.stats().plb, 1u);
}

TEST(PktDir, RssPinnedPortsStayFlowAffine) {
  // Zoonet probes / health checks are pinned to RSS (§3.2).
  PktDirConfig cfg;
  cfg.rss_pinned_dst_ports = {7777};
  PktDir dir;
  dir.configure_pod(0, cfg);
  auto probe = Packet::make_synthetic(udp_tuple(7777), 1, 128);
  EXPECT_EQ(dir.classify_annotated(0, *probe).cls, PktClass::kRss);
}

TEST(PktDir, HeaderOnlyAboveThreshold) {
  PktDirConfig cfg;
  cfg.data_delivery = DeliveryMode::kHeaderOnly;
  cfg.header_split_threshold = 512;
  PktDir dir;
  dir.configure_pod(2, cfg);
  auto jumbo = Packet::make_synthetic(udp_tuple(5000), 1, 8500);
  auto tiny = Packet::make_synthetic(udp_tuple(5000), 1, 128);
  EXPECT_EQ(dir.classify_annotated(2, *jumbo).delivery,
            DeliveryMode::kHeaderOnly);
  EXPECT_EQ(dir.classify_annotated(2, *tiny).delivery,
            DeliveryMode::kWholePacket);
}

TEST(Dma, BaseLatencyAndSerialization) {
  DmaChannel ch(DmaConfig{.base_latency = Nanos{3000}, .bandwidth_gbps = 100.0,
                          .descriptors = 4});
  // 1250 bytes at 100 Gbps = 100ns of wire time.
  const auto t1 = ch.transfer(Nanos{0}, 1250);
  EXPECT_EQ(t1, NanoTime{100 + 3000});
  // A back-to-back transfer queues behind the first.
  const auto t2 = ch.transfer(Nanos{0}, 1250);
  EXPECT_EQ(t2, NanoTime{200 + 3000});
  EXPECT_EQ(ch.stats().transfers, 2u);
  EXPECT_EQ(ch.stats().bytes, 2500u);
}

TEST(Dma, DescriptorPressureCounted) {
  DmaChannel ch(DmaConfig{.base_latency = Nanos{0}, .bandwidth_gbps = 1.0,
                          .descriptors = 2});
  for (int i = 0; i < 16; ++i) ch.transfer(Nanos{0}, 10000);
  EXPECT_GT(ch.stats().descriptor_stalls, 0u);
}

TEST(PayloadBuffer, StoreFetchRelease) {
  PayloadBuffer buf(4);
  const auto id = buf.store({1, 2, 3, 4});
  EXPECT_EQ(buf.in_use(), 1u);
  EXPECT_EQ(buf.bytes_in_use(), 4u);
  const auto payload = buf.fetch_release(id);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->size(), 4u);
  EXPECT_EQ(buf.in_use(), 0u);
  EXPECT_FALSE(buf.fetch_release(id).has_value());  // single-shot
}

TEST(PayloadBuffer, EvictsOldestWhenFull) {
  PayloadBuffer buf(2);
  const auto a = buf.store({1});
  const auto b = buf.store({2});
  const auto c = buf.store({3});  // evicts a
  EXPECT_EQ(buf.evictions(), 1u);
  EXPECT_FALSE(buf.fetch_release(a).has_value());
  EXPECT_TRUE(buf.fetch_release(b).has_value());
  EXPECT_TRUE(buf.fetch_release(c).has_value());
}

TEST(BasicPipeline, VlanDecapEncapRoundTrip) {
  BasicPipeline bp;
  // Build a VLAN-tagged UDP frame by hand: eth + tag + ip + udp.
  UdpFlowSpec spec;
  spec.tuple = udp_tuple(5000);
  auto pkt = build_udp_packet(spec);
  // Insert a VLAN tag the way the uplink switch does.
  std::uint8_t macs[12];
  std::memcpy(macs, pkt->data(), 12);
  pkt->prepend(VlanTag::kSize);
  std::memcpy(pkt->data(), macs, 12);
  store_be16(pkt->data() + 12,
             static_cast<std::uint16_t>(EtherType::kVlan));
  VlanTag tag;
  tag.vlan_id = 123;
  tag.inner_ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  tag.write(pkt->data() + 14);

  std::optional<std::uint16_t> vlan;
  EXPECT_TRUE(bp.rx_process(*pkt, vlan));
  ASSERT_TRUE(vlan.has_value());
  EXPECT_EQ(*vlan, 123);
  // After decap the frame parses as plain IPv4.
  auto parsed = parse_packet(pkt->bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->vlan.has_value());
  EXPECT_EQ(parsed->l4_dst, 5000);

  // Re-encap on TX.
  PlbMeta none;
  EXPECT_TRUE(bp.tx_process(*pkt, none, vlan));
  parsed = parse_packet(pkt->bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->vlan.has_value());
  EXPECT_EQ(parsed->vlan->vlan_id, 123);
}

TEST(BasicPipeline, HeaderSplitAndReassembly) {
  BasicPipeline bp;
  auto pkt = Packet::make_synthetic(udp_tuple(5000), 1, 4096);
  pkt->mutable_bytes()[4000] = 0xAB;  // payload marker
  const auto slot = bp.split(*pkt);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(pkt->size(), kHeaderSplitBytes);

  PlbMeta meta;
  meta.header_only = true;
  meta.payload_id = *slot;
  EXPECT_TRUE(bp.tx_process(*pkt, meta, std::nullopt));
  EXPECT_EQ(pkt->size(), 4096u);
  EXPECT_EQ(pkt->data()[4000], 0xAB);
  EXPECT_EQ(bp.stats().reassembled, 1u);
}

TEST(BasicPipeline, HeaderDroppedWhenPayloadEvicted) {
  BasicPipeline bp(/*payload_slots=*/1);
  auto p1 = Packet::make_synthetic(udp_tuple(1), 1, 2048);
  auto p2 = Packet::make_synthetic(udp_tuple(2), 1, 2048);
  const auto s1 = bp.split(*p1);
  const auto s2 = bp.split(*p2);  // evicts s1's payload
  ASSERT_TRUE(s1 && s2);
  PlbMeta m1;
  m1.header_only = true;
  m1.payload_id = *s1;
  EXPECT_FALSE(bp.tx_process(*p1, m1, std::nullopt));
  EXPECT_EQ(bp.stats().headers_dropped_payload_gone, 1u);
}

TEST(Sriov, FourVfsAcrossIndependentPorts) {
  SriovManager mgr;
  const auto set = mgr.allocate(0, NumaNodeId{0}, 16);
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->vfs.size(), 4u);
  // The robustness wiring (Fig. B.2): 4 distinct (nic, port) paths.
  std::set<std::pair<std::uint16_t, std::uint16_t>> paths;
  for (const auto& vf : set->vfs) {
    paths.insert({vf.nic, vf.port});
    EXPECT_EQ(vf.queue_pairs, 16);
    EXPECT_LT(vf.nic, 2);  // NUMA 0 -> NICs 0,1
  }
  EXPECT_EQ(paths.size(), 4u);

  // NUMA 1 pods land on NICs 2,3.
  const auto set2 = mgr.allocate(1, NumaNodeId{1}, 8);
  ASSERT_TRUE(set2.has_value());
  for (const auto& vf : set2->vfs) EXPECT_GE(vf.nic, 2);

  // VLAN steering resolves back to the pod.
  EXPECT_EQ(mgr.pod_for_vlan(set->vfs[0].vlan_id), 0);
  EXPECT_EQ(mgr.pod_for_vlan(set2->vfs[3].vlan_id), 1);
  EXPECT_FALSE(mgr.pod_for_vlan(9999).has_value());
  EXPECT_EQ(mgr.vfs_in_use(), 8);
  mgr.release(0);
  EXPECT_EQ(mgr.vfs_in_use(), 4);
}

TEST(Sriov, QueueBudgetEnforced) {
  SriovConfig cfg;
  cfg.max_queue_pairs_per_port = 64;
  SriovManager mgr(cfg);
  EXPECT_TRUE(mgr.allocate(0, NumaNodeId{0}, 40).has_value());
  EXPECT_TRUE(mgr.allocate(1, NumaNodeId{0}, 20).has_value());
  EXPECT_FALSE(mgr.allocate(2, NumaNodeId{0}, 20).has_value());  // 40+20+20 > 64
}

TEST(Resources, LedgerMatchesTab5Shape) {
  FpgaResourceModel model;
  PlbEngineConfig plb;
  plb.num_reorder_queues = 8;
  PlbEngine e1(plb), e2(plb);
  TenantRateLimiter limiter;
  const auto rows =
      model.ledger({&e1, &e2}, limiter, /*payload_buffer_bytes=*/2 << 20);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].name, "Basic Pipeline");
  EXPECT_EQ(rows[4].name, "Sum");
  // Tab. 5 shape: basic pipeline dominates, PLB ~12.6% LUT, overload
  // detection small, total below the chip budget.
  EXPECT_GT(rows[0].lut_fraction, rows[2].lut_fraction);
  EXPECT_NEAR(rows[2].lut_fraction, 0.126, 1e-9);
  EXPECT_LT(rows[4].lut_fraction, 1.0);
  EXPECT_LT(rows[4].bram_fraction, 1.0);
  // PLB BRAM is structural: 16 queues x 4K entries x 23B x 8 bits.
  EXPECT_EQ(rows[2].bram_bits_structural, 16ull * 4096 * 23 * 8);
  // GOP SRAM ~2MB, held in LUTRAM/URAM (0% block RAM, Tab. 5).
  EXPECT_NEAR(static_cast<double>(rows[1].bram_bits_structural) / 8e6, 1.75,
              0.5);
  EXPECT_DOUBLE_EQ(rows[1].bram_fraction, 0.0);
}

TEST(NicPipeline, IngressDeliversPlbWithMeta) {
  NicPipeline nic;
  nic.register_pod(0, PlbEngineConfig{.num_reorder_queues = 2,
                                      .num_rx_queues = 4,
                                      .reorder_entries = 4096,
                                      .reorder_timeout = kReorderTimeout},
                   PktDirConfig{}, LbMode::kPlb);
  auto pkt = Packet::make_synthetic(udp_tuple(5000), 3, 256);
  pkt->rx_time = NanoTime{0};
  auto r = nic.ingress(std::move(pkt), 0, Nanos{0});
  EXPECT_EQ(r.outcome, IngressOutcome::kDelivered);
  EXPECT_EQ(r.cls, PktClass::kPlb);
  EXPECT_LT(r.rx_queue, 4);
  // Tab. 4: RX pipeline + DMA ~= 3.9us.
  EXPECT_NEAR(static_cast<double>(r.deliver_time.count()), 3900.0, 300.0);
  PlbMeta m;
  EXPECT_TRUE(r.pkt->peek_plb_meta(m));
}

TEST(NicPipeline, RssModeUsesToeplitzQueue) {
  NicPipeline nic;
  nic.register_pod(0, PlbEngineConfig{.num_reorder_queues = 1,
                                      .num_rx_queues = 8,
                                      .reorder_entries = 4096,
                                      .reorder_timeout = kReorderTimeout},
                   PktDirConfig{}, LbMode::kRss);
  // Same flow -> same queue, always; no meta attached.
  std::uint16_t queue = 0xffff;
  for (int i = 0; i < 20; ++i) {
    auto pkt = Packet::make_synthetic(udp_tuple(5000), 3, 256);
    auto r = nic.ingress(std::move(pkt), 0, i * NanoTime{1000});
    ASSERT_EQ(r.outcome, IngressOutcome::kDelivered);
    if (queue == 0xffff) queue = r.rx_queue;
    EXPECT_EQ(r.rx_queue, queue);
    PlbMeta m;
    EXPECT_FALSE(r.pkt->peek_plb_meta(m));
  }
}

TEST(NicPipeline, PriorityPacketsBypassGopAndPlb) {
  NicPipelineConfig cfg;
  cfg.gop.stage1_rate_pps = 1;  // GOP would drop any data packet
  cfg.gop.stage2_rate_pps = 1;
  cfg.gop.burst_seconds = 1e-6;
  NicPipeline nic(cfg);
  nic.register_pod(0, PlbEngineConfig{}, PktDirConfig{}, LbMode::kPlb);
  auto bfd = Packet::make_synthetic(udp_tuple(kBfdPort), 1, 80);
  auto r = nic.ingress(std::move(bfd), 0, Nanos{0});
  EXPECT_EQ(r.outcome, IngressOutcome::kDelivered);
  EXPECT_EQ(r.rx_queue, kPriorityQueue);
}

TEST(NicPipeline, EgressRoundTripInOrder) {
  NicPipeline nic;
  nic.register_pod(0, PlbEngineConfig{.num_reorder_queues = 1,
                                      .num_rx_queues = 1,
                                      .reorder_entries = 4096,
                                      .reorder_timeout = kReorderTimeout},
                   PktDirConfig{}, LbMode::kPlb);
  auto pkt = Packet::make_synthetic(udp_tuple(5000), 3, 256);
  auto r = nic.ingress(std::move(pkt), 0, Nanos{0});
  ASSERT_EQ(r.outcome, IngressOutcome::kDelivered);
  const NanoTime at_fpga = nic.tx_submit(0, r.deliver_time + NanoTime{700},
                                         r.pkt->size());
  auto emissions = nic.egress(std::move(r.pkt), 0, at_fpga);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_TRUE(emissions[0].in_order);
  EXPECT_GT(emissions[0].wire_time, at_fpga);
  // Trailer stripped before the wire.
  PlbMeta m;
  EXPECT_FALSE(emissions[0].pkt->peek_plb_meta(m));
}

TEST(NicPipeline, UnregisteredPodThrows) {
  NicPipeline nic;
  auto pkt = Packet::make_synthetic(udp_tuple(1), 1, 64);
  EXPECT_THROW(
      { auto r = nic.ingress(std::move(pkt), 3, Nanos{0}); (void)r; },
      std::out_of_range);
}

}  // namespace
}  // namespace albatross
