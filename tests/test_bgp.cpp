// BGP-lite: message wire format, session FSM, route propagation, hold
// timers, the switch control-plane saturation model, the proxy's peer
// reduction and BFD failure detection.
#include <gtest/gtest.h>

#include "bgp/bfd.hpp"
#include "bgp/message.hpp"
#include "bgp/proxy.hpp"
#include "bgp/session.hpp"
#include "bgp/switch_model.hpp"
#include "chaos/harness.hpp"

namespace albatross {
namespace {

TEST(BgpMessage, SerializeDeserializeRoundTrip) {
  BgpUpdate u;
  u.nlri = {RoutePrefix{Ipv4Address::from_octets(100, 64, 0, 0), 24},
            RoutePrefix{Ipv4Address::from_octets(100, 64, 1, 0), 24}};
  u.withdrawn = {RoutePrefix{Ipv4Address::from_octets(100, 65, 0, 0), 24}};
  u.next_hop = 0x0a000001;
  u.as_path = {64512, 65001};
  const auto msg = BgpMessage::make_update(u);
  const auto bytes = msg.serialize();
  const auto parsed = BgpMessage::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, BgpMsgType::kUpdate);
  EXPECT_EQ(parsed->update.nlri, u.nlri);
  EXPECT_EQ(parsed->update.withdrawn, u.withdrawn);
  EXPECT_EQ(parsed->update.next_hop, u.next_hop);
  EXPECT_EQ(parsed->update.as_path, u.as_path);

  const auto open = BgpMessage::make_open(64512, 42, 90);
  const auto open2 = BgpMessage::deserialize(open.serialize());
  ASSERT_TRUE(open2.has_value());
  EXPECT_EQ(open2->open.asn, 64512u);
  EXPECT_EQ(open2->open.router_id, 42u);
  EXPECT_EQ(open2->open.hold_time_s, 90);

  const auto notif = BgpMessage::deserialize(
      BgpMessage::make_notification(6, 2).serialize());
  ASSERT_TRUE(notif.has_value());
  EXPECT_EQ(notif->notif.code, 6);
}

TEST(BgpMessage, RejectsCorruptInput) {
  auto bytes = BgpMessage::make_keepalive().serialize();
  bytes[0] = 0x00;  // break the marker
  EXPECT_FALSE(BgpMessage::deserialize(bytes).has_value());
  auto bytes2 = BgpMessage::make_keepalive().serialize();
  bytes2.push_back(0);  // length mismatch
  EXPECT_FALSE(BgpMessage::deserialize(bytes2).has_value());
  EXPECT_FALSE(
      BgpMessage::deserialize(std::vector<std::uint8_t>(5, 0)).has_value());
}

TEST(BgpMessage, ProcessingCostsRankSensibly) {
  BgpUpdate big;
  big.nlri.resize(100);
  EXPECT_GT(BgpMessage::make_update(big).processing_cost(),
            BgpMessage::make_update(BgpUpdate{}).processing_cost());
  EXPECT_GT(BgpMessage::make_open(1, 1, 90).processing_cost(),
            BgpMessage::make_keepalive().processing_cost());
}

TEST(BgpSession, EstablishAndExchangeRoutes) {
  EventLoop loop;
  BgpSession a(loop, BgpSessionConfig{.asn = 64512, .router_id = 1});
  BgpSession b(loop,
               BgpSessionConfig{.asn = 65001, .router_id = 2, .passive = true});
  bool a_up = false;
  a.set_on_established([&](NanoTime) { a_up = true; });

  bgp_connect(a, b, kMillisecond, nullptr, nullptr, Nanos{0});
  loop.run_until(30 * kSecond);
  EXPECT_EQ(a.state(), BgpState::kEstablished);
  EXPECT_EQ(b.state(), BgpState::kEstablished);
  EXPECT_TRUE(a_up);

  // Route advertisement propagates into the peer's rib_in.
  const RoutePrefix vip{Ipv4Address::from_octets(100, 64, 0, 0), 24};
  a.announce(vip, 0x0a000001, loop.now());
  loop.run_until(loop.now() + kSecond);
  ASSERT_EQ(b.rib_in().count(vip), 1u);
  EXPECT_EQ(b.rib_in().at(vip).next_hop, 0x0a000001u);

  a.withdraw(vip, loop.now());
  loop.run_until(loop.now() + kSecond);
  EXPECT_EQ(b.rib_in().count(vip), 0u);
}

TEST(BgpSession, RoutesAnnouncedBeforeEstablishmentAreFlushed) {
  EventLoop loop;
  BgpSession a(loop, BgpSessionConfig{.asn = 64512, .router_id = 1});
  BgpSession b(loop,
               BgpSessionConfig{.asn = 65001, .router_id = 2, .passive = true});
  const RoutePrefix vip{Ipv4Address::from_octets(100, 64, 9, 0), 24};
  a.bind(&b, kMillisecond, nullptr);
  b.bind(&a, kMillisecond, nullptr);
  a.announce(vip, 42, Nanos{0});  // before start
  a.start(Nanos{0});
  b.start(Nanos{0});
  loop.run_until(30 * kSecond);
  EXPECT_EQ(b.rib_in().count(vip), 1u);
}

TEST(BgpSession, LinkFailureTriggersReconnect) {
  EventLoop loop;
  BgpSession a(loop, BgpSessionConfig{.asn = 1, .router_id = 1});
  BgpSession b(loop, BgpSessionConfig{.asn = 2, .router_id = 2,
                                      .passive = true});
  int downs = 0;
  a.set_on_down([&](NanoTime) { ++downs; });
  bgp_connect(a, b, kMillisecond, nullptr, nullptr, Nanos{0});
  loop.run_until(20 * kSecond);
  ASSERT_EQ(a.state(), BgpState::kEstablished);

  a.link_failure(loop.now());
  b.link_failure(loop.now());
  EXPECT_EQ(a.state(), BgpState::kIdle);
  EXPECT_EQ(downs, 1);
  // Auto-reconnect within the retry interval.
  loop.run_until(loop.now() + 30 * kSecond);
  EXPECT_EQ(a.state(), BgpState::kEstablished);
}

TEST(SwitchModel, FewPeersConvergeFast) {
  EventLoop loop;
  SwitchConfig cfg;
  UplinkSwitch sw(loop, cfg);
  std::vector<std::unique_ptr<BgpSession>> gws;
  for (int i = 0; i < 16; ++i) {
    gws.push_back(std::make_unique<BgpSession>(
        loop, BgpSessionConfig{.asn = 64512,
                               .router_id = 100u + static_cast<std::uint32_t>(i)}));
    sw.add_peer(*gws.back(), Nanos{0});
    gws.back()->announce(
        RoutePrefix{Ipv4Address{0x64400000u + (static_cast<std::uint32_t>(i) << 8)}, 24},
        1, Nanos{0});
  }
  loop.run_until(60 * kSecond);
  EXPECT_EQ(sw.established_count(), 16u);
  EXPECT_EQ(sw.routes_learned(), 16u);

  // Restart: 16 peers re-converge quickly (well under a minute).
  sw.restart(loop.now());
  const NanoTime t0 = loop.now();
  NanoTime converged = NanoTime{-1};
  while (loop.now() < t0 + 30 * 60 * kSecond) {
    loop.run_until(loop.now() + kSecond);
    if (sw.established_count() == 16 && sw.routes_learned() == 16) {
      converged = loop.now() - t0;
      break;
    }
  }
  ASSERT_GT(converged, NanoTime{});
  EXPECT_LT(converged, 60 * kSecond);
}

TEST(BgpProxy, OneUplinkPeerManyPods) {
  EventLoop loop;
  UplinkSwitch sw(loop, SwitchConfig{});
  BgpProxy proxy(loop, sw, BgpProxyConfig{}, NanoTime{});
  EXPECT_EQ(sw.peer_count(), 1u);  // only the proxy peers with the switch

  std::vector<std::unique_ptr<BgpSession>> pods;
  for (int i = 0; i < 4; ++i) {
    pods.push_back(std::make_unique<BgpSession>(
        loop, BgpSessionConfig{.asn = 64600,
                               .router_id = 200u + static_cast<std::uint32_t>(i)}));
    proxy.attach_pod(*pods.back(), Nanos{0});
  }
  loop.run_until(30 * kSecond);
  EXPECT_EQ(proxy.pods_attached(), 4u);
  EXPECT_EQ(sw.peer_count(), 1u);  // still 1: the whole point (Fig. 7)

  // Pod VIPs reach the switch through the proxy with proxy next-hop.
  for (int i = 0; i < 4; ++i) {
    pods[static_cast<std::size_t>(i)]->announce(
        RoutePrefix{Ipv4Address{0x64600000u + (static_cast<std::uint32_t>(i) << 8)}, 24},
        100u + static_cast<std::uint32_t>(i), loop.now());
  }
  loop.run_until(loop.now() + 5 * kSecond);
  EXPECT_EQ(sw.routes_learned(), 4u);
  EXPECT_GE(proxy.routes_proxied(), 4u);
}

TEST(Bfd, DetectsLossAfterThreeMissedProbes) {
  EventLoop loop;
  BfdConfig cfg;
  cfg.tx_interval = 50 * kMillisecond;
  BfdSession a(loop, cfg), b(loop, cfg);
  bool link_ok = true;  // harness-controlled loss switch
  int a_down_events = 0;
  a.set_tx([&](NanoTime t) {
    if (link_ok) b.on_rx(t);
  });
  b.set_tx([&](NanoTime t) {
    if (link_ok) a.on_rx(t);
  });
  a.set_on_state([&](BfdState s, NanoTime) {
    if (s == BfdState::kDown) ++a_down_events;
  });
  a.start(Nanos{0});
  b.start(Nanos{0});
  loop.run_until(kSecond);
  EXPECT_EQ(a.state(), BfdState::kUp);
  EXPECT_EQ(b.state(), BfdState::kUp);

  // Cut the link: 3 * 50ms detect window -> down within ~250ms.
  link_ok = false;
  const NanoTime cut = loop.now();
  loop.run_until(cut + 300 * kMillisecond);
  EXPECT_EQ(a.state(), BfdState::kDown);
  EXPECT_EQ(a_down_events, 1);
  EXPECT_GE(a.failures_detected(), 1u);

  // Restore: comes back up.
  link_ok = true;
  loop.run_until(loop.now() + 300 * kMillisecond);
  EXPECT_EQ(a.state(), BfdState::kUp);
}

// ---------------------------------------------- dual-proxy failover

TEST(DualBgpProxy, VipSurvivesProxyCrashAndRejoinsOnRestore) {
  // Full-stack version of the §5 redundancy claim: every gateway holds
  // an iBGP session to BOTH proxies, so killing one proxy's uplink
  // leaves the VIP routed via the other, with no BFD incident.
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  cfg.dual_proxy = true;
  GatewayChaosHarness harness(cfg);
  harness.platform().run_until(8 * kSecond);  // initial convergence
  ASSERT_TRUE(harness.vip_routed(0));
  ASSERT_EQ(harness.proxy_count(), 2u);

  harness.crash_proxy(0, harness.loop().now());
  harness.platform().run_until(harness.loop().now() + 5 * kSecond);
  EXPECT_TRUE(harness.vip_routed(0));  // standby path still installed
  EXPECT_EQ(harness.proxy(0).uplink_session().state(), BgpState::kIdle);
  EXPECT_EQ(harness.counters().gateway_down_events, 0u);  // no incident

  // Restored proxy re-establishes and re-learns the VIP from its pod
  // session's adj-rib-out flush.
  harness.restore_proxy(0, harness.loop().now());
  harness.platform().run_until(harness.loop().now() + 10 * kSecond);
  EXPECT_EQ(harness.proxy(0).uplink_session().state(),
            BgpState::kEstablished);
  const BgpSession* sw0 = harness.proxy(0).uplink_session().peer();
  EXPECT_EQ(sw0->rib_in().count(harness.vip(0)), 1u);
  EXPECT_TRUE(harness.vip_routed(0));
}

TEST(DualBgpProxy, LosingBothProxiesUnroutesTheVip) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.platform().run_until(8 * kSecond);
  ASSERT_TRUE(harness.vip_routed(0));
  harness.crash_proxy(0, harness.loop().now());
  harness.crash_proxy(1, harness.loop().now());
  harness.platform().run_until(harness.loop().now() + 5 * kSecond);
  EXPECT_FALSE(harness.vip_routed(0));
}

}  // namespace
}  // namespace albatross
