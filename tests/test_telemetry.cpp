// Metrics registry / exposition tests, plus the IPv6 additions (header
// round-trip, parser, v6 Toeplitz with the published test vectors).
#include <gtest/gtest.h>

#include "chaos/recovery.hpp"
#include "core/scenario.hpp"
#include "packet/parser.hpp"
#include "telemetry/metrics.hpp"

namespace albatross {
namespace {

TEST(Metrics, CountersAndGaugesCollectLive) {
  MetricsRegistry reg;
  double counter = 0;
  reg.register_counter("test_counter", {{"x", "1"}},
                       [&counter] { return counter; }, "help text");
  reg.register_gauge("test_gauge", {}, [] { return 42.5; });
  counter = 7;

  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "test_counter");
  EXPECT_EQ(samples[0].labels.at("x"), "1");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);  // live, not registration-time
  EXPECT_DOUBLE_EQ(samples[1].value, 42.5);
}

TEST(Metrics, HistogramExpandsToQuantiles) {
  MetricsRegistry reg;
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<std::uint64_t>(i));
  reg.register_histogram("lat", {{"pod", "3"}}, [&h] { return &h; });
  const auto samples = reg.collect();
  // 4 quantiles + count + mean.
  ASSERT_EQ(samples.size(), 6u);
  EXPECT_EQ(samples[0].labels.at("quantile"), "0.5");
  EXPECT_NEAR(samples[0].value, 500, 30);
  EXPECT_EQ(samples[4].name, "lat_count");
  EXPECT_DOUBLE_EQ(samples[4].value, 1000);
}

TEST(Metrics, ExposeFormat) {
  MetricsRegistry reg;
  reg.register_counter("albatross_up", {{"pod", "0"}}, [] { return 1.0; },
                       "liveness");
  const std::string text = reg.expose();
  EXPECT_NE(text.find("# HELP albatross_up liveness"), std::string::npos);
  EXPECT_NE(text.find("# TYPE albatross_up counter"), std::string::npos);
  EXPECT_NE(text.find("albatross_up{pod=\"0\"} 1"), std::string::npos);
}

TEST(Metrics, PlatformRegistrationCoversPodsAndGop) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 2, LbMode::kPlb);
  PoissonFlowConfig bg;
  bg.num_flows = 100;
  bg.rate_pps = 100'000;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);
  s.platform->run_until(20 * kMillisecond);

  MetricsRegistry reg;
  register_platform_metrics(reg, *s.platform);
  EXPECT_GE(reg.size(), 10u);
  const auto samples = reg.collect();
  double offered = -1, delivered = -1, hit_rate = -1;
  for (const auto& m : samples) {
    if (m.name == "albatross_pod_offered_packets") offered = m.value;
    if (m.name == "albatross_pod_delivered_packets") delivered = m.value;
    if (m.name == "albatross_cache_l3_hit_rate") hit_rate = m.value;
  }
  EXPECT_GT(offered, 1000);
  EXPECT_GT(delivered, 1000);
  EXPECT_LE(delivered, offered);
  EXPECT_GT(hit_rate, 0.2);
  EXPECT_LT(hit_rate, 0.6);
}

TEST(Metrics, ChaosRegistrationExportsIncidentCountersAndHistograms) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.attach_background_traffic(0, 20'000.0, 50);
  RecoveryController controller(harness);
  controller.arm();
  FaultPlan plan;
  plan.events.push_back({8 * kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);

  MetricsRegistry reg;
  register_platform_metrics(reg, harness.platform());
  register_chaos_metrics(reg, controller, &injector);

  harness.platform().run_until(9 * kSecond);  // crash detected + withdrawn
  const std::string text = reg.expose();
  for (const char* name :
       {"albatross_chaos_incidents_total", "albatross_chaos_redeploys_total",
        "albatross_chaos_packets_lost_total",
        "albatross_chaos_detect_latency_ns", "albatross_chaos_blackhole_ns",
        "albatross_chaos_recovery_ns", "albatross_chaos_faults_injected",
        "albatross_pod_blackholed_packets", "albatross_pod_offline"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("albatross_chaos_incidents_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("albatross_chaos_faults_injected 1"),
            std::string::npos);
  EXPECT_NE(text.find("albatross_pod_offline{pod=\"0\"} 1"),
            std::string::npos);

  // Values are live: once the replacement cuts over, the incident
  // histograms are fed and the offline gauge drops back to 0.
  harness.platform().run_until(25 * kSecond);
  const std::string after = reg.expose();
  EXPECT_NE(after.find("albatross_chaos_incidents_recovered 1"),
            std::string::npos);
  EXPECT_NE(after.find("albatross_pod_offline{pod=\"0\"} 0"),
            std::string::npos);
  EXPECT_NE(after.find("albatross_chaos_recovery_ns_count 1"),
            std::string::npos);
}

// ------------------------------------------------------------------ IPv6

Ipv6Address v6(std::initializer_list<std::uint8_t> prefix) {
  Ipv6Address a{};
  std::size_t i = 0;
  for (auto b : prefix) a.bytes[i++] = b;
  return a;
}

TEST(Ipv6, HeaderRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xa5;
  h.flow_label = 0xabcde;
  h.payload_length = 1024;
  h.next_header = IpProto::kTcp;
  h.hop_limit = 17;
  h.src = v6({0x20, 0x01, 0x0d, 0xb8, 1});
  h.dst = v6({0x20, 0x01, 0x0d, 0xb8, 2});
  std::uint8_t buf[Ipv6Header::kSize];
  h.write(buf);
  const auto r = Ipv6Header::read(buf, sizeof buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->traffic_class, 0xa5);
  EXPECT_EQ(r->flow_label, 0xabcdeu);
  EXPECT_EQ(r->payload_length, 1024);
  EXPECT_EQ(r->next_header, IpProto::kTcp);
  EXPECT_EQ(r->hop_limit, 17);
  EXPECT_EQ(r->src, h.src);
  EXPECT_EQ(r->dst, h.dst);
  buf[0] = 0x45;  // version 4
  EXPECT_FALSE(Ipv6Header::read(buf, sizeof buf).has_value());
}

TEST(Ipv6, ParserHandlesNativeV6Udp) {
  const auto src = v6({0x20, 0x01, 0x0d, 0xb8, 0, 1});
  const auto dst = v6({0x20, 0x01, 0x0d, 0xb8, 0, 2});
  auto pkt = build_udp6_packet(src, dst, 5000, 6000);
  const auto p = parse_packet(pkt->bytes());
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->ipv6.has_value());
  EXPECT_EQ(p->ipv6->src, src);
  EXPECT_EQ(p->l4_src, 5000);
  EXPECT_EQ(p->l4_dst, 6000);
  // The folded flow key is stable and direction-sensitive.
  const auto t1 = p->flow_tuple();
  const auto p2 = parse_packet(build_udp6_packet(src, dst, 5000, 6000)->bytes());
  EXPECT_EQ(p2->flow_tuple(), t1);
  const auto rev =
      parse_packet(build_udp6_packet(dst, src, 6000, 5000)->bytes());
  EXPECT_NE(rev->flow_tuple(), t1);
}

// Microsoft's published IPv6-with-TCP verification vectors.
TEST(Ipv6, ToeplitzV6MatchesPublishedVectors) {
  // dst 3ffe:2501:200:3::1 port 1766, src 3ffe:2501:200:1fff::7 port 2794
  Ipv6Address dst{};
  dst.bytes = {0x3f, 0xfe, 0x25, 0x01, 0x02, 0x00, 0x00, 0x03,
               0, 0, 0, 0, 0, 0, 0, 0x01};
  Ipv6Address src{};
  src.bytes = {0x3f, 0xfe, 0x25, 0x01, 0x02, 0x00, 0x1f, 0xff,
               0, 0, 0, 0, 0, 0, 0, 0x07};
  EXPECT_EQ(rss_hash_v6(src, dst, 2794, 1766), 0x40207d3du);

  // dst ff02::1 port 4739, src 3ffe:501:8::260:97ff:fe40:efab port 14230
  Ipv6Address dst2{};
  dst2.bytes = {0xff, 0x02, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x01};
  Ipv6Address src2{};
  src2.bytes = {0x3f, 0xfe, 0x05, 0x01, 0x00, 0x08, 0x00, 0x00,
                0x02, 0x60, 0x97, 0xff, 0xfe, 0x40, 0xef, 0xab};
  EXPECT_EQ(rss_hash_v6(src2, dst2, 14230, 4739), 0xdde51bbfu);
}

}  // namespace
}  // namespace albatross
