// SLB (L4 load balancer role): consistent-hash ring properties, session
// stickiness across backend churn, health transitions, weights.
#include <gtest/gtest.h>

#include <map>

#include "gateway/slb.hpp"

namespace albatross {
namespace {

FiveTuple client(std::uint32_t ip, std::uint16_t port) {
  return FiveTuple{Ipv4Address{ip}, Ipv4Address::from_octets(100, 64, 0, 1),
                   port, 443, IpProto::kTcp};
}

TEST(ConsistentHashRing, EmptyRingHasNoOwner) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.owner(12345).has_value());
}

TEST(ConsistentHashRing, CoversWholeSpaceAndWraps) {
  ConsistentHashRing ring(8);
  ring.add(0, 1);
  ring.add(1, 1);
  // Any hash maps to some backend, including past the last vnode (wrap).
  for (std::uint64_t h :
       {0ull, 1ull << 32, ~0ull, 0xdeadbeefdeadbeefull}) {
    const auto o = ring.owner(h);
    ASSERT_TRUE(o.has_value());
    EXPECT_LE(*o, 1);
  }
  EXPECT_EQ(ring.vnode_count(), 16u);
}

TEST(ConsistentHashRing, BalancedDistribution) {
  ConsistentHashRing ring(64);
  for (std::uint16_t b = 0; b < 8; ++b) ring.add(b, 1);
  std::map<std::uint16_t, int> counts;
  for (std::uint64_t i = 0; i < 80'000; ++i) {
    ++counts[*ring.owner(mix64(i))];
  }
  for (const auto& [b, c] : counts) {
    EXPECT_GT(c, 5'000) << "backend " << b;   // within ~2x of fair share
    EXPECT_LT(c, 20'000) << "backend " << b;
  }
}

TEST(ConsistentHashRing, RemovalOnlyRemapsVictimShare) {
  // The consistent-hashing property: removing one of N backends must
  // remap ~1/N of the key space, leaving everything else untouched.
  ConsistentHashRing ring(64);
  for (std::uint16_t b = 0; b < 8; ++b) ring.add(b, 1);
  std::vector<std::uint16_t> before;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    before.push_back(*ring.owner(mix64(i)));
  }
  ring.remove(3);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    const auto after = *ring.owner(mix64(i));
    EXPECT_NE(after, 3);
    if (after != before[i]) {
      EXPECT_EQ(before[i], 3);  // only keys owned by 3 may move
      ++moved;
    }
  }
  EXPECT_NEAR(static_cast<double>(moved) / 20'000, 1.0 / 8, 0.04);
}

TEST(ConsistentHashRing, WeightsShiftShare) {
  ConsistentHashRing ring(64);
  ring.add(0, 1);
  ring.add(1, 3);  // 3x weight
  int heavy = 0;
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    if (*ring.owner(mix64(i)) == 1) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 40'000, 0.75, 0.06);
}

TEST(SlbService, NewConnectionsSpreadAcrossBackends) {
  SlbService slb(Ipv4Address::from_octets(100, 64, 0, 1), 443, 4);
  for (int b = 0; b < 4; ++b) {
    slb.add_backend(Backend{Ipv4Address{0x0a010000u + b}, 8080, 1, true});
  }
  std::map<std::uint16_t, int> counts;
  for (std::uint32_t c = 0; c < 4000; ++c) {
    const auto b = slb.forward(client(0x0b000000u + c, 30000), CoreId{0}, Nanos{0}, 0x02);
    ASSERT_TRUE(b.has_value());
    ++counts[*b];
  }
  EXPECT_EQ(counts.size(), 4u);
  EXPECT_EQ(slb.stats().connections, 4000u);
}

TEST(SlbService, SessionsStickEvenWhenBackendTurnsUnhealthy) {
  SlbService slb(Ipv4Address{1}, 443, 2);
  slb.add_backend(Backend{Ipv4Address{0x0a010001}, 80, 1, true});
  slb.add_backend(Backend{Ipv4Address{0x0a010002}, 80, 1, true});

  const FiveTuple c1 = client(0x0b000001, 1234);
  const auto first = slb.forward(c1, CoreId{0}, Nanos{0}, 0x02 /*SYN*/);
  ASSERT_TRUE(first.has_value());
  // Backend goes unhealthy: existing session drains to the same place.
  slb.set_healthy(*first, false);
  const auto sticky = slb.forward(c1, CoreId{0}, Nanos{1000}, 0x10 /*ACK*/);
  ASSERT_TRUE(sticky.has_value());
  EXPECT_EQ(*sticky, *first);
  EXPECT_GE(slb.stats().stuck_to_session, 1u);

  // NEW connections avoid it.
  for (std::uint32_t c = 0; c < 200; ++c) {
    const auto b = slb.forward(client(0x0c000000u + c, 999), CoreId{0},
                               NanoTime{2000 + c}, 0x02);
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*b, *first);
  }
}

TEST(SlbService, FinTearsDownSession) {
  SlbService slb(Ipv4Address{1}, 443, 1);
  slb.add_backend(Backend{Ipv4Address{0x0a010001}, 80, 1, true});
  const FiveTuple c1 = client(7, 7);
  slb.forward(c1, CoreId{0}, Nanos{0}, 0x02);
  EXPECT_EQ(slb.stats().connections, 1u);
  slb.forward(c1, CoreId{0}, Nanos{100}, 0x01 /*FIN*/);  // sticky, then torn down
  // The next SYN counts as a fresh connection.
  slb.forward(c1, CoreId{0}, Nanos{200}, 0x02);
  EXPECT_EQ(slb.stats().connections, 2u);
}

TEST(SlbService, NoHealthyBackendDrops) {
  SlbService slb(Ipv4Address{1}, 443, 1);
  const auto b0 =
      slb.add_backend(Backend{Ipv4Address{0x0a010001}, 80, 1, true});
  slb.set_healthy(b0, false);
  EXPECT_FALSE(slb.forward(client(1, 1), CoreId{0}, Nanos{0}, 0x02).has_value());
  EXPECT_EQ(slb.stats().no_backend_drops, 1u);
}

TEST(SlbService, SessionAging) {
  SlbService slb(Ipv4Address{1}, 443, 2, /*sessions_per_core=*/256);
  slb.add_backend(Backend{Ipv4Address{0x0a010001}, 80, 1, true});
  for (std::uint32_t c = 0; c < 10; ++c) {
    slb.forward(client(c, 1), static_cast<CoreId>(c % 2), Nanos{0}, 0x02);
  }
  EXPECT_EQ(slb.age_sessions(120 * kSecond), 10u);  // 60s idle timeout
}

}  // namespace
}  // namespace albatross
