// Zoonet-style probe telemetry: wire format, collector accounting, and
// the §3.2 design point itself — probes pinned to RSS stay in order and
// measure clean latency even on a PLB pod, plus housekeeping aging.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "gateway/probe.hpp"

namespace albatross {
namespace {

FiveTuple probe_path() {
  return FiveTuple{Ipv4Address::from_octets(10, 0, 0, 1),
                   Ipv4Address::from_octets(10, 200, 0, 1), 42000,
                   kProbePort, IpProto::kUdp};
}

TEST(Probe, PayloadRoundTrip) {
  ProbePayload p{7, 123456789ull, 42 * kMicrosecond};
  std::uint8_t buf[ProbePayload::kWireSize];
  p.serialize(buf);
  const auto r = ProbePayload::deserialize(buf, sizeof buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->stream_id, 7u);
  EXPECT_EQ(r->sequence, 123456789ull);
  EXPECT_EQ(r->tx_time, 42 * kMicrosecond);
  buf[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(ProbePayload::deserialize(buf, sizeof buf).has_value());
  EXPECT_FALSE(ProbePayload::deserialize(buf, 4).has_value());
}

TEST(Probe, BuildAndExtract) {
  auto pkt = build_probe_packet(3, 99, Nanos{1000}, probe_path());
  const auto p = extract_probe(*pkt);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->stream_id, 3u);
  EXPECT_EQ(p->sequence, 99u);
  // Non-probe packets are rejected.
  UdpFlowSpec other;
  other.tuple = probe_path();
  other.tuple.dst_port = 53;
  EXPECT_FALSE(extract_probe(*build_udp_packet(other)).has_value());
}

TEST(Probe, CollectorCountsLossAndReordering) {
  ProbeCollector collector;
  EXPECT_TRUE(collector.observe(ProbePayload{1, 0, Nanos{0}}, Nanos{10'000}));
  EXPECT_TRUE(collector.observe(ProbePayload{1, 1, Nanos{100}}, Nanos{11'000}));
  EXPECT_TRUE(collector.observe(ProbePayload{1, 4, Nanos{200}}, Nanos{12'000}));  // 2,3 lost
  EXPECT_FALSE(collector.observe(ProbePayload{1, 2, Nanos{300}}, Nanos{13'000})); // late
  const auto* s = collector.stream(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->received, 4u);
  EXPECT_EQ(s->lost, 2u);
  EXPECT_EQ(s->reordered, 1u);
  EXPECT_EQ(s->latency.count(), 4u);
  EXPECT_EQ(collector.stream(42), nullptr);
}

TEST(Probe, RssPinnedProbesStayOrderedOnPlbPod) {
  // The §3.2 rule: probes (stateful for telemetry) are pinned to RSS in
  // pkt_dir, so they never ride the spray path and their samples come
  // back in injection order even while data traffic is PLB-sprayed.
  PlatformConfig pc;
  Platform platform(pc);
  GwPodConfig gp;
  gp.data_cores = 4;
  PktDirConfig dir;
  dir.rss_pinned_dst_ports = {kProbePort};
  const PodId pod = platform.create_pod(gp, 0, dir, LbMode::kPlb);

  // Inject probes every 100us through the full NIC ingress path;
  // the order oracle plays the Zoonet backend's sequence check.
  platform.enable_order_oracle(true);
  for (int i = 0; i < 200; ++i) {
    auto pkt = build_probe_packet(5, static_cast<std::uint64_t>(i),
                                  i * 100 * kMicrosecond, probe_path());
    pkt->flow_id = 0x50000;
    pkt->seq_in_flow = static_cast<std::uint64_t>(i);
    Packet* raw = pkt.release();
    platform.loop().schedule_at(i * 100 * kMicrosecond, [&platform, raw, pod] {
      // Deliver through the full NIC ingress path.
      auto owned = PacketPtr(raw);
      owned->rx_time = platform.loop().now();
      // Use a one-shot source shim: direct ingress via a tiny source.
      struct OneShot final : TrafficSource {
        PacketPtr pkt;
        NanoTime at;
        std::optional<NanoTime> next_time() const override {
          return pkt ? std::optional<NanoTime>(at) : std::nullopt;
        }
        PacketPtr emit() override { return std::move(pkt); }
      };
      auto src = std::make_unique<OneShot>();
      src->pkt = std::move(owned);
      src->at = platform.loop().now();
      platform.attach_source(std::move(src), pod);
    });
  }
  platform.run_until(30 * kMillisecond);

  const auto& t = platform.telemetry(pod);
  EXPECT_EQ(t.offered, 200u);
  EXPECT_EQ(t.delivered, 200u);
  EXPECT_EQ(t.flow_order_violations, 0u);
  EXPECT_EQ(t.delivered_disordered, 0u);
  // Pinned probes all used the same RSS queue -> one core processed all.
  std::uint64_t cores_used = 0;
  for (std::uint16_t c = 0; c < 4; ++c) {
    if (platform.pod(pod).core_processed(CoreId{c}) > 0) ++cores_used;
  }
  EXPECT_EQ(cores_used, 1u);
}

TEST(Probe, HousekeepingAgesConntrackAndOffload) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcInternet, 2, LbMode::kPlb);
  s.platform->nic().enable_session_offload(
      s.pod, SessionOffloadConfig{.capacity = 1024,
                                  .fpga_process_ns = Nanos{400},
                                  .idle_timeout = 50 * kMillisecond});
  s.platform->enable_housekeeping(20 * kMillisecond);

  // A short burst of flows, then silence: housekeeping must reclaim
  // both conntrack entries (30s timeout - not reached here) and
  // offloaded sessions (50ms timeout - reached).
  PoissonFlowConfig bg;
  bg.num_flows = 200;
  bg.rate_pps = 200'000;
  auto src = std::make_unique<PoissonFlowSource>(bg);
  auto* raw = src.get();
  s.platform->attach_source(std::move(src), s.pod);
  s.platform->run_until(20 * kMillisecond);
  raw->set_rate(0);  // silence
  s.platform->run_until(200 * kMillisecond);

  EXPECT_GT(s.platform->housekeeping_reclaimed(), 0u);
  EXPECT_EQ(s.platform->nic().session_offload(s.pod).size(), 0u);
}

}  // namespace
}  // namespace albatross
