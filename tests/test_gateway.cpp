// Gateway service chains, cost profiles, RSS indirection, GW pod core
// model (queueing, drop-flag emission, protocol path) and the Sailfish
// comparator constants.
#include <gtest/gtest.h>

#include "gateway/gw_pod.hpp"
#include "gateway/rss.hpp"
#include "gateway/sailfish_model.hpp"
#include "gateway/service.hpp"
#include "nic/nic_pipeline.hpp"
#include "tables/vm_nc_map.hpp"

namespace albatross {
namespace {

struct GatewayFixture : public ::testing::Test {
  GatewayFixture() {
    tables.populate(/*tenants=*/50, /*routes=*/5000, /*data_cores=*/4);
    // Pin the cache model to the production regime (multi-GB working
    // set, ~35% L3 hits) so cost calibration matches Tab. 3 regardless
    // of the scaled-down table population.
    cache.set_working_set_bytes(4ull << 30);
  }
  ServiceTables tables;
  CacheModel cache;
  Rng rng{7};
};

TEST_F(GatewayFixture, TablesArePopulatedConsistently) {
  EXPECT_EQ(tables.vm_nc.size(), 200u);  // 50 tenants x 4 VMs
  EXPECT_GE(tables.vxlan_routes.rule_count(), 5000u);
  EXPECT_TRUE(tables.vm_nc.lookup(7, VmNcMap::synthetic_vm_ip(7, 0))
                  .has_value());
  // Internet routes resolve generator destinations (8.0.0.0/8).
  EXPECT_TRUE(tables.internet_routes
                  .lookup(Ipv4Address::from_octets(8, 1, 2, 3))
                  .has_value());
  EXPECT_EQ(tables.per_core_conntrack.size(), 4u);
  EXPECT_GT(tables.memory_bytes(), 64u << 20);
}

TEST_F(GatewayFixture, AllServicesForwardValidTraffic) {
  for (const auto kind :
       {ServiceKind::kVpcVpc, ServiceKind::kVpcInternet, ServiceKind::kVpcIdc,
        ServiceKind::kVpcCloudService}) {
    auto svc = make_service(kind, tables, cache, NumaNodeId{0});
    ASSERT_NE(svc, nullptr);
    EXPECT_EQ(svc->kind(), kind);
    auto pkt = Packet::make_synthetic(
        FiveTuple{VmNcMap::synthetic_vm_ip(7, 0),
                  Ipv4Address::from_octets(8, 0, 0, 1), 1000, 2000,
                  IpProto::kUdp},
        7, 256);
    const auto out = svc->process(*pkt, CoreId{0}, false, NanoTime{0}, rng);
    EXPECT_EQ(out.action, ServiceAction::kForward);
    EXPECT_GT(out.cpu_ns, NanoTime{});
    EXPECT_LT(out.cpu_ns, 50 * kMicrosecond);  // §4.1 latency ceiling
  }
}

TEST_F(GatewayFixture, AclDenyDropsPacket) {
  auto svc = make_service(ServiceKind::kVpcVpc, tables, cache, NumaNodeId{0});
  auto pkt = Packet::make_synthetic(
      FiveTuple{VmNcMap::synthetic_vm_ip(7, 0),
                Ipv4Address::from_octets(9, 9, 9, 1), 1, 2, IpProto::kUdp},
      7, 256);
  EXPECT_EQ(svc->process(*pkt, CoreId{0}, false, NanoTime{0}, rng).action,
            ServiceAction::kDrop);
}

TEST_F(GatewayFixture, VpcInternetCreatesSnatSessions) {
  auto svc = make_service(ServiceKind::kVpcInternet, tables, cache, NumaNodeId{0});
  const FiveTuple flow{VmNcMap::synthetic_vm_ip(3, 1),
                       Ipv4Address::from_octets(8, 8, 8, 8), 1234, 80,
                       IpProto::kUdp};
  auto pkt = Packet::make_synthetic(flow, 3, 256);
  svc->process(*pkt, /*core=*/CoreId{2}, false, NanoTime{1000}, rng);
  const auto st = tables.per_core_conntrack[2]->peek(flow);
  ASSERT_TRUE(st.has_value());
  EXPECT_NE(st->nat_ip, 0u);
  EXPECT_EQ(st->packets, 1u);
  // Second packet on the same core reuses the session.
  auto pkt2 = Packet::make_synthetic(flow, 3, 256);
  svc->process(*pkt2, CoreId{2}, false, NanoTime{2000}, rng);
  EXPECT_EQ(tables.per_core_conntrack[2]->peek(flow)->packets, 2u);
}

TEST_F(GatewayFixture, ServiceCostRanking) {
  // Tab. 3 ordering: Internet is the most expensive; VPC-VPC cheapest.
  auto mean_cost = [&](ServiceKind kind) {
    auto svc = make_service(kind, tables, cache, NumaNodeId{0});
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
      auto pkt = Packet::make_synthetic(
          FiveTuple{VmNcMap::synthetic_vm_ip(1, 0),
                    Ipv4Address::from_octets(8, 0, 0, 1),
                    static_cast<std::uint16_t>(i), 2000, IpProto::kUdp},
          1, 256);
      sum += static_cast<double>(
          svc->process(*pkt, CoreId{0}, false, NanoTime{i}, rng).cpu_ns.count());
    }
    return sum / 5000;
  };
  const double vpc = mean_cost(ServiceKind::kVpcVpc);
  const double internet = mean_cost(ServiceKind::kVpcInternet);
  const double idc = mean_cost(ServiceKind::kVpcIdc);
  const double cs = mean_cost(ServiceKind::kVpcCloudService);
  EXPECT_GT(internet, vpc * 1.3);
  EXPECT_GT(idc, vpc);
  EXPECT_LT(cs, idc * 1.1);
  // Per-core capacity ~ 1 Mpps class (0.9-1.6 Mpps across services).
  EXPECT_GT(1e3 / internet, 0.75);
  EXPECT_LT(1e3 / vpc, 1.8);
}

TEST(ServiceProfiles, NamesAndShapes) {
  EXPECT_EQ(service_name(ServiceKind::kVpcInternet), "VPC-Internet");
  EXPECT_GT(service_profile(ServiceKind::kVpcInternet).mem_accesses,
            service_profile(ServiceKind::kVpcVpc).mem_accesses);
}

TEST(RssIndirection, EqualSpreadAndRetarget) {
  RssIndirection rss(4);
  std::vector<int> counts(4, 0);
  for (std::uint32_t h = 0; h < 1024; ++h) ++counts[rss.queue_for_hash(h)];
  for (int c : counts) EXPECT_EQ(c, 256);
  rss.set_entry(0, 3);
  EXPECT_EQ(rss.entry(0), 3);
  EXPECT_EQ(rss.queue_for_hash(128), 3u);  // bucket 0 retargeted
  // Flow-stable.
  FiveTuple t{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kTcp};
  EXPECT_EQ(rss.queue_for(t), rss.queue_for(t));
}

struct PodFixture : public ::testing::Test {
  PodFixture() {
    tables.populate(20, 1000, 4);
    cache.set_working_set_bytes(tables.memory_bytes());
  }
  EventLoop loop;
  ServiceTables tables;
  CacheModel cache;
};

TEST_F(PodFixture, ProcessesAndEmits) {
  GwPodConfig cfg;
  cfg.data_cores = 2;
  GwPod pod(cfg, loop, tables, cache);
  std::vector<NanoTime> emissions;
  pod.set_egress([&](PacketPtr, NanoTime t) { emissions.push_back(t); });

  for (int i = 0; i < 10; ++i) {
    pod.deliver(Packet::make_synthetic(
                    FiveTuple{VmNcMap::synthetic_vm_ip(1, 0),
                              Ipv4Address::from_octets(8, 0, 0, 1),
                              static_cast<std::uint16_t>(i), 2, IpProto::kUdp},
                    1, 256),
                static_cast<std::uint16_t>(i % 2), i * NanoTime{1000});
  }
  loop.run();
  EXPECT_EQ(emissions.size(), 10u);
  EXPECT_EQ(pod.stats().processed, 10u);
  EXPECT_EQ(pod.stats().forwarded, 10u);
  EXPECT_GT(pod.core_busy_ns(CoreId{0}), NanoTime{});
  EXPECT_GT(pod.core_busy_ns(CoreId{1}), NanoTime{});
  EXPECT_EQ(pod.core_processed(CoreId{0}) + pod.core_processed(CoreId{1}), 10u);
  EXPECT_GT(pod.service_histogram().count(), 0u);
}

TEST_F(PodFixture, DropFlagSentForAclDrops) {
  GwPodConfig cfg;
  cfg.data_cores = 1;
  cfg.drop_flag_enabled = true;
  GwPod pod(cfg, loop, tables, cache);
  std::uint64_t drop_notifications = 0;
  pod.set_egress([&](PacketPtr pkt, NanoTime) {
    PlbMeta m;
    if (pkt->peek_plb_meta(m) && m.drop) ++drop_notifications;
  });
  // ACL-blocked destination with a PLB meta attached.
  auto pkt = Packet::make_synthetic(
      FiveTuple{VmNcMap::synthetic_vm_ip(1, 0),
                Ipv4Address::from_octets(9, 9, 9, 1), 1, 2, IpProto::kUdp},
      1, 256);
  PlbMeta m;
  m.psn = 0;
  pkt->attach_plb_meta(m);
  pod.deliver(std::move(pkt), 0, Nanos{0});
  loop.run();
  EXPECT_EQ(pod.stats().dropped_service, 1u);
  EXPECT_EQ(pod.stats().drop_flags_sent, 1u);
  EXPECT_EQ(drop_notifications, 1u);
}

TEST_F(PodFixture, SilentDropWhenFlagDisabled) {
  GwPodConfig cfg;
  cfg.data_cores = 1;
  cfg.drop_flag_enabled = false;
  GwPod pod(cfg, loop, tables, cache);
  std::uint64_t emissions = 0;
  pod.set_egress([&](PacketPtr, NanoTime) { ++emissions; });
  auto pkt = Packet::make_synthetic(
      FiveTuple{VmNcMap::synthetic_vm_ip(1, 0),
                Ipv4Address::from_octets(9, 9, 9, 1), 1, 2, IpProto::kUdp},
      1, 256);
  PlbMeta m;
  pkt->attach_plb_meta(m);
  pod.deliver(std::move(pkt), 0, Nanos{0});
  loop.run();
  EXPECT_EQ(pod.stats().dropped_service, 1u);
  EXPECT_EQ(pod.stats().drop_flags_sent, 0u);
  EXPECT_EQ(emissions, 0u);
}

TEST_F(PodFixture, RingOverflowCountsDrops) {
  GwPodConfig cfg;
  cfg.data_cores = 1;
  cfg.rx_ring_capacity = 4;
  GwPod pod(cfg, loop, tables, cache);
  pod.set_egress([](PacketPtr, NanoTime) {});
  // Burst far beyond the ring without letting the core run.
  for (int i = 0; i < 20; ++i) {
    pod.deliver(Packet::make_synthetic(
                    FiveTuple{VmNcMap::synthetic_vm_ip(1, 0),
                              Ipv4Address::from_octets(8, 0, 0, 1), 1, 2,
                              IpProto::kUdp},
                    1, 256),
                0, Nanos{0});
  }
  loop.run();
  EXPECT_GT(pod.stats().dropped_ring, 0u);
  EXPECT_EQ(pod.stats().processed + pod.stats().dropped_ring, 20u);
}

TEST_F(PodFixture, PriorityPacketsGoToProtocolHandler) {
  GwPodConfig cfg;
  GwPod pod(cfg, loop, tables, cache);
  std::uint64_t protocol_rx = 0;
  pod.set_protocol_handler([&](PacketPtr, NanoTime) { ++protocol_rx; });
  pod.deliver(Packet::make_synthetic(FiveTuple{}, 0, 80), kPriorityQueue, Nanos{0});
  loop.run();
  EXPECT_EQ(protocol_rx, 1u);
  EXPECT_EQ(pod.stats().protocol_packets, 1u);
  EXPECT_EQ(pod.stats().processed, 0u);  // not a data packet
}

TEST(SailfishModel, Tab6Constants) {
  const auto rows = gateway_comparison();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "Sailfish");
  // Tab. 6 relationships.
  EXPECT_GT(rows[1].lpm_rules_millions / rows[0].lpm_rules_millions, 49.0);
  EXPECT_LT(rows[1].elasticity_seconds, 11.0);
  EXPECT_GT(rows[0].elasticity_seconds, 24 * 3600.0);
  EXPECT_DOUBLE_EQ(rows[1].price_per_device, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].price_per_az / rows[0].price_per_az, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].throughput_gbps / rows[1].throughput_gbps, 4.0);
  EXPECT_NEAR(rows[0].packet_rate_mpps / rows[1].packet_rate_mpps, 15.0, 3.5);
  EXPECT_DOUBLE_EQ(rows[1].latency_us / rows[0].latency_us, 10.0);
  EXPECT_DOUBLE_EQ(rows[2].throughput_gbps, 3200.0);
}

}  // namespace
}  // namespace albatross
