// Property test for the reorder engine: under arbitrary per-packet CPU
// delays below the timeout and no packet loss, the engine must deliver
// every packet exactly once, strictly in PSN order, with zero disorder.
// With losses and the drop flag, dropped packets must release resources
// without wedging the queue. Parameterized across seeds and queue sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "nic/plb_reorder.hpp"

namespace albatross {
namespace {

struct Case {
  std::uint64_t seed;
  std::uint32_t entries;
  double drop_rate;
};

class ReorderProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ReorderProperty, ExactlyOnceInOrderDelivery) {
  const Case c = GetParam();
  const std::uint64_t seed = check::test_seed(c.seed);
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);
  ReorderQueue q(c.entries, 100 * kMicrosecond);

  // Event-driven mini-sim: packets dispatched at 100ns spacing, each
  // with a random CPU delay in [1us, 80us] (below the 100us timeout).
  struct Pending {
    Psn psn;
    NanoTime ready;
    bool dropped;
  };
  std::vector<Pending> in_cpu;
  std::vector<ReorderEgress> out;
  std::vector<Psn> delivered;
  std::uint64_t drop_notifications = 0;

  const int kPackets = 20000;
  Psn next_expected_reserve = 0;
  NanoTime now = NanoTime{0};
  int injected = 0;
  while (injected < kPackets || !in_cpu.empty()) {
    // Inject at most one packet per step, keeping in-flight below the
    // FIFO capacity so nothing is lost at ingress.
    if (injected < kPackets && q.in_flight() < c.entries - 1) {
      const auto psn = q.reserve(now);
      ASSERT_TRUE(psn.has_value());
      ASSERT_EQ(*psn, next_expected_reserve++);
      const bool dropped = rng.next_bool(c.drop_rate);
      in_cpu.push_back(
          Pending{*psn,
                  now + kMicrosecond +
                      static_cast<NanoTime>(rng.next_below(79 * kMicrosecond)),
                  dropped});
      ++injected;
    }
    now += NanoTime{100};

    // Complete CPU work whose time has come (any order).
    for (std::size_t i = 0; i < in_cpu.size();) {
      if (in_cpu[i].ready <= now) {
        PlbMeta m;
        m.psn = in_cpu[i].psn;
        m.drop = in_cpu[i].dropped;
        if (m.drop) ++drop_notifications;
        q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), m, now, out);
        q.drain(now, out);
        in_cpu.erase(in_cpu.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    for (auto& e : out) {
      ASSERT_TRUE(e.in_order);
      delivered.push_back(e.meta.psn);
    }
    out.clear();
  }
  q.drain(now + kReorderTimeout + NanoTime{1}, out);
  for (auto& e : out) delivered.push_back(e.meta.psn);

  // Exactly-once: every non-dropped PSN delivered once, in order.
  ASSERT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  ASSERT_EQ(std::adjacent_find(delivered.begin(), delivered.end()),
            delivered.end());
  EXPECT_EQ(delivered.size() + drop_notifications,
            static_cast<std::size_t>(kPackets));
  const auto& s = q.stats();
  EXPECT_EQ(s.in_order_tx, delivered.size());
  EXPECT_EQ(s.best_effort_tx, 0u);
  EXPECT_EQ(s.timeout_releases, 0u);
  EXPECT_EQ(s.drop_releases, drop_notifications);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, ReorderProperty,
    ::testing::Values(Case{1, 4096, 0.0}, Case{2, 4096, 0.0},
                      Case{3, 256, 0.0}, Case{4, 64, 0.0},
                      Case{5, 4096, 0.02}, Case{6, 256, 0.05},
                      Case{7, 64, 0.10}, Case{8, 1024, 0.01}));

/// With drop-flag *disabled* (silent CPU drops), the engine must still
/// make progress via timeouts — at the cost of HOL events, which is the
/// Fig. 12 mechanism.
TEST(ReorderPropertyNoFlag, SilentDropsCauseTimeoutsButNoWedge) {
  const std::uint64_t seed = check::test_seed(99);
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);
  ReorderQueue q(256, 100 * kMicrosecond);
  std::vector<ReorderEgress> out;
  std::uint64_t silent_drops = 0;
  std::vector<Psn> delivered;

  NanoTime now = NanoTime{0};
  for (int i = 0; i < 5000; ++i) {
    while (q.in_flight() >= 255) {
      now += kMicrosecond;
      q.drain(now, out);
    }
    const auto psn = q.reserve(now);
    ASSERT_TRUE(psn.has_value());
    if (rng.next_bool(0.05)) {
      ++silent_drops;  // CPU drops it and never tells the NIC
    } else {
      PlbMeta m;
      m.psn = *psn;
      q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), m,
                  now + kMicrosecond, out);
    }
    now += NanoTime{500};
    q.drain(now, out);
    for (auto& e : out) delivered.push_back(e.meta.psn);
    out.clear();
  }
  q.drain(now + kReorderTimeout + NanoTime{1}, out);
  for (auto& e : out) delivered.push_back(e.meta.psn);

  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  EXPECT_EQ(delivered.size() + silent_drops, 5000u);
  // Every silent drop eventually costs a HOL timeout release.
  EXPECT_EQ(q.stats().timeout_releases, silent_drops);
  EXPECT_EQ(q.in_flight(), 0u);
}

}  // namespace
}  // namespace albatross
