// End-to-end tests of the conformance fuzz driver (src/check/fuzz.hpp):
// clean and benign-chaos traces must run violation-free with the ledger
// checked; an injected reorder stall (the intentional bug class) must be
// caught, shrink to a smaller reproducer, and round-trip through the
// JSON replay format with identical behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/fuzz.hpp"
#include "check/testseed.hpp"
#include "check/trace_gen.hpp"

namespace albatross {
namespace {

using check::ChaosMode;
using check::FuzzTrace;
using check::TraceOp;
using check::TraceOpKind;

class CleanFuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CleanFuzzSeeds, PacketsOnlyTraceIsConformant) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  const auto outcome = check::fuzz_one(seed, 4000, ChaosMode::kNone);
  EXPECT_FALSE(outcome.report.violated())
      << (outcome.report.details.empty()
              ? std::string{}
              : outcome.report.details.front().invariant + ": " +
                    outcome.report.details.front().detail);
  EXPECT_TRUE(outcome.report.ledger_checked);
  EXPECT_GT(outcome.report.offered, 0u);
  EXPECT_GT(outcome.report.delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanFuzzSeeds,
                         ::testing::Values(1ull, 2ull, 3ull));

class BenignChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenignChaosSeeds, BenignFaultsNeverBreakInvariants) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  const auto outcome = check::fuzz_one(seed, 4000, ChaosMode::kBenign);
  EXPECT_FALSE(outcome.report.violated())
      << (outcome.report.details.empty()
              ? std::string{}
              : outcome.report.details.front().invariant + ": " +
                    outcome.report.details.front().detail);
  EXPECT_TRUE(outcome.report.ledger_checked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenignChaosSeeds,
                         ::testing::Values(4ull, 5ull, 6ull, 7ull));

/// A trace guaranteed to contain the intentional bug: a mid-run reorder
/// stall several times the HOL timeout, wedging the FPGA reorder check
/// while packets keep arriving.
FuzzTrace stalled_trace(std::uint64_t seed) {
  FuzzTrace trace = check::generate_trace(seed, 4000, ChaosMode::kNone);
  // The stall wedges the PLB reorder check, so the scenario must use it
  // (some seeds draw the RSS baseline, which has no reorder engine).
  trace.scenario.mode = LbMode::kPlb;
  TraceOp stall;
  stall.kind = TraceOpKind::kReorderStall;
  stall.at = trace.scenario.horizon / 4;
  stall.duration = 600 * kMicrosecond;  // 6x the 100us reorder timeout
  trace.ops.push_back(stall);
  std::stable_sort(
      trace.ops.begin(), trace.ops.end(),
      [](const TraceOp& a, const TraceOp& b) { return a.at < b.at; });
  return trace;
}

TEST(FuzzDriver, InjectedReorderStallIsCaught) {
  const std::uint64_t seed = check::test_seed(21);
  SCOPED_TRACE(check::seed_banner(seed));
  const FuzzTrace trace = stalled_trace(seed);
  const auto report = check::run_trace(trace);
  ASSERT_TRUE(report.violated());
  ASSERT_FALSE(report.details.empty());
  EXPECT_EQ(report.details.front().invariant, "reorder.latency");
}

TEST(FuzzDriver, ShrinkProducesSmallerStillViolatingTrace) {
  const std::uint64_t seed = check::test_seed(21);
  SCOPED_TRACE(check::seed_banner(seed));
  const FuzzTrace failing = stalled_trace(seed);
  const FuzzTrace shrunk = check::shrink_trace(failing);
  EXPECT_LT(shrunk.ops.size(), failing.ops.size());
  const auto report = check::run_trace(shrunk);
  EXPECT_TRUE(report.violated());
  // The reproducer must keep the stall op — it IS the bug.
  EXPECT_TRUE(std::any_of(shrunk.ops.begin(), shrunk.ops.end(),
                          [](const TraceOp& op) {
                            return op.kind == TraceOpKind::kReorderStall;
                          }));
}

TEST(FuzzDriver, JsonRoundTripPreservesBehaviour) {
  const std::uint64_t seed = check::test_seed(21);
  SCOPED_TRACE(check::seed_banner(seed));
  const FuzzTrace trace = stalled_trace(seed);
  const std::string json = check::trace_to_json(trace);
  const auto parsed = check::trace_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->ops.size(), trace.ops.size());
  EXPECT_EQ(parsed->scenario.seed, trace.scenario.seed);
  EXPECT_EQ(parsed->packet_count(), trace.packet_count());
  // Re-serialising the parsed trace is byte-identical (stable dumps make
  // --replay diffable), and replaying it reproduces the same verdict.
  EXPECT_EQ(check::trace_to_json(*parsed), json);
  const auto original = check::run_trace(trace);
  const auto replayed = check::run_trace(*parsed);
  EXPECT_EQ(replayed.violated(), original.violated());
  EXPECT_EQ(replayed.violations, original.violations);
  EXPECT_EQ(replayed.offered, original.offered);
  EXPECT_EQ(replayed.delivered, original.delivered);
}

TEST(FuzzDriver, RejectsMalformedJson) {
  EXPECT_FALSE(check::trace_from_json("not json").has_value());
  EXPECT_FALSE(check::trace_from_json("{}").has_value());
  EXPECT_FALSE(
      check::trace_from_json(R"({"format":"wrong","ops":[]})").has_value());
}

}  // namespace
}  // namespace albatross
