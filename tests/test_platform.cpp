// End-to-end integration tests over the Platform façade: traffic source
// -> NIC ingress (GOP, PLB/RSS, DMA) -> GW pod cores -> TX DMA ->
// reorder -> wire, with telemetry and the per-flow order oracle.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "traffic/heavy_hitter.hpp"

namespace albatross {
namespace {

std::unique_ptr<PoissonFlowSource> background(double pps,
                                              std::size_t flows = 2000,
                                              std::uint64_t seed = 1) {
  PoissonFlowConfig cfg;
  cfg.num_flows = flows;
  cfg.tenants = 50;
  cfg.rate_pps = pps;
  cfg.seed = seed;
  return std::make_unique<PoissonFlowSource>(cfg);
}

TEST(Platform, EndToEndDeliveryInOrder) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 8, LbMode::kPlb);
  s.platform->enable_order_oracle(true);
  // 8 cores x ~1.4 Mpps capacity; offer 2 Mpps (~18% load) for 50 ms.
  s.platform->attach_source(background(2e6), s.pod);
  s.platform->run_until(50 * kMillisecond);
  // Let in-flight packets drain.
  s.platform->run_until(60 * kMillisecond);

  const auto& t = s.platform->telemetry(s.pod);
  EXPECT_GT(t.offered, 90'000u);
  // No overload: everything offered must be delivered (minus in-flight
  // tail at the cut-off) and strictly in per-flow order.
  EXPECT_GT(static_cast<double>(t.delivered) /
                static_cast<double>(t.offered),
            0.999);
  EXPECT_EQ(t.flow_order_violations, 0u);
  EXPECT_EQ(t.dropped_rate_limit, 0u);
  EXPECT_EQ(t.dropped_reorder_full, 0u);
  EXPECT_EQ(t.delivered_disordered, 0u);

  // Paper headline: ~20us average gateway latency on a 2023 CPU.
  // Composition: RX NIC 3.9us + service ~0.7us + queueing + TX 4.2us.
  EXPECT_GT(t.wire_latency.mean(), 8'000.0);
  EXPECT_LT(t.wire_latency.mean(), 25'000.0);
  EXPECT_LT(t.wire_latency.quantile(0.999), 100'000u);
}

TEST(Platform, RssModeAlsoDelivers) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 8, LbMode::kRss);
  s.platform->enable_order_oracle(true);
  s.platform->attach_source(background(1e6), s.pod);
  s.platform->run_until(50 * kMillisecond);
  s.platform->run_until(60 * kMillisecond);
  const auto& t = s.platform->telemetry(s.pod);
  EXPECT_GT(static_cast<double>(t.delivered) /
                static_cast<double>(t.offered),
            0.999);
  // RSS never reorders by construction.
  EXPECT_EQ(t.flow_order_violations, 0u);
  EXPECT_EQ(t.delivered_disordered, 0u);
}

TEST(Platform, HeavyHitterKillsRssButNotPlb) {
  // Mini Fig. 8: a single-flow hitter above one core's capacity.
  const double hitter_pps = 2.0e6;  // ~140% of one core (~1.4 Mpps)
  auto run = [&](LbMode mode) {
    auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 4, mode);
    HeavyHitterConfig hh;
    hh.flow = make_flow(424242, 7, 0);
    hh.profile = RateProfile{{NanoTime{0}, hitter_pps}};
    s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);
    s.platform->run_until(100 * kMillisecond);
    s.platform->run_until(110 * kMillisecond);
    const auto& t = s.platform->telemetry(s.pod);
    return static_cast<double>(t.delivered) / static_cast<double>(t.offered);
  };
  const double rss_delivery = run(LbMode::kRss);
  const double plb_delivery = run(LbMode::kPlb);
  // RSS pins the flow to one core -> ~30% loss; PLB sprays it.
  EXPECT_LT(rss_delivery, 0.85);
  EXPECT_GT(plb_delivery, 0.995);
}

TEST(Platform, TenantRateLimiterProtectsOthers) {
  // Mini Fig. 13/14 (scaled /10): pod capacity ~5.6 Mpps on 4 cores;
  // meters at 0.8+0.2 Mpps; tenant 1 bursts to 3.4 Mpps.
  PlatformConfig pc;
  pc.tenants = 10;
  pc.routes = 1000;
  pc.nic.gop.stage1_rate_pps = 0.8e6;
  pc.nic.gop.stage2_rate_pps = 0.2e6;
  pc.nic.gop.pre_meter_rate_pps = 1.0e6;
  Platform platform(pc);
  GwPodConfig pod_cfg;
  pod_cfg.service = ServiceKind::kVpcVpc;
  pod_cfg.data_cores = 4;
  const PodId pod = platform.create_pod(pod_cfg);

  std::vector<TenantSpec> tenants;
  for (Vni v = 1; v <= 4; ++v) {
    TenantSpec spec;
    spec.vni = v;
    const double base = static_cast<double>(5 - v) * 0.1e6;  // .4/.3/.2/.1
    spec.profile = RateProfile{{NanoTime{0}, base}};
    if (v == 1) spec.profile.add_step(20 * kMillisecond, 3.4e6);
    tenants.push_back(spec);
  }
  platform.attach_source(
      std::make_unique<TenantTrafficSource>(std::move(tenants), NanoTime{}), pod);
  platform.run_until(120 * kMillisecond);

  // Tenant 1 must be squeezed to ~stage1+stage2 = 1 Mpps equivalent.
  const auto& t1 = platform.tenant(1);
  EXPECT_GT(t1.dropped_rate_limit, 0u);
  const double t1_rate =
      static_cast<double>(t1.delivered) / 0.12 / 1e6;  // Mpps over 120ms
  EXPECT_LT(t1_rate, 1.3);
  // Innocent tenants sail through untouched.
  for (Vni v = 2; v <= 4; ++v) {
    const auto& tv = platform.tenant(v);
    EXPECT_EQ(tv.dropped_rate_limit, 0u);
    EXPECT_GT(static_cast<double>(tv.delivered) /
                  static_cast<double>(tv.offered),
              0.99);
  }
}

TEST(Platform, DropFlagPreventsHolTimeouts) {
  // Traffic aimed at the ACL deny rule (9.9.9.0/24) mixed with good
  // traffic. With the drop flag, reorder resources release instantly;
  // without it, every CPU drop costs a 100us HOL stall.
  auto run = [&](bool drop_flag) {
    auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 4, LbMode::kPlb,
                                     200, 20'000, drop_flag);
    PoissonFlowConfig bad;
    bad.num_flows = 50;
    bad.rate_pps = 50'000;
    bad.seed = 3;
    auto bad_src = std::make_unique<PoissonFlowSource>(bad);
    // Redirect all bad flows to the denied prefix.
    // (make_flow dst is 8.x; we rewrite tuples via a custom source.)
    s.platform->attach_source(background(400'000, 500, 5), s.pod);

    // Inject denied packets directly through the platform by attaching
    // a hitter whose flow targets the deny rule.
    HeavyHitterConfig hh;
    hh.flow = make_flow(777, 3, 0);
    hh.flow.tuple.dst_ip = Ipv4Address::from_octets(9, 9, 9, 7);
    hh.profile = RateProfile{{NanoTime{0}, 50'000.0}};
    s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);

    s.platform->run_until(100 * kMillisecond);
    const auto stats = s.platform->nic().engine(s.pod).total_stats();
    return stats;
  };
  const auto with_flag = run(true);
  const auto without_flag = run(false);
  EXPECT_GT(with_flag.drop_releases, 1000u);
  EXPECT_EQ(with_flag.timeout_releases, 0u);
  EXPECT_EQ(without_flag.drop_releases, 0u);
  EXPECT_GT(without_flag.timeout_releases, 1000u);
}

TEST(Platform, ScenarioSummaryMath) {
  PodTelemetry t;
  t.offered = 1000;
  t.delivered = 900;
  t.delivered_disordered = 9;
  t.wire_latency.record_n(20'000, 900);
  const auto r = summarize(t, kSecond);
  EXPECT_NEAR(r.offered_mpps, 0.001, 1e-9);
  EXPECT_NEAR(r.loss_rate, 0.1, 1e-9);
  EXPECT_NEAR(r.mean_latency_us, 20.0, 0.5);
  EXPECT_NEAR(r.disorder_rate, 0.01, 1e-9);
  EXPECT_EQ(format_mpps(81.64), "81.6Mpps");
}

TEST(Platform, CoreCapacityClosedForm) {
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  // ~1 Mpps per core class across services (§2.1).
  for (const auto k : {ServiceKind::kVpcVpc, ServiceKind::kVpcInternet,
                       ServiceKind::kVpcIdc, ServiceKind::kVpcCloudService}) {
    const double mpps = core_capacity_mpps(k, cache, false);
    EXPECT_GT(mpps, 0.8) << service_name(k);
    EXPECT_LT(mpps, 1.7) << service_name(k);
  }
  // Tab. 3 ratio: Internet ~0.63x of VPC-VPC.
  const double ratio =
      core_capacity_mpps(ServiceKind::kVpcInternet, cache, false) /
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false);
  EXPECT_NEAR(ratio, 0.634, 0.08);
}

TEST(Platform, ResetTelemetryClearsCounters) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 2, LbMode::kPlb);
  s.platform->attach_source(background(100'000), s.pod);
  s.platform->run_until(10 * kMillisecond);
  EXPECT_GT(s.platform->telemetry(s.pod).offered, 0u);
  s.platform->reset_telemetry();
  EXPECT_EQ(s.platform->telemetry(s.pod).offered, 0u);
  EXPECT_EQ(s.platform->telemetry(s.pod).wire_latency.count(), 0u);
}

}  // namespace
}  // namespace albatross
