// Reorder-engine unit tests: the paper's FIFO/BUF/BITMAP semantics,
// the four reorder-check cases, the legal check and its deliberate
// 12-bit aliasing, drop-flag releases and FIFO-full ingress drops.
#include <gtest/gtest.h>

#include <set>

#include "nic/plb_dispatch.hpp"
#include "nic/plb_reorder.hpp"

namespace albatross {
namespace {

PlbMeta meta_of(Psn psn, bool drop = false) {
  PlbMeta m;
  m.psn = psn;
  m.drop = drop;
  return m;
}

TEST(ReorderQueue, InOrderPassThrough) {
  ReorderQueue q(16, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (Psn i = 0; i < 8; ++i) {
    EXPECT_EQ(q.reserve(i * NanoTime{10}), i);
  }
  EXPECT_EQ(q.in_flight(), 8u);
  for (Psn i = 0; i < 8; ++i) {
    q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(i), Nanos{100},
                out);
    q.drain(Nanos{100}, out);
  }
  EXPECT_EQ(out.size(), 8u);
  for (const auto& e : out) EXPECT_TRUE(e.in_order);
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_EQ(q.stats().in_order_tx, 8u);
  EXPECT_EQ(q.stats().best_effort_tx, 0u);
}

TEST(ReorderQueue, OutOfOrderWritebacksAreReordered) {
  ReorderQueue q(16, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (Psn i = 0; i < 4; ++i) q.reserve(Nanos{0});
  // Return 2,3 first: nothing may leave (Case 2 at head).
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(2), Nanos{10}, out);
  q.drain(Nanos{10}, out);
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(3), Nanos{11}, out);
  q.drain(Nanos{11}, out);
  EXPECT_TRUE(out.empty());
  // Return 0: 0 leaves; 1 still blocks 2,3.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(0), Nanos{12}, out);
  q.drain(Nanos{12}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].meta.psn, 0u);
  // Return 1: 1,2,3 all leave in order.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(1), Nanos{13}, out);
  q.drain(Nanos{13}, out);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(out[i].in_order);
    EXPECT_EQ(out[i].meta.psn, i);
  }
}

TEST(ReorderQueue, Case1TimeoutReleasesHead) {
  ReorderQueue q(16, 100 * kMicrosecond);
  std::vector<ReorderEgress> out;
  q.reserve(Nanos{0});          // psn 0, never returned
  q.reserve(Nanos{0});          // psn 1
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(1), Nanos{10}, out);
  q.drain(Nanos{10}, out);
  EXPECT_TRUE(out.empty());  // HOL: psn 0 blocks
  // Before the deadline nothing moves.
  q.drain(99 * kMicrosecond, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.head_deadline(), 100 * kMicrosecond);
  // Past the deadline the head is released and psn 1 flows out in order.
  q.drain(101 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].meta.psn, 1u);
  EXPECT_EQ(q.stats().timeout_releases, 1u);
  EXPECT_FALSE(q.head_deadline().has_value());
}

TEST(ReorderQueue, LateArrivalFailsLegalCheckAndGoesBestEffort) {
  ReorderQueue q(16, 100 * kMicrosecond);
  std::vector<ReorderEgress> out;
  q.reserve(Nanos{0});  // psn 0
  q.drain(200 * kMicrosecond, out);  // timeout releases it
  EXPECT_EQ(q.stats().timeout_releases, 1u);
  out.clear();
  // The packet finally comes back: window empty -> legal check fails ->
  // best-effort transmission.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(0),
              210 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].in_order);
  EXPECT_EQ(q.stats().legal_check_fail, 1u);
  EXPECT_EQ(q.stats().best_effort_tx, 1u);
}

TEST(ReorderQueue, Case3AliasedStalePacket) {
  // Small queue (8 entries) so PSN aliasing is easy to construct: a
  // stale packet with psn = head-8 has the same low-3 bits as head.
  ReorderQueue q(8, kReorderTimeout);
  std::vector<ReorderEgress> out;
  // Fill and time out the first 8 packets (never returned).
  for (int i = 0; i < 8; ++i) q.reserve(Nanos{0});
  q.drain(kReorderTimeout + NanoTime{1}, out);
  EXPECT_EQ(q.stats().timeout_releases, 8u);
  EXPECT_TRUE(out.empty());
  // Reserve the next window: psn 8..15 at t=200us.
  for (int i = 0; i < 8; ++i) q.reserve(200 * kMicrosecond);
  // Stale psn 0 returns: (0 - 8) & 7 == 0 -> aliases onto slot of psn 8
  // and passes the legal check.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(0),
              201 * kMicrosecond, out);
  EXPECT_EQ(q.stats().legal_check_alias, 1u);
  EXPECT_TRUE(out.empty());
  // Reorder check at head: BITMAP valid but full PSN mismatch -> Case 3:
  // stale goes out best-effort, head keeps waiting for the true psn 8.
  q.drain(202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].in_order);
  EXPECT_EQ(out[0].meta.psn, 0u);
  EXPECT_EQ(q.in_flight(), 8u);
  // The real psn 8 then flows in order.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(8),
              203 * kMicrosecond, out);
  q.drain(203 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[1].in_order);
  EXPECT_EQ(out[1].meta.psn, 8u);
}

TEST(ReorderQueue, SlotCollisionEvictsStaleOccupantBestEffort) {
  // Same aliasing setup as Case 3, but the slot's true owner returns
  // while the stale packet still occupies it. The stale occupant must
  // leave best-effort at writeback time; overwriting it instead would
  // destroy a packet with no emission and no counter (caught in the
  // field by the ledger.wire conservation probe as delivered < forwards).
  ReorderQueue q(8, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (int i = 0; i < 8; ++i) q.reserve(Nanos{0});
  q.drain(kReorderTimeout + NanoTime{1}, out);
  for (int i = 0; i < 8; ++i) q.reserve(200 * kMicrosecond);
  // Stale psn 0 aliases onto psn 8's slot and sits there...
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(0),
              201 * kMicrosecond, out);
  EXPECT_TRUE(out.empty());
  // ...until the true psn 8 writes back before any reorder-check pass.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(8),
              202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].in_order);
  EXPECT_EQ(out[0].meta.psn, 0u);
  // The owner then drains in order: both packets reached the wire.
  q.drain(202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[1].in_order);
  EXPECT_EQ(out[1].meta.psn, 8u);
  EXPECT_EQ(q.stats().best_effort_tx, 1u);
  EXPECT_EQ(q.stats().in_order_tx, 1u);
}

TEST(ReorderQueue, SlotCollisionStaleArrivalLeavesImmediately) {
  // Reverse arrival order: the owner holds the slot and the stale alias
  // arrives second. The alias goes straight out best-effort; the owner
  // keeps its slot and still transmits in order.
  ReorderQueue q(8, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (int i = 0; i < 8; ++i) q.reserve(Nanos{0});
  q.drain(kReorderTimeout + NanoTime{1}, out);
  for (int i = 0; i < 8; ++i) q.reserve(200 * kMicrosecond);
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(8),
              201 * kMicrosecond, out);
  EXPECT_TRUE(out.empty());
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(0),
              202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].in_order);
  EXPECT_EQ(out[0].meta.psn, 0u);
  q.drain(202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[1].in_order);
  EXPECT_EQ(out[1].meta.psn, 8u);
}

TEST(ReorderQueue, SlotCollisionStaleDropNotificationReleasesSilently) {
  // A stale drop notification colliding with an occupied slot must
  // never reach the wire: it releases silently and the owner drains
  // in order.
  ReorderQueue q(8, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (int i = 0; i < 8; ++i) q.reserve(Nanos{0});
  q.drain(kReorderTimeout + NanoTime{1}, out);
  for (int i = 0; i < 8; ++i) q.reserve(200 * kMicrosecond);
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(8),
              201 * kMicrosecond, out);
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64),
              meta_of(0, /*drop=*/true), 202 * kMicrosecond, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.stats().best_effort_tx, 0u);
  q.drain(202 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].in_order);
  EXPECT_EQ(out[0].meta.psn, 8u);
}

TEST(ReorderQueue, DropFlagReleasesWithoutTransmitting) {
  ReorderQueue q(16, kReorderTimeout);
  std::vector<ReorderEgress> out;
  q.reserve(Nanos{0});  // psn 0 -> will be dropped by the GW pod
  q.reserve(Nanos{0});  // psn 1
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(1), Nanos{5}, out);
  q.drain(Nanos{5}, out);
  EXPECT_TRUE(out.empty());
  // Drop notification for psn 0: releases FIFO/BUF/BITMAP instantly; no
  // 100us HOL stall, and psn 1 unblocks.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64),
              meta_of(0, /*drop=*/true), Nanos{6}, out);
  q.drain(Nanos{6}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].meta.psn, 1u);
  EXPECT_EQ(q.stats().drop_releases, 1u);
  EXPECT_EQ(q.stats().timeout_releases, 0u);
}

TEST(ReorderQueue, FifoFullDropsAtIngress) {
  ReorderQueue q(4, kReorderTimeout);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.reserve(Nanos{0}).has_value());
  EXPECT_FALSE(q.reserve(Nanos{0}).has_value());
  EXPECT_EQ(q.stats().fifo_full_drops, 1u);
  EXPECT_EQ(q.in_flight(), 4u);
}

TEST(ReorderQueue, PsnWrapsAcrossWindowBoundary) {
  ReorderQueue q(4, kReorderTimeout);
  std::vector<ReorderEgress> out;
  // Cycle the queue many times past the 2-bit index space.
  for (Psn round = 0; round < 100; ++round) {
    const auto psn = q.reserve(NanoTime{round * 10});
    ASSERT_TRUE(psn.has_value());
    EXPECT_EQ(*psn, round);
    q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(*psn),
                NanoTime{round * 10 + 1}, out);
    q.drain(NanoTime{round * 10 + 1}, out);
  }
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(q.stats().in_order_tx, 100u);
}

TEST(ReorderQueue, StaleDropNotificationNeverReachesTheWire) {
  // Regression: a drop notification whose psn aliases into the current
  // window (passes the legal check) must be released silently at the
  // reorder check — emitting it would put a bogus frame on the wire.
  ReorderQueue q(8, kReorderTimeout);
  std::vector<ReorderEgress> out;
  for (int i = 0; i < 8; ++i) q.reserve(Nanos{0});
  q.drain(kReorderTimeout + NanoTime{1}, out);  // psn 0..7 timed out
  ASSERT_TRUE(out.empty());
  for (int i = 0; i < 8; ++i) q.reserve(200 * kMicrosecond);  // psn 8..15
  // Stale DROP notification for psn 0 aliases onto psn 8's slot.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64),
              meta_of(0, /*drop=*/true), 201 * kMicrosecond, out);
  q.drain(202 * kMicrosecond, out);
  EXPECT_TRUE(out.empty());  // silently released, nothing emitted
  EXPECT_EQ(q.stats().best_effort_tx, 0u);
  // The true psn 8 still flows in order afterwards.
  q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), meta_of(8),
              203 * kMicrosecond, out);
  q.drain(203 * kMicrosecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].in_order);
  EXPECT_EQ(out[0].meta.psn, 8u);
}

TEST(PlbEngine, RoundRobinSpray) {
  PlbEngineConfig cfg;
  cfg.num_rx_queues = 4;
  cfg.num_reorder_queues = 2;
  PlbEngine engine(cfg);
  std::vector<int> queue_counts(4, 0);
  for (int i = 0; i < 100; ++i) {
    auto p = Packet::make_synthetic(FiveTuple{}, 1, 64);
    const auto d = engine.dispatch(*p, Nanos{0});
    ASSERT_TRUE(d.has_value());
    ++queue_counts[d->rx_queue];
  }
  for (int c : queue_counts) EXPECT_EQ(c, 25);
}

TEST(PlbEngine, OrdqStablePerFlow) {
  PlbEngineConfig cfg;
  cfg.num_reorder_queues = 8;
  PlbEngine engine(cfg);
  FiveTuple a{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kUdp};
  FiveTuple b{Ipv4Address{5}, Ipv4Address{6}, 7, 8, IpProto::kUdp};
  const auto qa = engine.ordq_index(a);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(engine.ordq_index(a), qa);
  // Different flows are *allowed* to collide, but the hash must not be
  // constant: across many flows multiple queues must be used.
  std::set<std::uint16_t> seen{qa, engine.ordq_index(b)};
  for (std::uint16_t port = 0; port < 100; ++port) {
    FiveTuple t = a;
    t.src_port = port;
    seen.insert(engine.ordq_index(t));
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST(PlbEngine, MetaAttachedAndWritebackRoundTrip) {
  PlbEngine engine(PlbEngineConfig{.num_reorder_queues = 2,
                                   .num_rx_queues = 2,
                                   .reorder_entries = 16,
                                   .reorder_timeout = kReorderTimeout});
  auto p = Packet::make_synthetic(
      FiveTuple{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kUdp}, 9, 200);
  const auto d = engine.dispatch(*p, Nanos{0});
  ASSERT_TRUE(d.has_value());
  PlbMeta m;
  ASSERT_TRUE(p->peek_plb_meta(m));
  EXPECT_EQ(m.psn, d->psn);
  EXPECT_EQ(m.ordq_idx, d->ordq);

  std::vector<ReorderEgress> out;
  engine.writeback(std::move(p), Nanos{10}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].in_order);
  // Meta trailer must be stripped before the wire.
  PlbMeta stripped;
  EXPECT_FALSE(out[0].pkt->peek_plb_meta(stripped));
  EXPECT_EQ(out[0].pkt->size(), 200u);
}

TEST(PlbEngine, MissingMetaGoesBestEffort) {
  PlbEngine engine(PlbEngineConfig{});
  std::vector<ReorderEgress> out;
  engine.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), Nanos{0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].in_order);
}

TEST(PlbEngine, NextDeadlineTracksOldestHead) {
  PlbEngine engine(PlbEngineConfig{.num_reorder_queues = 2,
                                   .num_rx_queues = 2,
                                   .reorder_entries = 16,
                                   .reorder_timeout = 100 * kMicrosecond});
  EXPECT_FALSE(engine.next_deadline().has_value());
  // Two flows mapping to different queues at different times.
  FiveTuple t1{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kUdp};
  FiveTuple t2 = t1;
  for (std::uint16_t p = 0; engine.ordq_index(t2) == engine.ordq_index(t1);
       ++p) {
    t2.src_port = p;
  }
  auto p1 = Packet::make_synthetic(t1, 1, 64);
  engine.dispatch(*p1, Nanos{1000});
  auto p2 = Packet::make_synthetic(t2, 1, 64);
  engine.dispatch(*p2, Nanos{2000});
  EXPECT_EQ(engine.next_deadline(), NanoTime{1000} + 100 * kMicrosecond);
}

TEST(PlbDispatchResultCounts, IngressDropsCounted) {
  PlbEngine engine(PlbEngineConfig{.num_reorder_queues = 1,
                                   .num_rx_queues = 1,
                                   .reorder_entries = 2,
                                   .reorder_timeout = kReorderTimeout});
  auto mk = [] { return Packet::make_synthetic(FiveTuple{}, 1, 64); };
  auto a = mk();
  auto b = mk();
  auto c = mk();
  EXPECT_TRUE(engine.dispatch(*a, Nanos{0}).has_value());
  EXPECT_TRUE(engine.dispatch(*b, Nanos{0}).has_value());
  EXPECT_FALSE(engine.dispatch(*c, Nanos{0}).has_value());
  EXPECT_EQ(engine.ingress_drops(), 1u);
  EXPECT_EQ(engine.total_stats().fifo_full_drops, 1u);
}

}  // namespace
}  // namespace albatross
