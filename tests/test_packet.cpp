// Packet buffer, header (de)serialisation, parser and mbuf-pool tests.
#include <gtest/gtest.h>

#include "packet/headers.hpp"
#include "packet/mbuf_pool.hpp"
#include "packet/packet.hpp"
#include "packet/parser.hpp"

namespace albatross {
namespace {

FiveTuple tuple(std::uint16_t sport = 1000, std::uint16_t dport = 2000) {
  return FiveTuple{Ipv4Address::from_octets(10, 0, 0, 1),
                   Ipv4Address::from_octets(10, 0, 0, 2), sport, dport,
                   IpProto::kUdp};
}

TEST(Packet, PrependAdjAppendTrim) {
  std::vector<std::uint8_t> frame(100, 0xAB);
  Packet p{std::span<const std::uint8_t>(frame)};
  EXPECT_EQ(p.size(), 100u);

  std::uint8_t* head = p.prepend(8);
  EXPECT_EQ(p.size(), 108u);
  std::fill(head, head + 8, 0xCD);
  EXPECT_EQ(p.data()[0], 0xCD);
  EXPECT_EQ(p.data()[8], 0xAB);

  p.adj(8);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_EQ(p.data()[0], 0xAB);

  std::uint8_t* tail = p.append(4);
  std::fill(tail, tail + 4, 0xEF);
  EXPECT_EQ(p.size(), 104u);
  EXPECT_EQ(p.data()[103], 0xEF);
  p.trim(4);
  EXPECT_EQ(p.size(), 100u);
}

TEST(Packet, PlbMetaRoundTrip) {
  auto p = Packet::make_synthetic(tuple(), 7, 256);
  PlbMeta meta;
  meta.psn = 0xDEADBEEF;
  meta.ordq_idx = 5;
  meta.drop = false;
  meta.header_only = true;
  meta.payload_id = 321;
  p->attach_plb_meta(meta);
  EXPECT_EQ(p->size(), 256 + PlbMeta::kWireSize);

  PlbMeta read;
  ASSERT_TRUE(p->peek_plb_meta(read));
  EXPECT_EQ(read.psn, meta.psn);
  EXPECT_EQ(read.ordq_idx, meta.ordq_idx);
  EXPECT_TRUE(read.header_only);
  EXPECT_EQ(read.payload_id, 321);
  EXPECT_FALSE(read.drop);

  // In-place update (the drop-flag path).
  read.drop = true;
  ASSERT_TRUE(p->update_plb_meta(read));
  PlbMeta again;
  ASSERT_TRUE(p->strip_plb_meta(again));
  EXPECT_TRUE(again.drop);
  EXPECT_EQ(p->size(), 256u);
  EXPECT_FALSE(p->peek_plb_meta(again));  // trailer gone
}

TEST(Packet, MetaMagicRejectsGarbage) {
  auto p = Packet::make_synthetic(tuple(), 1, 64);
  PlbMeta meta;
  EXPECT_FALSE(p->peek_plb_meta(meta));  // zero payload != magic
}

TEST(Packet, CloneCopiesBytesAndMetadata) {
  auto p = Packet::make_synthetic(tuple(42, 43), 9, 128);
  p->flow_id = 1234;
  p->seq_in_flow = 56;
  p->rx_time = NanoTime{999};
  auto c = p->clone();
  EXPECT_EQ(c->size(), 128u);
  EXPECT_EQ(c->flow_id, 1234u);
  EXPECT_EQ(c->seq_in_flow, 56u);
  EXPECT_EQ(c->rx_time, NanoTime{999});
  EXPECT_EQ(c->tuple, p->tuple);
}

TEST(Headers, EthernetRoundTrip) {
  EthernetHeader h;
  h.src = MacAddress::from_u64(0x010203040506);
  h.dst = MacAddress::from_u64(0x0A0B0C0D0E0F);
  h.ether_type = 0x0800;
  std::uint8_t buf[EthernetHeader::kSize];
  h.write(buf);
  const auto r = EthernetHeader::read(buf);
  EXPECT_EQ(r.src, h.src);
  EXPECT_EQ(r.dst, h.dst);
  EXPECT_EQ(r.ether_type, 0x0800);
}

TEST(Headers, VlanRoundTrip) {
  VlanTag t;
  t.vlan_id = 0x123;
  t.pcp = 5;
  t.inner_ether_type = 0x0800;
  std::uint8_t buf[VlanTag::kSize];
  t.write(buf);
  const auto r = VlanTag::read(buf);
  EXPECT_EQ(r.vlan_id, 0x123);
  EXPECT_EQ(r.pcp, 5);
  EXPECT_EQ(r.inner_ether_type, 0x0800);
}

TEST(Headers, Ipv4ChecksumValid) {
  Ipv4Header h;
  h.src = Ipv4Address::from_octets(1, 2, 3, 4);
  h.dst = Ipv4Address::from_octets(5, 6, 7, 8);
  h.total_length = 100;
  h.protocol = IpProto::kTcp;
  std::uint8_t buf[Ipv4Header::kSize];
  h.write(buf);
  // Recomputing the checksum over the full header must give 0 residue.
  EXPECT_EQ(Ipv4Header::checksum(buf, Ipv4Header::kSize), 0);
  const auto r = Ipv4Header::read(buf, sizeof buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->src, h.src);
  EXPECT_EQ(r->dst, h.dst);
  EXPECT_EQ(r->protocol, IpProto::kTcp);
}

TEST(Headers, Ipv4RejectsTruncatedAndBadVersion) {
  std::uint8_t buf[Ipv4Header::kSize] = {};
  EXPECT_FALSE(Ipv4Header::read(buf, 10).has_value());
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::read(buf, sizeof buf).has_value());
}

TEST(Headers, VxlanVniRoundTrip) {
  VxlanHeader v;
  v.vni = 0xABCDE;
  std::uint8_t buf[VxlanHeader::kSize];
  v.write(buf);
  const auto r = VxlanHeader::read(buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->vni, 0xABCDEu);
  buf[0] = 0;  // clear I flag
  EXPECT_FALSE(VxlanHeader::read(buf).has_value());
}

TEST(Headers, GeneveAndNshAndBfd) {
  GeneveHeader g;
  g.vni = 77;
  g.opt_len_words = 2;
  std::uint8_t gb[GeneveHeader::kSize];
  g.write(gb);
  auto gr = GeneveHeader::read(gb);
  ASSERT_TRUE(gr.has_value());
  EXPECT_EQ(gr->vni, 77u);
  EXPECT_EQ(gr->total_size(), GeneveHeader::kSize + 8u);

  NshHeader n;
  n.service_path_id = 0x1234;
  n.service_index = 9;
  std::uint8_t nb[NshHeader::kSize];
  n.write(nb);
  auto nr = NshHeader::read(nb);
  ASSERT_TRUE(nr.has_value());
  EXPECT_EQ(nr->service_path_id, 0x1234u);
  EXPECT_EQ(nr->service_index, 9);

  BfdHeader b;
  b.my_discriminator = 42;
  b.your_discriminator = 43;
  std::uint8_t bb[BfdHeader::kSize];
  b.write(bb);
  auto br = BfdHeader::read(bb);
  ASSERT_TRUE(br.has_value());
  EXPECT_EQ(br->my_discriminator, 42u);
  EXPECT_EQ(br->your_discriminator, 43u);
}

TEST(Parser, PlainUdp) {
  UdpFlowSpec spec;
  spec.tuple = tuple(5000, 6000);
  auto pkt = build_udp_packet(spec);
  const auto p = parse_packet(pkt->bytes());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ip.src, spec.tuple.src_ip);
  EXPECT_EQ(p->l4_src, 5000);
  EXPECT_EQ(p->l4_dst, 6000);
  EXPECT_FALSE(p->vxlan.has_value());
  EXPECT_FALSE(p->is_protocol_packet());
  EXPECT_EQ(p->flow_tuple(), spec.tuple);
  EXPECT_EQ(p->tenant_vni(), 0u);
}

TEST(Parser, VxlanInnerTupleWins) {
  VxlanFlowSpec spec;
  spec.vni = 4242;
  spec.outer = FiveTuple{Ipv4Address::from_octets(172, 16, 0, 1),
                         Ipv4Address::from_octets(172, 16, 0, 2), 33333,
                         kVxlanPort, IpProto::kUdp};
  spec.inner.tuple = tuple(1111, 2222);
  auto pkt = build_vxlan_packet(spec);
  const auto p = parse_packet(pkt->bytes());
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->vxlan.has_value());
  EXPECT_EQ(p->tenant_vni(), 4242u);
  ASSERT_TRUE(p->inner_ip.has_value());
  EXPECT_EQ(p->flow_tuple(), spec.inner.tuple);
  EXPECT_EQ(p->inner_l4_src, 1111);
}

TEST(Parser, BgpAndBfdAreProtocolPackets) {
  UdpFlowSpec spec;
  spec.tuple = tuple(10000, kBgpPort);
  spec.tuple.proto = IpProto::kTcp;
  auto bgp = build_tcp_packet(spec, 0x10 /*ACK*/);
  auto p = parse_packet(bgp->bytes());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->is_protocol_packet());

  BfdHeader bfd;
  auto bfd_pkt = build_bfd_packet(tuple(49152, 0), bfd);
  p = parse_packet(bfd_pkt->bytes());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->is_protocol_packet());
}

TEST(Parser, TruncatedFrameRejected) {
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(parse_packet(tiny).has_value());
}

TEST(Parser, AnnotateFillsMetadata) {
  VxlanFlowSpec spec;
  spec.vni = 99;
  spec.outer = tuple(40000, kVxlanPort);
  spec.inner.tuple = tuple(1, 2);
  auto pkt = build_vxlan_packet(spec);
  pkt->vni = 0;
  pkt->tuple = FiveTuple{};
  ASSERT_TRUE(parse_and_annotate(*pkt).has_value());
  EXPECT_EQ(pkt->vni, 99u);
  EXPECT_EQ(pkt->tuple, spec.inner.tuple);
}

TEST(MbufPool, AllocFreeCycle) {
  MbufPool pool({.capacity = 64, .per_core_cache = 8, .num_cores = 2});
  std::vector<Packet*> taken;
  for (int i = 0; i < 64; ++i) {
    Packet* p = pool.alloc(CoreId{0});
    ASSERT_NE(p, nullptr);
    taken.push_back(p);
  }
  EXPECT_EQ(pool.alloc(CoreId{0}), nullptr);  // exhausted
  EXPECT_EQ(pool.stats().alloc_failures, 1u);
  for (auto* p : taken) pool.free_(p, CoreId{0});
  EXPECT_EQ(pool.available(), 64u);
  EXPECT_NE(pool.alloc(CoreId{1}), nullptr);
}

TEST(MbufPool, CacheHitsAreCheaper) {
  MbufPool pool({.capacity = 256, .per_core_cache = 32, .num_cores = 1});
  Packet* p = pool.alloc(CoreId{0});  // first alloc: ring refill
  const NanoTime refill_cost = pool.last_alloc_cost();
  pool.free_(p, CoreId{0});
  p = pool.alloc(CoreId{0});  // now cached
  const NanoTime hit_cost = pool.last_alloc_cost();
  pool.free_(p, CoreId{0});
  EXPECT_LT(hit_cost, refill_cost);
  EXPECT_GE(pool.stats().cache_hits, 1u);
}

TEST(MbufPool, PoolGuardReturnsOnScopeExit) {
  MbufPool pool({.capacity = 4, .per_core_cache = 2, .num_cores = 1});
  {
    PoolGuard g(pool, pool.alloc(CoreId{0}), CoreId{0});
    EXPECT_NE(g.get(), nullptr);
    EXPECT_EQ(pool.available(), 3u);
  }
  EXPECT_EQ(pool.available(), 4u);
}

TEST(Parser, GeneveOverlayRoundTrip) {
  VxlanFlowSpec spec;
  spec.vni = 0xBEEF1;
  spec.outer = FiveTuple{Ipv4Address::from_octets(172, 16, 1, 1),
                         Ipv4Address::from_octets(172, 16, 1, 2), 40001,
                         kGenevePort, IpProto::kUdp};
  spec.inner.tuple = tuple(2222, 3333);
  // Two option words: Sailfish's PHV wall made exactly this impossible.
  auto pkt = build_geneve_packet(spec, /*opt_len_words=*/2);
  const auto p = parse_packet(pkt->bytes());
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->geneve.has_value());
  EXPECT_FALSE(p->vxlan.has_value());
  EXPECT_EQ(p->tenant_vni(), 0xBEEF1u);
  EXPECT_EQ(p->geneve->opt_len_words, 2);
  ASSERT_TRUE(p->inner_ip.has_value());
  EXPECT_EQ(p->flow_tuple(), spec.inner.tuple);
}

}  // namespace
}  // namespace albatross
