// Chaos & recovery subsystem tests: FaultPlan JSON round-trip and
// seeded-random determinism, injector timing against a mock surface,
// the end-to-end availability loop (BFD detect -> VIP withdraw ->
// redeploy -> cutover) with its timing bounds, false-positive handling,
// NIC/core fault plumbing, and byte-identical replay of a whole
// experiment from the same seed.
#include <gtest/gtest.h>

#include "chaos/experiment.hpp"

namespace albatross {
namespace {

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto k = static_cast<FaultKind>(i);
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(k)), k);
  }
  EXPECT_THROW((void)fault_kind_from_name("meteor_strike"),
               std::runtime_error);
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.name = "rt";
  plan.seed = 42;
  plan.events.push_back({2 * kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  plan.events.push_back(
      {5 * kSecond, FaultKind::kNicDmaError, 1, 20 * kMillisecond, 8.0});
  const std::string text = plan.to_json().dump();

  const auto parsed = json_parse(text);
  ASSERT_TRUE(parsed.has_value());
  const FaultPlan back = FaultPlan::from_json(*parsed);
  EXPECT_EQ(back.name, "rt");
  EXPECT_EQ(back.seed, 42u);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].at, 2 * kSecond);
  EXPECT_EQ(back.events[0].kind, FaultKind::kPodCrash);
  EXPECT_EQ(back.events[1].kind, FaultKind::kNicDmaError);
  EXPECT_EQ(back.events[1].gateway, 1);
  EXPECT_EQ(back.events[1].duration, 20 * kMillisecond);
  EXPECT_DOUBLE_EQ(back.events[1].magnitude, 8.0);
}

TEST(FaultPlan, FromJsonSortsByTimeAndRejectsUnknownKind) {
  const auto v = json_parse(
      R"({"events":[{"at_ms":900,"kind":"link_flap"},
                    {"at_ms":100,"kind":"bgp_reset"}]})");
  ASSERT_TRUE(v.has_value());
  const FaultPlan plan = FaultPlan::from_json(*v);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBgpReset);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLinkFlap);

  const auto bad =
      json_parse(R"({"events":[{"at_ms":1,"kind":"gamma_ray"}]})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_THROW(FaultPlan::from_json(*bad), std::runtime_error);
}

TEST(FaultPlan, RandomIsSeedDeterministic) {
  const auto a = FaultPlan::random(7, 20, 4, 30 * kSecond);
  const auto b = FaultPlan::random(7, 20, 4, 30 * kSecond);
  ASSERT_EQ(a.events.size(), 20u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].gateway, b.events[i].gateway);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_DOUBLE_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }
  // Sorted, in-window, and a different seed gives a different script.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].at, a.events[i].at);
  }
  for (const auto& e : a.events) {
    EXPECT_GE(e.at, kSecond);
    EXPECT_LT(e.at, 30 * kSecond);
    EXPECT_LT(e.gateway, 4);
  }
  const auto c = FaultPlan::random(8, 20, 4, 30 * kSecond);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs |= c.events[i].at != a.events[i].at ||
               c.events[i].kind != a.events[i].kind;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------- FaultInjector

struct MockSurface final : FaultSurface {
  std::vector<std::pair<NanoTime, FaultKind>> applied;
  std::vector<std::pair<NanoTime, FaultKind>> cleared;
  void apply(const FaultEvent& e, NanoTime now) override {
    applied.emplace_back(now, e.kind);
  }
  void clear(const FaultEvent& e, NanoTime now) override {
    cleared.emplace_back(now, e.kind);
  }
};

TEST(FaultInjector, AppliesAtEventTimeAndClearsAfterDuration) {
  EventLoop loop;
  MockSurface surface;
  FaultInjector injector(loop, surface);

  FaultPlan plan;
  plan.events.push_back({kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  plan.events.push_back(
      {2 * kSecond, FaultKind::kLinkFlap, 1, 300 * kMillisecond, 0.0});
  injector.schedule(plan);
  loop.run_until(5 * kSecond);

  ASSERT_EQ(surface.applied.size(), 2u);
  EXPECT_EQ(surface.applied[0], (std::pair{kSecond, FaultKind::kPodCrash}));
  EXPECT_EQ(surface.applied[1],
            (std::pair{2 * kSecond, FaultKind::kLinkFlap}));
  // Only the bounded fault clears, at at+duration.
  ASSERT_EQ(surface.cleared.size(), 1u);
  EXPECT_EQ(surface.cleared[0],
            (std::pair{2 * kSecond + 300 * kMillisecond,
                       FaultKind::kLinkFlap}));
  EXPECT_EQ(injector.stats().applied, 2u);
  EXPECT_EQ(injector.stats().cleared, 1u);
  EXPECT_EQ(
      injector.stats().by_kind[static_cast<std::size_t>(
          FaultKind::kPodCrash)],
      1u);
}

// ------------------------------------------------- end-to-end recovery

TEST(ChaosRecovery, PodCrashClosesTheLoopWithinBounds) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 2;
  GatewayChaosHarness harness(cfg);
  for (std::uint16_t g = 0; g < harness.gateway_count(); ++g) {
    harness.attach_background_traffic(g, 50'000.0, 100, 1 + g);
  }
  RecoveryController controller(harness);
  controller.arm();

  // Crash after initial BGP convergence so the withdraw exercises the
  // real route-removal path.
  FaultPlan plan;
  plan.events.push_back({8 * kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);

  harness.platform().run_until(25 * kSecond);

  ASSERT_EQ(controller.incidents_opened(), 1u);
  ASSERT_EQ(controller.incidents_recovered(), 1u);
  const IncidentRecord& inc = controller.incidents()[0];
  EXPECT_EQ(inc.kind, FaultKind::kPodCrash);
  EXPECT_TRUE(inc.redeployed);
  EXPECT_TRUE(inc.recovered);
  // BFD: 50 ms probes x3 detect_mult => 150 ms detection.
  EXPECT_GE(inc.detect_latency(), 100 * kMillisecond);
  EXPECT_LE(inc.detect_latency(), 200 * kMillisecond);
  // Blackhole ends when the withdraw propagates (shortly after detect).
  EXPECT_GE(inc.blackhole_ns(), inc.detect_latency());
  EXPECT_LE(inc.blackhole_ns(), inc.detect_latency() + 100 * kMillisecond);
  // Loss accrues only during the blackhole: ~50 kpps x ~150 ms.
  EXPECT_GT(inc.packets_lost, 1000u);
  EXPECT_LT(inc.packets_lost, 20'000u);
  // 10 s pod elasticity dominates recovery; the paper-level bound.
  EXPECT_GE(inc.recovery_ns(), 10 * kSecond);
  EXPECT_LT(inc.recovery_ns(), 40 * kSecond);
  EXPECT_EQ(controller.redeploys(), 1u);
  EXPECT_EQ(harness.orchestrator().placements().size(), 2u);

  // Zero loss after cutover.
  const auto mark = harness.platform().telemetry(harness.pod(0)).blackholed;
  harness.platform().run_until(30 * kSecond);
  EXPECT_EQ(harness.platform().telemetry(harness.pod(0)).blackholed, mark);

  // Histograms fed for the metrics exporter.
  EXPECT_EQ(controller.detect_latency_hist().count(), 1u);
  EXPECT_EQ(controller.recovery_hist().count(), 1u);
}

TEST(ChaosRecovery, LinkFlapRecoversWithoutRedeploy) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.attach_background_traffic(0, 20'000.0, 50);
  RecoveryController controller(harness);
  controller.arm();

  FaultPlan plan;
  plan.events.push_back(
      {8 * kSecond, FaultKind::kLinkFlap, 0, 400 * kMillisecond, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);
  harness.platform().run_until(12 * kSecond);

  ASSERT_EQ(controller.incidents_recovered(), 1u);
  const IncidentRecord& inc = controller.incidents()[0];
  EXPECT_EQ(inc.kind, FaultKind::kLinkFlap);
  EXPECT_FALSE(inc.redeployed);
  EXPECT_EQ(controller.redeploys(), 0u);
  // Recovery ~= flap duration + BFD re-up + convergence, well under 2 s.
  EXPECT_GE(inc.recovery_ns(), 400 * kMillisecond);
  EXPECT_LT(inc.recovery_ns(), 2 * kSecond);
  EXPECT_GT(inc.packets_lost, 0u);
}

TEST(ChaosRecovery, BfdFalsePositiveLosesNoTraffic) {
  // BFD probes suppressed while the data plane keeps forwarding (§4.3
  // false positive): the controller must withdraw and re-announce, but
  // no packet may be counted lost.
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.attach_background_traffic(0, 20'000.0, 50);
  RecoveryController controller(harness);
  controller.arm();

  FaultPlan plan;
  plan.events.push_back(
      {8 * kSecond, FaultKind::kBfdTimeout, 0, 500 * kMillisecond, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);

  const auto delivered_before_window = [&] {
    return harness.platform().telemetry(harness.pod(0)).delivered;
  };
  harness.platform().run_until(8 * kSecond);
  const auto delivered_at_fault = delivered_before_window();
  harness.platform().run_until(12 * kSecond);

  ASSERT_EQ(controller.incidents_opened(), 1u);
  ASSERT_EQ(controller.incidents_recovered(), 1u);
  EXPECT_EQ(controller.incidents()[0].kind, FaultKind::kBfdTimeout);
  EXPECT_EQ(controller.packets_lost_total(), 0u);
  EXPECT_FALSE(controller.incidents()[0].redeployed);
  // Data plane never stopped.
  EXPECT_GT(harness.platform().telemetry(harness.pod(0)).delivered,
            delivered_at_fault + 10'000u);
  EXPECT_EQ(harness.platform().telemetry(harness.pod(0)).blackholed, 0u);
}

TEST(ChaosRecovery, NicAndCoreFaultsReachTheModules) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.attach_background_traffic(0, 100'000.0, 100);

  FaultPlan plan;
  plan.events.push_back(
      {2 * kSecond, FaultKind::kNicDmaError, 0, 50 * kMillisecond, 8.0});
  plan.events.push_back(
      {3 * kSecond, FaultKind::kCoreStall, 0, 10 * kMillisecond, 2.0});
  plan.events.push_back({4 * kSecond, FaultKind::kNicReorderStuck, 0,
                         2 * kMillisecond, 0.0});
  plan.events.push_back({5 * kSecond, FaultKind::kHitterStorm, 0,
                         20 * kMillisecond, 500'000.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);
  harness.platform().run_until(6 * kSecond);

  EXPECT_EQ(injector.stats().applied, 4u);
  EXPECT_EQ(injector.stats().cleared, 4u);
  const PodId pod = harness.pod(0);
  EXPECT_GT(harness.platform().nic().dma_faulted_transfers(pod), 0u);
  EXPECT_EQ(harness.platform().pod(pod).core_stalls(), 2u);
  // The harness stayed up through all of it.
  EXPECT_GT(harness.platform().telemetry(pod).delivered, 100'000u);
}

// ------------------------------------------------- declarative experiments

constexpr std::string_view kReplayJson = R"({
  "chaos": {
    "gateways": 2, "servers": 2, "rate_mpps": 0.02, "flows": 64,
    "duration_ms": 20000,
    "plan": { "random": { "seed": 7, "count": 4, "horizon_ms": 14000 } }
  }
})";

TEST(ChaosExperiment, ReplayIsByteIdentical) {
  const auto a = run_chaos_experiment_from_json(kReplayJson);
  const auto b = run_chaos_experiment_from_json(kReplayJson);
  EXPECT_EQ(a.injected.applied, 4u);
  EXPECT_FALSE(a.timeline.empty());
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.blackholed_total, b.blackholed_total);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
}

TEST(ChaosExperiment, ScriptedPlanRunsAndReports) {
  const auto r = run_chaos_experiment_from_json(R"({
    "gateways": 1, "rate_mpps": 0.02, "flows": 64, "duration_ms": 22000,
    "plan": { "events": [
      { "at_ms": 6000, "kind": "pod_crash", "gateway": 0 } ] }
  })");
  EXPECT_EQ(r.gateways, 1);
  EXPECT_EQ(r.injected.applied, 1u);
  ASSERT_EQ(r.incidents.size(), 1u);
  EXPECT_TRUE(r.incidents[0].recovered);
  EXPECT_TRUE(r.incidents[0].redeployed);
  EXPECT_LT(r.incidents[0].recovery_ns(), 40 * kSecond);
  EXPECT_GT(r.delivered_total, 0u);
  EXPECT_NE(r.timeline.find("pod_crash g0"), std::string::npos);
}

TEST(ChaosExperiment, BadJsonAndBadKindThrow) {
  EXPECT_THROW(run_chaos_experiment_from_json("{nope"), std::runtime_error);
  EXPECT_THROW(run_chaos_experiment_from_json(
                   R"({"plan":{"events":[{"kind":"solar_flare"}]}})"),
               std::runtime_error);
}

}  // namespace
}  // namespace albatross
