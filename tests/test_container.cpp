// Containerization: pod sizing rules, NUMA-aware placement, 10-second
// elasticity, make-before-break handover and the AZ cost model.
#include <gtest/gtest.h>

#include "container/cost_model.hpp"
#include "container/orchestrator.hpp"
#include "container/pod_spec.hpp"

namespace albatross {
namespace {

TEST(PodSpec, ReorderQueuesProportionalToCores) {
  // §4.1: a 40-core pod gets twice the queues of a 20-core pod; the
  // production 44-core pod runs 4 queues; clamp to [1, 8].
  EXPECT_EQ(reorder_queues_for_cores(44), 4);
  EXPECT_EQ(reorder_queues_for_cores(40) , 2 * reorder_queues_for_cores(20));
  EXPECT_EQ(reorder_queues_for_cores(1), 1);
  EXPECT_EQ(reorder_queues_for_cores(200), 8);
}

TEST(PodSpec, RoleNames) {
  EXPECT_EQ(gateway_role_name(GatewayRole::kXgw), "XGW");
  EXPECT_EQ(gateway_role_name(GatewayRole::kSlb), "SLB");
}

ServerSpec default_server() { return ServerSpec{}; }

TEST(Orchestrator, PlacesPodsWithinOneNumaNode) {
  Orchestrator orch;
  orch.add_server(default_server());
  PodSpec spec;
  spec.data_cores = 44;
  spec.ctrl_cores = 2;
  const auto p1 = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p1.has_value());
  const auto p2 = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p2.has_value());
  // 46+46 > 48: the second pod must land on the other NUMA node.
  EXPECT_NE(p1->numa_node, p2->numa_node);
  // A third 46-core pod cannot fit on this server.
  EXPECT_FALSE(orch.deploy(spec, Nanos{0}).has_value());
  EXPECT_NEAR(orch.core_utilization(), 92.0 / 96.0, 1e-9);
}

TEST(Orchestrator, TenSecondElasticity) {
  Orchestrator orch;
  orch.add_server(default_server());
  PodSpec spec;
  spec.data_cores = 8;
  const auto p = orch.deploy(spec, 5 * kSecond);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ready_at, 15 * kSecond);  // Tab. 6's 10 seconds
  EXPECT_EQ(p->vfs.vfs.size(), 4u);      // robustness wiring
}

TEST(Orchestrator, FourPodsPerServerFig15Density) {
  Orchestrator orch;
  orch.add_server(default_server());
  PodSpec spec;
  spec.data_cores = 20;
  spec.ctrl_cores = 2;
  int placed = 0;
  for (int i = 0; i < 4; ++i) {
    if (orch.deploy(spec, Nanos{0})) ++placed;
  }
  EXPECT_EQ(placed, 4);  // 2 pods per NUMA node x 2 nodes
  EXPECT_EQ(orch.placements().size(), 4u);
}

TEST(Orchestrator, NumaPreferenceHonored) {
  Orchestrator orch;
  orch.add_server(default_server());
  PodSpec spec;
  spec.data_cores = 8;
  spec.numa_preference = 1;
  const auto p = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->numa_node, NumaNodeId{1});
}

TEST(Orchestrator, ScaleUpMakeBeforeBreak) {
  Orchestrator orch;
  orch.add_server(default_server());
  PodSpec small;
  small.data_cores = 8;
  const auto p = orch.deploy(small, Nanos{0});
  ASSERT_TRUE(p.has_value());

  PodSpec big = small;
  big.data_cores = 20;
  const auto scaled = orch.scale_up(p->pod, big, 100 * kSecond);
  ASSERT_TRUE(scaled.has_value());
  // New pod ready in 10s, traffic cutover only after 30s validation
  // (§7: advertise first, validate, then withdraw the old route).
  EXPECT_EQ(scaled->first.ready_at, 110 * kSecond);
  EXPECT_EQ(scaled->second, 140 * kSecond);
  EXPECT_TRUE(orch.remove(p->pod));
  EXPECT_FALSE(orch.remove(p->pod));
}

TEST(Orchestrator, SpillsToSecondServer) {
  Orchestrator orch;
  orch.add_server(default_server());
  orch.add_server(default_server());
  PodSpec spec;
  spec.data_cores = 44;
  spec.ctrl_cores = 2;
  std::set<std::uint16_t> servers;
  for (int i = 0; i < 4; ++i) {
    const auto p = orch.deploy(spec, Nanos{0});
    ASSERT_TRUE(p.has_value());
    servers.insert(p->server);
  }
  EXPECT_EQ(servers.size(), 2u);
}

TEST(Orchestrator, RemoveReturnsCoresAndVfs) {
  // Regression: remove() used to return only the VFs, leaking the NUMA
  // core reservation and making every crash->redeploy cycle shrink the
  // server until deploys failed.
  Orchestrator orch;
  orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 44;
  spec.ctrl_cores = 2;
  const auto p1 = orch.deploy(spec, Nanos{0});
  const auto p2 = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p1->cores, 46);
  ASSERT_FALSE(orch.deploy(spec, Nanos{0}).has_value());  // server full

  ASSERT_TRUE(orch.remove(p1->pod));
  EXPECT_EQ(orch.placement(p1->pod), nullptr);
  EXPECT_NE(orch.placement(p2->pod), nullptr);
  EXPECT_NEAR(orch.core_utilization(), 46.0 / 96.0, 1e-9);

  // The freed node must accept a replacement — repeatedly.
  for (int cycle = 0; cycle < 8; ++cycle) {
    const auto r = orch.deploy(spec, Nanos{0});
    ASSERT_TRUE(r.has_value()) << "cycle " << cycle;
    EXPECT_EQ(r->vfs.vfs.size(), 4u);
    ASSERT_TRUE(orch.remove(r->pod));
  }
  EXPECT_NEAR(orch.core_utilization(), 46.0 / 96.0, 1e-9);
  EXPECT_FALSE(orch.remove(p1->pod));  // double-remove refused
}

TEST(Orchestrator, CrashRedeployViaScaleUpKeepsCapacityStable) {
  // The recovery controller's crash path: scale_up a same-size
  // replacement, then remove the victim at cutover. Capacity must be
  // identical after any number of incidents.
  Orchestrator orch;
  orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 20;
  spec.ctrl_cores = 2;
  auto p = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p.has_value());
  PodId pod = p->pod;
  const double base = orch.core_utilization();
  for (int i = 0; i < 5; ++i) {
    const auto r = orch.scale_up(pod, spec, (i + 1) * kSecond);
    ASSERT_TRUE(r.has_value());
    ASSERT_TRUE(orch.remove(pod));
    pod = r->first.pod;
    EXPECT_DOUBLE_EQ(orch.core_utilization(), base);
  }
  EXPECT_EQ(orch.placements().size(), 1u);
}

TEST(AzCostModel, Fig15CostAndPowerArithmetic) {
  AzCostModel model;
  const auto legacy = model.legacy_az();
  const auto alba = model.albatross_az();
  // 8 roles x 4 gateways = 32 physical devices vs 8 servers.
  EXPECT_EQ(legacy.devices, 32u);
  EXPECT_EQ(alba.devices, 8u);
  // Cost: 8 x 2 = 16 vs 32 -> 50% reduction.
  EXPECT_DOUBLE_EQ(alba.total_cost / legacy.total_cost, 0.5);
  // Power: 12 x 500 + 20 x 300 = 12000W vs 8 x 900 = 7200W -> -40%.
  EXPECT_DOUBLE_EQ(legacy.total_power_w, 12000.0);
  EXPECT_DOUBLE_EQ(alba.total_power_w, 7200.0);
  EXPECT_NEAR(1.0 - alba.total_power_w / legacy.total_power_w, 0.40, 1e-9);
}

TEST(AzCostModel, DensitySweep) {
  AzCostModel model;
  // Higher pod density -> fewer servers -> lower cost, monotonic.
  double prev = 1e18;
  for (std::uint32_t density : {1u, 2u, 4u, 8u}) {
    const auto r = model.albatross_az(AzRequirements{}, density);
    EXPECT_LT(r.total_cost, prev);
    prev = r.total_cost;
  }
}

}  // namespace
}  // namespace albatross
