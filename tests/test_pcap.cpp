// pcap writer/reader and the capture tap.
#include <gtest/gtest.h>

#include <cstdio>

#include "packet/parser.hpp"
#include "packet/pcap.hpp"

namespace albatross {
namespace {

PacketPtr sample_packet(std::uint16_t sport) {
  UdpFlowSpec spec;
  spec.tuple = FiveTuple{Ipv4Address::from_octets(10, 0, 0, 1),
                         Ipv4Address::from_octets(8, 8, 8, 8), sport, 53,
                         IpProto::kUdp};
  return build_udp_packet(spec);
}

TEST(Pcap, SerializeDeserializeRoundTrip) {
  PcapFile file;
  file.add(*sample_packet(1000), 1 * kMicrosecond);
  file.add(*sample_packet(1001), Nanos{2500});  // sub-microsecond truncates
  const auto bytes = file.serialize();
  // Global header: magic + version 2.4 + ethernet linktype.
  EXPECT_EQ(bytes[0], 0xd4);  // little-endian magic on disk
  ASSERT_GE(bytes.size(), 24u);

  const auto parsed = PcapFile::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->records()[0].timestamp, 1 * kMicrosecond);
  EXPECT_EQ(parsed->records()[0].data.size(), sample_packet(1000)->size());
  // The captured frame still parses as the original packet.
  const auto reparsed = parse_packet(parsed->records()[0].data);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->l4_src, 1000);
  EXPECT_EQ(reparsed->l4_dst, 53);
}

TEST(Pcap, RejectsCorruptImages) {
  EXPECT_FALSE(PcapFile::deserialize({1, 2, 3}).has_value());
  PcapFile file;
  file.add(*sample_packet(1), NanoTime{});
  auto bytes = file.serialize();
  bytes[0] = 0x00;  // bad magic
  EXPECT_FALSE(PcapFile::deserialize(bytes).has_value());
  auto truncated = file.serialize();
  truncated.pop_back();
  EXPECT_FALSE(PcapFile::deserialize(truncated).has_value());
}

TEST(Pcap, FileIo) {
  const std::string path = "/tmp/albatross_test_capture.pcap";
  PcapFile file;
  for (std::uint16_t i = 0; i < 5; ++i) {
    file.add(*sample_packet(i), i * kMillisecond);
  }
  ASSERT_TRUE(file.write_file(path));
  const auto back = PcapFile::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 5u);
  EXPECT_EQ(back->records()[4].timestamp, 4 * kMillisecond);
  std::remove(path.c_str());
  EXPECT_FALSE(PcapFile::read_file("/no/such/file.pcap").has_value());
}

TEST(PcapTap, FilterAndBudget) {
  PcapTap tap(/*max_packets=*/3);
  const auto target = sample_packet(7777);
  tap.set_filter(target->tuple);
  // Non-matching packets are ignored.
  EXPECT_FALSE(tap.observe(*sample_packet(1), Nanos{0}));
  EXPECT_EQ(tap.captured(), 0u);
  // Matching packets captured up to the budget.
  for (int i = 0; i < 5; ++i) {
    tap.observe(*sample_packet(7777), i * NanoTime{1000});
  }
  EXPECT_EQ(tap.captured(), 3u);
  EXPECT_EQ(tap.dropped_over_budget(), 2u);
  // Clearing the filter captures everything (budget already spent).
  tap.clear_filter();
  EXPECT_FALSE(tap.observe(*sample_packet(42), Nanos{0}));
}

}  // namespace
}  // namespace albatross
