// Property-based cross-check: LpmDir24 must agree with the reference
// binary trie under randomized add/remove sequences and lookups, across
// seeds (parameterized) — the classic differential-testing harness for
// routing tables.
#include <gtest/gtest.h>

#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "tables/lpm_dir24.hpp"
#include "tables/lpm_trie.hpp"

namespace albatross {
namespace {

class LpmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmDifferential, AgreesWithReferenceTrie) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);
  LpmDir24 fast;
  LpmTrie ref;

  struct Rule {
    Ipv4Address prefix;
    std::uint8_t depth;
  };
  std::vector<Rule> live;

  // Cluster prefixes into a few /16 neighbourhoods so rules overlap and
  // shadowing paths actually execute.
  const auto random_prefix = [&rng] {
    const std::uint32_t base = static_cast<std::uint32_t>(
        rng.next_below(4)) << 28;
    return Ipv4Address{base | static_cast<std::uint32_t>(
                                  rng.next_below(1 << 20))};
  };

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.next_below(10);
    if (op < 6 || live.empty()) {
      const auto depth =
          static_cast<std::uint8_t>(8 + rng.next_below(25));  // 8..32
      const auto prefix = random_prefix();
      const auto hop = static_cast<NextHop>(rng.next_below(kMaxNextHop));
      ASSERT_EQ(fast.add(prefix, depth, hop), ref.add(prefix, depth, hop));
      live.push_back(Rule{prefix, depth});
    } else {
      const std::size_t i = rng.next_below(live.size());
      const Rule r = live[i];
      ASSERT_EQ(fast.remove(r.prefix, r.depth), ref.remove(r.prefix, r.depth));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // Probe lookups near live rules plus a few uniform randoms.
    for (int probe = 0; probe < 4; ++probe) {
      Ipv4Address addr;
      if (!live.empty() && probe < 3) {
        const Rule& r = live[rng.next_below(live.size())];
        addr = Ipv4Address{r.prefix.addr ^ static_cast<std::uint32_t>(
                                               rng.next_below(1 << 10))};
      } else {
        addr = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
      }
      ASSERT_EQ(fast.lookup(addr), ref.lookup(addr))
          << "addr=" << addr.to_string() << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmDifferential,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

}  // namespace
}  // namespace albatross
