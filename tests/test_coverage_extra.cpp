// Additional behaviour coverage across modules: multi-pod isolation on
// one platform, switch-CPU queueing math, BGP administrative shutdown,
// pipeline latency accounting, orchestrator release accounting, and
// small utility paths.
#include <gtest/gtest.h>

#include "bgp/switch_model.hpp"
#include "container/orchestrator.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "nic/nic_pipeline.hpp"
#include "nic/session_offload.hpp"
#include "packet/mbuf_pool.hpp"
#include "traffic/heavy_hitter.hpp"

namespace albatross {
namespace {

TEST(MultiPod, TwoPodsShareOneServerWithoutInterference) {
  PlatformConfig pc;
  Platform platform(pc);
  GwPodConfig a;
  a.service = ServiceKind::kVpcVpc;
  a.data_cores = 2;
  GwPodConfig b;
  b.service = ServiceKind::kVpcInternet;
  b.data_cores = 2;
  b.seed = 777;
  const PodId pod_a = platform.create_pod(a);
  const PodId pod_b = platform.create_pod(b, 0, PktDirConfig{}, LbMode::kRss);

  PoissonFlowConfig ta;
  ta.num_flows = 500;
  ta.rate_pps = 300'000;
  ta.seed = 1;
  platform.attach_source(std::make_unique<PoissonFlowSource>(ta), pod_a);
  PoissonFlowConfig tb;
  tb.num_flows = 500;
  tb.rate_pps = 150'000;
  tb.seed = 2;
  platform.attach_source(std::make_unique<PoissonFlowSource>(tb), pod_b);

  platform.run_until(40 * kMillisecond);

  const auto& tel_a = platform.telemetry(pod_a);
  const auto& tel_b = platform.telemetry(pod_b);
  EXPECT_NEAR(static_cast<double>(tel_a.offered), 12'000, 600);
  EXPECT_NEAR(static_cast<double>(tel_b.offered), 6'000, 400);
  // Per-pod SR-IOV slicing: each pod's packets land only on its own
  // cores and its own reorder engine; only the in-flight tail separates
  // CPU-processed from wire-delivered counts.
  EXPECT_LE(tel_a.delivered, platform.pod(pod_a).stats().processed);
  EXPECT_LT(platform.pod(pod_a).stats().processed - tel_a.delivered, 100u);
  EXPECT_GT(platform.nic().engine(pod_a).total_stats().reserved, 10'000u);
  // Pod B runs RSS: its engine reserved nothing.
  EXPECT_EQ(platform.nic().engine(pod_b).total_stats().reserved, 0u);
  EXPECT_GT(tel_b.delivered, 5'000u);
}

TEST(SwitchCpu, QueueingAndOverloadSlowdown) {
  SwitchConfig cfg;
  cfg.overload_slowdown = 6.0;
  cfg.overload_backlog_threshold = 5 * kSecond;
  SwitchCpu cpu(cfg);
  // Sequential work at the same arrival time serialises.
  const auto t1 = cpu.enqueue(Nanos{0}, kSecond);
  const auto t2 = cpu.enqueue(Nanos{0}, kSecond);
  EXPECT_EQ(t1, kSecond);
  EXPECT_EQ(t2, 2 * kSecond);
  EXPECT_EQ(cpu.backlog(Nanos{0}), 2 * kSecond);
  EXPECT_EQ(cpu.backlog(3 * kSecond), NanoTime{});
  // Beyond the backlog threshold the effective cost inflates 6x.
  for (int i = 0; i < 4; ++i) cpu.enqueue(Nanos{0}, kSecond);  // backlog 6s
  const auto before = cpu.busy_ns();
  cpu.enqueue(Nanos{0}, kSecond);
  EXPECT_EQ(cpu.busy_ns() - before, 6 * kSecond);
  EXPECT_EQ(cpu.messages(), 7u);
}

TEST(BgpSession, AdminStopDoesNotRetry) {
  EventLoop loop;
  BgpSession a(loop, BgpSessionConfig{.asn = 1, .router_id = 1});
  BgpSession b(loop,
               BgpSessionConfig{.asn = 2, .router_id = 2, .passive = true});
  bgp_connect(a, b, kMillisecond, nullptr, nullptr, Nanos{0});
  loop.run_until(20 * kSecond);
  ASSERT_EQ(a.state(), BgpState::kEstablished);

  a.stop(loop.now());
  EXPECT_EQ(a.state(), BgpState::kIdle);
  loop.run_until(loop.now() + 120 * kSecond);
  // Still down: administrative shutdown does not auto-reconnect, and
  // the peer saw the NOTIFICATION (it cycles trying to reconnect).
  EXPECT_EQ(a.state(), BgpState::kIdle);
  EXPECT_GE(b.stats().session_resets, 1u);
}

TEST(NicPipeline, RxPipelineLatencyComposition) {
  NicPipeline nic;
  const auto& t = nic.config().timings;
  EXPECT_EQ(nic.rx_pipeline_latency(/*plb=*/true),
            t.basic_rx_ns() + t.overload_det_rx_ns() + t.plb_rx_ns());
  EXPECT_EQ(nic.rx_pipeline_latency(/*plb=*/false),
            t.basic_rx_ns() + t.overload_det_rx_ns());
  NicPipelineConfig no_gop;
  no_gop.gop_enabled = false;
  NicPipeline nic2(no_gop);
  EXPECT_EQ(nic2.rx_pipeline_latency(false), t.basic_rx_ns());
}

TEST(NicPipeline, DrainExpiredReleasesStrandedEntries) {
  NicPipeline nic;
  nic.register_pod(0,
                   PlbEngineConfig{.num_reorder_queues = 1,
                                   .num_rx_queues = 1,
                                   .reorder_entries = 64,
                                   .reorder_timeout = 100 * kMicrosecond},
                   PktDirConfig{}, LbMode::kPlb);
  auto pkt = Packet::make_synthetic(
      FiveTuple{Ipv4Address{1}, Ipv4Address{2}, 3, 4, IpProto::kUdp}, 1, 128);
  auto r = nic.ingress(std::move(pkt), 0, Nanos{0});
  ASSERT_EQ(r.outcome, IngressOutcome::kDelivered);
  ASSERT_TRUE(nic.next_reorder_deadline(0).has_value());
  // The packet vanishes on the CPU (never written back). After the
  // deadline the drain releases the head with no emission.
  const auto out = nic.drain_expired(0, 200 * kMicrosecond);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(nic.engine(0).total_stats().timeout_releases, 1u);
  EXPECT_FALSE(nic.next_reorder_deadline(0).has_value());
}

TEST(Orchestrator, ReleaseFreesSriovButKeepsAccounting) {
  Orchestrator orch;
  orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 8;
  const auto p = orch.deploy(spec, Nanos{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(orch.placements().size(), 1u);
  EXPECT_TRUE(orch.remove(p->pod));
  EXPECT_EQ(orch.placements().size(), 0u);
  // VFs were released: the same server accepts a fresh pod.
  EXPECT_TRUE(orch.deploy(spec, Nanos{0}).has_value());
}

TEST(Histogram, SummaryFormatting) {
  LogHistogram h;
  h.record(12'300);   // 12.3 us
  h.record(45'600);
  const auto s = h.summary_us();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("max=45.6us"), std::string::npos);
}

TEST(Scenario, FormatAndCapacityHelpers) {
  EXPECT_EQ(format_mpps(128.84), "128.8Mpps");
  EXPECT_EQ(format_mpps(0.0), "0.0Mpps");
  // Flow-affine (RSS) capacity is never lower than sprayed capacity.
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  EXPECT_GE(core_capacity_mpps(ServiceKind::kVpcVpc, cache, true),
            core_capacity_mpps(ServiceKind::kVpcVpc, cache, false));
}

TEST(HeavyHitter, PoissonModeApproximatesRate) {
  HeavyHitterConfig cfg;
  cfg.flow = make_flow(1, 1, 0);
  cfg.profile = RateProfile{{NanoTime{0}, 10'000.0}};
  cfg.poisson = true;
  HeavyHitterSource src(cfg);
  std::uint64_t n = 0;
  while (true) {
    const auto t = src.next_time();
    if (!t || *t > kSecond) break;
    src.emit();
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n), 10'000, 400);
}

TEST(GwPodConfigs, NumaBalancingIntegration) {
  // A pod with balancing enabled accumulates stalls under load; one
  // without stays clean (paired via the balancer's private RNG).
  auto run = [](bool balancing) {
    PlatformConfig pc;
    Platform platform(pc);
    GwPodConfig gp;
    gp.data_cores = 1;
    gp.numa_balancing = balancing;
    gp.numa_balancing_scan_period = kMillisecond;
    const PodId pod = platform.create_pod(gp);
    PoissonFlowConfig bg;
    bg.num_flows = 200;
    bg.rate_pps = 1.3e6;  // ~90% of one core
    platform.attach_source(std::make_unique<PoissonFlowSource>(bg), pod);
    platform.run_until(200 * kMillisecond);
    return platform.pod(pod).balancer().stalls();
  };
  EXPECT_EQ(run(false), 0u);
  EXPECT_GT(run(true), 3u);
}

TEST(TrafficMux, EmptyAndExhaustedSources) {
  TrafficMux mux;
  EXPECT_FALSE(mux.next_time().has_value());
  EXPECT_EQ(mux.emit(), nullptr);
  // A source that runs dry leaves the mux empty again.
  HeavyHitterConfig cfg;
  cfg.flow = make_flow(1, 1, 0);
  cfg.profile = RateProfile{{NanoTime{0}, 1000.0}, {10 * kMillisecond, 0.0}};
  mux.add(std::make_unique<HeavyHitterSource>(cfg));
  std::uint64_t n = 0;
  while (mux.next_time().has_value()) {
    mux.emit();
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n), 10, 2);
  EXPECT_FALSE(mux.next_time().has_value());
}

TEST(MbufPool, CacheOverflowFlushesToRing) {
  MbufPool pool({.capacity = 64, .per_core_cache = 4, .num_cores = 1});
  // Drain 32 mbufs, then free them all back: the per-core cache (4)
  // must overflow and flush to the shared ring without losing any.
  std::vector<Packet*> taken;
  for (int i = 0; i < 32; ++i) taken.push_back(pool.alloc(CoreId{0}));
  for (auto* p : taken) pool.free_(p, CoreId{0});
  EXPECT_EQ(pool.available(), 64u);
  EXPECT_EQ(pool.stats().frees, 32u);
}

TEST(PlbEngineExtra, DrainAllCoversEveryQueue) {
  PlbEngine engine(PlbEngineConfig{.num_reorder_queues = 4,
                                   .num_rx_queues = 4,
                                   .reorder_entries = 64,
                                   .reorder_timeout = 10 * kMicrosecond});
  // Strand one packet on several queues by dispatching distinct flows
  // and never writing back.
  int queues_hit = 0;
  for (std::uint16_t port = 0; port < 64 && queues_hit < 3; ++port) {
    FiveTuple t{Ipv4Address{1}, Ipv4Address{2}, port, 80, IpProto::kUdp};
    auto pkt = Packet::make_synthetic(t, 1, 64);
    if (engine.dispatch(*pkt, Nanos{0})) ++queues_hit;
  }
  std::vector<ReorderEgress> out;
  engine.drain_all(1 * kMillisecond, out);  // way past every deadline
  EXPECT_TRUE(out.empty());                 // nothing returned: releases only
  EXPECT_GE(engine.total_stats().timeout_releases, 3u);
  EXPECT_FALSE(engine.next_deadline().has_value());
}

TEST(SessionOffloadExtra, DefaultGeometryBramBudget) {
  SessionOffload off;
  // 64K sessions x 45B ~= 2.9 MB: comparable to the GOP SRAM budget,
  // i.e. a plausible BRAM allocation for the offload extension.
  EXPECT_EQ(off.bram_bytes(), 65'536u * 45);
  EXPECT_LT(off.bram_bytes(), 4u << 20);
}

}  // namespace
}  // namespace albatross
