// Two-stage tenant overload rate limiter (GOP) tests: stage budgets,
// bypass, heavy-hitter installation (manual + sampled), hash-collision
// behaviour, and the 2MB-vs-200MB SRAM accounting.
#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "nic/rate_limiter.hpp"

namespace albatross {
namespace {

/// Offers `pps` for `seconds` sim-seconds of tenant `vni`; returns pass
/// fraction.
double offer(TenantRateLimiter& rl, Vni vni, double pps, double seconds,
             NanoTime start = NanoTime{}) {
  std::uint64_t passed = 0, total = 0;
  const auto gap = nanos_from_double(1e9 / pps);
  const auto end = start + nanos_from_double(seconds * 1e9);
  for (NanoTime t = start; t < end; t += gap) {
    const auto v = rl.admit(vni, t);
    if (v == RlVerdict::kPass || v == RlVerdict::kPassMarked) ++passed;
    ++total;
  }
  return static_cast<double>(passed) / static_cast<double>(total);
}

RateLimiterConfig small_cfg() {
  RateLimiterConfig cfg;
  cfg.stage1_rate_pps = 8000;  // scaled-down: 8k + 2k = 10k total
  cfg.stage2_rate_pps = 2000;
  cfg.pre_meter_rate_pps = 10000;
  cfg.auto_install = false;
  return cfg;
}

TEST(RateLimiter, UnderLimitPassesEverything) {
  TenantRateLimiter rl(small_cfg());
  EXPECT_GT(offer(rl, 7, 5000, 1.0), 0.999);
  EXPECT_EQ(rl.stats().dropped_stage2, 0u);
}

TEST(RateLimiter, TwoStageBudgetCapsTenant) {
  TenantRateLimiter rl(small_cfg());
  // Offer 40k pps; stage1 passes 8k, stage2 another 2k -> 25%.
  const double frac = offer(rl, 7, 40000, 2.0);
  EXPECT_NEAR(frac, 0.25, 0.02);
  EXPECT_GT(rl.stats().passed_marked, 0u);
  EXPECT_GT(rl.stats().dropped_stage2, 0u);
}

TEST(RateLimiter, BypassTenantsNeverLimited) {
  TenantRateLimiter rl(small_cfg());
  ASSERT_TRUE(rl.add_bypass(42));
  EXPECT_GT(offer(rl, 42, 100000, 1.0), 0.999);
  EXPECT_GT(rl.stats().bypassed, 0u);
}

TEST(RateLimiter, InstalledHeavyHitterLimitedAtPreMeter) {
  TenantRateLimiter rl(small_cfg());
  ASSERT_TRUE(rl.install_heavy_hitter(7, Nanos{0}));
  EXPECT_TRUE(rl.is_installed(7));
  const double frac = offer(rl, 7, 40000, 2.0);
  EXPECT_NEAR(frac, 0.25, 0.02);  // 10k of 40k
  EXPECT_GT(rl.stats().dropped_pre, 0u);
  // And the shared tables were never touched by this tenant.
  EXPECT_EQ(rl.stats().dropped_stage2, 0u);
  EXPECT_TRUE(rl.uninstall(7));
  EXPECT_FALSE(rl.is_installed(7));
}

TEST(RateLimiter, SamplingAutoInstallsDominantTenant) {
  RateLimiterConfig cfg = small_cfg();
  cfg.auto_install = true;
  cfg.sample_probability = 1.0 / 16.0;
  cfg.detect_threshold_samples = 8;
  TenantRateLimiter rl(cfg);
  // A dominant tenant hammering 100k pps gets detected via stage-2 RED
  // sampling within ~a second.
  offer(rl, 13, 100000, 1.0);
  EXPECT_TRUE(rl.is_installed(13));
  EXPECT_GE(rl.stats().heavy_hitters_installed, 1u);
}

TEST(RateLimiter, InnocentSmallTenantUnaffectedByDominantNonColliding) {
  TenantRateLimiter rl(small_cfg());
  // Find two VNIs that do NOT collide in either stage.
  const Vni big = 5;
  Vni small = 6;
  while (small % 4096 == big % 4096 ||
         mix64(small) % 4096 == mix64(big) % 4096) {
    ++small;
  }
  // Interleave: dominant at 40k, innocent at 1k.
  std::uint64_t small_pass = 0, small_total = 0;
  for (NanoTime t = NanoTime{0}; t < 1 * kSecond; t += NanoTime{25'000}) {
    rl.admit(big, t);  // 40k pps
    if (t % kMillisecond < NanoTime{25'000}) {  // ~1k pps
      const auto v = rl.admit(small, t);
      if (v != RlVerdict::kDropStage2 && v != RlVerdict::kDropPreMeter) {
        ++small_pass;
      }
      ++small_total;
    }
  }
  EXPECT_EQ(small_pass, small_total);
}

TEST(RateLimiter, CollidingInnocentIsRescuedByInstallingDominant) {
  // Construct a stage-2 collision: two VNIs with the same meter_table
  // slot but different color_table slots.
  RateLimiterConfig cfg = small_cfg();
  TenantRateLimiter rl(cfg);
  const Vni big = 100;
  Vni small = 101;
  while (mix64(small) % cfg.meter_entries != mix64(big) % cfg.meter_entries ||
         small % cfg.color_entries == big % cfg.color_entries) {
    ++small;
  }
  // Dominant tenant at 40k pps overflows into the shared stage-2 slot
  // and starves it; innocent tenant offers 10k (needs 2k of stage 2).
  std::uint64_t small_pass = 0, small_total = 0;
  const NanoTime big_gap = NanoTime{25'000}, small_gap = NanoTime{100'000};
  NanoTime next_small = NanoTime{0};
  for (NanoTime t = NanoTime{0}; t < kSecond; t += big_gap) {
    rl.admit(big, t);
    if (t >= next_small) {
      const auto v = rl.admit(small, t);
      if (v == RlVerdict::kPass || v == RlVerdict::kPassMarked) ++small_pass;
      ++small_total;
      next_small += small_gap;
    }
  }
  const double before = static_cast<double>(small_pass) /
                        static_cast<double>(small_total);
  // The innocent tenant lost its stage-2 share (only ~8k of 10k pass).
  EXPECT_LT(before, 0.9);

  // Remediation (§4.3): install the dominant tenant into pre_meter.
  TenantRateLimiter rl2(cfg);
  rl2.install_heavy_hitter(big, Nanos{0});
  small_pass = small_total = 0;
  next_small = NanoTime{0};
  for (NanoTime t = NanoTime{0}; t < kSecond; t += big_gap) {
    rl2.admit(big, t);
    if (t >= next_small) {
      const auto v = rl2.admit(small, t);
      if (v == RlVerdict::kPass || v == RlVerdict::kPassMarked) ++small_pass;
      ++small_total;
      next_small += small_gap;
    }
  }
  const double after = static_cast<double>(small_pass) /
                       static_cast<double>(small_total);
  EXPECT_GT(after, 0.99);
}

TEST(RateLimiter, SramBudgetMatchesPaper) {
  TenantRateLimiter rl;  // production geometry: 4K + 4K + 2x128 entries
  // ~2 MB on-chip for the two-stage design...
  EXPECT_LT(rl.sram_bytes(), 2'200'000u);
  EXPECT_GT(rl.sram_bytes(), 1'500'000u);
  // ...versus >200 MB for naive per-tenant meters at 1M tenants.
  EXPECT_GT(TenantRateLimiter::naive_sram_bytes(1'000'000), 200'000'000u);
  // The 100x headline.
  EXPECT_GT(TenantRateLimiter::naive_sram_bytes(1'000'000) /
                rl.sram_bytes(),
            90u);
}

TEST(RateLimiter, PreTableCapacityIs128) {
  TenantRateLimiter rl(small_cfg());
  int installed = 0;
  for (Vni v = 1; v <= 200; ++v) {
    if (rl.install_heavy_hitter(v, Nanos{0})) ++installed;
  }
  EXPECT_EQ(installed, 128);
}

}  // namespace
}  // namespace albatross
