// Tests for the paper's operational/extension mechanisms:
//  - PLB->RSS fallback watchdog (§4.1 remediation 5)
//  - protocol-priority-queue ablation (§4.3 GOP technique 2)
//  - FPGA session offload (§7 future-offload plan #1)
//  - dual BGP proxy redundancy (§5)
#include <gtest/gtest.h>

#include "bgp/proxy.hpp"
#include "bgp/switch_model.hpp"
#include "core/fallback.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "nic/session_offload.hpp"
#include "traffic/heavy_hitter.hpp"

namespace albatross {
namespace {

// ---------------------------------------------------------------- offload

FiveTuple flow_tuple(std::uint16_t i) {
  return FiveTuple{Ipv4Address{0x0a000000u + i},
                   Ipv4Address::from_octets(8, 0, 0, 1), i, 443,
                   IpProto::kUdp};
}

TEST(SessionOffload, MissThenInstallThenHit) {
  SessionOffload off;
  EXPECT_FALSE(off.fast_path(flow_tuple(1), 256, Nanos{0}).has_value());
  EXPECT_EQ(off.stats().misses, 1u);
  EXPECT_TRUE(off.install(flow_tuple(1), 7, Nanos{100}));
  const auto lat = off.fast_path(flow_tuple(1), 256, Nanos{200});
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, off.config().fpga_process_ns);
  const auto s = off.peek(flow_tuple(1));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->packets, 1u);
  EXPECT_EQ(s->bytes, 256u);
  EXPECT_EQ(s->action, 7u);
  EXPECT_TRUE(off.remove(flow_tuple(1)));
  EXPECT_FALSE(off.fast_path(flow_tuple(1), 256, Nanos{300}).has_value());
}

TEST(SessionOffload, InstallIsIdempotent) {
  SessionOffload off;
  EXPECT_TRUE(off.install(flow_tuple(2), 1, Nanos{0}));
  EXPECT_TRUE(off.install(flow_tuple(2), 1, Nanos{10}));
  EXPECT_EQ(off.stats().installs, 1u);
  EXPECT_EQ(off.size(), 1u);
}

TEST(SessionOffload, CapacityBounded) {
  SessionOffloadConfig cfg;
  cfg.capacity = 16;
  SessionOffload off(cfg);
  int installed = 0;
  for (std::uint16_t i = 0; i < 64; ++i) {
    if (off.install(flow_tuple(i), 0, Nanos{0})) ++installed;
  }
  EXPECT_EQ(installed, 16);
  EXPECT_GT(off.stats().install_rejected_full, 0u);
  EXPECT_EQ(off.bram_bytes(), 16u * 45);
}

TEST(SessionOffload, AgingReclaimsIdleSessions) {
  SessionOffloadConfig cfg;
  cfg.idle_timeout = kSecond;
  SessionOffload off(cfg);
  off.install(flow_tuple(1), 0, Nanos{0});
  off.install(flow_tuple(2), 0, Nanos{0});
  off.fast_path(flow_tuple(1), 64, 900 * kMillisecond);  // refresh #1
  EXPECT_EQ(off.age(1500 * kMillisecond), 1u);
  EXPECT_TRUE(off.peek(flow_tuple(1)).has_value());
  EXPECT_FALSE(off.peek(flow_tuple(2)).has_value());
}

TEST(SessionOffload, PlatformFastPathBypassesCpu) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcInternet, 2, LbMode::kPlb);
  s.platform->nic().enable_session_offload(s.pod);

  // A single long-lived flow: first packet takes the CPU path and
  // installs the session; the rest ride the FPGA.
  HeavyHitterConfig hh;
  hh.flow = make_flow(0xcafe, 5, 0);
  hh.profile = RateProfile{{NanoTime{0}, 200'000.0}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);
  s.platform->run_until(50 * kMillisecond);

  const auto& off = s.platform->nic().session_offload(s.pod);
  EXPECT_GT(off.stats().fast_path_hits, 5000u);
  // The CPU only saw the pre-install packets.
  EXPECT_LT(s.platform->pod(s.pod).stats().processed, 50u);
  // Everything was delivered, and fast-path latency is far below the
  // PCIe round trip (no DMA on the offloaded path).
  const auto& t = s.platform->telemetry(s.pod);
  EXPECT_GT(static_cast<double>(t.delivered) /
                static_cast<double>(t.offered),
            0.999);
  EXPECT_LT(t.wire_latency.quantile(0.5), 3'000u);  // ~1.5us vs ~9us
}

// ---------------------------------------------------------- fallback

TEST(FallbackWatchdog, TripsUnderSustainedHol) {
  // Silent-drop traffic (drop flag disabled) wedges reorder heads; the
  // watchdog must flip the pod to RSS.
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 2, LbMode::kPlb,
                                   200, 20'000, /*drop_flag=*/false);
  // All traffic at the ACL-denied prefix: every packet is silently
  // dropped on the CPU -> continuous HOL timeouts.
  HeavyHitterConfig bad;
  bad.flow = make_flow(0xdead, 3, 0);
  bad.flow.tuple.dst_ip = Ipv4Address::from_octets(9, 9, 9, 5);
  bad.profile = RateProfile{{NanoTime{0}, 500'000.0}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(bad), s.pod);

  FallbackWatchdog dog(*s.platform, s.pod,
                       FallbackWatchdogConfig{.enabled = true,
                                              .check_period = 5 * kMillisecond,
                                              .hol_rate_threshold = 1000.0,
                                              .consecutive_windows = 3});
  dog.arm();
  s.platform->run_until(200 * kMillisecond);
  EXPECT_TRUE(dog.triggered());
  EXPECT_EQ(s.platform->nic().pod_mode(s.pod), LbMode::kRss);
  EXPECT_GE(dog.checks_run(), 3u);
}

TEST(FallbackWatchdog, KeepsMonitoringAfterTripAndRearms) {
  // The watchdog must not go blind after tripping: checks continue, and
  // rearm() returns the pod to PLB so a second episode can trip again.
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 2, LbMode::kPlb,
                                   200, 20'000, /*drop_flag=*/false);
  HeavyHitterConfig bad;
  bad.flow = make_flow(0xdead, 3, 0);
  bad.flow.tuple.dst_ip = Ipv4Address::from_octets(9, 9, 9, 5);
  bad.profile = RateProfile{{NanoTime{0}, 500'000.0}};  // pathological forever
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(bad), s.pod);

  FallbackWatchdog dog(*s.platform, s.pod,
                       FallbackWatchdogConfig{.enabled = true,
                                              .check_period = 5 * kMillisecond,
                                              .hol_rate_threshold = 1000.0,
                                              .consecutive_windows = 3});
  dog.arm();
  dog.arm();  // idempotent: must not double the check chain
  s.platform->run_until(200 * kMillisecond);
  ASSERT_TRUE(dog.triggered());
  EXPECT_EQ(dog.trip_count(), 1u);
  const auto checks_at_trip = dog.checks_run();

  // Sampling continued past the trip.
  s.platform->run_until(300 * kMillisecond);
  EXPECT_GT(dog.checks_run(), checks_at_trip);

  // Operator (or recovery controller) re-arms: back to PLB...
  dog.rearm();
  EXPECT_FALSE(dog.triggered());
  EXPECT_EQ(s.platform->nic().pod_mode(s.pod), LbMode::kPlb);
  EXPECT_EQ(dog.trip_count(), 1u);

  // ...and the still-pathological workload trips it a second time.
  s.platform->run_until(600 * kMillisecond);
  EXPECT_TRUE(dog.triggered());
  EXPECT_EQ(dog.trip_count(), 2u);
  EXPECT_EQ(s.platform->nic().pod_mode(s.pod), LbMode::kRss);

  // Second rearm clears it again; rearm on an untripped dog is a no-op.
  dog.rearm();
  dog.rearm();
  EXPECT_EQ(dog.trip_count(), 2u);
  EXPECT_EQ(s.platform->nic().pod_mode(s.pod), LbMode::kPlb);
}

TEST(FallbackWatchdog, QuietPodStaysOnPlb) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 2, LbMode::kPlb);
  PoissonFlowConfig bg;
  bg.num_flows = 500;
  bg.rate_pps = 200'000;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);
  FallbackWatchdog dog(*s.platform, s.pod);
  dog.arm();
  s.platform->run_until(100 * kMillisecond);
  EXPECT_FALSE(dog.triggered());
  EXPECT_EQ(s.platform->nic().pod_mode(s.pod), LbMode::kPlb);
}

TEST(FallbackWatchdog, DisabledNeverChecks) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 1, LbMode::kPlb);
  FallbackWatchdog dog(*s.platform, s.pod,
                       FallbackWatchdogConfig{.enabled = false});
  dog.arm();
  s.platform->run_until(50 * kMillisecond);
  EXPECT_EQ(dog.checks_run(), 0u);
}

// ------------------------------------------------- priority queues

TEST(PriorityQueues, DisabledSendsBfdThroughDataPath) {
  PktDirConfig cfg;
  cfg.priority_queues_enabled = false;
  PktDir dir;
  dir.configure_pod(0, cfg);
  auto bfd = Packet::make_synthetic(
      FiveTuple{Ipv4Address{1}, Ipv4Address{2}, 49152, kBfdPort,
                IpProto::kUdp},
      0, 80);
  EXPECT_EQ(dir.classify_annotated(0, *bfd).cls, PktClass::kPlb);
}

TEST(PriorityQueues, DataPathBfdReachesCtrlPlaneWhenUncongested) {
  // Even via the data path, surviving BFD packets must land at the
  // ctrl plane (GwPod consumes local protocol packets after the run
  // loop) and release their reorder entries via the drop flag.
  PlatformConfig pc;
  Platform platform(pc);
  GwPodConfig gp;
  gp.data_cores = 2;
  PktDirConfig dir;
  dir.priority_queues_enabled = false;
  const PodId pod = platform.create_pod(gp, 0, dir, LbMode::kPlb);

  std::uint64_t ctrl_rx = 0;
  platform.pod(pod).set_protocol_handler(
      [&](PacketPtr, NanoTime) { ++ctrl_rx; });

  HeavyHitterConfig bfd;
  bfd.flow = make_flow(0xbfd, 0, 0);
  bfd.flow.tuple.dst_port = kBfdPort;
  bfd.profile = RateProfile{{NanoTime{0}, 1000.0}};
  platform.attach_source(std::make_unique<HeavyHitterSource>(bfd), pod);
  platform.run_until(100 * kMillisecond);

  EXPECT_NEAR(static_cast<double>(ctrl_rx), 100.0, 5.0);
  // Reorder entries released via drop flags, not HOL timeouts.
  const auto stats = platform.nic().engine(pod).total_stats();
  EXPECT_EQ(stats.timeout_releases, 0u);
  EXPECT_GE(stats.drop_releases, ctrl_rx - 1);
}

// -------------------------------------------------- dual BGP proxy

TEST(DualBgpProxy, SurvivesPrimaryProxyFailure) {
  EventLoop loop;
  UplinkSwitch uplink(loop, SwitchConfig{});
  BgpProxyConfig cfg_a;
  cfg_a.router_id = 0x0a640001;
  BgpProxyConfig cfg_b;
  cfg_b.router_id = 0x0a640002;
  BgpProxy primary(loop, uplink, cfg_a, NanoTime{});
  BgpProxy standby(loop, uplink, cfg_b, NanoTime{});
  EXPECT_EQ(uplink.peer_count(), 2u);  // dual proxies = 2 peers (not m)

  // One pod peers with BOTH proxies (dual iBGP uplinks).
  BgpSession to_primary(loop, BgpSessionConfig{.asn = 64600, .router_id = 9});
  BgpSession to_standby(loop,
                        BgpSessionConfig{.asn = 64600, .router_id = 10});
  primary.attach_pod(to_primary, Nanos{0});
  standby.attach_pod(to_standby, Nanos{0});
  loop.run_until(30 * kSecond);

  const RoutePrefix vip{Ipv4Address::from_octets(100, 100, 0, 0), 24};
  to_primary.announce(vip, 9, loop.now());
  to_standby.announce(vip, 10, loop.now());
  loop.run_until(loop.now() + 5 * kSecond);
  EXPECT_EQ(uplink.routes_learned(), 2u);  // one path via each proxy

  // Primary proxy dies: its switch session and routes vanish, but the
  // VIP stays reachable via the standby.
  primary.uplink_session().stop(loop.now());
  loop.run_until(loop.now() + 5 * kSecond);
  EXPECT_EQ(uplink.routes_learned(), 1u);
  EXPECT_EQ(uplink.established_count(), 1u);
}

}  // namespace
}  // namespace albatross
