// Tests for albatross-lint (tools/lint): each domain rule must fire on
// a known-bad snippet, stay silent on clean code and on prose
// (comments/strings), honour inline and file allowlists, and respect
// its path scoping.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace albatross::lint {
namespace {

std::vector<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  const auto rules = rules_fired(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(Lint, WallClockCallFires) {
  const auto f = lint_source("src/sim/event_loop.cpp",
                             "#include <chrono>\n"
                             "auto t = std::chrono::system_clock::now();\n"
                             "long e = time(nullptr);\n"
                             "timeval tv; gettimeofday(&tv, nullptr);\n");
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(fired(f, "wall-clock"));
  EXPECT_EQ(f[0].line, 2);
}

TEST(Lint, WallClockIgnoresSuffixedIdentifiers) {
  // run_time(...) / head_deadline(...) are not wall-clock reads.
  const auto f = lint_source("src/sim/event_loop.cpp",
                             "auto a = run_time(x);\n"
                             "auto b = q.head_deadline();\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, NondeterministicRngFires) {
  const auto f = lint_source("src/traffic/flow_gen.cpp",
                             "#include <random>\n"
                             "std::random_device rd;\n"
                             "std::mt19937 gen(rd());\n"
                             "int r = rand() % 7;\n");
  EXPECT_TRUE(fired(f, "nondeterministic-rng"));
  EXPECT_EQ(f.size(), 3u);
}

TEST(Lint, RngAllowedInCommonRng) {
  // The seeded PRNG implementation itself is the one legal home.
  const auto f = lint_source("src/common/rng.hpp",
                             "#pragma once\n"
                             "std::mt19937_64 engine_;\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, UnorderedIterationInDispatchLoopFires) {
  const std::string bad =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> flows_;\n"
      "void flush() {\n"
      "  for (const auto& [k, v] : flows_) { emit(v); }\n"
      "}\n";
  const auto f = lint_source("src/nic/plb_dispatch.cpp", bad);
  ASSERT_TRUE(fired(f, "unordered-iteration"));
  EXPECT_EQ(f[0].line, 4);
  // Same code outside the determinism scope is not in jurisdiction.
  EXPECT_TRUE(lint_source("src/traffic/flow_gen.cpp", bad).empty());
}

TEST(Lint, UnorderedIteratorLoopFires) {
  const auto f = lint_source(
      "src/check/oracle.hpp",
      "#pragma once\n"
      "#include <unordered_map>\n"
      "std::unordered_map<int, long> seen_;\n"
      "void age() {\n"
      "  for (auto it = seen_.begin(); it != seen_.end(); ++it) {}\n"
      "}\n");
  EXPECT_TRUE(fired(f, "unordered-iteration"));
}

TEST(Lint, OrderedIterationIsClean) {
  const auto f = lint_source("src/nic/plb_dispatch.cpp",
                             "#include <map>\n"
                             "std::map<int, int> flows_;\n"
                             "void flush() {\n"
                             "  for (const auto& [k, v] : flows_) {}\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, NakedTimeLiteralFires) {
  const auto f = lint_source(
      "src/sim/event_loop.cpp",
      "NanoTime deadline = now + budget_ms * 1'000'000;\n"
      "const auto slack = NanoTime{5'000'000};\n");
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(fired(f, "naked-time-literal"));
}

TEST(Lint, NamedUnitConstantsAreClean) {
  const auto f = lint_source(
      "src/sim/event_loop.cpp",
      "NanoTime deadline = now + 100 * kMicrosecond;\n"
      "const auto gap = nanos_from_double(1e9 / pps);\n"
      "const auto t = 5_us + 2_ms;\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, TimeLiteralAllowedInUnitsHeader) {
  const auto f = lint_source("src/common/units.hpp",
                             "#pragma once\n"
                             "constexpr Nanos kSecond{1'000'000'000};\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, ScalarHotPathPopLoopFires) {
  // Both drain-loop shapes: pop in the loop condition and pop in a
  // short loop body.
  const std::string bad =
      "void drain(Ring& ring) {\n"
      "  while (!ring.empty()) {\n"
      "    auto pkt = ring.pop();\n"
      "    handle(std::move(pkt));\n"
      "  }\n"
      "}\n";
  const auto f = lint_source("src/nic/plb_dispatch.cpp", bad);
  ASSERT_TRUE(fired(f, "scalar-hot-path"));
  EXPECT_EQ(f[0].line, 3);
  const auto cond = lint_source(
      "src/gateway/gw_pod.cpp",
      "void drain(Ring& ring) {\n"
      "  PacketPtr pkt;\n"
      "  while ((pkt = ring.pop()) != nullptr) handle(std::move(pkt));\n"
      "}\n");
  EXPECT_TRUE(fired(cond, "scalar-hot-path"));
}

TEST(Lint, ScalarHotPathScopedAndBurstClean) {
  const std::string bad =
      "void drain(Ring& ring) {\n"
      "  while (!ring.empty()) {\n"
      "    auto pkt = ring.pop();\n"
      "  }\n"
      "}\n";
  // Outside the hot-path scope (sim/, check/, tests) scalar drains are
  // legal — the ring's own implementation pops one at a time.
  EXPECT_TRUE(lint_source("src/sim/ring.cpp", bad).empty());
  // A lone pop outside any loop (cold hook) is fine even in scope.
  EXPECT_TRUE(lint_source("src/nic/nic_pipeline.cpp",
                          "void take_one(Ring& ring) {\n"
                          "  auto pkt = ring.pop();\n"
                          "  handle(std::move(pkt));\n"
                          "}\n")
                  .empty());
  // The burst drain is the sanctioned shape.
  EXPECT_TRUE(lint_source("src/gateway/gw_pod.cpp",
                          "void drain(Ring& ring, Burst& b) {\n"
                          "  const std::size_t n =\n"
                          "      ring.pop_burst(std::span(b.pkts));\n"
                          "  for (std::size_t i = 0; i < n; ++i) use(b, i);\n"
                          "}\n")
                  .empty());
}

TEST(Lint, HeaderHygieneFires) {
  const auto f = lint_source("src/nic/bad.hpp",
                             "#include <string>\n"
                             "using namespace std;\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(fired(f, "header-hygiene"));
  // .cpp files are free to `using namespace` locally.
  EXPECT_TRUE(
      lint_source("src/nic/ok.cpp", "using namespace std::chrono_literals;\n")
          .empty());
}

TEST(Lint, ProseDoesNotFire) {
  // Comments and string literals are stripped before the rules run.
  const auto f = lint_source(
      "src/sim/event_loop.cpp",
      "// system_clock and rand() are banned here\n"
      "/* std::random_device too */\n"
      "const char* msg = \"never call gettimeofday(now)\";\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, InlineAllowSuppresses) {
  const auto f = lint_source(
      "src/check/probe.cpp",
      "std::unordered_map<int, int> q_;\n"
      "void collect() {\n"
      "  for (const auto& [k, v] : q_) {  // lint:allow(unordered-iteration)\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, AllowlistFileSuppressesByPath) {
  Config config;
  config.allow = parse_allowlist(
      "# comment lines are skipped\n"
      "wall-clock sim/legacy_\n"
      "* vendored/\n");
  ASSERT_EQ(config.allow.size(), 2u);
  const std::string bad = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(lint_source("src/sim/legacy_timer.cpp", bad, config).empty());
  EXPECT_TRUE(lint_source("third_party/vendored/x.cpp", bad, config).empty());
  EXPECT_FALSE(lint_source("src/sim/event_loop.cpp", bad, config).empty());
}

TEST(Lint, CleanFixtureIsClean) {
  const auto f = lint_source("src/gateway/gw_pod.cpp",
                             "#include \"gateway/gw_pod.hpp\"\n"
                             "void GwPod::tick(NanoTime now) {\n"
                             "  deadline_ = now + 50 * kMicrosecond;\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(Lint, UnorderedIterationCoversDpuAndFleet) {
  // src/dpu and src/fleet were added after the rule and must be in its
  // determinism jurisdiction too.
  const std::string bad =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> flows_;\n"
      "void flush() {\n"
      "  for (const auto& [k, v] : flows_) { emit(v); }\n"
      "}\n";
  EXPECT_TRUE(fired(lint_source("src/dpu/dpu_datapath.cpp", bad),
                    "unordered-iteration"));
  EXPECT_TRUE(fired(lint_source("src/fleet/fleet_engine.cpp", bad),
                    "unordered-iteration"));
}

TEST(Lint, RuleNamesStable) {
  const auto& names = rule_names();
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "scalar-hot-path") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "wall-clock") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(),
                        "fpga-budget-overflow") != names.end());
}

// ---- Synthesis-feasibility (fpga-*) rules ------------------------------

TEST(LintFpga, MissingAnnotationFires) {
  const std::string code =
      "#pragma once\n"
      "class PlbEngine {\n"
      " public:\n"
      "  int dispatch();\n"
      "};\n";
  const auto f = lint_source("src/nic/plb_dispatch.hpp", code);
  ASSERT_TRUE(fired(f, "fpga-missing-annotation"));
  EXPECT_EQ(f[0].line, 2);
  // Only headers under nic/ are FPGA-resident jurisdiction.
  EXPECT_TRUE(lint_source("src/sim/event_loop.hpp", code).empty());
  EXPECT_TRUE(lint_source("src/nic/plb_dispatch.cpp", code).empty());
}

TEST(LintFpga, ForwardDeclAndEnumClassAreClean) {
  const auto f = lint_source("src/nic/fwd.hpp",
                             "#pragma once\n"
                             "class ReorderQueue;\n"
                             "enum class PktClass { kPlb, kRss };\n"
                             "template <class T>\n"
                             "void use(T t);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintFpga, AnnotatedClassIsClean) {
  const auto f = lint_source(
      "src/nic/plb_dispatch.hpp",
      "#pragma once\n"
      "/// Dispatch stage.\n"
      "// fpga: lut=15'012, bram_bits=4'096, cycles=25\n"
      "class PlbEngine {\n"
      "};\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintFpga, MalformedAnnotationFires) {
  const auto f = lint_source("src/nic/plb_dispatch.hpp",
                             "#pragma once\n"
                             "// fpga: lut=15'012, cycles=25\n"
                             "class PlbEngine {\n"
                             "};\n");
  ASSERT_TRUE(fired(f, "fpga-missing-annotation"));
}

TEST(LintFpga, TimingClosureFires) {
  const auto f = lint_source(
      "src/nic/plb_reorder.hpp",
      "#pragma once\n"
      "// fpga: lut=100'000, bram_bits=2'048, cycles=9999\n"
      "class ReorderQueue {\n"
      "};\n");
  ASSERT_TRUE(fired(f, "fpga-timing-closure"));
  EXPECT_EQ(f[0].line, 2);  // anchored at the annotation line
}

TEST(LintFpga, BudgetOverflowFires) {
  const auto bram = lint_source(
      "src/nic/big.hpp",
      "#pragma once\n"
      "// fpga: lut=1'000, bram_bits=300'000'000, cycles=0\n"
      "class BigTable {\n"
      "};\n");
  ASSERT_TRUE(fired(bram, "fpga-budget-overflow"));
  const auto lut = lint_source(
      "src/nic/big.hpp",
      "#pragma once\n"
      "// fpga: lut=1'000'000, bram_bits=0, cycles=0\n"
      "class BigLogic {\n"
      "};\n");
  ASSERT_TRUE(fired(lut, "fpga-budget-overflow"));
}

TEST(LintFpga, StaleAnnotationDrift) {
  const auto annotations = collect_fpga_annotations(
      "src/nic/plb_reorder.hpp",
      "// fpga: lut=100'000, bram_bits=12'058'624, cycles=175\n"
      "class ReorderQueue {\n"
      "};\n");
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].module, "ReorderQueue");
  EXPECT_EQ(annotations[0].bram_bits, 12'058'624u);
  // >10% off the structural ledger figure: stale.
  const auto stale = check_fpga_stale(
      annotations, {{"ReorderQueue", 10'000'000}}, 0.10);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "fpga-stale-annotation");
  // Within tolerance: fine.
  EXPECT_TRUE(check_fpga_stale(annotations, {{"ReorderQueue", 12'000'000}},
                               0.10)
                  .empty());
  // Unmapped modules are not stale-checked.
  EXPECT_TRUE(check_fpga_stale(annotations, {{"PktDir", 1}}, 0.10).empty());
}

TEST(LintFpga, InlineAllowSuppresses) {
  const auto f = lint_source(
      "src/nic/host_model.hpp",
      "#pragma once\n"
      "class HostModel {  // lint:allow(fpga-missing-annotation)\n"
      "};\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintFpga, AllowlistSuppressesByPath) {
  Config config;
  config.allow = parse_allowlist("fpga-missing-annotation nic/legacy_\n");
  const std::string code =
      "#pragma once\n"
      "class LegacyStage {\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/nic/legacy_stage.hpp", code, config).empty());
  EXPECT_FALSE(lint_source("src/nic/new_stage.hpp", code, config).empty());
}

TEST(LintFpga, FindingsToJsonDeterministicAndEscaped) {
  EXPECT_EQ(findings_to_json({}), "[]");
  const std::vector<Finding> f = {
      {"a.hpp", 3, "fpga-budget-overflow", "say \"no\"\n"}};
  const auto json = findings_to_json(f);
  EXPECT_NE(json.find("\"file\": \"a.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\\\"no\\\"\\n"), std::string::npos);
}

}  // namespace
}  // namespace albatross::lint
