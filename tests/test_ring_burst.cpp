// Burst entry points of the descriptor ring (push_burst/pop_burst with
// hold credits) and the timer-wheel event loop internals the burst run
// loop leans on: FIFO among same-time events must survive level
// cascades, run_until boundaries must be exact, and long-horizon timers
// must fire at their exact virtual time after cascading down the
// hierarchy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/ring.hpp"

namespace albatross {
namespace {

PacketPtr pkt(std::uint32_t seq) {
  auto p = Packet::make_synthetic(FiveTuple{}, 1, 64);
  p->seq_in_flow = seq;
  return p;
}

std::vector<PacketPtr> burst_of(std::uint32_t first, std::size_t n) {
  std::vector<PacketPtr> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(pkt(first + static_cast<std::uint32_t>(i)));
  }
  return v;
}

TEST(PacketRingBurst, PushBurstAcceptsPrefixAndCountsTailDrops) {
  PacketRing ring(4);
  auto in = burst_of(0, 6);
  const std::size_t accepted = ring.push_burst(in);
  EXPECT_EQ(accepted, 4u);
  EXPECT_TRUE(ring.full());
  // Accepted slots are nulled; the rejected tail stays with the caller.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(in[i], nullptr);
  EXPECT_NE(in[4], nullptr);
  EXPECT_NE(in[5], nullptr);
  EXPECT_EQ(ring.stats().enqueued, 4u);
  EXPECT_EQ(ring.stats().drops, 2u);
  EXPECT_EQ(ring.stats().high_watermark, 4u);
}

TEST(PacketRingBurst, PopBurstIsFifoAndPartialOnUnderfill) {
  PacketRing ring(8);
  auto in = burst_of(0, 3);
  ASSERT_EQ(ring.push_burst(in), 3u);

  std::vector<PacketPtr> out(8);
  const std::size_t n = ring.pop_burst(out);
  ASSERT_EQ(n, 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(out[i]->seq_in_flow, i);
  }
  EXPECT_EQ(out[3], nullptr);  // untouched past n
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.stats().dequeued, 3u);
}

TEST(PacketRingBurst, WrapAroundKeepsFifoOrder) {
  // Capacity 5 (non power of two, so wrap() is exercised for real):
  // repeatedly half-drain and refill so head walks around the buffer
  // several times, checking global FIFO order throughout.
  PacketRing ring(5);
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;

  auto seed = burst_of(next_push, 5);
  next_push += 5;
  ASSERT_EQ(ring.push_burst(seed), 5u);

  std::vector<PacketPtr> out(3);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = ring.pop_burst(out);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NE(out[i], nullptr);
      EXPECT_EQ(out[i]->seq_in_flow, next_pop++);
      out[i].reset();
    }
    auto refill = burst_of(next_push, 3);
    next_push += 3;
    ASSERT_EQ(ring.push_burst(refill), 3u);
  }
  EXPECT_EQ(ring.stats().drops, 0u);
  EXPECT_EQ(ring.stats().enqueued, ring.stats().dequeued + ring.size());
}

TEST(PacketRingBurst, HoldCreditsKeepOccupancyAndCauseTailDrops) {
  PacketRing ring(4);
  auto in = burst_of(0, 4);
  ASSERT_EQ(ring.push_burst(in), 4u);

  // A burst drain pops the packets but holds their descriptor credits:
  // occupancy must not drop until the core releases them.
  std::vector<PacketPtr> out(4);
  ASSERT_EQ(ring.pop_burst(out), 4u);
  ring.hold(4);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.full());
  EXPECT_DOUBLE_EQ(ring.occupancy(), 1.0);

  // Producers see a full ring while credits are held — exactly like a
  // hardware ring whose descriptors have not been recycled yet.
  EXPECT_EQ(ring.push(pkt(100)), PushResult::kFull);
  EXPECT_EQ(ring.stats().drops, 1u);

  ring.release_hold(2);
  EXPECT_DOUBLE_EQ(ring.occupancy(), 0.5);
  EXPECT_EQ(ring.push(pkt(101)), PushResult::kOk);

  // Releasing more credits than held saturates at zero.
  ring.release_hold(100);
  EXPECT_EQ(ring.held(), 0u);
}

TEST(PacketRingBurst, ScalarAndBurstAccountingMatch) {
  // Same offered sequence, scalar push/pop vs burst push/pop: final
  // RingStats must be identical — the scalar entry points are wrappers
  // over the same slots, not a parallel implementation.
  const std::size_t kCap = 8;
  const std::size_t kOffer = 13;  // 5 drops

  PacketRing scalar(kCap);
  for (std::uint32_t i = 0; i < kOffer; ++i) {
    (void)scalar.push(pkt(i));
  }
  std::size_t scalar_popped = 0;
  while (scalar.pop() != nullptr) ++scalar_popped;

  PacketRing burst(kCap);
  auto in = burst_of(0, kOffer);
  (void)burst.push_burst(in);
  std::vector<PacketPtr> out(kOffer);
  const std::size_t burst_popped = burst.pop_burst(out);

  EXPECT_EQ(scalar_popped, burst_popped);
  EXPECT_EQ(scalar.stats().enqueued, burst.stats().enqueued);
  EXPECT_EQ(scalar.stats().dequeued, burst.stats().dequeued);
  EXPECT_EQ(scalar.stats().drops, burst.stats().drops);
  EXPECT_EQ(scalar.stats().high_watermark, burst.stats().high_watermark);
}

TEST(PacketRingBurst, EmptySpansAreNoOps) {
  PacketRing ring(4);
  std::vector<PacketPtr> none;
  EXPECT_EQ(ring.push_burst(none), 0u);
  EXPECT_EQ(ring.pop_burst(none), 0u);
  EXPECT_EQ(ring.stats().enqueued, 0u);
  EXPECT_EQ(ring.stats().drops, 0u);
}

// --- timer wheel ----------------------------------------------------------

TEST(TimerWheel, FifoSurvivesCascadeAcrossLevels) {
  // Events scheduled at the same far-future instant land in a high
  // wheel level together and cascade down as the clock approaches.
  // Scheduling order must still be their firing order — replay
  // determinism depends on the cascade preserving chain order.
  EventLoop loop;
  std::vector<int> order;
  const NanoTime far = Nanos{1'000'000'007};  // > level-0/1/2 windows
  for (int i = 0; i < 32; ++i) {
    loop.schedule_at(far, [&order, i] { order.push_back(i); });
  }
  // Interleave nearer events so the wheel actually advances in steps.
  for (int i = 0; i < 8; ++i) {
    loop.schedule_at(Nanos{i * 100'000'000}, [] {});
  }
  loop.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(loop.now(), far);
}

TEST(TimerWheel, LongHorizonTimersFireAtExactTime) {
  // One timer per wheel level, spanning from nanoseconds to hundreds of
  // virtual seconds: each must fire exactly at its scheduled instant
  // after cascading through every level in between.
  EventLoop loop;
  std::vector<std::int64_t> horizons;
  for (int lvl = 0; lvl < 9; ++lvl) {
    horizons.push_back((std::int64_t{1} << (6 * lvl)) + 3);
  }
  std::vector<std::int64_t> fired_at;
  for (const auto h : horizons) {
    loop.schedule_at(Nanos{h}, [&fired_at, &loop] {
      fired_at.push_back(loop.now().count());
    });
  }
  loop.run();
  ASSERT_EQ(fired_at.size(), horizons.size());
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    EXPECT_EQ(fired_at[i], horizons[i]) << "level " << i;
  }
  EXPECT_EQ(loop.events_processed(), horizons.size());
}

TEST(TimerWheel, RunUntilBoundaryIsInclusiveAndClockLandsOnUntil) {
  // run_until(T) must fire events AT T, leave events after T pending,
  // and leave the clock parked exactly at T either way.
  EventLoop loop;
  int at_t = 0, after_t = 0;
  loop.schedule_at(Nanos{1'000}, [&] { ++at_t; });
  loop.schedule_at(Nanos{1'001}, [&] { ++after_t; });
  loop.run_until(Nanos{1'000});
  EXPECT_EQ(at_t, 1);
  EXPECT_EQ(after_t, 0);
  EXPECT_EQ(loop.now(), NanoTime{1'000});
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(after_t, 1);
}

TEST(TimerWheel, NestedSchedulesDuringCascadeKeepOrdering) {
  // An event that schedules a same-time follow-up: the follow-up fires
  // after every event already queued at that instant (append, not
  // prepend), and before any later instant.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(Nanos{500}, [&] {
    order.push_back(0);
    loop.schedule_at(Nanos{500}, [&] { order.push_back(2); });
  });
  loop.schedule_at(Nanos{500}, [&] { order.push_back(1); });
  loop.schedule_at(Nanos{501}, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerWheel, SlabRecyclesNodesAcrossManyEvents) {
  // Hammer the wheel with far more events than live concurrently; the
  // slab freelist must recycle, so pending() returns to zero and every
  // event fires exactly once.
  EventLoop loop;
  std::uint64_t fired = 0;
  for (int wave = 0; wave < 100; ++wave) {
    for (int i = 0; i < 64; ++i) {
      loop.schedule_at(Nanos{wave * 1'000 + i * 7}, [&fired] { ++fired; });
    }
    loop.run_until(Nanos{wave * 1'000 + 999});
  }
  loop.run();
  EXPECT_EQ(fired, 6'400u);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.events_processed(), 6'400u);
}

}  // namespace
}  // namespace albatross
