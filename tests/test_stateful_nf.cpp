// Stateful NF scaling (§7): write-light NFs scale ~linearly; write-heavy
// shared-state NFs collapse with core count (locked OR lock-free); local
// state and group-spraying restore scaling.
#include <gtest/gtest.h>

#include "gateway/stateful_nf.hpp"

namespace albatross {
namespace {

FiveTuple flow(std::uint16_t i) {
  return FiveTuple{Ipv4Address{i}, Ipv4Address{1000u + i},
                   static_cast<std::uint16_t>(i), 80, IpProto::kTcp};
}

TEST(StatefulNf, SessionsCreatedOncePerFlow) {
  StatefulNfConfig cfg;
  cfg.placement = StatePlacement::kPerCore;
  cfg.cores = 4;
  StatefulNf nf(cfg);
  for (int round = 0; round < 3; ++round) {
    for (std::uint16_t f = 0; f < 10; ++f) {
      nf.process(flow(f), static_cast<CoreId>(f % 4), round * NanoTime{1000});
    }
  }
  EXPECT_EQ(nf.stats().sessions_created, 10u);
  EXPECT_EQ(nf.stats().packets, 30u);
}

TEST(StatefulNf, WriteHeavyWritesEveryPacket) {
  StatefulNfConfig cfg;
  cfg.write_heavy = true;
  StatefulNf nf(cfg);
  for (int i = 0; i < 20; ++i) nf.process(flow(1), CoreId{0}, NanoTime{i});
  EXPECT_EQ(nf.stats().state_writes, 20u);
}

TEST(StatefulNf, WriteLightCostIndependentOfCores) {
  auto cost_at = [](std::uint16_t cores) {
    StatefulNfConfig cfg;
    cfg.placement = StatePlacement::kSharedLocked;
    cfg.write_heavy = false;
    cfg.cores = cores;
    StatefulNf nf(cfg);
    nf.process(flow(1), CoreId{0}, Nanos{0});           // establishment
    return nf.process(flow(1), CoreId{0}, Nanos{1});    // steady state read
  };
  EXPECT_EQ(cost_at(1), cost_at(44));
}

TEST(StatefulNf, WriteHeavySharedDegradesWithCores) {
  auto per_pkt = [](StatePlacement p, std::uint16_t cores) {
    StatefulNfConfig cfg;
    cfg.placement = p;
    cfg.write_heavy = true;
    cfg.cores = cores;
    StatefulNf nf(cfg);
    nf.process(flow(1), CoreId{0}, Nanos{0});
    return nf.process(flow(1), CoreId{0}, Nanos{1});
  };
  // Locked shared state: the write component grows ~15x at 32 cores
  // (1 + 0.45 * 31), more than doubling the per-packet cost.
  EXPECT_GT(per_pkt(StatePlacement::kSharedLocked, 32),
            per_pkt(StatePlacement::kSharedLocked, 1) * 2);
  // Lock-free is NOT the fix (coherence misses): §7's finding — costs
  // stay within ~20% of the locked variant.
  EXPECT_GT(per_pkt(StatePlacement::kSharedLockFree, 32),
            per_pkt(StatePlacement::kSharedLocked, 32) * 0.8);
  // Per-core local state is flat.
  EXPECT_EQ(per_pkt(StatePlacement::kPerCore, 32),
            per_pkt(StatePlacement::kPerCore, 1));
}

TEST(StatefulNf, ThroughputModelShapes) {
  auto mpps = [](StatePlacement p, bool heavy, std::uint16_t cores,
                 std::uint16_t group = 0) {
    StatefulNfConfig cfg;
    cfg.placement = p;
    cfg.write_heavy = heavy;
    cfg.cores = cores;
    cfg.spray_group_size = group;
    return StatefulNf(cfg).model_throughput_mpps();
  };
  // Write-light: ~linear scaling 1 -> 44 cores.
  const double light1 = mpps(StatePlacement::kSharedLocked, false, 1);
  const double light44 = mpps(StatePlacement::kSharedLocked, false, 44);
  EXPECT_NEAR(light44 / light1, 44.0, 0.5);
  // Write-heavy shared: more cores can mean LESS total throughput.
  const double heavy8 = mpps(StatePlacement::kSharedLocked, true, 8);
  const double heavy44 = mpps(StatePlacement::kSharedLocked, true, 44);
  EXPECT_LT(heavy44 / heavy8, 44.0 / 8.0 * 0.5);
  // Mitigation 1: per-core states scale linearly again.
  const double local44 = mpps(StatePlacement::kPerCore, true, 44);
  EXPECT_GT(local44, heavy44 * 2);
  // Mitigation 2: spraying across groups of 8 beats full spray.
  const double grouped44 = mpps(StatePlacement::kSharedLocked, true, 44, 8);
  EXPECT_GT(grouped44, heavy44);
}

TEST(StatefulNf, ContendingCoresRespectsGrouping) {
  StatefulNfConfig cfg;
  cfg.placement = StatePlacement::kSharedLocked;
  cfg.cores = 40;
  cfg.spray_group_size = 10;
  EXPECT_EQ(StatefulNf(cfg).contending_cores(), 10);
  cfg.spray_group_size = 0;
  EXPECT_EQ(StatefulNf(cfg).contending_cores(), 40);
  cfg.placement = StatePlacement::kPerCore;
  EXPECT_EQ(StatefulNf(cfg).contending_cores(), 1);
}

}  // namespace
}  // namespace albatross
