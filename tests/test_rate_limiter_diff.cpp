// Differential tests for the GOP rate limiter (docs/CONFORMANCE.md):
// the production TokenBucket must track the analytic oracle within one
// token, and the full two-stage TenantRateLimiter must produce zero
// meter-conformance violations when mirrored by a MeterConformanceProbe
// under randomized multi-tenant traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "check/oracles.hpp"
#include "check/probes.hpp"
#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "nic/rate_limiter.hpp"
#include "tables/meter.hpp"

namespace albatross {
namespace {

class TokenBucketDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenBucketDifferential, TracksAnalyticOracleWithinOneToken) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  const double rate_pps = 1e6 * static_cast<double>(1 + rng.next_below(8));
  const double burst = rate_pps * 1e-3;  // 1 ms of tokens
  TokenBucket bucket(rate_pps, burst);
  check::TokenBucketOracle oracle(rate_pps, burst);

  // Mean inter-arrival swings between half and double the drain rate so
  // both the conforming and the exhausted regimes get exercised.
  NanoTime now = NanoTime{0};
  std::uint64_t divergences = 0;
  for (int step = 0; step < 200000; ++step) {
    const double load = 0.5 + 1.5 * rng.next_double();
    now += nanos_from_double(
        rng.next_exponential(1e9 / (rate_pps * load))) + NanoTime{1};
    const double level_before = oracle.level_at(now);
    const bool impl = bucket.consume(now);
    const bool ref = oracle.consume(now);
    if (impl != ref) {
      // Only legal at the decision boundary: the pre-consume allowance
      // sat within one token of the cost of this packet.
      ASSERT_LE(std::abs(level_before - 1.0), 1.0)
          << "step=" << step << " impl=" << impl
          << " oracle level=" << level_before;
      oracle.resync(impl);
      ++divergences;
    }
  }
  // Boundary disagreements must be rare, not a systematic drift.
  EXPECT_LT(divergences, 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenBucketDifferential,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull));

class RateLimiterConformance
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateLimiterConformance, ZeroConformanceViolationsUnderProbe) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  RateLimiterConfig cfg;
  cfg.stage1_rate_pps = 2e6;
  cfg.stage2_rate_pps = 5e5;
  cfg.pre_meter_rate_pps = 1e6;
  cfg.burst_seconds = 5e-4;
  TenantRateLimiter limiter(cfg);

  check::ViolationLog log;
  check::MeterConformanceProbe probe(log, limiter.config());
  limiter.set_probe(&probe);

  // Mid-tier tenants bypass (so the bypass path sees traffic), the
  // second-heaviest tenant is a pre-installed heavy hitter (so the
  // pre-meter drops), and the heaviest tenant overruns both hash-table
  // stages (so stage 2 drops). ~20 Mpps offered, Zipf(1.1) over 64
  // tenants puts ~5 Mpps on rank 0 against a 2 Mpps stage-1 slot.
  ASSERT_TRUE(limiter.add_bypass(5));
  ASSERT_TRUE(limiter.add_bypass(6));
  ASSERT_TRUE(limiter.install_heavy_hitter(2, Nanos{0}));

  const std::uint64_t tenants = 64;
  ZipfSampler popularity(tenants, 1.1);
  NanoTime now = NanoTime{0};
  for (int step = 0; step < 300000; ++step) {
    now += nanos_from_double(rng.next_exponential(50.0)) + NanoTime{1};
    const Vni vni = static_cast<Vni>(1 + popularity.sample(rng));
    (void)limiter.admit(vni, now);
  }
  limiter.set_probe(nullptr);

  EXPECT_GT(probe.checks(), 0u);
  EXPECT_EQ(log.count("meter.conformance"), 0u)
      << (log.entries().empty() ? std::string{}
                                : log.entries().front().detail);
  EXPECT_EQ(log.count("meter.bypass"), 0u);
  EXPECT_EQ(log.total(), 0u);
  // The limiter saw enough load to actually drop (the probe mirrored
  // RED verdicts too, not just an all-green run).
  EXPECT_GT(limiter.stats().dropped_stage2 + limiter.stats().dropped_pre, 0u);
  EXPECT_GT(limiter.stats().bypassed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateLimiterConformance,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull));

}  // namespace
}  // namespace albatross
