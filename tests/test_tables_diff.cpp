// Differential property tests (docs/CONFORMANCE.md): the cuckoo table
// and the aging flow table must agree with their naive unordered_map
// oracles under randomized op sequences — the exact-match analogue of the
// LPM-vs-trie cross-check in test_lpm_property.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "check/testseed.hpp"
#include "common/rng.hpp"
#include "tables/cuckoo_table.hpp"
#include "tables/flow_table.hpp"

namespace albatross {
namespace {

FiveTuple tuple_for(std::uint64_t i) {
  FiveTuple t;
  t.src_ip = Ipv4Address{static_cast<std::uint32_t>(0x0a000000u + i)};
  t.dst_ip = Ipv4Address{static_cast<std::uint32_t>(
      0xc0a80000u + (mix64(i) & 0xffff))};
  t.src_port = static_cast<std::uint16_t>(1024 + (i % 50000));
  t.dst_port = static_cast<std::uint16_t>(80 + (mix64(i ^ 7) % 1000));
  t.proto = (i & 1) != 0 ? IpProto::kTcp : IpProto::kUdp;
  return t;
}

class CuckooDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CuckooDifferential, AgreesWithMapOracle) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  CuckooTable<FiveTuple, std::uint64_t> table(4096);
  check::MapTableOracle<FiveTuple, std::uint64_t> oracle;

  // Key pool well under capacity so the kick chain cannot run the table
  // out of room (capacity-pressure behaviour has its own test).
  constexpr std::uint64_t kKeys = 1500;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t k = rng.next_below(kKeys);
    const FiveTuple key = tuple_for(k);
    const auto op = rng.next_below(10);
    if (op < 6) {
      const std::uint64_t value = rng.next_u64();
      ASSERT_TRUE(table.insert(key, value)) << "step=" << step;
      oracle.insert(key, value);
    } else if (op < 8) {
      ASSERT_EQ(table.erase(key), oracle.erase(key)) << "step=" << step;
    } else {
      ASSERT_EQ(table.find(key), oracle.find(key)) << "step=" << step;
    }
    if (step % 512 == 0) {
      ASSERT_EQ(table.size(), oracle.size()) << "step=" << step;
    }
  }

  // Full sweep: every oracle entry is present with the right value, and
  // the sizes agree so the table holds nothing extra.
  ASSERT_EQ(table.size(), oracle.size());
  for (const auto& [key, value] : oracle.entries()) {
    const auto found = table.find(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooDifferential,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull));

class FlowTableDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableDifferential, LifecycleAgreesWithOracle) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  Rng rng(seed);

  constexpr NanoTime kIdle = 5 * kMillisecond;
  FlowTable table(1 << 14, kIdle);
  check::FlowLifecycleOracle oracle(kIdle);

  constexpr std::uint64_t kFlows = 1200;
  NanoTime now = NanoTime{0};
  for (int step = 0; step < 15000; ++step) {
    now += rng.next_below(20 * kMicrosecond);
    const FiveTuple key = tuple_for(rng.next_below(kFlows));
    const auto op = rng.next_below(20);
    if (op < 14) {
      const bool existed = oracle.touch(key, now);
      FlowState* s = table.lookup(key, now, true);
      ASSERT_NE(s, nullptr) << "step=" << step;
      ++s->packets;
      EXPECT_EQ(s->packets > 1, existed) << "step=" << step;
    } else if (op < 16) {
      ASSERT_EQ(table.erase(key), oracle.erase(key)) << "step=" << step;
    } else if (op < 19) {
      ASSERT_EQ(table.peek(key).has_value(), oracle.contains(key))
          << "step=" << step;
    } else {
      ASSERT_EQ(table.age(now), oracle.age(now)) << "step=" << step;
      ASSERT_EQ(table.size(), oracle.size()) << "step=" << step;
    }
  }

  // Jump past the idle timeout: one aging pass must empty both.
  now += kIdle + NanoTime{1};
  EXPECT_EQ(table.age(now), oracle.age(now));
  EXPECT_EQ(table.size(), oracle.size());
  EXPECT_EQ(table.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableDifferential,
                         ::testing::Values(1ull, 4ull, 9ull, 16ull, 25ull));

}  // namespace
}  // namespace albatross
