// Cross-cutting property/differential tests:
//  - cuckoo table vs std::unordered_map under randomized op sequences
//  - token-bucket long-run rate never exceeds the configured limit
//  - log-histogram quantiles vs exact quantiles on random data
//  - packet builder -> parser round trip over randomized flow specs
//  - reorder engine vs an "ideal reorderer" oracle under random
//    completion orders
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "nic/plb_reorder.hpp"
#include "packet/parser.hpp"
#include "tables/cuckoo_table.hpp"
#include "tables/meter.hpp"

namespace albatross {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededProperty, CuckooMatchesUnorderedMap) {
  Rng rng(GetParam());
  CuckooTable<std::uint64_t, std::uint64_t> cuckoo(1 << 12);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t key = rng.next_below(4000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // insert/update
        const std::uint64_t value = rng.next_u64();
        // The cuckoo may reject inserts when truly full; mirror only
        // applied operations.
        if (cuckoo.insert(key, value)) ref[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(cuckoo.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {  // lookup
        const auto got = cuckoo.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(cuckoo.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(cuckoo.find(k), v);
  }
}

TEST_P(SeededProperty, TokenBucketNeverExceedsRatePlusBurst) {
  Rng rng(GetParam());
  const double rate = 50'000.0;
  const double burst = 500.0;
  TokenBucket tb(rate, burst);
  std::uint64_t passed = 0;
  NanoTime now = NanoTime{0};
  const NanoTime horizon = 2 * kSecond;
  while (now < horizon) {
    // Adversarial arrivals: bursts and gaps of random sizes.
    now += static_cast<NanoTime>(rng.next_below(200'000));
    const int batch = 1 + static_cast<int>(rng.next_below(32));
    for (int i = 0; i < batch; ++i) {
      if (tb.consume(now)) ++passed;
    }
  }
  // `now` may overshoot the horizon by one random gap; bound against
  // the actual last arrival time.
  const double max_allowed =
      rate * (static_cast<double>(now.count()) / 1e9) + burst;
  EXPECT_LE(static_cast<double>(passed), max_allowed + 1);
}

TEST_P(SeededProperty, HistogramQuantilesTrackExact) {
  Rng rng(GetParam());
  LogHistogram h;
  std::vector<std::uint64_t> exact;
  for (int i = 0; i < 50'000; ++i) {
    // Mixed scales: microseconds to milliseconds, heavy tail.
    const auto v = static_cast<std::uint64_t>(
        rng.next_pareto(1'000.0, 1.2));
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto approx = static_cast<double>(h.quantile(q));
    const auto truth = static_cast<double>(
        exact[static_cast<std::size_t>(
            q * static_cast<double>(exact.size() - 1))]);
    // Log-linear layout with 32 sub-buckets: <= ~4% relative error.
    EXPECT_NEAR(approx, truth, truth * 0.05 + 2.0) << "q=" << q;
  }
}

TEST_P(SeededProperty, BuilderParserRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    VxlanFlowSpec spec;
    spec.vni = static_cast<Vni>(rng.next_below(1 << 24));
    spec.outer =
        FiveTuple{Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
                  Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
                  static_cast<std::uint16_t>(rng.next_below(65536)),
                  kVxlanPort, IpProto::kUdp};
    spec.inner.tuple =
        FiveTuple{Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
                  Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
                  static_cast<std::uint16_t>(rng.next_below(65536)),
                  static_cast<std::uint16_t>(rng.next_below(65536)),
                  rng.next_bool(0.5) ? IpProto::kUdp : IpProto::kTcp};
    spec.inner.payload_len = 1 + rng.next_below(1400);

    PacketPtr pkt = spec.inner.tuple.proto == IpProto::kUdp
                        ? build_vxlan_packet(spec)
                        : build_tcp_packet(spec.inner, 0x10);
    const auto parsed = parse_packet(pkt->bytes());
    ASSERT_TRUE(parsed.has_value());
    if (spec.inner.tuple.proto == IpProto::kUdp) {
      EXPECT_EQ(parsed->tenant_vni(), spec.vni);
      EXPECT_EQ(parsed->flow_tuple(), spec.inner.tuple);
    } else {
      FiveTuple expect = spec.inner.tuple;
      expect.proto = IpProto::kTcp;
      EXPECT_EQ(parsed->flow_tuple(), expect);
    }
  }
}

/// Ideal-reorderer oracle: with no losses and completions below the
/// timeout, the engine's output must exactly equal sorted-by-PSN input
/// regardless of the completion permutation.
TEST_P(SeededProperty, ReorderMatchesIdealOracle) {
  Rng rng(GetParam());
  ReorderQueue q(1024, kReorderTimeout);
  std::vector<ReorderEgress> out;
  std::vector<Psn> output;

  constexpr int kBatches = 100;
  constexpr int kBatchSize = 64;
  NanoTime now = NanoTime{0};
  for (int b = 0; b < kBatches; ++b) {
    // Reserve a batch, complete it in a random permutation.
    std::vector<Psn> batch;
    for (int i = 0; i < kBatchSize; ++i) {
      const auto psn = q.reserve(now);
      ASSERT_TRUE(psn.has_value());
      batch.push_back(*psn);
      now += NanoTime{100};
    }
    for (std::size_t i = batch.size(); i > 1; --i) {
      std::swap(batch[i - 1], batch[rng.next_below(i)]);
    }
    for (const Psn psn : batch) {
      PlbMeta m;
      m.psn = psn;
      now += static_cast<NanoTime>(rng.next_below(500));
      q.writeback(Packet::make_synthetic(FiveTuple{}, 1, 64), m, now, out);
      q.drain(now, out);
      for (auto& e : out) output.push_back(e.meta.psn);
      out.clear();
    }
  }
  ASSERT_EQ(output.size(),
            static_cast<std::size_t>(kBatches * kBatchSize));
  for (std::size_t i = 0; i < output.size(); ++i) {
    ASSERT_EQ(output[i], i);  // exactly 0,1,2,... : the oracle
  }
  EXPECT_EQ(q.stats().best_effort_tx, 0u);
  EXPECT_EQ(q.stats().timeout_releases, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull,
                                           505ull));

}  // namespace
}  // namespace albatross
