// JSON parser/serializer and the experiment-config loader.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "core/config.hpp"

namespace albatross {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(json_parse("3.5")->as_number(), 3.5);
  EXPECT_EQ(json_parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(json_parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(json_parse("\"hello\"")->as_string(), "hello");
}

TEST(Json, ParsesNestedStructures) {
  const auto v = json_parse(R"({
    "name": "albatross",
    "pods": [{"cores": 44}, {"cores": 20}],
    "nested": {"deep": {"value": 7}},
    "empty_obj": {},
    "empty_arr": []
  })");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)["name"].as_string(), "albatross");
  ASSERT_EQ((*v)["pods"].as_array().size(), 2u);
  EXPECT_EQ((*v)["pods"].as_array()[0]["cores"].as_int(), 44);
  EXPECT_EQ((*v)["nested"]["deep"]["value"].as_int(), 7);
  EXPECT_TRUE((*v)["empty_obj"].is_object());
  EXPECT_TRUE((*v)["empty_arr"].as_array().empty());
  // Missing keys chain safely to null.
  EXPECT_TRUE((*v)["no"]["such"]["key"].is_null());
  EXPECT_EQ((*v)["no"].get_int("x", 9), 9);
}

TEST(Json, StringEscapes) {
  const auto v = json_parse(R"("a\"b\\c\/d\ne\tfAé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\ne\tfA\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  JsonParseError err;
  EXPECT_FALSE(json_parse("{", &err).has_value());
  EXPECT_FALSE(json_parse("[1,]", &err).has_value());
  EXPECT_FALSE(json_parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(json_parse("tru", &err).has_value());
  EXPECT_FALSE(json_parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(json_parse("1 2", &err).has_value());
  EXPECT_FALSE(json_parse("", &err).has_value());
  EXPECT_FALSE(err.message.empty());
}

TEST(Json, DumpRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,true,null,"x\ny"],"b":{"c":-3},"d":"z"})";
  const auto v = json_parse(doc);
  ASSERT_TRUE(v.has_value());
  // dump -> parse -> dump must be a fixed point.
  const std::string once = v->dump();
  const auto again = json_parse(once);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), once);
  EXPECT_EQ((*again)["a"].as_array()[1].as_number(), 2.5);
}

TEST(ConfigLoader, BuildsPlatformAndPods) {
  const auto cfg = json_parse(R"({
    "platform": {"tenants": 50, "routes": 1000,
                 "gop": {"enabled": false}},
    "pods": [
      {"service": "internet", "data_cores": 4, "mode": "plb"},
      {"service": "vpc", "data_cores": 2, "mode": "rss",
       "priority_queues": false, "offload": true}
    ]
  })");
  ASSERT_TRUE(cfg.has_value());
  std::vector<PodId> pods;
  auto platform = build_platform_from_json(*cfg, pods);
  ASSERT_EQ(pods.size(), 2u);
  EXPECT_EQ(platform->nic().pod_mode(pods[0]), LbMode::kPlb);
  EXPECT_EQ(platform->nic().pod_mode(pods[1]), LbMode::kRss);
  EXPECT_FALSE(platform->nic().session_offload_enabled(pods[0]));
  EXPECT_TRUE(platform->nic().session_offload_enabled(pods[1]));
  EXPECT_FALSE(platform->nic().config().gop_enabled);
  EXPECT_FALSE(platform->nic()
                   .pkt_dir()
                   .pod_config(pods[1])
                   .priority_queues_enabled);
}

TEST(ConfigLoader, RejectsUnknownNames) {
  std::vector<PodId> pods;
  const auto bad_service =
      json_parse(R"({"pods":[{"service":"warp-drive"}]})");
  EXPECT_THROW(build_platform_from_json(*bad_service, pods),
               std::runtime_error);
  const auto bad_mode =
      json_parse(R"({"pods":[{"service":"vpc","mode":"quantum"}]})");
  EXPECT_THROW(build_platform_from_json(*bad_mode, pods),
               std::runtime_error);
}

TEST(ConfigLoader, EndToEndExperiment) {
  const auto result = run_experiment_from_json(R"({
    "platform": {"tenants": 64, "routes": 2000},
    "pods": [{"service": "vpc", "data_cores": 4}],
    "traffic": [{"type": "poisson", "pod": 0, "rate_mpps": 1.0,
                 "flows": 1000}],
    "duration_ms": 40,
    "order_oracle": true
  })");
  ASSERT_EQ(result.pods.size(), 1u);
  EXPECT_NEAR(result.pods[0].offered_mpps, 1.0, 0.05);
  EXPECT_LT(result.pods[0].loss_rate, 0.01);
  EXPECT_GT(result.pods[0].mean_latency_us, 5.0);
}

TEST(ConfigLoader, HitterStepsAndBadReferences) {
  EXPECT_THROW(run_experiment_from_json(R"({
    "pods": [{"service": "vpc"}],
    "traffic": [{"type": "poisson", "pod": 3}]
  })"),
               std::runtime_error);
  EXPECT_THROW(run_experiment_from_json(R"({
    "pods": [{"service": "vpc"}],
    "traffic": [{"type": "sharknado", "pod": 0}]
  })"),
               std::runtime_error);
  EXPECT_THROW(run_experiment_from_json("{ not json"), std::runtime_error);

  // Hitter with a valid 2-step profile runs clean.
  const auto r = run_experiment_from_json(R"({
    "pods": [{"service": "vpc", "data_cores": 2}],
    "traffic": [{"type": "hitter", "pod": 0, "vni": 9,
                 "steps": [[0, 0.2], [20, 0.5]]}],
    "duration_ms": 40
  })");
  EXPECT_GT(r.pods[0].delivered_mpps, 0.2);
}

}  // namespace
}  // namespace albatross
