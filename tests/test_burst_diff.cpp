// Burst-size differential: the batched hot path (PacketRing bursts,
// Service::process_burst, the pod burst run loop) is a performance
// refactor and must be behaviourally invisible. For each seeded trace we
// run the identical op list at rx_burst=1 (legacy per-packet activation)
// and rx_burst=32 and require the full packet-conservation ledgers,
// verdicts, and violation counts to match field-for-field
// (docs/BURST_API.md). 100+ seeds across chaos modes so a batching bug
// that only shows under faults (partial bursts, mid-burst stalls) still
// trips the diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "check/testseed.hpp"
#include "check/trace_gen.hpp"

namespace albatross {
namespace {

using check::ChaosMode;
using check::FuzzReport;
using check::FuzzTrace;
using check::PodLedger;

std::string ledger_str(const PodLedger& l) {
  return "offered=" + std::to_string(l.offered) +
         " delivered=" + std::to_string(l.delivered) +
         " in_order=" + std::to_string(l.delivered_in_order) +
         " disordered=" + std::to_string(l.delivered_disordered) +
         " drop_rl=" + std::to_string(l.dropped_rate_limit) +
         " drop_reorder=" + std::to_string(l.dropped_reorder_full) +
         " blackholed=" + std::to_string(l.blackholed) +
         " order_viol=" + std::to_string(l.flow_order_violations) +
         " pod_proc=" + std::to_string(l.pod_processed) +
         " pod_fwd=" + std::to_string(l.pod_forwarded) +
         " pod_drop_svc=" + std::to_string(l.pod_dropped_service) +
         " pod_drop_ring=" + std::to_string(l.pod_dropped_ring) +
         " pod_proto=" + std::to_string(l.pod_protocol_packets) +
         " pod_dflags=" + std::to_string(l.pod_drop_flags_sent);
}

/// Runs one generated trace at two burst sizes and diffs the reports.
void expect_burst_invariant(std::uint64_t seed, ChaosMode chaos,
                            std::size_t burst) {
  FuzzTrace trace = check::generate_trace(seed, 1500, chaos);

  trace.scenario.rx_burst = 1;
  const FuzzReport base = check::run_trace(trace);

  trace.scenario.rx_burst = burst;
  const FuzzReport batched = check::run_trace(trace);

  EXPECT_EQ(base.violations, batched.violations);
  EXPECT_EQ(base.violated(), batched.violated());
  EXPECT_EQ(base.packets, batched.packets);
  EXPECT_EQ(base.offered, batched.offered);
  EXPECT_EQ(base.delivered, batched.delivered);
  EXPECT_EQ(base.ledger_checked, batched.ledger_checked);
  EXPECT_TRUE(base.ledger == batched.ledger)
      << "burst=1:       " << ledger_str(base.ledger) << "\n"
      << "burst=" << burst << ":      " << ledger_str(batched.ledger);
}

class BurstDiffSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// 50 base seeds x {none, benign} = 100 differential runs, each diffing a
// full trace execution at burst 1 vs 32.
TEST_P(BurstDiffSeeds, CleanTraceLedgerIdenticalAtBurst32) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_burst_invariant(seed, ChaosMode::kNone, 32);
}

TEST_P(BurstDiffSeeds, BenignChaosLedgerIdenticalAtBurst32) {
  const std::uint64_t seed = check::test_seed(GetParam());
  SCOPED_TRACE(check::seed_banner(seed));
  expect_burst_invariant(seed, ChaosMode::kBenign, 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstDiffSeeds,
                         ::testing::Range(std::uint64_t{100},
                                          std::uint64_t{150}));

// Awkward burst sizes (not matching ring geometry, prime, single-slot
// rings of credit pressure) on a few seeds: partial tail bursts and
// wrap-around paths must also be invisible.
class BurstSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstSizeSweep, OddBurstSizesLedgerIdentical) {
  const std::uint64_t seed = check::test_seed(7);
  SCOPED_TRACE(check::seed_banner(seed));
  expect_burst_invariant(seed, ChaosMode::kBenign, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BurstSizeSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{7}, std::size_t{13},
                                           std::size_t{64},
                                           std::size_t{256}));

// The reorder-stall chaos mode intentionally breaks an invariant; the
// differential requirement still holds — both burst sizes must catch the
// SAME violation with the SAME ledger.
TEST(BurstDiffViolation, ReorderStallCaughtIdenticallyAtBothBursts) {
  const std::uint64_t seed = check::test_seed(42);
  SCOPED_TRACE(check::seed_banner(seed));
  FuzzTrace trace = check::generate_trace(seed, 4000, ChaosMode::kNone);
  // The stall wedges the PLB reorder check; force PLB since some seeds
  // draw the RSS baseline, which has no reorder engine.
  trace.scenario.mode = LbMode::kPlb;

  // Deterministic mid-run stall well past the 100us HOL timeout.
  check::TraceOp stall;
  stall.kind = check::TraceOpKind::kReorderStall;
  stall.at = trace.scenario.horizon / 4;
  stall.duration = 600 * kMicrosecond;
  trace.ops.push_back(stall);
  std::stable_sort(
      trace.ops.begin(), trace.ops.end(),
      [](const check::TraceOp& a, const check::TraceOp& b) {
        return a.at < b.at;
      });

  trace.scenario.rx_burst = 1;
  const FuzzReport base = check::run_trace(trace);
  trace.scenario.rx_burst = 32;
  const FuzzReport batched = check::run_trace(trace);

  EXPECT_TRUE(base.violated());
  EXPECT_TRUE(batched.violated());
  EXPECT_EQ(base.violations, batched.violations);
  EXPECT_TRUE(base.ledger == batched.ledger)
      << "burst=1:  " << ledger_str(base.ledger) << "\n"
      << "burst=32: " << ledger_str(batched.ledger);
}

}  // namespace
}  // namespace albatross
