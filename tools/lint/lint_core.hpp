// albatross-lint: domain-aware static analysis for the Albatross tree.
//
// A deliberately small token/regex linter (no libclang dependency) that
// enforces the determinism and unit-discipline rules the simulation and
// the conformance harness depend on (docs/STATIC_ANALYSIS.md):
//
//   wall-clock            no real-time reads anywhere (system_clock,
//                         time(), gettimeofday, ...): virtual time only.
//   nondeterministic-rng  no rand()/std::random_device/mt19937 outside
//                         src/common/rng — fuzz replay needs one seeded
//                         PRNG.
//   unordered-iteration   no iteration over unordered_{map,set} in
//                         src/nic, src/gateway, src/sim, src/check,
//                         src/dpu, src/fleet, where hash-map order would
//                         leak into packet ordering or JSON/report
//                         output.
//   naked-time-literal    no raw power-of-1000 literals multiplied into
//                         time expressions outside common/types.hpp and
//                         common/units.hpp — use _us/_ms literals,
//                         kMicrosecond/kSecond, or the named converters.
//   scalar-hot-path       no one-at-a-time ring `.pop()` loops in
//                         src/nic or src/gateway — the hot path drains
//                         through pop_burst / process_burst
//                         (docs/BURST_API.md).
//   header-hygiene        headers carry #pragma once and never
//                         `using namespace` at file scope.
//
// Synthesis-feasibility rules (docs/STATIC_ANALYSIS.md, "Resource-budget
// rules"): every FPGA-resident NIC module class in a src/nic header
// carries a structured budget annotation
//
//   // fpga: lut=<N>, bram_bits=<M>, cycles=<K>
//
// on (or in the doc comment directly above) its class declaration, and
// the linter checks the annotations against the Tab. 5 chip envelope and
// the Tab. 4 stage timings:
//
//   fpga-missing-annotation  NIC module class without (or with a
//                            malformed) budget annotation.
//   fpga-budget-overflow     summed annotated LUT/BRAM across the
//                            pipeline exceeds the FpgaSpec envelope
//                            (912,800 LUTs / 265 Mbit BRAM).
//   fpga-timing-closure      annotated cycles disagree with the
//                            module's NicTimings latency at the 500 MHz
//                            datapath clock.
//   fpga-stale-annotation    annotated bram_bits drift >10% from the
//                            structural accounting FpgaResourceModel::
//                            ledger() computes from the configured data
//                            structures (`albatross_lint --fpga-report`).
//
// Suppression: append `lint:allow(<rule>)` in a comment on the flagged
// line (self-documenting, reviewed in place), or add `<rule> <path
// substring>` to an allowlist file (tools/lint/allowlist.txt).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace albatross::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One `rule path-substring` allowlist entry; `rule` may be `*`.
struct AllowEntry {
  std::string rule;
  std::string path_substring;
};

/// Expected Tab. 4 stage cost for one NIC module class, in cycles of the
/// 500 MHz datapath clock. Modules without an entry are not
/// timing-checked (their latency is not a pipeline-stage constant).
struct FpgaTimingExpectation {
  std::string module;
  std::int64_t cycles = 0;
};

/// The Tab. 4 timing table the `fpga-timing-closure` rule checks
/// annotations against by default. `albatross_lint --fpga-report`
/// re-derives the same table from the compiled-in NicTimings (via
/// FpgaCycles) and fails if this mirror has drifted.
[[nodiscard]] const std::vector<FpgaTimingExpectation>&
default_timing_expectations();

/// Chip envelope for `fpga-budget-overflow`; defaults mirror FpgaSpec
/// (src/nic/resources.hpp): 912,800 LUTs / 265 Mbit of BRAM.
struct FpgaBudget {
  std::uint64_t luts = 912'800;
  std::uint64_t bram_bits = 265ull * 1000 * 1000;
};

struct Config {
  std::vector<AllowEntry> allow;
  /// Envelope the summed `// fpga:` annotations must fit.
  FpgaBudget fpga_budget;
  /// Expected per-module cycles (empty = timing-closure disabled).
  std::vector<FpgaTimingExpectation> fpga_timing =
      default_timing_expectations();
  /// Allowed relative drift between an annotation's bram_bits and the
  /// structural ledger before `fpga-stale-annotation` fires.
  double fpga_stale_tolerance = 0.10;
};

/// One parsed `// fpga: lut=<N>, bram_bits=<M>, cycles=<K>` annotation
/// attached to a class declaration.
struct FpgaAnnotation {
  std::string file;
  int class_line = 0;       ///< line of the `class X` declaration
  int annotation_line = 0;  ///< line carrying the `// fpga:` comment
  std::string module;       ///< class name
  std::uint64_t lut = 0;
  std::uint64_t bram_bits = 0;
  std::int64_t cycles = 0;
  /// Raw source line of the annotation, so cross-file checks (budget /
  /// stale) can honour inline `lint:allow(...)` markers.
  std::string raw_line;
};

/// Structural BRAM accounting for one module class, computed by
/// FpgaResourceModel::ledger() from the actual configured data
/// structures; input to `check_fpga_stale`.
struct FpgaStructural {
  std::string module;
  std::uint64_t bram_bits = 0;
};

/// True when `path` is inside the FPGA-module jurisdiction of the
/// `fpga-*` rules: a header under a `nic/` directory.
[[nodiscard]] bool fpga_scope(std::string_view path);

/// Parses every budget annotation attached to a class declaration in
/// this translation unit (any path; the rules apply scope themselves).
[[nodiscard]] std::vector<FpgaAnnotation> collect_fpga_annotations(
    std::string_view path, std::string_view text);

/// Reads a file and collects its annotations; unreadable files yield an
/// empty list.
[[nodiscard]] std::vector<FpgaAnnotation> collect_fpga_annotations_file(
    const std::string& path);

/// `fpga-budget-overflow`: the summed annotated LUT/BRAM across
/// `annotations` must fit `budget`. A violation is anchored at the
/// largest contributor of the overflowing resource.
[[nodiscard]] std::vector<Finding> check_fpga_budget(
    const std::vector<FpgaAnnotation>& annotations, const FpgaBudget& budget);

/// `fpga-timing-closure`: every annotation whose module has an entry in
/// `expectations` must match it exactly (both sides are cycle counts of
/// the same 500 MHz datapath clock).
[[nodiscard]] std::vector<Finding> check_fpga_timing(
    const std::vector<FpgaAnnotation>& annotations,
    const std::vector<FpgaTimingExpectation>& expectations);

/// `fpga-stale-annotation`: an annotation whose module has a structural
/// ledger figure must stay within `tolerance` relative drift of it.
[[nodiscard]] std::vector<Finding> check_fpga_stale(
    const std::vector<FpgaAnnotation>& annotations,
    const std::vector<FpgaStructural>& structural, double tolerance);

/// Shared suppression predicate: true when `finding` is silenced by an
/// inline `lint:allow(<rule>)` marker on its raw source line or by an
/// allowlist entry in `config`. Single source of truth for both the
/// per-file rule sink and the cross-file budget/stale checks.
[[nodiscard]] bool suppressed(const Finding& finding,
                              std::string_view raw_line,
                              const Config& config);

/// Renders findings as a deterministic JSON array (stable field order,
/// escaped strings, order as given). Shared by `--json` and
/// `--fpga-report`.
[[nodiscard]] std::string findings_to_json(
    const std::vector<Finding>& findings);

/// Parses an allowlist file: one `<rule> <path-substring>` pair per
/// line; `#` starts a comment; blank lines ignored.
[[nodiscard]] std::vector<AllowEntry> parse_allowlist(std::string_view text);

/// Lints one translation unit given its (repo-relative or absolute)
/// path and full source text. The path decides which path-scoped rules
/// apply; the text is scanned after comment/string stripping, except
/// that `lint:allow(...)` markers and `// fpga:` budget annotations are
/// honoured from the raw comments.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view text,
                                               const Config& config = {});

/// Reads and lints a file on disk. Unreadable files produce a single
/// `io-error` finding rather than a crash.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Config& config = {});

/// Names of all implemented rules, for `--list-rules` and the tests.
[[nodiscard]] const std::vector<std::string>& rule_names();

}  // namespace albatross::lint
