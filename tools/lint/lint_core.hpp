// albatross-lint: domain-aware static analysis for the Albatross tree.
//
// A deliberately small token/regex linter (no libclang dependency) that
// enforces the determinism and unit-discipline rules the simulation and
// the conformance harness depend on (docs/STATIC_ANALYSIS.md):
//
//   wall-clock            no real-time reads anywhere (system_clock,
//                         time(), gettimeofday, ...): virtual time only.
//   nondeterministic-rng  no rand()/std::random_device/mt19937 outside
//                         src/common/rng — fuzz replay needs one seeded
//                         PRNG.
//   unordered-iteration   no iteration over unordered_{map,set} in
//                         src/nic, src/gateway, src/sim, src/check,
//                         where hash-map order would leak into packet
//                         ordering or JSON/report output.
//   naked-time-literal    no raw power-of-1000 literals multiplied into
//                         time expressions outside common/types.hpp and
//                         common/units.hpp — use _us/_ms literals,
//                         kMicrosecond/kSecond, or the named converters.
//   scalar-hot-path       no one-at-a-time ring `.pop()` loops in
//                         src/nic or src/gateway — the hot path drains
//                         through pop_burst / process_burst
//                         (docs/BURST_API.md).
//   header-hygiene        headers carry #pragma once and never
//                         `using namespace` at file scope.
//
// Suppression: append `lint:allow(<rule>)` in a comment on the flagged
// line (self-documenting, reviewed in place), or add `<rule> <path
// substring>` to an allowlist file (tools/lint/allowlist.txt).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace albatross::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One `rule path-substring` allowlist entry; `rule` may be `*`.
struct AllowEntry {
  std::string rule;
  std::string path_substring;
};

struct Config {
  std::vector<AllowEntry> allow;
};

/// Parses an allowlist file: one `<rule> <path-substring>` pair per
/// line; `#` starts a comment; blank lines ignored.
[[nodiscard]] std::vector<AllowEntry> parse_allowlist(std::string_view text);

/// Lints one translation unit given its (repo-relative or absolute)
/// path and full source text. The path decides which path-scoped rules
/// apply; the text is scanned after comment/string stripping, except
/// that `lint:allow(...)` markers are honoured from the raw comments.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view text,
                                               const Config& config = {});

/// Reads and lints a file on disk. Unreadable files produce a single
/// `io-error` finding rather than a crash.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Config& config = {});

/// Names of all implemented rules, for `--list-rules` and the tests.
[[nodiscard]] const std::vector<std::string>& rule_names();

}  // namespace albatross::lint
