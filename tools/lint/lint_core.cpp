#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace albatross::lint {
namespace {

// ---------------------------------------------------------------------------
// Source preprocessing

/// Blanks out comments and string/character literals while preserving
/// line structure, so rule regexes never fire inside prose or data.
/// Handles //, /* */, "..." with escapes, '...' and basic raw strings.
std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          st = State::kRaw;
        } else if (c == '"') {
          st = State::kString;
        } else if (c == '\'' && i > 0 &&
                   !std::isdigit(static_cast<unsigned char>(src[i - 1]))) {
          // A ' after a digit is a C++14 digit separator, not a char
          // literal — leave numeric literals intact for the rules.
          st = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          st = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < src.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && src.substr(i, closer.size()) == closer) {
          for (std::size_t k = 0; k < closer.size(); ++k) out[i + k] = ' ';
          i += closer.size() - 1;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".hh");
}

// ---------------------------------------------------------------------------
// Rule machinery

struct RuleContext {
  std::string_view path;
  const std::vector<std::string>& code;      // stripped lines, 0-based
  const std::vector<std::string>& raw;       // original lines, 0-based
  const std::string& stripped;               // whole stripped text
};

class Sink {
 public:
  Sink(std::string_view path, const std::vector<std::string>& raw_lines,
       const Config& config, std::vector<Finding>& out)
      : path_(path), raw_(raw_lines), config_(config), out_(out) {}

  void report(int line_no, std::string rule, std::string message) {
    Finding f{std::string(path_), line_no, std::move(rule),
              std::move(message)};
    std::string_view raw_line;
    if (line_no >= 1 && line_no <= static_cast<int>(raw_.size())) {
      raw_line = raw_[static_cast<std::size_t>(line_no - 1)];
    }
    if (suppressed(f, raw_line, config_)) return;
    out_.push_back(std::move(f));
  }

 private:
  std::string_view path_;
  const std::vector<std::string>& raw_;
  const Config& config_;
  std::vector<Finding>& out_;
};

// --- wall-clock ------------------------------------------------------------

void rule_wall_clock(const RuleContext& ctx, Sink& sink) {
  static const std::regex re(
      R"(system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|\btime\s*\(|\blocaltime\b|\bgmtime\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      sink.report(static_cast<int>(i + 1), "wall-clock",
                  "real-time clock read; the simulation runs on virtual "
                  "NanoTime only");
    }
  }
}

// --- nondeterministic-rng --------------------------------------------------

void rule_rng(const RuleContext& ctx, Sink& sink) {
  // The one seeded PRNG lives in src/common/rng; everything else must
  // draw from it so ALBATROSS_TEST_SEED replays byte-identically.
  if (contains(ctx.path, "common/rng")) return;
  static const std::regex re(
      R"(std::random_device|\bmt19937(_64)?\b|\brand\s*\(|\bsrand\s*\(|\brandom_shuffle\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      sink.report(static_cast<int>(i + 1), "nondeterministic-rng",
                  "nondeterministic randomness; use the seeded "
                  "albatross::Rng (src/common/rng)");
    }
  }
}

// --- unordered-iteration ---------------------------------------------------

bool in_determinism_scope(std::string_view path) {
  return contains(path, "nic/") || contains(path, "gateway/") ||
         contains(path, "sim/") || contains(path, "check/") ||
         contains(path, "dpu/") || contains(path, "fleet/");
}

/// Collects identifiers declared with an unordered_{map,set} type in
/// this translation unit (declaration may span lines).
std::set<std::string> unordered_decl_names(const std::string& stripped) {
  std::set<std::string> names;
  // Whitespace-normalized copy so multi-line declarations match.
  std::string flat;
  flat.reserve(stripped.size());
  bool in_ws = false;
  for (const char c : stripped) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) flat += ' ';
      in_ws = true;
    } else {
      flat += c;
      in_ws = false;
    }
  }
  static const std::regex decl_re(
      R"(unordered_(?:map|set)\s*<[^;{}()]{0,400}?>\s+([A-Za-z_]\w*)\s*[;{=])");
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

std::string trailing_identifier(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && (std::isalnum(static_cast<unsigned char>(
                           expr[begin - 1])) ||
                       expr[begin - 1] == '_')) {
    --begin;
  }
  return std::string(expr.substr(begin, end - begin));
}

void rule_unordered_iteration(const RuleContext& ctx, Sink& sink) {
  if (!in_determinism_scope(ctx.path)) return;
  const auto decls = unordered_decl_names(ctx.stripped);
  static const std::regex range_for_re(R"(for\s*\(([^;)]*):([^)]*)\))");
  static const std::regex begin_re(R"(([A-Za-z_]\w*)\.begin\s*\(\s*\))");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const auto& line = ctx.code[i];
    std::smatch m;
    if (std::regex_search(line, m, range_for_re)) {
      const std::string range_expr = m[2].str();
      const std::string id = trailing_identifier(range_expr);
      if (contains(range_expr, "unordered_") ||
          (!id.empty() && decls.count(id) != 0)) {
        sink.report(static_cast<int>(i + 1), "unordered-iteration",
                    "iterating an unordered container here can leak "
                    "hash-map order into packet ordering or output; "
                    "sort keys first or use an ordered container");
        continue;
      }
    }
    if (contains(line, "for") &&
        std::regex_search(line, m, begin_re) && decls.count(m[1].str()) != 0) {
      sink.report(static_cast<int>(i + 1), "unordered-iteration",
                  "iterator loop over unordered container; hash-map "
                  "order must not reach packet ordering or output");
    }
  }
}

// --- naked-time-literal ----------------------------------------------------

void rule_naked_time_literal(const RuleContext& ctx, Sink& sink) {
  // common/types.hpp and common/units.hpp define the named constants and
  // converters and are the only files allowed to spell the factors.
  if (contains(ctx.path, "common/types.hpp") ||
      contains(ctx.path, "common/units.hpp")) {
    return;
  }
  // A raw power-of-1000 literal in a time construction/arithmetic
  // context. Two shapes: a kilo+ literal inside a Nanos/NanoTime
  // constructor, or */+- with a power-of-1000 on a line that touches a
  // time-typed expression.
  static const std::regex ctor_re(
      R"((NanoTime|Nanos)\s*\{[^}]*\d['0-9]*'000\b)");
  static const std::regex arith_re(
      R"([*/+\-]\s*1'000(?:'000)*\b|\b1'000(?:'000)*\s*[*/+\-]|[*+\-]\s*1e[369]\b)");
  static const std::regex time_ctx_re(
      R"(\b(NanoTime|Nanos)\b|_ns\b|\btimeout\w*\b|\bdeadline\w*\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const auto& line = ctx.code[i];
    if (std::regex_search(line, ctor_re) ||
        (std::regex_search(line, arith_re) &&
         std::regex_search(line, time_ctx_re))) {
      sink.report(static_cast<int>(i + 1), "naked-time-literal",
                  "raw power-of-1000 factor in a time expression; use "
                  "_us/_ms literals, kMicrosecond/kSecond, or a named "
                  "converter from common/units.hpp");
    }
  }
}

// --- scalar-hot-path -------------------------------------------------------

bool in_hot_path_scope(std::string_view path) {
  return contains(path, "nic/") || contains(path, "gateway/");
}

void rule_scalar_hot_path(const RuleContext& ctx, Sink& sink) {
  // One-at-a-time ring drains in the packet hot path: a `.pop()` inside
  // a loop in src/nic or src/gateway defeats the burst API (pop_burst /
  // process_burst, docs/BURST_API.md) that the throughput numbers come
  // from. Scalar pops OUTSIDE loops (cold hooks, protocol paths) are
  // fine — only the drain-loop shape is flagged.
  if (!in_hot_path_scope(ctx.path)) return;
  static const std::regex pop_re(R"(\.pop\s*\(\s*\))");
  static const std::regex loop_re(R"(\b(while|for)\s*\()");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], pop_re)) continue;
    // In-loop heuristic: the loop header is on this line (condition
    // pops) or within the preceding few lines (short drain bodies).
    const std::size_t lookback = i >= 3 ? i - 3 : 0;
    for (std::size_t j = lookback; j <= i; ++j) {
      if (std::regex_search(ctx.code[j], loop_re)) {
        sink.report(static_cast<int>(i + 1), "scalar-hot-path",
                    "one-at-a-time ring pop in a hot-path loop; drain "
                    "with pop_burst into a burst instead "
                    "(docs/BURST_API.md)");
        break;
      }
    }
  }
}

// --- header-hygiene --------------------------------------------------------

void rule_header_hygiene(const RuleContext& ctx, Sink& sink) {
  if (!is_header(ctx.path)) return;
  bool has_pragma = false;
  for (const auto& line : ctx.code) {
    if (contains(line, "#pragma once")) {
      has_pragma = true;
      break;
    }
  }
  if (!has_pragma) {
    sink.report(1, "header-hygiene", "header is missing #pragma once");
  }
  static const std::regex using_ns_re(R"(^\s*using\s+namespace\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], using_ns_re)) {
      sink.report(static_cast<int>(i + 1), "header-hygiene",
                  "`using namespace` in a header leaks into every "
                  "includer; qualify names instead");
    }
  }
}

// --- fpga-* resource-budget rules ------------------------------------------
//
// Grammar: `// fpga: lut=<N>, bram_bits=<M>, cycles=<K>` on the class
// declaration line or in the contiguous `//` comment block directly
// above it. Numbers may use C++14 digit separators. An annotation
// states the module's whole-NIC instantiated cost at the default report
// geometry (docs/STATIC_ANALYSIS.md, "Resource-budget rules"), so
// summing every annotation partitions the chip.

constexpr std::string_view kFpgaMarker = "fpga:";

const std::regex& fpga_anno_re() {
  static const std::regex re(
      R"(//\s*fpga:\s*lut\s*=\s*([0-9']+)\s*,\s*bram_bits\s*=\s*([0-9']+)\s*,\s*cycles\s*=\s*([0-9']+))");
  return re;
}

std::optional<std::uint64_t> parse_separated_u64(std::string_view digits) {
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c == '\'') continue;
    if (v > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Index of a non-forward class declaration on stripped line `i`, or
/// nullopt. Forward declarations reach `;` before `{`; template
/// parameter lists (`class T>`) are rejected by the lookahead.
std::optional<std::string> class_decl_name(
    const std::vector<std::string>& code, std::size_t i) {
  static const std::regex class_re(R"(^\s*class\s+([A-Za-z_]\w*))");
  std::smatch m;
  if (!std::regex_search(code[i], m, class_re)) return std::nullopt;
  // Scan from after the name for the first of '{' (definition) or
  // ';'/'>'/',' (forward declaration or template parameter).
  std::size_t col = static_cast<std::size_t>(m.position(1)) + m[1].length();
  for (std::size_t j = i; j < code.size() && j < i + 10; ++j) {
    for (std::size_t k = (j == i ? col : 0); k < code[j].size(); ++k) {
      const char c = code[j][k];
      if (c == '{') return m[1].str();
      if (c == ';' || c == '>' || c == ',') return std::nullopt;
    }
  }
  return std::nullopt;
}

struct AnnotationScan {
  std::vector<FpgaAnnotation> annotations;
  /// Class declarations without a parseable annotation:
  /// (line, class name, had a malformed `fpga:` marker nearby).
  struct Missing {
    int line = 0;
    std::string name;
    bool malformed = false;
  };
  std::vector<Missing> missing;
};

AnnotationScan scan_fpga_annotations(std::string_view path,
                                     const std::vector<std::string>& code,
                                     const std::vector<std::string>& raw) {
  AnnotationScan out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const auto name = class_decl_name(code, i);
    if (!name) continue;
    // The annotation lives on the declaration line itself or in the
    // contiguous run of `//` comment lines directly above it.
    bool malformed = false;
    std::optional<FpgaAnnotation> found;
    const auto try_line = [&](std::size_t line_idx) {
      const std::string& line = raw[line_idx];
      std::smatch am;
      if (std::regex_search(line, am, fpga_anno_re())) {
        const auto lut = parse_separated_u64(am[1].str());
        const auto bram = parse_separated_u64(am[2].str());
        const auto cyc = parse_separated_u64(am[3].str());
        if (lut && bram && cyc &&
            *cyc <= static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max())) {
          FpgaAnnotation a;
          a.file = std::string(path);
          a.class_line = static_cast<int>(i + 1);
          a.annotation_line = static_cast<int>(line_idx + 1);
          a.module = *name;
          a.lut = *lut;
          a.bram_bits = *bram;
          a.cycles = static_cast<std::int64_t>(*cyc);
          a.raw_line = line;
          found = std::move(a);
          return;
        }
      }
      if (contains(line, "//") && contains(line, kFpgaMarker)) {
        malformed = true;
      }
    };
    try_line(i);
    for (std::size_t j = i; !found && j > 0; --j) {
      const std::string& above = raw[j - 1];
      const auto first = above.find_first_not_of(" \t");
      if (first == std::string::npos ||
          above.compare(first, 2, "//") != 0) {
        break;  // end of the contiguous doc-comment block
      }
      try_line(j - 1);
    }
    if (found) {
      out.annotations.push_back(std::move(*found));
    } else {
      out.missing.push_back(AnnotationScan::Missing{
          static_cast<int>(i + 1), *name, malformed});
    }
  }
  return out;
}

std::string format_bits(std::uint64_t bits) {
  std::ostringstream os;
  os << bits;
  return os.str();
}

void rule_fpga(const RuleContext& ctx, Sink& sink, const Config& config) {
  if (!fpga_scope(ctx.path)) return;
  const auto scan = scan_fpga_annotations(ctx.path, ctx.code, ctx.raw);
  for (const auto& miss : scan.missing) {
    sink.report(miss.line, "fpga-missing-annotation",
                (miss.malformed
                     ? "malformed FPGA budget annotation on NIC module '" +
                           miss.name + "'; expected"
                     : "NIC module class '" + miss.name +
                           "' has no FPGA budget annotation; add") +
                    " `// fpga: lut=<N>, bram_bits=<M>, cycles=<K>` on the "
                    "class declaration (docs/STATIC_ANALYSIS.md)");
  }
  for (const auto& f :
       check_fpga_timing(scan.annotations, config.fpga_timing)) {
    sink.report(f.line, f.rule, f.message);
  }
  // Per-TU envelope check; the driver repeats it across every linted
  // nic/ header so cross-file growth is caught too.
  for (const auto& f :
       check_fpga_budget(scan.annotations, config.fpga_budget)) {
    sink.report(f.line, f.rule, f.message);
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool fpga_scope(std::string_view path) {
  return is_header(path) && contains(path, "nic/");
}

const std::vector<FpgaTimingExpectation>& default_timing_expectations() {
  // Mirror of Tab. 4 (NicTimings, src/nic/nic_pipeline.hpp) in 500 MHz
  // datapath-clock cycles; `albatross_lint --fpga-report` re-derives
  // this table from the compiled-in NicTimings and fails on drift.
  static const std::vector<FpgaTimingExpectation> kExpect = {
      {"BasicPipeline", 710},     // basic_rx 290 + basic_tx 420
      {"TenantRateLimiter", 50},  // overload_det_rx
      {"PlbEngine", 25},          // plb_rx (dispatch)
      {"ReorderQueue", 175},      // plb_tx (reorder)
      {"DmaChannel", 1585},       // max(dma_rx_base, dma_tx_base)
  };
  return kExpect;
}

std::vector<FpgaAnnotation> collect_fpga_annotations(std::string_view path,
                                                     std::string_view text) {
  const std::string stripped = strip_comments_and_strings(text);
  const auto code = split_lines(stripped);
  const auto raw = split_lines(text);
  return scan_fpga_annotations(path, code, raw).annotations;
}

std::vector<FpgaAnnotation> collect_fpga_annotations_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return collect_fpga_annotations(path, ss.str());
}

std::vector<Finding> check_fpga_budget(
    const std::vector<FpgaAnnotation>& annotations, const FpgaBudget& budget) {
  std::vector<Finding> findings;
  if (annotations.empty()) return findings;
  std::uint64_t lut_sum = 0;
  std::uint64_t bram_sum = 0;
  const FpgaAnnotation* max_lut = &annotations.front();
  const FpgaAnnotation* max_bram = &annotations.front();
  for (const auto& a : annotations) {
    lut_sum += a.lut;
    bram_sum += a.bram_bits;
    if (a.lut > max_lut->lut) max_lut = &a;
    if (a.bram_bits > max_bram->bram_bits) max_bram = &a;
  }
  if (lut_sum > budget.luts) {
    findings.push_back(Finding{
        max_lut->file, max_lut->annotation_line, "fpga-budget-overflow",
        "annotated LUT budgets sum to " + format_bits(lut_sum) +
            " across the NIC pipeline, exceeding the FpgaSpec envelope of " +
            format_bits(budget.luts) + " LUTs (largest contributor: " +
            max_lut->module + ")"});
  }
  if (bram_sum > budget.bram_bits) {
    findings.push_back(Finding{
        max_bram->file, max_bram->annotation_line, "fpga-budget-overflow",
        "annotated bram_bits sum to " + format_bits(bram_sum) +
            " across the NIC pipeline, exceeding the FpgaSpec envelope of " +
            format_bits(budget.bram_bits) +
            " BRAM bits (largest contributor: " + max_bram->module + ")"});
  }
  return findings;
}

std::vector<Finding> check_fpga_timing(
    const std::vector<FpgaAnnotation>& annotations,
    const std::vector<FpgaTimingExpectation>& expectations) {
  std::vector<Finding> findings;
  for (const auto& a : annotations) {
    for (const auto& e : expectations) {
      if (e.module != a.module) continue;
      if (a.cycles != e.cycles) {
        std::ostringstream msg;
        msg << "annotated cycles=" << a.cycles << " for module '" << a.module
            << "' disagrees with its NicTimings stage cost of " << e.cycles
            << " cycles at the 500 MHz datapath clock (Tab. 4)";
        findings.push_back(Finding{a.file, a.annotation_line,
                                   "fpga-timing-closure", msg.str()});
      }
      break;
    }
  }
  return findings;
}

std::vector<Finding> check_fpga_stale(
    const std::vector<FpgaAnnotation>& annotations,
    const std::vector<FpgaStructural>& structural, double tolerance) {
  std::vector<Finding> findings;
  for (const auto& a : annotations) {
    for (const auto& s : structural) {
      if (s.module != a.module || s.bram_bits == 0) continue;
      const double drift =
          std::abs(static_cast<double>(a.bram_bits) -
                   static_cast<double>(s.bram_bits)) /
          static_cast<double>(s.bram_bits);
      if (drift > tolerance) {
        std::ostringstream msg;
        msg.setf(std::ios::fixed);
        msg.precision(1);
        msg << "annotated bram_bits=" << a.bram_bits << " for module '"
            << a.module << "' drifts " << drift * 100.0
            << "% from the structural ledger accounting of " << s.bram_bits
            << " bits (FpgaResourceModel::ledger(), default report "
               "geometry); re-derive the annotation";
        findings.push_back(Finding{a.file, a.annotation_line,
                                   "fpga-stale-annotation", msg.str()});
      }
      break;
    }
  }
  return findings;
}

bool suppressed(const Finding& finding, std::string_view raw_line,
                const Config& config) {
  if (contains(raw_line, "lint:allow(" + finding.rule + ")")) return true;
  for (const auto& a : config.allow) {
    if ((a.rule == "*" || a.rule == finding.rule) &&
        contains(finding.file, a.path_substring)) {
      return true;
    }
  }
  return false;
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    append_json_escaped(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    append_json_escaped(out, f.rule);
    out += "\", \"message\": \"";
    append_json_escaped(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]" : "\n  ]";
  return out;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "wall-clock",         "nondeterministic-rng",
      "unordered-iteration", "naked-time-literal",
      "scalar-hot-path",    "header-hygiene",
      "fpga-missing-annotation", "fpga-budget-overflow",
      "fpga-timing-closure", "fpga-stale-annotation",
  };
  return kNames;
}

std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  for (const auto& line : split_lines(text)) {
    const auto hash = line.find('#');
    std::string body = line.substr(0, hash);
    std::istringstream is(body);
    AllowEntry e;
    if (is >> e.rule >> e.path_substring) entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Config& config) {
  const std::string stripped = strip_comments_and_strings(text);
  const auto code = split_lines(stripped);
  const auto raw = split_lines(text);
  std::vector<Finding> findings;
  Sink sink(path, raw, config, findings);
  const RuleContext ctx{path, code, raw, stripped};
  rule_wall_clock(ctx, sink);
  rule_rng(ctx, sink);
  rule_unordered_iteration(ctx, sink);
  rule_naked_time_literal(ctx, sink);
  rule_scalar_hot_path(ctx, sink);
  rule_header_hygiene(ctx, sink);
  rule_fpga(ctx, sink, config);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Config& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), config);
}

}  // namespace albatross::lint
