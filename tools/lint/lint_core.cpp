#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace albatross::lint {
namespace {

// ---------------------------------------------------------------------------
// Source preprocessing

/// Blanks out comments and string/character literals while preserving
/// line structure, so rule regexes never fire inside prose or data.
/// Handles //, /* */, "..." with escapes, '...' and basic raw strings.
std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          st = State::kRaw;
        } else if (c == '"') {
          st = State::kString;
        } else if (c == '\'' && i > 0 &&
                   !std::isdigit(static_cast<unsigned char>(src[i - 1]))) {
          // A ' after a digit is a C++14 digit separator, not a char
          // literal — leave numeric literals intact for the rules.
          st = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          st = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < src.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && src.substr(i, closer.size()) == closer) {
          for (std::size_t k = 0; k < closer.size(); ++k) out[i + k] = ' ';
          i += closer.size() - 1;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".hh");
}

// ---------------------------------------------------------------------------
// Rule machinery

struct RuleContext {
  std::string_view path;
  const std::vector<std::string>& code;      // stripped lines, 0-based
  const std::vector<std::string>& raw;       // original lines, 0-based
  const std::string& stripped;               // whole stripped text
};

class Sink {
 public:
  Sink(std::string_view path, const std::vector<std::string>& raw_lines,
       const Config& config, std::vector<Finding>& out)
      : path_(path), raw_(raw_lines), config_(config), out_(out) {}

  void report(int line_no, std::string rule, std::string message) {
    // Inline suppression: lint:allow(rule) anywhere on the raw line.
    if (line_no >= 1 && line_no <= static_cast<int>(raw_.size())) {
      const auto& raw_line = raw_[static_cast<std::size_t>(line_no - 1)];
      if (contains(raw_line, "lint:allow(" + rule + ")")) return;
    }
    for (const auto& a : config_.allow) {
      if ((a.rule == "*" || a.rule == rule) &&
          contains(path_, a.path_substring)) {
        return;
      }
    }
    out_.push_back(Finding{std::string(path_), line_no, std::move(rule),
                           std::move(message)});
  }

 private:
  std::string_view path_;
  const std::vector<std::string>& raw_;
  const Config& config_;
  std::vector<Finding>& out_;
};

// --- wall-clock ------------------------------------------------------------

void rule_wall_clock(const RuleContext& ctx, Sink& sink) {
  static const std::regex re(
      R"(system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|\btime\s*\(|\blocaltime\b|\bgmtime\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      sink.report(static_cast<int>(i + 1), "wall-clock",
                  "real-time clock read; the simulation runs on virtual "
                  "NanoTime only");
    }
  }
}

// --- nondeterministic-rng --------------------------------------------------

void rule_rng(const RuleContext& ctx, Sink& sink) {
  // The one seeded PRNG lives in src/common/rng; everything else must
  // draw from it so ALBATROSS_TEST_SEED replays byte-identically.
  if (contains(ctx.path, "common/rng")) return;
  static const std::regex re(
      R"(std::random_device|\bmt19937(_64)?\b|\brand\s*\(|\bsrand\s*\(|\brandom_shuffle\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      sink.report(static_cast<int>(i + 1), "nondeterministic-rng",
                  "nondeterministic randomness; use the seeded "
                  "albatross::Rng (src/common/rng)");
    }
  }
}

// --- unordered-iteration ---------------------------------------------------

bool in_determinism_scope(std::string_view path) {
  return contains(path, "nic/") || contains(path, "gateway/") ||
         contains(path, "sim/") || contains(path, "check/");
}

/// Collects identifiers declared with an unordered_{map,set} type in
/// this translation unit (declaration may span lines).
std::set<std::string> unordered_decl_names(const std::string& stripped) {
  std::set<std::string> names;
  // Whitespace-normalized copy so multi-line declarations match.
  std::string flat;
  flat.reserve(stripped.size());
  bool in_ws = false;
  for (const char c : stripped) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) flat += ' ';
      in_ws = true;
    } else {
      flat += c;
      in_ws = false;
    }
  }
  static const std::regex decl_re(
      R"(unordered_(?:map|set)\s*<[^;{}()]{0,400}?>\s+([A-Za-z_]\w*)\s*[;{=])");
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

std::string trailing_identifier(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && (std::isalnum(static_cast<unsigned char>(
                           expr[begin - 1])) ||
                       expr[begin - 1] == '_')) {
    --begin;
  }
  return std::string(expr.substr(begin, end - begin));
}

void rule_unordered_iteration(const RuleContext& ctx, Sink& sink) {
  if (!in_determinism_scope(ctx.path)) return;
  const auto decls = unordered_decl_names(ctx.stripped);
  static const std::regex range_for_re(R"(for\s*\(([^;)]*):([^)]*)\))");
  static const std::regex begin_re(R"(([A-Za-z_]\w*)\.begin\s*\(\s*\))");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const auto& line = ctx.code[i];
    std::smatch m;
    if (std::regex_search(line, m, range_for_re)) {
      const std::string range_expr = m[2].str();
      const std::string id = trailing_identifier(range_expr);
      if (contains(range_expr, "unordered_") ||
          (!id.empty() && decls.count(id) != 0)) {
        sink.report(static_cast<int>(i + 1), "unordered-iteration",
                    "iterating an unordered container here can leak "
                    "hash-map order into packet ordering or output; "
                    "sort keys first or use an ordered container");
        continue;
      }
    }
    if (contains(line, "for") &&
        std::regex_search(line, m, begin_re) && decls.count(m[1].str()) != 0) {
      sink.report(static_cast<int>(i + 1), "unordered-iteration",
                  "iterator loop over unordered container; hash-map "
                  "order must not reach packet ordering or output");
    }
  }
}

// --- naked-time-literal ----------------------------------------------------

void rule_naked_time_literal(const RuleContext& ctx, Sink& sink) {
  // common/types.hpp and common/units.hpp define the named constants and
  // converters and are the only files allowed to spell the factors.
  if (contains(ctx.path, "common/types.hpp") ||
      contains(ctx.path, "common/units.hpp")) {
    return;
  }
  // A raw power-of-1000 literal in a time construction/arithmetic
  // context. Two shapes: a kilo+ literal inside a Nanos/NanoTime
  // constructor, or */+- with a power-of-1000 on a line that touches a
  // time-typed expression.
  static const std::regex ctor_re(
      R"((NanoTime|Nanos)\s*\{[^}]*\d['0-9]*'000\b)");
  static const std::regex arith_re(
      R"([*/+\-]\s*1'000(?:'000)*\b|\b1'000(?:'000)*\s*[*/+\-]|[*+\-]\s*1e[369]\b)");
  static const std::regex time_ctx_re(
      R"(\b(NanoTime|Nanos)\b|_ns\b|\btimeout\w*\b|\bdeadline\w*\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const auto& line = ctx.code[i];
    if (std::regex_search(line, ctor_re) ||
        (std::regex_search(line, arith_re) &&
         std::regex_search(line, time_ctx_re))) {
      sink.report(static_cast<int>(i + 1), "naked-time-literal",
                  "raw power-of-1000 factor in a time expression; use "
                  "_us/_ms literals, kMicrosecond/kSecond, or a named "
                  "converter from common/units.hpp");
    }
  }
}

// --- scalar-hot-path -------------------------------------------------------

bool in_hot_path_scope(std::string_view path) {
  return contains(path, "nic/") || contains(path, "gateway/");
}

void rule_scalar_hot_path(const RuleContext& ctx, Sink& sink) {
  // One-at-a-time ring drains in the packet hot path: a `.pop()` inside
  // a loop in src/nic or src/gateway defeats the burst API (pop_burst /
  // process_burst, docs/BURST_API.md) that the throughput numbers come
  // from. Scalar pops OUTSIDE loops (cold hooks, protocol paths) are
  // fine — only the drain-loop shape is flagged.
  if (!in_hot_path_scope(ctx.path)) return;
  static const std::regex pop_re(R"(\.pop\s*\(\s*\))");
  static const std::regex loop_re(R"(\b(while|for)\s*\()");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], pop_re)) continue;
    // In-loop heuristic: the loop header is on this line (condition
    // pops) or within the preceding few lines (short drain bodies).
    const std::size_t lookback = i >= 3 ? i - 3 : 0;
    for (std::size_t j = lookback; j <= i; ++j) {
      if (std::regex_search(ctx.code[j], loop_re)) {
        sink.report(static_cast<int>(i + 1), "scalar-hot-path",
                    "one-at-a-time ring pop in a hot-path loop; drain "
                    "with pop_burst into a burst instead "
                    "(docs/BURST_API.md)");
        break;
      }
    }
  }
}

// --- header-hygiene --------------------------------------------------------

void rule_header_hygiene(const RuleContext& ctx, Sink& sink) {
  if (!is_header(ctx.path)) return;
  bool has_pragma = false;
  for (const auto& line : ctx.code) {
    if (contains(line, "#pragma once")) {
      has_pragma = true;
      break;
    }
  }
  if (!has_pragma) {
    sink.report(1, "header-hygiene", "header is missing #pragma once");
  }
  static const std::regex using_ns_re(R"(^\s*using\s+namespace\b)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], using_ns_re)) {
      sink.report(static_cast<int>(i + 1), "header-hygiene",
                  "`using namespace` in a header leaks into every "
                  "includer; qualify names instead");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "wall-clock",         "nondeterministic-rng", "unordered-iteration",
      "naked-time-literal", "scalar-hot-path",      "header-hygiene",
  };
  return kNames;
}

std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  for (const auto& line : split_lines(text)) {
    const auto hash = line.find('#');
    std::string body = line.substr(0, hash);
    std::istringstream is(body);
    AllowEntry e;
    if (is >> e.rule >> e.path_substring) entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Config& config) {
  const std::string stripped = strip_comments_and_strings(text);
  const auto code = split_lines(stripped);
  const auto raw = split_lines(text);
  std::vector<Finding> findings;
  Sink sink(path, raw, config, findings);
  const RuleContext ctx{path, code, raw, stripped};
  rule_wall_clock(ctx, sink);
  rule_rng(ctx, sink);
  rule_unordered_iteration(ctx, sink);
  rule_naked_time_literal(ctx, sink);
  rule_scalar_hot_path(ctx, sink);
  rule_header_hygiene(ctx, sink);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Config& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), config);
}

}  // namespace albatross::lint
