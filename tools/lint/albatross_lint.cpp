// albatross-lint driver: walks the given files/directories, applies the
// domain rules in lint_core, prints gcc-style `file:line: [rule] msg`
// diagnostics, and exits non-zero when anything fires. Run as the
// `lint_src` ctest and the `lint` CI job (docs/STATIC_ANALYSIS.md).
//
//   albatross_lint [--allowlist FILE] [--json] [--list-rules] PATH...
//   albatross_lint --fpga-report [--allowlist FILE] PATH...
//
// `--json` emits the findings as a deterministic JSON object (sorted by
// file/line/rule) for CI annotation. `--fpga-report` links against the
// NIC library itself: it builds the Tab. 5 resource ledger for the
// default report geometry, re-derives the Tab. 4 timing table from the
// compiled-in NicTimings via FpgaCycles, checks every `// fpga:` budget
// annotation for envelope overflow / timing drift / staleness against
// the structural accounting, and emits one deterministic JSON report
// for CI to diff and gate on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "lint_core.hpp"
#include "nic/nic_pipeline.hpp"
#include "nic/resources.hpp"
#include "nic/session_offload.hpp"

namespace fs = std::filesystem;
using albatross::lint::Config;
using albatross::lint::Finding;
using albatross::lint::FpgaAnnotation;

namespace {

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && lintable(e.path())) {
        files.push_back(e.path().generic_string());
      }
    }
  } else {
    files.push_back(root.generic_string());
  }
}

int usage() {
  std::cerr << "usage: albatross_lint [--allowlist FILE] [--json] "
               "[--fpga-report] [--list-rules] PATH...\n";
  return 2;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

/// Annotations across every linted nic/ header, for the cross-file
/// envelope pass and the --fpga-report mode.
std::vector<FpgaAnnotation> collect_annotations(
    const std::vector<std::string>& files) {
  std::vector<FpgaAnnotation> annotations;
  for (const auto& f : files) {
    if (!albatross::lint::fpga_scope(f)) continue;
    auto a = albatross::lint::collect_fpga_annotations_file(f);
    annotations.insert(annotations.end(),
                       std::make_move_iterator(a.begin()),
                       std::make_move_iterator(a.end()));
  }
  std::sort(annotations.begin(), annotations.end(),
            [](const FpgaAnnotation& a, const FpgaAnnotation& b) {
              return std::tie(a.module, a.file, a.annotation_line) <
                     std::tie(b.module, b.file, b.annotation_line);
            });
  return annotations;
}

/// Applies inline/allowlist suppression to findings produced by the
/// cross-file checks, whose anchors are annotation lines.
void suppress_aggregate(std::vector<Finding>& findings,
                        const std::vector<FpgaAnnotation>& annotations,
                        const Config& config) {
  const auto raw_line_of = [&](const Finding& f) -> std::string_view {
    for (const auto& a : annotations) {
      if (a.file == f.file && a.annotation_line == f.line) return a.raw_line;
    }
    return {};
  };
  std::erase_if(findings, [&](const Finding& f) {
    return albatross::lint::suppressed(f, raw_line_of(f), config);
  });
}

std::string json_fraction(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// The fixed geometry --fpga-report evaluates the ledger at: the
/// production-like NIC of bench_tab5_nic_resources (4 pods x 4 reorder
/// queues, default GOP tables, 2 MiB payload buffer, default 64K
/// session table). Annotations state whole-NIC costs at this geometry.
struct ReportLedger {
  std::vector<albatross::ModuleUsage> rows;
  std::vector<albatross::lint::FpgaStructural> structural;
  albatross::FpgaSpec spec;
};

ReportLedger build_report_ledger() {
  using namespace albatross;
  PlbEngineConfig plb;  // defaults: 4 reorder queues, 4K entries
  std::vector<std::unique_ptr<PlbEngine>> engines;
  std::vector<const PlbEngine*> engine_ptrs;
  for (int i = 0; i < 4; ++i) {
    engines.push_back(std::make_unique<PlbEngine>(plb));
    engine_ptrs.push_back(engines.back().get());
  }
  TenantRateLimiter limiter;
  SessionOffload sessions;
  FpgaResourceModel model;
  ReportLedger out;
  out.spec = model.spec();
  out.rows = model.ledger(engine_ptrs, limiter, 2ull << 20);
  // Ledger row -> module class carrying the structure's annotation.
  const auto structural_of = [&](const std::string& row) -> std::uint64_t {
    for (const auto& r : out.rows) {
      if (r.name == row) return r.bram_bits_structural;
    }
    return 0;
  };
  out.structural = {
      {"PayloadBuffer", structural_of("Basic Pipeline")},
      {"TenantRateLimiter", structural_of("Overload Det.")},
      {"ReorderQueue", structural_of("PLB")},
      {"SessionOffload", static_cast<std::uint64_t>(sessions.bram_bytes()) * 8},
  };
  return out;
}

/// Tab. 4 timing table derived from the compiled-in NicTimings, the
/// authoritative source the lint_core mirror must agree with.
std::vector<albatross::lint::FpgaTimingExpectation> derive_timings(
    const albatross::NicTimings& t) {
  using albatross::FpgaCycles;
  const FpgaCycles dma = std::max(t.dma_rx_base, t.dma_tx_base);
  return {
      {"BasicPipeline", (t.basic_rx + t.basic_tx).count()},
      {"TenantRateLimiter", t.overload_det_rx.count()},
      {"PlbEngine", t.plb_rx.count()},
      {"ReorderQueue", t.plb_tx.count()},
      {"DmaChannel", dma.count()},
  };
}

int run_fpga_report(const std::vector<std::string>& files,
                    const Config& config) {
  using namespace albatross;
  const auto annotations = collect_annotations(files);
  const ReportLedger ledger = build_report_ledger();
  const NicTimings timings;
  const auto expectations = derive_timings(timings);

  std::vector<Finding> findings;
  // The lint_core mirror of Tab. 4 must match the compiled-in
  // NicTimings, or offline lint runs would check stale expectations.
  for (const auto& e : expectations) {
    for (const auto& d : albatross::lint::default_timing_expectations()) {
      if (d.module != e.module) continue;
      if (d.cycles != e.cycles) {
        findings.push_back(Finding{
            "tools/lint/lint_core.cpp", 0, "fpga-timing-closure",
            "default_timing_expectations() lists " +
                std::to_string(d.cycles) + " cycles for '" + e.module +
                "' but NicTimings derives " + std::to_string(e.cycles) +
                "; update the mirror"});
      }
      break;
    }
  }
  const auto timing =
      albatross::lint::check_fpga_timing(annotations, expectations);
  findings.insert(findings.end(), timing.begin(), timing.end());
  const auto budget = albatross::lint::check_fpga_budget(
      annotations,
      albatross::lint::FpgaBudget{ledger.spec.luts, ledger.spec.bram_bits});
  findings.insert(findings.end(), budget.begin(), budget.end());
  const auto stale = albatross::lint::check_fpga_stale(
      annotations, ledger.structural, config.fpga_stale_tolerance);
  findings.insert(findings.end(), stale.begin(), stale.end());
  suppress_aggregate(findings, annotations, config);
  sort_findings(findings);

  std::uint64_t lut_sum = 0;
  std::uint64_t bram_sum = 0;
  for (const auto& a : annotations) {
    lut_sum += a.lut;
    bram_sum += a.bram_bits;
  }

  std::string out = "{\n";
  out += "  \"spec\": {\"luts\": " + std::to_string(ledger.spec.luts) +
         ", \"bram_bits\": " + std::to_string(ledger.spec.bram_bits) + "},\n";
  out += "  \"datapath_clock_mhz\": " +
         std::to_string(timings.datapath_clock_mhz) + ",\n";
  out += "  \"modules\": [";
  for (std::size_t i = 0; i < annotations.size(); ++i) {
    const auto& a = annotations[i];
    std::uint64_t structural = 0;
    bool has_structural = false;
    for (const auto& s : ledger.structural) {
      if (s.module == a.module) {
        structural = s.bram_bits;
        has_structural = true;
        break;
      }
    }
    const Nanos latency =
        timings.ns(FpgaCycles{a.cycles});
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"module\": \"" + a.module + "\", \"file\": \"" + a.file +
           "\", \"line\": " + std::to_string(a.class_line) +
           ", \"lut\": " + std::to_string(a.lut) +
           ", \"bram_bits\": " + std::to_string(a.bram_bits) +
           ", \"cycles\": " + std::to_string(a.cycles) +
           ", \"latency_ns\": " + std::to_string(latency.count()) +
           ", \"structural_bram_bits\": " +
           (has_structural ? std::to_string(structural) : "null") + "}";
  }
  out += annotations.empty() ? "],\n" : "\n  ],\n";
  out += "  \"ledger\": [";
  for (std::size_t i = 0; i < ledger.rows.size(); ++i) {
    const auto& r = ledger.rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"module\": \"" + r.name + "\", \"lut_fraction\": " +
           json_fraction(r.lut_fraction) + ", \"bram_fraction\": " +
           json_fraction(r.bram_fraction) + ", \"bram_bits_structural\": " +
           std::to_string(r.bram_bits_structural) + "}";
  }
  out += "\n  ],\n";
  out += "  \"totals\": {\"lut\": " + std::to_string(lut_sum) +
         ", \"bram_bits\": " + std::to_string(bram_sum) +
         ", \"lut_fraction\": " +
         json_fraction(static_cast<double>(lut_sum) /
                       static_cast<double>(ledger.spec.luts)) +
         ", \"bram_fraction\": " +
         json_fraction(static_cast<double>(bram_sum) /
                       static_cast<double>(ledger.spec.bram_bits)) +
         "},\n";
  out += "  \"findings\": " + albatross::lint::findings_to_json(findings) +
         "\n}\n";
  std::cout << out;
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  std::vector<std::string> roots;
  std::vector<albatross::lint::AllowEntry> allow_entries;
  bool json = false;
  bool fpga_report = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : albatross::lint::rule_names()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--fpga-report") {
      fpga_report = true;
      continue;
    }
    if (arg == "--allowlist") {
      if (++i >= argc) return usage();
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "albatross_lint: cannot read allowlist " << argv[i]
                  << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const auto entries = albatross::lint::parse_allowlist(ss.str());
      allow_entries.insert(allow_entries.end(), entries.begin(),
                           entries.end());
      config.allow.insert(config.allow.end(), entries.begin(), entries.end());
      continue;
    }
    if (arg.starts_with("--")) return usage();
    roots.push_back(arg);
  }
  if (roots.empty()) return usage();

  std::vector<std::string> files;
  for (const auto& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "albatross_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, files);
  }
  // Directory iteration order is unspecified; sort so text, JSON and
  // report output are deterministic across filesystems.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Allowlist hygiene: an entry whose path substring matches no linted
  // file is stale and should be pruned (satisfies nothing, hides typos).
  for (const auto& e : allow_entries) {
    const bool matches_any =
        std::any_of(files.begin(), files.end(), [&](const std::string& f) {
          return f.find(e.path_substring) != std::string::npos;
        });
    if (!matches_any) {
      std::cerr << "albatross_lint: warning: allowlist entry `" << e.rule
                << " " << e.path_substring
                << "` matches no linted file; prune it\n";
    }
  }

  if (fpga_report) return run_fpga_report(files, config);

  std::vector<Finding> findings;
  for (const auto& f : files) {
    auto file_findings = albatross::lint::lint_file(f, config);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  // Cross-file envelope pass: per-TU linting catches a single header
  // blowing the budget; this catches the pipeline creeping past the
  // envelope one module at a time.
  const auto annotations = collect_annotations(files);
  auto aggregate =
      albatross::lint::check_fpga_budget(annotations, config.fpga_budget);
  suppress_aggregate(aggregate, annotations, config);
  for (auto& f : aggregate) {
    const bool duplicate =
        std::any_of(findings.begin(), findings.end(), [&](const Finding& g) {
          return g.file == f.file && g.line == f.line && g.rule == f.rule;
        });
    if (!duplicate) findings.push_back(std::move(f));
  }
  sort_findings(findings);

  if (json) {
    std::cout << "{\n  \"files\": " << files.size()
              << ",\n  \"total\": " << findings.size()
              << ",\n  \"findings\": "
              << albatross::lint::findings_to_json(findings) << "\n}\n";
    return findings.empty() ? 0 : 1;
  }

  for (const Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": ["
              << finding.rule << "] " << finding.message << "\n";
  }
  std::cout << "albatross_lint: " << files.size() << " files, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
