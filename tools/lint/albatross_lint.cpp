// albatross-lint driver: walks the given files/directories, applies the
// domain rules in lint_core, prints gcc-style `file:line: [rule] msg`
// diagnostics, and exits non-zero when anything fires. Run as the
// `lint_src` ctest and the `lint` CI job (docs/STATIC_ANALYSIS.md).
//
//   albatross_lint [--allowlist FILE] [--list-rules] PATH...
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;
using albatross::lint::Config;
using albatross::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && lintable(e.path())) {
        files.push_back(e.path().generic_string());
      }
    }
  } else {
    files.push_back(root.generic_string());
  }
}

int usage() {
  std::cerr << "usage: albatross_lint [--allowlist FILE] [--list-rules] "
               "PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : albatross::lint::rule_names()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--allowlist") {
      if (++i >= argc) return usage();
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "albatross_lint: cannot read allowlist " << argv[i]
                  << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const auto entries = albatross::lint::parse_allowlist(ss.str());
      config.allow.insert(config.allow.end(), entries.begin(), entries.end());
      continue;
    }
    if (arg.starts_with("--")) return usage();
    roots.push_back(arg);
  }
  if (roots.empty()) return usage();

  std::vector<std::string> files;
  for (const auto& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "albatross_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, files);
  }

  std::size_t total = 0;
  for (const auto& f : files) {
    for (const Finding& finding : albatross::lint::lint_file(f, config)) {
      std::cout << finding.file << ":" << finding.line << ": ["
                << finding.rule << "] " << finding.message << "\n";
      ++total;
    }
  }
  std::cout << "albatross_lint: " << files.size() << " files, " << total
            << " finding(s)\n";
  return total == 0 ? 0 : 1;
}
