// Fixture: reads the real-time clock. Must trip `wall-clock`.
// Never compiled — lint fodder for lint_fixtures_bad / test_lint.
#include <chrono>
#include <ctime>

long stamp_events() {
  const auto wall = std::chrono::system_clock::now();
  const auto epoch = time(nullptr);
  (void)wall;
  return static_cast<long>(epoch);
}
