// Fixture: unseeded / ambient randomness. Must trip
// `nondeterministic-rng` (three sites). Never compiled.
#include <cstdlib>
#include <random>

int pick_backend(int n) {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen() % static_cast<unsigned>(n)) + rand() % 2;
}
