// Fixture: NIC module class with no `// fpga:` budget annotation.
#pragma once

namespace fixture {

class UnbudgetedStage {
 public:
  int process() { return 0; }
};

}  // namespace fixture
