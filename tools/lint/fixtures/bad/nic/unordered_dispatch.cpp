// Fixture: a dispatch loop iterating an unordered_map, under a path
// containing `nic/` so the determinism scope applies. Must trip
// `unordered-iteration`. Never compiled.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Flow {
  std::uint32_t psn;
};

class Dispatcher {
 public:
  std::vector<std::uint32_t> flush() {
    std::vector<std::uint32_t> order;
    for (const auto& [key, flow] : flows_) {
      order.push_back(flow.psn);  // hash order reaches the wire
    }
    return order;
  }

 private:
  std::unordered_map<std::uint64_t, Flow> flows_;
};
