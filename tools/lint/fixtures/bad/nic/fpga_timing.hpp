// Fixture: ReorderQueue has a Tab. 4 stage cost of 175 cycles; an
// annotation claiming otherwise must trip fpga-timing-closure.
#pragma once

namespace fixture {

// fpga: lut=1'000, bram_bits=2'048, cycles=9999
class ReorderQueue {
 public:
  int release() { return 0; }
};

}  // namespace fixture
