// Fixture: one-at-a-time ring drain in the NIC hot path, under a path
// containing `nic/` so the burst-discipline scope applies. Must trip
// `scalar-hot-path` twice: once for the condition-pop shape, once for
// the body-pop shape. Never compiled.
#include <memory>

struct Pkt {};
using PktPtr = std::unique_ptr<Pkt>;

struct Ring {
  PktPtr pop();
  bool empty() const;
};

void drain_condition_style(Ring& ring) {
  PktPtr pkt;
  while ((pkt = ring.pop()) != nullptr) {
    pkt.reset();
  }
}

void drain_body_style(Ring& ring) {
  while (!ring.empty()) {
    auto pkt = ring.pop();
    pkt.reset();
  }
}
