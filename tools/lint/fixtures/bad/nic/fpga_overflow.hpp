// Fixture: annotated bram_bits alone exceed the 265 Mbit FpgaSpec
// envelope, so fpga-budget-overflow must fire.
#pragma once

namespace fixture {

// fpga: lut=5'000, bram_bits=400'000'000, cycles=8
class OversizedTable {
 public:
  int lookup() { return 0; }
};

}  // namespace fixture
