// Fixture: header without #pragma once and with a file-scope
// `using namespace`. Must trip `header-hygiene` twice. Never compiled.
#include <string>

using namespace std;

inline string greet() { return "hello"; }
