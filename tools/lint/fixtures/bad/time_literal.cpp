// Fixture: raw power-of-1000 factors in time math instead of the
// named units from common/units.hpp. Must trip `naked-time-literal`.
// Never compiled.
#include <cstdint>

using NanoTime = std::int64_t;  // the pre-migration shape of the bug

NanoTime deadline_for(NanoTime now_ns, std::int64_t budget_ms) {
  const NanoTime slack = NanoTime{5'000'000};
  return now_ns + budget_ms * 1'000'000 + slack;
}
