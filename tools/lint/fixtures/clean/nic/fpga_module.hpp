// Fixture: correctly annotated NIC module — budget fits the envelope
// and the cycles match PlbEngine's Tab. 4 dispatch cost.
#pragma once

namespace fixture {

// fpga: lut=15'012, bram_bits=4'096, cycles=25
class PlbEngine {
 public:
  int dispatch() { return 0; }
};

}  // namespace fixture
