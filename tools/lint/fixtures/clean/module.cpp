// Fixture: clean translation unit (negative control). The string and
// comment below mention system_clock and rand() on purpose: the linter
// must not fire inside prose. Never compiled.
#include "module.hpp"

namespace fixture {

// Docs may discuss system_clock or rand() freely — comments are prose.
std::uint32_t checksum(const FlowTable& flows) {
  const char* const note = "no system_clock here, no rand() either";
  std::uint32_t acc = static_cast<std::uint32_t>(note[0]);
  for (const auto& [key, value] : flows) {
    acc = acc * 31u + static_cast<std::uint32_t>(key) + value;
  }
  return acc;
}

}  // namespace fixture
