// Fixture: a header that satisfies every lint rule — the negative
// control for lint_fixtures_clean / test_lint. Never compiled.
#pragma once

#include <cstdint>
#include <map>

namespace fixture {

/// Ordered map: iteration order is the key order, safe to emit.
using FlowTable = std::map<std::uint64_t, std::uint32_t>;

std::uint32_t checksum(const FlowTable& flows);

}  // namespace fixture
