// albatross_sim — command-line experiment runner. Stands up one
// simulated Albatross GW pod, drives a configurable workload, and
// prints an operator-style report plus (optionally) the full metrics
// exposition. The CLI exists so experiments beyond the canned benches
// are one shell line, not a new C++ file.
//
//   albatross_sim [--service vpc|internet|idc|cloud] [--cores N]
//                 [--mode plb|rss] [--rate-mpps R] [--flows N]
//                 [--duration-ms T] [--hitter-mpps R] [--drop-flag 0|1]
//                 [--offload] [--metrics]
//   albatross_sim --config experiment.json    (see core/config.hpp schema)
//   albatross_sim chaos --plan chaos.json [--metrics]
//                 (see chaos/experiment.hpp schema; replays a fault plan
//                  against a gateway fleet and prints the incident
//                  timeline — same plan + seed => identical output)
//   albatross_sim fuzz [--seed N] [--seeds K] [--ticks T]
//                 [--chaos none|benign|stall] [--dump file.json]
//                 (randomized conformance fuzzing, docs/CONFORMANCE.md;
//                  a violating trace is shrunk and dumped, exit 1)
//   albatross_sim fuzz --replay file.json
//                 (re-runs a dumped trace deterministically)
//   albatross_sim fleet --scenario fleet.json [--out report.json]
//                 [--metrics]
//                 (see fleet/fleet_spec.hpp schema; runs a multi-AZ
//                  fleet scenario — diurnal load, rolling upgrades,
//                  faults — and prints the availability SLO report.
//                  A fuzz-trace JSON, detected by its "ops" array,
//                  replays through the conformance driver instead, so
//                  shrunk reproducers run via --scenario directly.)
#include <cstdio>
#include <cstring>
#include <string>

#include <fstream>
#include <sstream>

#include "chaos/experiment.hpp"
#include "check/fuzz.hpp"
#include "check/testseed.hpp"
#include "core/config.hpp"
#include "fleet/fleet.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "telemetry/metrics.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;

namespace {

struct Options {
  ServiceKind service = ServiceKind::kVpcVpc;
  std::uint16_t cores = 8;
  LbMode mode = LbMode::kPlb;
  double rate_mpps = 2.0;
  std::size_t flows = 5000;
  NanoTime duration = 100 * kMillisecond;
  double hitter_mpps = 0.0;
  bool drop_flag = true;
  bool offload = false;
  bool metrics = false;
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: albatross_sim [--service vpc|internet|idc|cloud] [--cores N]\n"
      "                     [--mode plb|rss] [--rate-mpps R] [--flows N]\n"
      "                     [--duration-ms T] [--hitter-mpps R]\n"
      "                     [--drop-flag 0|1] [--offload] [--metrics]\n"
      "       albatross_sim chaos --plan chaos.json\n"
      "       albatross_sim fuzz [--seed N] [--seeds K] [--ticks T]\n"
      "                     [--tier] [--chaos none|benign|stall]\n"
      "                     [--dump f.json] [--replay f.json]\n"
      "       albatross_sim fleet --scenario fleet.json [--out report.json]\n"
      "                     [--metrics]\n");
  std::exit(2);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (a == "--service") {
      const std::string v = next();
      if (v == "vpc") opt.service = ServiceKind::kVpcVpc;
      else if (v == "internet") opt.service = ServiceKind::kVpcInternet;
      else if (v == "idc") opt.service = ServiceKind::kVpcIdc;
      else if (v == "cloud") opt.service = ServiceKind::kVpcCloudService;
      else return false;
    } else if (a == "--cores") {
      opt.cores = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (a == "--mode") {
      const std::string v = next();
      if (v == "plb") opt.mode = LbMode::kPlb;
      else if (v == "rss") opt.mode = LbMode::kRss;
      else return false;
    } else if (a == "--rate-mpps") {
      opt.rate_mpps = std::atof(next());
    } else if (a == "--flows") {
      opt.flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--duration-ms") {
      opt.duration = std::atoll(next()) * kMillisecond;
    } else if (a == "--hitter-mpps") {
      opt.hitter_mpps = std::atof(next());
    } else if (a == "--drop-flag") {
      opt.drop_flag = std::atoi(next()) != 0;
    } else if (a == "--offload") {
      opt.offload = true;
    } else if (a == "--metrics") {
      opt.metrics = true;
    } else if (a == "--help" || a == "-h") {
      usage_and_exit();
    } else {
      return false;
    }
  }
  return true;
}

int run_chaos(int argc, char** argv) {
  const char* plan_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--plan" && i + 1 < argc) {
      plan_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: albatross_sim chaos --plan chaos.json\n");
      return 2;
    }
  }
  if (plan_path == nullptr) {
    std::fprintf(stderr, "usage: albatross_sim chaos --plan chaos.json\n");
    return 2;
  }
  std::ifstream in(plan_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", plan_path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const auto r = run_chaos_experiment_from_json(text.str());
    std::printf("chaos: %u gateways, %lld ms, %llu faults injected "
                "(%llu cleared)\n",
                r.gateways,
                static_cast<long long>(r.duration / kMillisecond),
                static_cast<unsigned long long>(r.injected.applied),
                static_cast<unsigned long long>(r.injected.cleared));
    std::printf("  incidents    : %zu opened, %llu withdraws, %llu "
                "redeploys\n",
                r.incidents.size(),
                static_cast<unsigned long long>(r.harness.withdraws),
                static_cast<unsigned long long>(r.harness.redeploys));
    std::printf("  packets      : %llu delivered, %llu blackholed, %llu "
                "lost to incidents\n",
                static_cast<unsigned long long>(r.delivered_total),
                static_cast<unsigned long long>(r.blackholed_total),
                static_cast<unsigned long long>(r.packets_lost));
    std::printf("  detect  (us) : %s\n", r.detect_summary.c_str());
    std::printf("  recover (us) : %s\n", r.recovery_summary.c_str());
    std::printf("timeline:\n%s", r.timeline.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

void print_fuzz_report(const check::FuzzReport& r) {
  std::printf("  packets=%llu offered=%llu delivered=%llu events=%llu "
              "ledger=%s violations=%llu\n",
              static_cast<unsigned long long>(r.packets),
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.events),
              r.ledger_checked ? "checked" : "skipped",
              static_cast<unsigned long long>(r.violations));
  for (const auto& v : r.details) {
    std::printf("  VIOLATION %s at %lldns: %s\n", v.invariant.c_str(),
                static_cast<long long>(v.at.count()), v.detail.c_str());
  }
}

int run_fuzz(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t seeds = 1;
  std::uint64_t ticks = 10'000;
  std::size_t rx_burst = 1;
  bool with_tier = false;
  check::ChaosMode chaos = check::ChaosMode::kBenign;
  std::string dump_path;
  std::string replay_path;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ticks") {
      ticks = std::strtoull(next(), nullptr, 10);
    } else if (a == "--burst") {
      rx_burst = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(next(), nullptr, 10)));
    } else if (a == "--tier") {
      with_tier = true;
    } else if (a == "--chaos") {
      const std::string v = next();
      if (v == "none") chaos = check::ChaosMode::kNone;
      else if (v == "benign") chaos = check::ChaosMode::kBenign;
      else if (v == "stall") chaos = check::ChaosMode::kReorderStall;
      else {
        std::fprintf(stderr, "fuzz: unknown --chaos %s\n", v.c_str());
        return 2;
      }
    } else if (a == "--dump") {
      dump_path = next();
    } else if (a == "--replay") {
      replay_path = next();
    } else {
      std::fprintf(
          stderr,
          "usage: albatross_sim fuzz [--seed N] [--seeds K] [--ticks T]\n"
          "                          [--burst B] [--tier]\n"
          "                          [--chaos none|benign|stall]\n"
          "                          [--dump file.json] [--replay file.json]\n");
      return 2;
    }
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto trace = check::trace_from_json(text.str());
    if (!trace) {
      std::fprintf(stderr, "fuzz: %s is not a valid trace\n",
                   replay_path.c_str());
      return 1;
    }
    if (rx_burst != 1) trace->scenario.rx_burst = rx_burst;
    const auto report = check::run_trace(*trace);
    std::printf("fuzz replay %s: seed=%llu ops=%zu %s\n",
                replay_path.c_str(),
                static_cast<unsigned long long>(trace->scenario.seed),
                trace->ops.size(),
                report.violated() ? "VIOLATED" : "clean");
    print_fuzz_report(report);
    return report.violated() ? 1 : 0;
  }

  for (std::uint64_t s = seed; s < seed + seeds; ++s) {
    const auto outcome = check::fuzz_one(s, ticks, chaos, rx_burst, with_tier);
    if (!outcome.report.violated()) {
      std::printf("fuzz seed=%llu ticks=%llu: clean (%llu packets, %llu "
                  "events)\n",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(ticks),
                  static_cast<unsigned long long>(outcome.report.packets),
                  static_cast<unsigned long long>(outcome.report.events));
      if (with_tier) {
        std::printf("  tier: fpga=%llu dpu=%llu miss=%llu migrations=%llu "
                    "forced=%llu\n",
                    static_cast<unsigned long long>(
                        outcome.report.tier_fpga_hits),
                    static_cast<unsigned long long>(
                        outcome.report.tier_dpu_hits),
                    static_cast<unsigned long long>(outcome.report.tier_misses),
                    static_cast<unsigned long long>(
                        outcome.report.tier_migrations),
                    static_cast<unsigned long long>(
                        outcome.report.tier_forced_ops));
      }
      continue;
    }
    std::printf("fuzz seed=%llu ticks=%llu: VIOLATED (shrunk to %zu ops)\n",
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(ticks),
                outcome.trace.ops.size());
    print_fuzz_report(outcome.report);
    const std::string path = dump_path.empty()
                                 ? "fuzz-trace-" + std::to_string(s) + ".json"
                                 : dump_path;
    std::ofstream out(path);
    out << check::trace_to_json(outcome.trace) << "\n";
    std::printf("  reproducer dumped to %s (replay with: albatross_sim fuzz "
                "--replay %s)\n",
                path.c_str(), path.c_str());
    return 1;
  }
  return 0;
}

int run_fleet_cmd(int argc, char** argv) {
  const char* scenario_path = nullptr;
  std::string out_path;
  bool metrics = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--scenario" && i + 1 < argc) {
      scenario_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--metrics") {
      metrics = true;
    } else {
      std::fprintf(stderr,
                   "usage: albatross_sim fleet --scenario fleet.json "
                   "[--out report.json] [--metrics]\n");
      return 2;
    }
  }
  if (scenario_path == nullptr) {
    std::fprintf(stderr,
                 "usage: albatross_sim fleet --scenario fleet.json "
                 "[--out report.json] [--metrics]\n");
    return 2;
  }
  std::ifstream in(scenario_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", scenario_path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  // A shrunk fuzz reproducer (trace JSON has an "ops" array) replays
  // through the conformance driver: one flag, either artifact.
  {
    const auto parsed = json_parse(text.str());
    if (parsed && (*parsed)["ops"].is_array()) {
      auto trace = check::trace_from_json(text.str());
      if (!trace) {
        std::fprintf(stderr, "fleet: %s has an \"ops\" array but is not a "
                             "valid fuzz trace\n",
                     scenario_path);
        return 1;
      }
      const auto report = fleet::run_fleet_trace(*trace);
      std::printf("fleet trace replay %s: seed=%llu ops=%zu %s\n",
                  scenario_path,
                  static_cast<unsigned long long>(trace->scenario.seed),
                  trace->ops.size(),
                  report.violated() ? "VIOLATED" : "clean");
      print_fuzz_report(report);
      return report.violated() ? 1 : 0;
    }
  }

  try {
    fleet::FleetSpec spec = fleet::FleetSpec::from_json_text(text.str());
    spec.seed = check::test_seed(spec.seed);
    fleet::FleetEngine engine(spec);
    engine.run();
    const auto result = engine.collect();
    std::printf("%s", result.report_text().c_str());
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      out << result.slo.to_json().dump() << "\n";
      // stderr: stdout stays byte-identical across same-seed runs even
      // when the two runs write to different --out paths.
      std::fprintf(stderr, "SLO report written to %s\n", out_path.c_str());
    }
    if (metrics) {
      MetricsRegistry registry;
      register_fleet_metrics(registry, engine);
      std::printf("\n%s", registry.expose().c_str());
    }
    return result.conformance_violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Chaos mode: replay a fault plan against a gateway fleet.
  if (argc >= 2 && std::string(argv[1]) == "chaos") {
    return run_chaos(argc, argv);
  }

  // Fleet mode: multi-AZ cluster scenario with SLO report.
  if (argc >= 2 && std::string(argv[1]) == "fleet") {
    return run_fleet_cmd(argc, argv);
  }

  // Fuzz mode: randomized conformance runs with invariant probes armed.
  if (argc >= 2 && std::string(argv[1]) == "fuzz") {
    return run_fuzz(argc, argv);
  }

  // Declarative mode: --config file.json runs a whole experiment spec.
  if (argc == 3 && std::string(argv[1]) == "--config") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const auto result = run_experiment_from_json(text.str());
      for (std::size_t i = 0; i < result.pods.size(); ++i) {
        const auto& r = result.pods[i];
        std::printf("pod %zu: delivered %.3f Mpps (loss %.3f%%), mean "
                    "%.1f us, p99 %.1f us, disorder %.1e\n",
                    i, r.delivered_mpps, r.loss_rate * 100,
                    r.mean_latency_us, r.p99_latency_us, r.disorder_rate);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  Options opt;
  if (!parse_args(argc, argv, opt)) usage_and_exit();

  auto scenario = SinglePodScenario::make(opt.service, opt.cores, opt.mode,
                                          200, 20'000, opt.drop_flag);
  Platform& platform = *scenario.platform;
  if (opt.offload) platform.nic().enable_session_offload(scenario.pod);
  platform.enable_order_oracle(opt.flows <= 100'000);

  PoissonFlowConfig bg;
  bg.num_flows = opt.flows;
  bg.rate_pps = opt.rate_mpps * 1e6;
  platform.attach_source(std::make_unique<PoissonFlowSource>(bg),
                         scenario.pod);
  if (opt.hitter_mpps > 0.0) {
    HeavyHitterConfig hh;
    hh.flow = make_flow(0x777777, 7, 0);
    hh.profile = RateProfile{{NanoTime{0}, opt.hitter_mpps * 1e6}};
    platform.attach_source(std::make_unique<HeavyHitterSource>(hh),
                           scenario.pod);
  }

  platform.run_until(opt.duration);

  const PodTelemetry& t = platform.telemetry(scenario.pod);
  const auto r = summarize(t, opt.duration);
  std::printf("albatross_sim: %s, %u cores, %s mode, %.2f Mpps offered, "
              "%lld ms\n",
              std::string(service_name(opt.service)).c_str(), opt.cores,
              opt.mode == LbMode::kPlb ? "PLB" : "RSS", opt.rate_mpps,
              static_cast<long long>(opt.duration / kMillisecond));
  std::printf("  delivered    : %.3f Mpps (loss %.3f%%)\n", r.delivered_mpps,
              r.loss_rate * 100);
  std::printf("  latency      : mean %.1f us, p99 %.1f us\n",
              r.mean_latency_us, r.p99_latency_us);
  std::printf("  ordering     : disorder %.1e, violations %llu\n",
              r.disorder_rate,
              static_cast<unsigned long long>(t.flow_order_violations));
  const auto reorder = platform.nic().engine(scenario.pod).total_stats();
  std::printf("  reorder      : in-order %llu, best-effort %llu, HOL "
              "timeouts %llu, drop releases %llu\n",
              static_cast<unsigned long long>(reorder.in_order_tx),
              static_cast<unsigned long long>(reorder.best_effort_tx),
              static_cast<unsigned long long>(reorder.timeout_releases),
              static_cast<unsigned long long>(reorder.drop_releases));
  if (opt.offload) {
    const auto& off = platform.nic().session_offload(scenario.pod).stats();
    std::printf("  offload      : fpga hits %llu, installs %llu\n",
                static_cast<unsigned long long>(off.fast_path_hits),
                static_cast<unsigned long long>(off.installs));
  }

  if (opt.metrics) {
    MetricsRegistry registry;
    register_platform_metrics(registry, platform);
    std::printf("\n%s", registry.expose().c_str());
  }
  return 0;
}
