// GOP technique 2 (§4.3): protocol-packet prioritisation. BFD declares
// a link dead after 3 lost probes; if BFD shares the data path, a
// saturated gateway's indiscriminate drops take the link (and BGP) down
// exactly when the gateway is busiest — the 1st-gen "NIC port overload"
// failure (§2.1). With priority queues the probes bypass the congested
// data path and the link stays up at any data-plane load.
#include "bench_util.hpp"
#include "bgp/bfd.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct BfdOutcome {
  std::uint64_t probes_offered = 0;
  std::uint64_t probes_received = 0;
  std::uint64_t link_failures = 0;
  double probe_p99_us = 0.0;
};

BfdOutcome run(bool priority_queues, double overload_factor) {
  constexpr std::uint16_t kCores = 2;
  PlatformConfig pc;
  pc.nic.gop.auto_install = false;
  Platform platform(pc);
  GwPodConfig gp;
  gp.service = ServiceKind::kVpcVpc;
  gp.data_cores = kCores;
  gp.rx_ring_capacity = 512;
  PktDirConfig dir;
  dir.priority_queues_enabled = priority_queues;
  const PodId pod = platform.create_pod(gp, 0, dir, LbMode::kPlb);

  // Local BFD endpoint fed by the pod's ctrl plane; detection per
  // RFC 5880 semantics (3 x 50ms).
  BfdConfig bfd_cfg;
  bfd_cfg.tx_interval = 50 * kMillisecond;
  BfdSession bfd(platform.loop(), bfd_cfg);
  std::uint64_t downs = 0;
  LogHistogram probe_latency;
  bfd.set_on_state([&](BfdState s, NanoTime) {
    if (s == BfdState::kDown) ++downs;
  });
  bfd.set_tx([](NanoTime) {});  // reverse direction not modelled
  platform.pod(pod).set_protocol_handler(
      [&](PacketPtr pkt, NanoTime now) {
        if (pkt->tuple.dst_port == kBfdPort) {
          bfd.on_rx(now);
          probe_latency.record(
              static_cast<std::uint64_t>((now - pkt->rx_time).count()));
        }
      });
  bfd.start(Nanos{0});
  // Mark the session up before the storm begins.
  bfd.on_rx(Nanos{0});

  // Remote peer's probes: CBR at the BFD interval.
  HeavyHitterConfig probes;
  probes.flow = make_flow(0xbfdbfd, 0, 0);
  probes.flow.tuple.dst_port = kBfdPort;
  probes.profile = RateProfile{{NanoTime{0}, 1e9 / static_cast<double>(
                                          bfd_cfg.tx_interval.count())}};
  platform.attach_source(std::make_unique<HeavyHitterSource>(probes), pod);

  // The data-plane storm: overload_factor x pod capacity.
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false) * 1e6 * kCores;
  PoissonFlowConfig storm;
  storm.num_flows = 3000;
  storm.rate_pps = overload_factor * capacity_pps;
  storm.seed = 37;
  platform.attach_source(std::make_unique<PoissonFlowSource>(storm), pod);

  platform.run_until(1500 * kMillisecond);

  BfdOutcome r;
  r.probes_offered = platform.tenant(0).offered;  // probes carry vni 0
  r.probes_received = probe_latency.count();
  r.link_failures = downs;
  r.probe_p99_us = static_cast<double>(probe_latency.quantile(0.99)) / 1e3;
  return r;
}

}  // namespace

int main() {
  print_header("GOP: protocol priority queues vs BFD survival",
               "§4.3 'High priority assignment for protocol packets'");
  print_row("%-10s %10s %10s %10s %12s %12s", "overload", "priority",
            "offered", "received", "link downs", "p99(us)");
  for (const double overload : {0.5, 1.5, 2.5}) {
    for (const bool prio : {true, false}) {
      const auto r = run(prio, overload);
      print_row("%8.0f%% %10s %10llu %10llu %12llu %12.1f", overload * 100,
                prio ? "on" : "off",
                static_cast<unsigned long long>(r.probes_offered),
                static_cast<unsigned long long>(r.probes_received),
                static_cast<unsigned long long>(r.link_failures),
                r.probe_p99_us);
    }
  }
  print_row("\nShape: below capacity both configs keep BFD up. Once the "
            "data plane saturates, the data-path config loses probes "
            "indiscriminately and BFD declares link failures (which would "
            "reset BGP and blackhole ALL tenants); the priority-queue "
            "config delivers every probe at microsecond latency "
            "regardless of load.");
  return 0;
}
