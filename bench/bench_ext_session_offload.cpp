// Extension (§7 future-offload plan #1): FPGA session offload. After the
// CPU establishes a flow's session, the NIC forwards subsequent packets
// of that flow entirely on-chip: no PCIe crossing, no CPU cycles, no
// reorder bookkeeping. The bench drives a pod past its CPU capacity and
// compares delivered rate, latency and CPU load with offload off/on,
// plus the long-lived vs short-lived flow sensitivity (offload only
// pays off when flows live long enough to amortise the install).
#include "bench_util.hpp"
#include "nic/session_offload.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct OffloadOutcome {
  double delivered_mpps;
  double p50_us;
  std::uint64_t cpu_processed;
  std::uint64_t fpga_hits;
};

OffloadOutcome run(bool offload, std::size_t num_flows, double offered_pps) {
  constexpr std::uint16_t kCores = 2;
  auto s =
      SinglePodScenario::make(ServiceKind::kVpcInternet, kCores, LbMode::kPlb);
  if (offload) s.platform->nic().enable_session_offload(s.pod);

  PoissonFlowConfig traffic;
  traffic.num_flows = num_flows;
  traffic.tenants = 64;
  traffic.rate_pps = offered_pps;
  traffic.seed = 41;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(traffic),
                            s.pod);

  const NanoTime duration = 60 * kMillisecond;
  s.platform->run_until(duration);

  OffloadOutcome r;
  const auto& t = s.platform->telemetry(s.pod);
  r.delivered_mpps =
      static_cast<double>(t.delivered) /
      (static_cast<double>(duration.count()) / 1e9) / 1e6;
  r.p50_us = static_cast<double>(t.wire_latency.quantile(0.5)) / 1e3;
  r.cpu_processed = s.platform->pod(s.pod).stats().processed;
  r.fpga_hits = offload ? s.platform->nic()
                              .session_offload(s.pod)
                              .stats()
                              .fast_path_hits
                        : 0;
  return r;
}

}  // namespace

int main() {
  print_header("Extension: FPGA session offload (write-heavy NF rescue)",
               "§7 'Future FPGA offloading plan' item 1");
  // 2-core pod: CPU capacity ~1.9 Mpps (VPC-Internet); offer 4 Mpps.
  print_row("%-10s %10s %14s %10s %12s %12s", "flows", "offload",
            "delivered", "p50(us)", "CPU pkts", "FPGA pkts");
  for (const std::size_t flows : {100ul, 10'000ul, 200'000ul}) {
    for (const bool off : {false, true}) {
      const auto r = run(off, flows, 4e6);
      print_row("%-10zu %10s %11.2fMpps %10.1f %12llu %12llu", flows,
                off ? "on" : "off", r.delivered_mpps, r.p50_us,
                static_cast<unsigned long long>(r.cpu_processed),
                static_cast<unsigned long long>(r.fpga_hits));
    }
  }
  print_row("\nShape: with few long-lived flows the offload absorbs "
            "nearly all packets on the FPGA — delivered rate jumps past "
            "the CPU ceiling and median latency drops ~6x (no PCIe "
            "round-trip). With 200K short flows the working set exceeds "
            "the 64K-session BRAM table and the benefit shrinks toward "
            "the CPU baseline — why the paper pairs offload with "
            "heavy-session (not per-packet-unique) workloads.");
  return 0;
}
