// Figure 8: load-balancing comparison under a growing heavy hitter.
// Paper setup: 500K background flows, 3 forwarding cores at ~10%
// baseline utilisation; one hitter ramps from 0 to 130% of a single
// core's capacity. RSS pins the hitter to one core (core overload,
// packet loss); PLB sprays it across all cores (no loss).
#include "bench_util.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct Point {
  double loss;
  double hot_core_util;
};

Point run(LbMode mode, double hitter_fraction_of_core) {
  constexpr std::uint16_t kCores = 3;
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores, mode);

  // Background: ~10% utilisation of each core.
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double core_mpps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, mode == LbMode::kRss);
  PoissonFlowConfig bg;
  bg.num_flows = 5000;  // scaled stand-in for 500K
  bg.rate_pps = 0.10 * core_mpps * 1e6 * kCores;
  bg.seed = 11;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  HeavyHitterConfig hh;
  hh.flow = make_flow(0xbeef, 3, 0);
  hh.profile = RateProfile{{NanoTime{0}, hitter_fraction_of_core * core_mpps * 1e6}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);

  const NanoTime duration = 60 * kMillisecond;
  s.platform->run_until(duration);
  s.platform->run_until(duration + 10 * kMillisecond);

  const auto& t = s.platform->telemetry(s.pod);
  Point p;
  p.loss = t.offered ? 1.0 - static_cast<double>(t.delivered) /
                                 static_cast<double>(t.offered)
                     : 0.0;
  NanoTime hottest = NanoTime{0};
  for (std::uint16_t c = 0; c < kCores; ++c) {
    hottest =
        std::max(hottest, s.platform->pod(s.pod).core_busy_ns(CoreId{c}));
  }
  p.hot_core_util = static_cast<double>(hottest.count()) /
                    static_cast<double>((duration + 10 * kMillisecond).count());
  return p;
}

}  // namespace

int main() {
  print_header(
      "Figure 8: heavy-hitter tolerance, RSS vs PLB (3 cores, 10% base)",
      "Fig. 8, SIGCOMM'25 Albatross");
  print_row("%-12s %10s %12s %10s %12s", "hitter(%core)", "RSS loss",
            "RSS hotcore", "PLB loss", "PLB hotcore");
  for (const double frac : {0.0, 0.3, 0.6, 0.9, 1.1, 1.3}) {
    const Point rss = run(LbMode::kRss, frac);
    const Point plb = run(LbMode::kPlb, frac);
    print_row("%11.0f%% %9.2f%% %11.0f%% %9.2f%% %11.0f%%", frac * 100,
              rss.loss * 100, rss.hot_core_util * 100, plb.loss * 100,
              plb.hot_core_util * 100);
  }
  print_row("\nShape: RSS loses packets once the hitter exceeds ~90%% of "
            "one core (its hot core saturates); PLB stays lossless "
            "through 130%% by spreading the flow across all 3 cores.");
  return 0;
}
