// Extension: DPU-augmented hierarchical co-offload (docs/DPU_TIER.md).
// Sweeps the concurrent-flow count across the FPGA's 64K-session BRAM
// limit and compares three datapath configurations on the same offered
// load: CPU-only (no offload), FPGA-only session offload (the §7 plan-1
// extension), and the full FPGA+DPU tier. The claim under test: once
// the warm-flow working set exceeds the BRAM table, the DPU middle tier
// absorbs the overflow that would otherwise thrash the saturated CPU —
// tiered delivered rate must not fall below either baseline at the
// highest flow count (the CI bench-smoke gate asserts exactly this from
// the emitted JSON).
//
// The popularity skew is deliberately flat (zipf 0.5): with a steep
// skew a few elephants carry the load and 64K sessions cover nearly
// all of it, so there is nothing for a middle tier to rescue. The flat
// mix models the paper's scale-out tenancy regime — many mid-rate
// tenant flows, no dominating elephant.
//
// Usage: bench_ext_dpu_tiering [--quick] [--json PATH] [--check]
//   --quick   60 ms simulated per run instead of 120 ms (CI smoke)
//   --json    output path (default BENCH_ext_dpu_tiering.json)
//   --check   exit nonzero unless, at the highest flow count, the
//             tiered datapath delivers at least as much as both
//             baselines and reorders no more than the legacy offload
//             (virtual time makes both comparisons deterministic)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dpu/dpu_tier.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

enum class Datapath { kCpuOnly, kFpgaOnly, kTiered };

const char* datapath_name(Datapath d) {
  switch (d) {
    case Datapath::kCpuOnly: return "cpu";
    case Datapath::kFpgaOnly: return "fpga";
    case Datapath::kTiered: return "tiered";
  }
  return "?";
}

struct Outcome {
  double delivered_mpps = 0.0;
  double p50_us = 0.0;
  std::uint64_t fpga_hits = 0;
  std::uint64_t dpu_hits = 0;
  std::uint64_t cpu_processed = 0;
  std::uint64_t order_violations = 0;
};

Outcome run(Datapath dp, std::size_t num_flows, double offered_pps,
            NanoTime duration) {
  constexpr std::uint16_t kCores = 2;
  auto s =
      SinglePodScenario::make(ServiceKind::kVpcInternet, kCores, LbMode::kPlb);

  // The order oracle rides along on every configuration. Two separate
  // mechanisms show up in its count at saturation: PLB reorder-timeout
  // releases on whatever traffic the CPU path carries (present even in
  // the cpu-only baseline), and — for the legacy offload only —
  // mid-queue session installs whose FPGA-served successors overtake
  // earlier packets of the flow still queued on the host. The tier's
  // in-flight handover gate forbids the second mechanism entirely:
  // under RSS (where the CPU path is per-flow FIFO and the first
  // mechanism vanishes) the tiered configuration records zero
  // violations, which is also what tests/test_dpu_diff.cpp proves
  // seed-by-seed.
  s.platform->enable_order_oracle(true);

  if (dp == Datapath::kFpgaOnly) {
    s.platform->nic().enable_session_offload(s.pod);
  } else if (dp == Datapath::kTiered) {
    DpuTierConfig tc;
    // BlueField-2-class datapath: 16 wimpy ARM cores behind the FPGA.
    tc.datapath.cores = 16;
    // The default budgets model steady-state churn metering; this bench
    // cold-starts a 6 Mpps mix of up to 250K flows in one measurement
    // window, so the host admission channel is sized for bulk installs
    // (what a real DPU does with DMA'd batch table updates). The
    // capacity-invariance property under the *default* budgets is
    // covered by tests/test_dpu_diff.cpp.
    tc.controller.admit_budget = 32'768;
    tc.controller.migration_budget = 4'096;
    // Admission parity with the self-learning baseline: the legacy
    // offload installs on a flow's first CPU forward, so the tier gets
    // the same mice filter here. The stricter 2-forward default is the
    // steady-state setting; it is exercised by the dpu test suite.
    tc.controller.admit_forwards = 1;
    s.platform->nic().enable_dpu_tier(s.pod, tc);
    s.platform->enable_housekeeping(10 * kMillisecond);
  }

  PoissonFlowConfig traffic;
  traffic.num_flows = num_flows;
  traffic.tenants = 64;
  traffic.zipf_alpha = 0.5;
  traffic.rate_pps = offered_pps;
  traffic.seed = 41;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(traffic),
                            s.pod);
  s.platform->run_until(duration);

  Outcome r;
  const auto& t = s.platform->telemetry(s.pod);
  r.delivered_mpps = static_cast<double>(t.delivered) /
                     (static_cast<double>(duration.count()) / 1e9) / 1e6;
  r.p50_us = static_cast<double>(t.wire_latency.quantile(0.5)) / 1e3;
  r.cpu_processed = s.platform->pod(s.pod).stats().processed;
  r.order_violations = t.flow_order_violations;
  if (dp == Datapath::kFpgaOnly) {
    r.fpga_hits =
        s.platform->nic().session_offload(s.pod).stats().fast_path_hits;
  } else if (dp == Datapath::kTiered) {
    const DpuTierStats& ts = s.platform->nic().dpu_tier(s.pod).stats();
    r.fpga_hits = ts.fpga_hits;
    r.dpu_hits = ts.dpu_hits;
  }
  return r;
}

struct Point {
  std::size_t flows = 0;
  Outcome by_dp[3];
};

void write_json(const std::string& path, bool quick, double offered_pps,
                const std::vector<Point>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ext_dpu_tiering: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ext_dpu_tiering\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f,
               "  \"workload\": {\"service\": \"VPC-Internet\", \"cores\": 2, "
               "\"offered_pps\": %.0f, \"zipf_alpha\": 0.5, "
               "\"fpga_sessions\": 65536},\n",
               offered_pps);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f, "    {\"flows\": %zu", p.flows);
    for (int d = 0; d < 3; ++d) {
      const Outcome& o = p.by_dp[d];
      std::fprintf(f, ", \"%s_mpps\": %.3f, \"%s_reorders\": %llu",
                   datapath_name(static_cast<Datapath>(d)), o.delivered_mpps,
                   datapath_name(static_cast<Datapath>(d)),
                   static_cast<unsigned long long>(o.order_violations));
    }
    const Outcome& tiered = p.by_dp[2];
    std::fprintf(f,
                 ", \"tiered_fpga_hits\": %llu, \"tiered_dpu_hits\": %llu}%s\n",
                 static_cast<unsigned long long>(tiered.fpga_hits),
                 static_cast<unsigned long long>(tiered.dpu_hits),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path = "BENCH_ext_dpu_tiering.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  // Long enough that >64K distinct flows complete a CPU round-trip and
  // the BRAM capacity genuinely binds (the 2-core CPU forwards ~1.8 Mpps,
  // so 60 ms ≈ 108K first-packet forwards).
  const NanoTime duration = (quick ? 60 : 120) * kMillisecond;
  const double offered_pps = 6e6;  // 2-core CPU capacity is ~1.9 Mpps

  print_header("Extension: DPU hierarchical co-offload tier",
               "docs/DPU_TIER.md capacity-tiering claim");
  print_row("%-10s %8s %14s %10s %12s %12s %12s %10s", "flows", "path",
            "delivered", "p50(us)", "FPGA pkts", "DPU pkts", "CPU pkts",
            "reorders");

  std::vector<Point> points;
  for (const std::size_t flows : {1'000ul, 32'000ul, 100'000ul, 250'000ul}) {
    Point p;
    p.flows = flows;
    for (const Datapath dp :
         {Datapath::kCpuOnly, Datapath::kFpgaOnly, Datapath::kTiered}) {
      const Outcome r = run(dp, flows, offered_pps, duration);
      p.by_dp[static_cast<int>(dp)] = r;
      print_row("%-10zu %8s %11.2fMpps %10.1f %12llu %12llu %12llu %10llu",
                flows, datapath_name(dp), r.delivered_mpps, r.p50_us,
                static_cast<unsigned long long>(r.fpga_hits),
                static_cast<unsigned long long>(r.dpu_hits),
                static_cast<unsigned long long>(r.cpu_processed),
                static_cast<unsigned long long>(r.order_violations));
    }
    points.push_back(p);
  }

  write_json(json_path, quick, offered_pps, points);
  print_row("  wrote %s", json_path.c_str());
  print_row(
      "\nShape: below 64K flows the FPGA table covers the whole working "
      "set and fpga-only == tiered. Past it, fpga-only strands the "
      "overflow flows on the saturated CPU while the tier's DPU cores "
      "absorb them — the tiered curve must stay on top at the 250K "
      "point. The flat skew is the regime where this matters; with "
      "elephants, 64K sessions already cover the mass (see "
      "bench_ext_session_offload). The reorders column: past the BRAM "
      "limit the tier is the cleanest path, because the legacy "
      "offload's mid-queue installs let FPGA-served successors overtake "
      "host-queued packets while the tier's handover gate waits for the "
      "flow's last in-flight CPU packet. At 1K flows the tiered count "
      "is PLB timeout disorder on its still-saturated residual CPU "
      "traffic (the same mechanism as the cpu row), not handover "
      "violations — under flow-affine RSS it is exactly zero.");

  if (check) {
    const Point& top = points.back();
    const Outcome& cpu = top.by_dp[static_cast<int>(Datapath::kCpuOnly)];
    const Outcome& fpga = top.by_dp[static_cast<int>(Datapath::kFpgaOnly)];
    const Outcome& tiered = top.by_dp[static_cast<int>(Datapath::kTiered)];
    bool ok = true;
    if (tiered.delivered_mpps < cpu.delivered_mpps ||
        tiered.delivered_mpps < fpga.delivered_mpps) {
      std::fprintf(stderr,
                   "CHECK FAILED at %zu flows: tiered %.3f Mpps must be >= "
                   "cpu %.3f and fpga %.3f\n",
                   top.flows, tiered.delivered_mpps, cpu.delivered_mpps,
                   fpga.delivered_mpps);
      ok = false;
    }
    if (tiered.order_violations > fpga.order_violations) {
      std::fprintf(stderr,
                   "CHECK FAILED at %zu flows: tiered reorders %llu must be "
                   "<= fpga-only %llu\n",
                   top.flows,
                   static_cast<unsigned long long>(tiered.order_violations),
                   static_cast<unsigned long long>(fpga.order_violations));
      ok = false;
    }
    if (!ok) return 1;
    print_row("  check passed: tiered wins the highest-flow point");
  }
  return 0;
}
