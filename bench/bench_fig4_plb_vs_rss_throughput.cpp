// Figure 4: per-core throughput of the VPC-Internet service under RSS
// vs PLB at 1, 20 and 40 cores — the surprising result that the gap is
// <1% because the multi-GB forwarding state makes both modes equally
// DRAM-bound (L3 is shared). Small core counts are simulated end to
// end; 20/40 cores use the closed-form per-core capacity (identical
// math, no queueing interaction at saturation).
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Figure 4: RSS vs PLB per-core throughput (VPC-Internet)",
               "Fig. 4, SIGCOMM'25 Albatross");

  print_row("%-8s %14s %14s %10s", "cores", "RSS Mpps/core",
            "PLB Mpps/core", "gap");

  // Simulated points (1 and 4 cores).
  constexpr std::uint16_t kCoreCounts[] = {1, 4};
  for (const std::uint16_t cores : kCoreCounts) {
    const auto rss = measure_saturation(ServiceKind::kVpcInternet, cores,
                                        LbMode::kRss, cores * 3e6,
                                        40 * kMillisecond, /*seed=*/2);
    const auto plb = measure_saturation(ServiceKind::kVpcInternet, cores,
                                        LbMode::kPlb, cores * 3e6,
                                        40 * kMillisecond, /*seed=*/2);
    print_row("%-8d %14.3f %14.3f %9.2f%%  (simulated)", cores,
              rss.per_core_mpps, plb.per_core_mpps,
              (rss.per_core_mpps - plb.per_core_mpps) / rss.per_core_mpps *
                  100.0);
  }

  // Closed-form points (20 and 40 cores, the paper's sweep).
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double rss_core =
      core_capacity_mpps(ServiceKind::kVpcInternet, cache, true);
  const double plb_core =
      core_capacity_mpps(ServiceKind::kVpcInternet, cache, false);
  for (const int cores : {20, 40}) {
    print_row("%-8d %14.3f %14.3f %9.2f%%  (closed form)", cores, rss_core,
              plb_core, (rss_core - plb_core) / rss_core * 100.0);
  }
  print_row("\nL3 hit rate in this regime: %.1f%% -> both modes are "
            "DRAM-bound; paper reports a <1%% difference.",
            cache.l3_hit_rate() * 100.0);
  return 0;
}
