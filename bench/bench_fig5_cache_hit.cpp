// Figure 5: L3 cache hit rate comparison — cloud-gateway forwarding
// state (several GB) against ~200MB of shared L3 yields 30-45% hit
// rates, nearly identical for RSS and PLB. The bench sweeps working-set
// size and measures hit rates both analytically and by sampling.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Figure 5: L3 cache hit rate, RSS vs PLB",
               "Fig. 5, SIGCOMM'25 Albatross");

  print_row("%-16s %12s %12s %12s", "working set", "analytic%",
            "sampledRSS%", "sampledPLB%");
  Rng rng(5);
  for (const std::uint64_t ws_gb : {1, 2, 4, 8, 16}) {
    CacheModel cache;
    cache.set_working_set_bytes(ws_gb << 30);
    // Sampled hit rates: count accesses that cost <= L3 latency.
    const auto sampled = [&](bool affine) {
      std::uint64_t hits = 0;
      const int n = 200000;
      for (int i = 0; i < n; ++i) {
        if (cache.access_latency(rng, NumaNodeId{0}, NumaNodeId{0}, affine) <=
            cache.config().l3_hit_ns) {
          ++hits;
        }
      }
      return 100.0 * static_cast<double>(hits) / n;
    };
    print_row("%13llu GB %11.1f%% %11.1f%% %11.1f%%",
              static_cast<unsigned long long>(ws_gb),
              cache.l3_hit_rate() * 100.0, sampled(true), sampled(false));
  }
  print_row("\nPaper regime (~4GB tables): 30-45%% hit rate, RSS ~= PLB "
            "because the L3 is shared across cores either way.");
  return 0;
}
