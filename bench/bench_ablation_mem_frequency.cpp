// Ablation (§4.2): memory frequency. Raising DDR5 from 4800 to 5600
// MT/s improved gateway performance ~8% in production, because with a
// 30-45% L3 hit rate most table lookups go to DRAM. The bench sweeps
// memory speed through the cache model and the full simulated platform.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

double capacity_at(std::uint32_t mts) {
  NumaConfig numa;
  numa.memory_mts = mts;
  CacheModel cache(CacheConfig{}, numa);
  cache.set_working_set_bytes(4ull << 30);
  const auto p = service_profile(ServiceKind::kVpcInternet);
  const double per_pkt =
      static_cast<double>(p.base_ns.count()) +
      static_cast<double>(p.mem_accesses) *
          cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{0}, false);
  return 1e3 / per_pkt;
}

}  // namespace

int main() {
  print_header("Ablation: memory frequency vs gateway throughput",
               "§4.2 (4800->5600 MT/s => ~8%), SIGCOMM'25 Albatross");
  const double base = capacity_at(4800);
  print_row("%-10s %16s %10s", "MT/s", "Mpps/core", "vs 4800");
  for (const std::uint32_t mts : {4000u, 4400u, 4800u, 5200u, 5600u, 6000u}) {
    const double c = capacity_at(mts);
    print_row("%-10u %16.3f %9.1f%%", mts, c, (c - base) / base * 100);
  }
  print_row("\nShape: 4800 -> 5600 MT/s yields a high-single-digit gain "
            "(paper: ~8%%) because DRAM latency sits on most lookups; "
            "this is why Albatross's hardware selection favours memory "
            "latency/frequency over core count alone.");
  return 0;
}
