// google-benchmark microbenchmarks of the hot-path data structures:
// Toeplitz/CRC32C hashing, DIR-24-8 LPM lookup (vs the reference trie,
// i.e. the "software LPM" DPU variant §2.2 criticises), cuckoo
// exact-match, token-bucket metering and the reorder-queue fast path.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "nic/plb_reorder.hpp"
#include "nic/rate_limiter.hpp"
#include "tables/cuckoo_table.hpp"
#include "tables/lpm_dir24.hpp"
#include "tables/lpm_trie.hpp"
#include "tables/meter.hpp"

namespace albatross {
namespace {

FiveTuple tuple_of(std::uint64_t i) {
  return FiveTuple{Ipv4Address{static_cast<std::uint32_t>(mix64(i))},
                   Ipv4Address{static_cast<std::uint32_t>(mix64(i + 1))},
                   static_cast<std::uint16_t>(i), 443, IpProto::kTcp};
}

void BM_ToeplitzRssHash(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rss_hash(tuple_of(i++ & 1023)));
  }
}
BENCHMARK(BM_ToeplitzRssHash);

void BM_Crc32cOrdqSelect(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(tuple_of(i++ & 1023)) % 4);
  }
}
BENCHMARK(BM_Crc32cOrdqSelect);

void BM_LpmDir24Lookup(benchmark::State& state) {
  static LpmDir24* lpm = [] {
    auto* t = new LpmDir24();
    Rng rng(1);
    for (int i = 0; i < 1'000'000; ++i) {
      t->add(Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
             static_cast<std::uint8_t>(16 + rng.next_below(17)),
             static_cast<NextHop>(i & kMaxNextHop));
    }
    return t;
  }();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lpm->lookup(Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())}));
  }
}
BENCHMARK(BM_LpmDir24Lookup);

void BM_LpmTrieLookup_SoftwareLpmBaseline(benchmark::State& state) {
  static LpmTrie* trie = [] {
    auto* t = new LpmTrie();
    Rng rng(1);
    for (int i = 0; i < 100'000; ++i) {
      t->add(Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
             static_cast<std::uint8_t>(16 + rng.next_below(17)),
             static_cast<NextHop>(i & kMaxNextHop));
    }
    return t;
  }();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie->lookup(
        Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())}));
  }
}
BENCHMARK(BM_LpmTrieLookup_SoftwareLpmBaseline);

void BM_CuckooFind(benchmark::State& state) {
  static CuckooTable<std::uint64_t, std::uint64_t>* table = [] {
    auto* t = new CuckooTable<std::uint64_t, std::uint64_t>(1 << 20);
    for (std::uint64_t k = 0; k < 700'000; ++k) t->insert(k, k);
    return t;
  }();
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->find(i++ % 700'000));
  }
}
BENCHMARK(BM_CuckooFind);

void BM_TokenBucketConsume(benchmark::State& state) {
  TokenBucket tb(1e9, 1e6);
  NanoTime now = NanoTime{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.consume(now += NanoTime{10}));
  }
}
BENCHMARK(BM_TokenBucketConsume);

void BM_RateLimiterAdmit(benchmark::State& state) {
  TenantRateLimiter rl;
  NanoTime now = NanoTime{0};
  Vni vni = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rl.admit(++vni & 0xffff, now += NanoTime{100}));
  }
}
BENCHMARK(BM_RateLimiterAdmit);

void BM_ReorderRoundTrip(benchmark::State& state) {
  ReorderQueue q;
  std::vector<ReorderEgress> out;
  NanoTime now = NanoTime{0};
  for (auto _ : state) {
    now += NanoTime{100};
    const auto psn = q.reserve(now);
    PlbMeta m;
    m.psn = *psn;
    q.writeback(nullptr, m, now, out);
    q.drain(now, out);
    out.clear();
  }
}
BENCHMARK(BM_ReorderRoundTrip);

}  // namespace
}  // namespace albatross
