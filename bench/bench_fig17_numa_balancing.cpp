// Figure 17: impact of kernel automatic NUMA balancing on a pinned pod.
// The balancer's periodic scans stall data cores under high load,
// producing maximum-latency bursts at ~90% load that vanish when
// numa_balancing is disabled — the paper's lesson learned.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct TailResult {
  double p999_us;
  double max_us;
  std::uint64_t stalls;
};

TailResult run(bool balancing, double load) {
  constexpr std::uint16_t kCores = 4;
  PlatformConfig pc;
  Platform platform(pc);
  GwPodConfig cfg;
  cfg.service = ServiceKind::kVpcVpc;
  cfg.data_cores = kCores;
  cfg.numa_balancing = balancing;
  // Compressed timescale: production scans every few hundred ms over
  // hours; the 400ms window uses a 5ms scan period instead.
  cfg.numa_balancing_scan_period = 5 * kMillisecond;
  const PodId pod = platform.create_pod(cfg);

  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false) * 1e6 * kCores;
  PoissonFlowConfig bg;
  bg.num_flows = 4000;
  bg.rate_pps = load * capacity_pps;
  bg.seed = 29;
  platform.attach_source(std::make_unique<PoissonFlowSource>(bg), pod);

  platform.run_until(20 * kMillisecond);
  platform.reset_telemetry();
  platform.run_until(400 * kMillisecond);

  const auto& t = platform.telemetry(pod);
  TailResult r;
  r.p999_us = static_cast<double>(t.wire_latency.quantile(0.999)) / 1e3;
  r.max_us = static_cast<double>(t.wire_latency.max()) / 1e3;
  r.stalls = platform.pod(pod).balancer().stalls();
  return r;
}

}  // namespace

int main() {
  print_header("Figure 17: impact of automatic NUMA balancing",
               "Fig. 17, SIGCOMM'25 Albatross");
  print_row("%-8s %12s %12s %12s %10s", "load", "balancing", "p999(us)",
            "max(us)", "stalls");
  for (const double load : {0.5, 0.7, 0.9}) {
    for (const bool bal : {true, false}) {
      const auto r = run(bal, load);
      print_row("%6.0f%% %12s %12.1f %12.1f %10llu", load * 100,
                bal ? "on" : "off", r.p999_us, r.max_us,
                static_cast<unsigned long long>(r.stalls));
    }
  }
  print_row("\nShape: with numa_balancing on, maximum latency spikes into "
            "the hundreds of microseconds at ~90%% load (page-migration "
            "stalls); disabling it flattens the tail — exactly the "
            "production remediation.");
  return 0;
}
