// Extension: fleet-scale availability SLO. Runs the smoke fleet
// scenario (2 AZs, million-scale tenant math folded to a short horizon)
// through the FleetEngine — diurnal load, a rolling upgrade wave and a
// pod crash — and asserts the fleet-level counterparts of the failover
// bench's bounds: the crash incident recovers inside the envelope, the
// upgrade wave blackholes nothing, packet conservation holds in every
// AZ, and the cost roll-up matches the Fig. 15 model at the scenario's
// pod-set counts.
#include "bench_util.hpp"
#include "container/cost_model.hpp"
#include "fleet/fleet.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Extension: fleet availability SLO (multi-AZ engine)",
               "fleet/fleet.hpp on top of §4.3 + Fig. 7 + §7 recovery");

  fleet::FleetSpec spec = fleet::FleetSpec::smoke();
  // Bench-sized variant of the smoke spec: production orchestrator
  // timings (10 s start + 5 s validation) and a horizon long enough for
  // the crash to fully recover, as in bench_ext_failover_recovery.
  spec.name = "bench-fleet";
  spec.horizon = 30 * kSecond;
  spec.pod_startup = 10 * kSecond;
  spec.validation = 5 * kSecond;
  spec.upgrade.start = 3 * kSecond;
  spec.upgrade.stagger = 2 * kSecond;
  spec.faults[0].event.at = 8 * kSecond;
  spec.total_rate_pps = 100'000.0;

  const fleet::FleetResult result = fleet::run_fleet(spec);
  const fleet::SloReport& slo = result.slo;

  print_row("%-8s %10s %10s %12s %14s %12s", "az", "incidents", "recovered",
            "blackhole ms", "worst gw ms", "ledger");
  bool ok = true;
  for (std::size_t i = 0; i < result.azs.size(); ++i) {
    const auto& az = result.azs[i];
    const auto& azslo = slo.azs[i];
    print_row("%-8s %10zu %10llu %12.1f %14.1f %12s", az.name.c_str(),
              az.incidents.size(),
              static_cast<unsigned long long>(azslo.recovered),
              azslo.blackhole_p99_ms, azslo.worst_gateway_downtime_ms,
              az.ledger_violations == 0 ? "balanced" : "VIOLATED");
    ok &= az.ledger_violations == 0;
  }

  print_row("\nfleet availability %.6f (target %.4f), %llu upgrades "
            "started, %llu packets lost",
            slo.availability, slo.slo_target,
            static_cast<unsigned long long>(slo.upgrades),
            static_cast<unsigned long long>(slo.packets_lost));

  // Failover envelope (bench_ext_failover_recovery bounds, fleet-wide):
  // the scripted crash must be detected, withdrawn within the BFD
  // envelope plus proxy propagation, and fully recovered inside 40 s.
  std::uint64_t crash_incidents = 0;
  for (const auto& az : result.azs) {
    for (const auto& inc : az.incidents) {
      if (inc.kind != FaultKind::kPodCrash) continue;
      ++crash_incidents;
      ok &= inc.recovered && inc.redeployed;
      ok &= inc.blackhole_ns() < kSecond;
      ok &= inc.recovery_ns() < 40 * kSecond;
    }
  }
  ok &= crash_incidents >= 1;

  // A healthy rolling upgrade is make-before-break: it must never open
  // an incident, so every incident maps back to a scripted fault.
  std::size_t scripted = 0;
  for (const auto& az : result.azs) scripted += az.injected.applied;
  std::size_t incidents_total = 0;
  for (const auto& az : result.azs) incidents_total += az.incidents.size();
  ok &= incidents_total <= scripted;
  std::size_t upgrades_started = 0;
  for (const auto& u : result.upgrades) upgrades_started += u.started ? 1 : 0;
  ok &= upgrades_started >= 1;

  // Cost roll-up must equal the Fig. 15 model applied per AZ.
  AzCostModel model;
  double expect_cost = 0.0;
  for (const auto& az : spec.azs) {
    AzRequirements req;
    req.pod_sets = az.pod_sets;
    expect_cost += model.albatross_az(req).total_cost;
  }
  ok &= slo.cost_total == expect_cost;

  print_row("envelope: crash recovered in-bounds, upgrades blackhole-free, "
            "ledgers balanced, cost matches Fig. 15 model: %s",
            ok ? "yes" : "NO");
  if (!ok) {
    print_row("BOUND VIOLATION: see rows above");
    return 1;
  }
  return 0;
}
