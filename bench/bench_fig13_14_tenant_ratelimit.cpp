// Figures 13 & 14: tenant overload rate-limiting. Four tenants at
// 4/3/2/1 Mpps into a PLB pod with 20 Mpps capacity; tenant 1 ramps to
// 34 Mpps at t=15s. Without GOP the 40 Mpps aggregate overloads the CPU
// and ALL tenants lose ~50%; with the two-stage limiter (8+2 Mpps)
// tenant 1 is clipped to 10 Mpps in the NIC and the others are
// untouched. Run at 1/10 scale (2 Mpps pod, 0.8+0.2 meters, 3.4 Mpps
// burst) with a compressed timeline; the arithmetic is identical.
#include "bench_util.hpp"
#include "traffic/tenant_gen.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

// Scale chosen so the scaled pod's real capacity (2 VPC-VPC cores at
// ~1.45 Mpps each = 2.9 Mpps) plays the role of the paper's 20 Mpps pod.
constexpr double kScale = 2.9 / 20.0;
constexpr NanoTime kBurstAt = 150 * kMillisecond;  // paper: 15 s
constexpr NanoTime kEnd = 300 * kMillisecond;      // paper: 30 s

void run(bool gop_enabled) {
  PlatformConfig pc;
  pc.nic.gop_enabled = gop_enabled;
  pc.nic.gop.stage1_rate_pps = 8e6 * kScale;
  pc.nic.gop.stage2_rate_pps = 2e6 * kScale;
  pc.nic.gop.pre_meter_rate_pps = 10e6 * kScale;
  pc.nic.gop.auto_install = false;
  Platform platform(pc);

  GwPodConfig cfg;
  cfg.service = ServiceKind::kVpcVpc;
  cfg.data_cores = 2;  // ~2.9 Mpps ceiling = the "20 Mpps" pod, scaled
  cfg.rx_ring_capacity = 256;
  const PodId pod = platform.create_pod(cfg);

  std::vector<TenantSpec> tenants;
  for (Vni v = 1; v <= 4; ++v) {
    TenantSpec spec;
    spec.vni = v;
    spec.profile =
        RateProfile{{NanoTime{0}, static_cast<double>(5 - v) * 1e6 * kScale}};
    if (v == 1) spec.profile.add_step(kBurstAt, 34e6 * kScale);
    tenants.push_back(spec);
  }
  platform.attach_source(
      std::make_unique<TenantTrafficSource>(std::move(tenants), NanoTime{}), pod);

  // Sample per-tenant delivery in 25ms windows.
  std::printf("%-10s", "t(ms)");
  for (int v = 1; v <= 4; ++v) std::printf("  T%d(Mpps)", v);
  std::printf("   note\n");
  std::array<std::uint64_t, 5> prev{};
  const NanoTime window = 25 * kMillisecond;
  for (NanoTime t = window; t <= kEnd; t += window) {
    platform.run_until(t);
    std::printf("%-10lld", static_cast<long long>(t / kMillisecond));
    for (Vni v = 1; v <= 4; ++v) {
      const auto delivered = platform.tenant(v).delivered;
      const double mpps = static_cast<double>(delivered - prev[v]) /
                          (static_cast<double>(window.count()) / 1e9) / 1e6;
      prev[v] = delivered;
      std::printf("  %8.2f", mpps / kScale);  // report at paper scale
    }
    std::printf("%s\n", t == kBurstAt ? "   <- tenant 1 bursts to 34Mpps"
                                      : "");
  }
  const auto& t1 = platform.tenant(1);
  std::printf("tenant1: offered=%llu delivered=%llu rate-limited=%llu\n",
              static_cast<unsigned long long>(t1.offered),
              static_cast<unsigned long long>(t1.delivered),
              static_cast<unsigned long long>(t1.dropped_rate_limit));
}

}  // namespace

int main() {
  print_header("Figure 13: WITHOUT tenant overload rate-limiting",
               "Fig. 13, SIGCOMM'25 Albatross");
  run(/*gop_enabled=*/false);
  print_row("Shape: after the burst all four tenants lose ~half their "
            "packets (CPU drops indiscriminately).");

  print_header("Figure 14: WITH two-stage tenant overload rate-limiting",
               "Fig. 14, SIGCOMM'25 Albatross");
  run(/*gop_enabled=*/true);
  print_row("Shape: tenant 1 is clipped to ~10 Mpps in the NIC pipeline "
            "(8 Mpps stage-1 + 2 Mpps stage-2); tenants 2-4 keep their "
            "full 3/2/1 Mpps.");
  return 0;
}
