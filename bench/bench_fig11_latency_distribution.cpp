// Figure 11: PLB latency distribution in production — four pods A-D at
// 20/17/6/5% load. Paper: >99% of packets below 30us, exponentially
// decaying tail, more 30-100us mass on higher-load pods, and a
// disordering rate around 1e-5 (packets exceeding the 100us PLB
// timeout). Includes the timeout-sweep ablation: shorter reorder
// timeouts raise the disorder rate.
#include "bench_util.hpp"
#include "traffic/microburst.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct PodResult {
  double frac_below_30us;
  double frac_30_100us;
  double disorder_rate;
  double mean_us;
};

PodResult run_pod(double load, std::uint64_t seed,
                  NanoTime timeout = kReorderTimeout) {
  constexpr std::uint16_t kCores = 8;
  PlatformConfig pc;
  pc.nic.gop.auto_install = false;
  Platform platform(pc);
  GwPodConfig cfg;
  cfg.service = ServiceKind::kVpcVpc;
  cfg.data_cores = kCores;
  cfg.seed = seed;
  // Production jitter: rare multi-tens-of-us slow branches survive in
  // small numbers even after the code fixes; keep the default tail.
  PlbEngineConfig na;  // unused default; timeout set via reorder_queues arg
  (void)na;
  const PodId pod = platform.create_pod(cfg, 0, PktDirConfig{}, LbMode::kPlb);
  // Override reorder timeout by re-registering with custom engine.
  PlbEngineConfig plb;
  plb.num_rx_queues = kCores;
  plb.num_reorder_queues = 2;
  plb.reorder_timeout = timeout;
  platform.nic().register_pod(pod, plb, PktDirConfig{}, LbMode::kPlb);

  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false) * 1e6 * kCores;

  PoissonFlowConfig bg;
  bg.num_flows = 5000;
  bg.rate_pps = load * capacity_pps * 0.8;
  bg.seed = seed;
  platform.attach_source(std::make_unique<PoissonFlowSource>(bg), pod);
  // Production-scale pods (44 cores) absorb bursts that would swamp a
  // scaled 8-core pod; keep burst trains proportionally modest so the
  // queueing regime matches the paper's (tail decays exponentially,
  // only jitter outliers cross the 100us timeout).
  MicroburstConfig mb;
  mb.num_flows = 300;
  mb.single_flow_bursts = false;
  mb.mean_burst_packets = 200;
  mb.burst_rate_pps = 10e6;
  mb.mean_burst_gap = nanos_from_double(
      200.0 / (load * capacity_pps * 0.2) * 1e9);
  mb.seed = seed + 1;
  platform.attach_source(std::make_unique<MicroburstSource>(mb), pod);

  platform.run_until(20 * kMillisecond);
  platform.reset_telemetry();
  platform.run_until(220 * kMillisecond);

  const auto& t = platform.telemetry(pod);
  PodResult r;
  r.frac_below_30us = 1.0 - t.wire_latency.fraction_above(30'000);
  r.frac_30_100us = t.wire_latency.fraction_above(30'000) -
                    t.wire_latency.fraction_above(100'000);
  r.disorder_rate = t.disorder_rate();
  r.mean_us = t.wire_latency.mean() / 1e3;
  return r;
}

}  // namespace

int main() {
  print_header("Figure 11: PLB latency distribution across pods A-D",
               "Fig. 11, SIGCOMM'25 Albatross");
  struct Pod {
    const char* name;
    double load;
  };
  const Pod pods[] = {{"A", 0.20}, {"B", 0.17}, {"C", 0.06}, {"D", 0.05}};
  print_row("%-4s %6s %10s %12s %12s %10s", "pod", "load", "<30us",
            "30-100us", "disorder", "mean(us)");
  for (std::size_t i = 0; i < 4; ++i) {
    const auto r = run_pod(pods[i].load, 100 + i);
    print_row("%-4s %5.0f%% %9.2f%% %11.3f%% %12.1e %10.1f", pods[i].name,
              pods[i].load * 100, r.frac_below_30us * 100,
              r.frac_30_100us * 100, r.disorder_rate, r.mean_us);
  }

  print_row("\nAblation: reorder-timeout sweep at 20%% load "
            "(paper default 100us):");
  print_row("%-12s %12s", "timeout(us)", "disorder");
  for (const NanoTime to :
       {20 * kMicrosecond, 50 * kMicrosecond, 100 * kMicrosecond,
        200 * kMicrosecond}) {
    const auto r = run_pod(0.20, 999, to);
    print_row("%-12lld %12.1e", static_cast<long long>((to / 1000).count()),
              r.disorder_rate);
  }
  print_row("\nShape: >99%% under 30us; higher-load pods shift mass into "
            "30-100us; disorder ~1e-5 at the 100us timeout and rises as "
            "the timeout shrinks.");
  return 0;
}
