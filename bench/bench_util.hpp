// Shared experiment-harness helpers for the per-table/figure benches.
// Experiments run the full simulated platform at scaled-down core counts
// and report both the raw scaled measurement and the extrapolation to
// the paper's 2x46-core server, with the paper's published number next
// to it for eyeballing the reproduction.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>

#include "check/trace_gen.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "traffic/flow_gen.hpp"

namespace albatross::bench {

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  (reproduces %s)\n", title.c_str(), paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Measures a pod's saturated throughput: offer well beyond capacity and
/// count wire deliveries over the measurement window.
struct SaturationResult {
  double delivered_mpps = 0.0;
  double per_core_mpps = 0.0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double disorder_rate = 0.0;
};

inline SaturationResult measure_saturation(ServiceKind service,
                                           std::uint16_t cores, LbMode mode,
                                           double offered_pps,
                                           NanoTime duration,
                                           std::uint64_t seed = 1) {
  auto s = SinglePodScenario::make(service, cores, mode);
  s.platform->attach_source(check::make_background_source(offered_pps, seed),
                            s.pod);

  // Warmup fifth, then measure.
  const NanoTime warmup = duration / 5;
  s.platform->run_until(warmup);
  s.platform->reset_telemetry();
  s.platform->run_until(warmup + duration);

  const auto& t = s.platform->telemetry(s.pod);
  SaturationResult r;
  const double secs = static_cast<double>(duration.count()) / 1e9;
  r.delivered_mpps = static_cast<double>(t.delivered) / secs / 1e6;
  r.per_core_mpps = r.delivered_mpps / cores;
  r.mean_latency_us = t.wire_latency.mean() / 1000.0;
  r.p99_latency_us = static_cast<double>(t.wire_latency.quantile(0.99)) / 1e3;
  r.disorder_rate = t.disorder_rate();
  return r;
}

}  // namespace albatross::bench
