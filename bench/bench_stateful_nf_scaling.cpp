// §7 "Stateful NF support with PLB": throughput scaling of write-light
// vs write-heavy stateful NFs under PLB across state placements. The
// paper's findings: write-light scales ~linearly; write-heavy shared
// state collapses (locks or no locks); per-core state and core-group
// spraying are the remedies.
#include "bench_util.hpp"
#include "gateway/stateful_nf.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

double throughput(StatePlacement placement, bool heavy, std::uint16_t cores,
                  std::uint16_t group = 0) {
  StatefulNfConfig cfg;
  cfg.placement = placement;
  cfg.write_heavy = heavy;
  cfg.cores = cores;
  cfg.spray_group_size = group;
  return StatefulNf(cfg).model_throughput_mpps();
}

}  // namespace

int main() {
  print_header("Stateful NF scaling under PLB (write-light vs write-heavy)",
               "§7 'Stateful network function (NF) support with PLB'");

  print_row("%-8s %12s %14s %14s %12s %14s", "cores", "write-light",
            "heavy+locked", "heavy+lockfree", "heavy+local",
            "heavy+group8");
  constexpr std::uint16_t kCoreCounts[] = {1, 4, 8, 16, 32, 44};
  for (const std::uint16_t cores : kCoreCounts) {
    print_row("%-8u %12.2f %14.2f %14.2f %12.2f %14.2f", cores,
              throughput(StatePlacement::kSharedLocked, false, cores),
              throughput(StatePlacement::kSharedLocked, true, cores),
              throughput(StatePlacement::kSharedLockFree, true, cores),
              throughput(StatePlacement::kPerCore, true, cores),
              throughput(StatePlacement::kSharedLocked, true, cores, 8));
  }
  print_row("\nShape (all in Mpps): write-light grows ~linearly with "
            "cores; write-heavy shared state flattens then regresses — "
            "and removing locks barely helps (cache-coherence bound), "
            "the paper's exact observation. Local state restores linear "
            "scaling; spraying across groups of 8 recovers most of it.");

  // Functional spot-check: sessions behave identically across modes.
  StatefulNfConfig cfg;
  cfg.placement = StatePlacement::kPerCore;
  cfg.cores = 4;
  StatefulNf nf(cfg);
  for (std::uint16_t f = 0; f < 100; ++f) {
    for (std::uint16_t c = 0; c < 4; ++c) {
      nf.process(FiveTuple{Ipv4Address{f}, Ipv4Address{1}, f, 80,
                           IpProto::kTcp},
                 CoreId{c}, NanoTime{c * 100});
    }
  }
  print_row("\n[live] per-core NF: %llu packets, %llu sessions "
            "(4 per flow: one per core partition, PLB spraying).",
            static_cast<unsigned long long>(nf.stats().packets),
            static_cast<unsigned long long>(nf.stats().sessions_created));
  return 0;
}
