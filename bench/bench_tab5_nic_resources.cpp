// Table 5: FPGA resource consumption by NIC-pipeline module.
// Paper: basic 42.9% LUT / 38.2% BRAM, overload det 2.0%/0%, PLB
// 12.6%/5.0%, DMA 2.5%/1.3%, sum 60.0%/44.5% of 912,800 LUTs / 265Mb.
// The ledger combines the paper's synthesized LUT fractions with BRAM
// computed structurally from the configured reorder queues, rate-limiter
// tables and payload buffer.
#include "bench_util.hpp"
#include "nic/resources.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Table 5: NIC pipeline FPGA resource consumption",
               "Tab. 5, SIGCOMM'25 Albatross");

  // Production-like NIC: 4 pods x 4 reorder queues, full-size GOP
  // tables, a 2MB payload buffer for header-split jumbos.
  PlbEngineConfig plb;
  plb.num_reorder_queues = 4;
  std::vector<std::unique_ptr<PlbEngine>> engines;
  std::vector<const PlbEngine*> engine_ptrs;
  for (int i = 0; i < 4; ++i) {
    engines.push_back(std::make_unique<PlbEngine>(plb));
    engine_ptrs.push_back(engines.back().get());
  }
  TenantRateLimiter limiter;
  FpgaResourceModel model;
  const auto rows = model.ledger(engine_ptrs, limiter, 2ull << 20);

  struct Paper {
    double lut, bram;
  };
  const Paper paper[] = {{42.9, 38.2}, {2.0, 0.0}, {12.6, 5.0},
                         {2.5, 1.3},   {60.0, 44.5}};

  print_row("%-16s %9s %9s %12s %12s %16s", "module", "LUT%", "BRAM%",
            "paperLUT%", "paperBRAM%", "BRAM-bits(struct)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row("%-16s %9.1f %9.1f %12.1f %12.1f %16llu",
              rows[i].name.c_str(), rows[i].lut_fraction * 100,
              rows[i].bram_fraction * 100, paper[i].lut, paper[i].bram,
              static_cast<unsigned long long>(rows[i].bram_bits_structural));
  }
  print_row("\nPLB structural BRAM: 16 queues x 4K entries x "
            "(FIFO 10B + BITMAP 5B + BUF desc 8B); GOP SRAM ~%.1f MB "
            "(paper: 2 MB for 1M tenants).",
            static_cast<double>(limiter.sram_bytes()) / 1e6);
  return 0;
}
