// BGP proxy scaling (Fig. 7 / §5): the uplink switch safely supports 64
// BGP peers; 32 servers x m pods each would need 32m direct eBGP peers.
// The bench measures (a) switch restart convergence time vs peer count —
// the blow-up past the safe threshold — and (b) the peer count with and
// without the proxy at various pod densities.
#include "bench_util.hpp"
#include "bgp/proxy.hpp"
#include "bgp/switch_model.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

/// Builds a switch with `peers` gateway sessions (each advertising one
/// VIP), restarts it and returns the time until every session is
/// re-established and every route re-learned.
double convergence_seconds(std::size_t peers) {
  EventLoop loop;
  UplinkSwitch sw(loop, SwitchConfig{});
  std::vector<std::unique_ptr<BgpSession>> gws;
  for (std::size_t i = 0; i < peers; ++i) {
    gws.push_back(std::make_unique<BgpSession>(
        loop,
        BgpSessionConfig{.asn = 64512,
                         .router_id = 100u + static_cast<std::uint32_t>(i)}));
    sw.add_peer(*gws.back(), Nanos{0});
    gws.back()->announce(
        RoutePrefix{Ipv4Address{0x64400000u +
                                (static_cast<std::uint32_t>(i) << 8)},
                    24},
        1, Nanos{0});
  }
  loop.run_until(240 * kSecond);  // initial convergence
  sw.restart(loop.now());
  const NanoTime t0 = loop.now();
  while (loop.now() - t0 < 3600 * kSecond) {
    loop.run_until(loop.now() + kSecond);
    if (sw.established_count() == peers && sw.routes_learned() == peers) {
      return static_cast<double>((loop.now() - t0).count()) / 1e9;
    }
  }
  return -1.0;  // did not converge within an hour
}

}  // namespace

int main() {
  print_header("BGP proxy: switch peer scaling and convergence",
               "Fig. 7 / §5, SIGCOMM'25 Albatross");

  print_row("%-8s %22s", "peers", "restart convergence(s)");
  for (const std::size_t peers : {16, 32, 64, 96, 128, 192}) {
    const double s = convergence_seconds(peers);
    print_row("%-8zu %22.1f%s", peers, s,
              peers > 64 ? "   <- beyond the safe threshold" : "");
  }

  print_row("\nPeer-count arithmetic (32 servers per switch):");
  print_row("%-14s %18s %18s", "pods/server", "direct peers",
            "with dual proxy");
  for (const int m : {2, 4, 6, 8}) {
    print_row("%-14d %18d %18d", m, 32 * m, 32 * 2);
  }

  // Live: one server with 4 pods behind a proxy -> 1 switch peer.
  EventLoop loop;
  UplinkSwitch sw(loop, SwitchConfig{});
  BgpProxy proxy(loop, sw, BgpProxyConfig{}, NanoTime{});
  std::vector<std::unique_ptr<BgpSession>> pods;
  for (int i = 0; i < 4; ++i) {
    pods.push_back(std::make_unique<BgpSession>(
        loop,
        BgpSessionConfig{.asn = 64600,
                         .router_id = 300u + static_cast<std::uint32_t>(i)}));
    proxy.attach_pod(*pods.back(), Nanos{0});
    pods.back()->announce(
        RoutePrefix{Ipv4Address{0x64650000u +
                                (static_cast<std::uint32_t>(i) << 8)},
                    24},
        7, Nanos{0});
  }
  loop.run_until(60 * kSecond);
  print_row("\n[live] 4 GW pods behind one proxy: switch peers=%zu, "
            "routes learned=%zu (paper: peers reduced to 1/m).",
            sw.peer_count(), sw.routes_learned());
  return 0;
}
