// Ablation (§7 "Performance optimization with PLB meta header"): where
// to attach the PLB meta — packet head, mbuf private area, or packet
// tail. Head insertion collides with encap/decap (headroom churn on
// every packet); the private-area variant costs an extra copy the paper
// measured at -33.6% forwarding performance; tail attachment is free
// because gateways never touch packet tails. This bench measures real
// per-packet costs of the three strategies on real buffers.
#include <chrono>

#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

constexpr int kPackets = 200'000;
constexpr std::size_t kFrame = 256;

double ns_per_pkt(void (*op)(Packet&, const PlbMeta&)) {
  auto pkt = Packet::make_synthetic(FiveTuple{}, 1, kFrame);
  PlbMeta meta;
  meta.psn = 42;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPackets; ++i) {
    op(*pkt, meta);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         kPackets;
}

// Strategy 1: tail attachment (production choice).
void tail_strategy(Packet& pkt, const PlbMeta& meta) {
  pkt.attach_plb_meta(meta);
  PlbMeta out;
  pkt.strip_plb_meta(out);
}

// Strategy 2: head insertion — every gateway encap/decap now has to
// slide the meta out of the way (modelled as the memmove the headroom
// churn costs on the header stack).
void head_strategy(Packet& pkt, const PlbMeta& meta) {
  std::uint8_t* p = pkt.prepend(PlbMeta::kWireSize);
  meta.serialize(p);
  // Every encap/decap in the gateway now has to shuffle the 128-byte
  // header block around the meta (modelled as one extra block move).
  std::uint8_t tmp[128];
  std::memcpy(tmp, pkt.data() + PlbMeta::kWireSize, sizeof tmp);
  std::memcpy(pkt.data() + PlbMeta::kWireSize, tmp, sizeof tmp);
  pkt.adj(PlbMeta::kWireSize);  // strip the head meta again
}

// Strategy 3: mbuf private room — requires copying the packet data into
// a fresh buffer whose private area carries the meta (the DPDK variant
// the paper measured at -33.6%).
void private_room_strategy(Packet& pkt, const PlbMeta& meta) {
  static thread_local Packet scratch(kFrame + Packet::kTailroomSlack);
  scratch.assign(pkt.bytes());  // the extra data copy
  std::uint8_t priv[PlbMeta::kWireSize];
  meta.serialize(priv);
  PlbMeta out;
  PlbMeta::deserialize(priv, out);
}

}  // namespace

int main() {
  print_header("Ablation: PLB meta placement (head vs private vs tail)",
               "§7 'Performance optimization with PLB meta header'");
  const double tail = ns_per_pkt(tail_strategy);
  const double head = ns_per_pkt(head_strategy);
  const double priv = ns_per_pkt(private_room_strategy);
  print_row("%-28s %12s %16s", "strategy", "ns/packet", "vs tail");
  print_row("%-28s %12.1f %15.1f%%", "tail attachment (ours)", tail, 0.0);
  print_row("%-28s %12.1f %15.1f%%", "head insertion", head,
            (head - tail) / tail * 100);
  print_row("%-28s %12.1f %15.1f%%", "mbuf private room (copy)", priv,
            (priv - tail) / tail * 100);
  print_row("\nShape: tail placement is cheapest; the private-room copy "
            "variant costs the most (paper measured -33.6%% forwarding "
            "performance end to end).");
  return 0;
}
