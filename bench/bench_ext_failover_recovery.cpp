// Extension: failover & recovery timing under deterministic chaos.
// The paper's availability story (BFD detection §4.3, BGP-proxy VIP
// withdrawal Fig. 7, 10 s container elasticity §7/Tab. 6) is exercised
// end-to-end by the chaos subsystem: crash a gateway pod under live
// traffic and measure detection latency, blackhole duration, packets
// lost, and total time to a fully recovered replacement — then sweep
// the transient fault kinds and compare their recovery envelopes.
#include "bench_util.hpp"
#include "chaos/recovery.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct CrashOutcome {
  IncidentRecord incident;
  std::uint64_t post_cutover_loss = 0;
  double rate_pps = 0.0;
};

CrashOutcome run_pod_crash(std::uint16_t gateways, double rate_pps) {
  ChaosHarnessConfig cfg;
  cfg.gateways = gateways;
  cfg.servers = std::max<std::uint16_t>(2, gateways);
  GatewayChaosHarness harness(cfg);
  for (std::uint16_t g = 0; g < gateways; ++g) {
    harness.attach_background_traffic(g, rate_pps, 200, 1 + g);
  }
  RecoveryController controller(harness);
  controller.arm();

  FaultPlan plan;
  plan.events.push_back({8 * kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);
  harness.platform().run_until(25 * kSecond);

  CrashOutcome out;
  out.rate_pps = rate_pps;
  out.incident = controller.incidents().at(0);
  const auto mark = harness.platform().telemetry(harness.pod(0)).blackholed;
  harness.platform().run_until(30 * kSecond);
  out.post_cutover_loss =
      harness.platform().telemetry(harness.pod(0)).blackholed - mark;
  return out;
}

IncidentRecord run_transient(FaultKind kind, NanoTime duration) {
  ChaosHarnessConfig cfg;
  cfg.gateways = 1;
  GatewayChaosHarness harness(cfg);
  harness.attach_background_traffic(0, 50'000.0, 200);
  RecoveryController controller(harness);
  controller.arm();
  FaultPlan plan;
  plan.events.push_back({8 * kSecond, kind, 0, duration, 0.0});
  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);
  harness.platform().run_until(20 * kSecond);
  return controller.incidents().empty() ? IncidentRecord{}
                                        : controller.incidents().at(0);
}

}  // namespace

int main() {
  print_header("Extension: failover & recovery timing (chaos subsystem)",
               "§4.3 BFD + Fig. 7 BGP proxy + §7 10 s elasticity");

  print_row("%-10s %12s %12s %12s %12s %10s", "gateways", "detect ms",
            "blackhole ms", "lost pkts", "recover s", "post-loss");
  bool ok = true;
  constexpr std::uint16_t kGatewayCounts[] = {1, 2, 4};
  for (const std::uint16_t gateways : kGatewayCounts) {
    const auto r = run_pod_crash(gateways, 50'000.0);
    print_row("%-10u %12.1f %12.1f %12llu %12.2f %10llu", gateways,
              static_cast<double>(r.incident.detect_latency().count()) / 1e6,
              static_cast<double>(r.incident.blackhole_ns().count()) / 1e6,
              static_cast<unsigned long long>(r.incident.packets_lost),
              static_cast<double>(r.incident.recovery_ns().count()) / 1e9,
              static_cast<unsigned long long>(r.post_cutover_loss));
    ok &= r.incident.recovered && r.incident.redeployed;
    ok &= r.incident.recovery_ns() < 40 * kSecond;
    ok &= r.post_cutover_loss == 0;
  }

  print_row("\n%-18s %12s %12s %12s %10s", "transient fault", "detect ms",
            "recover s", "lost pkts", "redeploy");
  for (const auto& [kind, duration] :
       {std::pair{FaultKind::kLinkFlap, 500 * kMillisecond},
        std::pair{FaultKind::kBfdTimeout, 500 * kMillisecond},
        std::pair{FaultKind::kBgpReset, 0 * kMillisecond}}) {
    const auto inc = run_transient(kind, duration);
    if (inc.detected_at == NanoTime{0}) {
      // Control-plane-only faults never trip BFD: that IS the result
      // (the paper's control/data decoupling).
      print_row("%-18s %12s %12s %12s %10s",
                std::string(fault_kind_name(kind)).c_str(), "-", "-", "-",
                "no incident");
      continue;
    }
    print_row("%-18s %12.1f %12.2f %12llu %10s",
              std::string(fault_kind_name(kind)).c_str(),
              static_cast<double>(inc.detect_latency().count()) / 1e6,
              static_cast<double>(inc.recovery_ns().count()) / 1e9,
              static_cast<unsigned long long>(inc.packets_lost),
              inc.redeployed ? "yes" : "no");
    ok &= inc.recovered && !inc.redeployed;
  }

  print_row("\nShape: detection is the BFD envelope (3 x 50 ms), the "
            "blackhole ends milliseconds later when the proxies pull the "
            "VIP, and crash recovery is dominated by the 10 s pod start "
            "plus validation — well inside the 40 s bound, with zero "
            "loss after cutover.");
  if (!ok) {
    print_row("BOUND VIOLATION: see rows above");
    return 1;
  }
  return 0;
}
