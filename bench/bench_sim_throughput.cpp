// bench_sim_throughput: hot-path throughput of the simulator itself —
// simulated packets per WALL second, not modelled Mpps. This is the
// gating bench for the burst redesign (docs/BURST_API.md): it runs the
// same saturated single-pod workload twice, once with per-packet events
// (rx_burst=1, ingress_batch=1 — the pre-redesign activation pattern)
// and once with 32-packet bursts, and emits BENCH_sim_throughput.json
// for the CI bench-smoke job to diff against the committed baseline.
//
// Usage: bench_sim_throughput [--quick] [--json PATH]
//                             [--check-against BASELINE.json]
//                             [--max-regression FRAC]
//   --quick           50 ms simulated instead of 200 ms (CI smoke)
//   --json            output path (default BENCH_sim_throughput.json)
//   --check-against   committed baseline JSON; exits 1 when the burst
//                     pkts/wall-s falls more than FRAC below it
//   --max-regression  regression tolerance, default 0.20
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "common/json.hpp"

namespace {

using namespace albatross;

struct RunResult {
  std::uint64_t packets = 0;  ///< offered packets (every one simulated)
  std::uint64_t events = 0;   ///< event-loop activations
  double wall_seconds = 0.0;
  double pkts_per_wall_second = 0.0;
};

RunResult run_workload(std::size_t rx_burst, std::size_t ingress_batch,
                       NanoTime duration) {
  PlatformConfig pc;
  pc.tenants = 200;
  pc.routes = 20'000;
  pc.tables_data_cores = 8;
  pc.ingress_batch = ingress_batch;
  Platform platform(pc);

  GwPodConfig gp;
  gp.service = ServiceKind::kVpcVpc;
  gp.data_cores = 8;
  gp.rx_burst = rx_burst;
  const PodId pod = platform.create_pod(gp);

  // ~80% of the 8-core pod's capacity: rings stay busy so every layer
  // (pump, GOP, PLB, DMA, pod run loop, reorder, TX) is on the path.
  platform.attach_source(check::make_background_source(9e6, /*seed=*/1),
                         pod);

  const auto start = std::chrono::steady_clock::now();
  platform.run_until(duration);
  const auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.packets = platform.telemetry(pod).offered;
  r.events = platform.loop().events_processed();
  r.wall_seconds = std::chrono::duration<double>(stop - start).count();
  if (r.wall_seconds > 0.0) {
    r.pkts_per_wall_second =
        static_cast<double>(r.packets) / r.wall_seconds;
  }
  return r;
}

void print_result(const char* name, const RunResult& r) {
  bench::print_row("  %-8s %9llu pkts  %8llu kevents  %6.2fs wall  %8.0f pkts/wall-s",
                   name, static_cast<unsigned long long>(r.packets),
                   static_cast<unsigned long long>(r.events / 1000),
                   r.wall_seconds, r.pkts_per_wall_second);
}

void write_json(const std::string& path, bool quick, const RunResult& scalar,
                const RunResult& burst) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sim_throughput: cannot write %s\n",
                 path.c_str());
    return;
  }
  const double speedup = scalar.pkts_per_wall_second > 0.0
                             ? burst.pkts_per_wall_second /
                                   scalar.pkts_per_wall_second
                             : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f,
               "  \"workload\": {\"service\": \"VPC-VPC\", \"cores\": 8, "
               "\"offered_pps\": 9e6, \"sim_ms\": %d},\n",
               quick ? 50 : 200);
  const auto emit = [f](const char* name, const RunResult& r, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"packets\": %llu, \"events\": %llu, "
                 "\"wall_seconds\": %.4f, \"pkts_per_wall_second\": %.0f}%s\n",
                 name, static_cast<unsigned long long>(r.packets),
                 static_cast<unsigned long long>(r.events), r.wall_seconds,
                 r.pkts_per_wall_second, comma ? "," : ",");
  };
  emit("scalar", scalar, true);
  emit("burst", burst, true);
  std::fprintf(f, "  \"speedup_burst_vs_scalar\": %.2f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Regression gate for CI bench-smoke: compares the burst-config
/// throughput against a committed baseline JSON. Returns 0 on pass,
/// 1 on regression or unreadable baseline. Wall-clock throughput is
/// machine-dependent, so the tolerance is generous (20% default) — the
/// gate exists to catch order-of-magnitude hot-path regressions (an
/// accidental per-packet allocation or event), not 5% jitter.
int check_against(const std::string& baseline_path, double max_regression,
                  const RunResult& burst) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "bench_sim_throughput: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto parsed = json_parse(ss.str());
  if (!parsed || !parsed->is_object() || !(*parsed)["burst"].is_object()) {
    std::fprintf(stderr,
                 "bench_sim_throughput: baseline %s is not a bench JSON\n",
                 baseline_path.c_str());
    return 1;
  }
  const double base =
      (*parsed)["burst"].get_number("pkts_per_wall_second", 0.0);
  const double floor = base * (1.0 - max_regression);
  const bool ok = burst.pkts_per_wall_second >= floor;
  bench::print_row(
      "  smoke gate: burst %.0f pkts/wall-s vs baseline %.0f "
      "(floor %.0f, tolerance %.0f%%) -> %s",
      burst.pkts_per_wall_second, base, floor, max_regression * 100.0,
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_sim_throughput.json";
  std::string baseline_path;
  double max_regression = 0.20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::strtod(argv[++i], nullptr);
    }
  }
  const NanoTime duration = (quick ? 50 : 200) * kMillisecond;

  bench::print_header("Simulator hot-path throughput (pkts / wall-second)",
                      "the burst-API redesign gate, docs/BURST_API.md");
  const RunResult scalar = run_workload(/*rx_burst=*/1, /*ingress_batch=*/1,
                                        duration);
  print_result("scalar", scalar);
  const RunResult burst = run_workload(/*rx_burst=*/32, /*ingress_batch=*/32,
                                       duration);
  print_result("burst32", burst);
  if (scalar.pkts_per_wall_second > 0.0) {
    bench::print_row("  burst/scalar speedup: %.2fx",
                     burst.pkts_per_wall_second /
                         scalar.pkts_per_wall_second);
  }
  write_json(json_path, quick, scalar, burst);
  bench::print_row("  wrote %s", json_path.c_str());
  if (!baseline_path.empty()) {
    return check_against(baseline_path, max_regression, burst);
  }
  return 0;
}
