// Figure 10: multi-core utilisation balance in production: stddev of
// per-core CPU utilisation sampled over time, PLB vs RSS, at ~20% load
// with micro-bursts. The paper observes RSS's stddev fluctuating far
// above PLB's because a micro-burst can push one RSS core +50% in under
// a second while PLB spreads it over tens of cores.
#include "bench_util.hpp"
#include "traffic/microburst.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct UtilSeries {
  RunningStats stddev_over_time;  // distribution of per-sample stddevs
  double max_single_core = 0.0;
};

UtilSeries run(LbMode mode) {
  constexpr std::uint16_t kCores = 8;
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores, mode);
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, mode == LbMode::kRss) *
      1e6 * kCores;

  PoissonFlowConfig bg;
  bg.num_flows = 4000;
  bg.rate_pps = 0.14 * capacity_pps;
  bg.seed = 13;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  MicroburstConfig mb;
  mb.num_flows = 200;
  mb.mean_burst_packets = 1500;
  mb.burst_rate_pps = 15e6;
  mb.mean_burst_gap = 8 * kMillisecond;  // ~6% extra average load
  mb.seed = 17;
  s.platform->attach_source(std::make_unique<MicroburstSource>(mb), s.pod);

  // Sample per-core utilisation every 5ms over 200ms (stands in for the
  // paper's one-week sampling).
  UtilSeries out;
  std::vector<NanoTime> prev(kCores, NanoTime{});
  const NanoTime window = 5 * kMillisecond;
  for (int sample = 0; sample < 40; ++sample) {
    s.platform->run_until((sample + 1) * window);
    RunningStats per_core;
    for (std::uint16_t i = 0; i < kCores; ++i) {
      const CoreId c{i};
      const NanoTime busy = s.platform->pod(s.pod).core_busy_ns(c);
      const double util =
          static_cast<double>((busy - prev[i]).count()) / static_cast<double>(window.count());
      prev[i] = busy;
      per_core.add(util * 100.0);
      out.max_single_core = std::max(out.max_single_core, util * 100.0);
    }
    out.stddev_over_time.add(per_core.stddev());
  }
  return out;
}

}  // namespace

int main() {
  print_header(
      "Figure 10: stddev of per-core utilisation over time (20% load)",
      "Fig. 10, SIGCOMM'25 Albatross");
  const auto rss = run(LbMode::kRss);
  const auto plb = run(LbMode::kPlb);
  print_row("%-6s %16s %16s %18s", "mode", "mean stddev(pp)",
            "max stddev(pp)", "max 1-core util");
  print_row("%-6s %16.2f %16.2f %17.0f%%", "RSS",
            rss.stddev_over_time.mean(), rss.stddev_over_time.max(),
            rss.max_single_core);
  print_row("%-6s %16.2f %16.2f %17.0f%%", "PLB",
            plb.stddev_over_time.mean(), plb.stddev_over_time.max(),
            plb.max_single_core);
  print_row("\nShape: RSS's stddev fluctuates well above PLB's; "
            "micro-bursts spike a single RSS core (paper: +50%% in <1s) "
            "while PLB keeps cores within a few points of each other.");
  return 0;
}
