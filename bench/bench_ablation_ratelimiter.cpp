// Ablation: the two-stage tenant rate limiter vs the naive design.
//  (a) SRAM: per-tenant meters for 1M tenants vs the 4K+4K+2x128 design
//      (the paper's 100x / "2MB" headline);
//  (b) the §4.3 false-positive anatomy, with engineered collisions:
//      an innocent tenant is pushed into stage 2 by a color_table
//      (VNI % 4K) collision, then starved there by a dominant tenant
//      occupying the same hashed meter_table slot — and finally rescued
//      by installing the dominant into pre_check/pre_meter.
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "nic/rate_limiter.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

RateLimiterConfig cfg_scaled() {
  RateLimiterConfig cfg;
  cfg.stage1_rate_pps = 8000;
  cfg.stage2_rate_pps = 2000;
  cfg.pre_meter_rate_pps = 10000;
  cfg.auto_install = false;
  return cfg;
}

/// Innocent offers 9k pps (under the 10k total budget but needing stage
/// 2), alongside a color-table partner at 8k (drains the shared stage-1
/// bucket) and optionally a meter-colliding dominant at 40k pps.
double innocent_delivery(bool color_collision, bool meter_collision,
                         bool install_dominant) {
  const RateLimiterConfig cfg = cfg_scaled();
  TenantRateLimiter rl(cfg);

  const Vni innocent = 50;
  // Color partner: same VNI % 4096, different meter slot.
  Vni partner = innocent + 4096;
  while (mix64(partner) % cfg.meter_entries ==
         mix64(innocent) % cfg.meter_entries) {
    partner += 4096;
  }
  // Dominant: same meter slot, different color slot.
  Vni dominant = innocent + 1;
  while (mix64(dominant) % cfg.meter_entries !=
             mix64(innocent) % cfg.meter_entries ||
         dominant % cfg.color_entries == innocent % cfg.color_entries) {
    ++dominant;
  }
  if (install_dominant) rl.install_heavy_hitter(dominant, Nanos{0});

  std::uint64_t pass = 0, total = 0;
  // Interleaved offering over 2 simulated seconds.
  NanoTime next_innocent = Nanos{0}, next_partner = Nanos{0}, next_dominant = Nanos{0};
  const NanoTime gi = nanos_from_double(1e9 / 9000);
  const NanoTime gp = nanos_from_double(1e9 / 8000);
  const NanoTime gd = nanos_from_double(1e9 / 40000);
  for (NanoTime t = NanoTime{0}; t < 2 * kSecond; t += NanoTime{10'000}) {
    if (color_collision && t >= next_partner) {
      rl.admit(partner, t);
      next_partner += gp;
    }
    if (meter_collision && t >= next_dominant) {
      rl.admit(dominant, t);
      next_dominant += gd;
    }
    if (t >= next_innocent) {
      const auto v = rl.admit(innocent, t);
      if (v == RlVerdict::kPass || v == RlVerdict::kPassMarked) ++pass;
      ++total;
      next_innocent += gi;
    }
  }
  return static_cast<double>(pass) / static_cast<double>(total);
}

}  // namespace

int main() {
  print_header("Ablation: two-stage rate limiter vs naive per-tenant meters",
               "§4.3, SIGCOMM'25 Albatross");

  TenantRateLimiter rl;
  print_row("SRAM, naive 1M per-tenant meters : %8.1f MB",
            static_cast<double>(TenantRateLimiter::naive_sram_bytes(1'000'000)) /
                1e6);
  print_row("SRAM, two-stage (4K+4K+2x128)    : %8.1f MB   (paper: 2 MB, "
            "100x reduction)",
            static_cast<double>(rl.sram_bytes()) / 1e6);
  print_row("reduction factor                 : %8.0fx",
            static_cast<double>(
                TenantRateLimiter::naive_sram_bytes(1'000'000)) /
                static_cast<double>(rl.sram_bytes()));

  print_row("\nInnocent tenant at 9k pps (limits: stage1 8k + stage2 2k):");
  print_row("%-52s %10s", "scenario", "delivered");
  print_row("%-52s %9.1f%%", "alone (no collisions)",
            innocent_delivery(false, false, false) * 100);
  print_row("%-52s %9.1f%%", "+ color_table collision (pushed into stage 2)",
            innocent_delivery(true, false, false) * 100);
  print_row("%-52s %9.1f%%",
            "+ meter_table collision with 40k-pps dominant",
            innocent_delivery(true, true, false) * 100);
  print_row("%-52s %9.1f%%",
            "  ... after installing dominant into pre_meter",
            innocent_delivery(true, true, true) * 100);
  print_row("\nShape: a color_table collision costs the innocent its "
            "coarse-stage share (inherent to the 4K direct-indexed first "
            "stage); the real harm is the meter_table collision, where a "
            "dominant tenant starves the shared fine-stage bucket. "
            "Installing the dominant into pre_meter (the sampling path "
            "does this automatically within ~1s) removes exactly that "
            "starvation — the paper's remediation.");
  return 0;
}
