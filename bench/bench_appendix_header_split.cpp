// Appendix A: header-payload split. For jumbo frames (8.5KB payloads)
// the PCIe link between the FPGA and the CPU — not the CPU — becomes
// the bottleneck. Split mode keeps payloads in the NIC's payload buffer
// and ships only 128B headers across PCIe, then reassembles at the
// egress deparser. The bench drives jumbo traffic at both settings and
// reports wire throughput and actual PCIe bytes moved.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct SplitOutcome {
  double wire_gbps;
  double pcie_gbps;     // RX-direction DMA bytes
  double delivered_rate;
  std::uint64_t reassembled;
  std::uint64_t headers_lost;
};

SplitOutcome run(bool split, double offered_pps, std::size_t frame_bytes) {
  constexpr std::uint16_t kCores = 8;
  PlatformConfig pc;
  // Model one VF pair's PCIe share so the bottleneck is visible at a
  // simulable rate: 20 Gbps.
  pc.nic.dma_rx.bandwidth_gbps = 20.0;
  pc.nic.dma_tx.bandwidth_gbps = 20.0;
  pc.nic.gop.auto_install = false;
  Platform platform(pc);
  GwPodConfig gp;
  gp.service = ServiceKind::kVpcVpc;
  gp.data_cores = kCores;
  PktDirConfig dir;
  dir.data_delivery =
      split ? DeliveryMode::kHeaderOnly : DeliveryMode::kWholePacket;
  const PodId pod = platform.create_pod(gp, 0, dir, LbMode::kPlb);

  PoissonFlowConfig traffic;
  traffic.num_flows = 2000;
  traffic.rate_pps = offered_pps;
  traffic.packet_bytes = frame_bytes;
  traffic.seed = 43;
  platform.attach_source(std::make_unique<PoissonFlowSource>(traffic), pod);

  const NanoTime duration = 50 * kMillisecond;
  platform.run_until(duration);

  SplitOutcome r;
  const auto& t = platform.telemetry(pod);
  const double secs = static_cast<double>(duration.count()) / 1e9;
  r.wire_gbps = static_cast<double>(t.delivered) *
                static_cast<double>(frame_bytes) * 8 / secs /
                1e9;
  // PCIe accounting is inside the per-pod DMA channels; approximate the
  // RX direction from delivered packets x bytes-after-split.
  const double pcie_bytes_per_pkt =
      split ? kHeaderSplitBytes + PlbMeta::kWireSize
            : static_cast<double>(frame_bytes) + PlbMeta::kWireSize;
  r.pcie_gbps = static_cast<double>(t.offered) * pcie_bytes_per_pkt * 8 /
                secs / 1e9;
  r.delivered_rate = t.offered ? static_cast<double>(t.delivered) /
                                     static_cast<double>(t.offered)
                               : 0.0;
  r.reassembled = platform.nic().basic().stats().reassembled;
  r.headers_lost =
      platform.nic().basic().stats().headers_dropped_payload_gone;
  return r;
}

}  // namespace

int main() {
  print_header("Appendix A: header-payload split for jumbo frames",
               "App. A + §3.2 'header-only delivery'");
  constexpr std::size_t kJumbo = 8500;
  print_row("%-8s %10s %12s %14s %10s %12s", "split", "offered",
            "wire Gbps", "PCIe-RX Gbps", "delivery", "reassembled");
  for (const double mpps : {0.15, 0.3, 0.6}) {
    for (const bool split : {false, true}) {
      const auto r = run(split, mpps * 1e6, kJumbo);
      print_row("%-8s %7.2fMpps %12.1f %14.1f %9.1f%% %12llu",
                split ? "on" : "off", mpps, r.wire_gbps, r.pcie_gbps,
                r.delivered_rate * 100,
                static_cast<unsigned long long>(r.reassembled));
    }
  }
  print_row("\nShape: whole-packet mode hits the PCIe wall (~20 Gbps "
            "here; 0.29 Mpps of jumbos) and loses packets beyond it; "
            "split mode moves only headers over PCIe (~70x fewer bytes) "
            "and keeps delivering jumbos at wire rate until the CPU "
            "becomes the limit — the App. A claim.");
  return 0;
}
