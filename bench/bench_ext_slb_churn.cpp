// Extension: SLB (L4 LB gateway role) under backend churn. The design
// goals an operator cares about:
//   1. consistent hashing remaps only ~1/N of NEW-connection space when
//      a backend fails (naive mod-N hashing remaps (N-1)/N);
//   2. per-core session stickiness keeps EXISTING connections glued to
//      their backend through the churn (no mid-connection resets).
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "gateway/slb.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

FiveTuple client(std::uint32_t id) {
  return FiveTuple{Ipv4Address{0x0b000000u + id},
                   Ipv4Address::from_octets(100, 64, 0, 1),
                   static_cast<std::uint16_t>(1024 + (id * 7) % 60000), 443,
                   IpProto::kTcp};
}

}  // namespace

int main() {
  print_header("Extension: SLB backend churn (consistent hash + sessions)",
               "SLB gateway role (Fig. 15) / §7 stateful NFs");

  constexpr int kBackends = 8;
  constexpr std::uint32_t kClients = 40'000;

  // --- 1. New-connection remap fraction: consistent vs mod-N ----------
  ConsistentHashRing ring(64);
  for (std::uint16_t b = 0; b < kBackends; ++b) ring.add(b, 1);
  std::vector<std::uint16_t> before(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    before[c] = *ring.owner(mix64(c));
  }
  ring.remove(3);
  std::uint32_t moved = 0;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    if (*ring.owner(mix64(c)) != before[c]) ++moved;
  }
  std::uint32_t mod_moved = 0;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    const auto old_mod = static_cast<std::uint16_t>(mix64(c) % kBackends);
    const auto new_mod =
        static_cast<std::uint16_t>(mix64(c) % (kBackends - 1));
    if (old_mod != new_mod) ++mod_moved;
  }
  print_row("new-connection keyspace remapped after 1/%d backend loss:",
            kBackends);
  print_row("  consistent hash : %5.1f%%   (ideal: %.1f%%)",
            100.0 * moved / kClients, 100.0 / kBackends);
  print_row("  naive mod-N     : %5.1f%%", 100.0 * mod_moved / kClients);

  // --- 2. Established connections survive churn via sessions ----------
  SlbService slb(Ipv4Address::from_octets(100, 64, 0, 1), 443, 8);
  for (int b = 0; b < kBackends; ++b) {
    slb.add_backend(
        Backend{Ipv4Address{0x0a010000u + static_cast<std::uint32_t>(b)},
                8080, 1, true});
  }
  constexpr std::uint32_t kLive = 20'000;
  std::vector<std::uint16_t> pinned(kLive);
  for (std::uint32_t c = 0; c < kLive; ++c) {
    pinned[c] = *slb.forward(client(c), static_cast<CoreId>(c % 8), Nanos{0},
                             0x02 /*SYN*/);
  }
  slb.set_healthy(3, false);  // backend 3 dies
  std::uint32_t resets = 0, draining = 0;
  for (std::uint32_t c = 0; c < kLive; ++c) {
    const auto b =
        *slb.forward(client(c), static_cast<CoreId>(c % 8), kSecond, 0x10);
    if (b != pinned[c]) ++resets;
    if (b == 3) ++draining;
  }
  print_row("\nestablished connections after the failure:");
  print_row("  moved to another backend (broken) : %u", resets);
  print_row("  still pinned (incl. %u draining to the dead backend "
            "until their sessions close): %u",
            draining, kLive - resets);
  print_row("\nShape: consistent hashing keeps new-connection churn at "
            "~1/N while naive hashing reshuffles ~everything; session "
            "stickiness means zero established connections reset (the "
            "dead backend's flows drain out via FIN/timeout, the L4-LB "
            "contract).");
  return 0;
}
