// Figure 9: P99 latency vs gateway load, PLB vs RSS, under realistic
// microburst traffic. Paper: indistinguishable below ~75% load; above
// it, RSS's transiently-overloaded cores inflate the tail while PLB
// absorbs bursts across all cores.
#include "bench_util.hpp"
#include "traffic/microburst.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

double p99_at_load(LbMode mode, double load) {
  constexpr std::uint16_t kCores = 4;
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores, mode);
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, mode == LbMode::kRss) *
      1e6 * kCores;

  // Split the offered load: a smooth Poisson baseline plus microbursts
  // carrying ~30% of the volume (real cloud traffic is bursty, §6).
  PoissonFlowConfig bg;
  bg.num_flows = 5000;
  bg.zipf_alpha = 1.05;  // heavy skew: a few flows dominate (RSS's bane)
  bg.rate_pps = load * capacity_pps * 0.7;
  bg.seed = 3;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  // Bursts span many flows (incast-style): RSS spreads them across
  // cores statistically, so low-load tails match PLB; what kills RSS at
  // high load is the skewed background concentrating on hot cores.
  MicroburstConfig mb;
  mb.num_flows = 2000;
  mb.single_flow_bursts = false;
  mb.mean_burst_packets = 300;
  mb.burst_rate_pps = 20e6;  // line-rate trains
  const double burst_pps = load * capacity_pps * 0.3;
  mb.mean_burst_gap = nanos_from_double(
      static_cast<double>(mb.mean_burst_packets) / burst_pps * 1e9);
  mb.seed = 7;
  s.platform->attach_source(std::make_unique<MicroburstSource>(mb), s.pod);

  s.platform->run_until(20 * kMillisecond);
  s.platform->reset_telemetry();
  s.platform->run_until(100 * kMillisecond);
  return static_cast<double>(
             s.platform->telemetry(s.pod).wire_latency.quantile(0.99)) /
         1e3;
}

}  // namespace

int main() {
  print_header("Figure 9: P99 latency vs gateway load (microburst mix)",
               "Fig. 9, SIGCOMM'25 Albatross");
  print_row("%-8s %12s %12s", "load", "RSS p99(us)", "PLB p99(us)");
  for (const double load : {0.3, 0.5, 0.65, 0.75, 0.85, 0.95}) {
    print_row("%6.0f%% %12.1f %12.1f", load * 100,
              p99_at_load(LbMode::kRss, load),
              p99_at_load(LbMode::kPlb, load));
  }
  print_row("\nShape: near-identical tails at low load; above ~75%% load "
            "PLB's spraying keeps P99 flat while RSS inflates.");
  return 0;
}
