// Table 3: Albatross's packet rate per gateway service.
// Paper setup: two 46-core GW pods (44 data + 2 ctrl each), 500K flows of
// 256B packets, reporting 128.8 / 81.6 / 119.4 / 126.3 Mpps.
// Here: one pod at a scaled core count is driven to saturation; the
// per-core rate is extrapolated to the paper's 88 data cores.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Table 3: throughput by gateway service",
               "Tab. 3, SIGCOMM'25 Albatross");

  struct Row {
    ServiceKind kind;
    double paper_mpps;
  };
  const Row rows[] = {
      {ServiceKind::kVpcVpc, 128.8},
      {ServiceKind::kVpcInternet, 81.6},
      {ServiceKind::kVpcIdc, 119.4},
      {ServiceKind::kVpcCloudService, 126.3},
  };

  constexpr std::uint16_t kCores = 8;        // scaled from 88 data cores
  constexpr double kOffered = 20e6;          // beyond capacity
  constexpr NanoTime kDuration = 40 * kMillisecond;

  print_row("%-18s %12s %14s %14s %10s", "service", "percore-Mpps",
            "88core-Mpps", "paper-Mpps", "ratio");
  for (const auto& row : rows) {
    const auto r = measure_saturation(row.kind, kCores, LbMode::kPlb,
                                      kOffered, kDuration);
    const double extrapolated = r.per_core_mpps * 88.0;
    print_row("%-18s %12.2f %14.1f %14.1f %10.2f",
              std::string(service_name(row.kind)).c_str(), r.per_core_mpps,
              extrapolated, row.paper_mpps, extrapolated / row.paper_mpps);
  }
  print_row("\nShape checks: VPC-Internet lowest (long chain); others "
            "cluster near 120-130 Mpps; per-core ~1-1.5 Mpps (the paper's "
            "'~1Mpps per core' planning number).");
  return 0;
}
