// Figure 15: availability-zone construction cost. Legacy: 8 cluster
// roles x 4 gateways = 32 physical boxes (3 roles gen-1 x86 @500W,
// 5 roles gen-2 Tofino @300W). Albatross: the same 32 gateways as GW
// pods at 4 per server = 8 servers @2x unit cost, 900W. Paper: servers
// -75%, cost -50%, power -40%. Also validated live by packing 32 pods
// through the orchestrator.
#include "bench_util.hpp"
#include "container/cost_model.hpp"
#include "container/orchestrator.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Figure 15: gateway construction cost per AZ",
               "Fig. 15, SIGCOMM'25 Albatross");

  AzCostModel model;
  const auto legacy = model.legacy_az();
  const auto alba = model.albatross_az();
  print_row("%-32s %10s %12s %12s", "deployment", "devices", "cost(norm)",
            "power(W)");
  print_row("%-32s %10u %12.1f %12.0f", legacy.deployment.c_str(),
            legacy.devices, legacy.total_cost, legacy.total_power_w);
  print_row("%-32s %10u %12.1f %12.0f", alba.deployment.c_str(),
            alba.devices, alba.total_cost, alba.total_power_w);
  print_row("\nservers: -%.0f%%  cost: -%.0f%%  power: -%.0f%%   "
            "(paper: -75%% / -50%% / -40%%)",
            100.0 * (1.0 - static_cast<double>(alba.devices) /
                               legacy.devices),
            100.0 * (1.0 - alba.total_cost / legacy.total_cost),
            100.0 * (1.0 - alba.total_power_w / legacy.total_power_w));

  // Live packing check: 32 pods (22 cores each) across 8 servers.
  Orchestrator orch;
  for (int sv = 0; sv < 8; ++sv) orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 20;
  spec.ctrl_cores = 2;
  int placed = 0;
  for (int i = 0; i < 32; ++i) {
    if (orch.deploy(spec, Nanos{0})) ++placed;
  }
  print_row("[live] orchestrator packed %d/32 GW pods on %zu servers "
            "(4 pods/server, 2 per NUMA node); core utilisation %.0f%%",
            placed, orch.server_count(), orch.core_utilization() * 100.0);
  return 0;
}
