// Figure 15: availability-zone construction cost. Legacy: 8 cluster
// roles x 4 gateways = 32 physical boxes (3 roles gen-1 x86 @500W,
// 5 roles gen-2 Tofino @300W). Albatross: the same 32 gateways as GW
// pods at 4 per server = 8 servers @2x unit cost, 900W. Paper: servers
// -75%, cost -50%, power -40%. Also validated live by packing 32 pods
// through the orchestrator.
#include "bench_util.hpp"
#include "container/cost_model.hpp"
#include "container/orchestrator.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Figure 15: gateway construction cost per AZ",
               "Fig. 15, SIGCOMM'25 Albatross");

  AzCostModel model;
  const auto legacy = model.legacy_az();
  const auto alba = model.albatross_az();
  print_row("%-32s %10s %12s %12s", "deployment", "devices", "cost(norm)",
            "power(W)");
  print_row("%-32s %10u %12.1f %12.0f", legacy.deployment.c_str(),
            legacy.devices, legacy.total_cost, legacy.total_power_w);
  print_row("%-32s %10u %12.1f %12.0f", alba.deployment.c_str(),
            alba.devices, alba.total_cost, alba.total_power_w);
  print_row("\nservers: -%.0f%%  cost: -%.0f%%  power: -%.0f%%   "
            "(paper: -75%% / -50%% / -40%%)",
            100.0 * (1.0 - static_cast<double>(alba.devices) /
                               legacy.devices),
            100.0 * (1.0 - alba.total_cost / legacy.total_cost),
            100.0 * (1.0 - alba.total_power_w / legacy.total_power_w));

  // Fleet scaling: the same accounting path the fleet SLO report uses,
  // swept over pod-set count (each set = one full role sheet). Cost and
  // power advantages are scale-invariant — the ratios must match the
  // single-set Fig. 15 numbers at every size.
  print_row("\n%-10s %16s %16s %14s %14s", "pod sets", "legacy cost/W",
            "albatross cost/W", "cost delta", "power delta");
  bool scale_ok = true;
  constexpr std::uint32_t kPodSets[] = {1, 2, 4, 8};
  for (const std::uint32_t sets : kPodSets) {
    AzRequirements req;
    req.pod_sets = sets;
    const auto l = model.legacy_az(req);
    const auto a = model.albatross_az(req);
    const double cost_delta = 1.0 - a.total_cost / l.total_cost;
    const double power_delta = 1.0 - a.total_power_w / l.total_power_w;
    print_row("%-10u %8.0f/%-8.0f %8.0f/%-8.0f %13.0f%% %13.0f%%", sets,
              l.total_cost, l.total_power_w, a.total_cost, a.total_power_w,
              cost_delta * 100.0, power_delta * 100.0);
    scale_ok &= l.total_cost == legacy.total_cost * sets;
    scale_ok &= a.total_power_w == alba.total_power_w * sets;
  }
  if (!scale_ok) {
    print_row("SCALING VIOLATION: pod-set sweep is not linear in sets");
    return 1;
  }

  // Live packing check: 32 pods (22 cores each) across 8 servers.
  Orchestrator orch;
  for (int sv = 0; sv < 8; ++sv) orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 20;
  spec.ctrl_cores = 2;
  int placed = 0;
  for (int i = 0; i < 32; ++i) {
    if (orch.deploy(spec, Nanos{0})) ++placed;
  }
  print_row("[live] orchestrator packed %d/32 GW pods on %zu servers "
            "(4 pods/server, 2 per NUMA node); core utilisation %.0f%%",
            placed, orch.server_count(), orch.core_utilization() * 100.0);
  return 0;
}
