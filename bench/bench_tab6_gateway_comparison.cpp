// Table 6: Albatross vs Sailfish vs Albatross* across LPM capacity,
// elasticity, price and forwarding performance. Spec columns come from
// the analytic comparator; the Albatross LPM capacity and elasticity
// claims are additionally *demonstrated* live: 10M+ routes inserted into
// the DIR-24-8 table, and a pod deployed through the orchestrator in
// 10 simulated seconds.
#include "bench_util.hpp"
#include "container/orchestrator.hpp"
#include "gateway/sailfish_model.hpp"
#include "tables/lpm_dir24.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Table 6: gateway generation comparison",
               "Tab. 6, SIGCOMM'25 Albatross");

  print_row("%-12s %10s %12s %10s %9s %12s %10s %9s", "gateway", "LPM(M)",
            "elasticity", "price/dev", "price/AZ", "thpt(Gbps)", "Mpps",
            "lat(us)");
  for (const auto& g : gateway_comparison()) {
    const std::string elast =
        g.elasticity_seconds >= 3600
            ? std::to_string(static_cast<int>(g.elasticity_seconds / 86400)) +
                  " days"
            : std::to_string(static_cast<int>(g.elasticity_seconds)) + " s";
    print_row("%-12s %10.1f %12s %9.1fx %8.1fx %12.0f %10.0f %9.1f",
              g.name.c_str(), g.lpm_rules_millions, elast.c_str(),
              g.price_per_device, g.price_per_az, g.throughput_gbps,
              g.packet_rate_mpps, g.latency_us);
  }

  // Live demonstration 1: >10M LPM rules in DRAM.
  LpmDir24 lpm;
  const std::uint32_t rules = 10'000'000;
  for (std::uint32_t i = 0; i < rules; ++i) {
    lpm.add(Ipv4Address{0x10000000u + i}, 32, i & kMaxNextHop);
  }
  print_row("\n[live] DIR-24-8 holds %.1fM rules in %.2f GB DRAM "
            "(Sailfish SRAM caps at 0.2M); sample lookup -> %u",
            rules / 1e6, static_cast<double>(lpm.memory_bytes()) / 1e9,
            *lpm.lookup(Ipv4Address{0x10000000u + 424242}));

  // Live demonstration 2: 10-second pod elasticity.
  Orchestrator orch;
  orch.add_server(ServerSpec{});
  PodSpec spec;
  spec.data_cores = 44;
  spec.ctrl_cores = 2;
  const auto p = orch.deploy(spec, Nanos{0});
  print_row("[live] GW pod deployed via orchestrator: ready at t=%.0f s "
            "(paper: 10 seconds; Sailfish: days of cluster build-out)",
            static_cast<double>(p->ready_at.count()) / 1e9);
  return 0;
}
