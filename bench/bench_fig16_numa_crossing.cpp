// Figure 16: cross-NUMA vs intra-NUMA performance. The paper measures a
// 14% VPC-VPC throughput penalty when a pod's CPU and memory straddle
// NUMA nodes, and ~3% with no network service (pure memcpy-style work).
// Here the same pod is saturated with its tables homed on the local vs
// the remote node.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

/// Measures saturated per-core Mpps with memory homed on `mem_node`.
double capacity(std::uint16_t mem_node, std::uint16_t mem_accesses_override) {
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const auto p = service_profile(ServiceKind::kVpcVpc);
  const double accesses = mem_accesses_override != 0
                              ? mem_accesses_override
                              : p.mem_accesses;
  const double per_pkt =
      static_cast<double>(p.base_ns.count()) +
      accesses * cache.mean_access_latency(NumaNodeId{0}, NumaNodeId{mem_node}, false);
  return 1e3 / per_pkt;
}

}  // namespace

int main() {
  print_header("Figure 16: cross-NUMA vs intra-NUMA throughput",
               "Fig. 16, SIGCOMM'25 Albatross");

  // Full VPC-VPC service: table lookups dominate.
  const double intra = capacity(0, 0);
  const double cross = capacity(1, 0);
  print_row("%-24s %14s %14s %10s", "workload", "intra(Mpps/c)",
            "cross(Mpps/c)", "penalty");
  print_row("%-24s %14.3f %14.3f %9.1f%%   (paper: 14%%)", "VPC-VPC service",
            intra, cross, (intra - cross) / intra * 100.0);

  // "No network service": mostly compute, one memory touch per packet.
  const double intra0 = capacity(0, 1);
  const double cross0 = capacity(1, 1);
  print_row("%-24s %14.3f %14.3f %9.1f%%   (paper: ~3%%)",
            "no service (1 access)", intra0, cross0,
            (intra0 - cross0) / intra0 * 100.0);

  // End-to-end confirmation through the simulated platform.
  const auto local = measure_saturation(ServiceKind::kVpcVpc, 4,
                                        LbMode::kPlb, 12e6,
                                        30 * kMillisecond);
  print_row("\n[live] intra-NUMA saturated pod: %.3f Mpps/core "
            "(closed form %.3f)",
            local.per_core_mpps, intra);
  return 0;
}
