// Ablation: reorder-queue count per pod (the C1/C2 trade-off, §4.1).
// The FPGA's reorder buffer is a FIXED budget split across the queues
// (here 4096 entries total):
//   C1 — more queues => each queue is shallower, so a heavy hitter that
//        lands on one queue overflows it sooner (ingress loss);
//   C2 — fewer queues => more flows share each FIFO, so one HOL stall
//        (e.g. a silent CPU drop waiting out the 100us timeout) delays a
//        larger fraction of the pod's traffic.
// The scenario pins a heavy hitter and a silently-dropped (no drop
// flag) ACL stream onto the SAME order-preserving queue, then measures
// the hitter's ingress loss (C1) and the share of background packets
// dragged past 60us by the stalls (C2).
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

constexpr std::uint32_t kBufferBudget = 4096;  // total FIFO entries
constexpr std::uint16_t kCores = 8;

struct AblationResult {
  double hitter_loss;
  double bg_delayed_share;
  double p99_us;
};

/// Finds an ACL-denied flow whose ordq (crc32c % queues) matches the
/// hitter's, so its silent drops stall the hitter's queue.
FlowInfo make_hole_flow(const FlowInfo& hitter, std::uint16_t queues) {
  const auto target = crc32c(hitter.tuple) % queues;
  FlowInfo hole = make_flow(0x4041, 9, 0);
  hole.tuple.dst_ip = Ipv4Address::from_octets(9, 9, 9, 1);
  for (std::uint16_t port = 1024;; ++port) {
    hole.tuple.src_port = port;
    if (crc32c(hole.tuple) % queues == target) return hole;
  }
}

AblationResult run(std::uint16_t queues) {
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores,
                                   LbMode::kPlb, 200, 20'000,
                                   /*drop_flag=*/false, queues);
  // Re-register the pod's engine with the per-queue share of the fixed
  // buffer budget.
  PlbEngineConfig plb;
  plb.num_rx_queues = kCores;
  plb.num_reorder_queues = queues;
  plb.reorder_entries = kBufferBudget / queues;
  s.platform->nic().register_pod(s.pod, plb, PktDirConfig{}, LbMode::kPlb);

  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false) * 1e6 * kCores;

  PoissonFlowConfig bg;
  bg.num_flows = 4000;
  bg.rate_pps = 0.2 * capacity_pps;
  bg.seed = 31;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  // The heavy hitter: 55% of pod capacity concentrated on ONE ordq.
  HeavyHitterConfig hh;
  hh.flow = make_flow(0x4040, 7, 0);
  hh.profile = RateProfile{{NanoTime{0}, 0.55 * capacity_pps}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);

  // The HOL source: ACL-denied packets on the hitter's queue whose
  // silent drops stall the FIFO head for 100us each.
  HeavyHitterConfig hole;
  hole.flow = make_hole_flow(hh.flow, queues);
  hole.profile = RateProfile{{NanoTime{0}, 0.01 * capacity_pps}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(hole),
                            s.pod);

  s.platform->run_until(100 * kMillisecond);
  const auto& t = s.platform->telemetry(s.pod);
  const auto& hitter_t = s.platform->tenant(7);

  AblationResult r;
  r.hitter_loss = hitter_t.offered
                      ? static_cast<double>(hitter_t.dropped_other) /
                            static_cast<double>(hitter_t.offered)
                      : 0.0;
  r.bg_delayed_share = t.wire_latency.fraction_above(60'000);
  r.p99_us = static_cast<double>(t.wire_latency.quantile(0.99)) / 1e3;
  return r;
}

}  // namespace

int main() {
  print_header("Ablation: reorder queues per pod (C1 vs C2 trade-off)",
               "§4.1 'Reorder queue granularity', SIGCOMM'25 Albatross");
  print_row("%-8s %12s %16s %18s %10s", "queues", "entries/q",
            "hitter loss (C1)", "pkts >60us (C2)", "p99(us)");
  constexpr std::uint16_t kQueueCounts[] = {1, 2, 4, 8};
  for (const std::uint16_t q : kQueueCounts) {
    const auto r = run(q);
    print_row("%-8u %12u %15.2f%% %17.2f%% %10.1f", q, kBufferBudget / q,
              r.hitter_loss * 100, r.bg_delayed_share * 100, r.p99_us);
  }
  print_row("\nShape: with the whole budget in one deep queue the hitter "
            "never overflows (C1 good) but every HOL stall delays the "
            "whole pod (C2 bad); splitting 8 ways shrinks the blast "
            "radius but the hitter's 512-entry queue overflows under "
            "stalls. Production sizes ~1 queue per 12 cores and keeps 4K "
            "entries per queue (100us at 40Mpps).");
  return 0;
}
