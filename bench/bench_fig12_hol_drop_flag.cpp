// Figure 12: HOL optimisation with the active drop flag. CPU-side drops
// (ACL/rate rules) leave reorder-FIFO entries stranded; without
// notification each strand blocks its queue head for the full 100us
// timeout. The drop flag releases resources immediately, cutting HOL
// occurrences by one to two orders of magnitude per second.
#include "bench_util.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;
using namespace albatross::bench;

namespace {

struct HolResult {
  double hol_events_per_s;      // Case-1 timeout releases
  double drop_releases_per_s;   // flag-released reorder entries
  double p99_us;
};

HolResult run(bool drop_flag, double acl_drop_share) {
  constexpr std::uint16_t kCores = 4;
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores,
                                   LbMode::kPlb, 200, 20'000, drop_flag);
  CacheModel cache;
  cache.set_working_set_bytes(4ull << 30);
  const double capacity_pps =
      core_capacity_mpps(ServiceKind::kVpcVpc, cache, false) * 1e6 * kCores;
  const double total = 0.35 * capacity_pps;

  PoissonFlowConfig bg;
  bg.num_flows = 3000;
  bg.rate_pps = total * (1.0 - acl_drop_share);
  bg.seed = 19;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  // ACL-denied stream (dst inside 9.9.9.0/24 -> rule 1 kDeny).
  HeavyHitterConfig bad;
  bad.flow = make_flow(0xac10, 9, 0);
  bad.flow.tuple.dst_ip = Ipv4Address::from_octets(9, 9, 9, 99);
  bad.profile = RateProfile{{NanoTime{0}, total * acl_drop_share}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(bad), s.pod);

  const NanoTime duration = 150 * kMillisecond;
  s.platform->run_until(duration);
  const auto stats = s.platform->nic().engine(s.pod).total_stats();
  const double secs = static_cast<double>(duration.count()) / 1e9;
  HolResult r;
  r.hol_events_per_s = static_cast<double>(stats.timeout_releases) / secs;
  r.drop_releases_per_s = static_cast<double>(stats.drop_releases) / secs;
  r.p99_us = static_cast<double>(
                 s.platform->telemetry(s.pod).wire_latency.quantile(0.99)) /
             1e3;
  return r;
}

}  // namespace

int main() {
  print_header("Figure 12: HOL events with vs without the active drop flag",
               "Fig. 12, SIGCOMM'25 Albatross");
  print_row("%-14s %10s %14s %16s %10s", "drop share", "flag",
            "HOL events/s", "flag releases/s", "p99(us)");
  for (const double share : {0.005, 0.02, 0.05}) {
    const auto off = run(false, share);
    const auto on = run(true, share);
    print_row("%12.1f%% %10s %14.0f %16.0f %10.1f", share * 100, "off",
              off.hol_events_per_s, off.drop_releases_per_s, off.p99_us);
    print_row("%12.1f%% %10s %14.0f %16.0f %10.1f", share * 100, "on",
              on.hol_events_per_s, on.drop_releases_per_s, on.p99_us);
  }
  print_row("\nShape: without the flag every CPU drop becomes a 100us HOL "
            "stall (hundreds to thousands per second); with it HOL events "
            "collapse to ~0 (paper: reduced by dozens to hundreds per "
            "second).");
  return 0;
}
