// Table 4: NIC pipeline latency by module (RX/TX), dominated by DMA.
// Paper: basic 0.58/0.84us, overload det 0.10/0, PLB 0.05/0.35,
// DMA 3.17/2.98, total 3.90/4.17us. The bench reports the configured
// timing model AND validates it end-to-end by measuring an idle-path
// packet's NIC-attributable latency on the full platform.
#include "bench_util.hpp"

using namespace albatross;
using namespace albatross::bench;

int main() {
  print_header("Table 4: NIC pipeline latency per module",
               "Tab. 4, SIGCOMM'25 Albatross");

  const NicTimings t;  // model defaults == paper values
  const auto us = [](Nanos n) { return static_cast<double>(n.count()) / 1e3; };
  struct Row {
    const char* name;
    double rx_us;
    double tx_us;
  };
  const Row rows[] = {
      {"Basic Pipeline", us(t.basic_rx_ns()), us(t.basic_tx_ns())},
      {"Overload Det.", us(t.overload_det_rx_ns()), 0.0},
      {"PLB", us(t.plb_rx_ns()), us(t.plb_tx_ns())},
      {"DMA", us(t.dma_rx_base_ns()), us(t.dma_tx_base_ns())},
  };
  print_row("%-16s %8s %8s", "module", "RX(us)", "TX(us)");
  double rx_sum = 0, tx_sum = 0;
  for (const auto& r : rows) {
    print_row("%-16s %8.2f %8.2f", r.name, r.rx_us, r.tx_us);
    rx_sum += r.rx_us;
    tx_sum += r.tx_us;
  }
  print_row("%-16s %8.2f %8.2f   (paper: 3.90 / 4.17)", "Sum", rx_sum,
            tx_sum);

  // End-to-end validation: a single packet through an idle platform.
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, 1, LbMode::kPlb);
  PoissonFlowConfig cfg;
  cfg.num_flows = 1;
  cfg.rate_pps = 1000;  // sparse: no queueing
  cfg.poisson = false;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(cfg), s.pod);
  s.platform->run_until(100 * kMillisecond);
  const auto& tel = s.platform->telemetry(s.pod);
  const double nic_us =
      tel.wire_latency.mean() / 1e3 -
      s.platform->pod(s.pod).service_histogram().mean() / 1e3;
  print_row("\nMeasured idle-path NIC-attributable latency: %.2f us "
            "(model RX+TX sum: %.2f us)",
            nic_us, rx_sum + tx_sum);
  print_row("Extra latency from PLB + overload detection: %.2f us "
            "(paper: ~0.5 us)",
            us(t.overload_det_rx_ns() + t.plb_rx_ns() + t.plb_tx_ns()));
  return 0;
}
