// Chaos & recovery walkthrough: crash a gateway pod under live traffic
// and watch the platform's availability loop close — BFD detects, the
// BGP proxy withdraws the VIP, the orchestrator deploys a replacement
// (10 s elasticity), the replacement re-announces and traffic returns.
//
//   build/examples/example_chaos_recovery
#include <cstdio>

#include "chaos/experiment.hpp"

using namespace albatross;

int main() {
  // Two gateways behind dual BGP proxies; gateway 0 crashes at t=2s and
  // gateway 1 takes a 500 ms link flap at t=8s.
  ChaosHarnessConfig cfg;
  cfg.gateways = 2;
  GatewayChaosHarness harness(cfg);
  for (std::uint16_t g = 0; g < harness.gateway_count(); ++g) {
    harness.attach_background_traffic(g, 50'000.0, 200, 1 + g);
  }

  RecoveryController controller(harness);
  controller.arm();

  FaultPlan plan;
  plan.name = "walkthrough";
  plan.events.push_back({2 * kSecond, FaultKind::kPodCrash, 0, NanoTime{0}, 0.0});
  plan.events.push_back(
      {8 * kSecond, FaultKind::kLinkFlap, 1, 500 * kMillisecond, 0.0});

  FaultInjector injector(harness.loop(), harness);
  injector.schedule(plan);

  harness.platform().run_until(25 * kSecond);

  std::printf("chaos_recovery: %llu faults injected, %llu incidents, "
              "%llu recovered\n",
              static_cast<unsigned long long>(injector.stats().applied),
              static_cast<unsigned long long>(controller.incidents_opened()),
              static_cast<unsigned long long>(
                  controller.incidents_recovered()));
  for (const auto& inc : controller.incidents()) {
    std::printf(
        "  %-12s gw%u  detect %.1f ms  blackhole %.1f ms  lost %llu pkts"
        "  recovered in %.2f s%s\n",
        std::string(fault_kind_name(inc.kind)).c_str(), inc.gateway,
        static_cast<double>(inc.detect_latency().count()) / 1e6,
        static_cast<double>(inc.blackhole_ns().count()) / 1e6,
        static_cast<unsigned long long>(inc.packets_lost),
        static_cast<double>(inc.recovery_ns().count()) / 1e9,
        inc.redeployed ? "  (replacement pod)" : "");
  }
  std::printf("\ntimeline (deterministic; same plan => same bytes):\n%s",
              controller.timeline().c_str());

  // After recovery the pods are back online: the blackholed counters
  // must be flat from here on.
  const auto lost_before =
      harness.platform().telemetry(harness.pod(0)).blackholed +
      harness.platform().telemetry(harness.pod(1)).blackholed;
  harness.platform().run_until(30 * kSecond);
  const auto lost_after =
      harness.platform().telemetry(harness.pod(0)).blackholed +
      harness.platform().telemetry(harness.pod(1)).blackholed;
  std::printf("\npost-recovery loss: %llu packets (want 0)\n",
              static_cast<unsigned long long>(lost_after - lost_before));
  return lost_after == lost_before ? 0 : 1;
}
