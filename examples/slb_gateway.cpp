// SLB gateway walkthrough: one VIP, a backend pool, health churn, and
// the per-core session behaviour — the SLB cluster role from Fig. 15
// driven through the library's public API.
#include <cstdio>

#include "gateway/slb.hpp"

using namespace albatross;

namespace {

FiveTuple client_tuple(std::uint32_t id) {
  return FiveTuple{Ipv4Address{0x0c000000u + id},
                   Ipv4Address::from_octets(100, 64, 10, 1),
                   static_cast<std::uint16_t>(1024 + id % 50000), 443,
                   IpProto::kTcp};
}

}  // namespace

int main() {
  std::printf("SLB gateway: VIP 100.64.10.1:443 over 4 real servers\n\n");
  SlbService slb(Ipv4Address::from_octets(100, 64, 10, 1), 443,
                 /*data_cores=*/4);
  for (int b = 0; b < 4; ++b) {
    const auto idx = slb.add_backend(
        Backend{Ipv4Address::from_octets(10, 1, 0,
                                         static_cast<std::uint8_t>(10 + b)),
                8443, /*weight=*/static_cast<std::uint16_t>(b == 0 ? 2 : 1), true});
    std::printf("backend %u: %s weight=%u\n", idx,
                slb.backend(idx).rs_ip.to_string().c_str(),
                slb.backend(idx).weight);
  }

  // 10K new connections: the weighted consistent-hash spread.
  std::vector<int> per_backend(4, 0);
  for (std::uint32_t c = 0; c < 10'000; ++c) {
    const auto b = slb.forward(client_tuple(c), static_cast<CoreId>(c % 4),
                               NanoTime{c}, 0x02 /*SYN*/);
    if (b) ++per_backend[*b];
  }
  std::printf("\nnew-connection spread (backend 0 has 2x weight):\n");
  for (int b = 0; b < 4; ++b) {
    std::printf("  backend %d: %5d connections (%.0f%%)\n", b,
                per_backend[b], per_backend[b] / 100.0);
  }

  // Health checks flag backend 2 down: established connections drain,
  // new connections avoid it.
  std::printf("\n-- backend 2 fails its health checks --\n");
  slb.set_healthy(2, false);
  int to_dead_existing = 0;
  for (std::uint32_t c = 0; c < 10'000; ++c) {
    const auto b = slb.forward(client_tuple(c), static_cast<CoreId>(c % 4),
                               kSecond + NanoTime{c}, 0x10 /*ACK*/);
    if (b && *b == 2) ++to_dead_existing;
  }
  int to_dead_new = 0;
  for (std::uint32_t c = 10'000; c < 20'000; ++c) {
    const auto b = slb.forward(client_tuple(c), static_cast<CoreId>(c % 4),
                               2 * kSecond + NanoTime{c}, 0x02);
    if (b && *b == 2) ++to_dead_new;
  }
  std::printf("existing connections still pinned to backend 2 "
              "(draining): %d\n",
              to_dead_existing);
  std::printf("NEW connections routed to backend 2: %d (must be 0)\n",
              to_dead_new);

  // Sessions age out after the idle timeout, reclaiming table space.
  const auto reclaimed = slb.age_sessions(10 * 60 * kSecond);
  std::printf("\nsessions reclaimed by the 60s idle timer: %zu\n",
              reclaimed);
  std::printf("totals: %llu conns, %llu packets, %llu sticky hits\n",
              static_cast<unsigned long long>(slb.stats().connections),
              static_cast<unsigned long long>(slb.stats().packets),
              static_cast<unsigned long long>(slb.stats().stuck_to_session));
  return 0;
}
