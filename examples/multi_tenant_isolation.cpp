// Multi-tenant performance isolation (the Fig. 13/14 story as an
// operator would experience it): four tenants share a GW pod; tenant 1
// goes rogue at t=150ms. The example runs the incident twice — with
// gateway overload protection off and on — and prints each tenant's SLA
// view (delivered rate, loss). It also demonstrates the top-tier bypass
// and the CPU-assisted heavy-hitter install API.
#include <cstdio>

#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "traffic/tenant_gen.hpp"

using namespace albatross;

namespace {

void run_incident(bool protection) {
  std::printf("\n--- overload protection %s ---\n", protection ? "ON" : "OFF");

  PlatformConfig pc;
  pc.nic.gop_enabled = protection;
  // Scaled meters: this pod's ~2.9 Mpps capacity stands in for the
  // paper's 20 Mpps pod, so stage rates scale by 2.9/20.
  const double scale = 2.9 / 20.0;
  pc.nic.gop.stage1_rate_pps = 8e6 * scale;
  pc.nic.gop.stage2_rate_pps = 2e6 * scale;
  pc.nic.gop.pre_meter_rate_pps = 10e6 * scale;
  Platform platform(pc);

  GwPodConfig pod_cfg;
  pod_cfg.service = ServiceKind::kVpcVpc;
  pod_cfg.data_cores = 2;
  pod_cfg.rx_ring_capacity = 256;
  const PodId pod = platform.create_pod(pod_cfg);

  // Tenant 42 is a top-tier customer contractually exempt from rate
  // limiting (§4.3): configure the bypass.
  platform.nic().limiter().add_bypass(42);

  std::vector<TenantSpec> tenants;
  for (Vni v = 1; v <= 4; ++v) {
    TenantSpec spec;
    spec.vni = v;
    spec.profile = RateProfile{{NanoTime{0}, (5.0 - v) * 1e6 * scale}};
    if (v == 1) spec.profile.add_step(150 * kMillisecond, 34e6 * scale);
    tenants.push_back(spec);
  }
  platform.attach_source(
      std::make_unique<TenantTrafficSource>(std::move(tenants), NanoTime{}),
      pod);

  platform.run_until(300 * kMillisecond);

  std::printf("%-8s %10s %12s %10s %14s\n", "tenant", "offered", "delivered",
              "loss", "rate-limited");
  for (Vni v = 1; v <= 4; ++v) {
    const TenantCounters& c = platform.tenant(v);
    const double loss =
        c.offered ? 1.0 - static_cast<double>(c.delivered) /
                              static_cast<double>(c.offered)
                  : 0.0;
    std::printf("%-8u %10llu %12llu %9.1f%% %14llu%s\n", v,
                static_cast<unsigned long long>(c.offered),
                static_cast<unsigned long long>(c.delivered), loss * 100,
                static_cast<unsigned long long>(c.dropped_rate_limit),
                v == 1 ? "  <- the aggressor" : "");
  }
}

}  // namespace

int main() {
  std::printf("Multi-tenant isolation on one Albatross GW pod\n");
  std::printf("4 tenants at 4/3/2/1 Mpps (paper scale); tenant 1 bursts "
              "to 34 Mpps at t=150ms; pod capacity ~20 Mpps.\n");

  run_incident(/*protection=*/false);
  std::printf("=> without GOP, the aggressor's burst starves every "
              "innocent tenant (broken SLAs).\n");

  run_incident(/*protection=*/true);
  std::printf("=> with the two-stage limiter, the aggressor is clipped "
              "to ~10 Mpps inside the FPGA and tenants 2-4 keep full "
              "rate.\n");

  // Operator workflow: pre-emptively install a known aggressor from the
  // CPU side (the §4.3 'planned' path) and verify.
  PlatformConfig pc;
  Platform platform(pc);
  platform.nic().limiter().install_heavy_hitter(1, Nanos{0});
  std::printf("\nCPU-assisted install: tenant 1 in pre_meter? %s\n",
              platform.nic().limiter().is_installed(1) ? "yes" : "no");
  return 0;
}
