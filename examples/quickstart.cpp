// Quickstart: the 5-minute tour of the Albatross library.
//
//   1. Touch the packet layer directly: build a real VXLAN-encapsulated
//      tenant frame, parse it, attach/strip the PLB meta trailer.
//   2. Stand up a simulated Albatross server: one containerized GW pod
//      behind the FPGA NIC pipeline (PLB mode), drive synthetic tenant
//      traffic through it, and read the telemetry a production operator
//      would look at: throughput, latency distribution, order integrity.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>

#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "packet/parser.hpp"

using namespace albatross;

int main() {
  std::printf("== Part 1: the packet layer =============================\n");
  // A tenant (VNI 4242) VM talks to 8.8.8.8; the VTEP wraps the inner
  // frame in VXLAN toward the gateway.
  VxlanFlowSpec spec;
  spec.vni = 4242;
  spec.outer = FiveTuple{Ipv4Address::from_octets(172, 16, 0, 9),
                         Ipv4Address::from_octets(172, 16, 255, 1), 33333,
                         kVxlanPort, IpProto::kUdp};
  spec.inner.tuple = FiveTuple{Ipv4Address::from_octets(10, 0, 0, 5),
                               Ipv4Address::from_octets(8, 8, 8, 8), 5353,
                               443, IpProto::kUdp};
  PacketPtr pkt = build_vxlan_packet(spec);
  std::printf("built VXLAN frame: %zu bytes on the wire\n", pkt->size());

  const auto parsed = parse_packet(pkt->bytes());
  std::printf("parsed: vni=%u inner=%s:%u -> %s:%u\n", parsed->tenant_vni(),
              parsed->inner_ip->src.to_string().c_str(),
              parsed->inner_l4_src,
              parsed->inner_ip->dst.to_string().c_str(),
              parsed->inner_l4_dst);

  // The PLB meta trailer rides at the packet tail (§7: head placement
  // would fight every encap/decap).
  PlbMeta meta;
  meta.psn = 1001;
  meta.ordq_idx = 2;
  pkt->attach_plb_meta(meta);
  PlbMeta read_back;
  pkt->strip_plb_meta(read_back);
  std::printf("meta trailer round-trip: psn=%u ordq=%u\n\n", read_back.psn,
              read_back.ordq_idx);

  std::printf("== Part 2: a simulated Albatross server =================\n");
  // One 8-core VPC-VPC pod in PLB mode; 2000 flows at 2 Mpps (~18%%
  // load); order oracle on.
  auto scenario =
      SinglePodScenario::make(ServiceKind::kVpcVpc, /*data_cores=*/8,
                              LbMode::kPlb);
  scenario.platform->enable_order_oracle(true);

  PoissonFlowConfig traffic;
  traffic.num_flows = 2000;
  traffic.tenants = 64;
  traffic.rate_pps = 2e6;
  scenario.platform->attach_source(
      std::make_unique<PoissonFlowSource>(traffic), scenario.pod);

  scenario.platform->run_for(100 * kMillisecond);

  const PodTelemetry& t = scenario.platform->telemetry(scenario.pod);
  const auto report = summarize(t, 100 * kMillisecond);
  std::printf("offered   : %.2f Mpps\n", report.offered_mpps);
  std::printf("delivered : %.2f Mpps (loss %.4f%%)\n", report.delivered_mpps,
              report.loss_rate * 100);
  std::printf("latency   : mean %.1f us, p99 %.1f us  (paper: ~20 us avg)\n",
              report.mean_latency_us, report.p99_latency_us);
  std::printf("ordering  : %llu flow-order violations, disorder rate %.1e\n",
              static_cast<unsigned long long>(t.flow_order_violations),
              report.disorder_rate);
  std::printf("\nThis run drove the pod at ~18%% load; saturated, each "
              "core forwards ~%.2f Mpps (the paper's 2x44-core server "
              "lands at 80-120 Mpps).\n",
              core_capacity_mpps(ServiceKind::kVpcVpc,
                                 scenario.platform->cache(), false));
  return 0;
}
