// Heavy-hitter forensics: a side-by-side A/B of RSS and PLB while a
// single tenant flow ramps from polite to hostile, with a look inside
// the PLB reorder engine's counters — the view an Albatross on-call
// engineer uses to explain "why did tenant X see loss at 14:32".
#include <cstdio>

#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "traffic/heavy_hitter.hpp"

using namespace albatross;

namespace {

struct Verdict {
  double delivery;
  double p99_us;
  double hot_core_util;
  ReorderQueueStats reorder;
};

Verdict investigate(LbMode mode, double hitter_mpps) {
  constexpr std::uint16_t kCores = 4;
  auto s = SinglePodScenario::make(ServiceKind::kVpcVpc, kCores, mode);

  PoissonFlowConfig bg;  // polite background at ~25% load
  bg.num_flows = 3000;
  bg.rate_pps = 1.4e6;
  s.platform->attach_source(std::make_unique<PoissonFlowSource>(bg), s.pod);

  HeavyHitterConfig hh;
  hh.flow = make_flow(0xf00d, 13, 0);
  hh.profile = RateProfile{{NanoTime{0}, hitter_mpps * 1e6}};
  s.platform->attach_source(std::make_unique<HeavyHitterSource>(hh), s.pod);

  const NanoTime window = 80 * kMillisecond;
  s.platform->run_until(window);

  Verdict v;
  const auto& t = s.platform->telemetry(s.pod);
  v.delivery = t.offered ? static_cast<double>(t.delivered) /
                               static_cast<double>(t.offered)
                         : 0.0;
  v.p99_us = static_cast<double>(t.wire_latency.quantile(0.99)) / 1e3;
  NanoTime hottest = NanoTime{0};
  for (std::uint16_t c = 0; c < kCores; ++c) {
    hottest =
        std::max(hottest, s.platform->pod(s.pod).core_busy_ns(CoreId{c}));
  }
  v.hot_core_util = static_cast<double>(hottest.count()) /
                    static_cast<double>(window.count());
  v.reorder = s.platform->nic().engine(s.pod).total_stats();
  return v;
}

}  // namespace

int main() {
  std::printf("Heavy-hitter forensics: 4-core pod, 1.4 Mpps background,\n");
  std::printf("one tenant flow ramping 0.5 -> 2.0 Mpps (1 core ~ 1.45 "
              "Mpps).\n\n");
  std::printf("%-8s %-6s %10s %10s %10s %12s %12s\n", "hitter", "mode",
              "delivery", "p99(us)", "hotcore", "in-order tx",
              "HOL timeouts");
  for (const double mpps : {0.5, 1.0, 1.5, 2.0}) {
    for (const LbMode mode : {LbMode::kRss, LbMode::kPlb}) {
      const Verdict v = investigate(mode, mpps);
      std::printf("%-8.1f %-6s %9.2f%% %10.1f %9.0f%% %12llu %12llu\n",
                  mpps, mode == LbMode::kRss ? "RSS" : "PLB",
                  v.delivery * 100, v.p99_us, v.hot_core_util * 100,
                  static_cast<unsigned long long>(v.reorder.in_order_tx),
                  static_cast<unsigned long long>(
                      v.reorder.timeout_releases));
    }
  }
  std::printf(
      "\nReading the table like an operator:\n"
      " * RSS pins the hitter to one core: watch 'hotcore' hit 100%% and\n"
      "   delivery collapse once the flow exceeds ~1.45 Mpps.\n"
      " * PLB sprays it: all cores share the load, delivery stays ~100%%\n"
      "   and the reorder engine transmits everything in order\n"
      "   ('in-order tx' counts, zero HOL timeouts).\n"
      " * If 'HOL timeouts' ever climbs under PLB, something on the CPU\n"
      "   side is eating packets without setting the drop flag —\n"
      "   the §4.1 debugging playbook.\n");
  return 0;
}
