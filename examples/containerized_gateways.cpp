// Containerized gateway operations: the §5/§7 lifecycle end to end.
//   1. Provision Albatross servers and pack four different gateway
//      roles as GW pods (NUMA-aware, SR-IOV VFs on 4 independent paths).
//   2. Bring up the control plane: each pod peers iBGP with the server's
//      BGP proxy; the proxy holds the single eBGP session to the uplink
//      switch — peer count stays at 1 regardless of pod density.
//   3. Elastic scale-up under make-before-break: a bigger replacement
//      pod advertises first, validates, and only then does the old pod
//      withdraw (no blackholing).
#include <cstdio>

#include "bgp/proxy.hpp"
#include "bgp/switch_model.hpp"
#include "container/cost_model.hpp"
#include "container/orchestrator.hpp"

using namespace albatross;

int main() {
  EventLoop loop;

  std::printf("== 1. Packing GW pods onto a server ======================\n");
  Orchestrator orch;
  orch.add_server(ServerSpec{});
  const GatewayRole roles[] = {GatewayRole::kXgw, GatewayRole::kIgw,
                               GatewayRole::kVgw, GatewayRole::kSlb};
  std::vector<Placement> placements;
  for (const auto role : roles) {
    PodSpec spec;
    spec.name = std::string(gateway_role_name(role)) + "-pod";
    spec.data_cores = 20;
    spec.ctrl_cores = 2;
    spec.reorder_queues = reorder_queues_for_cores(spec.data_cores);
    const auto p = orch.deploy(spec, loop.now());
    placements.push_back(*p);
    std::printf("%-10s pod=%u numa=%u cores=[%u..%u) vfs={", spec.name.c_str(),
                p->pod, p->numa_node.value(), p->first_core.value(),
                p->first_core.value() + spec.total_cores());
    for (const auto& vf : p->vfs.vfs) {
      std::printf("nic%u.p%u ", vf.nic, vf.port);
    }
    std::printf("} ready@%.0fs\n", nanos_to_seconds(p->ready_at));
  }
  std::printf("server core utilisation: %.0f%%\n\n",
              orch.core_utilization() * 100);

  std::printf("== 2. BGP via the proxy ==================================\n");
  UplinkSwitch uplink(loop, SwitchConfig{});
  BgpProxy proxy(loop, uplink, BgpProxyConfig{}, loop.now());
  std::vector<std::unique_ptr<BgpSession>> pod_sessions;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    pod_sessions.push_back(std::make_unique<BgpSession>(
        loop, BgpSessionConfig{
                  .asn = 64600,
                  .router_id = 0x0a000100u + static_cast<std::uint32_t>(i)}));
    proxy.attach_pod(*pod_sessions.back(), loop.now());
  }
  loop.run_until(loop.now() + 30 * kSecond);
  // Each pod advertises its VIP.
  for (std::size_t i = 0; i < pod_sessions.size(); ++i) {
    pod_sessions[i]->announce(
        RoutePrefix{Ipv4Address{0x64400000u +
                                (static_cast<std::uint32_t>(i) << 8)},
                    24},
        0x0a000100u + static_cast<std::uint32_t>(i), loop.now());
  }
  loop.run_until(loop.now() + 10 * kSecond);
  std::printf("pods attached to proxy : %zu\n", proxy.pods_attached());
  std::printf("switch BGP peers       : %zu (without proxy: %zu)\n",
              uplink.peer_count(), placements.size());
  std::printf("VIP routes on switch   : %zu\n\n", uplink.routes_learned());

  std::printf("== 3. Elastic scale-up (make-before-break) ===============\n");
  // The redundant-cluster posture (§7): standby capacity is provisioned
  // ahead of demand so a bigger replacement pod can start immediately.
  orch.add_server(ServerSpec{});
  PodSpec bigger;
  bigger.name = "XGW-pod-v2";
  bigger.data_cores = 40;
  bigger.ctrl_cores = 2;
  const NanoTime t0 = loop.now();
  const auto scaled = orch.scale_up(placements[0].pod, bigger, t0);
  if (!scaled) {
    std::printf("scale-up failed: no server has a free NUMA node\n");
    return 1;
  }
  std::printf("t=%.0fs  scale-up requested (20 -> 40 data cores)\n",
              static_cast<double>(t0.count()) / 1e9);
  std::printf("t=%.0fs  new pod ready on server %u (10s container start, "
              "Tab. 6)\n",
              static_cast<double>((scaled->first.ready_at).count()) / 1e9,
              scaled->first.server);
  std::printf("t=%.0fs  traffic cutover after 30s of BGP validation; old "
              "pod withdraws\n",
              static_cast<double>(scaled->second.count()) / 1e9);
  orch.remove(placements[0].pod);
  std::printf("old pod removed; placements now: %zu\n\n",
              orch.placements().size());

  std::printf("== AZ economics ==========================================\n");
  AzCostModel cost;
  const auto legacy = cost.legacy_az();
  const auto alba = cost.albatross_az();
  std::printf("legacy AZ   : %u devices, cost %.0f, %.0fW\n", legacy.devices,
              legacy.total_cost, legacy.total_power_w);
  std::printf("albatross AZ: %u servers, cost %.0f (-50%%), %.0fW (-40%%)\n",
              alba.devices, alba.total_cost, alba.total_power_w);
  return 0;
}
