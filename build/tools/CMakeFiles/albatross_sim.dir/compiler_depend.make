# Empty compiler generated dependencies file for albatross_sim.
# This may be replaced when dependencies are built.
