file(REMOVE_RECURSE
  "CMakeFiles/albatross_sim.dir/albatross_sim.cpp.o"
  "CMakeFiles/albatross_sim.dir/albatross_sim.cpp.o.d"
  "albatross_sim"
  "albatross_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/albatross_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
