# Empty dependencies file for example_containerized_gateways.
# This may be replaced when dependencies are built.
