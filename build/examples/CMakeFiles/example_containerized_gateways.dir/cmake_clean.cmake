file(REMOVE_RECURSE
  "CMakeFiles/example_containerized_gateways.dir/containerized_gateways.cpp.o"
  "CMakeFiles/example_containerized_gateways.dir/containerized_gateways.cpp.o.d"
  "example_containerized_gateways"
  "example_containerized_gateways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_containerized_gateways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
