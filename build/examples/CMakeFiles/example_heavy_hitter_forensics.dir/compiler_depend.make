# Empty compiler generated dependencies file for example_heavy_hitter_forensics.
# This may be replaced when dependencies are built.
