file(REMOVE_RECURSE
  "CMakeFiles/example_heavy_hitter_forensics.dir/heavy_hitter_forensics.cpp.o"
  "CMakeFiles/example_heavy_hitter_forensics.dir/heavy_hitter_forensics.cpp.o.d"
  "example_heavy_hitter_forensics"
  "example_heavy_hitter_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heavy_hitter_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
