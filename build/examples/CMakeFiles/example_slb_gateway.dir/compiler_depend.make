# Empty compiler generated dependencies file for example_slb_gateway.
# This may be replaced when dependencies are built.
