file(REMOVE_RECURSE
  "CMakeFiles/example_slb_gateway.dir/slb_gateway.cpp.o"
  "CMakeFiles/example_slb_gateway.dir/slb_gateway.cpp.o.d"
  "example_slb_gateway"
  "example_slb_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_slb_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
