# Empty dependencies file for test_lpm_property.
# This may be replaced when dependencies are built.
