file(REMOVE_RECURSE
  "CMakeFiles/test_lpm_property.dir/test_lpm_property.cpp.o"
  "CMakeFiles/test_lpm_property.dir/test_lpm_property.cpp.o.d"
  "test_lpm_property"
  "test_lpm_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
