file(REMOVE_RECURSE
  "CMakeFiles/test_nic_misc.dir/test_nic_misc.cpp.o"
  "CMakeFiles/test_nic_misc.dir/test_nic_misc.cpp.o.d"
  "test_nic_misc"
  "test_nic_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
