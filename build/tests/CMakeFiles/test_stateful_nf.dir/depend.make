# Empty dependencies file for test_stateful_nf.
# This may be replaced when dependencies are built.
