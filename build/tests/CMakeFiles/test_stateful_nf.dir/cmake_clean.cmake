file(REMOVE_RECURSE
  "CMakeFiles/test_stateful_nf.dir/test_stateful_nf.cpp.o"
  "CMakeFiles/test_stateful_nf.dir/test_stateful_nf.cpp.o.d"
  "test_stateful_nf"
  "test_stateful_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stateful_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
