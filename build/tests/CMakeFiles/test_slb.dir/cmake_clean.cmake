file(REMOVE_RECURSE
  "CMakeFiles/test_slb.dir/test_slb.cpp.o"
  "CMakeFiles/test_slb.dir/test_slb.cpp.o.d"
  "test_slb"
  "test_slb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
