# Empty compiler generated dependencies file for test_nic_plb.
# This may be replaced when dependencies are built.
