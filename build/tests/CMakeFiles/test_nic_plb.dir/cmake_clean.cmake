file(REMOVE_RECURSE
  "CMakeFiles/test_nic_plb.dir/test_nic_plb.cpp.o"
  "CMakeFiles/test_nic_plb.dir/test_nic_plb.cpp.o.d"
  "test_nic_plb"
  "test_nic_plb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_plb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
