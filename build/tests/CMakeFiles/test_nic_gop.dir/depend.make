# Empty dependencies file for test_nic_gop.
# This may be replaced when dependencies are built.
