file(REMOVE_RECURSE
  "CMakeFiles/test_nic_gop.dir/test_nic_gop.cpp.o"
  "CMakeFiles/test_nic_gop.dir/test_nic_gop.cpp.o.d"
  "test_nic_gop"
  "test_nic_gop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_gop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
