file(REMOVE_RECURSE
  "CMakeFiles/test_property_misc.dir/test_property_misc.cpp.o"
  "CMakeFiles/test_property_misc.dir/test_property_misc.cpp.o.d"
  "test_property_misc"
  "test_property_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
