# Empty dependencies file for test_property_misc.
# This may be replaced when dependencies are built.
