file(REMOVE_RECURSE
  "CMakeFiles/test_nic_reorder_property.dir/test_nic_reorder_property.cpp.o"
  "CMakeFiles/test_nic_reorder_property.dir/test_nic_reorder_property.cpp.o.d"
  "test_nic_reorder_property"
  "test_nic_reorder_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_reorder_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
