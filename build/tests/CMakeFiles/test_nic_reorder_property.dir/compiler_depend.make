# Empty compiler generated dependencies file for test_nic_reorder_property.
# This may be replaced when dependencies are built.
