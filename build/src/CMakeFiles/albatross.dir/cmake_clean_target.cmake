file(REMOVE_RECURSE
  "libalbatross.a"
)
