
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/bfd.cpp" "src/CMakeFiles/albatross.dir/bgp/bfd.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/bgp/bfd.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/CMakeFiles/albatross.dir/bgp/message.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/bgp/message.cpp.o.d"
  "/root/repo/src/bgp/proxy.cpp" "src/CMakeFiles/albatross.dir/bgp/proxy.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/bgp/proxy.cpp.o.d"
  "/root/repo/src/bgp/session.cpp" "src/CMakeFiles/albatross.dir/bgp/session.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/bgp/session.cpp.o.d"
  "/root/repo/src/bgp/switch_model.cpp" "src/CMakeFiles/albatross.dir/bgp/switch_model.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/bgp/switch_model.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/albatross.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/albatross.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/albatross.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/common/json.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/albatross.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/common/rng.cpp.o.d"
  "/root/repo/src/container/cost_model.cpp" "src/CMakeFiles/albatross.dir/container/cost_model.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/container/cost_model.cpp.o.d"
  "/root/repo/src/container/orchestrator.cpp" "src/CMakeFiles/albatross.dir/container/orchestrator.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/container/orchestrator.cpp.o.d"
  "/root/repo/src/container/pod_spec.cpp" "src/CMakeFiles/albatross.dir/container/pod_spec.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/container/pod_spec.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/albatross.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/core/config.cpp.o.d"
  "/root/repo/src/core/fallback.cpp" "src/CMakeFiles/albatross.dir/core/fallback.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/core/fallback.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/albatross.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/core/platform.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/albatross.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/core/scenario.cpp.o.d"
  "/root/repo/src/gateway/gw_pod.cpp" "src/CMakeFiles/albatross.dir/gateway/gw_pod.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/gw_pod.cpp.o.d"
  "/root/repo/src/gateway/probe.cpp" "src/CMakeFiles/albatross.dir/gateway/probe.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/probe.cpp.o.d"
  "/root/repo/src/gateway/rss.cpp" "src/CMakeFiles/albatross.dir/gateway/rss.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/rss.cpp.o.d"
  "/root/repo/src/gateway/sailfish_model.cpp" "src/CMakeFiles/albatross.dir/gateway/sailfish_model.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/sailfish_model.cpp.o.d"
  "/root/repo/src/gateway/service.cpp" "src/CMakeFiles/albatross.dir/gateway/service.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/service.cpp.o.d"
  "/root/repo/src/gateway/services_vpc.cpp" "src/CMakeFiles/albatross.dir/gateway/services_vpc.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/services_vpc.cpp.o.d"
  "/root/repo/src/gateway/slb.cpp" "src/CMakeFiles/albatross.dir/gateway/slb.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/slb.cpp.o.d"
  "/root/repo/src/gateway/stateful_nf.cpp" "src/CMakeFiles/albatross.dir/gateway/stateful_nf.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/gateway/stateful_nf.cpp.o.d"
  "/root/repo/src/nic/basic_pipeline.cpp" "src/CMakeFiles/albatross.dir/nic/basic_pipeline.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/basic_pipeline.cpp.o.d"
  "/root/repo/src/nic/dma.cpp" "src/CMakeFiles/albatross.dir/nic/dma.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/dma.cpp.o.d"
  "/root/repo/src/nic/nic_pipeline.cpp" "src/CMakeFiles/albatross.dir/nic/nic_pipeline.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/nic_pipeline.cpp.o.d"
  "/root/repo/src/nic/pkt_dir.cpp" "src/CMakeFiles/albatross.dir/nic/pkt_dir.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/pkt_dir.cpp.o.d"
  "/root/repo/src/nic/plb_dispatch.cpp" "src/CMakeFiles/albatross.dir/nic/plb_dispatch.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/plb_dispatch.cpp.o.d"
  "/root/repo/src/nic/plb_reorder.cpp" "src/CMakeFiles/albatross.dir/nic/plb_reorder.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/plb_reorder.cpp.o.d"
  "/root/repo/src/nic/rate_limiter.cpp" "src/CMakeFiles/albatross.dir/nic/rate_limiter.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/rate_limiter.cpp.o.d"
  "/root/repo/src/nic/resources.cpp" "src/CMakeFiles/albatross.dir/nic/resources.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/resources.cpp.o.d"
  "/root/repo/src/nic/session_offload.cpp" "src/CMakeFiles/albatross.dir/nic/session_offload.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/session_offload.cpp.o.d"
  "/root/repo/src/nic/sriov.cpp" "src/CMakeFiles/albatross.dir/nic/sriov.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/nic/sriov.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "src/CMakeFiles/albatross.dir/packet/headers.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/packet/headers.cpp.o.d"
  "/root/repo/src/packet/mbuf_pool.cpp" "src/CMakeFiles/albatross.dir/packet/mbuf_pool.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/packet/mbuf_pool.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "src/CMakeFiles/albatross.dir/packet/packet.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/packet/packet.cpp.o.d"
  "/root/repo/src/packet/parser.cpp" "src/CMakeFiles/albatross.dir/packet/parser.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/packet/parser.cpp.o.d"
  "/root/repo/src/packet/pcap.cpp" "src/CMakeFiles/albatross.dir/packet/pcap.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/packet/pcap.cpp.o.d"
  "/root/repo/src/sim/cache_model.cpp" "src/CMakeFiles/albatross.dir/sim/cache_model.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/sim/cache_model.cpp.o.d"
  "/root/repo/src/sim/event_loop.cpp" "src/CMakeFiles/albatross.dir/sim/event_loop.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/sim/event_loop.cpp.o.d"
  "/root/repo/src/sim/numa.cpp" "src/CMakeFiles/albatross.dir/sim/numa.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/sim/numa.cpp.o.d"
  "/root/repo/src/sim/ring.cpp" "src/CMakeFiles/albatross.dir/sim/ring.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/sim/ring.cpp.o.d"
  "/root/repo/src/tables/acl.cpp" "src/CMakeFiles/albatross.dir/tables/acl.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/acl.cpp.o.d"
  "/root/repo/src/tables/cuckoo_table.cpp" "src/CMakeFiles/albatross.dir/tables/cuckoo_table.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/cuckoo_table.cpp.o.d"
  "/root/repo/src/tables/flow_table.cpp" "src/CMakeFiles/albatross.dir/tables/flow_table.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/flow_table.cpp.o.d"
  "/root/repo/src/tables/lpm_dir24.cpp" "src/CMakeFiles/albatross.dir/tables/lpm_dir24.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/lpm_dir24.cpp.o.d"
  "/root/repo/src/tables/lpm_trie.cpp" "src/CMakeFiles/albatross.dir/tables/lpm_trie.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/lpm_trie.cpp.o.d"
  "/root/repo/src/tables/meter.cpp" "src/CMakeFiles/albatross.dir/tables/meter.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/meter.cpp.o.d"
  "/root/repo/src/tables/vm_nc_map.cpp" "src/CMakeFiles/albatross.dir/tables/vm_nc_map.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/tables/vm_nc_map.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/CMakeFiles/albatross.dir/telemetry/metrics.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/telemetry/metrics.cpp.o.d"
  "/root/repo/src/traffic/flow_gen.cpp" "src/CMakeFiles/albatross.dir/traffic/flow_gen.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/traffic/flow_gen.cpp.o.d"
  "/root/repo/src/traffic/heavy_hitter.cpp" "src/CMakeFiles/albatross.dir/traffic/heavy_hitter.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/traffic/heavy_hitter.cpp.o.d"
  "/root/repo/src/traffic/microburst.cpp" "src/CMakeFiles/albatross.dir/traffic/microburst.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/traffic/microburst.cpp.o.d"
  "/root/repo/src/traffic/tenant_gen.cpp" "src/CMakeFiles/albatross.dir/traffic/tenant_gen.cpp.o" "gcc" "src/CMakeFiles/albatross.dir/traffic/tenant_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
