# Empty compiler generated dependencies file for albatross.
# This may be replaced when dependencies are built.
