# Empty dependencies file for bench_fig9_p99_latency.
# This may be replaced when dependencies are built.
