# Empty dependencies file for bench_tab5_nic_resources.
# This may be replaced when dependencies are built.
