file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_header_split.dir/bench_appendix_header_split.cpp.o"
  "CMakeFiles/bench_appendix_header_split.dir/bench_appendix_header_split.cpp.o.d"
  "bench_appendix_header_split"
  "bench_appendix_header_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_header_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
