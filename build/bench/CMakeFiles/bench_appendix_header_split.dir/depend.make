# Empty dependencies file for bench_appendix_header_split.
# This may be replaced when dependencies are built.
