# Empty dependencies file for bench_fig17_numa_balancing.
# This may be replaced when dependencies are built.
