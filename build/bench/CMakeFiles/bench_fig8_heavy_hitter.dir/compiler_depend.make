# Empty compiler generated dependencies file for bench_fig8_heavy_hitter.
# This may be replaced when dependencies are built.
