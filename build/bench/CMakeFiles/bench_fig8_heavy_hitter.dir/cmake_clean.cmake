file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_heavy_hitter.dir/bench_fig8_heavy_hitter.cpp.o"
  "CMakeFiles/bench_fig8_heavy_hitter.dir/bench_fig8_heavy_hitter.cpp.o.d"
  "bench_fig8_heavy_hitter"
  "bench_fig8_heavy_hitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_heavy_hitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
