# Empty compiler generated dependencies file for bench_fig4_plb_vs_rss_throughput.
# This may be replaced when dependencies are built.
