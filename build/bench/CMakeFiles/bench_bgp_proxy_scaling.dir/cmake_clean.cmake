file(REMOVE_RECURSE
  "CMakeFiles/bench_bgp_proxy_scaling.dir/bench_bgp_proxy_scaling.cpp.o"
  "CMakeFiles/bench_bgp_proxy_scaling.dir/bench_bgp_proxy_scaling.cpp.o.d"
  "bench_bgp_proxy_scaling"
  "bench_bgp_proxy_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bgp_proxy_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
