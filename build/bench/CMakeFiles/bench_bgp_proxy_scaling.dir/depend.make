# Empty dependencies file for bench_bgp_proxy_scaling.
# This may be replaced when dependencies are built.
