# Empty compiler generated dependencies file for bench_fig10_core_util_stddev.
# This may be replaced when dependencies are built.
