file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_core_util_stddev.dir/bench_fig10_core_util_stddev.cpp.o"
  "CMakeFiles/bench_fig10_core_util_stddev.dir/bench_fig10_core_util_stddev.cpp.o.d"
  "bench_fig10_core_util_stddev"
  "bench_fig10_core_util_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_core_util_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
