# Empty dependencies file for bench_fig15_az_cost.
# This may be replaced when dependencies are built.
