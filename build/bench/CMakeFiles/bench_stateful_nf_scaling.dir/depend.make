# Empty dependencies file for bench_stateful_nf_scaling.
# This may be replaced when dependencies are built.
