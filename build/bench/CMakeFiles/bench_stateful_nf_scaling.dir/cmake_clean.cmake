file(REMOVE_RECURSE
  "CMakeFiles/bench_stateful_nf_scaling.dir/bench_stateful_nf_scaling.cpp.o"
  "CMakeFiles/bench_stateful_nf_scaling.dir/bench_stateful_nf_scaling.cpp.o.d"
  "bench_stateful_nf_scaling"
  "bench_stateful_nf_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stateful_nf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
