file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ratelimiter.dir/bench_ablation_ratelimiter.cpp.o"
  "CMakeFiles/bench_ablation_ratelimiter.dir/bench_ablation_ratelimiter.cpp.o.d"
  "bench_ablation_ratelimiter"
  "bench_ablation_ratelimiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ratelimiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
