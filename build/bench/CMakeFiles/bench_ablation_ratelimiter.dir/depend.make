# Empty dependencies file for bench_ablation_ratelimiter.
# This may be replaced when dependencies are built.
