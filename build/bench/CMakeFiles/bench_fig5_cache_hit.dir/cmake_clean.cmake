file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cache_hit.dir/bench_fig5_cache_hit.cpp.o"
  "CMakeFiles/bench_fig5_cache_hit.dir/bench_fig5_cache_hit.cpp.o.d"
  "bench_fig5_cache_hit"
  "bench_fig5_cache_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
