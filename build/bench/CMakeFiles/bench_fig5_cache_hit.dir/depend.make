# Empty dependencies file for bench_fig5_cache_hit.
# This may be replaced when dependencies are built.
