file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mem_frequency.dir/bench_ablation_mem_frequency.cpp.o"
  "CMakeFiles/bench_ablation_mem_frequency.dir/bench_ablation_mem_frequency.cpp.o.d"
  "bench_ablation_mem_frequency"
  "bench_ablation_mem_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mem_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
