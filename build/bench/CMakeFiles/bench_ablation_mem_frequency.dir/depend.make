# Empty dependencies file for bench_ablation_mem_frequency.
# This may be replaced when dependencies are built.
