file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_nic_latency.dir/bench_tab4_nic_latency.cpp.o"
  "CMakeFiles/bench_tab4_nic_latency.dir/bench_tab4_nic_latency.cpp.o.d"
  "bench_tab4_nic_latency"
  "bench_tab4_nic_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_nic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
