# Empty compiler generated dependencies file for bench_tab4_nic_latency.
# This may be replaced when dependencies are built.
