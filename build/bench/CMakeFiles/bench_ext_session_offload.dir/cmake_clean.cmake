file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_session_offload.dir/bench_ext_session_offload.cpp.o"
  "CMakeFiles/bench_ext_session_offload.dir/bench_ext_session_offload.cpp.o.d"
  "bench_ext_session_offload"
  "bench_ext_session_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_session_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
