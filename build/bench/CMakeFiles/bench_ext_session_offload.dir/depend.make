# Empty dependencies file for bench_ext_session_offload.
# This may be replaced when dependencies are built.
