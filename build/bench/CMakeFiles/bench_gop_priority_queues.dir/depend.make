# Empty dependencies file for bench_gop_priority_queues.
# This may be replaced when dependencies are built.
