file(REMOVE_RECURSE
  "CMakeFiles/bench_gop_priority_queues.dir/bench_gop_priority_queues.cpp.o"
  "CMakeFiles/bench_gop_priority_queues.dir/bench_gop_priority_queues.cpp.o.d"
  "bench_gop_priority_queues"
  "bench_gop_priority_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gop_priority_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
