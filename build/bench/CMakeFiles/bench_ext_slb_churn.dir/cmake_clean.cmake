file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_slb_churn.dir/bench_ext_slb_churn.cpp.o"
  "CMakeFiles/bench_ext_slb_churn.dir/bench_ext_slb_churn.cpp.o.d"
  "bench_ext_slb_churn"
  "bench_ext_slb_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_slb_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
