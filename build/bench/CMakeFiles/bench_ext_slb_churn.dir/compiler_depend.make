# Empty compiler generated dependencies file for bench_ext_slb_churn.
# This may be replaced when dependencies are built.
