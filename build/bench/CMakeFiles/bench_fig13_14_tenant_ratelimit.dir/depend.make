# Empty dependencies file for bench_fig13_14_tenant_ratelimit.
# This may be replaced when dependencies are built.
