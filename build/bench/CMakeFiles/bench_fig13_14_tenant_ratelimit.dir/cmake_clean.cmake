file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_tenant_ratelimit.dir/bench_fig13_14_tenant_ratelimit.cpp.o"
  "CMakeFiles/bench_fig13_14_tenant_ratelimit.dir/bench_fig13_14_tenant_ratelimit.cpp.o.d"
  "bench_fig13_14_tenant_ratelimit"
  "bench_fig13_14_tenant_ratelimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_tenant_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
