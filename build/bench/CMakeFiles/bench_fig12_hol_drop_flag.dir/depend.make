# Empty dependencies file for bench_fig12_hol_drop_flag.
# This may be replaced when dependencies are built.
