file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hol_drop_flag.dir/bench_fig12_hol_drop_flag.cpp.o"
  "CMakeFiles/bench_fig12_hol_drop_flag.dir/bench_fig12_hol_drop_flag.cpp.o.d"
  "bench_fig12_hol_drop_flag"
  "bench_fig12_hol_drop_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hol_drop_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
