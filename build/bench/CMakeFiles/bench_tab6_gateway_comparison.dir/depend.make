# Empty dependencies file for bench_tab6_gateway_comparison.
# This may be replaced when dependencies are built.
