# Empty compiler generated dependencies file for bench_ablation_reorder_queues.
# This may be replaced when dependencies are built.
