file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_numa_crossing.dir/bench_fig16_numa_crossing.cpp.o"
  "CMakeFiles/bench_fig16_numa_crossing.dir/bench_fig16_numa_crossing.cpp.o.d"
  "bench_fig16_numa_crossing"
  "bench_fig16_numa_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_numa_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
