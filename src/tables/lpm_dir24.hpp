// DIR-24-8 longest-prefix-match table for IPv4, the same layout DPDK's
// rte_lpm uses. One of Albatross's headline advantages over both DPUs and
// Sailfish (Tab. 6) is holding >10M LPM rules (the VXLAN routing table)
// in DRAM: a full /24 direct-index array plus dynamically allocated /32
// expansion groups gives O(1) lookups at any rule count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace albatross {

/// Route target produced by a lookup (24-bit payload like rte_lpm).
using NextHop = std::uint32_t;
constexpr NextHop kMaxNextHop = (1u << 24) - 1;

class LpmDir24 {
 public:
  LpmDir24();

  /// Adds (or replaces) a prefix route. depth in [1,32].
  /// Returns false for invalid depth or next_hop out of 24-bit range.
  bool add(Ipv4Address prefix, std::uint8_t depth, NextHop next_hop);

  /// Removes a route; longer rules shadowed by it are re-exposed.
  bool remove(Ipv4Address prefix, std::uint8_t depth);

  /// Longest-prefix-match lookup. O(1): one or two array reads.
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4Address addr) const;

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::size_t tbl8_groups_in_use() const;

  /// Approximate DRAM footprint, used by the Tab. 6 capacity comparison.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // Entry encoding (tbl24 and tbl8 share it):
  //   bit 31: valid
  //   bit 30: tbl24 only — points to a tbl8 group instead of a next hop
  //   bits 29..24: depth of the owning rule (1..32)
  //   bits 23..0: next hop, or tbl8 group index
  static constexpr std::uint32_t kValid = 1u << 31;
  static constexpr std::uint32_t kExtended = 1u << 30;
  static constexpr std::uint32_t kPayloadMask = (1u << 24) - 1;

  static constexpr std::uint32_t entry(std::uint8_t depth, std::uint32_t payload,
                                       bool extended) {
    return kValid | (extended ? kExtended : 0u) |
           (std::uint32_t{depth} << 24) | (payload & kPayloadMask);
  }
  static constexpr std::uint8_t entry_depth(std::uint32_t e) {
    return static_cast<std::uint8_t>((e >> 24) & 0x3f);
  }

  std::uint32_t alloc_tbl8(std::uint32_t inherit_entry);
  void free_tbl8(std::uint32_t group);

  /// Writes `e` over the expansion range of (prefix, depth), but only
  /// into slots whose current owner depth is <= depth (rule shadowing).
  void write_range(std::uint32_t prefix, std::uint8_t depth, std::uint32_t e);

  /// Finds the best covering rule shallower than `depth` for re-exposure
  /// after a delete.
  [[nodiscard]] std::optional<std::pair<std::uint8_t, NextHop>> covering_rule(
      std::uint32_t prefix, std::uint8_t depth) const;

  std::vector<std::uint32_t> tbl24_;              // 2^24 entries
  std::vector<std::vector<std::uint32_t>> tbl8_;  // groups of 256
  std::vector<std::uint32_t> free_tbl8_;

  // Rule store for delete semantics: key = (depth, prefix-bits).
  std::map<std::pair<std::uint8_t, std::uint32_t>, NextHop> rules_;
};

}  // namespace albatross
