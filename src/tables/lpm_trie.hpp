// Reference binary-trie LPM. Slow (O(depth) per lookup) but trivially
// correct; the property-based tests cross-check LpmDir24 against it under
// randomized add/remove/lookup sequences. It also stands in for the
// "software LPM" DPU implementations §2.2 criticises, so the LPM bench
// can show the direct-index table's constant-time advantage.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "tables/lpm_dir24.hpp"

namespace albatross {

class LpmTrie {
 public:
  LpmTrie() : root_(std::make_unique<Node>()) {}

  bool add(Ipv4Address prefix, std::uint8_t depth, NextHop next_hop);
  bool remove(Ipv4Address prefix, std::uint8_t depth);
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4Address addr) const;
  [[nodiscard]] std::size_t rule_count() const { return rules_; }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<NextHop> next_hop;
  };

  std::unique_ptr<Node> root_;
  std::size_t rules_ = 0;
};

}  // namespace albatross
