#include "tables/vm_nc_map.hpp"

namespace albatross {

VmNcMap::VmNcMap(std::size_t capacity_hint) : table_(capacity_hint) {}

bool VmNcMap::insert(Vni vni, Ipv4Address vm_ip, const VmLocation& loc) {
  return table_.insert(key(vni, vm_ip), loc);
}

std::optional<VmLocation> VmNcMap::lookup(Vni vni, Ipv4Address vm_ip) const {
  return table_.find(key(vni, vm_ip));
}

bool VmNcMap::erase(Vni vni, Ipv4Address vm_ip) {
  return table_.erase(key(vni, vm_ip));
}

std::optional<std::uint16_t> VmNcMap::migrate(Vni vni, Ipv4Address vm_ip,
                                              Ipv4Address new_nc) {
  VmLocation* loc = table_.find_mut(key(vni, vm_ip));
  if (loc == nullptr) return std::nullopt;
  loc->nc_ip = new_nc;
  ++loc->version;
  return loc->version;
}

std::size_t VmNcMap::memory_bytes() const {
  // Each slot stores key + VmLocation + occupancy; use the table's
  // geometric capacity as the resident estimate.
  return table_.capacity() * (sizeof(std::uint64_t) + sizeof(VmLocation) + 1);
}

Ipv4Address VmNcMap::synthetic_vm_ip(Vni vni, std::uint32_t vm_index) {
  // 10.x.y.z private space carved per tenant.
  return Ipv4Address{0x0a000000u | ((vni & 0xfff) << 12) |
                     (vm_index & 0xfff)};
}

Ipv4Address VmNcMap::synthetic_nc_ip(Vni vni, std::uint32_t vm_index) {
  // 192.168/16-style NC fabric collapsed into 172.16/12 space.
  const auto host = static_cast<std::uint32_t>(
      mix64((std::uint64_t{vni} << 20) | vm_index) & 0xfffff);
  return Ipv4Address{0xac100000u | host};
}

std::size_t VmNcMap::populate_synthetic(std::uint32_t tenants,
                                        std::uint32_t vms_per_tenant) {
  // Right-size the arena to the synthetic population (2x headroom for
  // later migrations/inserts, floor of 1024): scaled-down experiments
  // would otherwise scatter a few hundred entries across the default
  // multi-megabyte table and turn every lookup into cold-DRAM probes
  // that the cache model already charges for explicitly.
  const std::size_t expected =
      std::size_t{tenants} * std::size_t{vms_per_tenant};
  table_ = CuckooTable<std::uint64_t, VmLocation>(
      std::max<std::size_t>(expected * 2, 1024));
  std::size_t inserted = 0;
  for (Vni vni = 1; vni <= tenants; ++vni) {
    for (std::uint32_t vm = 0; vm < vms_per_tenant; ++vm) {
      VmLocation loc;
      loc.nc_ip = synthetic_nc_ip(vni, vm);
      loc.vm_mac = MacAddress::from_u64(0x020000000000ull |
                                        (std::uint64_t{vni} << 16) | vm);
      if (insert(vni, synthetic_vm_ip(vni, vm), loc)) ++inserted;
    }
  }
  return inserted;
}

}  // namespace albatross
