// Rate-limiting meters. The NIC pipeline's overload protection (§4.3)
// uses token-bucket meters in both limiter stages; the trTCM variant
// provides the GREEN/YELLOW/RED coloring the first stage (color_table)
// uses to decide which traffic overflows into the second stage.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace albatross {

enum class MeterColor : std::uint8_t { kGreen, kYellow, kRed };

/// Classic single-rate token bucket, metered in *packets* per second —
/// the paper's overload meters are pps-based (e.g. "first stage set
/// 8 Mpps and second stage set 2 Mpps").
class TokenBucket {
 public:
  TokenBucket() = default;

  /// rate_pps: sustained packets/sec; burst: bucket depth in packets.
  TokenBucket(double rate_pps, double burst_pkts);

  /// Charges `pkts` tokens at virtual time `now`; true = conforming.
  bool consume(NanoTime now, double pkts = 1.0);

  /// Peeks at the fill level without consuming.
  [[nodiscard]] double tokens_at(NanoTime now) const;

  void set_rate(double rate_pps, double burst_pkts);
  [[nodiscard]] double rate_pps() const { return rate_pps_; }

 private:
  void refill(NanoTime now);

  double rate_pps_ = 0.0;   // 0 = unlimited
  double burst_ = 0.0;
  double tokens_ = 0.0;
  NanoTime last_ = NanoTime{0};
};

/// Two-rate three-color marker (RFC 2698 semantics, pps-denominated):
/// under CIR -> GREEN, between CIR and PIR -> YELLOW, above PIR -> RED.
class TrTcmMeter {
 public:
  TrTcmMeter() = default;
  TrTcmMeter(double cir_pps, double cbs_pkts, double pir_pps, double pbs_pkts);

  MeterColor color(NanoTime now, double pkts = 1.0);

 private:
  TokenBucket committed_;
  TokenBucket peak_;
};

}  // namespace albatross
