#include "tables/meter.hpp"

namespace albatross {

TokenBucket::TokenBucket(double rate_pps, double burst_pkts)
    : rate_pps_(rate_pps), burst_(burst_pkts), tokens_(burst_pkts) {}

void TokenBucket::set_rate(double rate_pps, double burst_pkts) {
  rate_pps_ = rate_pps;
  burst_ = burst_pkts;
  if (tokens_ > burst_) tokens_ = burst_;
}

void TokenBucket::refill(NanoTime now) {
  if (now <= last_) return;
  const double elapsed_s = nanos_to_seconds(now - last_);
  tokens_ += rate_pps_ * elapsed_s;
  if (tokens_ > burst_) tokens_ = burst_;
  last_ = now;
}

bool TokenBucket::consume(NanoTime now, double pkts) {
  if (rate_pps_ <= 0.0) return true;  // unlimited
  refill(now);
  if (tokens_ >= pkts) {
    tokens_ -= pkts;
    return true;
  }
  return false;
}

double TokenBucket::tokens_at(NanoTime now) const {
  if (rate_pps_ <= 0.0) return burst_;
  double t = tokens_;
  if (now > last_) {
    t += rate_pps_ * nanos_to_seconds(now - last_);
    if (t > burst_) t = burst_;
  }
  return t;
}

TrTcmMeter::TrTcmMeter(double cir_pps, double cbs_pkts, double pir_pps,
                       double pbs_pkts)
    : committed_(cir_pps, cbs_pkts), peak_(pir_pps, pbs_pkts) {}

MeterColor TrTcmMeter::color(NanoTime now, double pkts) {
  // trTCM: check the peak rate first; non-conformance there is RED.
  if (!peak_.consume(now, pkts)) return MeterColor::kRed;
  if (!committed_.consume(now, pkts)) return MeterColor::kYellow;
  return MeterColor::kGreen;
}

}  // namespace albatross
