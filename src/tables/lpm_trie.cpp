#include "tables/lpm_trie.hpp"

namespace albatross {

bool LpmTrie::add(Ipv4Address prefix, std::uint8_t depth, NextHop next_hop) {
  if (depth < 1 || depth > 32 || next_hop > kMaxNextHop) return false;
  Node* n = root_.get();
  for (std::uint8_t i = 0; i < depth; ++i) {
    const std::size_t bit = (prefix.addr >> (31 - i)) & 1;
    if (!n->child[bit]) n->child[bit] = std::make_unique<Node>();
    n = n->child[bit].get();
  }
  if (!n->next_hop) ++rules_;
  n->next_hop = next_hop;
  return true;
}

bool LpmTrie::remove(Ipv4Address prefix, std::uint8_t depth) {
  if (depth < 1 || depth > 32) return false;
  Node* n = root_.get();
  for (std::uint8_t i = 0; i < depth; ++i) {
    const std::size_t bit = (prefix.addr >> (31 - i)) & 1;
    if (!n->child[bit]) return false;
    n = n->child[bit].get();
  }
  if (!n->next_hop) return false;
  n->next_hop.reset();
  --rules_;
  // Interior nodes are not pruned; the reference implementation values
  // simplicity over memory.
  return true;
}

std::optional<NextHop> LpmTrie::lookup(Ipv4Address addr) const {
  const Node* n = root_.get();
  std::optional<NextHop> best;
  for (int i = 0; i < 32 && n != nullptr; ++i) {
    if (n->next_hop) best = n->next_hop;
    const std::size_t bit = (addr.addr >> (31 - i)) & 1;
    n = n->child[bit].get();
  }
  if (n != nullptr && n->next_hop) best = n->next_hop;
  return best;
}

}  // namespace albatross
