#include "tables/cuckoo_table.hpp"

namespace albatross {

// Explicit instantiations for the key/value combinations the gateway
// services use, keeping their code-gen out of every including TU.
template class CuckooTable<std::uint64_t, std::uint64_t>;
template class CuckooTable<FiveTuple, std::uint64_t>;

}  // namespace albatross
