// Bucketed cuckoo hash table: 2 candidate buckets x 4 slots, BFS-free
// random-walk eviction with a bounded kick chain. This is the exact-match
// engine behind the VM-NC mapping table, the conn/flow table and the SNAT
// session table — the "large flow table" style lookups DPUs are good at
// and which Albatross keeps in DRAM on the CPU side.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace albatross {

/// Hash adaptor: 64-bit mixes of the key for the two bucket choices.
template <typename Key>
struct CuckooHasher {
  std::uint64_t operator()(const Key& k) const {
    return mix64(std::hash<Key>{}(k));
  }
};

template <>
struct CuckooHasher<FiveTuple> {
  std::uint64_t operator()(const FiveTuple& t) const {
    const auto bytes = five_tuple_bytes(t);
    return mix64(fnv1a64(std::span<const std::uint8_t>{bytes}));
  }
};

template <typename Key, typename Value, typename Hasher = CuckooHasher<Key>>
class CuckooTable {
 public:
  static constexpr std::size_t kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 128;

  /// `capacity_hint` is rounded up to a power-of-two bucket count giving
  /// ~ 75% max load factor headroom.
  explicit CuckooTable(std::size_t capacity_hint = 1024) {
    std::size_t buckets = 2;
    while (buckets * kSlotsPerBucket * 3 / 4 < capacity_hint) buckets <<= 1;
    buckets_.resize(buckets);
    bucket_mask_ = buckets - 1;
  }

  /// Inserts or updates. Returns false only when the kick chain fails
  /// (table effectively full).
  bool insert(const Key& key, Value value) {
    const std::uint64_t h = hasher_(key);
    const std::size_t b1 = h & bucket_mask_;
    const std::size_t b2 = alt_bucket(b1, h);
    if (try_update(b1, key, value) || try_update(b2, key, value)) return true;
    for (auto& s : stash_) {
      if (s.key == key) {
        s.value = std::move(value);
        return true;
      }
    }
    if (try_insert(b1, key, value) || try_insert(b2, key, value)) {
      ++size_;
      return true;
    }
    // Random-walk eviction starting from b1.
    std::size_t bucket = b1;
    Key cur_key = key;
    Value cur_val = std::move(value);
    for (int kick = 0; kick < kMaxKicks; ++kick) {
      const std::size_t victim = kick_seed_++ % kSlotsPerBucket;
      auto& slot = buckets_[bucket].slots[victim];
      std::swap(cur_key, slot.key);
      std::swap(cur_val, slot.value);
      const std::uint64_t vh = hasher_(cur_key);
      const std::size_t vb1 = vh & bucket_mask_;
      const std::size_t vb2 = alt_bucket(vb1, vh);
      bucket = (bucket == vb1) ? vb2 : vb1;
      if (try_insert(bucket, cur_key, cur_val)) {
        ++size_;
        return true;
      }
    }
    // Kick chain exhausted. The walk already wrote the caller's entry
    // into the table and left one displaced entry in hand; park it in
    // the stash so no previously stored entry is ever lost.
    ++insert_failures_;
    if (stash_.size() >= kStashCapacity) return false;
    stash_.push_back(Slot{cur_key, std::move(cur_val)});
    ++size_;
    return true;
  }

  [[nodiscard]] std::optional<Value> find(const Key& key) const {
    const Slot* v = locate(key);
    return v ? std::optional<Value>(v->value) : std::nullopt;
  }

  /// Mutable access for in-place state updates (stateful NFs).
  Value* find_mut(const Key& key) {
    auto* v = const_cast<Slot*>(locate(key));
    return v ? &v->value : nullptr;
  }

  bool erase(const Key& key) {
    const std::uint64_t h = hasher_(key);
    for (const std::size_t b :
         {h & bucket_mask_, alt_bucket(h & bucket_mask_, h)}) {
      auto& bucket = buckets_[b];
      for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
        if (bucket.occupied[s] && bucket.slots[s].key == key) {
          bucket.occupied[s] = false;
          --size_;
          return true;
        }
      }
    }
    for (std::size_t i = 0; i < stash_.size(); ++i) {
      if (stash_[i].key == key) {
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
        --size_;
        return true;
      }
    }
    return false;
  }

  /// Visits every occupied entry; `fn(key, value) -> bool keep`.
  template <typename Fn>
  void for_each_erase_if(Fn&& fn) {
    for (auto& bucket : buckets_) {
      for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
        if (bucket.occupied[s] &&
            !fn(bucket.slots[s].key, bucket.slots[s].value)) {
          bucket.occupied[s] = false;
          --size_;
        }
      }
    }
    for (std::size_t i = stash_.size(); i-- > 0;) {
      if (!fn(stash_[i].key, stash_[i].value)) {
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
        --size_;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const {
    return buckets_.size() * kSlotsPerBucket;
  }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity());
  }
  [[nodiscard]] std::uint64_t insert_failures() const {
    return insert_failures_;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
  };
  struct Bucket {
    std::array<Slot, kSlotsPerBucket> slots{};
    std::array<bool, kSlotsPerBucket> occupied{};
  };

  [[nodiscard]] std::size_t alt_bucket(std::size_t b, std::uint64_t h) const {
    // Partial-key cuckoo: the alternate bucket is derived from a second
    // mix so either bucket can be computed from the key alone.
    return (b ^ mix64(h >> 32 | 1)) & bucket_mask_;
  }

  /// Looks the key up in both candidate buckets and the stash.
  const Slot* locate(const Key& key) const {
    const std::uint64_t h = hasher_(key);
    const Slot* v = find_slot(h & bucket_mask_, key);
    if (v == nullptr) v = find_slot(alt_bucket(h & bucket_mask_, h), key);
    if (v == nullptr) {
      for (const auto& s : stash_) {
        if (s.key == key) return &s;
      }
    }
    return v;
  }

  const Slot* find_slot(std::size_t b, const Key& key) const {
    const auto& bucket = buckets_[b];
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (bucket.occupied[s] && bucket.slots[s].key == key) {
        return &bucket.slots[s];
      }
    }
    return nullptr;
  }

  bool try_update(std::size_t b, const Key& key, const Value& value) {
    auto& bucket = buckets_[b];
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (bucket.occupied[s] && bucket.slots[s].key == key) {
        bucket.slots[s].value = value;
        return true;
      }
    }
    return false;
  }

  bool try_insert(std::size_t b, const Key& key, const Value& value) {
    auto& bucket = buckets_[b];
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (!bucket.occupied[s]) {
        bucket.slots[s] = {key, value};
        bucket.occupied[s] = true;
        return true;
      }
    }
    return false;
  }

  static constexpr std::size_t kStashCapacity = 8;

  std::vector<Bucket> buckets_;
  std::vector<Slot> stash_;
  std::size_t bucket_mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t insert_failures_ = 0;
  std::uint64_t kick_seed_ = 0x9e3779b9;
  Hasher hasher_;
};

}  // namespace albatross
