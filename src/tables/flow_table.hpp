// Connection/flow table with aging, built on the cuckoo table. This is
// the substrate for stateful NFs (SNAT, L4 LB sessions): Tofino could not
// self-update or age entries (§2.1), which is exactly what this table
// does on the CPU — entries are created by the data path on first packet
// and aged out by an incremental scan, no control-plane round trip.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

/// Per-flow connection state.
struct FlowState {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  NanoTime created = NanoTime{0};
  NanoTime last_seen = NanoTime{0};
  std::uint32_t nat_ip = 0;       ///< SNAT translation, 0 = none
  std::uint16_t nat_port = 0;
  std::uint16_t backend = 0;      ///< L4 LB backend index
  bool syn_seen = false;
  bool fin_seen = false;
};

struct FlowTableStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t insert_failures = 0;
  std::uint64_t aged_out = 0;
};

/// Flow table with idle-timeout aging. Not thread-safe by design: each
/// data core owns its own partition (the paper's §7 lesson — shared
/// per-flow state is the scalability killer; see StatefulNf for the
/// shared-state counter-model).
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity_hint = 1 << 16,
                     NanoTime idle_timeout = 30 * kSecond);

  /// Looks up the flow; on miss creates it (if `create_on_miss`).
  /// Returns nullptr when the table rejects the insert.
  FlowState* lookup(const FiveTuple& tuple, NanoTime now,
                    bool create_on_miss = true);

  [[nodiscard]] std::optional<FlowState> peek(const FiveTuple& tuple) const;

  bool erase(const FiveTuple& tuple);

  /// Incremental aging pass: removes flows idle beyond the timeout.
  /// Returns the number of entries reclaimed.
  std::size_t age(NanoTime now);

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const FlowTableStats& stats() const { return stats_; }

 private:
  CuckooTable<FiveTuple, FlowState> table_;
  NanoTime idle_timeout_;
  FlowTableStats stats_;
};

}  // namespace albatross
