#include "tables/lpm_dir24.hpp"

#include <cassert>

namespace albatross {
namespace {

constexpr std::uint32_t mask_prefix(std::uint32_t addr, std::uint8_t depth) {
  return depth == 0 ? 0
                    : (depth >= 32 ? addr : addr & ~((1u << (32 - depth)) - 1));
}

}  // namespace

LpmDir24::LpmDir24() : tbl24_(1u << 24, 0) {}

std::uint32_t LpmDir24::alloc_tbl8(std::uint32_t inherit_entry) {
  std::uint32_t group;
  if (!free_tbl8_.empty()) {
    group = free_tbl8_.back();
    free_tbl8_.pop_back();
    tbl8_[group].assign(256, inherit_entry);
  } else {
    group = static_cast<std::uint32_t>(tbl8_.size());
    tbl8_.emplace_back(256, inherit_entry);
  }
  return group;
}

void LpmDir24::free_tbl8(std::uint32_t group) { free_tbl8_.push_back(group); }

bool LpmDir24::add(Ipv4Address prefix, std::uint8_t depth, NextHop next_hop) {
  if (depth < 1 || depth > 32 || next_hop > kMaxNextHop) return false;
  const std::uint32_t p = mask_prefix(prefix.addr, depth);
  rules_[{depth, p}] = next_hop;

  if (depth <= 24) {
    const std::uint32_t first = p >> 8;
    const std::uint32_t count = 1u << (24 - depth);
    const std::uint32_t e = entry(depth, next_hop, /*extended=*/false);
    for (std::uint32_t i = first; i < first + count; ++i) {
      const std::uint32_t cur = tbl24_[i];
      if ((cur & kValid) == 0) {
        tbl24_[i] = e;
      } else if (cur & kExtended) {
        // Update slots inside the group owned by rules no deeper than us.
        auto& group = tbl8_[cur & kPayloadMask];
        const std::uint32_t sub = entry(depth, next_hop, false);
        for (auto& slot : group) {
          if ((slot & kValid) == 0 || entry_depth(slot) <= depth) slot = sub;
        }
      } else if (entry_depth(cur) <= depth) {
        tbl24_[i] = e;
      }
    }
    return true;
  }

  // depth > 24: one tbl24 slot, expansion inside a tbl8 group.
  const std::uint32_t idx = p >> 8;
  std::uint32_t cur = tbl24_[idx];
  if ((cur & kValid) == 0 || (cur & kExtended) == 0) {
    // Promote: the new group inherits the previous flat entry (or stays
    // invalid) so addresses not covered by the deep rule keep resolving.
    const std::uint32_t inherit = (cur & kValid) ? cur : 0u;
    const std::uint32_t group = alloc_tbl8(inherit);
    tbl24_[idx] = kValid | kExtended | group;
    cur = tbl24_[idx];
  }
  auto& group = tbl8_[cur & kPayloadMask];
  const std::uint32_t first = p & 0xff;
  const std::uint32_t count = 1u << (32 - depth);
  const std::uint32_t e = entry(depth, next_hop, false);
  for (std::uint32_t i = first; i < first + count; ++i) {
    const std::uint32_t slot = group[i];
    if ((slot & kValid) == 0 || entry_depth(slot) <= depth) group[i] = e;
  }
  return true;
}

std::optional<std::pair<std::uint8_t, NextHop>> LpmDir24::covering_rule(
    std::uint32_t prefix, std::uint8_t depth) const {
  for (int d = depth - 1; d >= 1; --d) {
    const auto it =
        rules_.find({static_cast<std::uint8_t>(d),
                     mask_prefix(prefix, static_cast<std::uint8_t>(d))});
    if (it != rules_.end()) {
      return std::make_pair(static_cast<std::uint8_t>(d), it->second);
    }
  }
  return std::nullopt;
}

bool LpmDir24::remove(Ipv4Address prefix, std::uint8_t depth) {
  if (depth < 1 || depth > 32) return false;
  const std::uint32_t p = mask_prefix(prefix.addr, depth);
  if (rules_.erase({depth, p}) == 0) return false;

  const auto cover = covering_rule(p, depth);
  const std::uint32_t replacement =
      cover ? entry(cover->first, cover->second, false) : 0u;

  if (depth <= 24) {
    const std::uint32_t first = p >> 8;
    const std::uint32_t count = 1u << (24 - depth);
    for (std::uint32_t i = first; i < first + count; ++i) {
      const std::uint32_t cur = tbl24_[i];
      if ((cur & kValid) == 0) continue;
      if (cur & kExtended) {
        auto& group = tbl8_[cur & kPayloadMask];
        for (auto& slot : group) {
          if ((slot & kValid) != 0 && entry_depth(slot) == depth) {
            slot = replacement;
          }
        }
      } else if (entry_depth(cur) == depth) {
        tbl24_[i] = replacement;
      }
    }
    return true;
  }

  const std::uint32_t idx = p >> 8;
  const std::uint32_t cur = tbl24_[idx];
  if ((cur & kValid) == 0 || (cur & kExtended) == 0) return true;
  const std::uint32_t group_idx = cur & kPayloadMask;
  auto& group = tbl8_[group_idx];
  const std::uint32_t first = p & 0xff;
  const std::uint32_t count = 1u << (32 - depth);
  for (std::uint32_t i = first; i < first + count; ++i) {
    if ((group[i] & kValid) != 0 && entry_depth(group[i]) == depth) {
      group[i] = replacement;
    }
  }
  // Collapse the group back to a flat tbl24 entry when no deep rule
  // remains inside it, reclaiming tbl8 memory.
  bool has_deep = false;
  for (const auto slot : group) {
    if ((slot & kValid) != 0 && entry_depth(slot) > 24) {
      has_deep = true;
      break;
    }
  }
  if (!has_deep) {
    const auto flat_cover = covering_rule(p, 25);
    tbl24_[idx] =
        flat_cover ? entry(flat_cover->first, flat_cover->second, false) : 0u;
    free_tbl8(group_idx);
  }
  return true;
}

std::optional<NextHop> LpmDir24::lookup(Ipv4Address addr) const {
  const std::uint32_t e = tbl24_[addr.addr >> 8];
  if ((e & kValid) == 0) return std::nullopt;
  if ((e & kExtended) == 0) return e & kPayloadMask;
  const std::uint32_t slot = tbl8_[e & kPayloadMask][addr.addr & 0xff];
  if ((slot & kValid) == 0) return std::nullopt;
  return slot & kPayloadMask;
}

std::size_t LpmDir24::tbl8_groups_in_use() const {
  return tbl8_.size() - free_tbl8_.size();
}

std::size_t LpmDir24::memory_bytes() const {
  return tbl24_.size() * sizeof(std::uint32_t) +
         tbl8_.size() * 256 * sizeof(std::uint32_t);
}

}  // namespace albatross
