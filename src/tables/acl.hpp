// Access-control list classifier. Gateways drop traffic on ACL hits,
// which is one of the CPU-side packet-loss sources that triggers reorder
// HOL blocking (§4.1) — the drop-flag mechanism (Fig. 12) exists to tell
// the NIC pipeline about exactly these drops.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace albatross {

enum class AclAction : std::uint8_t { kPermit, kDeny };

/// Single ACL rule: prefix match on IPs, range match on ports, optional
/// protocol. Lower `priority` value wins (first match semantics after
/// sorting).
struct AclRule {
  std::uint32_t rule_id = 0;
  std::int32_t priority = 0;
  Ipv4Address src_prefix;
  std::uint8_t src_prefix_len = 0;  // 0 = wildcard
  Ipv4Address dst_prefix;
  std::uint8_t dst_prefix_len = 0;
  std::uint16_t src_port_lo = 0;
  std::uint16_t src_port_hi = 0xffff;
  std::uint16_t dst_port_lo = 0;
  std::uint16_t dst_port_hi = 0xffff;
  std::optional<IpProto> proto;  // nullopt = any
  AclAction action = AclAction::kPermit;

  [[nodiscard]] bool matches(const FiveTuple& t) const;
};

/// Priority-ordered ACL. Rule sets at cloud gateways are small relative
/// to routing tables (hundreds to low thousands), so a sorted linear
/// probe with early exit is both simple and representative; the classifier
/// counts evaluated rules so benches can expose matching cost.
class Acl {
 public:
  void add_rule(AclRule rule);
  bool remove_rule(std::uint32_t rule_id);

  /// Returns the action of the highest-priority matching rule, or the
  /// default action when nothing matches.
  [[nodiscard]] AclAction evaluate(const FiveTuple& t) const;

  /// Like evaluate, but also reports the matching rule id.
  [[nodiscard]] std::pair<AclAction, std::optional<std::uint32_t>>
  evaluate_verbose(const FiveTuple& t) const;

  void set_default_action(AclAction a) { default_action_ = a; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] std::uint64_t rules_evaluated() const {
    return rules_evaluated_;
  }

 private:
  std::vector<AclRule> rules_;  // kept sorted by priority
  AclAction default_action_ = AclAction::kPermit;
  mutable std::uint64_t rules_evaluated_ = 0;
};

}  // namespace albatross
