#include "tables/flow_table.hpp"

namespace albatross {

FlowTable::FlowTable(std::size_t capacity_hint, NanoTime idle_timeout)
    : table_(capacity_hint), idle_timeout_(idle_timeout) {}

FlowState* FlowTable::lookup(const FiveTuple& tuple, NanoTime now,
                             bool create_on_miss) {
  if (FlowState* s = table_.find_mut(tuple)) {
    ++stats_.hits;
    s->last_seen = now;
    return s;
  }
  ++stats_.misses;
  if (!create_on_miss) return nullptr;
  FlowState fresh;
  fresh.created = now;
  fresh.last_seen = now;
  if (!table_.insert(tuple, fresh)) {
    ++stats_.insert_failures;
    return nullptr;
  }
  ++stats_.inserts;
  return table_.find_mut(tuple);
}

std::optional<FlowState> FlowTable::peek(const FiveTuple& tuple) const {
  return table_.find(tuple);
}

bool FlowTable::erase(const FiveTuple& tuple) { return table_.erase(tuple); }

std::size_t FlowTable::age(NanoTime now) {
  std::size_t reclaimed = 0;
  table_.for_each_erase_if([&](const FiveTuple&, const FlowState& s) {
    const bool keep = now - s.last_seen <= idle_timeout_;
    if (!keep) ++reclaimed;
    return keep;
  });
  stats_.aged_out += reclaimed;
  return reclaimed;
}

}  // namespace albatross
