#include "tables/acl.hpp"

#include <algorithm>

namespace albatross {
namespace {

bool prefix_match(Ipv4Address addr, Ipv4Address prefix, std::uint8_t len) {
  if (len == 0) return true;
  const std::uint32_t mask =
      len >= 32 ? 0xffffffffu : ~((1u << (32 - len)) - 1);
  return (addr.addr & mask) == (prefix.addr & mask);
}

}  // namespace

bool AclRule::matches(const FiveTuple& t) const {
  if (proto && *proto != t.proto) return false;
  if (!prefix_match(t.src_ip, src_prefix, src_prefix_len)) return false;
  if (!prefix_match(t.dst_ip, dst_prefix, dst_prefix_len)) return false;
  if (t.src_port < src_port_lo || t.src_port > src_port_hi) return false;
  if (t.dst_port < dst_port_lo || t.dst_port > dst_port_hi) return false;
  return true;
}

void Acl::add_rule(AclRule rule) {
  const auto pos = std::lower_bound(
      rules_.begin(), rules_.end(), rule,
      [](const AclRule& a, const AclRule& b) { return a.priority < b.priority; });
  rules_.insert(pos, std::move(rule));
}

bool Acl::remove_rule(std::uint32_t rule_id) {
  const auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [rule_id](const AclRule& r) { return r.rule_id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

AclAction Acl::evaluate(const FiveTuple& t) const {
  return evaluate_verbose(t).first;
}

std::pair<AclAction, std::optional<std::uint32_t>> Acl::evaluate_verbose(
    const FiveTuple& t) const {
  for (const auto& r : rules_) {
    ++rules_evaluated_;
    if (r.matches(t)) return {r.action, r.rule_id};
  }
  return {default_action_, std::nullopt};
}

}  // namespace albatross
