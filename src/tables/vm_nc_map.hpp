// VM -> NC (network container / host) mapping table. This is the table
// that consumed 96.4% of Sailfish's pipeline-1,3 SRAM (Tab. 1) for
// millions of tenants; Albatross hosts it in DRAM where capacity is a
// non-issue. Keyed by (VNI, VM IP), it returns the physical host (NC) a
// VM currently lives on plus the VTEP to tunnel to.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

struct VmLocation {
  Ipv4Address nc_ip;        ///< physical host address (VTEP endpoint)
  MacAddress vm_mac;        ///< inner MAC to rewrite toward the VM
  std::uint16_t version = 0;///< bumped on live migration
};

class VmNcMap {
 public:
  explicit VmNcMap(std::size_t capacity_hint = 1 << 20);

  bool insert(Vni vni, Ipv4Address vm_ip, const VmLocation& loc);
  [[nodiscard]] std::optional<VmLocation> lookup(Vni vni,
                                                 Ipv4Address vm_ip) const;
  bool erase(Vni vni, Ipv4Address vm_ip);

  /// Live migration: atomically repoints the VM to a new NC and bumps
  /// the mapping version (vSwitches use the version to invalidate their
  /// cached entries learned from the gateway, §3.2). Returns the new
  /// version, or nullopt when the VM is unknown.
  std::optional<std::uint16_t> migrate(Vni vni, Ipv4Address vm_ip,
                                       Ipv4Address new_nc);

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// DRAM footprint estimate for the Tab. 6 capacity argument.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Synthesises `vms_per_tenant` mappings for tenants [0, tenants),
  /// used by workload setup. Returns number inserted.
  std::size_t populate_synthetic(std::uint32_t tenants,
                                 std::uint32_t vms_per_tenant);

  /// Deterministic layout of the synthetic population, shared with the
  /// traffic generators so generated flows always hit the table.
  static Ipv4Address synthetic_vm_ip(Vni vni, std::uint32_t vm_index);
  static Ipv4Address synthetic_nc_ip(Vni vni, std::uint32_t vm_index);

 private:
  static std::uint64_t key(Vni vni, Ipv4Address vm_ip) {
    return (std::uint64_t{vni} << 32) | vm_ip.addr;
  }

  CuckooTable<std::uint64_t, VmLocation> table_;
};

}  // namespace albatross
