#include "traffic/microburst.hpp"

namespace albatross {

MicroburstSource::MicroburstSource(MicroburstConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  flows_.reserve(cfg_.num_flows);
  const std::uint32_t tenants = cfg_.tenants == 0 ? 1 : cfg_.tenants;
  for (std::uint64_t i = 0; i < cfg_.num_flows; ++i) {
    // Offset ids so microburst flows don't collide with background ones.
    const Vni vni = 1 + static_cast<Vni>(i % tenants);
    flows_.push_back(make_flow(0x4000'0000ull + i, vni,
                               static_cast<std::uint32_t>(i / tenants)));
  }
  schedule_next_burst(cfg_.start);
}

void MicroburstSource::schedule_next_burst(NanoTime after) {
  next_ = after + Nanos{static_cast<std::int64_t>(rng_.next_exponential(
                      static_cast<double>(cfg_.mean_burst_gap.count())))};
  // Geometric burst length with the configured mean (min 1).
  const double u = rng_.next_exponential(
      static_cast<double>(cfg_.mean_burst_packets));
  remaining_in_burst_ = static_cast<std::size_t>(u) + 1;
  burst_flow_ = rng_.next_below(flows_.size());
  ++bursts_;
}

std::optional<NanoTime> MicroburstSource::next_time() const { return next_; }

PacketPtr MicroburstSource::emit() {
  FlowInfo& f = cfg_.single_flow_bursts
                    ? flows_[burst_flow_]
                    : flows_[rng_.next_below(flows_.size())];
  auto pkt = Packet::make_synthetic(f.tuple, f.vni, cfg_.packet_bytes);
  pkt->rx_time = next_;
  pkt->flow_id = f.flow_id;
  pkt->seq_in_flow = f.packets_emitted++;

  if (--remaining_in_burst_ > 0) {
    next_ += nanos_from_double(1e9 / cfg_.burst_rate_pps);
  } else {
    schedule_next_burst(next_);
  }
  return pkt;
}

}  // namespace albatross
