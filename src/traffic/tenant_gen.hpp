// Per-tenant traffic for the overload-protection experiments (Fig. 13/14):
// four tenants at 4/3/2/1 Mpps, tenant 1 ramping to 34 Mpps at t=15s.
// Each tenant is a HeavyHitter-style CBR stream over a handful of flows,
// tagged with the tenant's VNI so the NIC's two-stage rate limiter can
// attribute it.
#pragma once

#include "traffic/heavy_hitter.hpp"

namespace albatross {

struct TenantSpec {
  Vni vni = 0;
  RateProfile profile;
  std::size_t flows = 4;          ///< concurrent flows of this tenant
  std::size_t packet_bytes = 256;
};

/// A source emitting the union of all tenants' streams. Per-packet flow
/// choice round-robins across each tenant's flows.
class TenantTrafficSource final : public TrafficSource {
 public:
  TenantTrafficSource(std::vector<TenantSpec> tenants, NanoTime start,
                      std::uint64_t seed = 23);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

  /// Packets emitted so far for a given tenant (offered load oracle).
  [[nodiscard]] std::uint64_t emitted(Vni vni) const;

 private:
  struct PerTenant {
    TenantSpec spec;
    std::vector<FlowInfo> flows;
    std::optional<NanoTime> next;
    std::size_t rr = 0;
    std::uint64_t emitted = 0;
  };

  void advance(PerTenant& t, NanoTime from);
  [[nodiscard]] std::size_t earliest() const;

  std::vector<PerTenant> tenants_;
  Rng rng_;
};

}  // namespace albatross
