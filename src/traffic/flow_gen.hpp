// Traffic sources. Every evaluation scenario in the paper is a mix of:
// a large population of background flows (Zipf-popular, Poisson arrivals),
// heavy hitters, microbursts and per-tenant ramps. Sources share one
// interface so a TrafficMux can merge them into a single arrival stream
// for the NIC pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"

namespace albatross {

/// One synthetic tenant flow: the generators and the oracle tables use
/// the same deterministic layout, so generated traffic always resolves
/// in the gateway's VM-NC and routing tables.
struct FlowInfo {
  std::uint64_t flow_id = 0;
  FiveTuple tuple;
  Vni vni = 0;
  std::uint64_t packets_emitted = 0;
};

/// Derives the canonical flow layout for (vni, index-within-tenant).
FlowInfo make_flow(std::uint64_t flow_id, Vni vni, std::uint32_t flow_in_vni);

/// Abstract arrival stream.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Virtual time of the next packet, or nullopt when exhausted.
  [[nodiscard]] virtual std::optional<NanoTime> next_time() const = 0;

  /// Emits the packet at next_time(); advances the source.
  virtual PacketPtr emit() = 0;
};

struct PoissonFlowConfig {
  std::size_t num_flows = 500'000;
  std::uint32_t tenants = 1000;
  double zipf_alpha = 0.9;       ///< flow-popularity skew
  double rate_pps = 1e6;         ///< aggregate packets/sec
  std::size_t packet_bytes = 256;
  NanoTime start = NanoTime{0};
  std::uint64_t seed = 1;
  bool poisson = true;           ///< false = deterministic spacing
};

/// Background traffic: `num_flows` concurrent flows over `tenants`
/// tenants; per-packet flow choice is Zipf-distributed.
class PoissonFlowSource final : public TrafficSource {
 public:
  explicit PoissonFlowSource(PoissonFlowConfig cfg);

  /// Same arrival process over an explicit flow population. The fleet
  /// layer uses this to feed flows whose VNI mix was drawn Zipf-over-
  /// *tenants* (fleet/tenant_population.hpp) instead of the canonical
  /// round-robin tenant layout; cfg.num_flows is ignored.
  PoissonFlowSource(PoissonFlowConfig cfg, std::vector<FlowInfo> flows);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

  void set_rate(double pps);
  [[nodiscard]] const std::vector<FlowInfo>& flows() const { return flows_; }

 private:
  void advance();

  PoissonFlowConfig cfg_;
  Rng rng_;
  ZipfSampler zipf_;
  std::vector<FlowInfo> flows_;
  NanoTime next_;
};

/// Merges sources, always emitting the globally earliest packet.
class TrafficMux final : public TrafficSource {
 public:
  void add(std::unique_ptr<TrafficSource> src);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  TrafficSource& source(std::size_t i) { return *sources_[i]; }

 private:
  [[nodiscard]] std::size_t earliest() const;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
};

}  // namespace albatross
