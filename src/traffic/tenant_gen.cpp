#include "traffic/tenant_gen.hpp"

#include <limits>

namespace albatross {

TenantTrafficSource::TenantTrafficSource(std::vector<TenantSpec> tenants,
                                         NanoTime start, std::uint64_t seed)
    : rng_(seed) {
  tenants_.reserve(tenants.size());
  std::uint64_t next_flow_id = 0x8000'0000ull;
  for (auto& spec : tenants) {
    PerTenant t;
    t.spec = std::move(spec);
    for (std::size_t i = 0; i < t.spec.flows; ++i) {
      t.flows.push_back(make_flow(next_flow_id++, t.spec.vni,
                                  static_cast<std::uint32_t>(i)));
    }
    advance(t, start);
    tenants_.push_back(std::move(t));
  }
}

void TenantTrafficSource::advance(PerTenant& t, NanoTime from) {
  NanoTime cursor = from;
  for (int guard = 0; guard < 1024; ++guard) {
    const double rate = t.spec.profile.rate_at(cursor);
    const auto change = t.spec.profile.next_change(cursor);
    if (rate > 0.0) {
      const auto gap = Nanos{static_cast<std::int64_t>(1e9 / rate)};
      const NanoTime candidate = cursor + (gap < Nanos{1} ? Nanos{1} : gap);
      if (!change || candidate < *change) {
        t.next = candidate;
        return;
      }
      cursor = *change;
      continue;
    }
    if (!change) {
      t.next = std::nullopt;
      return;
    }
    cursor = *change;
  }
  t.next = std::nullopt;
}

std::size_t TenantTrafficSource::earliest() const {
  std::size_t best = tenants_.size();
  NanoTime best_t = NanoTime::max();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].next && *tenants_[i].next < best_t) {
      best_t = *tenants_[i].next;
      best = i;
    }
  }
  return best;
}

std::optional<NanoTime> TenantTrafficSource::next_time() const {
  const std::size_t i = earliest();
  if (i == tenants_.size()) return std::nullopt;
  return tenants_[i].next;
}

PacketPtr TenantTrafficSource::emit() {
  const std::size_t i = earliest();
  if (i == tenants_.size()) return nullptr;
  PerTenant& t = tenants_[i];
  FlowInfo& f = t.flows[t.rr++ % t.flows.size()];
  auto pkt = Packet::make_synthetic(f.tuple, f.vni, t.spec.packet_bytes);
  pkt->rx_time = *t.next;
  pkt->flow_id = f.flow_id;
  pkt->seq_in_flow = f.packets_emitted++;
  ++t.emitted;
  advance(t, *t.next);
  return pkt;
}

std::uint64_t TenantTrafficSource::emitted(Vni vni) const {
  for (const auto& t : tenants_) {
    if (t.spec.vni == vni) return t.emitted;
  }
  return 0;
}

}  // namespace albatross
