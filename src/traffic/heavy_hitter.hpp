// Heavy-hitter source: a single flow whose rate follows a piecewise-
// constant profile. Fig. 8 sweeps a hitter from 0 to 130% of one core's
// capacity against 500K background flows; Fig. 13/14 ramp tenant 1 from
// 4 Mpps to 34 Mpps at t=15s. Both are RateProfile instances.
#pragma once

#include <vector>

#include "traffic/flow_gen.hpp"

namespace albatross {

/// Piecewise-constant rate schedule: rate of the last step whose
/// `at` <= t applies; 0 pps before the first step.
class RateProfile {
 public:
  RateProfile() = default;
  RateProfile(std::initializer_list<std::pair<NanoTime, double>> steps);

  void add_step(NanoTime at, double pps);
  [[nodiscard]] double rate_at(NanoTime t) const;

  /// Next profile change strictly after `t`, if any.
  [[nodiscard]] std::optional<NanoTime> next_change(NanoTime t) const;

 private:
  std::vector<std::pair<NanoTime, double>> steps_;  // sorted by time
};

struct HeavyHitterConfig {
  FlowInfo flow;                   ///< the dominant flow's identity
  RateProfile profile;
  std::size_t packet_bytes = 256;
  NanoTime start = NanoTime{0};
  std::uint64_t seed = 7;
  bool poisson = false;            ///< hitters are typically line-rate CBR
};

class HeavyHitterSource final : public TrafficSource {
 public:
  explicit HeavyHitterSource(HeavyHitterConfig cfg);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

  [[nodiscard]] const FlowInfo& flow() const { return cfg_.flow; }

 private:
  void advance_from(NanoTime t);

  HeavyHitterConfig cfg_;
  Rng rng_;
  std::optional<NanoTime> next_;
  std::uint64_t emitted_ = 0;
};

}  // namespace albatross
