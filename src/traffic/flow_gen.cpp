#include "traffic/flow_gen.hpp"

#include <limits>

#include "common/hash.hpp"
#include "tables/vm_nc_map.hpp"

namespace albatross {

FlowInfo make_flow(std::uint64_t flow_id, Vni vni, std::uint32_t flow_in_vni) {
  FlowInfo f;
  f.flow_id = flow_id;
  f.vni = vni;
  // Source: one of the tenant's VMs; destination: another VM / external
  // endpoint derived from the flow index, ports mixed from the id so the
  // 5-tuple space is well spread for RSS and ordq hashing.
  const std::uint32_t vm = flow_in_vni % 64;
  f.tuple.src_ip = VmNcMap::synthetic_vm_ip(vni, vm);
  f.tuple.dst_ip = Ipv4Address{0x08000000u |
                               static_cast<std::uint32_t>(
                                   mix64(flow_id * 2654435761u) & 0xffffff)};
  const auto port_mix = mix64(flow_id ^ 0xa1ba70550ull);
  f.tuple.src_port = static_cast<std::uint16_t>(1024 + (port_mix & 0xefff));
  f.tuple.dst_port = static_cast<std::uint16_t>(
      1024 + ((port_mix >> 16) & 0xefff));
  f.tuple.proto = IpProto::kUdp;
  return f;
}

namespace {

std::vector<FlowInfo> canonical_flows(const PoissonFlowConfig& cfg) {
  std::vector<FlowInfo> flows;
  flows.reserve(cfg.num_flows);
  const std::uint32_t tenants = cfg.tenants == 0 ? 1 : cfg.tenants;
  for (std::uint64_t i = 0; i < cfg.num_flows; ++i) {
    const Vni vni = 1 + static_cast<Vni>(i % tenants);
    flows.push_back(make_flow(i, vni, static_cast<std::uint32_t>(i / tenants)));
  }
  return flows;
}

}  // namespace

PoissonFlowSource::PoissonFlowSource(PoissonFlowConfig cfg)
    : PoissonFlowSource(cfg, canonical_flows(cfg)) {}

PoissonFlowSource::PoissonFlowSource(PoissonFlowConfig cfg,
                                     std::vector<FlowInfo> flows)
    : cfg_(cfg),
      rng_(cfg.seed),
      zipf_(flows.size(), cfg.zipf_alpha),
      flows_(std::move(flows)),
      next_(cfg.start) {
  cfg_.num_flows = flows_.size();
  advance();
}

void PoissonFlowSource::advance() {
  if (cfg_.rate_pps <= 0.0) {
    next_ = NanoTime::max();
    return;
  }
  const double mean_ns = 1e9 / cfg_.rate_pps;
  const double gap =
      cfg_.poisson ? rng_.next_exponential(mean_ns) : mean_ns;
  next_ += nanos_from_double(gap < 1.0 ? 1.0 : gap);
}

std::optional<NanoTime> PoissonFlowSource::next_time() const {
  if (next_ == NanoTime::max()) return std::nullopt;
  return next_;
}

PacketPtr PoissonFlowSource::emit() {
  FlowInfo& f = flows_[zipf_.sample(rng_)];
  auto pkt = Packet::make_synthetic(f.tuple, f.vni, cfg_.packet_bytes);
  pkt->rx_time = next_;
  pkt->flow_id = f.flow_id;
  pkt->seq_in_flow = f.packets_emitted++;
  advance();
  return pkt;
}

void PoissonFlowSource::set_rate(double pps) {
  const NanoTime base = next_ == NanoTime::max()
                            ? cfg_.start
                            : next_;
  cfg_.rate_pps = pps;
  next_ = base;
  if (pps <= 0.0) next_ = NanoTime::max();
}

void TrafficMux::add(std::unique_ptr<TrafficSource> src) {
  sources_.push_back(std::move(src));
}

std::size_t TrafficMux::earliest() const {
  std::size_t best = sources_.size();
  NanoTime best_t = NanoTime::max();
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const auto t = sources_[i]->next_time();
    if (t && *t < best_t) {
      best_t = *t;
      best = i;
    }
  }
  return best;
}

std::optional<NanoTime> TrafficMux::next_time() const {
  const std::size_t i = earliest();
  if (i == sources_.size()) return std::nullopt;
  return sources_[i]->next_time();
}

PacketPtr TrafficMux::emit() {
  const std::size_t i = earliest();
  if (i == sources_.size()) return nullptr;
  return sources_[i]->emit();
}

}  // namespace albatross
