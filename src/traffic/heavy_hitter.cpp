#include "traffic/heavy_hitter.hpp"

#include <algorithm>

namespace albatross {

RateProfile::RateProfile(
    std::initializer_list<std::pair<NanoTime, double>> steps) {
  for (const auto& s : steps) add_step(s.first, s.second);
}

void RateProfile::add_step(NanoTime at, double pps) {
  steps_.emplace_back(at, pps);
  std::sort(steps_.begin(), steps_.end());
}

double RateProfile::rate_at(NanoTime t) const {
  double rate = 0.0;
  for (const auto& [at, pps] : steps_) {
    if (at > t) break;
    rate = pps;
  }
  return rate;
}

std::optional<NanoTime> RateProfile::next_change(NanoTime t) const {
  for (const auto& [at, pps] : steps_) {
    if (at > t) return at;
  }
  return std::nullopt;
}

HeavyHitterSource::HeavyHitterSource(HeavyHitterConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  advance_from(cfg_.start);
}

void HeavyHitterSource::advance_from(NanoTime t) {
  // Walk forward through profile segments until one has a positive rate
  // and yields an arrival inside the segment.
  NanoTime cursor = t;
  for (int guard = 0; guard < 1024; ++guard) {
    const double rate = cfg_.profile.rate_at(cursor);
    const auto change = cfg_.profile.next_change(cursor);
    if (rate > 0.0) {
      const double mean_ns = 1e9 / rate;
      const double gap =
          cfg_.poisson ? rng_.next_exponential(mean_ns) : mean_ns;
      const NanoTime candidate =
          cursor + nanos_from_double(gap < 1.0 ? 1.0 : gap);
      if (!change || candidate < *change) {
        next_ = candidate;
        return;
      }
      cursor = *change;  // arrival spills past a rate change: re-sample
      continue;
    }
    if (!change) {
      next_ = std::nullopt;  // zero rate forever
      return;
    }
    cursor = *change;
  }
  next_ = std::nullopt;
}

std::optional<NanoTime> HeavyHitterSource::next_time() const { return next_; }

PacketPtr HeavyHitterSource::emit() {
  if (!next_) return nullptr;
  auto pkt =
      Packet::make_synthetic(cfg_.flow.tuple, cfg_.flow.vni, cfg_.packet_bytes);
  pkt->rx_time = *next_;
  pkt->flow_id = cfg_.flow.flow_id;
  pkt->seq_in_flow = emitted_++;
  advance_from(*next_);
  return pkt;
}

}  // namespace albatross
