// Microburst source. Production cloud traffic is bursty on sub-second
// timescales: Fig. 10's observation is that micro-bursts raise a single
// RSS core's utilisation by ~50% in under a second while PLB spreads the
// same burst across tens of cores. This source emits line-rate packet
// trains at random intervals on top of an idle baseline.
#pragma once

#include "traffic/flow_gen.hpp"

namespace albatross {

struct MicroburstConfig {
  std::size_t num_flows = 1000;     ///< flows the bursts are drawn from
  std::uint32_t tenants = 50;
  /// Mean gap between burst starts (exponential).
  NanoTime mean_burst_gap = 10 * kMillisecond;
  /// Packets per burst (geometrically distributed around this mean).
  std::size_t mean_burst_packets = 2000;
  /// Rate *inside* a burst — bursts arrive back-to-back at line rate.
  double burst_rate_pps = 10e6;
  std::size_t packet_bytes = 256;
  NanoTime start = NanoTime{0};
  std::uint64_t seed = 11;
  /// Each burst sticks to one flow (true, worst case for RSS) or sprays
  /// over flows (false).
  bool single_flow_bursts = true;
};

class MicroburstSource final : public TrafficSource {
 public:
  explicit MicroburstSource(MicroburstConfig cfg);

  [[nodiscard]] std::optional<NanoTime> next_time() const override;
  PacketPtr emit() override;

  [[nodiscard]] std::uint64_t bursts_started() const { return bursts_; }

 private:
  void schedule_next_burst(NanoTime after);

  MicroburstConfig cfg_;
  Rng rng_;
  std::vector<FlowInfo> flows_;
  NanoTime next_ = NanoTime{0};
  std::size_t remaining_in_burst_ = 0;
  std::size_t burst_flow_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace albatross
