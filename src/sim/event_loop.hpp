// Discrete-event simulation engine. Everything timed in the Albatross
// model — NIC pipeline stages, DMA completion, CPU core run loops, BGP
// timers, traffic arrival — executes as events on this loop against a
// virtual nanosecond clock, so experiments are deterministic and run in
// milliseconds of wall time regardless of the simulated traffic volume.
//
// The scheduler is a hierarchical timer wheel (11 levels x 64 slots,
// 6 bits per level — covers the full 64-bit nanosecond range) instead
// of a binary heap: insert and pop are O(1) amortized, and events live
// in a slab of reusable nodes whose actions are stored inline
// (InlineAction below), so the hot path performs no per-event heap
// allocation. Same-time events fire in scheduling order (FIFO
// tie-break), which replay determinism depends on; the tie-break is
// structural — slot chains are appended in scheduling order and
// cascades preserve chain order — rather than a stored sequence
// number.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace albatross {

/// Move-only callable with inline small-buffer storage: the event-loop
/// replacement for `std::function<void()>`. Callables up to
/// kInlineBytes live inside the node slab (no allocation); larger ones
/// fall back to one heap allocation. Unlike std::function it accepts
/// move-only captures (e.g. a PacketPtr riding inside a completion).
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Relocate: move-construct dst from src AND release src's storage
    /// (the source InlineAction clears its ops pointer afterwards).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        // Ownership of the boxed Fn transfers with the pointer.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void move_from(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
  const Ops* ops_ = nullptr;
};

class EventLoop {
 public:
  using Action = InlineAction;

  EventLoop();

  [[nodiscard]] NanoTime now() const { return NanoTime{now_signed()}; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void schedule_at(NanoTime at, Action fn);

  /// Schedules `fn` after `delay` nanoseconds.
  void schedule_in(NanoTime delay, Action fn) {
    schedule_at(now() + delay, std::move(fn));
  }

  /// Runs one event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the clock passes `until`.
  void run_until(NanoTime until);

  /// Drains the queue completely.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Conformance hook (src/check): `fn(at)` runs before each event fires,
  /// letting an invariant probe watch the virtual clock (monotonicity,
  /// event budget). Null by default; costs one branch per event.
  void set_observer(std::function<void(NanoTime)> fn) {
    observer_ = std::move(fn);
  }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 11;  // 66 bits: whole uint64 range
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Slab node: one scheduled event. Nodes are recycled through a
  /// freelist; `next` threads both slot chains and the freelist.
  struct Node {
    std::uint64_t at = 0;
    std::uint32_t next = kNil;
    InlineAction fn;
  };

  /// Singly linked chain (head/tail indexes into nodes_).
  struct Chain {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] std::int64_t now_signed() const {
    return static_cast<std::int64_t>(now_raw_);
  }
  [[nodiscard]] static int level_for(std::uint64_t at, std::uint64_t ref);
  [[nodiscard]] static std::uint32_t slot_for(std::uint64_t at, int level) {
    return static_cast<std::uint32_t>(
        (at >> (static_cast<unsigned>(level) * kLevelBits)) &
        (kSlotsPerLevel - 1));
  }

  std::uint32_t alloc_node(std::uint64_t at, InlineAction fn);
  void free_node(std::uint32_t idx);
  void link(int level, std::uint32_t slot, std::uint32_t node);
  void insert(std::uint32_t node);

  /// Earliest pending event time, or false. Does not mutate the wheel.
  bool peek_next(std::uint64_t& out) const;

  /// Moves the clock to `to` (>= now), cascading every slot whose
  /// window the clock crossed down to its new level.
  void advance(std::uint64_t to);

  /// Pops and runs the FIFO head of level-0 slot `now & 63` (the
  /// caller guarantees, via advance(), that the earliest event is
  /// there).
  void fire_head();

  std::array<std::uint64_t, kLevels> occ_{};  ///< per-level slot bitmaps
  std::array<std::array<Chain, kSlotsPerLevel>, kLevels> slots_{};
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t now_raw_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t processed_ = 0;
  std::function<void(NanoTime)> observer_;  // nullable; see set_observer
};

/// Convenience: schedules `fn` every `period` until it returns false.
void schedule_periodic(EventLoop& loop, NanoTime period,
                       std::function<bool()> fn);

}  // namespace albatross
