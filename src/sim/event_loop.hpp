// Discrete-event simulation engine. Everything timed in the Albatross
// model — NIC pipeline stages, DMA completion, CPU core run loops, BGP
// timers, traffic arrival — executes as events on this loop against a
// virtual nanosecond clock, so experiments are deterministic and run in
// milliseconds of wall time regardless of the simulated traffic volume.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace albatross {

class EventLoop {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] NanoTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void schedule_at(NanoTime at, Action fn);

  /// Schedules `fn` after `delay` nanoseconds.
  void schedule_in(NanoTime delay, Action fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs one event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the clock passes `until`.
  void run_until(NanoTime until);

  /// Drains the queue completely.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Conformance hook (src/check): `fn(at)` runs before each event fires,
  /// letting an invariant probe watch the virtual clock (monotonicity,
  /// event budget). Null by default; costs one branch per event.
  void set_observer(std::function<void(NanoTime)> fn) {
    observer_ = std::move(fn);
  }

 private:
  struct Event {
    NanoTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::function<void(NanoTime)> observer_;  // nullable; see set_observer
  NanoTime now_ = NanoTime{0};
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

/// Convenience: schedules `fn` every `period` until it returns false.
void schedule_periodic(EventLoop& loop, NanoTime period,
                       std::function<bool()> fn);

}  // namespace albatross
