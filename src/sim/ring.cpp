#include "sim/ring.hpp"

namespace albatross {

bool PacketRing::push(PacketPtr pkt) {
  if (q_.size() >= capacity_) {
    ++stats_.drops;
    return false;
  }
  q_.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (q_.size() > stats_.high_watermark) stats_.high_watermark = q_.size();
  return true;
}

PacketPtr PacketRing::pop() {
  if (q_.empty()) return nullptr;
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  ++stats_.dequeued;
  return p;
}

}  // namespace albatross
