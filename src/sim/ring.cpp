#include "sim/ring.hpp"

namespace albatross {

PushResult PacketRing::push(PacketPtr pkt) {
  if (size_ + held_ >= capacity_) {
    ++stats_.drops;
    return PushResult::kFull;
  }
  slots_[wrap(head_ + size_)] = std::move(pkt);
  ++size_;
  ++stats_.enqueued;
  if (size_ + held_ > stats_.high_watermark) {
    stats_.high_watermark = size_ + held_;
  }
  return PushResult::kOk;
}

PacketPtr PacketRing::pop() {
  if (size_ == 0) return nullptr;
  PacketPtr p = std::move(slots_[head_]);
  head_ = wrap(head_ + 1);
  --size_;
  ++stats_.dequeued;
  return p;
}

std::size_t PacketRing::push_burst(std::span<PacketPtr> pkts) {
  const std::size_t used = size_ + held_;
  const std::size_t room = used < capacity_ ? capacity_ - used : 0;
  const std::size_t n = pkts.size() < room ? pkts.size() : room;
  std::size_t tail = wrap(head_ + size_);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[tail] = std::move(pkts[i]);
    tail = wrap(tail + 1);
  }
  size_ += n;
  stats_.enqueued += n;
  stats_.drops += pkts.size() - n;
  if (size_ + held_ > stats_.high_watermark) {
    stats_.high_watermark = size_ + held_;
  }
  return n;
}

std::size_t PacketRing::pop_burst(std::span<PacketPtr> out) {
  const std::size_t n = out.size() < size_ ? out.size() : size_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::move(slots_[head_]);
    head_ = wrap(head_ + 1);
  }
  size_ -= n;
  stats_.dequeued += n;
  return n;
}

}  // namespace albatross
