// NUMA topology and memory-latency model for the Albatross server:
// 2 NUMA nodes x 48 cores, 512 GB DDR5 per node, UPI interconnect.
// Reproduces the §7 lessons: cross-NUMA placement costs ~14% on real
// services (Fig. 16) and the kernel's automatic NUMA balancing injects
// latency bursts at high load when pods are pinned (Fig. 17).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace albatross {

struct NumaConfig {
  std::uint16_t nodes = 2;
  std::uint16_t cores_per_node = 48;
  std::uint64_t memory_per_node_gb = 512;
  NanoTime local_dram_ns = NanoTime{90};    ///< DDR5-4800 loaded latency class
  NanoTime remote_dram_ns = NanoTime{150};  ///< + UPI hop
  /// DDR data rate (MT/s); latency scales with 4800/frequency, the §4.2
  /// observation that 4800->5600 brings ~8% gateway speedup.
  std::uint32_t memory_mts = 4800;
};

class NumaTopology {
 public:
  explicit NumaTopology(NumaConfig cfg = {});

  [[nodiscard]] const NumaConfig& config() const { return cfg_; }
  [[nodiscard]] NumaNodeId node_of_core(CoreId core) const {
    return NumaNodeId{
        static_cast<std::uint16_t>(core.value() / cfg_.cores_per_node)};
  }
  [[nodiscard]] std::uint16_t total_cores() const {
    return static_cast<std::uint16_t>(cfg_.nodes * cfg_.cores_per_node);
  }

  /// DRAM access latency for a core touching memory homed on mem_node,
  /// scaled by the configured memory frequency.
  [[nodiscard]] NanoTime dram_latency(NumaNodeId core_node,
                                      NumaNodeId mem_node) const;

  void set_memory_mts(std::uint32_t mts) { cfg_.memory_mts = mts; }

 private:
  NumaConfig cfg_;
};

/// Model of the kernel `numa_balancing` feature. When enabled and the
/// gateway pod is pinned to one node, the balancer periodically unmaps
/// pages / migrates tasks to probe locality, stalling the data core.
/// The probability of a stall per scan grows with CPU load (the effect
/// only became visible at ~90% load in production, Fig. 17).
class NumaBalancer {
 public:
  struct Config {
    bool enabled = true;
    NanoTime scan_period = 100 * kMillisecond;
    NanoTime stall_ns = 300 * kMicrosecond;  ///< page-fault storm burst
    double stall_probability_at_full_load = 0.9;
  };

  NumaBalancer();
  explicit NumaBalancer(Config cfg);

  /// Called by a core's run loop; returns a stall to add to the current
  /// packet's service time (0 almost always). Uses an internal RNG so
  /// enabling the balancer never perturbs the caller's random stream
  /// (A/B comparisons stay paired).
  NanoTime maybe_stall(NanoTime now, double core_load);

  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  void set_enabled(bool on) { cfg_.enabled = on; }

 private:
  Config cfg_;
  Rng rng_{0x5ca1ab1e};
  NanoTime next_scan_ = NanoTime{0};
  std::uint64_t stalls_ = 0;
};

}  // namespace albatross
