// L3-cache / DRAM model behind every gateway table lookup.
//
// §4.2's key finding: cloud-gateway forwarding state is several GB while
// the CPU has ~200 MB of cache, so L3 hit rate sits at 30-45% and
// RSS vs PLB makes <1% difference — the shared L3 sees the same aggregate
// working set either way. The model captures exactly that mechanism:
//
//   hit rate = f^(1-alpha)   where f = effective_cache / working_set
//
// which is the cache coverage of the hottest entries under a Zipf(alpha)
// reference stream (mass of the top f fraction of ranks). Flow-affine
// scheduling (RSS) gets a small private-L2 bonus; packet spraying (PLB)
// does not — producing the sub-1% gap the paper measured.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/numa.hpp"

namespace albatross {

struct CacheConfig {
  std::uint64_t l3_bytes = 200ull << 20;  ///< ~200 MB across the socket
  NanoTime l3_hit_ns = NanoTime{22};
  NanoTime l2_hit_ns = NanoTime{7};
  /// Zipf skew of table-entry popularity induced by flow popularity.
  double reference_skew = 0.65;
  /// Fraction of L2-resident reuse a flow-affine core enjoys on top of
  /// L3 — the entire RSS-vs-PLB locality difference lives here.
  double flow_affine_l2_bonus = 0.008;
};

class CacheModel {
 public:
  explicit CacheModel(CacheConfig cfg = {}, NumaConfig numa = {});

  /// Declares the resident bytes of all forwarding tables (several GB
  /// for a loaded gateway).
  void set_working_set_bytes(std::uint64_t bytes) {
    working_set_ = bytes;
    recompute_hit_rate();
  }
  [[nodiscard]] std::uint64_t working_set_bytes() const {
    return working_set_;
  }

  /// Steady-state L3 hit probability under the configured skew.
  /// Cached: it only changes with the config or working set, but it is
  /// consulted on every table access (several per packet).
  [[nodiscard]] double l3_hit_rate() const { return l3_hit_rate_; }

  /// Samples the latency of one table access issued by a core on
  /// `core_node` against memory homed on `mem_node`.
  /// `flow_affine` = the core repeatedly sees the same flows (RSS mode).
  NanoTime access_latency(Rng& rng, NumaNodeId core_node,
                          NumaNodeId mem_node, bool flow_affine) const;

  /// Expected (mean) access latency, for closed-form calibration.
  [[nodiscard]] double mean_access_latency(NumaNodeId core_node,
                                           NumaNodeId mem_node,
                                           bool flow_affine) const;

  NumaTopology& numa() { return numa_; }
  [[nodiscard]] const NumaTopology& numa() const { return numa_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  void set_config(const CacheConfig& cfg) {
    cfg_ = cfg;
    recompute_hit_rate();
  }

 private:
  void recompute_hit_rate();

  CacheConfig cfg_;
  NumaTopology numa_;
  std::uint64_t working_set_ = 4ull << 30;  // 4 GB default
  double l3_hit_rate_ = 1.0;
};

}  // namespace albatross
