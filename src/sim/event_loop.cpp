#include "sim/event_loop.hpp"

#include <algorithm>
#include <bit>

namespace albatross {

// --- wheel geometry -------------------------------------------------
//
// Level l buckets times by bits [6l, 6l+6) of the absolute nanosecond
// timestamp. An event is stored at the level of its highest bit that
// differs from the clock, so level-0 slots each hold exactly one
// timestamp within the clock's current 64 ns window, and any two
// pending events at different levels are ordered by level (a level-l
// event always expires before every level-(l+1) event). Invariant: at
// every level the occupied slots sit at-or-after the clock's own slot
// index, so the lowest set bit of the occupancy bitmap is the earliest
// slot — no wrap-around scan is ever needed.

EventLoop::EventLoop() { nodes_.reserve(256); }

int EventLoop::level_for(std::uint64_t at, std::uint64_t ref) {
  const std::uint64_t x = at ^ ref;
  if (x == 0) return 0;
  // bit_width returns the operand's (unsigned) type pre-C++23; the
  // result is <= 64 so the narrowing is value-preserving.
  return (static_cast<int>(std::bit_width(x)) - 1) / kLevelBits;
}

std::uint32_t EventLoop::alloc_node(std::uint64_t at, InlineAction fn) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
    nodes_[idx].at = at;
    nodes_[idx].fn = std::move(fn);
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{at, kNil, std::move(fn)});
  }
  return idx;
}

void EventLoop::free_node(std::uint32_t idx) {
  nodes_[idx].fn.reset();
  nodes_[idx].next = free_head_;
  free_head_ = idx;
}

void EventLoop::link(int level, std::uint32_t slot, std::uint32_t node) {
  nodes_[node].next = kNil;
  Chain& c = slots_[static_cast<std::size_t>(level)][slot];
  if (c.tail == kNil) {
    c.head = node;
  } else {
    nodes_[c.tail].next = node;
  }
  c.tail = node;
  occ_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
}

void EventLoop::insert(std::uint32_t node) {
  const std::uint64_t at = nodes_[node].at;
  const int level = level_for(at, now_raw_);
  link(level, slot_for(at, level), node);
}

void EventLoop::schedule_at(NanoTime at, Action fn) {
  std::int64_t a = at.count();
  if (a < now_signed()) a = now_signed();
  insert(alloc_node(static_cast<std::uint64_t>(a), std::move(fn)));
  ++pending_;
}

bool EventLoop::peek_next(std::uint64_t& out) const {
  if (pending_ == 0) return false;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t bits = occ_[static_cast<std::size_t>(level)];
    if (bits == 0) continue;
    const int s = std::countr_zero(bits);
    if (level == 0) {
      // A level-0 slot is a single timestamp in the current window.
      out = (now_raw_ & ~std::uint64_t{kSlotsPerLevel - 1}) |
            static_cast<std::uint64_t>(s);
      return true;
    }
    // A higher-level slot spans 2^(6l) timestamps: the earliest is the
    // chain minimum (the chain cascades down right after this, so it
    // is never rescanned at this level).
    std::uint64_t best = ~std::uint64_t{0};
    const Chain& c = slots_[static_cast<std::size_t>(level)]
                           [static_cast<std::uint32_t>(s)];
    for (std::uint32_t n = c.head; n != kNil; n = nodes_[n].next) {
      best = std::min(best, nodes_[n].at);
    }
    out = best;
    return true;
  }
  return false;
}

void EventLoop::advance(std::uint64_t to) {
  if (to <= now_raw_) return;

  // Collect every chain whose window the clock crosses, per level, then
  // re-insert from the HIGHEST level down: for a given timestamp the
  // earlier-scheduled event always sits at the higher (or equal) level,
  // so high-to-low re-insertion preserves the FIFO tie-break.
  std::array<Chain, kLevels> collected{};
  int top = -1;

  const auto take_slot = [this](int level, std::uint32_t slot, Chain& into) {
    Chain& c = slots_[static_cast<std::size_t>(level)][slot];
    if (c.head == kNil) return;
    if (into.tail == kNil) {
      into.head = c.head;
    } else {
      nodes_[into.tail].next = c.head;
    }
    into.tail = c.tail;
    c.head = c.tail = kNil;
    occ_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << slot);
  };

  for (int level = 0; level < kLevels; ++level) {
    const unsigned parent_shift =
        static_cast<unsigned>(level + 1) * static_cast<unsigned>(kLevelBits);
    const bool same_parent =
        parent_shift >= 64 ||
        (now_raw_ >> parent_shift) == (to >> parent_shift);
    if (level == 0) {
      // Same 64 ns window: no slot index above level 0 changes either.
      if (same_parent) {
        now_raw_ = to;
        return;
      }
      // Window crossed: every level-0 chain belongs to the old window
      // (all are >= the clock, and none may be earlier than `to`).
      std::uint64_t bits = occ_[0];
      while (bits != 0) {
        take_slot(0, static_cast<std::uint32_t>(std::countr_zero(bits)),
                  collected[0]);
        bits &= bits - 1;
      }
      top = 0;
    } else if (same_parent) {
      // The clock moves within this level's parent window: cascade the
      // slots it passes over, (old, new], down to lower levels.
      const std::uint32_t old_i = slot_for(now_raw_, level);
      const std::uint32_t new_i = slot_for(to, level);
      for (std::uint32_t s = old_i + 1; s <= new_i; ++s) {
        take_slot(level, s, collected[static_cast<std::size_t>(level)]);
      }
      top = level;
      break;
    } else {
      // Parent window crossed too: every chain at this level must be
      // re-bucketed against the new clock.
      std::uint64_t bits = occ_[static_cast<std::size_t>(level)];
      while (bits != 0) {
        take_slot(level, static_cast<std::uint32_t>(std::countr_zero(bits)),
                  collected[static_cast<std::size_t>(level)]);
        bits &= bits - 1;
      }
      top = level;
    }
  }

  now_raw_ = to;
  for (int level = top; level >= 0; --level) {
    std::uint32_t n = collected[static_cast<std::size_t>(level)].head;
    while (n != kNil) {
      const std::uint32_t nx = nodes_[n].next;
      insert(n);
      n = nx;
    }
  }
}

void EventLoop::fire_head() {
  const std::uint32_t slot =
      static_cast<std::uint32_t>(now_raw_ & (kSlotsPerLevel - 1));
  Chain& c = slots_[0][slot];
  const std::uint32_t n = c.head;
  c.head = nodes_[n].next;
  if (c.head == kNil) {
    c.tail = kNil;
    occ_[0] &= ~(std::uint64_t{1} << slot);
  }
  InlineAction fn = std::move(nodes_[n].fn);
  free_node(n);
  --pending_;
  ++processed_;
  if (observer_) observer_(NanoTime{now_signed()});
  fn();
}

bool EventLoop::step() {
  std::uint64_t t = 0;
  if (!peek_next(t)) return false;
  advance(t);
  fire_head();
  return true;
}

void EventLoop::run_until(NanoTime until) {
  if (until.count() < now_signed()) return;
  const auto u = static_cast<std::uint64_t>(until.count());
  std::uint64_t t = 0;
  while (peek_next(t) && t <= u) {
    advance(t);
    fire_head();
  }
  // Move the clock (and the wheel's cascade state) to the boundary even
  // when no event sits exactly there.
  if (now_raw_ < u) advance(u);
}

void EventLoop::run() {
  while (step()) {
  }
}

void schedule_periodic(EventLoop& loop, NanoTime period,
                       std::function<bool()> fn) {
  loop.schedule_in(period, [&loop, period, fn = std::move(fn)]() mutable {
    if (fn()) schedule_periodic(loop, period, std::move(fn));
  });
}

}  // namespace albatross
