#include "sim/event_loop.hpp"

#include <utility>

namespace albatross {

void EventLoop::schedule_at(NanoTime at, Action fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, seq_++, std::move(fn)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action is moved out via the
  // const_cast idiom because Event ordering does not involve fn.
  auto& top = const_cast<Event&>(queue_.top());
  const NanoTime at = top.at;
  Action fn = std::move(top.fn);
  queue_.pop();
  if (observer_) observer_(at);
  now_ = at;
  ++processed_;
  fn();
  return true;
}

void EventLoop::run_until(NanoTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void EventLoop::run() {
  while (step()) {
  }
}

void schedule_periodic(EventLoop& loop, NanoTime period,
                       std::function<bool()> fn) {
  loop.schedule_in(period, [&loop, period, fn = std::move(fn)]() mutable {
    if (fn()) schedule_periodic(loop, period, std::move(fn));
  });
}

}  // namespace albatross
