#include "sim/cache_model.hpp"

#include <cmath>

namespace albatross {

CacheModel::CacheModel(CacheConfig cfg, NumaConfig numa)
    : cfg_(cfg), numa_(numa) {
  recompute_hit_rate();
}

void CacheModel::recompute_hit_rate() {
  if (working_set_ == 0) {
    l3_hit_rate_ = 1.0;
    return;
  }
  const double f = static_cast<double>(cfg_.l3_bytes) /
                   static_cast<double>(working_set_);
  if (f >= 1.0) {
    l3_hit_rate_ = 1.0;
    return;
  }
  // Zipf mass of the hottest f fraction of ranks:
  //   sum_{i<=fN} i^-a / sum_{i<=N} i^-a  ~=  f^(1-a)   (a < 1)
  l3_hit_rate_ = std::pow(f, 1.0 - cfg_.reference_skew);
}

NanoTime CacheModel::access_latency(Rng& rng, NumaNodeId core_node,
                                    NumaNodeId mem_node,
                                    bool flow_affine) const {
  if (flow_affine && rng.next_bool(cfg_.flow_affine_l2_bonus)) {
    return cfg_.l2_hit_ns;
  }
  if (rng.next_bool(l3_hit_rate())) {
    return cfg_.l3_hit_ns;
  }
  return numa_.dram_latency(core_node, mem_node);
}

double CacheModel::mean_access_latency(NumaNodeId core_node,
                                       NumaNodeId mem_node,
                                       bool flow_affine) const {
  const double l2 = flow_affine ? cfg_.flow_affine_l2_bonus : 0.0;
  const double hit = l3_hit_rate();
  const double dram =
      static_cast<double>(numa_.dram_latency(core_node, mem_node).count());
  return l2 * static_cast<double>(cfg_.l2_hit_ns.count()) +
         (1.0 - l2) * (hit * static_cast<double>(cfg_.l3_hit_ns.count()) +
                       (1.0 - hit) * dram);
}

}  // namespace albatross
