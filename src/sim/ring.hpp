// Fixed-capacity descriptor ring, the model of an RX/TX queue pair slice
// between the FPGA NIC and a data core. Overflow means tail drop — the
// "RX/TX queue congestion" HOL source listed in §4.1 — and every drop is
// accounted because drops on the CPU side are precisely what leaves
// reorder-FIFO entries stranded.
#pragma once

#include <cstdint>
#include <deque>

#include "packet/packet.hpp"

namespace albatross {

struct RingStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t drops = 0;
  std::uint64_t high_watermark = 0;
};

class PacketRing {
 public:
  explicit PacketRing(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// False (and a counted drop) when the ring is full. Ownership of the
  /// packet transfers only on success.
  bool push(PacketPtr pkt);

  /// Null when empty.
  PacketPtr pop();

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] bool full() const { return q_.size() >= capacity_; }
  [[nodiscard]] const RingStats& stats() const { return stats_; }

  /// Occupancy in [0,1], the congestion signal run loops poll.
  [[nodiscard]] double occupancy() const {
    return capacity_ == 0
               ? 1.0
               : static_cast<double>(q_.size()) / static_cast<double>(capacity_);
  }

 private:
  std::size_t capacity_;
  std::deque<PacketPtr> q_;
  RingStats stats_;
};

}  // namespace albatross
