// Fixed-capacity descriptor ring, the model of an RX/TX queue pair slice
// between the FPGA NIC and a data core. Overflow means tail drop — the
// "RX/TX queue congestion" HOL source listed in §4.1 — and every drop is
// accounted because drops on the CPU side are precisely what leaves
// reorder-FIFO entries stranded.
//
// Storage is a flat circular buffer (power-of-two independent; head
// index + size, modulo capacity) so burst drains touch one contiguous
// or at most two contiguous slot runs — the same layout as a hardware
// descriptor ring. The scalar push/pop entry points are thin wrappers
// over the same slots so cold callers (chaos hooks, BGP) share the
// accounting with the burst hot path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "packet/packet.hpp"

namespace albatross {

/// Outcome of a ring enqueue; call sites must handle kFull explicitly
/// (ownership of the packet stays with the caller on kFull).
enum class PushResult : std::uint8_t {
  kOk,    ///< packet accepted, ownership transferred
  kFull,  ///< tail drop counted; caller still owns the packet
};

struct RingStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t drops = 0;
  std::uint64_t high_watermark = 0;
};

class PacketRing {
 public:
  /// Capacity is required and immutable: silent default sizing hid ring
  /// dimensioning bugs behind 1024-slot rings.
  explicit PacketRing(std::size_t capacity)
      : capacity_(capacity),
        inv_capacity_(capacity == 0 ? 0.0 : 1.0 / static_cast<double>(capacity)),
        slots_(capacity) {}

  /// kFull (and a counted drop) when the ring is full. Ownership of the
  /// packet transfers only on kOk.
  PushResult push(PacketPtr pkt);

  /// Null when empty.
  PacketPtr pop();

  /// Enqueues packets from `pkts` in order until the ring fills.
  /// Returns the number accepted; accepted slots in `pkts` are nulled.
  /// Rejected packets (the span tail) remain owned by the caller and
  /// are each counted as a drop.
  std::size_t push_burst(std::span<PacketPtr> pkts);

  /// Dequeues up to `out.size()` packets in FIFO order into `out`.
  /// Returns the number written; `out[0..n)` are valid, the rest are
  /// untouched.
  std::size_t pop_burst(std::span<PacketPtr> out);

  /// Descriptor-credit model for burst drains: packets popped in a
  /// burst still occupy their RX descriptors until the core actually
  /// starts servicing them (DPDK recycles the mbuf after processing,
  /// not at rx_burst). Holding keeps occupancy — and therefore tail
  /// drops — identical between burst and scalar drains.
  void hold(std::size_t n) { held_ += n; }
  void release_hold(std::size_t n) { held_ -= n < held_ ? n : held_; }
  [[nodiscard]] std::size_t held() const { return held_; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ + held_ >= capacity_; }
  [[nodiscard]] const RingStats& stats() const { return stats_; }

  /// Occupancy in [0,1], the congestion signal run loops poll (held
  /// descriptors count: they are unavailable to producers). Uses the
  /// cached reciprocal of the (immutable) capacity: this runs once per
  /// scheduled packet, so the division was measurable on the bench.
  [[nodiscard]] double occupancy() const {
    return capacity_ == 0 ? 1.0
                          : static_cast<double>(size_ + held_) * inv_capacity_;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i >= capacity_ ? i - capacity_ : i;
  }

  std::size_t capacity_;
  double inv_capacity_;  ///< 1/capacity, cached at construction
  std::vector<PacketPtr> slots_;
  std::size_t head_ = 0;  ///< next slot to pop
  std::size_t size_ = 0;
  std::size_t held_ = 0;  ///< descriptor credits held by an in-flight burst
  RingStats stats_;
};

}  // namespace albatross
