#include "sim/numa.hpp"

namespace albatross {

NumaTopology::NumaTopology(NumaConfig cfg) : cfg_(cfg) {}

NanoTime NumaTopology::dram_latency(NumaNodeId core_node,
                                    NumaNodeId mem_node) const {
  const NanoTime base =
      core_node == mem_node ? cfg_.local_dram_ns : cfg_.remote_dram_ns;
  // Higher transfer rate shortens the queuing+transfer component of a
  // loaded DRAM access roughly proportionally.
  return base * 4800 / static_cast<std::int64_t>(cfg_.memory_mts);
}

NumaBalancer::NumaBalancer() : NumaBalancer(Config{}) {}

NumaBalancer::NumaBalancer(Config cfg) : cfg_(cfg) {}

NanoTime NumaBalancer::maybe_stall(NanoTime now, double core_load) {
  if (!cfg_.enabled) return NanoTime{};
  if (now < next_scan_) return NanoTime{};
  next_scan_ = now + cfg_.scan_period;
  // The balancer's scanner only perturbs the pinned pod when memory
  // pressure / run-queue activity is high; scale the hit chance with
  // load so bursts appear near saturation as observed in production.
  const double load = core_load < 0.0 ? 0.0 : core_load;
  const double p =
      cfg_.stall_probability_at_full_load * load * load * load;
  if (rng_.next_bool(p)) {
    ++stalls_;
    return cfg_.stall_ns;
  }
  return NanoTime{};
}

}  // namespace albatross
