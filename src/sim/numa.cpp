#include "sim/numa.hpp"

namespace albatross {

NumaTopology::NumaTopology(NumaConfig cfg) : cfg_(cfg) {}

NanoTime NumaTopology::dram_latency(std::uint16_t core_node,
                                    std::uint16_t mem_node) const {
  const NanoTime base =
      core_node == mem_node ? cfg_.local_dram_ns : cfg_.remote_dram_ns;
  // Higher transfer rate shortens the queuing+transfer component of a
  // loaded DRAM access roughly proportionally.
  return base * 4800 / static_cast<NanoTime>(cfg_.memory_mts);
}

NumaBalancer::NumaBalancer() : NumaBalancer(Config{}) {}

NumaBalancer::NumaBalancer(Config cfg) : cfg_(cfg) {}

NanoTime NumaBalancer::maybe_stall(NanoTime now, double core_load) {
  if (!cfg_.enabled) return 0;
  if (now < next_scan_) return 0;
  next_scan_ = now + cfg_.scan_period;
  // The balancer's scanner only perturbs the pinned pod when memory
  // pressure / run-queue activity is high; scale the hit chance with
  // load so bursts appear near saturation as observed in production.
  const double load = core_load < 0.0 ? 0.0 : core_load;
  const double p =
      cfg_.stall_probability_at_full_load * load * load * load;
  if (rng_.next_bool(p)) {
    ++stalls_;
    return cfg_.stall_ns;
  }
  return 0;
}

}  // namespace albatross
