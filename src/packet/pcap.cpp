#include "packet/pcap.hpp"

#include <cstring>
#include <fstream>

#include "common/endian.hpp"
#include "common/types.hpp"

namespace albatross {
namespace {

void put_u32le(std::vector<std::uint8_t>& v, std::uint32_t x) {
  const std::size_t at = v.size();
  v.resize(at + 4);
  store_le32(v.data() + at, x);
}
void put_u16le(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

}  // namespace

void PcapFile::add(const Packet& pkt, NanoTime timestamp) {
  add(std::vector<std::uint8_t>(pkt.data(), pkt.data() + pkt.size()),
      timestamp);
}

void PcapFile::add(std::vector<std::uint8_t> frame, NanoTime timestamp) {
  records_.push_back(PcapRecord{timestamp, std::move(frame)});
}

std::vector<std::uint8_t> PcapFile::serialize() const {
  std::vector<std::uint8_t> out;
  // Global header: magic, v2.4, thiszone=0, sigfigs=0, snaplen, linktype.
  put_u32le(out, kMagic);
  put_u16le(out, 2);
  put_u16le(out, 4);
  put_u32le(out, 0);
  put_u32le(out, 0);
  put_u32le(out, 262144);
  put_u32le(out, kLinkTypeEthernet);
  for (const auto& r : records_) {
    const auto usec = static_cast<std::uint64_t>(r.timestamp / kMicrosecond);
    const auto usec_per_sec =
        static_cast<std::uint64_t>(kSecond / kMicrosecond);
    put_u32le(out, static_cast<std::uint32_t>(usec / usec_per_sec));
    put_u32le(out, static_cast<std::uint32_t>(usec % usec_per_sec));
    put_u32le(out, static_cast<std::uint32_t>(r.data.size()));  // incl_len
    put_u32le(out, static_cast<std::uint32_t>(r.data.size()));  // orig_len
    out.insert(out.end(), r.data.begin(), r.data.end());
  }
  return out;
}

std::optional<PcapFile> PcapFile::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 24) return std::nullopt;
  const std::uint32_t magic_le = load_le32(bytes.data());
  bool swapped;
  if (magic_le == kMagic) {
    swapped = false;
  } else if (load_be32(bytes.data()) == kMagic) {
    swapped = true;
  } else {
    return std::nullopt;
  }
  const auto u32 = [&](std::size_t off) {
    return swapped ? load_be32(bytes.data() + off)
                   : load_le32(bytes.data() + off);
  };
  if (u32(20) != kLinkTypeEthernet) return std::nullopt;

  PcapFile file;
  std::size_t pos = 24;
  while (pos + 16 <= bytes.size()) {
    const std::uint64_t sec = u32(pos);
    const std::uint64_t usec = u32(pos + 4);
    const std::uint32_t incl = u32(pos + 8);
    pos += 16;
    if (pos + incl > bytes.size()) return std::nullopt;  // truncated
    PcapRecord r;
    r.timestamp = static_cast<std::int64_t>(sec) * kSecond +
                  static_cast<std::int64_t>(usec) * kMicrosecond;
    r.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + incl));
    file.records_.push_back(std::move(r));
    pos += incl;
  }
  if (pos != bytes.size()) return std::nullopt;
  return file;
}

bool PcapFile::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<PcapFile> PcapFile::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return deserialize(bytes);
}

bool PcapTap::observe(const Packet& pkt, NanoTime now) {
  if (filter_ && pkt.tuple != *filter_) return false;
  if (file_.size() >= max_packets_) {
    ++dropped_;
    return false;
  }
  file_.add(pkt, now);
  return true;
}

}  // namespace albatross
