// Packet buffer abstraction, modelled on a DPDK rte_mbuf: a fixed-size
// byte arena with headroom for encapsulation, tailroom for the PLB meta
// trailer, plus out-of-band metadata the NIC pipeline and GW pods use.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace albatross {

/// Byte arena backing one Packet, recycled through a size-classed pool
/// (mempool-style, like DPDK's rte_mempool): the simulator churns one
/// buffer per modelled packet, and pooling removes the allocator and the
/// page-zeroing from that path. Buffers come back UNINITIALIZED — every
/// producer writes the region it later reads (assign/append callers
/// serialise into the space they claim; Packet::make_synthetic zeroes
/// its payload explicitly).
class PacketBuf {
 public:
  PacketBuf() = default;
  explicit PacketBuf(std::size_t min_bytes);
  ~PacketBuf();
  PacketBuf(const PacketBuf&) = delete;
  PacketBuf& operator=(const PacketBuf&) = delete;
  PacketBuf(PacketBuf&& o) noexcept : data_(o.data_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.cap_ = 0;
  }
  PacketBuf& operator=(PacketBuf&& o) noexcept;

  [[nodiscard]] std::uint8_t* data() { return data_; }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return cap_; }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t cap_ = 0;
};

/// PLB meta header carried with every PLB-mode packet from the NIC to the
/// CPU and back (§4.1). Production attaches it at the packet *tail*
/// because gateways never touch packet tails; attaching at the head would
/// either collide with encap/decap or cost an extra copy (§7, -33.6%).
struct PlbMeta {
  Psn psn = 0;                 ///< arrival order within the order queue
  std::uint8_t ordq_idx = 0;   ///< order-preserving queue index
  bool drop = false;           ///< GW pod sets this to release reorder state
  bool header_only = false;    ///< payload retained in NIC payload buffer
  std::uint16_t payload_id = 0;///< NIC payload-buffer slot (header-only mode)

  static constexpr std::size_t kWireSize = 12;
  static constexpr std::uint16_t kMagic = 0xA1BA;  // "ALBAtross"

  /// Serialises into `out` (must have kWireSize bytes).
  void serialize(std::uint8_t* out) const;

  /// Parses from `in`; returns false if the magic does not match.
  static bool deserialize(const std::uint8_t* in, PlbMeta& out);
};

/// How the NIC classified this packet in pkt_dir (§3.2).
enum class PktClass : std::uint8_t {
  kUnclassified,
  kPriority,  ///< control-plane protocol packets (BGP/BFD), priority queues
  kRss,       ///< stateful/low-volume packets kept on flow-affine cores
  kPlb,       ///< bulk data packets sprayed per-packet
};

/// A single packet. Owns its bytes; cheap to move, not copyable except
/// via clone() so accidental deep copies are visible in the code.
class Packet {
 public:
  /// Headroom in front of the initial frame for encapsulation growth.
  static constexpr std::size_t kHeadroom = 128;
  /// Maximum Ethernet frame we model: jumbo (9000B MTU class).
  static constexpr std::size_t kMaxFrame = 9216;

  /// Tailroom kept on right-sized packets for the PLB meta trailer.
  static constexpr std::size_t kTailroomSlack = 64;

  Packet();
  explicit Packet(std::span<const std::uint8_t> frame);

  /// Allocates a right-sized buffer (headroom + capacity + tailroom)
  /// instead of the full jumbo arena; used by high-volume generators.
  explicit Packet(std::size_t capacity_bytes);

  /// Builds a zero-payload frame of `wire_len` bytes with metadata
  /// pre-annotated, skipping header serialisation. Timed experiments use
  /// these; the byte-accurate path is exercised by build_* + the parser.
  static std::unique_ptr<Packet> make_synthetic(const FiveTuple& tuple,
                                                Vni vni, std::size_t wire_len);

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  [[nodiscard]] std::unique_ptr<Packet> clone() const;

  /// Replaces the frame contents.
  void assign(std::span<const std::uint8_t> frame);

  [[nodiscard]] std::uint8_t* data() { return store_.data() + offset_; }
  [[nodiscard]] const std::uint8_t* data() const {
    return store_.data() + offset_;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), len_};
  }
  [[nodiscard]] std::span<std::uint8_t> mutable_bytes() {
    return {data(), len_};
  }

  /// Grows the frame at the front (encapsulation); returns the new start.
  std::uint8_t* prepend(std::size_t n);
  /// Shrinks the frame at the front (decapsulation).
  void adj(std::size_t n);
  /// Grows at the tail; returns pointer to the appended region.
  std::uint8_t* append(std::size_t n);
  /// Shrinks at the tail.
  void trim(std::size_t n);

  // --- PLB meta trailer -------------------------------------------------
  /// Appends the serialized meta trailer to the tail.
  void attach_plb_meta(const PlbMeta& meta);
  /// Reads the trailer without removing it; false if absent/corrupt.
  [[nodiscard]] bool peek_plb_meta(PlbMeta& out) const;
  /// Removes and returns the trailer; false if absent.
  bool strip_plb_meta(PlbMeta& out);
  /// Rewrites an attached trailer in place (e.g. GW pod sets drop flag).
  bool update_plb_meta(const PlbMeta& meta);
  /// O(1) "is a trailer attached" check for hot paths, maintained by
  /// attach/strip (and re-probed on assign). peek_plb_meta remains the
  /// byte-validating probe for frames of unknown provenance.
  [[nodiscard]] bool has_plb_meta() const { return has_plb_meta_; }

  // --- out-of-band metadata (rte_mbuf-style fields) ----------------------
  NanoTime rx_time = NanoTime{0};          ///< wire arrival timestamp
  NanoTime nic_ingress_done = NanoTime{0}; ///< when the NIC handed it to the CPU
  FiveTuple tuple;               ///< filled by the parser
  Vni vni = 0;                   ///< tenant id from the VXLAN header
  PktClass pkt_class = PktClass::kUnclassified;
  PodId pod = 0;
  std::uint16_t rx_queue = 0;
  std::uint64_t flow_id = 0;     ///< generator-assigned, for test oracles
  std::uint64_t seq_in_flow = 0; ///< generator-assigned per-flow sequence

 private:
  PacketBuf store_;
  std::size_t offset_ = kHeadroom;
  std::size_t len_ = 0;
  bool has_plb_meta_ = false;
};

using PacketPtr = std::unique_ptr<Packet>;

}  // namespace albatross
