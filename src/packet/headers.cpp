#include "packet/headers.hpp"

#include <cstring>

#include "common/endian.hpp"

namespace albatross {

void EthernetHeader::write(std::uint8_t* p) const {
  std::memcpy(p, dst.bytes.data(), 6);
  std::memcpy(p + 6, src.bytes.data(), 6);
  store_be16(p + 12, ether_type);
}

EthernetHeader EthernetHeader::read(const std::uint8_t* p) {
  EthernetHeader h;
  std::memcpy(h.dst.bytes.data(), p, 6);
  std::memcpy(h.src.bytes.data(), p + 6, 6);
  h.ether_type = load_be16(p + 12);
  return h;
}

void VlanTag::write(std::uint8_t* p) const {
  store_be16(p, static_cast<std::uint16_t>((pcp << 13) | (vlan_id & 0x0fff)));
  store_be16(p + 2, inner_ether_type);
}

VlanTag VlanTag::read(const std::uint8_t* p) {
  VlanTag t;
  const std::uint16_t tci = load_be16(p);
  t.pcp = static_cast<std::uint8_t>(tci >> 13);
  t.vlan_id = tci & 0x0fff;
  t.inner_ether_type = load_be16(p + 2);
  return t;
}

std::uint16_t Ipv4Header::checksum(const std::uint8_t* p, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += load_be16(p + i);
  }
  if (len & 1) sum += std::uint32_t{p[len - 1]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::write(std::uint8_t* p) const {
  p[0] = 0x45;  // version 4, IHL 5
  p[1] = dscp << 2;
  store_be16(p + 2, total_length);
  store_be16(p + 4, identification);
  store_be16(p + 6, 0x4000);  // DF, no fragments
  p[8] = ttl;
  p[9] = static_cast<std::uint8_t>(protocol);
  store_be16(p + 10, 0);  // checksum placeholder
  store_be32(p + 12, src.addr);
  store_be32(p + 16, dst.addr);
  store_be16(p + 10, checksum(p, kSize));
}

std::optional<Ipv4Header> Ipv4Header::read(const std::uint8_t* p,
                                           std::size_t avail) {
  if (avail < kSize) return std::nullopt;
  if ((p[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = std::size_t{p[0]} & 0x0f;
  if (ihl < 5 || ihl * 4 > avail) return std::nullopt;
  Ipv4Header h;
  h.dscp = p[1] >> 2;
  h.total_length = load_be16(p + 2);
  h.identification = load_be16(p + 4);
  h.ttl = p[8];
  h.protocol = static_cast<IpProto>(p[9]);
  h.src.addr = load_be32(p + 12);
  h.dst.addr = load_be32(p + 16);
  return h;
}

void Ipv6Header::write(std::uint8_t* p) const {
  store_be32(p, (6u << 28) | (std::uint32_t{traffic_class} << 20) |
                    (flow_label & 0xfffffu));
  store_be16(p + 4, payload_length);
  p[6] = static_cast<std::uint8_t>(next_header);
  p[7] = hop_limit;
  std::memcpy(p + 8, src.bytes.data(), 16);
  std::memcpy(p + 24, dst.bytes.data(), 16);
}

std::optional<Ipv6Header> Ipv6Header::read(const std::uint8_t* p,
                                           std::size_t avail) {
  if (avail < kSize) return std::nullopt;
  const std::uint32_t vcf = load_be32(p);
  if ((vcf >> 28) != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((vcf >> 20) & 0xff);
  h.flow_label = vcf & 0xfffffu;
  h.payload_length = load_be16(p + 4);
  h.next_header = static_cast<IpProto>(p[6]);
  h.hop_limit = p[7];
  std::memcpy(h.src.bytes.data(), p + 8, 16);
  std::memcpy(h.dst.bytes.data(), p + 24, 16);
  return h;
}

void UdpHeader::write(std::uint8_t* p) const {
  store_be16(p, src_port);
  store_be16(p + 2, dst_port);
  store_be16(p + 4, length);
  store_be16(p + 6, 0);  // checksum optional for IPv4
}

UdpHeader UdpHeader::read(const std::uint8_t* p) {
  UdpHeader h;
  h.src_port = load_be16(p);
  h.dst_port = load_be16(p + 2);
  h.length = load_be16(p + 4);
  return h;
}

void TcpHeader::write(std::uint8_t* p) const {
  store_be16(p, src_port);
  store_be16(p + 2, dst_port);
  store_be32(p + 4, seq);
  store_be32(p + 8, ack);
  p[12] = 5 << 4;  // data offset 5 words
  p[13] = flags;
  store_be16(p + 14, window);
  store_be16(p + 16, 0);  // checksum not modelled
  store_be16(p + 18, 0);
}

TcpHeader TcpHeader::read(const std::uint8_t* p) {
  TcpHeader h;
  h.src_port = load_be16(p);
  h.dst_port = load_be16(p + 2);
  h.seq = load_be32(p + 4);
  h.ack = load_be32(p + 8);
  h.flags = p[13];
  h.window = load_be16(p + 14);
  return h;
}

void VxlanHeader::write(std::uint8_t* p) const {
  p[0] = 0x08;  // I flag: VNI valid
  p[1] = p[2] = p[3] = 0;
  store_be32(p + 4, vni << 8);
}

std::optional<VxlanHeader> VxlanHeader::read(const std::uint8_t* p) {
  if ((p[0] & 0x08) == 0) return std::nullopt;  // VNI must be valid
  return VxlanHeader{load_be32(p + 4) >> 8};
}

void GeneveHeader::write(std::uint8_t* p) const {
  p[0] = opt_len_words & 0x3f;  // version 0
  p[1] = 0;
  store_be16(p + 2, 0x6558);  // protocol: transparent ethernet bridging
  store_be32(p + 4, vni << 8);
}

std::optional<GeneveHeader> GeneveHeader::read(const std::uint8_t* p) {
  if ((p[0] >> 6) != 0) return std::nullopt;  // version must be 0
  GeneveHeader h;
  h.opt_len_words = p[0] & 0x3f;
  h.vni = load_be32(p + 4) >> 8;
  return h;
}

void NshHeader::write(std::uint8_t* p) const {
  std::memset(p, 0, kSize);
  p[0] = 0x00;
  p[1] = kSize / 4;  // length in 4-byte words
  p[2] = 0x01;       // MD type 1
  p[3] = 0x03;       // next protocol: ethernet
  store_be32(p + 4, (service_path_id << 8) | service_index);
}

std::optional<NshHeader> NshHeader::read(const std::uint8_t* p) {
  if ((p[1] & 0x3f) * 4 < 8) return std::nullopt;
  NshHeader h;
  const std::uint32_t sp = load_be32(p + 4);
  h.service_path_id = sp >> 8;
  h.service_index = static_cast<std::uint8_t>(sp & 0xff);
  return h;
}

void BfdHeader::write(std::uint8_t* p) const {
  std::memset(p, 0, kSize);
  p[0] = 0x20;  // version 1
  p[1] = static_cast<std::uint8_t>(state << 6);
  p[2] = detect_mult;
  p[3] = kSize;
  store_be32(p + 4, my_discriminator);
  store_be32(p + 8, your_discriminator);
  store_be32(p + 12, desired_min_tx_us);
}

std::optional<BfdHeader> BfdHeader::read(const std::uint8_t* p) {
  if ((p[0] >> 5) != 1) return std::nullopt;  // version 1
  BfdHeader h;
  h.state = p[1] >> 6;
  h.detect_mult = p[2];
  h.my_discriminator = load_be32(p + 4);
  h.your_discriminator = load_be32(p + 8);
  h.desired_min_tx_us = load_be32(p + 12);
  return h;
}

}  // namespace albatross
