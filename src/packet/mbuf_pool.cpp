#include "packet/mbuf_pool.hpp"

namespace albatross {
namespace {

// Approximate costs, calibrated so the "too small mempool cache" anomaly
// (§4.1(4)) is visible: a cached alloc is a few nanoseconds, a shared-ring
// refill is an order of magnitude slower (cacheline bouncing + locking).
constexpr NanoTime kCacheHitCost = NanoTime{4};
constexpr NanoTime kRingRefillCost = NanoTime{90};

}  // namespace

MbufPool::MbufPool(MbufPoolConfig cfg) : cfg_(cfg) {
  storage_.reserve(cfg_.capacity);
  ring_.reserve(cfg_.capacity);
  for (std::size_t i = 0; i < cfg_.capacity; ++i) {
    storage_.push_back(std::make_unique<Packet>());
    ring_.push_back(storage_.back().get());
  }
  core_cache_.resize(cfg_.num_cores == 0 ? 1 : cfg_.num_cores);
  for (auto& c : core_cache_) c.reserve(cfg_.per_core_cache);
}

void MbufPool::refill_cache(std::size_t core) {
  auto& cache = core_cache_[core];
  // Move up to half a cache's worth from the ring, like rte_mempool does.
  const std::size_t want = cfg_.per_core_cache == 0 ? 1 : cfg_.per_core_cache / 2 + 1;
  while (cache.size() < want && !ring_.empty()) {
    cache.push_back(ring_.back());
    ring_.pop_back();
  }
  ++stats_.ring_refills;
}

Packet* MbufPool::alloc(CoreId core) {
  const std::size_t c = core.index() % core_cache_.size();
  auto& cache = core_cache_[c];
  if (!cache.empty()) {
    Packet* p = cache.back();
    cache.pop_back();
    ++stats_.allocs;
    ++stats_.cache_hits;
    last_cost_ = kCacheHitCost;
    return p;
  }
  refill_cache(c);
  if (cache.empty()) {
    ++stats_.alloc_failures;
    last_cost_ = kRingRefillCost;
    return nullptr;
  }
  Packet* p = cache.back();
  cache.pop_back();
  ++stats_.allocs;
  last_cost_ = kRingRefillCost;
  return p;
}

void MbufPool::free_(Packet* pkt, CoreId core) {
  if (pkt == nullptr) return;
  const std::size_t c = core.index() % core_cache_.size();
  auto& cache = core_cache_[c];
  ++stats_.frees;
  if (cache.size() < cfg_.per_core_cache) {
    cache.push_back(pkt);
    return;
  }
  // Cache overflow: flush half back to the shared ring.
  const std::size_t flush = cfg_.per_core_cache / 2 + 1;
  for (std::size_t i = 0; i < flush && !cache.empty(); ++i) {
    ring_.push_back(cache.back());
    cache.pop_back();
  }
  cache.push_back(pkt);
}

std::size_t MbufPool::available() const {
  std::size_t n = ring_.size();
  for (const auto& c : core_cache_) n += c.size();
  return n;
}

}  // namespace albatross
