// DPDK-style mbuf memory pool with per-core object caches.
// §4.1(4) of the paper reports that a too-small RTE_MEMPOOL_CACHE caused
// abnormal latency in production; the pool models that effect: a cache
// miss falls back to the shared ring and charges a higher cost, which the
// driver-optimisation ablation bench measures.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "packet/packet.hpp"

namespace albatross {

struct MbufPoolConfig {
  std::size_t capacity = 8192;        ///< total mbufs in the pool
  std::size_t per_core_cache = 256;   ///< objects cached per data core
  std::size_t num_cores = 1;
};

struct MbufPoolStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t cache_hits = 0;    ///< served from the per-core cache
  std::uint64_t ring_refills = 0;  ///< cache misses hitting the shared ring
  std::uint64_t alloc_failures = 0;
};

/// Fixed-capacity packet pool. alloc()/free_() are explicit (the run loop
/// owns lifetimes like a DPDK driver does); RAII users can wrap the
/// result in PoolGuard.
class MbufPool {
 public:
  explicit MbufPool(MbufPoolConfig cfg = {});

  /// Allocates a packet on behalf of `core`. Returns nullptr when the
  /// pool is exhausted (counted as alloc_failure, like rte_pktmbuf_alloc).
  Packet* alloc(CoreId core = CoreId{});
  void free_(Packet* pkt, CoreId core = CoreId{});

  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity; }
  [[nodiscard]] std::size_t available() const;
  [[nodiscard]] const MbufPoolStats& stats() const { return stats_; }

  /// Cost in nanoseconds of the most recent alloc: cache hits are cheap,
  /// ring refills model the production latency anomaly.
  [[nodiscard]] NanoTime last_alloc_cost() const { return last_cost_; }

 private:
  void refill_cache(std::size_t core);

  MbufPoolConfig cfg_;
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> ring_;                      // shared free list
  std::vector<std::vector<Packet*>> core_cache_;   // per-core caches
  MbufPoolStats stats_;
  NanoTime last_cost_ = NanoTime{0};
};

/// RAII wrapper returning the packet to its pool on destruction.
class PoolGuard {
 public:
  PoolGuard(MbufPool& pool, Packet* pkt, CoreId core = CoreId{})
      : pool_(&pool), pkt_(pkt), core_(core) {}
  ~PoolGuard() {
    if (pkt_ != nullptr) pool_->free_(pkt_, core_);
  }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
  PoolGuard(PoolGuard&& o) noexcept
      : pool_(o.pool_), pkt_(o.pkt_), core_(o.core_) {
    o.pkt_ = nullptr;
  }
  PoolGuard& operator=(PoolGuard&&) = delete;

  [[nodiscard]] Packet* get() const { return pkt_; }
  Packet* release() {
    Packet* p = pkt_;
    pkt_ = nullptr;
    return p;
  }

 private:
  MbufPool* pool_;
  Packet* pkt_;
  CoreId core_;
};

}  // namespace albatross
