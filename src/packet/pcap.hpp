// Classic libpcap capture files (the pre-pcapng format every tool
// reads). Production gateway debugging leans on targeted captures —
// "show me the tenant's packets at the NIC boundary" — so the library
// can dump any point of the simulated pipeline into a file Wireshark
// opens directly, and read captures back for replay-style tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "packet/packet.hpp"

namespace albatross {

struct PcapRecord {
  NanoTime timestamp = NanoTime{0};          ///< virtual capture time
  std::vector<std::uint8_t> data;  ///< captured bytes (full frame here)
};

/// In-memory pcap image (magic 0xa1b2c3d4, version 2.4, LINKTYPE_ETHERNET,
/// microsecond timestamps). Files are built/parsed in memory; callers
/// decide whether to touch the filesystem.
class PcapFile {
 public:
  static constexpr std::uint32_t kMagic = 0xa1b2c3d4;
  static constexpr std::uint32_t kLinkTypeEthernet = 1;

  /// Appends a packet's current bytes at `timestamp`.
  void add(const Packet& pkt, NanoTime timestamp);
  void add(std::vector<std::uint8_t> frame, NanoTime timestamp);

  [[nodiscard]] const std::vector<PcapRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Serialises the full capture (global header + records).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a capture image; nullopt on bad magic/truncation. Handles
  /// both byte orders (swapped magic 0xd4c3b2a1).
  static std::optional<PcapFile> deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// Convenience file I/O.
  bool write_file(const std::string& path) const;
  static std::optional<PcapFile> read_file(const std::string& path);

 private:
  std::vector<PcapRecord> records_;
};

/// A capture tap: attach to any packet-handling point and it records
/// frames matching an optional 5-tuple filter, up to a packet budget.
class PcapTap {
 public:
  explicit PcapTap(std::size_t max_packets = 10'000)
      : max_packets_(max_packets) {}

  void set_filter(const FiveTuple& tuple) { filter_ = tuple; }
  void clear_filter() { filter_.reset(); }

  /// Records the packet if the filter matches and the budget allows.
  /// Returns true when captured.
  bool observe(const Packet& pkt, NanoTime now);

  [[nodiscard]] const PcapFile& file() const { return file_; }
  [[nodiscard]] std::size_t captured() const { return file_.size(); }
  [[nodiscard]] std::size_t dropped_over_budget() const { return dropped_; }

 private:
  std::size_t max_packets_;
  std::optional<FiveTuple> filter_;
  PcapFile file_;
  std::size_t dropped_ = 0;
};

}  // namespace albatross
