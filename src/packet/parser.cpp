#include "packet/parser.hpp"

#include <cstring>

#include "common/endian.hpp"
#include "common/hash.hpp"

namespace albatross {
namespace {

/// Parses one IPv4+L4 layer starting at `off`; fills ip/l4 fields through
/// the provided references. Returns the offset just past the L4 header,
/// or nullopt on truncation.
std::optional<std::size_t> parse_ip_l4(std::span<const std::uint8_t> f,
                                       std::size_t off, Ipv4Header& ip,
                                       std::uint16_t& sport,
                                       std::uint16_t& dport,
                                       std::uint8_t& tcp_flags) {
  auto iph = Ipv4Header::read(f.data() + off, f.size() - off);
  if (!iph) return std::nullopt;
  ip = *iph;
  const std::size_t l4 = off + Ipv4Header::kSize;
  if (ip.protocol == IpProto::kUdp) {
    if (f.size() < l4 + UdpHeader::kSize) return std::nullopt;
    const auto udp = UdpHeader::read(f.data() + l4);
    sport = udp.src_port;
    dport = udp.dst_port;
    return l4 + UdpHeader::kSize;
  }
  if (ip.protocol == IpProto::kTcp) {
    if (f.size() < l4 + TcpHeader::kSize) return std::nullopt;
    const auto tcp = TcpHeader::read(f.data() + l4);
    sport = tcp.src_port;
    dport = tcp.dst_port;
    tcp_flags = tcp.flags;
    return l4 + TcpHeader::kSize;
  }
  // ICMP and friends: no ports.
  sport = dport = 0;
  return l4;
}

}  // namespace

bool ParsedPacket::is_protocol_packet() const {
  if (ip.protocol == IpProto::kTcp &&
      (l4_src == kBgpPort || l4_dst == kBgpPort)) {
    return true;
  }
  return ip.protocol == IpProto::kUdp && l4_dst == kBfdPort;
}

FiveTuple ParsedPacket::flow_tuple() const {
  if (inner_ip) {
    return FiveTuple{inner_ip->src, inner_ip->dst, inner_l4_src, inner_l4_dst,
                     inner_ip->protocol};
  }
  return FiveTuple{ip.src, ip.dst, l4_src, l4_dst, ip.protocol};
}

Vni ParsedPacket::tenant_vni() const {
  if (vxlan) return vxlan->vni;
  if (geneve) return geneve->vni;
  return 0;
}

std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> f) {
  if (f.size() < EthernetHeader::kSize) return std::nullopt;
  ParsedPacket p;
  p.eth = EthernetHeader::read(f.data());
  std::size_t off = EthernetHeader::kSize;
  std::uint16_t etype = p.eth.ether_type;

  if (etype == static_cast<std::uint16_t>(EtherType::kVlan)) {
    if (f.size() < off + VlanTag::kSize) return std::nullopt;
    p.vlan = VlanTag::read(f.data() + off);
    etype = p.vlan->inner_ether_type;
    off += VlanTag::kSize;
  }
  if (etype == static_cast<std::uint16_t>(EtherType::kIpv6)) {
    // Native IPv6: fixed header + TCP/UDP. The internal flow key folds
    // the 128-bit addresses down so the IPv4-shaped FiveTuple machinery
    // (RSS, ordq selection, conntrack) applies uniformly.
    auto v6 = Ipv6Header::read(f.data() + off, f.size() - off);
    if (!v6) return std::nullopt;
    p.ipv6 = *v6;
    p.l3_offset = off;
    const std::size_t l4 = off + Ipv6Header::kSize;
    p.ip.protocol = v6->next_header;
    if (v6->next_header == IpProto::kUdp) {
      if (f.size() < l4 + UdpHeader::kSize) return std::nullopt;
      const auto udp = UdpHeader::read(f.data() + l4);
      p.l4_src = udp.src_port;
      p.l4_dst = udp.dst_port;
      p.payload_offset = l4 + UdpHeader::kSize;
    } else if (v6->next_header == IpProto::kTcp) {
      if (f.size() < l4 + TcpHeader::kSize) return std::nullopt;
      const auto tcp = TcpHeader::read(f.data() + l4);
      p.l4_src = tcp.src_port;
      p.l4_dst = tcp.dst_port;
      p.tcp_flags = tcp.flags;
      p.payload_offset = l4 + TcpHeader::kSize;
    } else {
      p.payload_offset = l4;
    }
    p.l4_offset = l4;
    // Folded flow key (see header comment).
    p.ip.src.addr = static_cast<std::uint32_t>(
        fnv1a64(std::span<const std::uint8_t>(v6->src.bytes)));
    p.ip.dst.addr = static_cast<std::uint32_t>(
        fnv1a64(std::span<const std::uint8_t>(v6->dst.bytes)));
    return p;
  }
  if (etype != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return std::nullopt;  // other ethertypes are out of scope
  }

  p.l3_offset = off;
  auto after_l4 = parse_ip_l4(f, off, p.ip, p.l4_src, p.l4_dst, p.tcp_flags);
  if (!after_l4) return std::nullopt;
  p.l4_offset = off + Ipv4Header::kSize;
  p.payload_offset = *after_l4;

  // Overlay parsing: VXLAN on UDP/4789, Geneve on UDP/6081.
  if (p.ip.protocol == IpProto::kUdp &&
      (p.l4_dst == kVxlanPort || p.l4_dst == kGenevePort)) {
    std::size_t ov = *after_l4;
    std::size_t inner_l2;
    if (p.l4_dst == kVxlanPort) {
      if (f.size() < ov + VxlanHeader::kSize) return std::nullopt;
      p.vxlan = VxlanHeader::read(f.data() + ov);
      if (!p.vxlan) return std::nullopt;
      inner_l2 = ov + VxlanHeader::kSize;
    } else {
      if (f.size() < ov + GeneveHeader::kSize) return std::nullopt;
      p.geneve = GeneveHeader::read(f.data() + ov);
      if (!p.geneve) return std::nullopt;
      inner_l2 = ov + p.geneve->total_size();
    }
    if (f.size() < inner_l2 + EthernetHeader::kSize) return std::nullopt;
    const auto inner_eth = EthernetHeader::read(f.data() + inner_l2);
    if (inner_eth.ether_type !=
        static_cast<std::uint16_t>(EtherType::kIpv4)) {
      return p;  // non-IP inner payload: stop at the overlay
    }
    Ipv4Header inner_ip;
    std::uint8_t inner_flags = 0;
    auto inner_after =
        parse_ip_l4(f, inner_l2 + EthernetHeader::kSize, inner_ip,
                    p.inner_l4_src, p.inner_l4_dst, inner_flags);
    if (!inner_after) return p;
    p.inner_ip = inner_ip;
    p.payload_offset = *inner_after;
  }
  return p;
}

std::optional<ParsedPacket> parse_and_annotate(Packet& pkt) {
  auto parsed = parse_packet(pkt.bytes());
  if (!parsed) return std::nullopt;
  pkt.tuple = parsed->flow_tuple();
  pkt.vni = parsed->tenant_vni();
  return parsed;
}

namespace {

/// Writes Ethernet+IPv4 and returns the L4 offset.
std::size_t write_eth_ip(std::uint8_t* p, const UdpFlowSpec& spec,
                         std::size_t l3_payload_len) {
  EthernetHeader eth;
  eth.src = spec.src_mac;
  eth.dst = spec.dst_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.write(p);

  Ipv4Header ip;
  ip.src = spec.tuple.src_ip;
  ip.dst = spec.tuple.dst_ip;
  ip.protocol = spec.tuple.proto;
  ip.dscp = spec.dscp;
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + l3_payload_len);
  ip.write(p + EthernetHeader::kSize);
  return EthernetHeader::kSize + Ipv4Header::kSize;
}

}  // namespace

PacketPtr build_udp_packet(const UdpFlowSpec& spec) {
  auto pkt = std::make_unique<Packet>();
  const std::size_t frame_len = EthernetHeader::kSize + Ipv4Header::kSize +
                                UdpHeader::kSize + spec.payload_len;
  std::uint8_t* p = pkt->append(frame_len);
  std::memset(p, 0, frame_len);
  const std::size_t l4 =
      write_eth_ip(p, spec, UdpHeader::kSize + spec.payload_len);
  UdpHeader udp;
  udp.src_port = spec.tuple.src_port;
  udp.dst_port = spec.tuple.dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + spec.payload_len);
  udp.write(p + l4);
  pkt->tuple = spec.tuple;
  return pkt;
}

PacketPtr build_tcp_packet(const UdpFlowSpec& spec, std::uint8_t tcp_flags) {
  auto pkt = std::make_unique<Packet>();
  const std::size_t frame_len = EthernetHeader::kSize + Ipv4Header::kSize +
                                TcpHeader::kSize + spec.payload_len;
  std::uint8_t* p = pkt->append(frame_len);
  std::memset(p, 0, frame_len);
  UdpFlowSpec tcp_spec = spec;
  tcp_spec.tuple.proto = IpProto::kTcp;
  const std::size_t l4 =
      write_eth_ip(p, tcp_spec, TcpHeader::kSize + spec.payload_len);
  TcpHeader tcp;
  tcp.src_port = spec.tuple.src_port;
  tcp.dst_port = spec.tuple.dst_port;
  tcp.flags = tcp_flags;
  tcp.write(p + l4);
  pkt->tuple = tcp_spec.tuple;
  return pkt;
}

PacketPtr build_vxlan_packet(const VxlanFlowSpec& spec) {
  // Build the inner frame first, then wrap it.
  auto inner = build_udp_packet(spec.inner);
  auto pkt = std::make_unique<Packet>();
  const std::size_t inner_len = inner->size();
  const std::size_t frame_len = EthernetHeader::kSize + Ipv4Header::kSize +
                                UdpHeader::kSize + VxlanHeader::kSize +
                                inner_len;
  std::uint8_t* p = pkt->append(frame_len);
  std::memset(p, 0, frame_len);

  UdpFlowSpec outer_spec;
  outer_spec.tuple = spec.outer;
  outer_spec.tuple.proto = IpProto::kUdp;
  outer_spec.tuple.dst_port = kVxlanPort;
  const std::size_t l4 = write_eth_ip(
      p, outer_spec,
      UdpHeader::kSize + VxlanHeader::kSize + inner_len);

  UdpHeader udp;
  udp.src_port = spec.outer.src_port;  // entropy field
  udp.dst_port = kVxlanPort;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize +
                                          VxlanHeader::kSize + inner_len);
  udp.write(p + l4);

  VxlanHeader vx;
  vx.vni = spec.vni;
  vx.write(p + l4 + UdpHeader::kSize);

  std::memcpy(p + l4 + UdpHeader::kSize + VxlanHeader::kSize, inner->data(),
              inner_len);
  pkt->tuple = spec.inner.tuple;
  pkt->vni = spec.vni;
  return pkt;
}

PacketPtr build_geneve_packet(const VxlanFlowSpec& spec,
                              std::uint8_t opt_len_words) {
  auto inner = build_udp_packet(spec.inner);
  auto pkt = std::make_unique<Packet>();
  const std::size_t geneve_len =
      GeneveHeader::kSize + std::size_t{opt_len_words} * 4;
  const std::size_t inner_len = inner->size();
  const std::size_t frame_len = EthernetHeader::kSize + Ipv4Header::kSize +
                                UdpHeader::kSize + geneve_len + inner_len;
  std::uint8_t* p = pkt->append(frame_len);
  std::memset(p, 0, frame_len);

  UdpFlowSpec outer_spec;
  outer_spec.tuple = spec.outer;
  outer_spec.tuple.proto = IpProto::kUdp;
  outer_spec.tuple.dst_port = kGenevePort;
  const std::size_t l4 =
      write_eth_ip(p, outer_spec, UdpHeader::kSize + geneve_len + inner_len);

  UdpHeader udp;
  udp.src_port = spec.outer.src_port;
  udp.dst_port = kGenevePort;
  udp.length =
      static_cast<std::uint16_t>(UdpHeader::kSize + geneve_len + inner_len);
  udp.write(p + l4);

  GeneveHeader g;
  g.vni = spec.vni;
  g.opt_len_words = opt_len_words;
  g.write(p + l4 + UdpHeader::kSize);

  std::memcpy(p + l4 + UdpHeader::kSize + geneve_len, inner->data(),
              inner_len);
  pkt->tuple = spec.inner.tuple;
  pkt->vni = spec.vni;
  return pkt;
}

PacketPtr build_udp6_packet(const Ipv6Address& src, const Ipv6Address& dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::size_t payload_len) {
  auto pkt = std::make_unique<Packet>();
  const std::size_t frame_len = EthernetHeader::kSize + Ipv6Header::kSize +
                                UdpHeader::kSize + payload_len;
  std::uint8_t* p = pkt->append(frame_len);
  std::memset(p, 0, frame_len);

  EthernetHeader eth;
  eth.src = MacAddress::from_u64(0x020000000001);
  eth.dst = MacAddress::from_u64(0x020000000002);
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv6);
  eth.write(p);

  Ipv6Header ip6;
  ip6.src = src;
  ip6.dst = dst;
  ip6.next_header = IpProto::kUdp;
  ip6.payload_length =
      static_cast<std::uint16_t>(UdpHeader::kSize + payload_len);
  ip6.write(p + EthernetHeader::kSize);

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload_len);
  udp.write(p + EthernetHeader::kSize + Ipv6Header::kSize);
  return pkt;
}

PacketPtr build_bfd_packet(const FiveTuple& tuple, const BfdHeader& bfd) {
  UdpFlowSpec spec;
  spec.tuple = tuple;
  spec.tuple.proto = IpProto::kUdp;
  spec.tuple.dst_port = kBfdPort;
  spec.payload_len = BfdHeader::kSize;
  auto pkt = build_udp_packet(spec);
  bfd.write(pkt->data() + EthernetHeader::kSize + Ipv4Header::kSize +
            UdpHeader::kSize);
  return pkt;
}

}  // namespace albatross
