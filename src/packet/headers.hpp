// Wire-format header definitions and (de)serialisation. The Albatross
// basic pipeline parses dozens of protocols in production; this model
// implements the ones the evaluation workloads exercise: Ethernet, 802.1Q
// VLAN (SR-IOV VF steering), IPv4, UDP, TCP, VXLAN (tenant overlay),
// Geneve and NSH (the "new header" examples in §2.1), and BFD (§4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/types.hpp"

namespace albatross {

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
  kNsh = 0x894f,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  void write(std::uint8_t* p) const;
  static EthernetHeader read(const std::uint8_t* p);
};

/// 802.1Q tag (inserted after the MACs). Albatross uses VLAN tags applied
/// by the uplink switch to steer packets to the right SR-IOV VF (App. A).
struct VlanTag {
  static constexpr std::size_t kSize = 4;
  std::uint16_t vlan_id = 0;   // 12 bits
  std::uint8_t pcp = 0;        // 3-bit priority code point
  std::uint16_t inner_ether_type = 0;

  void write(std::uint8_t* p) const;
  static VlanTag read(const std::uint8_t* p);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options in our workloads
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Address src;
  Ipv4Address dst;

  void write(std::uint8_t* p) const;  // computes the header checksum
  static std::optional<Ipv4Header> read(const std::uint8_t* p,
                                        std::size_t avail);
  static std::uint16_t checksum(const std::uint8_t* p, std::size_t len);
};

/// IPv6 fixed header (RFC 8200). Dual-stack tenants exist in production
/// (one of the "dozens of protocols" the basic pipeline parses); the
/// reproduction models the fixed header and TCP/UDP over it.
struct Ipv6Header {
  static constexpr std::size_t kSize = 40;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  IpProto next_header = IpProto::kUdp;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  void write(std::uint8_t* p) const;
  static std::optional<Ipv6Header> read(const std::uint8_t* p,
                                        std::size_t avail);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;

  void write(std::uint8_t* p) const;
  static UdpHeader read(const std::uint8_t* p);
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
  std::uint16_t window = 0xffff;

  void write(std::uint8_t* p) const;
  static TcpHeader read(const std::uint8_t* p);
};

constexpr std::uint16_t kVxlanPort = 4789;
constexpr std::uint16_t kGenevePort = 6081;
constexpr std::uint16_t kBfdPort = 3784;
constexpr std::uint16_t kBgpPort = 179;

/// VXLAN header (RFC 7348). The VNI identifies the tenant and indexes the
/// overload-protection color_table.
struct VxlanHeader {
  static constexpr std::size_t kSize = 8;
  Vni vni = 0;

  void write(std::uint8_t* p) const;
  static std::optional<VxlanHeader> read(const std::uint8_t* p);
};

/// Geneve header (RFC 8926), fixed part only. One of the headers Sailfish
/// could not add (97% PHV); Albatross parses it on the CPU/FPGA freely.
struct GeneveHeader {
  static constexpr std::size_t kSize = 8;
  Vni vni = 0;
  std::uint8_t opt_len_words = 0;  // length of options in 4-byte words

  [[nodiscard]] std::size_t total_size() const {
    return kSize + std::size_t{opt_len_words} * 4;
  }
  void write(std::uint8_t* p) const;
  static std::optional<GeneveHeader> read(const std::uint8_t* p);
};

/// NSH base header (RFC 8300), MD type 1 (fixed 24 bytes).
struct NshHeader {
  static constexpr std::size_t kSize = 24;
  std::uint32_t service_path_id = 0;  // 24 bits
  std::uint8_t service_index = 255;
  std::uint16_t inner_ether_type = 0;

  void write(std::uint8_t* p) const;
  static std::optional<NshHeader> read(const std::uint8_t* p);
};

/// BFD control packet (RFC 5880), the fields link-failure detection needs.
struct BfdHeader {
  static constexpr std::size_t kSize = 24;
  std::uint8_t state = 3;          // Up
  std::uint8_t detect_mult = 3;    // 3 lost probes => link down (§4.3)
  std::uint32_t my_discriminator = 0;
  std::uint32_t your_discriminator = 0;
  std::uint32_t desired_min_tx_us = 1000;

  void write(std::uint8_t* p) const;
  static std::optional<BfdHeader> read(const std::uint8_t* p);
};

}  // namespace albatross
