// Packet parser and builder. The parser mirrors the basic pipeline's
// parse graph (App. A): Ethernet -> optional 802.1Q -> IPv4 -> UDP/TCP,
// and for UDP/4789 recursively parses the VXLAN overlay (inner Ethernet,
// IPv4, L4) to expose the tenant VNI and the *inner* 5-tuple, which is
// what RSS hashing and get_ordq_idx use for tenant flows.
#pragma once

#include <cstdint>
#include <optional>

#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace albatross {

/// Decoded view of a frame. Offsets are relative to Packet::data().
struct ParsedPacket {
  EthernetHeader eth;
  std::optional<VlanTag> vlan;
  Ipv4Header ip;              ///< valid when !ipv6
  std::optional<Ipv6Header> ipv6;  ///< set for native IPv6 frames
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint8_t tcp_flags = 0;

  /// Overlay, present when the outer L4 is UDP/4789 or UDP/6081.
  std::optional<VxlanHeader> vxlan;
  std::optional<GeneveHeader> geneve;
  std::optional<Ipv4Header> inner_ip;
  std::uint16_t inner_l4_src = 0;
  std::uint16_t inner_l4_dst = 0;

  std::size_t l2_offset = 0;
  std::size_t l3_offset = 0;
  std::size_t l4_offset = 0;
  std::size_t payload_offset = 0;  ///< first byte after all parsed headers

  /// True for BGP (TCP/179) and BFD (UDP/3784) — the protocol packets
  /// pkt_dir steers into priority queues.
  [[nodiscard]] bool is_protocol_packet() const;

  /// The 5-tuple used for flow hashing: the inner tuple when an overlay
  /// is present, otherwise the outer tuple.
  [[nodiscard]] FiveTuple flow_tuple() const;

  /// Tenant identifier: VNI of the overlay, 0 for native packets.
  [[nodiscard]] Vni tenant_vni() const;
};

/// Parses a frame. Returns nullopt for truncated or non-IPv4 frames.
std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> frame);

/// Parses and annotates the packet's out-of-band metadata (tuple, vni).
std::optional<ParsedPacket> parse_and_annotate(Packet& pkt);

// --- frame builders (used by traffic generators and tests) ---------------

struct UdpFlowSpec {
  MacAddress src_mac = MacAddress::from_u64(0x020000000001);
  MacAddress dst_mac = MacAddress::from_u64(0x020000000002);
  FiveTuple tuple;
  std::size_t payload_len = 22;  // 64B frame total
  std::uint8_t dscp = 0;
};

/// Builds a plain Ethernet/IPv4/UDP frame.
PacketPtr build_udp_packet(const UdpFlowSpec& spec);

/// Builds an Ethernet/IPv4/TCP frame (e.g. BGP when dst_port==179).
PacketPtr build_tcp_packet(const UdpFlowSpec& spec, std::uint8_t tcp_flags);

struct VxlanFlowSpec {
  Vni vni = 0;
  FiveTuple outer;          ///< VTEP-to-gateway tuple; src_port is entropy
  UdpFlowSpec inner;        ///< tenant flow inside the tunnel
};

/// Builds an Ethernet/IPv4/UDP(4789)/VXLAN/Ethernet/IPv4/UDP frame — the
/// canonical tenant packet arriving at the cloud gateway.
PacketPtr build_vxlan_packet(const VxlanFlowSpec& spec);

/// Builds a BFD control packet (UDP/3784) — a priority protocol packet.
PacketPtr build_bfd_packet(const FiveTuple& tuple, const BfdHeader& bfd);

/// Builds an Ethernet/IPv4/UDP(6081)/Geneve/Ethernet/IPv4/UDP frame —
/// the overlay header Sailfish could not add for lack of PHV (§2.1).
PacketPtr build_geneve_packet(const VxlanFlowSpec& spec,
                              std::uint8_t opt_len_words = 0);

/// Builds a native Ethernet/IPv6/UDP frame (dual-stack tenants).
PacketPtr build_udp6_packet(const Ipv6Address& src, const Ipv6Address& dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::size_t payload_len = 22);

}  // namespace albatross
