#include "packet/packet.hpp"

#include <cassert>
#include <vector>

#include "common/endian.hpp"

namespace albatross {

namespace {

// Size-classed freelists for PacketBuf. Classes are powers of two from
// 256 B up to 16 KiB (>= kHeadroom + kMaxFrame + tailroom); anything
// larger falls back to plain new[]/delete[]. thread_local keeps the pool
// lock-free; the simulator itself is single-threaded.
constexpr std::size_t kMinClassShift = 8;   // 256 B
constexpr std::size_t kMaxClassShift = 14;  // 16 KiB
constexpr std::size_t kNumClasses = kMaxClassShift - kMinClassShift + 1;
constexpr std::size_t kMaxPooledPerClass = 16384;

struct BufPool {
  std::vector<std::uint8_t*> free_lists[kNumClasses];
  ~BufPool() {
    for (auto& fl : free_lists) {
      for (std::uint8_t* p : fl) delete[] p;
    }
  }
};

BufPool& buf_pool() {
  static thread_local BufPool pool;
  return pool;
}

/// Class index for a pooled capacity, or kNumClasses if unpooled.
std::size_t class_of(std::size_t cap) {
  std::size_t sz = std::size_t{1} << kMinClassShift;
  for (std::size_t cls = 0; cls < kNumClasses; ++cls, sz <<= 1) {
    if (cap == sz) return cls;
  }
  return kNumClasses;
}

}  // namespace

PacketBuf::PacketBuf(std::size_t min_bytes) {
  std::size_t sz = std::size_t{1} << kMinClassShift;
  std::size_t cls = 0;
  while (sz < min_bytes && cls + 1 < kNumClasses) {
    sz <<= 1;
    ++cls;
  }
  if (sz < min_bytes) {
    // Oversize (cannot happen for frames <= kMaxFrame): unpooled.
    data_ = new std::uint8_t[min_bytes];
    cap_ = min_bytes;
    return;
  }
  auto& fl = buf_pool().free_lists[cls];
  if (!fl.empty()) {
    data_ = fl.back();
    fl.pop_back();
  } else {
    data_ = new std::uint8_t[sz];
  }
  cap_ = sz;
}

PacketBuf::~PacketBuf() {
  if (data_ == nullptr) return;
  const std::size_t cls = class_of(cap_);
  if (cls < kNumClasses) {
    auto& fl = buf_pool().free_lists[cls];
    if (fl.size() < kMaxPooledPerClass) {
      fl.push_back(data_);
      return;
    }
  }
  delete[] data_;
}

PacketBuf& PacketBuf::operator=(PacketBuf&& o) noexcept {
  if (this != &o) {
    std::uint8_t* p = o.data_;
    const std::size_t c = o.cap_;
    o.data_ = nullptr;
    o.cap_ = 0;
    this->~PacketBuf();
    data_ = p;
    cap_ = c;
  }
  return *this;
}

void PlbMeta::serialize(std::uint8_t* out) const {
  store_be16(out, kMagic);
  std::uint8_t flags = 0;
  if (drop) flags |= 0x1;
  if (header_only) flags |= 0x2;
  out[2] = flags;
  out[3] = ordq_idx;
  store_be32(out + 4, psn);
  store_be16(out + 8, payload_id);
  store_be16(out + 10, 0);  // reserved
}

bool PlbMeta::deserialize(const std::uint8_t* in, PlbMeta& out) {
  if (load_be16(in) != kMagic) return false;
  const std::uint8_t flags = in[2];
  out.drop = (flags & 0x1) != 0;
  out.header_only = (flags & 0x2) != 0;
  out.ordq_idx = in[3];
  out.psn = load_be32(in + 4);
  out.payload_id = load_be16(in + 8);
  return true;
}

Packet::Packet() : store_(kHeadroom + kMaxFrame) {}

Packet::Packet(std::span<const std::uint8_t> frame)
    : Packet(frame.size() + kTailroomSlack) {
  assign(frame);
}

Packet::Packet(std::size_t capacity_bytes)
    : store_(kHeadroom + capacity_bytes) {}

std::unique_ptr<Packet> Packet::make_synthetic(const FiveTuple& tuple, Vni vni,
                                 std::size_t wire_len) {
  auto pkt = std::make_unique<Packet>(wire_len + kTailroomSlack);
  // The pooled arena is uninitialized; the zero-payload contract of
  // synthetic frames needs exactly this memset (and nothing wider).
  std::memset(pkt->append(wire_len), 0, wire_len);
  pkt->tuple = tuple;
  pkt->vni = vni;
  return pkt;
}

void Packet::assign(std::span<const std::uint8_t> frame) {
  assert(frame.size() <= kMaxFrame);
  assert(kHeadroom + frame.size() <= store_.size());
  offset_ = kHeadroom;
  len_ = frame.size();
  std::memcpy(store_.data() + offset_, frame.data(), frame.size());
  PlbMeta probe;
  has_plb_meta_ = peek_plb_meta(probe);
}

std::unique_ptr<Packet> Packet::clone() const {
  auto p = std::make_unique<Packet>(std::size_t{0});
  p->store_ = PacketBuf(store_.size());
  std::memcpy(p->store_.data(), store_.data(), offset_ + len_);
  p->offset_ = offset_;
  p->len_ = len_;
  p->has_plb_meta_ = has_plb_meta_;
  p->rx_time = rx_time;
  p->nic_ingress_done = nic_ingress_done;
  p->tuple = tuple;
  p->vni = vni;
  p->pkt_class = pkt_class;
  p->pod = pod;
  p->rx_queue = rx_queue;
  p->flow_id = flow_id;
  p->seq_in_flow = seq_in_flow;
  return p;
}

std::uint8_t* Packet::prepend(std::size_t n) {
  assert(offset_ >= n);
  offset_ -= n;
  len_ += n;
  return data();
}

void Packet::adj(std::size_t n) {
  assert(n <= len_);
  offset_ += n;
  len_ -= n;
}

std::uint8_t* Packet::append(std::size_t n) {
  assert(offset_ + len_ + n <= store_.size());
  std::uint8_t* p = store_.data() + offset_ + len_;
  len_ += n;
  return p;
}

void Packet::trim(std::size_t n) {
  assert(n <= len_);
  len_ -= n;
}

void Packet::attach_plb_meta(const PlbMeta& meta) {
  meta.serialize(append(PlbMeta::kWireSize));
  has_plb_meta_ = true;
}

bool Packet::peek_plb_meta(PlbMeta& out) const {
  if (len_ < PlbMeta::kWireSize) return false;
  return PlbMeta::deserialize(data() + len_ - PlbMeta::kWireSize, out);
}

bool Packet::strip_plb_meta(PlbMeta& out) {
  if (!peek_plb_meta(out)) return false;
  trim(PlbMeta::kWireSize);
  has_plb_meta_ = false;
  return true;
}

bool Packet::update_plb_meta(const PlbMeta& meta) {
  PlbMeta existing;
  if (!peek_plb_meta(existing)) return false;
  meta.serialize(store_.data() + offset_ + len_ - PlbMeta::kWireSize);
  return true;
}

}  // namespace albatross
