#include "packet/packet.hpp"

#include <cassert>

#include "common/endian.hpp"

namespace albatross {

void PlbMeta::serialize(std::uint8_t* out) const {
  store_be16(out, kMagic);
  std::uint8_t flags = 0;
  if (drop) flags |= 0x1;
  if (header_only) flags |= 0x2;
  out[2] = flags;
  out[3] = ordq_idx;
  store_be32(out + 4, psn);
  store_be16(out + 8, payload_id);
  store_be16(out + 10, 0);  // reserved
}

bool PlbMeta::deserialize(const std::uint8_t* in, PlbMeta& out) {
  if (load_be16(in) != kMagic) return false;
  const std::uint8_t flags = in[2];
  out.drop = (flags & 0x1) != 0;
  out.header_only = (flags & 0x2) != 0;
  out.ordq_idx = in[3];
  out.psn = load_be32(in + 4);
  out.payload_id = load_be16(in + 8);
  return true;
}

Packet::Packet() : store_(kHeadroom + kMaxFrame) {}

Packet::Packet(std::span<const std::uint8_t> frame)
    : Packet(frame.size() + kTailroomSlack) {
  assign(frame);
}

Packet::Packet(std::size_t capacity_bytes)
    : store_(kHeadroom + capacity_bytes) {}

std::unique_ptr<Packet> Packet::make_synthetic(const FiveTuple& tuple, Vni vni,
                                 std::size_t wire_len) {
  auto pkt = std::make_unique<Packet>(wire_len + kTailroomSlack);
  std::memset(pkt->append(wire_len), 0, wire_len);
  pkt->tuple = tuple;
  pkt->vni = vni;
  return pkt;
}

void Packet::assign(std::span<const std::uint8_t> frame) {
  assert(frame.size() <= kMaxFrame);
  offset_ = kHeadroom;
  len_ = frame.size();
  std::memcpy(store_.data() + offset_, frame.data(), frame.size());
}

std::unique_ptr<Packet> Packet::clone() const {
  auto p = std::make_unique<Packet>();
  p->store_ = store_;
  p->offset_ = offset_;
  p->len_ = len_;
  p->rx_time = rx_time;
  p->nic_ingress_done = nic_ingress_done;
  p->tuple = tuple;
  p->vni = vni;
  p->pkt_class = pkt_class;
  p->pod = pod;
  p->rx_queue = rx_queue;
  p->flow_id = flow_id;
  p->seq_in_flow = seq_in_flow;
  return p;
}

std::uint8_t* Packet::prepend(std::size_t n) {
  assert(offset_ >= n);
  offset_ -= n;
  len_ += n;
  return data();
}

void Packet::adj(std::size_t n) {
  assert(n <= len_);
  offset_ += n;
  len_ -= n;
}

std::uint8_t* Packet::append(std::size_t n) {
  assert(offset_ + len_ + n <= store_.size());
  std::uint8_t* p = store_.data() + offset_ + len_;
  len_ += n;
  return p;
}

void Packet::trim(std::size_t n) {
  assert(n <= len_);
  len_ -= n;
}

void Packet::attach_plb_meta(const PlbMeta& meta) {
  meta.serialize(append(PlbMeta::kWireSize));
}

bool Packet::peek_plb_meta(PlbMeta& out) const {
  if (len_ < PlbMeta::kWireSize) return false;
  return PlbMeta::deserialize(data() + len_ - PlbMeta::kWireSize, out);
}

bool Packet::strip_plb_meta(PlbMeta& out) {
  if (!peek_plb_meta(out)) return false;
  trim(PlbMeta::kWireSize);
  return true;
}

bool Packet::update_plb_meta(const PlbMeta& meta) {
  PlbMeta existing;
  if (!peek_plb_meta(existing)) return false;
  meta.serialize(store_.data() + offset_ + len_ - PlbMeta::kWireSize);
  return true;
}

}  // namespace albatross
