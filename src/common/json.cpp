#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace albatross {
namespace {

const JsonValue kNullValue{};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(JsonParseError* error) {
    skip_ws();
    auto v = parse_value();
    skip_ws();
    if (v && pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      v.reset();
    }
    if (!v && error != nullptr) {
      error->offset = err_pos_;
      error->message = err_msg_;
    }
    return v;
  }

 private:
  void fail(std::string msg) {
    if (err_msg_.empty()) {
      err_msg_ = std::move(msg);
      err_pos_ = pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() { return eof() ? '\0' : text_[pos_++]; }

  void skip_ws() {
    while (!eof() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                      text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue(std::move(*s));
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        return JsonValue(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return JsonValue(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return JsonValue();
      default:
        return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!expect(':')) return std::nullopt;
      skip_ws();
      auto val = parse_value();
      if (!val) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*val));
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
    return JsonValue(std::move(obj));
  }

  std::optional<JsonValue> parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
    return JsonValue(std::move(arr));
  }

  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    return out;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    double value = 0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_msg_;
  std::size_t err_pos_ = 0;
};

void dump_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_value(std::ostringstream& os, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      break;
    case JsonValue::Kind::kBool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_number();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        os << static_cast<std::int64_t>(d);
      } else {
        os << d;
      }
      break;
    }
    case JsonValue::Kind::kString:
      dump_string(os, v.as_string());
      break;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) os << ',';
        first = false;
        dump_value(os, e);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) os << ',';
        first = false;
        dump_string(os, k);
        os << ':';
        dump_value(os, e);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (kind_ != Kind::kObject) return kNullValue;
  const auto it = obj_.find(key);
  return it != obj_.end() ? it->second : kNullValue;
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  dump_value(os, *this);
  return os.str();
}

std::optional<JsonValue> json_parse(std::string_view text,
                                    JsonParseError* error) {
  return Parser(text).run(error);
}

}  // namespace albatross
