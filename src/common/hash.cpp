#include "common/hash.hpp"

#include <algorithm>

#include "common/endian.hpp"

namespace albatross {
namespace {

/// Builds the reflected CRC32C lookup table at static-init time.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t poly = 0x82f63b78u;  // reflected 0x1EDC6F41
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32cTable = make_crc32c_table();

/// Returns bit `idx` (0 = MSB of byte 0) of `bytes`, or 0 past the end.
inline std::uint32_t bit_at(std::span<const std::uint8_t> bytes,
                            std::size_t idx) {
  const std::size_t byte = idx / 8;
  if (byte >= bytes.size()) return 0;
  return (bytes[byte] >> (7 - idx % 8)) & 1u;
}

}  // namespace

std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key) {
  // For every set bit i of the input (MSB-first), XOR in the 32-bit
  // window of the key starting at bit offset i. The window slides left
  // one key bit per input bit.
  std::uint32_t result = 0;
  std::uint32_t window = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    window = (window << 1) | bit_at(key, i);
  }
  std::size_t next_key_bit = 32;
  for (std::size_t i = 0; i < input.size() * 8; ++i) {
    if (bit_at(input, i)) {
      result ^= window;
    }
    window = (window << 1) | bit_at(key, next_key_bit++);
  }
  return result;
}

std::array<std::uint8_t, 13> five_tuple_bytes(const FiveTuple& t) {
  std::array<std::uint8_t, 13> out{};
  store_be32(out.data(), t.src_ip.addr);
  store_be32(out.data() + 4, t.dst_ip.addr);
  store_be16(out.data() + 8, t.src_port);
  store_be16(out.data() + 10, t.dst_port);
  out[12] = static_cast<std::uint8_t>(t.proto);
  return out;
}

std::uint32_t rss_hash(const FiveTuple& t, std::span<const std::uint8_t> key) {
  // Standard RSS input vector for TCP/UDP over IPv4:
  // src_ip | dst_ip | src_port | dst_port (protocol excluded).
  std::array<std::uint8_t, 12> input{};
  store_be32(input.data(), t.src_ip.addr);
  store_be32(input.data() + 4, t.dst_ip.addr);
  store_be16(input.data() + 8, t.src_port);
  store_be16(input.data() + 10, t.dst_port);
  return toeplitz_hash(input, key);
}

std::uint32_t rss_hash_v6(const Ipv6Address& src, const Ipv6Address& dst,
                          std::uint16_t src_port, std::uint16_t dst_port,
                          std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 36> input{};
  std::copy(src.bytes.begin(), src.bytes.end(), input.begin());
  std::copy(dst.bytes.begin(), dst.bytes.end(), input.begin() + 16);
  store_be16(input.data() + 32, src_port);
  store_be16(input.data() + 34, dst_port);
  return toeplitz_hash(input, key);
}

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = seed;
  for (auto b : data) {
    crc = kCrc32cTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t crc32c(const FiveTuple& t) {
  const auto bytes = five_tuple_bytes(t);
  return crc32c(std::span<const std::uint8_t>{bytes});
}

}  // namespace albatross
