// Minimal JSON parser/serializer (RFC 8259 subset, no external deps).
// Used by the config loader so experiment setups — platform geometry,
// pod specs, traffic mixes — can live in version-controlled files
// instead of C++ (the way production gateway fleets are configured).
// Supported: objects, arrays, strings (with \" \\ \/ \b \f \n \r \t and
// \uXXXX for BMP code points), numbers, booleans, null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace albatross {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::int64_t i)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return kind_ == Kind::kNumber ? static_cast<std::int64_t>(num_)
                                  : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JsonArray& as_array() const { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const { return obj_; }

  /// Object member access; returns a null value for missing keys or
  /// non-objects (chainable: v["a"]["b"].as_int(7)).
  const JsonValue& operator[](const std::string& key) const;

  /// Typed convenience getters with defaults.
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const {
    const auto& v = (*this)[key];
    return v.kind() == Kind::kNumber ? v.as_number() : fallback;
  }
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const auto& v = (*this)[key];
    return v.kind() == Kind::kNumber ? v.as_int() : fallback;
  }
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto& v = (*this)[key];
    return v.kind() == Kind::kBool ? v.as_bool() : fallback;
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto& v = (*this)[key];
    return v.kind() == Kind::kString ? v.as_string() : fallback;
  }

  /// Serialises back to compact JSON text.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

struct JsonParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parses JSON text; on failure returns nullopt and fills `error` (if
/// given).
std::optional<JsonValue> json_parse(std::string_view text,
                                    JsonParseError* error = nullptr);

}  // namespace albatross
