#include "common/alias.hpp"

namespace albatross {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  double acc = 0.0;
  for (const double w : weights) acc += w > 0.0 ? w : 0.0;
  if (n == 0 || acc <= 0.0) return;

  pmf_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = weights[i] > 0.0 ? weights[i] : 0.0;
  }
  for (auto& v : pmf_) v /= acc;

  // Vose's stable construction of the alias table.
  prob_.resize(n);
  alias_.resize(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly-1 columns up to rounding.
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

}  // namespace albatross
