#include "common/histogram.hpp"

#include <bit>
#include <cmath>

namespace albatross {

LogHistogram::LogHistogram() : buckets_(kDecades * kSubBuckets, 0) {}

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int decade = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>(
      (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  std::size_t idx = static_cast<std::size_t>(decade) * kSubBuckets + sub;
  const std::size_t last = static_cast<std::size_t>(kDecades) * kSubBuckets - 1;
  return idx < last ? idx : last;
}

std::uint64_t LogHistogram::bucket_upper_bound(std::size_t index) {
  const std::size_t decade = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  if (decade == 0) return sub;
  const int shift = static_cast<int>(decade) - 1;
  return ((std::uint64_t{kSubBuckets} + sub + 1) << shift) - 1;
}

void LogHistogram::record(std::uint64_t value) { record_n(value, 1); }

void LogHistogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(value)] += count;
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      const std::uint64_t ub = bucket_upper_bound(i);
      return ub < max_ ? ub : max_;
    }
  }
  return max_;
}

double LogHistogram::fraction_above(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    // Count a bucket as "above" iff its entire range is above the
    // threshold; the boundary bucket is attributed conservatively below.
    if (bucket_upper_bound(i) > threshold) above += buckets_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  if (other.total_) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void LogHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

std::string LogHistogram::summary_us() const {
  auto us = [](std::uint64_t ns) {
    return std::to_string(ns / 1000) + "." + std::to_string((ns % 1000) / 100);
  };
  return "p50=" + us(quantile(0.5)) + "us p99=" + us(quantile(0.99)) +
         " p999=" + us(quantile(0.999)) + " max=" + us(max()) + "us";
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace albatross
