// Strong unit types for the Albatross cycle-aware model.
//
// The evaluation reproduces figures whose correctness hinges on unit
// discipline: virtual nanoseconds (event loop, latency histograms), FPGA
// clock cycles (NIC pipeline stages, Tab. 5 resource ledger), 12-bit
// wrapping packet sequence numbers (reorder BUF/BITMAP indexing), and
// core / NUMA-node identifiers. All of these used to be interchangeable
// `int64_t`/`uint16_t` values, which is exactly the class of silent
// unit-confusion bug that corrupts reproduced numbers without failing a
// test. The types below make mixing them a compile error:
//
//   Nanos + FpgaCycles        -> does not compile
//   Nanos{5} == 5             -> does not compile (explicit .count())
//   CoreId used as NumaNodeId -> does not compile (explicit .value())
//
// Conversions are spelled out (`cycles_to_nanos`, `node_of_core`) so the
// clock frequency / topology they depend on is visible at the call site.
// This header and common/types.hpp are the only places allowed to spell
// raw power-of-1000 time factors (enforced by tools/lint rule
// `naked-time-literal`).
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>

namespace albatross {

/// One-dimensional quantity with an additive group structure: quantities
/// of the same Tag add, subtract and compare; scaling by a dimensionless
/// factor is allowed; the ratio of two quantities is dimensionless.
/// Construction from a raw count is explicit.
template <class Tag>
class Quantity {
 public:
  using Rep = std::int64_t;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep count() const { return v_; }

  static constexpr Quantity zero() { return Quantity{}; }
  static constexpr Quantity max() {
    return Quantity{std::numeric_limits<Rep>::max()};
  }

  constexpr auto operator<=>(const Quantity&) const = default;

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  /// Scaling by a dimensionless integer keeps the unit.
  template <std::integral I>
  friend constexpr Quantity operator*(Quantity a, I m) {
    return Quantity{a.v_ * static_cast<Rep>(m)};
  }
  template <std::integral I>
  friend constexpr Quantity operator*(I m, Quantity a) {
    return a * m;
  }
  template <std::integral I>
  friend constexpr Quantity operator/(Quantity a, I d) {
    return Quantity{a.v_ / static_cast<Rep>(d)};
  }
  /// Scaling by a dimensionless real truncates toward zero, matching the
  /// historical `static_cast<int64_t>(ns * factor)` sites it replaces.
  template <std::floating_point F>
  friend constexpr Quantity operator*(Quantity a, F m) {
    return Quantity{static_cast<Rep>(static_cast<F>(a.v_) * m)};
  }
  template <std::floating_point F>
  friend constexpr Quantity operator*(F m, Quantity a) {
    return a * m;
  }

  /// The ratio of two like quantities is dimensionless.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }
  friend constexpr Quantity operator%(Quantity a, Quantity b) {
    return Quantity{a.v_ % b.v_};
  }

 private:
  Rep v_ = 0;
};

template <class Tag>
[[nodiscard]] constexpr Quantity<Tag> abs(Quantity<Tag> q) {
  return q.count() < 0 ? -q : q;
}

/// Exact real-valued ratio of two like quantities (integer division in
/// `operator/` truncates; rate math usually wants this instead).
template <class Tag>
[[nodiscard]] constexpr double ratio(Quantity<Tag> a, Quantity<Tag> b) {
  return static_cast<double>(a.count()) / static_cast<double>(b.count());
}

/// Virtual simulation time in nanoseconds. The event loop, every timer
/// and every latency constant in the paper (100us reorder timeout, 50us
/// service ceiling) live in this unit.
using Nanos = Quantity<struct NanosTag>;

/// FPGA clock cycles. NIC pipeline stage costs and the reorder check are
/// naturally specified in cycles of the 250 MHz fabric clock (Tab. 4/5);
/// converting to Nanos requires naming the clock frequency.
using FpgaCycles = Quantity<struct FpgaCyclesTag>;

/// Default FPGA fabric clock of the Albatross NIC model.
constexpr std::uint32_t kDefaultFpgaClockMhz = 250;

/// cycles -> virtual nanoseconds at a given fabric clock (truncating;
/// one 250 MHz cycle = 4 ns exactly).
[[nodiscard]] constexpr Nanos cycles_to_nanos(
    FpgaCycles c, std::uint32_t clock_mhz = kDefaultFpgaClockMhz) {
  return Nanos{c.count() * 1'000 / clock_mhz};
}

/// nanoseconds -> cycles at a given fabric clock, rounding up (hardware
/// cannot finish mid-cycle).
[[nodiscard]] constexpr FpgaCycles nanos_to_cycles(
    Nanos ns, std::uint32_t clock_mhz = kDefaultFpgaClockMhz) {
  return FpgaCycles{(ns.count() * clock_mhz + 999) / 1'000};
}

/// Nanos -> fractional milliseconds, for JSON/report fields named *_ms.
[[nodiscard]] constexpr double nanos_to_millis(Nanos ns) {
  return static_cast<double>(ns.count()) / 1e6;
}

/// Fractional milliseconds -> Nanos (truncating), for *_ms JSON fields.
[[nodiscard]] constexpr Nanos millis_to_nanos(double ms) {
  return Nanos{static_cast<std::int64_t>(ms * 1e6)};
}

/// Nanos -> fractional seconds, for rate math (pkts/s, bits/s).
[[nodiscard]] constexpr double nanos_to_seconds(Nanos ns) {
  return static_cast<double>(ns.count()) / 1e9;
}

/// Fractional nanoseconds -> Nanos, truncating toward zero. The named
/// conversion for rate / jitter math that computes gaps in floating
/// point (1e9 / pps, exponential inter-arrivals).
[[nodiscard]] constexpr Nanos nanos_from_double(double ns) {
  return Nanos{static_cast<std::int64_t>(ns)};
}

inline namespace unit_literals {
constexpr Nanos operator""_ns(unsigned long long v) {
  return Nanos{static_cast<Nanos::Rep>(v)};
}
constexpr Nanos operator""_us(unsigned long long v) {
  return Nanos{static_cast<Nanos::Rep>(v) * 1'000};
}
constexpr Nanos operator""_ms(unsigned long long v) {
  return Nanos{static_cast<Nanos::Rep>(v) * 1'000'000};
}
constexpr FpgaCycles operator""_cycles(unsigned long long v) {
  return FpgaCycles{static_cast<FpgaCycles::Rep>(v)};
}
}  // namespace unit_literals

/// Wrapping 12-bit packet sequence number, the index space of the
/// reorder BUF/BITMAP (psn[11:0] in Fig. 3). A wrapping space has no
/// total order, so Psn12 deliberately offers only equality and
/// `distance()`; ad-hoc `<` comparisons on masked PSNs are exactly the
/// 4095 -> 0 boundary bug this type exists to prevent.
class Psn12 {
 public:
  static constexpr std::uint32_t kBits = 12;
  static constexpr std::uint32_t kMod = 1u << kBits;
  static constexpr std::uint32_t kMask = kMod - 1;

  constexpr Psn12() = default;
  /// Truncates a full free-running PSN to its low 12 bits.
  constexpr explicit Psn12(std::uint32_t raw) : v_(raw & kMask) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }

  friend constexpr bool operator==(Psn12, Psn12) = default;

  /// Forward wrapping distance from -> to, in [0, kMod). At the
  /// boundary: distance(Psn12{4095}, Psn12{0}) == 1.
  [[nodiscard]] static constexpr std::uint32_t distance(Psn12 from,
                                                        Psn12 to) {
    return (to.v_ - from.v_) & kMask;
  }

  /// Forward wrapping distance in an arbitrary power-of-two index space
  /// (reorder queues configured smaller than 4K use fewer index bits,
  /// mod = queue entries). `mod` must be a power of two.
  [[nodiscard]] static constexpr std::uint32_t distance(std::uint32_t from,
                                                        std::uint32_t to,
                                                        std::uint32_t mod) {
    return (to - from) & (mod - 1);
  }

  /// Slot of a full PSN in a power-of-two ring of `mod` entries.
  [[nodiscard]] static constexpr std::uint32_t slot_of(std::uint32_t psn,
                                                       std::uint32_t mod) {
    return psn & (mod - 1);
  }

  constexpr Psn12 operator+(std::uint32_t n) const { return Psn12{v_ + n}; }

 private:
  std::uint32_t v_ = 0;
};

/// Strongly-typed small identifier. Distinct Tags never compare or
/// convert into each other; `value()` is the only way out.
template <class Tag, class Rep = std::uint16_t>
class StrongId {
 public:
  using rep = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }
  /// Zero-extended value for container indexing.
  [[nodiscard]] constexpr std::size_t index() const { return v_; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  Rep v_ = 0;
};

/// Index of a data core inside a pod / across the server.
using CoreId = StrongId<struct CoreIdTag>;

/// NUMA node identifier (the Albatross server has two).
using NumaNodeId = StrongId<struct NumaNodeIdTag>;

}  // namespace albatross

template <class Tag, class Rep>
struct std::hash<albatross::StrongId<Tag, Rep>> {
  std::size_t operator()(const albatross::StrongId<Tag, Rep>& id) const {
    return std::hash<Rep>{}(id.value());
  }
};

template <class Tag>
struct std::hash<albatross::Quantity<Tag>> {
  std::size_t operator()(const albatross::Quantity<Tag>& q) const {
    return std::hash<typename albatross::Quantity<Tag>::Rep>{}(q.count());
  }
};

/// Without this, std::numeric_limits<Nanos>::max() silently hits the
/// primary template and returns Nanos{} — zero, not the maximum. That
/// exact bug bit the traffic mux during the strong-type migration, so
/// the limits are specialized rather than left as a trap.
template <class Tag>
struct std::numeric_limits<albatross::Quantity<Tag>> {
  using Rep = typename albatross::Quantity<Tag>::Rep;
  static constexpr bool is_specialized = true;
  static constexpr albatross::Quantity<Tag> min() noexcept {
    return albatross::Quantity<Tag>{std::numeric_limits<Rep>::min()};
  }
  static constexpr albatross::Quantity<Tag> lowest() noexcept { return min(); }
  static constexpr albatross::Quantity<Tag> max() noexcept {
    return albatross::Quantity<Tag>{std::numeric_limits<Rep>::max()};
  }
};
