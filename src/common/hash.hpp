// Hash functions used across the platform:
//  - Toeplitz: the Microsoft RSS hash, used by the NIC pipeline's RSS mode
//    (flow-level load balancing) exactly as commodity NICs implement it.
//  - CRC32C (Castagnoli): used by plb_dispatch's get_ordq_idx to pick the
//    order-preserving queue for a 5-tuple, and by the cuckoo table.
//  - FNV-1a / mix64: cheap mixers for the two-stage rate limiter's
//    meter_table hashing and general-purpose table indexing.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace albatross {

/// Default 40-byte Toeplitz key (the well-known Microsoft verification
/// key). Symmetric flows hash identically only with a symmetric key; the
/// gateway does not need symmetry because each direction is a distinct
/// service pass.
inline constexpr std::array<std::uint8_t, 40> kDefaultToeplitzKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/// Computes the Toeplitz hash over arbitrary input with the given key.
/// `input` is processed MSB-first as the RSS specification requires.
std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key = kDefaultToeplitzKey);

/// RSS hash over the IPv4 4-tuple+ports input vector
/// (src_ip, dst_ip, src_port, dst_port), as used for TCP/UDP RSS.
std::uint32_t rss_hash(const FiveTuple& t,
                       std::span<const std::uint8_t> key = kDefaultToeplitzKey);

/// RSS hash over the IPv6 input vector (src, dst, src_port, dst_port —
/// 36 bytes), as NICs compute for TCP/UDP over IPv6.
std::uint32_t rss_hash_v6(const Ipv6Address& src, const Ipv6Address& dst,
                          std::uint16_t src_port, std::uint16_t dst_port,
                          std::span<const std::uint8_t> key = kDefaultToeplitzKey);

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), software
/// table-driven implementation.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0xffffffffu);

/// CRC32C over a 5-tuple; used by get_ordq_idx (Fig. 3) to select the PLB
/// order-preserving queue so that one flow always maps to one queue.
std::uint32_t crc32c(const FiveTuple& t);

/// 64-bit FNV-1a.
constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (auto b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Strong 64-bit finalizer (splitmix64 finalizer). Used to derive the
/// meter_table slot for a VNI in the second rate-limiting stage.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Serialises a 5-tuple into the canonical 13-byte RSS input vector.
std::array<std::uint8_t, 13> five_tuple_bytes(const FiveTuple& t);

}  // namespace albatross
