// Fundamental value types shared across the Albatross reproduction:
// addresses, five-tuples, tenant identifiers and strong time aliases.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/units.hpp"

namespace albatross {

/// Virtual simulation time in nanoseconds. All latency constants in the
/// paper (100us reorder timeout, 50us service ceiling, 20us average
/// gateway latency) are expressed in this unit. Historically an
/// `int64_t` alias; now the strong `Nanos` type from common/units.hpp,
/// so mixing time with cycles, PSNs or raw counters is a compile error.
using NanoTime = Nanos;

constexpr NanoTime kMicrosecond = Nanos{1'000};
constexpr NanoTime kMillisecond = Nanos{1'000'000};
constexpr NanoTime kSecond = Nanos{1'000'000'000};

/// VXLAN Network Identifier. The paper uses the VNI as the tenant
/// identifier for overload rate-limiting (color_table index = VNI % 4K).
using Vni = std::uint32_t;

/// 48-bit Ethernet MAC address, stored big-endian as on the wire.
struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  constexpr auto operator<=>(const MacAddress&) const = default;

  /// Builds a locally-administered MAC from a 48-bit integer, useful for
  /// synthetic VM fleets.
  static constexpr MacAddress from_u64(std::uint64_t v) {
    MacAddress m;
    for (int i = 5; i >= 0; --i) {
      m.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
    return m;
  }

  [[nodiscard]] std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes) v = (v << 8) | b;
    return v;
  }
};

/// IPv4 address in host byte order; serialisation handles endianness.
struct Ipv4Address {
  std::uint32_t addr = 0;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string((addr >> 24) & 0xff) + '.' +
           std::to_string((addr >> 16) & 0xff) + '.' +
           std::to_string((addr >> 8) & 0xff) + '.' +
           std::to_string(addr & 0xff);
  }
};

/// IPv6 address, big-endian byte array. The cloud gateway parses v6 but
/// the evaluation workloads are IPv4, so this stays a thin value type.
struct Ipv6Address {
  std::array<std::uint8_t, 16> bytes{};
  constexpr auto operator<=>(const Ipv6Address&) const = default;
};

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Canonical 5-tuple used for RSS hashing and for selecting the PLB
/// order-preserving queue (get_ordq_idx in Fig. 3).
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  constexpr auto operator<=>(const FiveTuple&) const = default;
};

/// Identifies a GW pod on an Albatross server. Pods own disjoint NIC
/// resources (queues, reorder queues, pkt_dir slices) via SR-IOV.
using PodId = std::uint16_t;

// CoreId / NumaNodeId are strong identifier types in common/units.hpp.

/// Packet sequence number assigned by plb_dispatch. The hardware legal
/// check uses only the low 12 bits (psn[11:0]) as the BUF/BITMAP index.
using Psn = std::uint32_t;

constexpr std::uint32_t kPsnIndexBits = Psn12::kBits;
constexpr std::uint32_t kPsnIndexMask = Psn12::kMask;

/// Reorder queue capacity: 4K entries, sized to buffer 100us of traffic
/// at 40 Mpps (4.1 "the queue length is set to 4K").
constexpr std::uint32_t kReorderQueueEntries = 1u << kPsnIndexBits;

/// Reorder head-of-line timeout (Case 1 of reorder check).
constexpr NanoTime kReorderTimeout = 100 * kMicrosecond;

}  // namespace albatross
