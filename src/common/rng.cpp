#include "common/rng.hpp"

#include <cmath>

namespace albatross {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64, used to expand the single seed into the 256-bit state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_gaussian(double mean, double stddev) {
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::next_pareto(double xm, double alpha) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<double> ZipfSampler::rank_weights(std::size_t n, double alpha) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return w;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : alias_(rank_weights(n, alpha)) {}

}  // namespace albatross
