// Walker/Vose alias-method sampler over an arbitrary discrete weight
// vector: O(n) construction, O(1) per draw (two array reads), exactly
// one uniform variate consumed per sample. This is the shared engine
// behind every skewed population draw in the tree — Zipf flow
// popularity on the traffic hot path (common/rng.hpp ZipfSampler) and
// the fleet layer's million-tenant population generator — so the two
// never drift apart numerically.
//
// The class is deliberately RNG-agnostic: pick() takes a uniform in
// [0, 1) so the header depends on nothing and callers keep their own
// seeded Rng streams (a determinism requirement, see
// docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace albatross {

class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the table from non-negative weights (need not be
  /// normalised; an all-zero or empty vector yields an empty sampler).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws a rank in [0, size()) from one uniform variate u in [0, 1).
  /// Hot path: two array reads, no branches beyond the alias test.
  [[nodiscard]] std::size_t pick(double u) const {
    const double x = u * static_cast<double>(prob_.size());
    auto slot = static_cast<std::size_t>(x);
    if (slot >= prob_.size()) slot = prob_.size() - 1;  // u == 1 edge
    const double frac = x - static_cast<double>(slot);
    return frac < prob_[slot] ? slot : alias_[slot];
  }

  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

  /// Normalised probability mass of a rank (0 outside the table).
  [[nodiscard]] double pmf(std::size_t rank) const {
    return rank < pmf_.size() ? pmf_[rank] : 0.0;
  }

 private:
  std::vector<double> pmf_;           ///< normalised weights
  std::vector<double> prob_;          ///< alias acceptance thresholds
  std::vector<std::uint32_t> alias_;  ///< alias targets
};

}  // namespace albatross
