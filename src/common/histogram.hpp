// Latency and value histograms used by telemetry, the Fig. 9/11 latency
// benches and the reorder-engine statistics. A log-linear layout gives
// ~2% relative quantile error over nine decades with a fixed footprint,
// the same trade-off production HDR histograms make.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace albatross {

/// Log-linear histogram for non-negative 64-bit values (typically
/// nanoseconds). Each power-of-two decade is split into
/// `kSubBuckets` linear buckets.
class LogHistogram {
 public:
  LogHistogram();

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t count);

  /// Latency convenience: negative durations clamp to bucket zero.
  void record(Nanos ns) {
    record(ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count()));
  }

  /// Value at quantile q in [0,1]; returns an upper bucket bound.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t min() const { return total_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Fraction of recorded values strictly greater than `threshold`.
  [[nodiscard]] double fraction_above(std::uint64_t threshold) const;

  void merge(const LogHistogram& other);
  void clear();

  /// Renders "p50=..us p99=..us p999=..us max=..us" for reports.
  [[nodiscard]] std::string summary_us() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per decade
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kDecades = 40;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Welford online mean/variance accumulator; Fig. 10 reports the stddev
/// of per-core utilisation, which this computes in one pass.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace albatross
