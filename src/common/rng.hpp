// Deterministic random number generation for workload synthesis.
// All traffic generators take an explicit Rng so every benchmark and test
// is reproducible from a seed; nothing in the library reads global state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/alias.hpp"
#include "common/types.hpp"

namespace albatross {

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform duration in [0, bound), for jitter math on the strong time
  /// type without spelling the count() round-trip at every call site.
  Nanos next_below(Nanos bound) {
    return Nanos{static_cast<std::int64_t>(
        next_below(static_cast<std::uint64_t>(bound.count())))};
  }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform in [lo, hi].
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (>0). Used for
  /// Poisson packet inter-arrival times.
  double next_exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double next_gaussian(double mean, double stddev);

  /// Pareto-distributed value with scale xm and shape alpha. Heavy-tail
  /// latency jitter and flow-size skew both use this.
  double next_pareto(double xm, double alpha);

 private:
  std::uint64_t s_[4];
};

/// Precomputed Zipf(alpha) sampler over ranks [0, n). Cloud gateway flow
/// popularity is heavily skewed: a few dominant flows carry most packets
/// (the RSS overload motivation in §1), which Zipf captures.
///
/// Sampling delegates to the shared common/alias.hpp AliasSampler:
/// O(1) per draw (two array reads) instead of an O(log n) binary search
/// over the CDF — this is on the per-packet hot path of every traffic
/// generator. Exactly one uniform draw is consumed per sample, same as
/// the CDF search it replaced, so the generator's downstream random
/// stream is unaffected. The fleet layer's tenant-population generator
/// shares the same alias construction (fleet/tenant_population.hpp), so
/// flow-level and tenant-level skew never diverge numerically.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  std::size_t sample(Rng& rng) const { return alias_.pick(rng.next_double()); }

  [[nodiscard]] std::size_t size() const { return alias_.size(); }

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const { return alias_.pmf(rank); }

  /// Un-normalised Zipf rank weights 1/(rank+1)^alpha — the one shared
  /// definition of "Zipf skew" for flows and fleet tenant populations.
  [[nodiscard]] static std::vector<double> rank_weights(std::size_t n,
                                                        double alpha);

 private:
  AliasSampler alias_;
};

}  // namespace albatross
