// RecoveryController: the availability control loop the paper implies
// but never names. It subscribes to the harness's BFD and route events
// and closes the failure-handling cycle: BFD detects (§4.3) -> the BGP
// proxy withdraws the victim's VIP (Fig. 7) -> if the pod is dead, the
// Orchestrator deploys a replacement via the make-before-break scale_up
// machinery (§7, 10 s pod elasticity) -> the replacement re-announces
// and traffic cuts over. Each incident's timeline — detection latency,
// blackhole duration, packets lost, total recovery time — is recorded
// into LogHistograms exported through MetricsRegistry, so every future
// change can be scored on availability, not just Mpps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "common/histogram.hpp"

namespace albatross {

struct RecoveryConfig {
  /// Deploy a replacement pod when the victim is actually dead; off =
  /// detection/withdraw only (measure the blackhole, skip the rebuild).
  bool redeploy_on_crash = true;
};

struct IncidentRecord {
  FaultKind kind = FaultKind::kPodCrash;
  std::uint16_t gateway = 0;
  NanoTime fault_at = NanoTime{0};
  NanoTime detected_at = NanoTime{0};    ///< switch-side BFD declared down
  NanoTime withdrawn_at = NanoTime{0};   ///< VIP gone from the switch RIB
  NanoTime replacement_ready_at = NanoTime{0};  ///< 0 = no redeploy needed
  NanoTime cutover_at = NanoTime{0};     ///< old placement released (redeploys)
  NanoTime recovered_at = NanoTime{0};   ///< VIP routed again
  std::uint64_t packets_lost = 0;  ///< blackholed between fault & reroute
  bool redeployed = false;
  bool recovered = false;

  [[nodiscard]] NanoTime detect_latency() const {
    return detected_at - fault_at;
  }
  /// Traffic-to-nowhere window: fault -> routes pulled upstream.
  [[nodiscard]] NanoTime blackhole_ns() const {
    return withdrawn_at > fault_at ? withdrawn_at - fault_at : NanoTime{};
  }
  [[nodiscard]] NanoTime recovery_ns() const {
    return recovered_at > fault_at ? recovered_at - fault_at : NanoTime{};
  }
};

class RecoveryController {
 public:
  explicit RecoveryController(GatewayChaosHarness& harness,
                              RecoveryConfig cfg = {});

  /// Installs the harness callbacks. Call once, before running.
  void arm();

  [[nodiscard]] const std::vector<IncidentRecord>& incidents() const {
    return incidents_;
  }
  [[nodiscard]] std::uint64_t incidents_opened() const { return opened_; }
  [[nodiscard]] std::uint64_t incidents_recovered() const {
    return recovered_;
  }
  [[nodiscard]] std::uint64_t redeploys() const { return redeploys_; }
  [[nodiscard]] std::uint64_t packets_lost_total() const {
    return packets_lost_;
  }
  [[nodiscard]] const LogHistogram& detect_latency_hist() const {
    return detect_hist_;
  }
  [[nodiscard]] const LogHistogram& blackhole_hist() const {
    return blackhole_hist_;
  }
  [[nodiscard]] const LogHistogram& recovery_hist() const {
    return recovery_hist_;
  }

  /// Canonical text rendering of every incident (virtual-time
  /// nanoseconds), used to assert deterministic replay: same plan +
  /// same seed => byte-identical timeline.
  [[nodiscard]] std::string timeline() const;

 private:
  void on_down(std::uint16_t g, NanoTime now);
  void on_up(std::uint16_t g, NanoTime now);
  void on_routed(std::uint16_t g, bool routed, NanoTime now);
  void close_incident(std::size_t idx, NanoTime now);

  GatewayChaosHarness& harness_;
  RecoveryConfig cfg_;
  std::vector<IncidentRecord> incidents_;
  std::vector<std::ptrdiff_t> open_;  ///< per gateway: incident idx or -1
  std::uint64_t opened_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t redeploys_ = 0;
  std::uint64_t packets_lost_ = 0;
  LogHistogram detect_hist_;
  LogHistogram blackhole_hist_;
  LogHistogram recovery_hist_;
};

}  // namespace albatross
