// GatewayChaosHarness: the FaultSurface wired through the whole stack.
// It stands up a small availability zone — one Platform (FPGA NIC +
// GW pods), an Orchestrator with spare capacity, an uplink switch and
// one or two BGP proxies (Fig. 7; production runs two per server) —
// and gives every gateway the full control-plane the paper describes:
// an iBGP session to each proxy announcing its VIP, and a BFD session
// pair to the switch for sub-second liveness (§4.3).
//
// Faults land on the real objects: a pod crash blackholes Platform
// ingress and silences BFD; a link flap does the same but self-heals;
// NIC faults wedge the actual reorder queues / DMA channels; a core
// stall freezes GwPod run loops; a BFD timeout suppresses probes
// without touching the data plane (false-positive detection); a BGP
// reset exercises control/data decoupling. The RecoveryController
// drives the recovery verbs (withdraw_vip / redeploy / restore /
// finish_redeploy) that close the paper's failure-handling loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/bfd.hpp"
#include "bgp/proxy.hpp"
#include "bgp/switch_model.hpp"
#include "chaos/injector.hpp"
#include "container/orchestrator.hpp"
#include "container/pod_spec.hpp"
#include "core/platform.hpp"

namespace albatross {

/// Scaled-down tables (matching SinglePodScenario) keep runs fast.
[[nodiscard]] inline PlatformConfig chaos_platform_defaults() {
  PlatformConfig p;
  p.tenants = 200;
  p.routes = 20'000;
  return p;
}

/// Crash recovery validates the replacement for a shorter window than a
/// planned scale-up would (the paper's 30 s validation protects
/// make-before-break handovers; a dead pod has nothing to break).
[[nodiscard]] inline OrchestratorConfig chaos_orch_defaults() {
  OrchestratorConfig o;
  o.handover_validation = 5 * kSecond;
  return o;
}

struct ChaosHarnessConfig {
  std::uint16_t gateways = 2;
  ServiceKind service = ServiceKind::kVpcVpc;
  std::uint16_t data_cores = 4;
  std::uint16_t ctrl_cores = 2;
  /// Production redundancy: two proxies per server (§5).
  bool dual_proxy = true;
  std::uint16_t servers = 2;
  PlatformConfig platform = chaos_platform_defaults();
  OrchestratorConfig orch = chaos_orch_defaults();
  BfdConfig bfd;
  SwitchConfig uplink;
};

struct ChaosHarnessCounters {
  std::uint64_t gateway_down_events = 0;  ///< BFD detections at the switch
  std::uint64_t gateway_up_events = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t announces = 0;
  std::uint64_t redeploys = 0;
};

/// Replacement-deploy bookkeeping returned by redeploy(): the caller
/// (RecoveryController) schedules restore() at placement.ready_at and
/// finish_redeploy(old_orch_pod) at cutover.
struct RedeployTicket {
  Placement placement;
  NanoTime cutover = NanoTime{0};
  PodId old_orch_pod = 0;
};

class GatewayChaosHarness final : public FaultSurface {
 public:
  using GatewayFn = std::function<void(std::uint16_t, NanoTime)>;
  using RoutedFn = std::function<void(std::uint16_t, bool, NanoTime)>;

  explicit GatewayChaosHarness(ChaosHarnessConfig cfg = {});

  Platform& platform() { return *platform_; }
  EventLoop& loop() { return platform_->loop(); }
  Orchestrator& orchestrator() { return orch_; }
  UplinkSwitch& uplink() { return *uplink_; }
  BgpProxy& proxy(std::size_t i) { return *proxies_[i]; }
  [[nodiscard]] std::size_t proxy_count() const { return proxies_.size(); }
  [[nodiscard]] std::uint16_t gateway_count() const {
    return static_cast<std::uint16_t>(gateways_.size());
  }
  [[nodiscard]] const ChaosHarnessConfig& config() const { return cfg_; }
  [[nodiscard]] const ChaosHarnessCounters& counters() const {
    return counters_;
  }

  [[nodiscard]] PodId pod(std::uint16_t g) const { return gateways_[g].pod; }
  [[nodiscard]] PodId orch_pod(std::uint16_t g) const {
    return gateways_[g].orch_pod;
  }
  [[nodiscard]] const RoutePrefix& vip(std::uint16_t g) const {
    return gateways_[g].vip;
  }
  [[nodiscard]] bool alive(std::uint16_t g) const {
    return gateways_[g].alive;
  }
  /// Live query: is the gateway's VIP installed in the switch RIB via
  /// at least one proxy? (Queries rib_in directly, so it stays correct
  /// even across silent session deaths that fire no route callbacks.)
  [[nodiscard]] bool vip_routed(std::uint16_t g) const;

  [[nodiscard]] FaultKind last_fault_kind(std::uint16_t g) const {
    return gateways_[g].last_fault;
  }
  [[nodiscard]] NanoTime last_fault_at(std::uint16_t g) const {
    return gateways_[g].last_fault_at;
  }
  /// PodTelemetry::blackholed snapshot taken when the fault landed;
  /// loss for an incident is the counter delta since this mark.
  [[nodiscard]] std::uint64_t blackhole_mark(std::uint16_t g) const {
    return gateways_[g].blackhole_mark;
  }

  /// Attaches Zipf/Poisson background traffic to a gateway's pod.
  void attach_background_traffic(std::uint16_t g, double rate_pps,
                                 std::size_t flows, std::uint64_t seed = 1);

  void set_on_gateway_down(GatewayFn fn) { on_down_ = std::move(fn); }
  void set_on_gateway_up(GatewayFn fn) { on_up_ = std::move(fn); }
  void set_on_vip_routed(RoutedFn fn) { on_routed_ = std::move(fn); }

  // --- recovery verbs (driven by the RecoveryController) ---------------
  /// Withdraws the gateway's VIP through every proxy (what the proxy
  /// does on behalf of a dead pod once BFD has spoken).
  void withdraw_vip(std::uint16_t g, NanoTime now);
  void announce_vip(std::uint16_t g, NanoTime now);
  /// Deploys a replacement pod through Orchestrator::scale_up (the
  /// make-before-break machinery); the gateway's orch_pod moves to the
  /// replacement. nullopt when no server has capacity.
  std::optional<RedeployTicket> redeploy(std::uint16_t g, NanoTime now);
  /// Brings the gateway back online (replacement ready, or transient
  /// fault cleared): ingress unblackholed, BFD gates reopened.
  void restore(std::uint16_t g, NanoTime now);
  /// Releases the crashed pod's cores + VFs at cutover.
  bool finish_redeploy(PodId old_orch_pod);
  /// Kills / revives one proxy's uplink eBGP session (dual-proxy
  /// redundancy experiments).
  void crash_proxy(std::size_t i, NanoTime now);
  void restore_proxy(std::size_t i, NanoTime now);

  // --- FaultSurface -----------------------------------------------------
  void apply(const FaultEvent& e, NanoTime now) override;
  void clear(const FaultEvent& e, NanoTime now) override;

 private:
  struct Gateway {
    PodId pod = 0;       ///< Platform pod (fixed — the replacement
                         ///< container inherits the VF slice + VIP)
    PodId orch_pod = 0;  ///< current orchestrator placement
    RoutePrefix vip;
    std::vector<std::unique_ptr<BgpSession>> bgp;  ///< one per proxy
    std::unique_ptr<BfdSession> bfd_pod;  ///< pod -> switch probes
    std::unique_ptr<BfdSession> bfd_sw;   ///< switch side (detector)
    bool alive = true;
    bool link_ok = true;
    bool bfd_ok = true;
    FaultKind last_fault = FaultKind::kPodCrash;
    NanoTime last_fault_at = NanoTime{0};
    std::uint64_t blackhole_mark = 0;
    bool routed = false;  ///< last vip_routed() value (edge detection)
  };

  [[nodiscard]] PodSpec pod_spec() const;
  void wire_gateway(std::uint16_t g, NanoTime now);
  void routed_edge(std::uint16_t g, NanoTime now);

  ChaosHarnessConfig cfg_;
  std::unique_ptr<Platform> platform_;
  std::unique_ptr<UplinkSwitch> uplink_;
  std::vector<std::unique_ptr<BgpProxy>> proxies_;
  Orchestrator orch_;
  std::vector<Gateway> gateways_;
  std::map<RoutePrefix, std::uint16_t> vip_to_gw_;
  ChaosHarnessCounters counters_;
  GatewayFn on_down_;
  GatewayFn on_up_;
  RoutedFn on_routed_;
};

}  // namespace albatross
