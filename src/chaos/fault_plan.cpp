#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace albatross {

namespace {

constexpr std::string_view kKindNames[kFaultKindCount] = {
    "pod_crash",    "core_stall", "nic_reorder_stuck", "nic_dma_error",
    "link_flap",    "bgp_reset",  "bfd_timeout",       "hitter_storm",
    "dpu_core_stall", "tier_table_flush",
};

}  // namespace

std::string_view fault_kind_name(FaultKind k) {
  return kKindNames[static_cast<std::size_t>(k)];
}

FaultKind fault_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    if (kKindNames[i] == name) return static_cast<FaultKind>(i);
  }
  throw std::runtime_error("unknown fault kind: " + std::string(name));
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::from_json(const JsonValue& v) {
  FaultPlan plan;
  plan.name = v.get_string("name", "chaos");
  plan.seed = static_cast<std::uint64_t>(v.get_int("seed", 0));
  for (const auto& ev : v["events"].as_array()) {
    FaultEvent e;
    e.at = millis_to_nanos(ev.get_number("at_ms", 0.0));
    e.kind = fault_kind_from_name(ev.get_string("kind", "pod_crash"));
    e.gateway = static_cast<std::uint16_t>(ev.get_int("gateway", 0));
    e.duration = millis_to_nanos(ev.get_number("duration_ms", 0.0));
    e.magnitude = ev.get_number("magnitude", 0.0);
    plan.events.push_back(e);
  }
  plan.sort();
  return plan;
}

JsonValue FaultPlan::to_json() const {
  JsonArray evs;
  for (const auto& e : events) {
    JsonObject o;
    o["at_ms"] = JsonValue(nanos_to_millis(e.at));
    o["kind"] = JsonValue(std::string(fault_kind_name(e.kind)));
    o["gateway"] = JsonValue(static_cast<std::int64_t>(e.gateway));
    o["duration_ms"] = JsonValue(nanos_to_millis(e.duration));
    o["magnitude"] = JsonValue(e.magnitude);
    evs.emplace_back(std::move(o));
  }
  JsonObject root;
  root["name"] = JsonValue(name);
  root["seed"] = JsonValue(static_cast<std::int64_t>(seed));
  root["events"] = JsonValue(std::move(evs));
  return JsonValue(std::move(root));
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t count,
                            std::size_t gateways, NanoTime horizon,
                            NanoTime t_min) {
  FaultPlan plan;
  plan.name = "random";
  plan.seed = seed;
  Rng rng(seed);
  if (gateways == 0) gateways = 1;
  if (horizon <= t_min) horizon = t_min + kSecond;
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.at = t_min + Nanos{static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>((horizon - t_min).count())))};
    e.kind = static_cast<FaultKind>(rng.next_below(kFaultKindCount));
    e.gateway = static_cast<std::uint16_t>(rng.next_below(gateways));
    switch (e.kind) {
      case FaultKind::kPodCrash:
        e.duration = NanoTime{};  // permanent until the controller redeploys
        break;
      case FaultKind::kCoreStall:
        e.duration = rng.next_range(1, 20) * kMillisecond;
        e.magnitude = static_cast<double>(rng.next_range(1, 4));
        break;
      case FaultKind::kNicReorderStuck:
        e.duration = rng.next_range(1, 5) * kMillisecond;
        break;
      case FaultKind::kNicDmaError:
        e.duration = rng.next_range(5, 50) * kMillisecond;
        e.magnitude = static_cast<double>(rng.next_range(4, 16));
        break;
      case FaultKind::kLinkFlap:
        e.duration = rng.next_range(200, 2000) * kMillisecond;
        break;
      case FaultKind::kBgpReset:
      case FaultKind::kBfdTimeout:
        e.duration = rng.next_range(200, 1000) * kMillisecond;
        break;
      case FaultKind::kHitterStorm:
        e.duration = rng.next_range(10, 100) * kMillisecond;
        e.magnitude = 1e6 * static_cast<double>(rng.next_range(1, 4));
        break;
      case FaultKind::kDpuCoreStall:
        e.duration = rng.next_range(1, 10) * kMillisecond;
        e.magnitude = static_cast<double>(rng.next_below(8));  // core index
        break;
      case FaultKind::kTierTableFlush:
        e.duration = NanoTime{};  // instantaneous wipe
        break;
    }
    plan.events.push_back(e);
  }
  plan.sort();
  return plan;
}

}  // namespace albatross
