// Declarative chaos experiments: JSON in, incident timeline out — the
// chaos counterpart of core/config's run_experiment_from_json, and what
// `albatross_sim chaos --plan file.json` executes.
//
// Schema (everything optional; the "chaos" wrapper may be omitted):
// {
//   "chaos": {
//     "gateways": 2, "data_cores": 4, "servers": 2,
//     "dual_proxy": true, "service": "vpc|internet|idc|cloud",
//     "validation_ms": 5000,          // replacement validation window
//     "rate_mpps": 0.05, "flows": 200, "seed": 1,   // background load
//     "duration_ms": 30000,
//     "plan": {                        // scripted ...
//       "events": [ { "at_ms": 1000, "kind": "pod_crash", "gateway": 0,
//                     "duration_ms": 0, "magnitude": 0 } ]
//     }
//     // ... or seeded-random:
//     // "plan": { "random": { "seed": 7, "count": 5,
//     //                       "horizon_ms": 20000 } }
//   }
// }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chaos/recovery.hpp"

namespace albatross {

struct ChaosExperimentResult {
  std::uint16_t gateways = 0;
  NanoTime duration = NanoTime{0};
  FaultInjectorStats injected;
  ChaosHarnessCounters harness;
  std::vector<IncidentRecord> incidents;
  std::string timeline;             ///< RecoveryController::timeline()
  std::uint64_t packets_lost = 0;
  std::uint64_t blackholed_total = 0;  ///< sum over pods, whole run
  std::uint64_t delivered_total = 0;
  std::string detect_summary;       ///< LogHistogram::summary_us()
  std::string recovery_summary;
};

/// Builds the FaultPlan described by cfg["plan"] (scripted events or a
/// seeded-random generator). Throws std::runtime_error on bad kinds.
FaultPlan chaos_plan_from_json(const JsonValue& cfg, std::uint16_t gateways,
                               NanoTime horizon);

/// Parse -> harness -> controller -> inject -> run -> collect.
/// Throws std::runtime_error on parse errors.
ChaosExperimentResult run_chaos_experiment_from_json(
    std::string_view json_text);

}  // namespace albatross
