#include "chaos/harness.hpp"

#include <stdexcept>

#include "traffic/flow_gen.hpp"
#include "traffic/heavy_hitter.hpp"

namespace albatross {

GatewayChaosHarness::GatewayChaosHarness(ChaosHarnessConfig cfg)
    : cfg_(cfg), orch_(cfg.orch) {
  platform_ = std::make_unique<Platform>(cfg_.platform);
  uplink_ = std::make_unique<UplinkSwitch>(platform_->loop(), cfg_.uplink);

  const std::size_t proxies = cfg_.dual_proxy ? 2 : 1;
  for (std::size_t i = 0; i < proxies; ++i) {
    BgpProxyConfig pc;
    pc.router_id = 0x0a640001 + static_cast<std::uint32_t>(i);
    proxies_.push_back(
        std::make_unique<BgpProxy>(platform_->loop(), *uplink_, pc, NanoTime{}));
  }
  for (std::uint16_t s = 0; s < cfg_.servers; ++s) {
    orch_.add_server(ServerSpec{});
  }

  gateways_.resize(cfg_.gateways);
  for (std::uint16_t g = 0; g < cfg_.gateways; ++g) wire_gateway(g, NanoTime{});

  // Switch-side route callbacks -> per-gateway routed edge detection.
  // (UplinkSwitch leaves on_route free; the harness is the observer.)
  for (auto& proxy : proxies_) {
    BgpSession* sw = proxy->uplink_session().peer();
    sw->set_on_route(
        [this](const RoutePrefix& p, const RibEntry*, NanoTime t) {
          const auto it = vip_to_gw_.find(p);
          if (it != vip_to_gw_.end()) routed_edge(it->second, t);
        });
  }
}

PodSpec GatewayChaosHarness::pod_spec() const {
  PodSpec spec;
  spec.service = cfg_.service;
  spec.data_cores = cfg_.data_cores;
  spec.ctrl_cores = cfg_.ctrl_cores;
  return spec;
}

void GatewayChaosHarness::wire_gateway(std::uint16_t g, NanoTime now) {
  Gateway& gw = gateways_[g];

  GwPodConfig pod_cfg;
  pod_cfg.service = cfg_.service;
  pod_cfg.data_cores = cfg_.data_cores;
  pod_cfg.ctrl_cores = cfg_.ctrl_cores;
  gw.pod = platform_->create_pod(pod_cfg);

  const auto placement = orch_.deploy(pod_spec(), now);
  if (!placement) {
    throw std::runtime_error("chaos harness: no capacity for gateway " +
                             std::to_string(g));
  }
  gw.orch_pod = placement->pod;

  gw.vip = RoutePrefix{
      Ipv4Address::from_octets(10, 200, static_cast<std::uint8_t>(g), 0), 24};
  vip_to_gw_[gw.vip] = g;

  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    BgpSessionConfig sc;
    sc.asn = 64600;  // iBGP with the proxy
    sc.router_id = 0x0a0a0000 + (static_cast<std::uint32_t>(g) << 4) +
                   static_cast<std::uint32_t>(i);
    auto session = std::make_unique<BgpSession>(platform_->loop(), sc);
    proxies_[i]->attach_pod(*session, now);
    session->announce(gw.vip, gw.vip.prefix.addr, now);
    gw.bgp.push_back(std::move(session));
  }

  // BFD pair pod <-> switch. Probe delivery is gated on the gateway's
  // fault state: a dead pod or a downed link silently eats probes, and
  // bfd_ok=false models the §4.3 false positive (probes lost while the
  // data plane is fine). The switch side is the detector the recovery
  // loop listens to.
  BfdConfig bc = cfg_.bfd;
  bc.my_discriminator = static_cast<std::uint32_t>(g) * 2 + 1;
  gw.bfd_pod = std::make_unique<BfdSession>(platform_->loop(), bc);
  bc.my_discriminator = static_cast<std::uint32_t>(g) * 2 + 2;
  gw.bfd_sw = std::make_unique<BfdSession>(platform_->loop(), bc);
  gw.bfd_pod->set_tx([this, g](NanoTime t) {
    Gateway& gwr = gateways_[g];
    if (gwr.alive && gwr.link_ok && gwr.bfd_ok) gwr.bfd_sw->on_rx(t);
  });
  gw.bfd_sw->set_tx([this, g](NanoTime t) {
    Gateway& gwr = gateways_[g];
    if (gwr.link_ok) gwr.bfd_pod->on_rx(t);
  });
  gw.bfd_sw->set_on_state([this, g](BfdState s, NanoTime t) {
    if (s == BfdState::kDown) {
      ++counters_.gateway_down_events;
      if (on_down_) on_down_(g, t);
    } else {
      ++counters_.gateway_up_events;
      if (on_up_) on_up_(g, t);
    }
  });
  gw.bfd_pod->start(now);
  gw.bfd_sw->start(now);
}

bool GatewayChaosHarness::vip_routed(std::uint16_t g) const {
  const RoutePrefix& vip = gateways_[g].vip;
  for (const auto& proxy : proxies_) {
    const BgpSession* sw =
        const_cast<BgpProxy&>(*proxy).uplink_session().peer();
    if (sw != nullptr && sw->rib_in().count(vip) != 0) return true;
  }
  return false;
}

void GatewayChaosHarness::routed_edge(std::uint16_t g, NanoTime now) {
  const bool routed = vip_routed(g);
  Gateway& gw = gateways_[g];
  if (routed == gw.routed) return;
  gw.routed = routed;
  if (on_routed_) on_routed_(g, routed, now);
}

void GatewayChaosHarness::attach_background_traffic(std::uint16_t g,
                                                    double rate_pps,
                                                    std::size_t flows,
                                                    std::uint64_t seed) {
  PoissonFlowConfig bg;
  bg.num_flows = flows;
  bg.tenants = 16;
  bg.rate_pps = rate_pps;
  bg.seed = seed;
  platform_->attach_source(std::make_unique<PoissonFlowSource>(bg),
                           gateways_[g].pod);
}

void GatewayChaosHarness::withdraw_vip(std::uint16_t g, NanoTime now) {
  Gateway& gw = gateways_[g];
  for (auto& s : gw.bgp) s->withdraw(gw.vip, now);
  ++counters_.withdraws;
}

void GatewayChaosHarness::announce_vip(std::uint16_t g, NanoTime now) {
  Gateway& gw = gateways_[g];
  for (auto& s : gw.bgp) s->announce(gw.vip, gw.vip.prefix.addr, now);
  ++counters_.announces;
}

std::optional<RedeployTicket> GatewayChaosHarness::redeploy(std::uint16_t g,
                                                            NanoTime now) {
  Gateway& gw = gateways_[g];
  const auto res = orch_.scale_up(gw.orch_pod, pod_spec(), now);
  if (!res) return std::nullopt;
  RedeployTicket ticket{res->first, res->second, gw.orch_pod};
  gw.orch_pod = res->first.pod;
  ++counters_.redeploys;
  return ticket;
}

void GatewayChaosHarness::restore(std::uint16_t g, NanoTime now) {
  Gateway& gw = gateways_[g];
  gw.alive = true;
  gw.link_ok = true;
  gw.bfd_ok = true;
  platform_->set_pod_offline(gw.pod, false);
  // The replacement's control plane re-announces; BFD probes resume on
  // the next tick, so the switch declares the gateway up within one
  // tx_interval and the routed edge closes the incident.
  announce_vip(g, now);
}

bool GatewayChaosHarness::finish_redeploy(PodId old_orch_pod) {
  return orch_.remove(old_orch_pod);
}

void GatewayChaosHarness::crash_proxy(std::size_t i, NanoTime now) {
  proxies_[i]->uplink_session().stop(now);
}

void GatewayChaosHarness::restore_proxy(std::size_t i, NanoTime now) {
  proxies_[i]->uplink_session().start(now);
}

void GatewayChaosHarness::apply(const FaultEvent& e, NanoTime now) {
  Gateway& gw = gateways_[e.gateway % gateways_.size()];
  const auto g = static_cast<std::uint16_t>(e.gateway % gateways_.size());
  gw.last_fault = e.kind;
  gw.last_fault_at = now;
  gw.blackhole_mark = platform_->telemetry(gw.pod).blackholed;

  switch (e.kind) {
    case FaultKind::kPodCrash:
      gw.alive = false;
      platform_->set_pod_offline(gw.pod, true);
      break;
    case FaultKind::kCoreStall: {
      const auto n = e.magnitude >= 1.0
                         ? static_cast<std::uint16_t>(e.magnitude)
                         : std::uint16_t{1};
      for (std::uint16_t c = 0; c < n && c < cfg_.data_cores; ++c) {
        platform_->pod(gw.pod).inject_core_stall(CoreId{c}, e.duration, now);
      }
      break;
    }
    case FaultKind::kNicReorderStuck:
      platform_->nic().inject_reorder_stall(gw.pod, now + e.duration);
      break;
    case FaultKind::kNicDmaError:
      platform_->nic().inject_dma_fault(gw.pod, now + e.duration,
                                        e.magnitude > 1.0 ? e.magnitude
                                                          : 8.0);
      break;
    case FaultKind::kLinkFlap:
      gw.link_ok = false;
      platform_->set_pod_offline(gw.pod, true);
      break;
    case FaultKind::kBgpReset:
      for (auto& s : gw.bgp) s->link_failure(now);
      break;
    case FaultKind::kBfdTimeout:
      gw.bfd_ok = false;
      break;
    case FaultKind::kHitterStorm: {
      HeavyHitterConfig hh;
      hh.flow = make_flow(0xC0FFEE00ull + g, 1, g);
      hh.profile.add_step(now, e.magnitude > 0.0 ? e.magnitude : 1e6);
      hh.profile.add_step(now + e.duration, 0.0);
      platform_->attach_source(std::make_unique<HeavyHitterSource>(hh),
                               gw.pod);
      break;
    }
    case FaultKind::kDpuCoreStall:
      // Graceful no-op when the pod has no DPU tier (the injector checks).
      platform_->nic().inject_dpu_core_stall(
          gw.pod, static_cast<std::uint16_t>(e.magnitude), now + e.duration);
      break;
    case FaultKind::kTierTableFlush:
      platform_->nic().inject_tier_table_flush(gw.pod, now);
      break;
  }
}

void GatewayChaosHarness::clear(const FaultEvent& e, NanoTime now) {
  Gateway& gw = gateways_[e.gateway % gateways_.size()];
  switch (e.kind) {
    case FaultKind::kLinkFlap:
      gw.link_ok = true;
      if (gw.alive) platform_->set_pod_offline(gw.pod, false);
      break;
    case FaultKind::kBfdTimeout:
      gw.bfd_ok = true;
      break;
    default:
      // Window faults (core stall, NIC faults, hitter storm) self-clear
      // when their injected deadline passes; a crash only clears through
      // the recovery path.
      break;
  }
  (void)now;
}

}  // namespace albatross
