#include "chaos/experiment.hpp"

#include <stdexcept>

#include "core/config.hpp"

namespace albatross {

FaultPlan chaos_plan_from_json(const JsonValue& cfg, std::uint16_t gateways,
                               NanoTime horizon) {
  const JsonValue& plan_json = cfg["plan"];
  if (plan_json["random"].is_object()) {
    const JsonValue& r = plan_json["random"];
    return FaultPlan::random(
        static_cast<std::uint64_t>(r.get_int("seed", 1)),
        static_cast<std::size_t>(r.get_int("count", 5)), gateways,
        millis_to_nanos(r.get_number("horizon_ms",
                                     nanos_to_millis(horizon))));
  }
  return FaultPlan::from_json(plan_json);
}

ChaosExperimentResult run_chaos_experiment_from_json(
    std::string_view json_text) {
  JsonParseError err;
  const auto parsed = json_parse(json_text, &err);
  if (!parsed) {
    throw std::runtime_error("chaos config parse error at offset " +
                             std::to_string(err.offset) + ": " +
                             err.message);
  }
  const JsonValue& root = *parsed;
  const JsonValue& cfg = root["chaos"].is_object() ? root["chaos"] : root;

  ChaosHarnessConfig hc;
  hc.gateways = static_cast<std::uint16_t>(cfg.get_int("gateways", 2));
  hc.data_cores = static_cast<std::uint16_t>(cfg.get_int("data_cores", 4));
  hc.servers = static_cast<std::uint16_t>(cfg.get_int("servers", 2));
  hc.dual_proxy = cfg.get_bool("dual_proxy", true);
  hc.service = service_from_name(cfg.get_string("service", "vpc"));
  hc.orch.handover_validation =
      millis_to_nanos(cfg.get_number("validation_ms", 5000.0));

  const auto duration =
      millis_to_nanos(cfg.get_number("duration_ms", 30'000.0));
  const double rate_pps = cfg.get_number("rate_mpps", 0.05) * 1e6;
  const auto flows = static_cast<std::size_t>(cfg.get_int("flows", 200));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  GatewayChaosHarness harness(hc);
  for (std::uint16_t g = 0; g < harness.gateway_count(); ++g) {
    harness.attach_background_traffic(g, rate_pps, flows, seed + g);
  }

  RecoveryController controller(harness);
  controller.arm();

  FaultInjector injector(harness.loop(), harness);
  injector.schedule(chaos_plan_from_json(cfg, harness.gateway_count(),
                                         duration));

  harness.platform().run_until(duration);

  ChaosExperimentResult result;
  result.gateways = harness.gateway_count();
  result.duration = duration;
  result.injected = injector.stats();
  result.harness = harness.counters();
  result.incidents = controller.incidents();
  result.timeline = controller.timeline();
  result.packets_lost = controller.packets_lost_total();
  for (std::uint16_t g = 0; g < harness.gateway_count(); ++g) {
    const PodTelemetry& t = harness.platform().telemetry(harness.pod(g));
    result.blackholed_total += t.blackholed;
    result.delivered_total += t.delivered;
  }
  result.detect_summary = controller.detect_latency_hist().summary_us();
  result.recovery_summary = controller.recovery_hist().summary_us();
  return result;
}

}  // namespace albatross
