// FaultInjector: replays a FaultPlan on the discrete-event loop against
// any FaultSurface. The injector owns only timing — apply() fires at
// each event's `at`, clear() at `at + duration` for bounded faults —
// which keeps the scheduling logic testable with a mock surface and the
// gateway wiring (GatewayChaosHarness) free of plan mechanics.
#pragma once

#include <array>
#include <cstdint>

#include "chaos/fault_plan.hpp"
#include "sim/event_loop.hpp"

namespace albatross {

/// Something faults can be injected into. The harness implements this
/// against the full platform stack; tests implement it with mocks.
class FaultSurface {
 public:
  virtual ~FaultSurface() = default;
  virtual void apply(const FaultEvent& e, NanoTime now) = 0;
  /// Called at `at + duration` for events with a nonzero duration.
  virtual void clear(const FaultEvent& e, NanoTime now) = 0;
};

struct FaultInjectorStats {
  std::uint64_t applied = 0;
  std::uint64_t cleared = 0;
  std::array<std::uint64_t, kFaultKindCount> by_kind{};
};

class FaultInjector {
 public:
  FaultInjector(EventLoop& loop, FaultSurface& surface)
      : loop_(loop), surface_(surface) {}

  /// Schedules every event of `plan` (copied) onto the loop. May be
  /// called repeatedly to layer plans.
  void schedule(const FaultPlan& plan);

  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }

 private:
  EventLoop& loop_;
  FaultSurface& surface_;
  FaultInjectorStats stats_;
};

}  // namespace albatross
