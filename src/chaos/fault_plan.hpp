// FaultPlan: a deterministic script of fault events for the chaos
// subsystem. Every failure mode the paper's availability story touches
// is representable — GW pod crash (§7 elasticity), data-core stall,
// NIC module faults (reorder engine stuck / DMA degradation, §4.1),
// link flap, BGP session reset and BFD false positives (§4.3), and a
// heavy-hitter storm (§4.2) — as (time, kind, target, duration,
// magnitude) tuples. Plans are JSON round-trippable so chaos
// experiments live in version-controlled files, and seeded-random
// plans make fuzz-style availability sweeps reproducible: the same
// seed always yields the same incident timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace albatross {

enum class FaultKind : std::uint8_t {
  kPodCrash,        ///< gateway pod dies; traffic blackholes until reroute
  kCoreStall,       ///< data cores wedge for `duration` (lock/GC analogue)
  kNicReorderStuck, ///< FPGA reorder module frozen for `duration`
  kNicDmaError,     ///< PCIe DMA degraded `magnitude`x for `duration`
  kLinkFlap,        ///< server uplink down for `duration`
  kBgpReset,        ///< pod iBGP sessions reset; control-plane only
  kBfdTimeout,      ///< BFD probes suppressed (false positive detection)
  kHitterStorm,     ///< heavy hitter at `magnitude` pps for `duration`
  kDpuCoreStall,    ///< DPU datapath core `magnitude` wedged for `duration`
  kTierTableFlush,  ///< DPU tier session table wiped (datapath restart)
};

inline constexpr std::size_t kFaultKindCount = 10;

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);
/// Throws std::runtime_error on an unknown name.
[[nodiscard]] FaultKind fault_kind_from_name(std::string_view name);

struct FaultEvent {
  NanoTime at = NanoTime{0};          ///< injection time
  FaultKind kind = FaultKind::kPodCrash;
  std::uint16_t gateway = 0;  ///< harness gateway index
  NanoTime duration = NanoTime{0};      ///< fault window; 0 = permanent (pod crash)
  double magnitude = 0.0;     ///< kind-specific: slowdown, pps, core count
};

/// An ordered fault script. `seed` names the plan's provenance when it
/// was generated randomly (0 = hand-written) and seeds nothing at run
/// time — execution is already deterministic on the event loop.
struct FaultPlan {
  std::string name = "chaos";
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  /// Sorts events by injection time (stable: script order breaks ties).
  void sort();

  /// Parses {"name":..,"seed":..,"events":[{"at_ms":..,"kind":..,
  /// "gateway":..,"duration_ms":..,"magnitude":..}]}. Throws
  /// std::runtime_error on unknown kinds.
  static FaultPlan from_json(const JsonValue& v);
  [[nodiscard]] JsonValue to_json() const;

  /// Seeded-random plan: `count` events over [t_min, horizon) against
  /// `gateways` targets, drawn from every fault kind. Identical inputs
  /// yield an identical plan.
  static FaultPlan random(std::uint64_t seed, std::size_t count,
                          std::size_t gateways, NanoTime horizon,
                          NanoTime t_min = kSecond);
};

}  // namespace albatross
