#include "chaos/injector.hpp"

namespace albatross {

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events) {
    loop_.schedule_at(e.at, [this, e] {
      ++stats_.applied;
      ++stats_.by_kind[static_cast<std::size_t>(e.kind)];
      surface_.apply(e, loop_.now());
    });
    if (e.duration > NanoTime{}) {
      loop_.schedule_at(e.at + e.duration, [this, e] {
        ++stats_.cleared;
        surface_.clear(e, loop_.now());
      });
    }
  }
}

}  // namespace albatross
