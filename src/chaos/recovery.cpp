#include "chaos/recovery.hpp"

#include <sstream>

namespace albatross {

RecoveryController::RecoveryController(GatewayChaosHarness& harness,
                                       RecoveryConfig cfg)
    : harness_(harness), cfg_(cfg) {
  open_.assign(harness_.gateway_count(), -1);
}

void RecoveryController::arm() {
  harness_.set_on_gateway_down(
      [this](std::uint16_t g, NanoTime t) { on_down(g, t); });
  harness_.set_on_gateway_up(
      [this](std::uint16_t g, NanoTime t) { on_up(g, t); });
  harness_.set_on_vip_routed(
      [this](std::uint16_t g, bool routed, NanoTime t) {
        on_routed(g, routed, t);
      });
}

void RecoveryController::on_down(std::uint16_t g, NanoTime now) {
  if (open_[g] >= 0) return;  // already mid-recovery for this gateway

  IncidentRecord rec;
  rec.kind = harness_.last_fault_kind(g);
  rec.gateway = g;
  rec.fault_at = harness_.last_fault_at(g);
  rec.detected_at = now;
  open_[g] = static_cast<std::ptrdiff_t>(incidents_.size());
  incidents_.push_back(rec);
  ++opened_;

  // Step 1 — stop the bleeding: pull the VIP through every proxy so
  // upstream reroutes to healthy gateways.
  harness_.withdraw_vip(g, now);
  if (!harness_.vip_routed(g)) {
    // Nothing to converge away from (the VIP was never installed, or a
    // prior withdrawal already took it out): the withdraw is trivially
    // confirmed now. The in-flight-UPDATE case keeps rib_in populated
    // at this instant, so it still resolves through the routed edge.
    IncidentRecord& inc = incidents_[static_cast<std::size_t>(open_[g])];
    inc.withdrawn_at = now;
    inc.packets_lost =
        harness_.platform().telemetry(harness_.pod(g)).blackholed -
        harness_.blackhole_mark(g);
    packets_lost_ += inc.packets_lost;
  }

  // Step 2 — if the pod is actually dead, rebuild it. Transient faults
  // (link flap, BFD false positive) recover on their own via on_up.
  if (!harness_.alive(g) && cfg_.redeploy_on_crash) {
    const auto ticket = harness_.redeploy(g, now);
    if (ticket) {
      const std::size_t idx = static_cast<std::size_t>(open_[g]);
      incidents_[idx].redeployed = true;
      incidents_[idx].replacement_ready_at = ticket->placement.ready_at;
      incidents_[idx].cutover_at = ticket->cutover;
      ++redeploys_;
      EventLoop& loop = harness_.loop();
      loop.schedule_at(ticket->placement.ready_at, [this, g] {
        harness_.restore(g, harness_.loop().now());
      });
      loop.schedule_at(ticket->cutover, [this, old = ticket->old_orch_pod] {
        harness_.finish_redeploy(old);
      });
    }
  }
}

void RecoveryController::on_up(std::uint16_t g, NanoTime now) {
  if (open_[g] < 0) return;
  // BFD sees the gateway again (flap ended, false positive cleared, or
  // the replacement booted). Put its VIP back; the routed edge closes
  // the incident.
  harness_.announce_vip(g, now);
}

void RecoveryController::on_routed(std::uint16_t g, bool routed,
                                   NanoTime now) {
  if (open_[g] < 0) return;
  const std::size_t idx = static_cast<std::size_t>(open_[g]);
  IncidentRecord& rec = incidents_[idx];
  if (!routed) {
    if (rec.withdrawn_at == NanoTime{}) {
      rec.withdrawn_at = now;
      // Loss stops accruing once upstream reroutes: the blackholed
      // counter delta over [fault, withdraw] is the incident's loss.
      rec.packets_lost =
          harness_.platform().telemetry(harness_.pod(g)).blackholed -
          harness_.blackhole_mark(g);
      packets_lost_ += rec.packets_lost;
    }
    return;
  }
  if (rec.withdrawn_at != NanoTime{}) close_incident(idx, now);
}

void RecoveryController::close_incident(std::size_t idx, NanoTime now) {
  IncidentRecord& rec = incidents_[idx];
  rec.recovered_at = now;
  rec.recovered = true;
  open_[rec.gateway] = -1;
  ++recovered_;
  detect_hist_.record(rec.detect_latency());
  blackhole_hist_.record(rec.blackhole_ns());
  recovery_hist_.record(rec.recovery_ns());
}

std::string RecoveryController::timeline() const {
  std::ostringstream os;
  for (const auto& r : incidents_) {
    os << fault_kind_name(r.kind) << " g" << r.gateway
       << " fault=" << r.fault_at.count() << " detect=" << r.detected_at.count()
       << " withdrawn=" << r.withdrawn_at.count()
       << " ready=" << r.replacement_ready_at.count()
       << " recovered=" << r.recovered_at.count() << " lost=" << r.packets_lost
       << (r.recovered ? "" : " OPEN") << '\n';
  }
  return os.str();
}

}  // namespace albatross
