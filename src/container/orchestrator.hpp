// ACK-lite orchestrator: schedules GW pods onto Albatross servers.
// Captures the containerization properties the paper leans on: NUMA-
// aware bin packing (pods never straddle nodes, §7), SR-IOV VF budgets,
// and 10-second pod elasticity (vs tens of days for a physical cluster,
// Tab. 6) including the make-before-break BGP handover (§7).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "container/pod_spec.hpp"
#include "nic/sriov.hpp"
#include "sim/event_loop.hpp"
#include "sim/numa.hpp"

namespace albatross {

struct ServerSpec {
  NumaConfig numa;                 ///< 2 x 48 cores by default
  SriovConfig sriov;
};

struct Placement {
  std::uint16_t server = 0;
  PodId pod = 0;
  NumaNodeId numa_node{};
  CoreId first_core{};             ///< node-local core offset
  std::uint16_t cores = 0;         ///< cores charged to the node
  NanoTime ready_at = NanoTime{0};           ///< deploy time + pod startup
  PodVfSet vfs;
};

struct OrchestratorConfig {
  /// Container image pull + pod start + table download (the "10
  /// seconds" elasticity headline).
  NanoTime pod_startup = 10 * kSecond;
  /// Make-before-break: new pod must advertise + validate before the
  /// old pod withdraws (§7 suggests ~30s of validation).
  NanoTime handover_validation = 30 * kSecond;
};

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorConfig cfg = {});

  std::uint16_t add_server(const ServerSpec& spec);

  /// Schedules a pod; returns its placement (ready_at in the future) or
  /// nullopt when no server has a NUMA node with enough cores + VFs.
  std::optional<Placement> deploy(const PodSpec& spec, NanoTime now);

  bool remove(PodId pod);

  /// Scale-out helper (§7 "leveraging container elasticity"): deploys a
  /// replacement pod with more cores; returns (placement, traffic
  /// cutover time = ready_at + validation).
  std::optional<std::pair<Placement, NanoTime>> scale_up(
      PodId old_pod, const PodSpec& bigger, NanoTime now);

  [[nodiscard]] const std::vector<Placement>& placements() const {
    return placements_;
  }
  /// Placement of a live pod, or nullptr once removed.
  [[nodiscard]] const Placement* placement(PodId pod) const;
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }

  /// Fraction of data cores allocated across all servers.
  [[nodiscard]] double core_utilization() const;

 private:
  struct Server {
    ServerSpec spec;
    SriovManager sriov;
    std::vector<std::uint16_t> cores_used;  // per NUMA node
    explicit Server(const ServerSpec& s)
        : spec(s), sriov(s.sriov),
          cores_used(s.numa.nodes, 0) {}
  };

  OrchestratorConfig cfg_;
  std::vector<Server> servers_;
  std::vector<Placement> placements_;
  PodId next_pod_id_ = 0;
};

}  // namespace albatross
