// GW pod specification — what the ACK-style orchestrator deploys.
// Encodes the paper's sizing rules: reorder queues proportional to data
// cores (a 40-core pod gets twice the queues of a 20-core pod, §4.1),
// 4 VFs per pod, intra-NUMA placement.
#pragma once

#include <cstdint>
#include <string>

#include "gateway/service.hpp"
#include "nic/nic_pipeline.hpp"

namespace albatross {

struct PodSpec {
  std::string name = "gw";
  ServiceKind service = ServiceKind::kVpcVpc;
  std::uint16_t data_cores = 8;
  std::uint16_t ctrl_cores = 2;
  LbMode mode = LbMode::kPlb;
  /// 0 = derive from cores via reorder_queues_for_cores().
  std::uint16_t reorder_queues = 0;
  bool drop_flag_enabled = true;
  bool header_split = false;
  /// Optional preferred NUMA node; 0xffff = any.
  std::uint16_t numa_preference = 0xffff;

  [[nodiscard]] std::uint16_t total_cores() const {
    return static_cast<std::uint16_t>(data_cores + ctrl_cores);
  }
};

/// Pods get 1-8 order-preserving queues, proportional to data cores so
/// each queue serves a similar core count (~12 cores/queue at the
/// production 44-core = 4-queue operating point).
[[nodiscard]] std::uint16_t reorder_queues_for_cores(std::uint16_t data_cores);

/// Eight gateway cluster roles an availability zone needs (Fig. 15).
enum class GatewayRole : std::uint8_t {
  kXgw, kIgw, kVgw, kSlb, kNatgw, kPcgw, kCsgw, kDcgw,
};
[[nodiscard]] std::string_view gateway_role_name(GatewayRole r);

}  // namespace albatross
