#include "container/orchestrator.hpp"

#include <algorithm>

namespace albatross {

Orchestrator::Orchestrator(OrchestratorConfig cfg) : cfg_(cfg) {}

std::uint16_t Orchestrator::add_server(const ServerSpec& spec) {
  servers_.emplace_back(spec);
  return static_cast<std::uint16_t>(servers_.size() - 1);
}

std::optional<Placement> Orchestrator::deploy(const PodSpec& spec,
                                              NanoTime now) {
  for (std::uint16_t si = 0; si < servers_.size(); ++si) {
    Server& server = servers_[si];
    for (std::uint16_t node = 0; node < server.spec.numa.nodes; ++node) {
      if (spec.numa_preference != 0xffff && spec.numa_preference != node) {
        continue;
      }
      const std::uint16_t free =
          static_cast<std::uint16_t>(server.spec.numa.cores_per_node -
                                     server.cores_used[node]);
      if (free < spec.total_cores()) continue;
      auto vfs =
          server.sriov.allocate(next_pod_id_, NumaNodeId{node}, spec.data_cores);
      if (!vfs) continue;

      Placement p;
      p.server = si;
      p.pod = next_pod_id_++;
      p.numa_node = NumaNodeId{node};
      p.first_core = CoreId{server.cores_used[node]};
      p.cores = spec.total_cores();
      p.ready_at = now + cfg_.pod_startup;
      p.vfs = *vfs;
      server.cores_used[node] =
          static_cast<std::uint16_t>(server.cores_used[node] +
                                     spec.total_cores());
      placements_.push_back(p);
      return p;
    }
  }
  return std::nullopt;
}

bool Orchestrator::remove(PodId pod) {
  const auto it =
      std::find_if(placements_.begin(), placements_.end(),
                   [pod](const Placement& p) { return p.pod == pod; });
  if (it == placements_.end()) return false;
  // Return the pod's cores to its NUMA node and its VFs to the NIC so a
  // replacement can land on the same server (fragmentation within a node
  // is still not modelled; production compacts by rescheduling).
  Server& server = servers_[it->server];
  server.cores_used[it->numa_node.index()] = static_cast<std::uint16_t>(
      server.cores_used[it->numa_node.index()] - it->cores);
  server.sriov.release(pod);
  placements_.erase(it);
  return true;
}

const Placement* Orchestrator::placement(PodId pod) const {
  const auto it =
      std::find_if(placements_.begin(), placements_.end(),
                   [pod](const Placement& p) { return p.pod == pod; });
  return it != placements_.end() ? &*it : nullptr;
}

std::optional<std::pair<Placement, NanoTime>> Orchestrator::scale_up(
    PodId old_pod, const PodSpec& bigger, NanoTime now) {
  auto placement = deploy(bigger, now);
  if (!placement) return std::nullopt;
  // Make-before-break: traffic cuts over only after the new pod has
  // advertised BGP routes and validated forwarding for a while; the old
  // pod withdraws afterwards.
  const NanoTime cutover = placement->ready_at + cfg_.handover_validation;
  (void)old_pod;  // the old pod is removed by the caller at cutover
  return std::make_pair(*placement, cutover);
}

double Orchestrator::core_utilization() const {
  double used = 0.0, total = 0.0;
  for (const auto& s : servers_) {
    for (std::uint16_t node = 0; node < s.spec.numa.nodes; ++node) {
      used += s.cores_used[node];
      total += s.spec.numa.cores_per_node;
    }
  }
  return total > 0.0 ? used / total : 0.0;
}

}  // namespace albatross
