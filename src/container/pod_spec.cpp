#include "container/pod_spec.hpp"

namespace albatross {

std::uint16_t reorder_queues_for_cores(std::uint16_t data_cores) {
  // ~12 data cores per order-preserving queue, clamped to [1, 8].
  std::uint16_t q = static_cast<std::uint16_t>((data_cores + 11) / 12);
  if (q < 1) q = 1;
  if (q > 8) q = 8;
  return q;
}

std::string_view gateway_role_name(GatewayRole r) {
  switch (r) {
    case GatewayRole::kXgw: return "XGW";
    case GatewayRole::kIgw: return "IGW";
    case GatewayRole::kVgw: return "VGW";
    case GatewayRole::kSlb: return "SLB";
    case GatewayRole::kNatgw: return "NATGW";
    case GatewayRole::kPcgw: return "PCGW";
    case GatewayRole::kCsgw: return "CSGW";
    case GatewayRole::kDcgw: return "DCGW";
  }
  return "?";
}

}  // namespace albatross
