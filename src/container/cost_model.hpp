// Availability-zone construction cost model (Fig. 15, Tab. 6 cost
// columns). An AZ needs 8 gateway cluster roles x 4 gateways each. The
// 1st/2nd-gen form deploys 32 physical boxes; Albatross consolidates
// them as GW pods at `pods_per_server`, cutting server count 4x and —
// despite the 2x unit cost — total cost by ~50% and power by ~40%.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace albatross {

struct GenerationCost {
  std::string name;
  double unit_cost = 1.0;     ///< normalised to a gen-1/2 gateway = 1
  double unit_power_w = 500;  ///< per device
};

struct AzRequirements {
  std::uint32_t cluster_roles = 8;
  std::uint32_t gateways_per_cluster = 4;
  /// Legacy AZ gateway mix: 3 roles on gen-1 x86, 5 roles on gen-2
  /// Tofino (the paper's power arithmetic).
  std::uint32_t gen1_roles = 3;
  std::uint32_t gen2_roles = 5;
  /// Pod-set multiplier: how many copies of the full role sheet the AZ
  /// (or fleet slice) deploys. The paper's Fig. 15 is a single pod set;
  /// the fleet bench and the SLO report sweep this so both go through
  /// one cost/power accounting path.
  std::uint32_t pod_sets = 1;
};

struct AzCostReport {
  std::string deployment;
  std::uint32_t devices = 0;
  double total_cost = 0.0;
  double total_power_w = 0.0;
};

class AzCostModel {
 public:
  AzCostModel();

  [[nodiscard]] const GenerationCost& gen1() const { return gen1_; }
  [[nodiscard]] const GenerationCost& gen2() const { return gen2_; }
  [[nodiscard]] const GenerationCost& gen3() const { return gen3_; }

  /// Legacy physical deployment (32 gateways, gen-1/gen-2 mix).
  [[nodiscard]] AzCostReport legacy_az(const AzRequirements& req = {}) const;

  /// Albatross containerized deployment of the same 32 gateway roles.
  [[nodiscard]] AzCostReport albatross_az(const AzRequirements& req = {},
                                          std::uint32_t pods_per_server = 4)
      const;

 private:
  GenerationCost gen1_{"gen1-x86", 1.0, 500.0};
  GenerationCost gen2_{"gen2-tofino", 1.0, 300.0};
  GenerationCost gen3_{"gen3-albatross", 2.0, 900.0};
};

}  // namespace albatross
