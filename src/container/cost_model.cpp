#include "container/cost_model.hpp"

namespace albatross {

AzCostModel::AzCostModel() = default;

AzCostReport AzCostModel::legacy_az(const AzRequirements& req) const {
  AzCostReport r;
  r.deployment = "legacy (physical, gen1+gen2)";
  const std::uint32_t sets = req.pod_sets == 0 ? 1 : req.pod_sets;
  const std::uint32_t gen1_devices =
      req.gen1_roles * req.gateways_per_cluster * sets;
  const std::uint32_t gen2_devices =
      req.gen2_roles * req.gateways_per_cluster * sets;
  r.devices = gen1_devices + gen2_devices;
  r.total_cost = gen1_devices * gen1_.unit_cost +
                 gen2_devices * gen2_.unit_cost;
  r.total_power_w = gen1_devices * gen1_.unit_power_w +
                    gen2_devices * gen2_.unit_power_w;
  return r;
}

AzCostReport AzCostModel::albatross_az(const AzRequirements& req,
                                       std::uint32_t pods_per_server) const {
  AzCostReport r;
  r.deployment = "albatross (containerized)";
  const std::uint32_t sets = req.pod_sets == 0 ? 1 : req.pod_sets;
  const std::uint32_t gateways =
      req.cluster_roles * req.gateways_per_cluster * sets;
  r.devices = (gateways + pods_per_server - 1) / pods_per_server;
  r.total_cost = r.devices * gen3_.unit_cost;
  r.total_power_w = r.devices * gen3_.unit_power_w;
  return r;
}

}  // namespace albatross
