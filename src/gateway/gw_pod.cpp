#include "gateway/gw_pod.hpp"

#include "nic/nic_pipeline.hpp"  // kPriorityQueue

namespace albatross {

GwPod::GwPod(const GwPodConfig& cfg, EventLoop& loop, ServiceTables& tables,
             CacheModel& cache)
    : cfg_(cfg), loop_(loop), rng_(cfg.seed) {
  service_ = make_service(cfg_.service, tables, cache, cfg_.numa_node,
                          cfg_.faults);
  cores_.reserve(cfg_.data_cores);
  for (std::uint16_t c = 0; c < cfg_.data_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(cfg_.rx_ring_capacity));
  }
  NumaBalancer::Config bal;
  bal.enabled = cfg_.numa_balancing;
  bal.scan_period = cfg_.numa_balancing_scan_period;
  balancer_ = NumaBalancer(bal);
}

void GwPod::deliver(PacketPtr pkt, std::uint16_t rx_queue, NanoTime now) {
  if (rx_queue == kPriorityQueue) {
    ++stats_.protocol_packets;
    if (protocol_) protocol_(std::move(pkt), now);
    return;
  }
  Core& core = *cores_[rx_queue % cores_.size()];
  const auto core_id =
      CoreId{static_cast<std::uint16_t>(rx_queue % cores_.size())};
  if (probe_ != nullptr) probe_->on_data_rx(cfg_.id, core_id, now);
  if (!core.ring.push(std::move(pkt))) {
    // RX descriptor overflow: one of the CPU-side loss sources that
    // strands reorder-FIFO entries (the packet never comes back).
    ++stats_.dropped_ring;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kRing, now);
    }
    return;
  }
  if (!core.busy) start_core(core_id, now);
}

void GwPod::start_core(CoreId core_id, NanoTime now) {
  Core& core = *cores_[core_id.index()];
  PacketPtr pkt = core.ring.pop();
  if (pkt == nullptr) {
    core.busy = false;
    return;
  }
  core.busy = true;
  // Smoothed load estimate (drives the numa_balancing stall model):
  // queue depth is the congestion signal a run loop actually sees.
  recent_load_ =
      0.95 * recent_load_ +
      0.05 * std::min(1.0, static_cast<double>(core.ring.size()) / 4.0);

  // A packet carrying a PLB meta trailer was sprayed; one without it
  // (RSS mode or a pinned class) is flow-affine on this core, which is
  // what earns the small private-cache bonus in the cache model.
  PlbMeta probe;
  const bool sprayed = pkt->peek_plb_meta(probe);

  ServiceOutcome outcome =
      service_->process(*pkt, core_id, !sprayed, now, rng_);
  outcome.cpu_ns += balancer_.maybe_stall(now, recent_load_);
  if (now < core.stall_until) outcome.cpu_ns += core.stall_until - now;

  const NanoTime done = now + outcome.cpu_ns;
  core.busy_ns += outcome.cpu_ns;
  service_hist_.record(outcome.cpu_ns);

  // Move the packet into the event closure; completion emits and then
  // pulls the next packet from the ring.
  Packet* raw = pkt.release();
  loop_.schedule_at(done, [this, core_id, raw, outcome, done] {
    finish_packet(core_id, PacketPtr(raw), outcome, done);
  });
}

void GwPod::finish_packet(CoreId core_id, PacketPtr pkt,
                          ServiceOutcome outcome, NanoTime done) {
  Core& core = *cores_[core_id.index()];
  ++core.processed;
  ++stats_.processed;

  // Protocol packets that arrived via the DATA path (priority queues
  // disabled — the §4.3 ablation) are consumed locally after surviving
  // the run loop: hand them to the ctrl plane and release their reorder
  // resources with a drop notification so the FIFO doesn't stall.
  const bool local_protocol =
      (pkt->tuple.proto == IpProto::kUdp &&
       pkt->tuple.dst_port == kBfdPort) ||
      (pkt->tuple.proto == IpProto::kTcp &&
       (pkt->tuple.dst_port == kBgpPort || pkt->tuple.src_port == kBgpPort));
  if (outcome.action == ServiceAction::kForward && local_protocol) {
    ++stats_.protocol_packets;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kProtocol, done);
    }
    PlbMeta rel_meta;
    if (pkt->strip_plb_meta(rel_meta) && cfg_.drop_flag_enabled && egress_) {
      auto release = Packet::make_synthetic(pkt->tuple, pkt->vni, 64);
      rel_meta.drop = true;
      release->attach_plb_meta(rel_meta);
      ++stats_.drop_flags_sent;
      egress_(std::move(release), done);
    }
    if (protocol_) protocol_(std::move(pkt), done);
    if (!core.ring.empty()) {
      start_core(core_id, done);
    } else {
      core.busy = false;
    }
    return;
  }

  if (outcome.action == ServiceAction::kDrop) {
    ++stats_.dropped_service;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kService, done);
    }
    PlbMeta meta;
    if (cfg_.drop_flag_enabled && pkt->peek_plb_meta(meta)) {
      // Active drop flag (Fig. 12): notify the NIC so it releases the
      // reorder resources instead of waiting out the 100us timeout.
      meta.drop = true;
      pkt->update_plb_meta(meta);
      ++stats_.drop_flags_sent;
      if (egress_) egress_(std::move(pkt), done);
    }
    // Without the flag (or for RSS packets) the drop is silent.
  } else {
    ++stats_.forwarded;
    if (probe_ != nullptr) probe_->on_forward(cfg_.id, core_id, done);
    if (egress_) egress_(std::move(pkt), done);
  }

  // Continue with the next queued packet, if any.
  if (!core.ring.empty()) {
    start_core(core_id, done);
  } else {
    core.busy = false;
  }
}

NanoTime GwPod::core_busy_ns(CoreId core) const {
  return cores_[core.index() % cores_.size()]->busy_ns;
}

std::uint64_t GwPod::core_processed(CoreId core) const {
  return cores_[core.index() % cores_.size()]->processed;
}

std::uint64_t GwPod::core_ring_drops(CoreId core) const {
  return cores_[core.index() % cores_.size()]->ring.stats().drops;
}

void GwPod::inject_core_stall(CoreId core, NanoTime duration, NanoTime now) {
  Core& c = *cores_[core.index() % cores_.size()];
  const NanoTime until = now + duration;
  if (until > c.stall_until) c.stall_until = until;
  ++core_stalls_;
}

}  // namespace albatross
