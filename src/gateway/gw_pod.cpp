#include "gateway/gw_pod.hpp"

#include <algorithm>
#include <span>

#include "nic/nic_pipeline.hpp"  // kPriorityQueue

namespace albatross {

GwPod::GwPod(const GwPodConfig& cfg, EventLoop& loop, ServiceTables& tables,
             CacheModel& cache)
    : cfg_(cfg), loop_(loop), rng_(cfg.seed) {
  service_ = make_service(cfg_.service, tables, cache, cfg_.numa_node,
                          cfg_.faults);
  cores_.reserve(cfg_.data_cores);
  for (std::uint16_t c = 0; c < cfg_.data_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(cfg_.rx_ring_capacity));
  }
  NumaBalancer::Config bal;
  bal.enabled = cfg_.numa_balancing;
  bal.scan_period = cfg_.numa_balancing_scan_period;
  balancer_ = NumaBalancer(bal);
}

void GwPod::deliver(PacketPtr pkt, std::uint16_t rx_queue, NanoTime now) {
  if (rx_queue == kPriorityQueue) {
    ++stats_.protocol_packets;
    if (protocol_) protocol_(std::move(pkt), now);
    return;
  }
  Core& core = *cores_[rx_queue % cores_.size()];
  const auto core_id =
      CoreId{static_cast<std::uint16_t>(rx_queue % cores_.size())};
  if (probe_ != nullptr) probe_->on_data_rx(cfg_.id, core_id, now);
  // Flow identity survives the push: on kFull the ring consumes (and
  // frees) the packet, but the drop hook still needs to know whose
  // packet died.
  const FiveTuple drop_tuple = pkt->tuple;
  const PktClass drop_class = pkt->pkt_class;
  if (core.ring.push(std::move(pkt)) != PushResult::kOk) {
    // RX descriptor overflow: one of the CPU-side loss sources that
    // strands reorder-FIFO entries (the packet never comes back).
    ++stats_.dropped_ring;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kRing, now);
    }
    if (drop_hook_) drop_hook_(drop_tuple, drop_class, now);
    return;
  }
  if (!core.busy) start_core(core_id, now);
}

std::uint64_t GwPod::packet_rng_seed(const Packet& pkt) const {
  // splitmix64 over (pod seed, flow, sequence, arrival): distinct
  // packets get decorrelated service-rng streams, and re-deriving the
  // seed for the same packet always lands on the same stream.
  std::uint64_t h = cfg_.seed;
  const auto mix = [&h](std::uint64_t v) {
    h += 0x9e3779b97f4a7c15ull + v;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
  };
  mix(pkt.flow_id);
  mix(pkt.seq_in_flow);
  mix(static_cast<std::uint64_t>(pkt.rx_time.count()));
  return h != 0 ? h : 1;  // 0 means "use the shared rng" in the lane protocol
}

void GwPod::start_core(CoreId core_id, NanoTime now) {
  Core& core = *cores_[core_id.index()];
  const std::size_t want = std::clamp<std::size_t>(
      cfg_.rx_burst, 1, PacketBurst::kMaxBurst);
  const std::size_t n =
      core.ring.pop_burst(std::span(core.burst.pkts.data(), want));
  if (n == 0) {
    core.busy = false;
    return;
  }
  core.busy = true;
  // Packets past the first stay charged against the ring as held
  // descriptor credits until their service slot starts, so producers
  // see the same occupancy timeline a one-at-a-time drain produces.
  core.ring.hold(n - 1);
  core.burst.count = n;
  for (std::size_t i = 0; i < n; ++i) {
    // A packet carrying a PLB meta trailer was sprayed; one without it
    // (RSS mode or a pinned class) is flow-affine on this core, which
    // is what earns the small private-cache bonus in the cache model.
    core.burst.flow_affine[i] = !core.burst.pkts[i]->has_plb_meta();
    core.burst.rng_seed[i] = packet_rng_seed(*core.burst.pkts[i]);
  }
  service_->process_burst(core.burst, core_id, /*flow_affine=*/false, now,
                          rng_);
  core.burst_next = 0;
  dispatch_next(core_id, now);
}

void GwPod::dispatch_next(CoreId core_id, NanoTime now) {
  Core& core = *cores_[core_id.index()];
  // Smoothed load estimate (drives the numa_balancing stall model):
  // queue depth — including burst-held descriptors — is the congestion
  // signal a run loop actually sees.
  recent_load_ =
      0.95 * recent_load_ +
      0.05 * std::min(1.0, static_cast<double>(core.ring.size() +
                                               core.ring.held()) /
                               4.0);
  ServiceOutcome& outcome = core.burst.outcomes[core.burst_next];
  outcome.cpu_ns += balancer_.maybe_stall(now, recent_load_);
  if (now < core.stall_until) outcome.cpu_ns += core.stall_until - now;

  const NanoTime done = now + outcome.cpu_ns;
  core.busy_ns += outcome.cpu_ns;
  service_hist_.record(outcome.cpu_ns);
  core.next_done = done;
  loop_.schedule_at(done, [this, core_id] { emit_next(core_id); });
}

void GwPod::emit_next(CoreId core_id) {
  Core& core = *cores_[core_id.index()];
  const NanoTime done = core.next_done;
  const std::size_t i = core.burst_next;
  emit_packet(core_id, std::move(core.burst.pkts[i]),
              core.burst.outcomes[i], done);
  ++core.burst_next;
  if (core.burst_next < core.burst.count) {
    // The next packet's descriptor is recycled exactly when its service
    // slot begins — the same instant a scalar drain would pop it.
    core.ring.release_hold(1);
    dispatch_next(core_id, done);
    return;
  }
  core.burst.count = 0;
  if (!core.ring.empty()) {
    start_core(core_id, done);
  } else {
    core.busy = false;
  }
}

void GwPod::emit_packet(CoreId core_id, PacketPtr pkt,
                        ServiceOutcome outcome, NanoTime done) {
  Core& core = *cores_[core_id.index()];
  ++core.processed;
  ++stats_.processed;

  // Protocol packets that arrived via the DATA path (priority queues
  // disabled — the §4.3 ablation) are consumed locally after surviving
  // the run loop: hand them to the ctrl plane and release their reorder
  // resources with a drop notification so the FIFO doesn't stall.
  const bool local_protocol =
      (pkt->tuple.proto == IpProto::kUdp &&
       pkt->tuple.dst_port == kBfdPort) ||
      (pkt->tuple.proto == IpProto::kTcp &&
       (pkt->tuple.dst_port == kBgpPort || pkt->tuple.src_port == kBgpPort));
  if (outcome.action == ServiceAction::kForward && local_protocol) {
    ++stats_.protocol_packets;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kProtocol, done);
    }
    PlbMeta rel_meta;
    if (pkt->strip_plb_meta(rel_meta) && cfg_.drop_flag_enabled && egress_) {
      auto release = Packet::make_synthetic(pkt->tuple, pkt->vni, 64);
      rel_meta.drop = true;
      release->attach_plb_meta(rel_meta);
      ++stats_.drop_flags_sent;
      egress_(std::move(release), done);
    }
    if (protocol_) protocol_(std::move(pkt), done);
    return;
  }

  if (outcome.action == ServiceAction::kDrop) {
    ++stats_.dropped_service;
    if (probe_ != nullptr) {
      probe_->on_drop(cfg_.id, core_id, PodDropKind::kService, done);
    }
    if (drop_hook_) drop_hook_(pkt->tuple, pkt->pkt_class, done);
    PlbMeta meta;
    if (cfg_.drop_flag_enabled && pkt->has_plb_meta() &&
        pkt->peek_plb_meta(meta)) {
      // Active drop flag (Fig. 12): notify the NIC so it releases the
      // reorder resources instead of waiting out the 100us timeout.
      meta.drop = true;
      pkt->update_plb_meta(meta);
      ++stats_.drop_flags_sent;
      if (egress_) egress_(std::move(pkt), done);
    }
    // Without the flag (or for RSS packets) the drop is silent.
  } else {
    ++stats_.forwarded;
    if (probe_ != nullptr) probe_->on_forward(cfg_.id, core_id, done);
    if (egress_) egress_(std::move(pkt), done);
  }
}

NanoTime GwPod::core_busy_ns(CoreId core) const {
  return cores_[core.index() % cores_.size()]->busy_ns;
}

std::uint64_t GwPod::core_processed(CoreId core) const {
  return cores_[core.index() % cores_.size()]->processed;
}

std::uint64_t GwPod::core_ring_drops(CoreId core) const {
  return cores_[core.index() % cores_.size()]->ring.stats().drops;
}

void GwPod::inject_core_stall(CoreId core, NanoTime duration, NanoTime now) {
  Core& c = *cores_[core.index() % cores_.size()];
  const NanoTime until = now + duration;
  if (until > c.stall_until) c.stall_until = until;
  ++core_stalls_;
}

}  // namespace albatross
