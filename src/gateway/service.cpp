#include "gateway/service.hpp"

namespace albatross {

void Service::process_burst(PacketBurst& burst, CoreId core, bool flow_affine,
                            NanoTime now, Rng& rng) {
  for (std::size_t i = 0; i < burst.count; ++i) {
    const bool affine = burst.flow_affine[i] || flow_affine;
    if (burst.rng_seed[i] != 0) {
      Rng pkt_rng(burst.rng_seed[i]);
      burst.outcomes[i] = process(*burst.pkts[i], core, affine, now, pkt_rng);
    } else {
      burst.outcomes[i] = process(*burst.pkts[i], core, affine, now, rng);
    }
  }
}

std::string_view service_name(ServiceKind k) {
  switch (k) {
    case ServiceKind::kVpcVpc:
      return "VPC-VPC";
    case ServiceKind::kVpcInternet:
      return "VPC-Internet";
    case ServiceKind::kVpcIdc:
      return "VPC-IDC";
    case ServiceKind::kVpcCloudService:
      return "VPC-CloudService";
  }
  return "unknown";
}

ServiceProfile service_profile(ServiceKind k) {
  // Calibration: with the default cache model (~35% L3 hit) a memory
  // access averages ~66 ns, so cost ~= base + accesses * 66. Targets are
  // Tab. 3 per-core rates on 88 data cores:
  //   VPC-VPC          128.8 Mpps -> ~683 ns/pkt
  //   VPC-Internet      81.6 Mpps -> ~1078 ns/pkt (longer code + tables)
  //   VPC-IDC          119.4 Mpps -> ~737 ns/pkt
  //   VPC-CloudService 126.3 Mpps -> ~697 ns/pkt
  switch (k) {
    case ServiceKind::kVpcVpc:
      return ServiceProfile{Nanos{290}, 6};
    case ServiceKind::kVpcInternet:
      return ServiceProfile{Nanos{420}, 10};
    case ServiceKind::kVpcIdc:
      return ServiceProfile{Nanos{340}, 6};
    case ServiceKind::kVpcCloudService:
      return ServiceProfile{Nanos{300}, 6};
  }
  return ServiceProfile{Nanos{500}, 6};
}

void ServiceTables::populate(std::uint32_t tenants, std::uint32_t routes,
                             std::uint16_t data_cores) {
  vm_nc.populate_synthetic(tenants, /*vms_per_tenant=*/4);
  // VXLAN routing: one /24 per tenant block plus filler /32s up to the
  // requested rule count.
  std::uint32_t added = 0;
  for (Vni vni = 1; vni <= tenants && added < routes; ++vni, ++added) {
    vxlan_routes.add(VmNcMap::synthetic_vm_ip(vni, 0), 24,
                     vni % (kMaxNextHop + 1));
  }
  for (std::uint32_t i = 0; added < routes; ++i, ++added) {
    vxlan_routes.add(Ipv4Address{0x0b000000u + i * 251}, 32,
                     i % (kMaxNextHop + 1));
  }
  // Internet routes: a BGP-full-table-like spread of /16../24 prefixes
  // covering the 8.0.0.0/8 space the generators use as destinations.
  internet_routes.add(Ipv4Address::from_octets(8, 0, 0, 0), 8, 1);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    internet_routes.add(
        Ipv4Address{0x08000000u | (i << 12)}, 20,
        (i + 2) % (kMaxNextHop + 1));
  }
  // A small deny-list ACL; rule 1 is used by drop-flag experiments.
  AclRule deny;
  deny.rule_id = 1;
  deny.priority = 10;
  deny.dst_prefix = Ipv4Address::from_octets(9, 9, 9, 0);
  deny.dst_prefix_len = 24;
  deny.action = AclAction::kDeny;
  acl.add_rule(deny);

  per_core_conntrack.clear();
  for (std::uint16_t c = 0; c < data_cores; ++c) {
    per_core_conntrack.push_back(std::make_unique<FlowTable>(1 << 15));
  }
}

std::uint64_t ServiceTables::memory_bytes() const {
  std::uint64_t b = vxlan_routes.memory_bytes() +
                    internet_routes.memory_bytes() + vm_nc.memory_bytes();
  // Production tables are hundreds of bytes per entry across several
  // cascading tables (§4.2); scale the structural size to the modelled
  // footprint (entries x ~512B across all chained tables).
  const std::uint64_t entries = vm_nc.size() + vxlan_routes.rule_count();
  b += entries * 512;
  return b;
}

}  // namespace albatross
