// GW pod: one containerized gateway instance. Owns data cores (each an
// M/G/1 server fed by its RX descriptor ring), ctrl cores for protocol
// packets, the service implementation and the drop-flag signalling back
// to the NIC pipeline. Scheduled entirely on the discrete-event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/hooks.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "gateway/service.hpp"
#include "sim/event_loop.hpp"
#include "sim/numa.hpp"
#include "sim/ring.hpp"

namespace albatross {

struct GwPodConfig {
  PodId id = 0;
  ServiceKind service = ServiceKind::kVpcVpc;
  std::uint16_t data_cores = 8;
  std::uint16_t ctrl_cores = 2;
  NumaNodeId numa_node{};
  std::size_t rx_ring_capacity = 1024;
  /// RX drain burst size (clamped to PacketBurst::kMaxBurst; 0 -> 1).
  /// Burst size never changes the packet ledger — completions are
  /// chained per packet so ring occupancy, drop points and egress order
  /// are identical for any value (docs/BURST_API.md) — it only changes
  /// how much work each event-loop activation amortizes.
  std::size_t rx_burst = 32;
  /// Send the active drop flag to the NIC on CPU-side drops (Fig. 12
  /// ablation: disabling it turns every drop into a 100us HOL stall).
  bool drop_flag_enabled = true;
  ServiceFaults faults;
  std::uint64_t seed = 101;
  /// Per-core stall source (numa_balancing model).
  bool numa_balancing = false;
  NanoTime numa_balancing_scan_period = 100 * kMillisecond;
};

struct GwPodStats {
  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_service = 0;   ///< ACL / rate-rule drops on CPU
  std::uint64_t dropped_ring = 0;      ///< RX descriptor ring overflow
  std::uint64_t protocol_packets = 0;  ///< handled on ctrl cores
  std::uint64_t drop_flags_sent = 0;
};

class GwPod {
 public:
  /// Egress sink: a processed packet being submitted to the NIC TX queue
  /// at `submit_time` (drop-flag notifications travel the same way).
  using EgressFn = std::function<void(PacketPtr, NanoTime)>;
  /// Ctrl-plane sink for priority (BGP/BFD) packets.
  using ProtocolFn = std::function<void(PacketPtr, NanoTime)>;
  /// Observer for CPU-side data-path drops (RX ring overflow and
  /// service drops), fired with the dropped packet's flow identity.
  /// The DPU tier's handover gate uses it to release in-flight credits
  /// — a dropped packet will never reach the wire, so a tier admission
  /// after it cannot reorder anything.
  using DropFn = std::function<void(const FiveTuple&, PktClass, NanoTime)>;

  GwPod(const GwPodConfig& cfg, EventLoop& loop, ServiceTables& tables,
        CacheModel& cache);

  void set_egress(EgressFn fn) { egress_ = std::move(fn); }
  void set_protocol_handler(ProtocolFn fn) { protocol_ = std::move(fn); }
  void set_drop_hook(DropFn fn) { drop_hook_ = std::move(fn); }

  /// Packet delivery from the NIC at its RX-DMA completion time.
  /// `rx_queue` selects the data core (kPriorityQueue -> ctrl path).
  void deliver(PacketPtr pkt, std::uint16_t rx_queue, NanoTime now);

  [[nodiscard]] const GwPodConfig& config() const { return cfg_; }
  [[nodiscard]] const GwPodStats& stats() const { return stats_; }

  /// Cumulative busy nanoseconds of a data core (utilisation oracle).
  [[nodiscard]] NanoTime core_busy_ns(CoreId core) const;
  [[nodiscard]] std::uint64_t core_processed(CoreId core) const;
  [[nodiscard]] std::uint64_t core_ring_drops(CoreId core) const;

  /// Service-time distribution observed on the pod (CPU time only).
  [[nodiscard]] const LogHistogram& service_histogram() const {
    return service_hist_;
  }

  Service& service() { return *service_; }
  NumaBalancer& balancer() { return balancer_; }

  /// Fault injection (chaos subsystem): freezes one data core until
  /// `now + duration` — packets landing on it during the window pay the
  /// remaining stall on top of their service time, so its RX ring backs
  /// up exactly like a run loop wedged on a lock.
  void inject_core_stall(CoreId core, NanoTime duration, NanoTime now);
  [[nodiscard]] std::uint64_t core_stalls() const { return core_stalls_; }

  /// Arms a conformance probe on the pod's packet ledger (src/check);
  /// nullptr disarms.
  void set_probe(GwPodProbeHook* probe) { probe_ = probe; }

 private:
  struct Core {
    PacketRing ring;
    bool busy = false;
    NanoTime busy_ns = NanoTime{0};
    NanoTime stall_until = NanoTime{0};
    std::uint64_t processed = 0;
    /// In-flight burst: packets popped from the ring whose outcomes are
    /// precomputed; emitted one per completion event.
    PacketBurst burst;
    std::size_t burst_next = 0;      ///< next packet index to emit
    NanoTime next_done = NanoTime{0};///< completion time of burst_next
    Core(std::size_t cap) : ring(cap) {}
  };

  /// Pops up to rx_burst packets, runs the service over the whole burst
  /// and dispatches the first completion. Idle-transitions when empty.
  void start_core(CoreId core, NanoTime now);
  /// Charges packet `burst_next` (balancer stall + injected-stall
  /// carryover) and schedules its emit event.
  void dispatch_next(CoreId core, NanoTime now);
  /// Emit event body: emits packet `burst_next`, then dispatches the
  /// burst's next packet (releasing its ring credit) or refills.
  void emit_next(CoreId core);
  void emit_packet(CoreId core, PacketPtr pkt, ServiceOutcome outcome,
                   NanoTime done);
  /// Derived per-packet service-rng seed: makes service randomness a
  /// pure function of (pod seed, packet identity) so outcomes do not
  /// depend on burst size. Never returns 0.
  [[nodiscard]] std::uint64_t packet_rng_seed(const Packet& pkt) const;

  GwPodConfig cfg_;
  EventLoop& loop_;
  std::unique_ptr<Service> service_;
  std::vector<std::unique_ptr<Core>> cores_;
  Rng rng_;
  NumaBalancer balancer_;
  EgressFn egress_;
  ProtocolFn protocol_;
  DropFn drop_hook_;
  GwPodStats stats_;
  GwPodProbeHook* probe_ = nullptr;
  std::uint64_t core_stalls_ = 0;
  LogHistogram service_hist_;
  double recent_load_ = 0.0;  ///< smoothed, drives the balancer model
};

}  // namespace albatross
