// RSS indirection table, as commodity NICs implement it: the low bits of
// the Toeplitz hash index a small table mapping to RX queues. This is the
// 1st-gen baseline distribution mechanism; its failure mode (all packets
// of a heavy flow landing on one queue forever) motivates PLB.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace albatross {

class RssIndirection {
 public:
  static constexpr std::size_t kTableSize = 128;

  /// Initialises the canonical equal-spread table over `queues`.
  explicit RssIndirection(std::uint16_t queues);

  [[nodiscard]] std::uint16_t queue_for_hash(std::uint32_t hash) const {
    return table_[hash % kTableSize];
  }
  [[nodiscard]] std::uint16_t queue_for(const FiveTuple& t) const {
    return queue_for_hash(rss_hash(t));
  }

  /// Rewrites one indirection entry (the knob drivers use to rebalance;
  /// note it migrates whole hash buckets, not flows — the paper's point
  /// about RSS's coarse remediation).
  void set_entry(std::size_t index, std::uint16_t queue);
  [[nodiscard]] std::uint16_t entry(std::size_t index) const {
    return table_[index % kTableSize];
  }
  [[nodiscard]] std::uint16_t queues() const { return queues_; }

 private:
  std::uint16_t queues_;
  std::vector<std::uint16_t> table_;
};

}  // namespace albatross
