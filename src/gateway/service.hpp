// Gateway service framework. A GW pod runs exactly one service (Tab. 2):
// VPC-VPC, VPC-Internet, VPC-IDC or VPC-CloudService. Services perform
// *real* lookups against the pod's forwarding tables (VXLAN LPM routes,
// VM-NC mapping, ACL) and report a per-packet CPU time composed of a
// fixed instruction cost plus one memory-access sample per table touch —
// which is how the §4.2 result (RSS ~ PLB because DRAM dominates)
// emerges rather than being hard-coded.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"
#include "sim/cache_model.hpp"
#include "tables/acl.hpp"
#include "tables/flow_table.hpp"
#include "tables/lpm_dir24.hpp"
#include "tables/vm_nc_map.hpp"

namespace albatross {

enum class ServiceKind : std::uint8_t {
  kVpcVpc,
  kVpcInternet,
  kVpcIdc,
  kVpcCloudService,
};

[[nodiscard]] std::string_view service_name(ServiceKind k);

/// Forwarding state shared by all data cores of a pod. Tables are
/// read-mostly; the stateful conntrack partition is per-core (§7).
struct ServiceTables {
  LpmDir24 vxlan_routes;    ///< VXLAN routing (the >10M-rule table)
  VmNcMap vm_nc;            ///< VM -> NC mapping
  Acl acl;
  LpmDir24 internet_routes; ///< public routes for VPC-Internet
  std::vector<std::unique_ptr<FlowTable>> per_core_conntrack;

  /// Populates synthetic-yet-consistent content sized for `tenants`
  /// tenants so generator traffic resolves end to end.
  void populate(std::uint32_t tenants, std::uint32_t routes,
                std::uint16_t data_cores);

  /// Total resident bytes — the cache model's working set.
  [[nodiscard]] std::uint64_t memory_bytes() const;
};

enum class ServiceAction : std::uint8_t { kForward, kDrop };

struct ServiceOutcome {
  ServiceAction action = ServiceAction::kForward;
  NanoTime cpu_ns = NanoTime{0};  ///< per-packet service time on the data core
};

/// Latency-tail / fault knobs (§4.1's corner-case code branches; fixed in
/// production but reproducible here for the HOL experiments).
struct ServiceFaults {
  double slow_branch_probability = 0.0;  ///< e.g. 1e-4
  NanoTime slow_branch_ns = 2 * kMillisecond;
  /// Heavy-tail jitter of normal processing (truncated Pareto). §4.1-3:
  /// normal packets stay under the 50us processing ceiling — stalls long
  /// enough to trip the reorder HOL timeout are modelled exclusively by
  /// the slow-branch fault above, so the truncation cap keeps the two
  /// fault populations disjoint. 0 disables the cap.
  double jitter_probability = 2e-3;
  NanoTime jitter_scale_ns = 8 * kMicrosecond;
  double jitter_pareto_alpha = 2.2;
  NanoTime jitter_cap_ns = 50 * kMicrosecond;
};

/// A burst of packets drained from one RX ring, laid out
/// struct-of-arrays: the owning pointers sit in one lane and the
/// per-packet metadata the service loop actually touches (affinity,
/// service-rng stream, outcome) in separate contiguous lanes, so a
/// stage-split service walks dense arrays instead of chasing Packet
/// objects (docs/BURST_API.md).
struct PacketBurst {
  static constexpr std::size_t kMaxBurst = 32;

  std::size_t count = 0;
  std::array<PacketPtr, kMaxBurst> pkts;
  /// Whether this core sees the packet's flow repeatedly (RSS / pinned
  /// class) — the cache model's private-cache bonus signal.
  std::array<bool, kMaxBurst> flow_affine{};
  /// Per-packet service-rng stream seed. Non-zero seeds make service
  /// randomness a pure function of the packet (burst-size invariant,
  /// which the burst-vs-scalar differential oracle requires); zero
  /// falls back to the caller's shared Rng.
  std::array<std::uint64_t, kMaxBurst> rng_seed{};
  std::array<ServiceOutcome, kMaxBurst> outcomes{};
};

class Service {
 public:
  virtual ~Service() = default;

  [[nodiscard]] virtual ServiceKind kind() const = 0;

  /// Processes one packet on `core` (a pod-local data core index).
  /// `flow_affine` tells the cache model whether this core sees the flow
  /// repeatedly (RSS) or not (PLB).
  virtual ServiceOutcome process(Packet& pkt, CoreId core, bool flow_affine,
                                 NanoTime now, Rng& rng) = 0;

  /// Processes `burst.count` packets, writing one outcome per lane
  /// entry. `flow_affine` is the burst-wide hint; the per-packet lane
  /// wins. The default implementation loops the scalar process() (with
  /// a per-packet Rng when the seed lane is set), so services migrate
  /// to batched implementations incrementally.
  virtual void process_burst(PacketBurst& burst, CoreId core,
                             bool flow_affine, NanoTime now, Rng& rng);
};

struct ServiceProfile {
  NanoTime base_ns;          ///< fixed instruction cost
  std::uint16_t mem_accesses;///< DRAM/L3 touches across its table chain
};

/// Per-service cost profiles calibrated so 44 data cores land on the
/// Tab. 3 packet rates under the default cache model.
[[nodiscard]] ServiceProfile service_profile(ServiceKind k);

/// Factory: builds the service implementation for `kind` over shared
/// tables + cache model.
std::unique_ptr<Service> make_service(ServiceKind kind, ServiceTables& tables,
                                      CacheModel& cache,
                                      NumaNodeId numa_node,
                                      ServiceFaults faults = {});

}  // namespace albatross
