// Stateful network functions under PLB (§7 "Stateful NF support"):
// when packets of one flow are sprayed across cores, flow-state writes
// become a multi-core coherence problem. The paper's findings:
//   - write-light NFs (state written at session setup/teardown) scale
//     ~linearly with cores;
//   - write-heavy NFs (per-packet counters) collapse under either lock
//     contention or — even lock-free — cache-coherence traffic;
//   - the fixes are local (per-core) state or spraying over core groups.
// This module implements a functional SNAT/L4-LB session NF over the
// FlowTable substrate with all three state placements, plus the closed-
// form throughput model the ablation bench sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "tables/flow_table.hpp"

namespace albatross {

enum class StatePlacement : std::uint8_t {
  kSharedLocked,    ///< one table, a lock per write
  kSharedLockFree,  ///< one table, atomic updates (coherence-bound)
  kPerCore,         ///< partitioned local state
};

struct StatefulNfConfig {
  StatePlacement placement = StatePlacement::kPerCore;
  bool write_heavy = false;   ///< per-packet state write (counters)
  std::uint16_t cores = 8;
  NanoTime base_ns = NanoTime{420};     ///< stateless part of the NF
  NanoTime state_write_ns = NanoTime{45};
  NanoTime state_read_ns = NanoTime{25};
  /// Extra cost per additional contending core for locked writes.
  double lock_contention_per_core = 0.45;
  /// Extra cost per additional core for lock-free coherence misses —
  /// close to the lock factor, which is the paper's point: removing the
  /// locks "remains largely unchanged".
  double coherence_per_core = 0.38;
  /// Cores per spray group when group-spraying mitigation is applied
  /// (0 = no grouping).
  std::uint16_t spray_group_size = 0;
};

struct StatefulNfStats {
  std::uint64_t packets = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t state_writes = 0;
};

class StatefulNf {
 public:
  explicit StatefulNf(StatefulNfConfig cfg);

  /// Processes a packet of `tuple` on `core`; returns the per-packet
  /// CPU cost. Session state is created on first sight (write) and
  /// read (write-light) or updated (write-heavy) afterwards.
  NanoTime process(const FiveTuple& tuple, CoreId core, NanoTime now);

  /// Effective contending cores given the spray-group mitigation.
  [[nodiscard]] std::uint16_t contending_cores() const;

  /// Closed-form aggregate throughput (Mpps) at `cores` for this config,
  /// used by the scaling bench.
  [[nodiscard]] double model_throughput_mpps() const;

  [[nodiscard]] const StatefulNfStats& stats() const { return stats_; }
  [[nodiscard]] const StatefulNfConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] NanoTime write_cost() const;

  StatefulNfConfig cfg_;
  std::vector<std::unique_ptr<FlowTable>> tables_;  // 1 or per-core
  StatefulNfStats stats_;
};

}  // namespace albatross
