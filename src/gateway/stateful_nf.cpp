#include "gateway/stateful_nf.hpp"

namespace albatross {

StatefulNf::StatefulNf(StatefulNfConfig cfg) : cfg_(cfg) {
  const std::size_t n =
      cfg_.placement == StatePlacement::kPerCore ? cfg_.cores : 1;
  for (std::size_t i = 0; i < n; ++i) {
    tables_.push_back(std::make_unique<FlowTable>(1 << 16));
  }
}

std::uint16_t StatefulNf::contending_cores() const {
  if (cfg_.placement == StatePlacement::kPerCore) return 1;
  if (cfg_.spray_group_size > 0 && cfg_.spray_group_size < cfg_.cores) {
    return cfg_.spray_group_size;
  }
  return cfg_.cores;
}

NanoTime StatefulNf::write_cost() const {
  const double extra_cores = static_cast<double>(contending_cores() - 1);
  switch (cfg_.placement) {
    case StatePlacement::kSharedLocked:
      return cfg_.state_write_ns *
             (1.0 + cfg_.lock_contention_per_core * extra_cores);
    case StatePlacement::kSharedLockFree:
      return cfg_.state_write_ns *
             (1.0 + cfg_.coherence_per_core * extra_cores);
    case StatePlacement::kPerCore:
      return cfg_.state_write_ns;
  }
  return cfg_.state_write_ns;
}

NanoTime StatefulNf::process(const FiveTuple& tuple, CoreId core,
                             NanoTime now) {
  FlowTable& table =
      cfg_.placement == StatePlacement::kPerCore
          ? *tables_[core.index() % tables_.size()]
          : *tables_[0];
  ++stats_.packets;
  NanoTime cost = cfg_.base_ns;

  FlowState* st = table.lookup(tuple, now);
  if (st != nullptr && st->packets == 0) {
    // Session establishment: always a state write (write-light case).
    ++stats_.sessions_created;
    ++stats_.state_writes;
    st->backend = core.value();
    cost += write_cost();
  } else if (cfg_.write_heavy) {
    // Per-packet counters: a write on every packet.
    ++stats_.state_writes;
    cost += write_cost();
  } else {
    cost += cfg_.state_read_ns;
  }
  if (st != nullptr) {
    ++st->packets;
  }
  return cost;
}

double StatefulNf::model_throughput_mpps() const {
  const double per_pkt =
      static_cast<double>(cfg_.base_ns.count()) +
      static_cast<double>(
          (cfg_.write_heavy ? write_cost() : cfg_.state_read_ns).count());
  const double per_core_mpps = 1e3 / per_pkt;  // ns -> Mpps
  return per_core_mpps * static_cast<double>(cfg_.cores);
}

}  // namespace albatross
