#include "gateway/slb.hpp"

#include "common/hash.hpp"

namespace albatross {

ConsistentHashRing::ConsistentHashRing(std::uint16_t vnodes_per_weight)
    : vnodes_per_weight_(vnodes_per_weight == 0 ? 1 : vnodes_per_weight) {}

void ConsistentHashRing::add(std::uint16_t backend_index,
                             std::uint16_t weight) {
  const std::uint32_t vnodes =
      std::uint32_t{vnodes_per_weight_} * (weight == 0 ? 1 : weight);
  for (std::uint32_t v = 0; v < vnodes; ++v) {
    const std::uint64_t point =
        mix64((std::uint64_t{backend_index} << 32) | v);
    ring_[point] = backend_index;
  }
}

void ConsistentHashRing::remove(std::uint16_t backend_index) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == backend_index ? ring_.erase(it) : std::next(it);
  }
}

std::optional<std::uint16_t> ConsistentHashRing::owner(
    std::uint64_t hash) const {
  if (ring_.empty()) return std::nullopt;
  const auto it = ring_.lower_bound(hash);
  return it != ring_.end() ? it->second : ring_.begin()->second;
}

SlbService::SlbService(Ipv4Address vip, std::uint16_t vip_port,
                       std::uint16_t data_cores,
                       std::size_t sessions_per_core)
    : vip_(vip), vip_port_(vip_port) {
  for (std::uint16_t c = 0; c < data_cores; ++c) {
    sessions_.push_back(
        std::make_unique<FlowTable>(sessions_per_core, 60 * kSecond));
  }
}

std::uint16_t SlbService::add_backend(const Backend& b) {
  const auto index = static_cast<std::uint16_t>(backends_.size());
  backends_.push_back(b);
  if (b.healthy) ring_.add(index, b.weight);
  return index;
}

void SlbService::set_healthy(std::uint16_t index, bool healthy) {
  Backend& b = backends_[index];
  if (b.healthy == healthy) return;
  b.healthy = healthy;
  if (healthy) {
    ring_.add(index, b.weight);
  } else {
    ring_.remove(index);
  }
}

std::optional<std::uint16_t> SlbService::forward(const FiveTuple& client,
                                                 CoreId core, NanoTime now,
                                                 std::uint8_t tcp_flags) {
  ++stats_.packets;
  FlowTable& sessions = *sessions_[core.index() % sessions_.size()];

  constexpr std::uint8_t kFin = 0x01, kRst = 0x04, kSyn = 0x02;
  if (FlowState* s = sessions.lookup(client, now, /*create_on_miss=*/false)) {
    ++stats_.stuck_to_session;
    ++s->packets;
    const std::uint16_t backend = s->backend;
    if (tcp_flags & (kFin | kRst)) {
      sessions.erase(client);
    }
    // Session stickiness survives health transitions: draining.
    return backend;
  }

  // New connection: consistent-hash the client tuple onto the ring.
  const auto bytes = five_tuple_bytes(client);
  const std::uint64_t h =
      mix64(fnv1a64(std::span<const std::uint8_t>{bytes}));
  const auto chosen = ring_.owner(h);
  if (!chosen) {
    ++stats_.no_backend_drops;
    return std::nullopt;
  }
  ++stats_.ring_selected;
  ++stats_.connections;
  // Pure FIN/RST with no session is forwarded statelessly.
  if (!(tcp_flags & (kFin | kRst)) || (tcp_flags & kSyn)) {
    if (FlowState* s = sessions.lookup(client, now)) {
      s->backend = *chosen;
      s->syn_seen = (tcp_flags & kSyn) != 0;
      ++s->packets;
    }
  }
  return chosen;
}

std::size_t SlbService::age_sessions(NanoTime now) {
  std::size_t n = 0;
  for (auto& t : sessions_) n += t->age(now);
  return n;
}

}  // namespace albatross
