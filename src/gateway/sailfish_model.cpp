#include "gateway/sailfish_model.hpp"

namespace albatross {

GatewayGenSpec sailfish_spec() {
  // Tofino-based: line-rate pipeline but on-chip SRAM bounds table sizes
  // (0.2M LPM) and elasticity requires physical cluster builds (days).
  return GatewayGenSpec{"Sailfish", 0.2, 3.0 * 24 * 3600, 1.0, 32.0,
                        3200.0, 1800.0, 2.0};
}

GatewayGenSpec albatross_spec() {
  return GatewayGenSpec{"Albatross", 10.0, 10.0, 2.0, 16.0,
                        800.0, 120.0, 20.0};
}

GatewayGenSpec albatross_star_spec() {
  // Roadmap: latest FPGAs + CPUs, +20% device cost, 4x throughput.
  return GatewayGenSpec{"Albatross*", 10.0, 10.0, 2.4, 9.6,
                        3200.0, 480.0, 20.0};
}

std::array<GatewayGenSpec, 3> gateway_comparison() {
  return {sailfish_spec(), albatross_spec(), albatross_star_spec()};
}

}  // namespace albatross
