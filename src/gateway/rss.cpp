#include "gateway/rss.hpp"

namespace albatross {

RssIndirection::RssIndirection(std::uint16_t queues)
    : queues_(queues == 0 ? 1 : queues), table_(kTableSize) {
  for (std::size_t i = 0; i < kTableSize; ++i) {
    table_[i] = static_cast<std::uint16_t>(i % queues_);
  }
}

void RssIndirection::set_entry(std::size_t index, std::uint16_t queue) {
  table_[index % kTableSize] = static_cast<std::uint16_t>(queue % queues_);
}

}  // namespace albatross
