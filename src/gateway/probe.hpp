// Zoonet-style proactive telemetry probes (§3.2). Production injects
// probe packets that traverse the gateway like tenant traffic and carry
// injection timestamps, giving per-hop latency without touching tenant
// packets. Two properties matter for Albatross:
//   - probes are STATEFUL for the telemetry system (a probe stream's
//     samples must come back in order to compute one-way jitter), so
//     pkt_dir pins their dst port to RSS instead of spraying them;
//   - probe volume is negligible, so pinning costs nothing.
// The module provides the probe wire format (inside a UDP payload), an
// injector, and a collector computing the latency/jitter statistics a
// Zoonet-like backend would.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"

namespace albatross {

/// UDP destination port probes ride on; pods pin it to RSS in pkt_dir.
constexpr std::uint16_t kProbePort = 39999;

/// Probe payload: magic + stream id + sequence + TX timestamp.
struct ProbePayload {
  static constexpr std::size_t kWireSize = 24;
  static constexpr std::uint32_t kMagic = 0x5A6F6F4E;  // "ZooN"

  std::uint32_t stream_id = 0;
  std::uint64_t sequence = 0;
  NanoTime tx_time = NanoTime{0};

  void serialize(std::uint8_t* out) const;
  static std::optional<ProbePayload> deserialize(const std::uint8_t* in,
                                                 std::size_t len);
};

/// Builds a probe packet for `stream` with the given sequence/timestamp.
PacketPtr build_probe_packet(std::uint32_t stream, std::uint64_t seq,
                             NanoTime tx_time, const FiveTuple& path_tuple);

/// Extracts a probe from a packet's UDP payload; nullopt if the packet
/// is not a probe.
std::optional<ProbePayload> extract_probe(const Packet& pkt);

/// Collector: consumes probes observed at the far side and maintains
/// the statistics the telemetry backend alerts on.
class ProbeCollector {
 public:
  struct StreamStats {
    std::uint64_t received = 0;
    std::uint64_t lost = 0;        ///< sequence gaps
    std::uint64_t reordered = 0;   ///< sequence went backwards
    LogHistogram latency;          ///< rx_time - tx_time
  };

  /// Records one observed probe. Returns false for non-monotonic
  /// sequences (reordering — which pinning to RSS is meant to prevent).
  bool observe(const ProbePayload& p, NanoTime rx_time);

  [[nodiscard]] const StreamStats* stream(std::uint32_t id) const;
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }

 private:
  struct Tracked {
    StreamStats stats;
    std::uint64_t next_expected = 0;
  };
  std::map<std::uint32_t, Tracked> streams_;
};

}  // namespace albatross
