// SLB — the Layer-4 load balancer gateway role (one of the eight
// cluster roles an AZ deploys, Fig. 15; also the paper's canonical
// "stateful NF" example in §7). A VIP fronts a set of backend real
// servers; new connections pick a backend via a consistent-hash ring
// (so backend churn remaps only ~1/N of the flow space) and existing
// connections stick to their backend through the per-core session
// table — the stateful part that makes PLB interesting for L4 LBs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "tables/flow_table.hpp"

namespace albatross {

struct Backend {
  Ipv4Address rs_ip;       ///< real-server address
  std::uint16_t rs_port = 0;
  std::uint16_t weight = 1;
  bool healthy = true;
};

/// Consistent-hash ring with `vnodes_per_weight` virtual nodes per unit
/// of backend weight. Lookup cost is O(log vnodes).
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::uint16_t vnodes_per_weight = 64);

  void add(std::uint16_t backend_index, std::uint16_t weight);
  void remove(std::uint16_t backend_index);

  /// Backend index owning `hash`; nullopt when the ring is empty.
  [[nodiscard]] std::optional<std::uint16_t> owner(std::uint64_t hash) const;

  [[nodiscard]] std::size_t vnode_count() const { return ring_.size(); }

 private:
  std::uint16_t vnodes_per_weight_;
  std::map<std::uint64_t, std::uint16_t> ring_;  // point -> backend index
};

struct SlbStats {
  std::uint64_t connections = 0;
  std::uint64_t packets = 0;
  std::uint64_t stuck_to_session = 0;  ///< routed via session table
  std::uint64_t ring_selected = 0;     ///< new connections via the ring
  std::uint64_t no_backend_drops = 0;
};

/// One VIP's L4 load balancer. Session state is per-core (§7's lesson);
/// the ring and backend list are read-mostly shared state.
class SlbService {
 public:
  SlbService(Ipv4Address vip, std::uint16_t vip_port,
             std::uint16_t data_cores, std::size_t sessions_per_core = 1 << 15);

  /// Adds a backend; returns its index.
  std::uint16_t add_backend(const Backend& b);
  /// Health transitions: an unhealthy backend leaves the ring (new
  /// connections avoid it) but existing sessions drain naturally.
  void set_healthy(std::uint16_t index, bool healthy);
  [[nodiscard]] const Backend& backend(std::uint16_t index) const {
    return backends_[index];
  }
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }

  /// Forwards one packet on `core`; returns the chosen backend index or
  /// nullopt (no healthy backend -> drop). TCP FIN/RST tears the
  /// session down.
  std::optional<std::uint16_t> forward(const FiveTuple& client, CoreId core,
                                       NanoTime now,
                                       std::uint8_t tcp_flags = 0);

  /// Ages idle sessions on every core partition.
  std::size_t age_sessions(NanoTime now);

  [[nodiscard]] const SlbStats& stats() const { return stats_; }
  [[nodiscard]] Ipv4Address vip() const { return vip_; }

 private:
  Ipv4Address vip_;
  std::uint16_t vip_port_;
  std::vector<Backend> backends_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<FlowTable>> sessions_;  // per core
  SlbStats stats_;
};

}  // namespace albatross
