// Concrete implementations of the four Tab. 2 gateway services. Each
// runs a chain of real table lookups (functional correctness) and
// charges per-packet CPU time from the calibrated profile plus sampled
// memory-access latencies (performance model).
#include "gateway/service.hpp"

namespace albatross {
namespace {

class BaseVpcService : public Service {
 public:
  BaseVpcService(ServiceKind kind, ServiceTables& tables, CacheModel& cache,
                 NumaNodeId numa_node, ServiceFaults faults)
      : kind_(kind),
        tables_(tables),
        cache_(cache),
        numa_(numa_node),
        faults_(faults),
        profile_(service_profile(kind)) {}

  [[nodiscard]] ServiceKind kind() const override { return kind_; }

  ServiceOutcome process(Packet& pkt, CoreId core, bool flow_affine,
                         NanoTime now, Rng& rng) override {
    ServiceOutcome out;
    out.cpu_ns = profile_.base_ns;
    for (std::uint16_t i = 0; i < profile_.mem_accesses; ++i) {
      out.cpu_ns += cache_.access_latency(rng, numa_, numa_, flow_affine);
    }
    // Heavy-tail jitter: complex software stacks on general-purpose
    // CPUs occasionally stall (interrupts, TLB, allocator slow paths).
    if (rng.next_bool(faults_.jitter_probability)) {
      out.cpu_ns += Nanos{static_cast<std::int64_t>(rng.next_pareto(
          static_cast<double>(faults_.jitter_scale_ns.count()),
          faults_.jitter_pareto_alpha))};
    }
    if (faults_.slow_branch_probability > 0.0 &&
        rng.next_bool(faults_.slow_branch_probability)) {
      out.cpu_ns += faults_.slow_branch_ns;  // the §4.1 corner-case bug
    }
    out.action = forward(pkt, core, now);
    return out;
  }

 protected:
  /// Service-specific functional chain; returns drop/forward.
  virtual ServiceAction forward(Packet& pkt, CoreId core, NanoTime now) = 0;

  [[nodiscard]] ServiceAction acl_gate(const Packet& pkt) const {
    return tables_.acl.evaluate(pkt.tuple) == AclAction::kDeny
               ? ServiceAction::kDrop
               : ServiceAction::kForward;
  }

  ServiceKind kind_;
  ServiceTables& tables_;
  CacheModel& cache_;
  NumaNodeId numa_;
  ServiceFaults faults_;
  ServiceProfile profile_;
};

/// VPC-VPC: decap -> VM-NC lookup for the peer VM -> VXLAN route ->
/// re-encap toward the destination NC.
class VpcVpcService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    // Locate the sending VM (validates the tenant) and route the inner
    // destination through the VXLAN routing table.
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    (void)tables_.vxlan_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-Internet: decap -> conntrack/SNAT -> public route -> encap. The
/// longest chain (Tab. 3's 81.6 Mpps).
class VpcInternetService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId core, NanoTime now) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    // Per-core conntrack (§7: local state, no cross-core sharing).
    if (core.index() < tables_.per_core_conntrack.size()) {
      FlowState* st =
          tables_.per_core_conntrack[core.index()]->lookup(pkt.tuple, now);
      if (st != nullptr && st->nat_ip == 0) {
        // First packet: allocate a SNAT translation.
        st->nat_ip = 0x0101'0101u + (pkt.vni & 0xff);
        st->nat_port =
            static_cast<std::uint16_t>(1024 + (st->created.count() & 0x7fff));
      }
      if (st != nullptr) {
        ++st->packets;
        st->bytes += pkt.size();
      }
    }
    (void)tables_.internet_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-IDC: decap -> VXLAN route toward the customer's IDC CPE -> encap.
class VpcIdcService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vxlan_routes.lookup(pkt.tuple.dst_ip);
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-CloudService: decap -> VM-NC -> cloud-service endpoint route.
class VpcCloudService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    (void)tables_.internet_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

}  // namespace

std::unique_ptr<Service> make_service(ServiceKind kind, ServiceTables& tables,
                                      CacheModel& cache,
                                      NumaNodeId numa_node,
                                      ServiceFaults faults) {
  switch (kind) {
    case ServiceKind::kVpcVpc:
      return std::make_unique<VpcVpcService>(kind, tables, cache, numa_node,
                                             faults);
    case ServiceKind::kVpcInternet:
      return std::make_unique<VpcInternetService>(kind, tables, cache,
                                                  numa_node, faults);
    case ServiceKind::kVpcIdc:
      return std::make_unique<VpcIdcService>(kind, tables, cache, numa_node,
                                             faults);
    case ServiceKind::kVpcCloudService:
      return std::make_unique<VpcCloudService>(kind, tables, cache,
                                               numa_node, faults);
  }
  return nullptr;
}

}  // namespace albatross
