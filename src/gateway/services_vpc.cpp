// Concrete implementations of the four Tab. 2 gateway services. Each
// runs a chain of real table lookups (functional correctness) and
// charges per-packet CPU time from the calibrated profile plus sampled
// memory-access latencies (performance model).
#include "gateway/service.hpp"

namespace albatross {
namespace {

class BaseVpcService : public Service {
 public:
  BaseVpcService(ServiceKind kind, ServiceTables& tables, CacheModel& cache,
                 NumaNodeId numa_node, ServiceFaults faults)
      : kind_(kind),
        tables_(tables),
        cache_(cache),
        numa_(numa_node),
        faults_(faults),
        profile_(service_profile(kind)) {}

  [[nodiscard]] ServiceKind kind() const override { return kind_; }

  ServiceOutcome process(Packet& pkt, CoreId core, bool flow_affine,
                         NanoTime now, Rng& rng) override {
    ServiceOutcome out;
    out.cpu_ns = cost_model(flow_affine, rng);
    out.action = forward(pkt, core, now);
    return out;
  }

  /// Batched override: stage-split over the SoA lanes — the cost model
  /// walks the dense metadata lanes for the whole burst first, then the
  /// functional forward chain runs per packet. Outcome-identical to the
  /// scalar loop because the cost stage draws only from the per-packet
  /// rng stream and the forward stage draws nothing.
  void process_burst(PacketBurst& burst, CoreId core, bool flow_affine,
                     NanoTime now, Rng& rng) override {
    for (std::size_t i = 0; i < burst.count; ++i) {
      if (burst.rng_seed[i] == 0) {
        // Unseeded lanes share one rng: stage-splitting would reorder
        // its draws, so fall back to the sequential default.
        Service::process_burst(burst, core, flow_affine, now, rng);
        return;
      }
    }
    for (std::size_t i = 0; i < burst.count; ++i) {
      Rng pkt_rng(burst.rng_seed[i]);
      burst.outcomes[i].cpu_ns =
          cost_model(burst.flow_affine[i] || flow_affine, pkt_rng);
    }
    for (std::size_t i = 0; i < burst.count; ++i) {
      burst.outcomes[i].action = forward(*burst.pkts[i], core, now);
    }
  }

 protected:
  /// Service-specific functional chain; returns drop/forward.
  virtual ServiceAction forward(Packet& pkt, CoreId core, NanoTime now) = 0;

  /// Per-packet CPU-time model: calibrated base cost + sampled memory
  /// accesses + heavy-tail jitter (interrupts, TLB, allocator slow
  /// paths) + the §4.1 corner-case slow branch.
  NanoTime cost_model(bool flow_affine, Rng& rng) {
    NanoTime cpu = profile_.base_ns;
    for (std::uint16_t i = 0; i < profile_.mem_accesses; ++i) {
      cpu += cache_.access_latency(rng, numa_, numa_, flow_affine);
    }
    if (rng.next_bool(faults_.jitter_probability)) {
      auto jitter = Nanos{static_cast<std::int64_t>(rng.next_pareto(
          static_cast<double>(faults_.jitter_scale_ns.count()),
          faults_.jitter_pareto_alpha))};
      if (faults_.jitter_cap_ns.count() > 0 && jitter > faults_.jitter_cap_ns) {
        jitter = faults_.jitter_cap_ns;
      }
      cpu += jitter;
    }
    if (faults_.slow_branch_probability > 0.0 &&
        rng.next_bool(faults_.slow_branch_probability)) {
      cpu += faults_.slow_branch_ns;
    }
    return cpu;
  }

  [[nodiscard]] ServiceAction acl_gate(const Packet& pkt) const {
    return tables_.acl.evaluate(pkt.tuple) == AclAction::kDeny
               ? ServiceAction::kDrop
               : ServiceAction::kForward;
  }

  ServiceKind kind_;
  ServiceTables& tables_;
  CacheModel& cache_;
  NumaNodeId numa_;
  ServiceFaults faults_;
  ServiceProfile profile_;
};

/// VPC-VPC: decap -> VM-NC lookup for the peer VM -> VXLAN route ->
/// re-encap toward the destination NC.
class VpcVpcService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    // Locate the sending VM (validates the tenant) and route the inner
    // destination through the VXLAN routing table.
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    (void)tables_.vxlan_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-Internet: decap -> conntrack/SNAT -> public route -> encap. The
/// longest chain (Tab. 3's 81.6 Mpps).
class VpcInternetService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId core, NanoTime now) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    // Per-core conntrack (§7: local state, no cross-core sharing).
    if (core.index() < tables_.per_core_conntrack.size()) {
      FlowState* st =
          tables_.per_core_conntrack[core.index()]->lookup(pkt.tuple, now);
      if (st != nullptr && st->nat_ip == 0) {
        // First packet: allocate a SNAT translation.
        st->nat_ip = 0x0101'0101u + (pkt.vni & 0xff);
        st->nat_port =
            static_cast<std::uint16_t>(1024 + (st->created.count() & 0x7fff));
      }
      if (st != nullptr) {
        ++st->packets;
        st->bytes += pkt.size();
      }
    }
    (void)tables_.internet_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-IDC: decap -> VXLAN route toward the customer's IDC CPE -> encap.
class VpcIdcService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vxlan_routes.lookup(pkt.tuple.dst_ip);
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    return ServiceAction::kForward;
  }
};

/// VPC-CloudService: decap -> VM-NC -> cloud-service endpoint route.
class VpcCloudService final : public BaseVpcService {
 public:
  using BaseVpcService::BaseVpcService;

 private:
  ServiceAction forward(Packet& pkt, CoreId, NanoTime) override {
    if (acl_gate(pkt) == ServiceAction::kDrop) return ServiceAction::kDrop;
    (void)tables_.vm_nc.lookup(pkt.vni, pkt.tuple.src_ip);
    (void)tables_.internet_routes.lookup(pkt.tuple.dst_ip);
    return ServiceAction::kForward;
  }
};

}  // namespace

std::unique_ptr<Service> make_service(ServiceKind kind, ServiceTables& tables,
                                      CacheModel& cache,
                                      NumaNodeId numa_node,
                                      ServiceFaults faults) {
  switch (kind) {
    case ServiceKind::kVpcVpc:
      return std::make_unique<VpcVpcService>(kind, tables, cache, numa_node,
                                             faults);
    case ServiceKind::kVpcInternet:
      return std::make_unique<VpcInternetService>(kind, tables, cache,
                                                  numa_node, faults);
    case ServiceKind::kVpcIdc:
      return std::make_unique<VpcIdcService>(kind, tables, cache, numa_node,
                                             faults);
    case ServiceKind::kVpcCloudService:
      return std::make_unique<VpcCloudService>(kind, tables, cache,
                                               numa_node, faults);
  }
  return nullptr;
}

}  // namespace albatross
