#include "gateway/probe.hpp"

#include "common/endian.hpp"
#include "packet/parser.hpp"

namespace albatross {

void ProbePayload::serialize(std::uint8_t* out) const {
  store_be32(out, kMagic);
  store_be32(out + 4, stream_id);
  store_be64(out + 8, sequence);
  store_be64(out + 16, static_cast<std::uint64_t>(tx_time.count()));
}

std::optional<ProbePayload> ProbePayload::deserialize(const std::uint8_t* in,
                                                      std::size_t len) {
  if (len < kWireSize || load_be32(in) != kMagic) return std::nullopt;
  ProbePayload p;
  p.stream_id = load_be32(in + 4);
  p.sequence = load_be64(in + 8);
  p.tx_time = static_cast<NanoTime>(load_be64(in + 16));
  return p;
}

PacketPtr build_probe_packet(std::uint32_t stream, std::uint64_t seq,
                             NanoTime tx_time, const FiveTuple& path_tuple) {
  UdpFlowSpec spec;
  spec.tuple = path_tuple;
  spec.tuple.proto = IpProto::kUdp;
  spec.tuple.dst_port = kProbePort;
  spec.payload_len = ProbePayload::kWireSize;
  auto pkt = build_udp_packet(spec);
  ProbePayload p{stream, seq, tx_time};
  p.serialize(pkt->data() + EthernetHeader::kSize + Ipv4Header::kSize +
              UdpHeader::kSize);
  pkt->rx_time = tx_time;
  return pkt;
}

std::optional<ProbePayload> extract_probe(const Packet& pkt) {
  const auto parsed = parse_packet(pkt.bytes());
  if (!parsed || parsed->ip.protocol != IpProto::kUdp ||
      parsed->l4_dst != kProbePort) {
    return std::nullopt;
  }
  const std::size_t off = parsed->payload_offset;
  if (pkt.size() < off + ProbePayload::kWireSize) return std::nullopt;
  return ProbePayload::deserialize(pkt.data() + off, pkt.size() - off);
}

bool ProbeCollector::observe(const ProbePayload& p, NanoTime rx_time) {
  Tracked& t = streams_[p.stream_id];
  ++t.stats.received;
  if (rx_time >= p.tx_time) {
    t.stats.latency.record(rx_time - p.tx_time);
  }
  if (p.sequence < t.next_expected) {
    ++t.stats.reordered;
    return false;
  }
  if (p.sequence > t.next_expected) {
    t.stats.lost += p.sequence - t.next_expected;
  }
  t.next_expected = p.sequence + 1;
  return true;
}

const ProbeCollector::StreamStats* ProbeCollector::stream(
    std::uint32_t id) const {
  const auto it = streams_.find(id);
  return it != streams_.end() ? &it->second.stats : nullptr;
}

}  // namespace albatross
