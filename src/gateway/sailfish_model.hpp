// Analytic comparator for Tab. 6: Sailfish (the 2nd-gen Tofino gateway),
// Albatross as deployed, and Albatross* (the roadmap evolution on newer
// FPGAs/CPUs). Sailfish constants come from the paper and the SIGCOMM'21
// Sailfish publication; Albatross columns can also be *measured* from a
// live Platform instance and cross-checked against these specs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace albatross {

struct GatewayGenSpec {
  std::string name;
  double lpm_rules_millions;     ///< VXLAN-routing LPM capacity
  double elasticity_seconds;     ///< time to stand up a new gateway
  double price_per_device;      ///< normalized to Sailfish = 1x
  double price_per_az;          ///< normalized (Tab. 6 column)
  double throughput_gbps;
  double packet_rate_mpps;
  double latency_us;
};

[[nodiscard]] GatewayGenSpec sailfish_spec();
[[nodiscard]] GatewayGenSpec albatross_spec();
[[nodiscard]] GatewayGenSpec albatross_star_spec();

/// All three rows in Tab. 6 order.
[[nodiscard]] std::array<GatewayGenSpec, 3> gateway_comparison();

}  // namespace albatross
