// plb_reorder: the egress order-restoration engine (§4.1, Fig. 3).
//
// One ReorderQueue models one order-preserving queue with the paper's
// three hardware structures, all 4K entries deep:
//   FIFO   — reorder info {PSN, arrival timestamp} appended at dispatch;
//            a packet may only be transmitted in order once its entry
//            reaches the FIFO head. head_ptr / tail_ptr are free-running.
//   BUF    — packets written back by the GW pod, indexed by psn[11:0].
//   BITMAP — a lightweight mirror of BUF (valid bit + PSN [+ drop flag])
//            used for O(1) order checks at the FPGA clock.
//
// The legal check validates a written-back packet using ONLY psn[11:0]
// against the head/tail window — deliberately aliasable (cheap hardware);
// stale timed-out packets that alias are caught later by the reorder
// check's full-PSN comparison (Case 3) and sent best-effort.
//
// Reorder check cases (verbatim from the paper):
//   Case 1: head queued > 100us            -> release head (HOL timeout)
//   Case 2: BITMAP invalid                 -> keep waiting
//   Case 3: BITMAP valid, PSN mismatch     -> send slot best-effort, wait
//   Case 4: BITMAP valid, PSN match        -> transmit in order
// Plus the active drop flag (Fig. 12): a write-back with meta.drop set
// releases FIFO/BUF/BITMAP resources without transmitting.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "check/hooks.hpp"
#include "packet/packet.hpp"

namespace albatross {

struct ReorderQueueStats {
  std::uint64_t reserved = 0;           ///< FIFO entries enqueued
  std::uint64_t fifo_full_drops = 0;    ///< ingress drops: FIFO exhausted
  std::uint64_t in_order_tx = 0;        ///< Case 4 transmissions
  std::uint64_t best_effort_tx = 0;     ///< Case 3 + legal-check failures
  std::uint64_t timeout_releases = 0;   ///< Case 1: HOL events
  std::uint64_t drop_releases = 0;      ///< active drop-flag releases
  std::uint64_t header_only_payload_lost = 0;
  std::uint64_t legal_check_fail = 0;
  std::uint64_t legal_check_alias = 0;  ///< stale pkt passing legal check
};

/// A packet leaving the reorder engine toward the wire.
struct ReorderEgress {
  PacketPtr pkt;        ///< null for pure releases (drop flag / timeout)
  bool in_order = true; ///< false = best-effort (disordered) emission
  PlbMeta meta;         ///< stripped trailer (header-only reassembly info)
};

/// BRAM is the whole-NIC BUF/BITMAP total at the default report
/// geometry (16 queues x 4096 entries x 23 B), Tab. 5 "PLB" row.
// fpga: lut=100'000, bram_bits=12'058'624, cycles=175
class ReorderQueue {
 public:
  explicit ReorderQueue(std::uint32_t entries = kReorderQueueEntries,
                        NanoTime timeout = kReorderTimeout);

  // --- dispatch (ingress) side -----------------------------------------
  /// Reserves the next PSN and appends reorder info to the FIFO.
  /// nullopt when the FIFO is full (the C1 trade-off: heavy-hitter pps
  /// beyond queue capacity becomes ingress loss).
  std::optional<Psn> reserve(NanoTime now);

  // --- CPU write-back (egress) side ------------------------------------
  /// Legal check + BUF/BITMAP update for a packet returned by the GW
  /// pod. May immediately emit a best-effort packet (legal-check
  /// failure), which is appended to `out`.
  void writeback(PacketPtr pkt, const PlbMeta& meta, NanoTime now,
                 std::vector<ReorderEgress>& out);

  /// Reorder check: drains the FIFO head while it is transmittable or
  /// expired, appending emissions to `out`.
  void drain(NanoTime now, std::vector<ReorderEgress>& out);

  /// Virtual time at which the current head times out (Case 1), if any.
  [[nodiscard]] std::optional<NanoTime> head_deadline() const;

  /// Fault injection (chaos subsystem): freezes the reorder check until
  /// `until`, modelling a wedged FPGA reorder module. Dispatch and
  /// write-back keep filling the structures; drain() refuses to emit, so
  /// HOL timeouts pile up and release in a burst once the stall lifts.
  void inject_stall(NanoTime until) {
    if (until > stuck_until_) stuck_until_ = until;
  }
  [[nodiscard]] bool stalled(NanoTime now) const { return now < stuck_until_; }

  [[nodiscard]] std::uint32_t in_flight() const { return tail_ - head_; }
  [[nodiscard]] std::uint32_t capacity() const { return entries_; }
  [[nodiscard]] const ReorderQueueStats& stats() const { return stats_; }
  [[nodiscard]] NanoTime timeout() const { return timeout_; }

  /// Arms a conformance probe (src/check). `ordq_id` identifies this
  /// queue in probe reports. Pass nullptr to disarm.
  void set_probe(ReorderProbeHook* probe, std::uint16_t ordq_id) {
    probe_ = probe;
    ordq_id_ = ordq_id;
  }

  /// BRAM cost of one queue instance (FIFO + BITMAP + BUF descriptors),
  /// feeding the Tab. 5 resource ledger.
  [[nodiscard]] std::size_t bram_bytes() const;

 private:
  struct BitmapEntry {
    bool valid = false;
    bool drop = false;
    Psn psn = 0;
  };

  [[nodiscard]] std::uint32_t slot(Psn psn) const {
    return Psn12::slot_of(psn, entries_);
  }

  std::uint32_t entries_;
  NanoTime timeout_;
  // FIFO ring: PSN is the free-running tail counter at reserve time, so
  // the ring index of an entry is psn & (entries-1) and only timestamps
  // need storing (full PSN kept for clarity/asserts).
  std::vector<Psn> fifo_psn_;
  std::vector<NanoTime> fifo_ts_;
  std::uint32_t head_ = 0;  // free-running
  std::uint32_t tail_ = 0;  // free-running; next PSN to assign
  NanoTime stuck_until_ = NanoTime{0};
  std::vector<PacketPtr> buf_;
  std::vector<PlbMeta> buf_meta_;
  std::vector<BitmapEntry> bitmap_;
  ReorderQueueStats stats_;
  ReorderProbeHook* probe_ = nullptr;
  std::uint16_t ordq_id_ = 0;
};

}  // namespace albatross
