// plb_dispatch: the ingress half of packet-level load balancing (§4.1).
// Sprays packets round-robin across a pod's RX data queues, reserves a
// PSN in the order-preserving queue chosen by the flow's 5-tuple hash
// (get_ordq_idx), and tags the PLB meta trailer that travels with the
// packet through the CPU and back.
//
// A PlbEngine instance owns one GW pod's PLB state: its reorder queues
// (1-8, proportional to data cores — the C1/C2 trade-off) and the RX
// round-robin cursor. SR-IOV NIC virtualisation gives each pod its own
// engine so pods never interfere (§5).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "nic/plb_reorder.hpp"
#include "packet/packet.hpp"

namespace albatross {

struct PlbEngineConfig {
  std::uint16_t num_reorder_queues = 4;  ///< 1-8 per pod
  std::uint16_t num_rx_queues = 8;       ///< = pod data cores
  std::uint32_t reorder_entries = kReorderQueueEntries;
  NanoTime reorder_timeout = kReorderTimeout;
};

struct PlbDispatchResult {
  std::uint16_t rx_queue = 0;
  std::uint8_t ordq = 0;
  Psn psn = 0;
};

/// Dispatch logic only (hash, ordq pick, PSN stamp): its reorder-queue
/// BRAM is annotated on ReorderQueue, which it instantiates per ordq.
// fpga: lut=15'012, bram_bits=0, cycles=25
class PlbEngine {
 public:
  explicit PlbEngine(PlbEngineConfig cfg = {});

  /// Ingress: assigns ordq + PSN, attaches the meta trailer and picks
  /// the RX queue. nullopt = reorder FIFO full, packet dropped at
  /// ingress (caller keeps ownership to free/count it).
  std::optional<PlbDispatchResult> dispatch(Packet& pkt, NanoTime now);

  /// Burst ingress: dispatches packets[i] at times[i], writing the
  /// result positionally into `out`. PSNs are assigned in index order,
  /// exactly as sequential dispatch() calls would.
  void dispatch_burst(std::span<Packet* const> pkts,
                      std::span<const NanoTime> times,
                      std::span<std::optional<PlbDispatchResult>> out);

  /// Egress: write-back of a CPU-processed packet (meta still attached;
  /// this strips it). Emissions (best-effort or in-order after drain)
  /// are appended to `out`.
  void writeback(PacketPtr pkt, NanoTime now, std::vector<ReorderEgress>& out);

  /// Runs the reorder check on every queue (timeout-driven entry point).
  void drain_all(NanoTime now, std::vector<ReorderEgress>& out);

  /// Earliest head-timeout deadline across queues, for event scheduling.
  [[nodiscard]] std::optional<NanoTime> next_deadline() const;

  [[nodiscard]] std::uint16_t ordq_index(const FiveTuple& tuple) const;
  [[nodiscard]] const PlbEngineConfig& config() const { return cfg_; }
  [[nodiscard]] const ReorderQueue& queue(std::size_t i) const {
    return *queues_[i];
  }
  [[nodiscard]] std::size_t queue_count() const { return queues_.size(); }

  /// Aggregated statistics across this pod's reorder queues.
  [[nodiscard]] ReorderQueueStats total_stats() const;

  /// Total packets this engine refused at ingress because the selected
  /// reorder FIFO was full.
  [[nodiscard]] std::uint64_t ingress_drops() const { return ingress_drops_; }

  /// Fault injection (chaos subsystem): wedges every reorder queue's
  /// check logic until `until`.
  void inject_reorder_stall(NanoTime until) {
    for (auto& q : queues_) q->inject_stall(until);
  }

  /// Arms a conformance probe on every reorder queue (src/check);
  /// nullptr disarms.
  void set_probe(ReorderProbeHook* probe) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      queues_[i]->set_probe(probe, static_cast<std::uint16_t>(i));
    }
  }

 private:
  PlbEngineConfig cfg_;
  std::vector<std::unique_ptr<ReorderQueue>> queues_;
  std::uint64_t rx_rr_ = 0;
  std::uint64_t ingress_drops_ = 0;
};

}  // namespace albatross
