// SR-IOV NIC virtualisation (§5, App. B): each GW pod gets 4 virtual
// functions spread over the two NICs of its NUMA node (one per
// independent 100G port / switch path, Fig. B.2), with n RX/TX queue
// pairs per VF where n = the pod's data cores. Uplink switches tag
// frames with a VLAN id identifying the VF, which is how the basic
// pipeline steers traffic to the right pod.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace albatross {

struct VfAssignment {
  std::uint16_t vf_id = 0;
  std::uint16_t nic = 0;       ///< physical NIC index (0-3 on the server)
  std::uint16_t port = 0;      ///< 100G port on that NIC (0/1)
  std::uint16_t vlan_id = 0;   ///< steering tag applied by the switch
  std::uint16_t queue_pairs = 0;
};

struct PodVfSet {
  PodId pod = 0;
  NumaNodeId numa_node{};
  std::vector<VfAssignment> vfs;  ///< 4 per pod (robustness design)
};

struct SriovConfig {
  std::uint16_t nics = 4;             ///< FPGA NICs on the server
  std::uint16_t ports_per_nic = 2;    ///< 2x100G each
  std::uint16_t vfs_per_pod = 4;
  std::uint16_t max_vfs_per_port = 64;
  std::uint16_t max_queue_pairs_per_port = 256;
};

/// Allocates and tracks VF resources across pods. Allocation pins a pod
/// to the two NICs of its NUMA node and spreads its 4 VFs across the 4
/// independent 100G ports there.
// fpga: lut=4'000, bram_bits=131'072, cycles=4
class SriovManager {
 public:
  explicit SriovManager(SriovConfig cfg = {});

  /// Allocates a VF set for `pod` on `numa_node` with `data_cores`
  /// queue pairs per VF; nullopt when port VF/queue budgets are
  /// exhausted.
  std::optional<PodVfSet> allocate(PodId pod, NumaNodeId numa_node,
                                   std::uint16_t data_cores);

  void release(PodId pod);

  [[nodiscard]] std::optional<PodId> pod_for_vlan(std::uint16_t vlan) const;
  [[nodiscard]] const std::vector<PodVfSet>& assignments() const {
    return pods_;
  }
  [[nodiscard]] std::uint16_t vfs_in_use() const;

 private:
  struct PortState {
    std::uint16_t vfs = 0;
    std::uint16_t queue_pairs = 0;
  };

  [[nodiscard]] std::size_t port_index(std::uint16_t nic,
                                       std::uint16_t port) const {
    return nic * cfg_.ports_per_nic + port;
  }

  SriovConfig cfg_;
  std::vector<PortState> ports_;
  std::vector<PodVfSet> pods_;
  std::uint16_t next_vf_ = 0;
  std::uint16_t next_vlan_ = 100;
};

}  // namespace albatross
