#include "nic/session_offload.hpp"

namespace albatross {

SessionOffload::SessionOffload(SessionOffloadConfig cfg)
    : cfg_(cfg), table_(cfg.capacity) {}

std::optional<NanoTime> SessionOffload::fast_path(const FiveTuple& tuple,
                                                  std::size_t bytes,
                                                  NanoTime now) {
  OffloadedSession* s = table_.find_mut(tuple);
  if (s == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.fast_path_hits;
  ++s->packets;
  s->bytes += bytes;
  s->last_seen = now;
  return cfg_.fpga_process_ns;
}

bool SessionOffload::install(const FiveTuple& tuple, std::uint32_t action,
                             NanoTime now) {
  if (table_.find_mut(tuple) != nullptr) return true;  // already resident
  if (table_.size() >= cfg_.capacity) {
    ++stats_.install_rejected_full;
    return false;
  }
  OffloadedSession s;
  s.installed = now;
  s.last_seen = now;
  s.action = action;
  if (!table_.insert(tuple, s)) {
    ++stats_.install_rejected_full;
    return false;
  }
  ++stats_.installs;
  return true;
}

bool SessionOffload::remove(const FiveTuple& tuple) {
  return table_.erase(tuple);
}

std::size_t SessionOffload::age(NanoTime now) {
  std::size_t reclaimed = 0;
  table_.for_each_erase_if([&](const FiveTuple&, const OffloadedSession& s) {
    const bool keep = now - s.last_seen <= cfg_.idle_timeout;
    if (!keep) ++reclaimed;
    return keep;
  });
  stats_.aged_out += reclaimed;
  return reclaimed;
}

std::optional<OffloadedSession> SessionOffload::peek(
    const FiveTuple& tuple) const {
  return table_.find(tuple);
}

}  // namespace albatross
