#include "nic/pkt_dir.hpp"

#include <algorithm>

namespace albatross {

void PktDir::configure_pod(PodId pod, PktDirConfig cfg) {
  if (pod_cfgs_.size() <= pod) pod_cfgs_.resize(pod + 1);
  pod_cfgs_[pod] = std::move(cfg);
}

const PktDirConfig& PktDir::pod_config(PodId pod) const {
  if (pod < pod_cfgs_.size()) return pod_cfgs_[pod];
  return default_cfg_;
}

PktDirDecision PktDir::decide(const PktDirConfig& cfg, bool is_protocol,
                              const FiveTuple& tuple, std::size_t frame_len) {
  PktDirDecision d;
  if (is_protocol && cfg.priority_queues_enabled) {
    ++stats_.priority;
    d.cls = PktClass::kPriority;
    d.delivery = DeliveryMode::kWholePacket;  // protocol pkts never split
    return d;
  }
  const bool pinned =
      std::find(cfg.rss_pinned_dst_ports.begin(),
                cfg.rss_pinned_dst_ports.end(),
                tuple.dst_port) != cfg.rss_pinned_dst_ports.end();
  d.cls = pinned ? PktClass::kRss : cfg.default_class;
  d.cls == PktClass::kRss ? ++stats_.rss : ++stats_.plb;
  d.delivery = (cfg.data_delivery == DeliveryMode::kHeaderOnly &&
                frame_len > cfg.header_split_threshold)
                   ? DeliveryMode::kHeaderOnly
                   : DeliveryMode::kWholePacket;
  return d;
}

PktDirDecision PktDir::classify(PodId pod, const Packet& pkt,
                                const ParsedPacket& parsed) {
  return decide(pod_config(pod), parsed.is_protocol_packet(),
                parsed.flow_tuple(), pkt.size());
}

PktDirDecision PktDir::classify_annotated(PodId pod, const Packet& pkt) {
  const bool is_protocol =
      (pkt.tuple.proto == IpProto::kTcp &&
       (pkt.tuple.src_port == kBgpPort || pkt.tuple.dst_port == kBgpPort)) ||
      (pkt.tuple.proto == IpProto::kUdp && pkt.tuple.dst_port == kBfdPort);
  return decide(pod_config(pod), is_protocol, pkt.tuple, pkt.size());
}

}  // namespace albatross
