#include "nic/dma.hpp"

namespace albatross {

NanoTime DmaChannel::transfer(NanoTime now, std::size_t bytes) {
  ++stats_.transfers;
  stats_.bytes += bytes;
  const bool faulty = now < fault_until_;
  if (faulty) ++stats_.faulted_transfers;
  const double slow = faulty ? fault_slowdown_ : 1.0;
  const NanoTime wire_ns = nanos_from_double(
      static_cast<double>(bytes) * 8.0 * slow / cfg_.bandwidth_gbps);
  const NanoTime start = channel_free_ > now ? channel_free_ : now;
  // Descriptor pressure: if the backlog (time the channel is booked
  // ahead) exceeds what the descriptor ring can cover at the average
  // per-transfer time, the submitter stalls for one ring slot.
  const NanoTime backlog = start - now;
  const NanoTime per_desc = wire_ns > Nanos{} ? wire_ns : Nanos{1};
  if (backlog / per_desc > std::int64_t{cfg_.descriptors}) {
    ++stats_.descriptor_stalls;
  }
  channel_free_ = start + wire_ns;
  return channel_free_ + cfg_.base_latency;
}

void DmaChannel::transfer_burst(std::span<const NanoTime> times,
                                std::span<const std::size_t> sizes,
                                std::span<NanoTime> out) {
  for (std::size_t i = 0; i < times.size(); ++i) {
    out[i] = transfer(times[i], sizes[i]);
  }
}

}  // namespace albatross
