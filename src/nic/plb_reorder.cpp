#include "nic/plb_reorder.hpp"

#include <cassert>

namespace albatross {

ReorderQueue::ReorderQueue(std::uint32_t entries, NanoTime timeout)
    : entries_(entries),
      timeout_(timeout),
      fifo_psn_(entries),
      fifo_ts_(entries),
      buf_(entries),
      buf_meta_(entries),
      bitmap_(entries) {
  // Power-of-two size required: slot() masks instead of dividing, the
  // same trick the hardware pulls with psn[11:0].
  assert((entries_ & (entries_ - 1)) == 0 && entries_ >= 2);
}

std::optional<Psn> ReorderQueue::reserve(NanoTime now) {
  if (tail_ - head_ >= entries_) {
    ++stats_.fifo_full_drops;
    return std::nullopt;
  }
  const Psn psn = tail_;
  const std::uint32_t s = slot(psn);
  fifo_psn_[s] = psn;
  fifo_ts_[s] = now;
  ++tail_;
  ++stats_.reserved;
  if (probe_ != nullptr) probe_->on_reserve(ordq_id_, psn, now);
  return psn;
}

void ReorderQueue::writeback(PacketPtr pkt, const PlbMeta& meta, NanoTime now,
                             std::vector<ReorderEgress>& out) {
  const std::uint32_t in_flight = tail_ - head_;
  // Hardware legal check: 12-bit offset of meta.psn from head_ptr must
  // fall inside the FIFO window. Identical to comparing only psn[11:0]
  // against the 12-bit head/tail pointers.
  const std::uint32_t off = Psn12::distance(head_, meta.psn, entries_);
  const bool legal = in_flight > 0 && (off < in_flight || in_flight == entries_);
  if (!legal) {
    // Essentially a timed-out packet: best-effort transmission without
    // reordering (or silent release when it was a drop notification).
    ++stats_.legal_check_fail;
    if (!meta.drop && pkt != nullptr) {
      ++stats_.best_effort_tx;
      if (probe_ != nullptr) probe_->on_best_effort(ordq_id_, meta.psn, now);
      out.push_back(ReorderEgress{std::move(pkt), false, meta});
    }
    return;
  }
  const std::uint32_t s = slot(meta.psn);
  const Psn expected = head_ + off;  // unique in-window PSN for this slot
  const bool stale = meta.psn != expected;
  if (stale) {
    // Stale packet whose low 12 bits alias into the window; it will be
    // caught by the reorder check's full-PSN comparison (Case 3).
    ++stats_.legal_check_alias;
  }
  if (bitmap_[s].valid) {
    // Slot collision: two full PSNs sharing the same 12-bit slot have
    // both written back before the reorder check visited it. Only the
    // in-window PSN may hold the slot — the stale party leaves
    // best-effort right here (drop notifications release silently).
    // Overwriting instead destroys a packet with no emission and no
    // counter, which the wire-conservation ledger flags as loss.
    if (stale) {
      if (!meta.drop && pkt != nullptr) {
        ++stats_.best_effort_tx;
        if (probe_ != nullptr) probe_->on_best_effort(ordq_id_, meta.psn, now);
        out.push_back(ReorderEgress{std::move(pkt), false, meta});
      }
      return;
    }
    if (!bitmap_[s].drop && buf_[s] != nullptr) {
      ++stats_.best_effort_tx;
      if (probe_ != nullptr) {
        probe_->on_best_effort(ordq_id_, bitmap_[s].psn, now);
      }
      out.push_back(ReorderEgress{std::move(buf_[s]), false, buf_meta_[s]});
    } else {
      buf_[s].reset();
    }
  }
  buf_[s] = std::move(pkt);
  buf_meta_[s] = meta;
  bitmap_[s] = BitmapEntry{true, meta.drop, meta.psn};
  if (probe_ != nullptr) probe_->on_writeback(ordq_id_, meta.psn, meta.drop, now);
}

void ReorderQueue::drain(NanoTime now, std::vector<ReorderEgress>& out) {
  // Injected module stall: the reorder check clock is frozen, nothing
  // leaves the queue until the stall window ends.
  if (now < stuck_until_) return;
  while (head_ != tail_) {
    const std::uint32_t s = slot(head_);
    BitmapEntry& be = bitmap_[s];

    if (be.valid && be.psn == head_) {
      // Case 4: returned and PSN matches -> in-order transmit (or a
      // drop-flag release, Fig. 12, freeing resources with no emission).
      if (be.drop) {
        ++stats_.drop_releases;
        buf_[s].reset();
      } else {
        ++stats_.in_order_tx;
        out.push_back(ReorderEgress{std::move(buf_[s]), true, buf_meta_[s]});
      }
      if (probe_ != nullptr) {
        probe_->on_resolve(ordq_id_, head_,
                           be.drop ? ReorderResolution::kDropFlag
                                   : ReorderResolution::kInOrder,
                           fifo_ts_[s], now);
      }
      be = BitmapEntry{};
      ++head_;
      continue;
    }

    if (now - fifo_ts_[s] > timeout_) {
      // Case 1: head queued beyond the timeout -> release directly.
      ++stats_.timeout_releases;
      if (be.valid) {
        // An aliased stale packet occupies the slot; push it out
        // best-effort so the buffer is not leaked — unless it is a
        // drop notification, which must never reach the wire.
        if (!be.drop && buf_[s] != nullptr) {
          ++stats_.best_effort_tx;
          if (probe_ != nullptr) probe_->on_best_effort(ordq_id_, be.psn, now);
          out.push_back(ReorderEgress{std::move(buf_[s]), false, buf_meta_[s]});
        } else {
          buf_[s].reset();
        }
        be = BitmapEntry{};
      }
      if (probe_ != nullptr) {
        probe_->on_resolve(ordq_id_, head_, ReorderResolution::kTimeout,
                           fifo_ts_[s], now);
      }
      ++head_;
      continue;
    }

    if (be.valid && be.psn != head_) {
      // Case 3: a timed-out packet sneaked past the legal check; send it
      // best-effort (drop notifications release silently) and keep
      // waiting for the true head.
      if (!be.drop && buf_[s] != nullptr) {
        ++stats_.best_effort_tx;
        if (probe_ != nullptr) probe_->on_best_effort(ordq_id_, be.psn, now);
        out.push_back(ReorderEgress{std::move(buf_[s]), false, buf_meta_[s]});
      } else {
        buf_[s].reset();
      }
      be = BitmapEntry{};
      continue;
    }

    // Case 2: not yet processed by the GW pod -> busy-wait (the event
    // loop re-enters on the next write-back or the head deadline).
    break;
  }
}

std::optional<NanoTime> ReorderQueue::head_deadline() const {
  if (head_ == tail_) return std::nullopt;
  const NanoTime deadline = fifo_ts_[slot(head_)] + timeout_;
  // While stalled the check cannot run, so the effective deadline is the
  // stall end; returning the past deadline would re-arm a timer at the
  // current virtual time forever.
  return deadline > stuck_until_ ? deadline : stuck_until_;
}

std::size_t ReorderQueue::bram_bytes() const {
  // FIFO: PSN(4B) + timestamp(6B used of 8) per entry; BITMAP: valid +
  // drop + PSN ~ 5B; BUF descriptor: 8B pointer/handle per entry (packet
  // payload lives in the shared payload buffer, not per-queue BRAM).
  return entries_ * (4 + 6 + 5 + 8);
}

}  // namespace albatross
