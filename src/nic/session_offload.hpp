// FPGA session offload — the first item on §7's future-offloading plan.
// Write-heavy stateful NFs suffer under PLB (multi-core state writes)
// and under RSS (single-core heavy hitters); hosting the *session* on
// the FPGA sidesteps both: once the CPU establishes a session and
// installs it, subsequent packets of the flow are matched, counted and
// forwarded entirely inside the NIC — never crossing PCIe at all.
//
// The table is BRAM-bounded (default 64K sessions), updated per-packet
// at the FPGA clock (the hardware equivalent of the per-session
// counters that melt CPU caches), and aged by an idle timeout.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

struct SessionOffloadConfig {
  std::size_t capacity = 65'536;      ///< BRAM-bounded session slots
  NanoTime fpga_process_ns = NanoTime{400};     ///< fast-path per-packet latency
  NanoTime idle_timeout = 30 * kSecond;
};

struct OffloadedSession {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  NanoTime installed = NanoTime{0};
  NanoTime last_seen = NanoTime{0};
  std::uint32_t action = 0;  ///< opaque forward action (e.g. NAT index)
};

struct SessionOffloadStats {
  std::uint64_t fast_path_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t installs = 0;
  std::uint64_t install_rejected_full = 0;
  std::uint64_t aged_out = 0;
};

/// BRAM is the default 64K-session table (45 B/slot, bram_bytes());
/// cycles cover the match+count fast path, not a Tab. 4 pipeline stage.
// fpga: lut=30'000, bram_bits=23'592'960, cycles=40
class SessionOffload {
 public:
  explicit SessionOffload(SessionOffloadConfig cfg = {});

  /// Per-packet fast-path attempt. On hit the FPGA updates the session
  /// counters and the packet never reaches the CPU; returns the
  /// fast-path processing latency. nullopt = miss (slow path to CPU).
  std::optional<NanoTime> fast_path(const FiveTuple& tuple,
                                    std::size_t bytes, NanoTime now);

  /// CPU-side install after session establishment. False when the BRAM
  /// table is full (flow stays on the CPU path).
  bool install(const FiveTuple& tuple, std::uint32_t action, NanoTime now);
  bool remove(const FiveTuple& tuple);

  /// Ages idle sessions; returns the number reclaimed.
  std::size_t age(NanoTime now);

  [[nodiscard]] std::optional<OffloadedSession> peek(
      const FiveTuple& tuple) const;
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const SessionOffloadStats& stats() const { return stats_; }
  [[nodiscard]] const SessionOffloadConfig& config() const { return cfg_; }

  /// BRAM bytes for the ledger: key(13B) + session state (~32B) per slot.
  [[nodiscard]] std::size_t bram_bytes() const {
    return cfg_.capacity * (13 + 32);
  }

 private:
  SessionOffloadConfig cfg_;
  CuckooTable<FiveTuple, OffloadedSession> table_;
  SessionOffloadStats stats_;
};

}  // namespace albatross
