#include "nic/nic_pipeline.hpp"

#include <array>
#include <stdexcept>

#include "common/hash.hpp"

namespace albatross {

NicPipeline::NicPipeline(NicPipelineConfig cfg)
    : cfg_(cfg), limiter_(cfg.gop), basic_(cfg.payload_slots) {
  cfg_.dma_rx.base_latency = cfg_.timings.dma_rx_base_ns();
  cfg_.dma_tx.base_latency = cfg_.timings.dma_tx_base_ns();
}

NicPipeline::PodSlice& NicPipeline::slice(PodId pod) {
  if (pod >= pods_.size()) {
    throw std::out_of_range("NicPipeline: unregistered pod");
  }
  return pods_[pod];
}

void NicPipeline::register_pod(PodId pod, const PlbEngineConfig& plb,
                               const PktDirConfig& dir, LbMode mode) {
  if (pods_.size() <= pod) pods_.resize(pod + 1);
  PodSlice& s = pods_[pod];
  s.plb = std::make_unique<PlbEngine>(plb);
  s.mode = mode;
  s.rx_queues = plb.num_rx_queues;
  s.dma_rx = DmaChannel(cfg_.dma_rx);
  s.dma_tx = DmaChannel(cfg_.dma_tx);
  pkt_dir_.configure_pod(pod, dir);
}

void NicPipeline::set_pod_mode(PodId pod, LbMode mode) {
  slice(pod).mode = mode;
}

LbMode NicPipeline::pod_mode(PodId pod) const { return pods_[pod].mode; }

void NicPipeline::enable_session_offload(PodId pod, SessionOffloadConfig cfg) {
  slice(pod).offload = std::make_unique<SessionOffload>(cfg);
}

bool NicPipeline::session_offload_enabled(PodId pod) const {
  return pod < pods_.size() && pods_[pod].offload != nullptr;
}

SessionOffload& NicPipeline::session_offload(PodId pod) {
  return *slice(pod).offload;
}

void NicPipeline::enable_dpu_tier(PodId pod, DpuTierConfig cfg) {
  PodSlice& s = slice(pod);
  if (s.offload == nullptr) {
    s.offload = std::make_unique<SessionOffload>(cfg.fpga);
  }
  s.dpu = std::make_unique<DpuTier>(cfg, *s.offload);
}

bool NicPipeline::dpu_tier_enabled(PodId pod) const {
  return pod < pods_.size() && pods_[pod].dpu != nullptr;
}

DpuTier& NicPipeline::dpu_tier(PodId pod) { return *slice(pod).dpu; }

NanoTime NicPipeline::rx_pipeline_latency(bool plb) const {
  NanoTime t = cfg_.timings.basic_rx_ns();
  if (cfg_.gop_enabled) t += cfg_.timings.overload_det_rx_ns();
  if (plb) t += cfg_.timings.plb_rx_ns();
  return t;
}

IngressResult NicPipeline::ingress(PacketPtr pkt, PodId pod, NanoTime now) {
  PodSlice& s = slice(pod);
  IngressResult r;
  pkt->pod = pod;

  // Basic pipeline RX: VLAN decap + parse/annotate (+ split later).
  std::optional<std::uint16_t> vlan;
  basic_.rx_process(*pkt, vlan);
  NanoTime t = now + cfg_.timings.basic_rx_ns();

  // Gateway overload protection: the rate limiter sees every data
  // packet before it can reach the CPU. Protocol packets bypass it.
  const PktDirDecision dir = pkt_dir_.classify_annotated(pod, *pkt);
  pkt->pkt_class = dir.cls;
  r.cls = dir.cls;

  if (dir.cls != PktClass::kPriority && cfg_.gop_enabled) {
    t += cfg_.timings.overload_det_rx_ns();
    const RlVerdict v = limiter_.admit(pkt->vni, now);
    if (v == RlVerdict::kDropStage2 || v == RlVerdict::kDropPreMeter) {
      r.outcome = IngressOutcome::kDroppedRateLimit;
      r.pkt = std::move(pkt);
      return r;
    }
  }

  // Offload fast path: with the DPU tier enabled the hierarchical
  // FPGA -> DPU lookup runs; otherwise the plain FPGA session table.
  // Either way a hit is matched, counted and forwarded without ever
  // crossing PCIe.
  if (dir.cls != PktClass::kPriority) {
    if (s.dpu != nullptr) {
      if (const auto sv = s.dpu->serve(pkt->tuple, pkt->size(), now, t)) {
        r.outcome = IngressOutcome::kOffloaded;
        r.deliver_time = t + sv->latency + cfg_.timings.basic_tx_ns();
        r.pkt = std::move(pkt);
        return r;
      }
    } else if (s.offload != nullptr) {
      if (const auto fpga_ns =
              s.offload->fast_path(pkt->tuple, pkt->size(), now)) {
        r.outcome = IngressOutcome::kOffloaded;
        r.deliver_time = t + *fpga_ns + cfg_.timings.basic_tx_ns();  // wire
        r.pkt = std::move(pkt);
        return r;
      }
    }
  }

  // Queue selection.
  if (dir.cls == PktClass::kPriority) {
    r.rx_queue = kPriorityQueue;
  } else if (dir.cls == PktClass::kPlb && s.mode == LbMode::kPlb) {
    t += cfg_.timings.plb_rx_ns();
    const auto d = s.plb->dispatch(*pkt, now);
    if (!d) {
      r.outcome = IngressOutcome::kDroppedReorderFull;
      r.pkt = std::move(pkt);
      return r;
    }
    r.rx_queue = d->rx_queue;
  } else {
    // RSS: flow-affine Toeplitz hash over the (inner) 5-tuple.
    r.rx_queue =
        static_cast<std::uint16_t>(rss_hash(pkt->tuple) % s.rx_queues);
    pkt->rx_queue = r.rx_queue;
  }

  // Header-payload split (data packets only) before the PCIe hop.
  if (dir.cls != PktClass::kPriority &&
      dir.delivery == DeliveryMode::kHeaderOnly) {
    PlbMeta meta;
    const bool had_meta = pkt->strip_plb_meta(meta);
    if (const auto slot_id = basic_.split(*pkt)) {
      meta.header_only = true;
      meta.payload_id = *slot_id;
    }
    if (had_meta || meta.header_only) pkt->attach_plb_meta(meta);
  }

  // DMA to host memory; per-pod channel (its VFs' share of the PCIe).
  r.deliver_time = s.dma_rx.transfer(t, pkt->size());
  pkt->nic_ingress_done = r.deliver_time;
  r.outcome = IngressOutcome::kDelivered;
  r.pkt = std::move(pkt);
  return r;
}

void NicPipeline::ingress_burst(std::span<PacketPtr> pkts,
                                std::span<const NanoTime> arrivals, PodId pod,
                                std::span<IngressResult> out) {
  const std::size_t n = pkts.size();
  PodSlice& s = slice(pod);
  std::array<NanoTime, kMaxIngressBurst> t;
  std::array<DeliveryMode, kMaxIngressBurst> delivery;
  std::array<bool, kMaxIngressBurst> live{};

  // Stage 1: basic RX parse + pkt_dir classification for the burst.
  for (std::size_t i = 0; i < n; ++i) {
    pkts[i]->pod = pod;
    std::optional<std::uint16_t> vlan;
    basic_.rx_process(*pkts[i], vlan);
    t[i] = arrivals[i] + cfg_.timings.basic_rx_ns();
    const PktDirDecision dir = pkt_dir_.classify_annotated(pod, *pkts[i]);
    pkts[i]->pkt_class = dir.cls;
    delivery[i] = dir.delivery;
    out[i].cls = dir.cls;
    live[i] = true;
  }

  // Stage 2: gateway overload protection over the burst's data packets.
  if (cfg_.gop_enabled) {
    std::array<Vni, kMaxIngressBurst> vnis;
    std::array<NanoTime, kMaxIngressBurst> times;
    std::array<RlVerdict, kMaxIngressBurst> verdicts;
    std::array<std::size_t, kMaxIngressBurst> idx;
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i].cls == PktClass::kPriority) continue;
      t[i] += cfg_.timings.overload_det_rx_ns();
      vnis[m] = pkts[i]->vni;
      times[m] = arrivals[i];
      idx[m] = i;
      ++m;
    }
    limiter_.admit_burst(std::span(vnis.data(), m), std::span(times.data(), m),
                         std::span(verdicts.data(), m));
    for (std::size_t j = 0; j < m; ++j) {
      if (verdicts[j] == RlVerdict::kDropStage2 ||
          verdicts[j] == RlVerdict::kDropPreMeter) {
        const std::size_t i = idx[j];
        out[i].outcome = IngressOutcome::kDroppedRateLimit;
        out[i].pkt = std::move(pkts[i]);
        live[i] = false;
      }
    }
  }

  // Stage 3: offload fast path — hierarchical FPGA -> DPU when the
  // tier is enabled, plain FPGA session table otherwise. Serving in
  // index order mutates exactly the state the scalar path would, so
  // burst results stay bit-identical to sequential ingress() calls.
  if (s.dpu != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i] || out[i].cls == PktClass::kPriority) continue;
      if (const auto sv =
              s.dpu->serve(pkts[i]->tuple, pkts[i]->size(), arrivals[i],
                           t[i])) {
        out[i].outcome = IngressOutcome::kOffloaded;
        out[i].deliver_time = t[i] + sv->latency + cfg_.timings.basic_tx_ns();
        out[i].pkt = std::move(pkts[i]);
        live[i] = false;
      }
    }
  } else if (s.offload != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i] || out[i].cls == PktClass::kPriority) continue;
      if (const auto fpga_ns =
              s.offload->fast_path(pkts[i]->tuple, pkts[i]->size(),
                                   arrivals[i])) {
        out[i].outcome = IngressOutcome::kOffloaded;
        out[i].deliver_time = t[i] + *fpga_ns + cfg_.timings.basic_tx_ns();
        out[i].pkt = std::move(pkts[i]);
        live[i] = false;
      }
    }
  }

  // Stage 4: queue selection — PLB spray for the burst's PLB-class
  // packets (PSNs in arrival order), Toeplitz RSS for the rest.
  {
    std::array<Packet*, kMaxIngressBurst> plb_pkts;
    std::array<NanoTime, kMaxIngressBurst> plb_times;
    std::array<std::optional<PlbDispatchResult>, kMaxIngressBurst> plb_out;
    std::array<std::size_t, kMaxIngressBurst> idx;
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      if (out[i].cls == PktClass::kPriority) {
        out[i].rx_queue = kPriorityQueue;
      } else if (out[i].cls == PktClass::kPlb && s.mode == LbMode::kPlb) {
        t[i] += cfg_.timings.plb_rx_ns();
        plb_pkts[m] = pkts[i].get();
        plb_times[m] = arrivals[i];
        idx[m] = i;
        ++m;
      } else {
        out[i].rx_queue = static_cast<std::uint16_t>(
            rss_hash(pkts[i]->tuple) % s.rx_queues);
        pkts[i]->rx_queue = out[i].rx_queue;
      }
    }
    s.plb->dispatch_burst(std::span<Packet* const>(plb_pkts.data(), m),
                          std::span(plb_times.data(), m),
                          std::span(plb_out.data(), m));
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t i = idx[j];
      if (!plb_out[j]) {
        out[i].outcome = IngressOutcome::kDroppedReorderFull;
        out[i].pkt = std::move(pkts[i]);
        live[i] = false;
        continue;
      }
      out[i].rx_queue = plb_out[j]->rx_queue;
    }
  }

  // Stage 5: header-payload split before the PCIe hop.
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i] || out[i].cls == PktClass::kPriority ||
        delivery[i] != DeliveryMode::kHeaderOnly) {
      continue;
    }
    PlbMeta meta;
    const bool had_meta = pkts[i]->strip_plb_meta(meta);
    if (const auto slot_id = basic_.split(*pkts[i])) {
      meta.header_only = true;
      meta.payload_id = *slot_id;
    }
    if (had_meta || meta.header_only) pkts[i]->attach_plb_meta(meta);
  }

  // Stage 6: RX DMA for the survivors, serialised on the pod channel.
  {
    std::array<NanoTime, kMaxIngressBurst> times;
    std::array<std::size_t, kMaxIngressBurst> sizes;
    std::array<NanoTime, kMaxIngressBurst> done;
    std::array<std::size_t, kMaxIngressBurst> idx;
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      times[m] = t[i];
      sizes[m] = pkts[i]->size();
      idx[m] = i;
      ++m;
    }
    s.dma_rx.transfer_burst(std::span(times.data(), m),
                            std::span(sizes.data(), m),
                            std::span(done.data(), m));
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t i = idx[j];
      out[i].deliver_time = done[j];
      pkts[i]->nic_ingress_done = done[j];
      out[i].outcome = IngressOutcome::kDelivered;
      out[i].pkt = std::move(pkts[i]);
    }
  }
}

NanoTime NicPipeline::tx_submit(PodId pod, NanoTime now, std::size_t bytes) {
  return slice(pod).dma_tx.transfer(now, bytes);
}

EgressEmission NicPipeline::finish_tx(PacketPtr pkt, NanoTime now,
                                      bool in_order, bool was_plb) {
  EgressEmission e;
  e.wire_time = now + cfg_.timings.basic_tx_ns() +
                (was_plb ? cfg_.timings.plb_tx_ns() : NanoTime{});
  e.in_order = in_order;
  e.pkt = std::move(pkt);
  return e;
}

std::vector<EgressEmission> NicPipeline::egress(PacketPtr pkt, PodId pod,
                                                NanoTime now) {
  std::vector<EgressEmission> out;
  egress_into(std::move(pkt), pod, now, out);
  return out;
}

void NicPipeline::egress_into(PacketPtr pkt, PodId pod, NanoTime now,
                              std::vector<EgressEmission>& out) {
  PodSlice& s = slice(pod);

  PlbMeta meta;
  const bool has_meta = pkt->has_plb_meta() && pkt->peek_plb_meta(meta);
  if (!has_meta || s.mode == LbMode::kRss) {
    // RSS / priority path: no reordering, straight to the deparser.
    if (has_meta) pkt->strip_plb_meta(meta);
    if (basic_.tx_process(*pkt, meta, std::nullopt)) {
      out.push_back(finish_tx(std::move(pkt), now, true, false));
    }
    return;
  }

  // PLB path: legal check + reorder; the engine may emit several
  // packets (this one plus unblocked predecessors). The scratch vector
  // keeps its capacity across calls — egress runs once per packet, and
  // a fresh vector here showed up as an allocator hot spot.
  reorder_scratch_.clear();
  s.plb->writeback(std::move(pkt), now, reorder_scratch_);
  for (auto& e : reorder_scratch_) {
    if (e.pkt == nullptr) continue;
    if (basic_.tx_process(*e.pkt, e.meta, std::nullopt)) {
      out.push_back(finish_tx(std::move(e.pkt), now, e.in_order, true));
    }
    // tx_process returning false = payload already released (split
    // packet's best-effort drop), counted by BasicPipeline stats.
  }
}

std::vector<EgressEmission> NicPipeline::drain_expired(PodId pod,
                                                       NanoTime now) {
  std::vector<EgressEmission> out;
  drain_expired_into(pod, now, out);
  return out;
}

void NicPipeline::drain_expired_into(PodId pod, NanoTime now,
                                     std::vector<EgressEmission>& out) {
  PodSlice& s = slice(pod);
  reorder_scratch_.clear();
  s.plb->drain_all(now, reorder_scratch_);
  for (auto& e : reorder_scratch_) {
    if (e.pkt == nullptr) continue;
    if (basic_.tx_process(*e.pkt, e.meta, std::nullopt)) {
      out.push_back(finish_tx(std::move(e.pkt), now, e.in_order, true));
    }
  }
}


std::optional<NanoTime> NicPipeline::next_reorder_deadline(PodId pod) const {
  if (pod >= pods_.size() || pods_[pod].plb == nullptr) return std::nullopt;
  return pods_[pod].plb->next_deadline();
}

}  // namespace albatross
