// The basic pipeline (App. A): packet reception/transmission, VLAN
// encap/decap for SR-IOV VF steering, parsing/deparsing, and the
// header-payload split with its on-NIC payload buffer. Split mode keeps
// jumbo payloads on the FPGA and ships only headers over PCIe, then
// reassembles at the egress deparser — unless the payload was already
// released, in which case the header is dropped (the best-effort rule in
// §4.1's legal check discussion).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/packet.hpp"
#include "packet/parser.hpp"

namespace albatross {

/// Fixed-slot payload store. Capacity pressure evicts the oldest
/// payload (FIFO), modelling the NIC releasing buffers it can no longer
/// afford to hold for straggling headers.
// fpga: lut=12'000, bram_bits=16'777'216, cycles=0
class PayloadBuffer {
 public:
  /// Slot index occupies the low 13 bits of a payload id; the top 3 bits
  /// carry a generation tag so a stale header whose slot was reused is
  /// detected (and dropped) instead of reassembled with a stranger's
  /// payload.
  static constexpr std::uint16_t kSlotBits = 13;
  static constexpr std::uint16_t kSlotMask = (1u << kSlotBits) - 1;

  explicit PayloadBuffer(std::uint16_t slots = 8192);

  /// Stores `payload`; returns the payload id (slot | generation),
  /// evicting the oldest entry if full.
  std::uint16_t store(std::vector<std::uint8_t> payload);

  /// Fetches and releases a payload; nullopt if it was evicted.
  std::optional<std::vector<std::uint8_t>> fetch_release(std::uint16_t id);

  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Resident bytes, feeding the FPGA BRAM ledger.
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_; }

 private:
  struct Slot {
    std::vector<std::uint8_t> payload;
    bool valid = false;
    std::uint64_t age = 0;  // store sequence, for FIFO eviction
  };

  std::vector<Slot> slots_;
  std::uint64_t next_age_ = 1;
  std::uint16_t cursor_ = 0;
  std::size_t in_use_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

struct BasicPipelineStats {
  std::uint64_t rx_frames = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t vlan_decap = 0;
  std::uint64_t vlan_encap = 0;
  std::uint64_t split_headers = 0;
  std::uint64_t reassembled = 0;
  std::uint64_t headers_dropped_payload_gone = 0;
  std::uint64_t parse_errors = 0;
};

/// Byte split point in header-payload-split mode: enough for the whole
/// overlay header stack.
constexpr std::size_t kHeaderSplitBytes = 128;

/// Parser / deparser / MAC logic (Tab. 5 "Basic Pipeline" row less the
/// payload buffer, carried by PayloadBuffer above); 290 RX + 420 TX
/// cycles (Tab. 4).
// fpga: lut=379'591, bram_bits=84'800'000, cycles=710
class BasicPipeline {
 public:
  explicit BasicPipeline(std::uint16_t payload_slots = 8192);

  /// RX direction: VLAN decap (returns the VF-steering vlan id if the
  /// frame was tagged) and metadata annotation via the parser. Returns
  /// false on a parse error (packet still usable via annotations).
  bool rx_process(Packet& pkt, std::optional<std::uint16_t>& vlan_id);

  /// Applies header-payload split: moves the tail beyond
  /// kHeaderSplitBytes into the payload buffer, truncating the packet.
  /// Returns the payload slot id, or nullopt when below the threshold.
  std::optional<std::uint16_t> split(Packet& pkt);

  /// TX direction: reassembles a split packet (false = payload evicted,
  /// drop the header) and re-applies the VLAN tag when requested.
  bool tx_process(Packet& pkt, const PlbMeta& meta,
                  std::optional<std::uint16_t> vlan_id);

  [[nodiscard]] const BasicPipelineStats& stats() const { return stats_; }
  PayloadBuffer& payload_buffer() { return payloads_; }

 private:
  PayloadBuffer payloads_;
  BasicPipelineStats stats_;
};

}  // namespace albatross
