// pkt_dir: the programmable packet-direction table at the head of the
// NIC ingress pipeline (§3.2, Fig. 1). It splits arriving traffic into
//   - priority pkts : control-plane protocols (BGP/BFD) -> priority queues
//   - RSS pkts      : stateful / low-volume classes kept flow-affine
//   - PLB pkts      : bulk data packets sprayed per-packet
// Each GW pod programs its own slice: per-class delivery mode (whole
// packet vs header-only) and explicit overrides for flows that must not
// be sprayed (Zoonet probes, health checks, vSwitch-learning packets).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/packet.hpp"
#include "packet/parser.hpp"
#include "tables/cuckoo_table.hpp"

namespace albatross {

enum class DeliveryMode : std::uint8_t { kWholePacket, kHeaderOnly };

/// Per-pod pkt_dir programming.
struct PktDirConfig {
  /// Default class for tenant data packets.
  PktClass default_class = PktClass::kPlb;
  /// Steer protocol packets (BGP/BFD) into the dedicated priority
  /// queues (§4.3's second GOP technique). Disabling this is the
  /// ablation: protocol packets then ride the data path and share its
  /// fate under overload — the failure mode that takes BFD (and with it
  /// BGP) down exactly when the gateway is busiest.
  bool priority_queues_enabled = true;
  DeliveryMode data_delivery = DeliveryMode::kWholePacket;
  /// Frames larger than this are delivered header-only when the pod
  /// enables split mode (jumbo-frame PCIe relief, App. A).
  std::size_t header_split_threshold = 512;
  /// Ports treated as stateful probes and pinned to RSS regardless of
  /// the default class (Zoonet, health checks).
  std::vector<std::uint16_t> rss_pinned_dst_ports;
};

struct PktDirStats {
  std::uint64_t priority = 0;
  std::uint64_t rss = 0;
  std::uint64_t plb = 0;
};

struct PktDirDecision {
  PktClass cls = PktClass::kPlb;
  DeliveryMode delivery = DeliveryMode::kWholePacket;
};

/// One pkt_dir instance serves the whole NIC; per-pod slices are rows in
/// its config table (SR-IOV virtualisation splits the table, §5).
// fpga: lut=6'500, bram_bits=262'144, cycles=12
class PktDir {
 public:
  void configure_pod(PodId pod, PktDirConfig cfg);
  [[nodiscard]] const PktDirConfig& pod_config(PodId pod) const;

  /// Classifies a parsed packet for its pod.
  PktDirDecision classify(PodId pod, const Packet& pkt,
                          const ParsedPacket& parsed);

  /// Classification on annotated metadata only (fast path for synthetic
  /// frames: protocol packets always carry real headers).
  PktDirDecision classify_annotated(PodId pod, const Packet& pkt);

  [[nodiscard]] const PktDirStats& stats() const { return stats_; }

 private:
  PktDirDecision decide(const PktDirConfig& cfg, bool is_protocol,
                        const FiveTuple& tuple, std::size_t frame_len);

  std::vector<PktDirConfig> pod_cfgs_;
  PktDirConfig default_cfg_;
  PktDirStats stats_;
};

}  // namespace albatross
