#include "nic/resources.hpp"

namespace albatross {

std::vector<ModuleUsage> FpgaResourceModel::ledger(
    const std::vector<const PlbEngine*>& engines,
    const TenantRateLimiter& limiter,
    std::uint64_t payload_buffer_bytes) const {
  std::uint64_t plb_bits = 0;
  for (const auto* e : engines) {
    for (std::size_t q = 0; q < e->queue_count(); ++q) {
      plb_bits += e->queue(q).bram_bytes() * 8;
    }
  }
  const std::uint64_t gop_bits = limiter.sram_bytes() * 8;
  const std::uint64_t payload_bits = payload_buffer_bytes * 8;

  const auto frac = [this](std::uint64_t bits) {
    return static_cast<double>(bits) / static_cast<double>(spec_.bram_bits);
  };

  std::vector<ModuleUsage> rows;
  // Basic pipeline: parser/deparser/MAC logic measured at 42.9% LUT;
  // its BRAM combines fixed parser/FIFO memories (~32%) with the
  // configured payload buffer, reported structurally.
  rows.push_back(ModuleUsage{"Basic Pipeline", 0.429,
                             0.32 + frac(payload_bits), payload_bits});
  // Overload detection: the meter state is held in distributed
  // LUTRAM/URAM, not block RAM — hence the paper's 0% BRAM — but the
  // structural SRAM bits are still accounted for sizing.
  rows.push_back(ModuleUsage{"Overload Det.", 0.020, 0.0, gop_bits});
  rows.push_back(ModuleUsage{"PLB", 0.126, frac(plb_bits), plb_bits});
  rows.push_back(ModuleUsage{"DMA", 0.025, 0.013, 0});

  ModuleUsage sum{"Sum", 0.0, 0.0, 0};
  for (const auto& r : rows) {
    sum.lut_fraction += r.lut_fraction;
    sum.bram_fraction += r.bram_fraction;
    sum.bram_bits_structural += r.bram_bits_structural;
  }
  rows.push_back(sum);
  return rows;
}

}  // namespace albatross
