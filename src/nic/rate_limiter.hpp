// Gateway overload protection (GOP, §4.3): the two-stage tenant rate
// limiter that protects the CPU from dominant tenants using ~2 MB of
// FPGA SRAM for millions of tenants (vs >200 MB for naive per-tenant
// meters).
//
// Pipeline per packet (tenant id = VNI):
//
//   pre_check (128e) --bypass--------------------------------> PASS
//        | pre-metered?                                (top-tier tenants)
//        v
//   pre_meter (128e, tenant total limit)  excess -> DROP, conform -> PASS
//        | not installed
//        v
//   color_table (4K entries, VNI % 4K, coarse rate)  conform -> PASS
//        | excess ("marked")
//        v
//   meter_table (hashed by VNI, fine rate)  conform -> PASS, else DROP
//        |
//        +--> sampling: RED packets are sampled; tenants that dominate
//             the samples within a detection window are auto-installed
//             into pre_check/pre_meter (heavy hitters detected in ~1 s),
//             which stops them from crowding innocent tenants that
//             hash-collide with them in meter_table.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "check/hooks.hpp"
#include "common/types.hpp"
#include "tables/meter.hpp"

namespace albatross {

enum class RlVerdict : std::uint8_t {
  kPass,
  kPassMarked,     ///< passed via the second-stage meter
  kDropStage2,     ///< RED in meter_table
  kDropPreMeter,   ///< RED in pre_meter (installed heavy hitter)
};

struct RateLimiterConfig {
  std::uint32_t color_entries = 4096;  ///< stage-1 table size (VNI % 4K)
  std::uint32_t meter_entries = 4096;  ///< stage-2 hash table size
  double stage1_rate_pps = 8e6;        ///< coarse per-entry limit
  double stage2_rate_pps = 2e6;        ///< fine per-entry limit
  /// Installed heavy hitters are limited to stage1+stage2 (the total a
  /// tenant could have pushed through both stages).
  double pre_meter_rate_pps = 10e6;
  double burst_seconds = 0.01;         ///< bucket depth = rate * this
  /// Sampling-based detection of heavy hitters among stage-2 RED drops.
  double sample_probability = 1.0 / 128.0;
  std::uint32_t detect_threshold_samples = 16;
  NanoTime detect_window = 1 * kSecond;
  bool auto_install = true;            ///< detection enabled
};

struct RateLimiterStats {
  std::uint64_t passed = 0;
  std::uint64_t passed_marked = 0;
  std::uint64_t dropped_stage2 = 0;
  std::uint64_t dropped_pre = 0;
  std::uint64_t bypassed = 0;
  std::uint64_t heavy_hitters_installed = 0;
};

/// GOP two-stage limiter; SRAM bits are the default color/meter/heavy-
/// hitter tables (Tab. 5 "Overload Det." structural accounting).
// fpga: lut=18'256, bram_bits=14'057'472, cycles=50
class TenantRateLimiter {
 public:
  explicit TenantRateLimiter(RateLimiterConfig cfg = {});

  /// Applies the limiter to one packet of tenant `vni` at time `now`.
  RlVerdict admit(Vni vni, NanoTime now);

  /// Burst admit: one verdict per (vni, time) pair, written positionally
  /// into `out`. Equivalent to calling admit() in index order — bucket
  /// state advances packet by packet — but lets the ingress pipeline
  /// keep the meter tables hot across a whole RX batch.
  void admit_burst(std::span<const Vni> vnis, std::span<const NanoTime> times,
                   std::span<RlVerdict> out);

  /// Configures a top-tier tenant to bypass all rate limiting.
  bool add_bypass(Vni vni);
  /// Manually installs a tenant into pre_check/pre_meter (the planned
  /// CPU-assisted install path, §4.3).
  bool install_heavy_hitter(Vni vni, NanoTime now);
  bool uninstall(Vni vni);
  [[nodiscard]] bool is_installed(Vni vni) const;

  [[nodiscard]] const RateLimiterStats& stats() const { return stats_; }
  [[nodiscard]] const RateLimiterConfig& config() const { return cfg_; }

  /// Arms a conformance probe reporting every admit verdict with its
  /// deciding stage (src/check); nullptr disarms.
  void set_probe(RateLimiterProbeHook* probe) { probe_ = probe; }

  /// On-chip SRAM footprint of this design (Tab. "2MB" claim) and of the
  /// naive per-tenant alternative, for the ablation bench.
  [[nodiscard]] std::size_t sram_bytes() const;
  static std::size_t naive_sram_bytes(std::uint64_t tenants);

  /// Bytes per meter entry in FPGA SRAM (bucket state + config + stats
  /// mirrors), the paper's ~200 MB / 1M tenants ratio.
  static constexpr std::size_t kMeterEntryBytes = 208;

 private:
  static constexpr std::size_t kPreEntries = 128;

  struct PreEntry {
    Vni vni = 0;
    bool in_use = false;
    bool bypass = false;
    TokenBucket meter;
  };

  /// Detection sketch slot: counts sampled RED drops per candidate VNI.
  struct Candidate {
    Vni vni = 0;
    std::uint32_t samples = 0;
  };

  PreEntry* find_pre(Vni vni);
  [[nodiscard]] const PreEntry* find_pre(Vni vni) const;
  void sample_red(Vni vni, NanoTime now);

  /// Table index for a direct/hash-mapped stage: bitmask when the table
  /// size is a power of two (the shipped configuration — hardware tables
  /// are), modulo otherwise.
  [[nodiscard]] static std::size_t table_index(std::uint64_t v,
                                               std::size_t size) {
    return (size & (size - 1)) == 0 ? (v & (size - 1)) : (v % size);
  }

  RateLimiterConfig cfg_;
  std::vector<TokenBucket> color_table_;
  std::vector<TokenBucket> meter_table_;
  /// In-use entries in pre_: lets the per-packet pre_check probe skip
  /// the 128-entry scan entirely while no heavy hitter is installed
  /// (the overwhelmingly common state).
  std::size_t pre_in_use_ = 0;
  std::array<PreEntry, kPreEntries> pre_;
  std::array<Candidate, kPreEntries> candidates_;
  NanoTime window_start_ = NanoTime{0};
  std::uint64_t sample_seq_ = 0;
  RateLimiterStats stats_;
  RateLimiterProbeHook* probe_ = nullptr;
};

}  // namespace albatross
