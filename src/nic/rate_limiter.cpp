#include "nic/rate_limiter.hpp"

#include "common/hash.hpp"

namespace albatross {

TenantRateLimiter::TenantRateLimiter(RateLimiterConfig cfg) : cfg_(cfg) {
  const double b = cfg_.burst_seconds;
  color_table_.assign(cfg_.color_entries,
                      TokenBucket(cfg_.stage1_rate_pps,
                                  cfg_.stage1_rate_pps * b));
  meter_table_.assign(cfg_.meter_entries,
                      TokenBucket(cfg_.stage2_rate_pps,
                                  cfg_.stage2_rate_pps * b));
}

TenantRateLimiter::PreEntry* TenantRateLimiter::find_pre(Vni vni) {
  if (pre_in_use_ == 0) return nullptr;
  for (auto& e : pre_) {
    if (e.in_use && e.vni == vni) return &e;
  }
  return nullptr;
}

const TenantRateLimiter::PreEntry* TenantRateLimiter::find_pre(
    Vni vni) const {
  if (pre_in_use_ == 0) return nullptr;
  for (const auto& e : pre_) {
    if (e.in_use && e.vni == vni) return &e;
  }
  return nullptr;
}

bool TenantRateLimiter::add_bypass(Vni vni) {
  if (PreEntry* existing = find_pre(vni)) {
    existing->bypass = true;
    return true;
  }
  for (auto& e : pre_) {
    if (!e.in_use) {
      e = PreEntry{vni, true, true, TokenBucket{}};
      ++pre_in_use_;
      return true;
    }
  }
  return false;  // pre_check full
}

bool TenantRateLimiter::install_heavy_hitter(Vni vni, NanoTime now) {
  (void)now;
  if (PreEntry* existing = find_pre(vni)) {
    if (existing->bypass) return true;  // top-tier tenants never limited
    return true;
  }
  for (auto& e : pre_) {
    if (!e.in_use) {
      e = PreEntry{vni, true, false,
                   TokenBucket(cfg_.pre_meter_rate_pps,
                               cfg_.pre_meter_rate_pps * cfg_.burst_seconds)};
      ++pre_in_use_;
      ++stats_.heavy_hitters_installed;
      return true;
    }
  }
  return false;
}

bool TenantRateLimiter::uninstall(Vni vni) {
  if (PreEntry* e = find_pre(vni)) {
    e->in_use = false;
    --pre_in_use_;
    return true;
  }
  return false;
}

bool TenantRateLimiter::is_installed(Vni vni) const {
  return find_pre(vni) != nullptr;
}

void TenantRateLimiter::sample_red(Vni vni, NanoTime now) {
  if (!cfg_.auto_install) return;
  if (now - window_start_ > cfg_.detect_window) {
    // New detection window: forget stale candidates. Heavy hitters are
    // re-sampled within one window thanks to their packet rate.
    window_start_ = now;
    for (auto& c : candidates_) c = Candidate{};
  }
  // Deterministic 1-in-N sampling (hardware uses a free-running counter).
  if (++sample_seq_ %
          static_cast<std::uint64_t>(1.0 / cfg_.sample_probability) !=
      0) {
    return;
  }
  // Count the sample in the candidate sketch (direct-mapped by VNI).
  auto& c = candidates_[mix64(vni) % candidates_.size()];
  if (c.vni != vni) {
    // Slot re-keys when a different tenant lands here; heavy hitters win
    // the slot statistically because they are sampled far more often.
    c.vni = vni;
    c.samples = 0;
  }
  if (++c.samples >= cfg_.detect_threshold_samples) {
    install_heavy_hitter(vni, now);
    c.samples = 0;
  }
}

RlVerdict TenantRateLimiter::admit(Vni vni, NanoTime now) {
  // pre_check stage.
  if (PreEntry* pre = find_pre(vni)) {
    if (pre->bypass) {
      ++stats_.bypassed;
      if (probe_ != nullptr) probe_->on_admit(vni, RlStage::kBypass, true, now);
      return RlVerdict::kPass;
    }
    const bool ok = pre->meter.consume(now);
    if (probe_ != nullptr) probe_->on_admit(vni, RlStage::kPreMeter, ok, now);
    if (ok) {
      ++stats_.passed;
      return RlVerdict::kPass;
    }
    ++stats_.dropped_pre;
    return RlVerdict::kDropPreMeter;
  }

  // Stage 1: coarse color table, direct-indexed by VNI % 4K.
  if (color_table_[table_index(vni, color_table_.size())].consume(now)) {
    ++stats_.passed;
    if (probe_ != nullptr) probe_->on_admit(vni, RlStage::kStage1, true, now);
    return RlVerdict::kPass;
  }
  if (probe_ != nullptr) probe_->on_admit(vni, RlStage::kStage1, false, now);

  // Stage 2: fine meter table, hash-indexed. Collisions here are the
  // false-positive source the pre_check stage exists to mitigate.
  const bool ok2 =
      meter_table_[table_index(mix64(vni), meter_table_.size())].consume(now);
  if (probe_ != nullptr) probe_->on_admit(vni, RlStage::kStage2, ok2, now);
  if (ok2) {
    ++stats_.passed_marked;
    return RlVerdict::kPassMarked;
  }
  ++stats_.dropped_stage2;
  sample_red(vni, now);
  return RlVerdict::kDropStage2;
}

void TenantRateLimiter::admit_burst(std::span<const Vni> vnis,
                                    std::span<const NanoTime> times,
                                    std::span<RlVerdict> out) {
  for (std::size_t i = 0; i < vnis.size(); ++i) {
    out[i] = admit(vnis[i], times[i]);
  }
}

std::size_t TenantRateLimiter::sram_bytes() const {
  return (color_table_.size() + meter_table_.size() + 2 * kPreEntries) *
         kMeterEntryBytes;
}

std::size_t TenantRateLimiter::naive_sram_bytes(std::uint64_t tenants) {
  return tenants * kMeterEntryBytes;
}

}  // namespace albatross
