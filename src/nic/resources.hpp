// FPGA resource ledger (Tab. 5). The FPGA on each SmartNIC has 912,800
// LUTs and 265 Mbit of BRAM; the ledger combines the paper's measured
// module fractions with structural BRAM accounting computed from the
// actual configured data structures (reorder queues, rate-limiter
// tables, payload buffer), so resource reports respond to configuration
// the way a synthesis report would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nic/plb_dispatch.hpp"
#include "nic/rate_limiter.hpp"

namespace albatross {

struct FpgaSpec {
  std::uint64_t luts = 912'800;
  std::uint64_t bram_bits = 265ull * 1000 * 1000;
};

struct ModuleUsage {
  std::string name;
  double lut_fraction = 0.0;
  double bram_fraction = 0.0;
  std::uint64_t bram_bits_structural = 0;  ///< computed from structures
};

class FpgaResourceModel {  // host-side model, not FPGA logic: lint:allow(fpga-missing-annotation)
 public:
  explicit FpgaResourceModel(FpgaSpec spec = {}) : spec_(spec) {}

  /// Builds the Tab. 5 ledger for a NIC hosting the given PLB engines
  /// and rate limiter. Basic-pipeline and DMA fractions are the paper's
  /// synthesis numbers (they cover parser/deparser/payload buffer logic
  /// we model behaviourally).
  [[nodiscard]] std::vector<ModuleUsage> ledger(
      const std::vector<const PlbEngine*>& engines,
      const TenantRateLimiter& limiter,
      std::uint64_t payload_buffer_bytes) const;

  [[nodiscard]] const FpgaSpec& spec() const { return spec_; }

 private:
  FpgaSpec spec_;
};

}  // namespace albatross
