// PCIe DMA model between the FPGA NIC and host memory. Tab. 4 shows DMA
// dominates NIC-pipeline latency (3.17us RX / 2.98us TX of the ~8us
// total), so the model carries a base latency plus a bandwidth term, and
// reproduces the "insufficient PCIe driver descriptors" anomaly (§4.1-4):
// when in-flight transfers exceed the descriptor ring, new work queues
// behind the channel and latency balloons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace albatross {

struct DmaConfig {
  NanoTime base_latency = NanoTime{3170};       ///< per-transfer setup+completion
  double bandwidth_gbps = 200.0;      ///< PCIe Gen4 x16 effective
  std::uint32_t descriptors = 1024;   ///< ring depth
};

struct DmaStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  std::uint64_t descriptor_stalls = 0;
  std::uint64_t faulted_transfers = 0;  ///< completed inside a fault window
};

/// One DMA direction (RX toward host or TX toward wire) of one NIC.
/// Cycles are the slower (RX) Tab. 4 base cost; BRAM covers descriptor
/// rings and the PCIe reassembly staging for both directions.
// fpga: lut=22'820, bram_bits=3'445'000, cycles=1585
class DmaChannel {
 public:
  explicit DmaChannel(DmaConfig cfg = {}) : cfg_(cfg) {}

  /// Schedules a transfer of `bytes` submitted at `now`; returns its
  /// completion time. Transfers serialise on the channel.
  NanoTime transfer(NanoTime now, std::size_t bytes);

  /// Burst submission: transfers[i] of sizes[i] submitted at times[i],
  /// completion written to out[i]. Identical to sequential transfer()
  /// calls in index order (the channel serialises either way).
  void transfer_burst(std::span<const NanoTime> times,
                      std::span<const std::size_t> sizes,
                      std::span<NanoTime> out);

  [[nodiscard]] const DmaStats& stats() const { return stats_; }
  [[nodiscard]] const DmaConfig& config() const { return cfg_; }
  void set_config(const DmaConfig& cfg) { cfg_ = cfg; }

  /// Fault injection (chaos subsystem): transfers submitted before
  /// `until` pay `slowdown`x latency, modelling a PCIe error-retry storm
  /// or a degraded DMA engine. The window replaces any earlier one.
  void inject_fault(NanoTime until, double slowdown = 8.0) {
    fault_until_ = until;
    fault_slowdown_ = slowdown > 1.0 ? slowdown : 1.0;
  }
  [[nodiscard]] bool faulted(NanoTime now) const { return now < fault_until_; }

 private:
  DmaConfig cfg_;
  NanoTime channel_free_ = NanoTime{0};
  NanoTime fault_until_ = NanoTime{0};
  double fault_slowdown_ = 1.0;
  DmaStats stats_;
};

}  // namespace albatross
