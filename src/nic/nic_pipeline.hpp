// The FPGA NIC pipeline (Fig. 1), assembled: ingress = basic pipeline
// (VLAN/parse/split) -> gateway overload protection -> pkt_dir -> RSS or
// PLB dispatch -> DMA to the host; egress = DMA from the host -> PLB
// reorder (legal + reorder checks) -> basic pipeline TX -> wire.
// Latency constants follow Tab. 4; DMA dominates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dpu/dpu_tier.hpp"
#include "nic/basic_pipeline.hpp"
#include "nic/dma.hpp"
#include "nic/pkt_dir.hpp"
#include "nic/plb_dispatch.hpp"
#include "nic/rate_limiter.hpp"
#include "nic/session_offload.hpp"

namespace albatross {

/// Per-pod load-balancing mode; RSS is both the 1st-gen baseline and the
/// live fallback path (§4.1 remediation 5).
enum class LbMode : std::uint8_t { kPlb, kRss };

/// Tab. 4 module latencies, specified in fabric clock cycles. The
/// datapath modules run at twice the 250 MHz shell clock, so one cycle
/// is 2 ns and the paper's nanosecond figures map exactly. Conversions
/// go through cycles_to_nanos so the clock frequency is named here and
/// nowhere else.
struct NicTimings {
  std::uint32_t datapath_clock_mhz = 2 * kDefaultFpgaClockMhz;  // 500 MHz
  FpgaCycles basic_rx = FpgaCycles{290};        // 580 ns
  FpgaCycles basic_tx = FpgaCycles{420};        // 840 ns
  FpgaCycles overload_det_rx = FpgaCycles{50};  // 100 ns
  FpgaCycles plb_rx = FpgaCycles{25};           //  50 ns
  FpgaCycles plb_tx = FpgaCycles{175};          // 350 ns
  FpgaCycles dma_rx_base = FpgaCycles{1585};    // 3170 ns
  FpgaCycles dma_tx_base = FpgaCycles{1490};    // 2980 ns

  [[nodiscard]] constexpr Nanos ns(FpgaCycles c) const {
    return cycles_to_nanos(c, datapath_clock_mhz);
  }
  [[nodiscard]] constexpr Nanos basic_rx_ns() const { return ns(basic_rx); }
  [[nodiscard]] constexpr Nanos basic_tx_ns() const { return ns(basic_tx); }
  [[nodiscard]] constexpr Nanos overload_det_rx_ns() const {
    return ns(overload_det_rx);
  }
  [[nodiscard]] constexpr Nanos plb_rx_ns() const { return ns(plb_rx); }
  [[nodiscard]] constexpr Nanos plb_tx_ns() const { return ns(plb_tx); }
  [[nodiscard]] constexpr Nanos dma_rx_base_ns() const {
    return ns(dma_rx_base);
  }
  [[nodiscard]] constexpr Nanos dma_tx_base_ns() const {
    return ns(dma_tx_base);
  }
};

struct NicPipelineConfig {
  NicTimings timings;
  DmaConfig dma_rx;   ///< base_latency overridden from timings
  DmaConfig dma_tx;
  bool gop_enabled = true;
  RateLimiterConfig gop;
  std::uint16_t payload_slots = 8192;
};

enum class IngressOutcome : std::uint8_t {
  kDelivered,          ///< lands in the pod RX queue at deliver_time
  kDroppedRateLimit,   ///< GOP verdict
  kDroppedReorderFull, ///< PLB FIFO exhausted (C1 trade-off)
  kOffloaded,          ///< handled entirely on the FPGA (session offload);
                       ///< deliver_time is the WIRE time, no CPU involved
};

struct IngressResult {
  IngressOutcome outcome = IngressOutcome::kDelivered;
  PktClass cls = PktClass::kPlb;
  std::uint16_t rx_queue = 0;
  NanoTime deliver_time = NanoTime{0};
  PacketPtr pkt;  ///< always returned; caller owns it (and frees drops)
};

struct EgressEmission {
  PacketPtr pkt;
  NanoTime wire_time = NanoTime{0};
  bool in_order = true;
};

/// Sentinel RX queue index for the protocol-priority queue.
constexpr std::uint16_t kPriorityQueue = 0xffff;

/// Aggregate façade: every LUT/BRAM it instantiates is annotated on the
/// member modules, so its own budget is zero (the sum partitions the
/// chip exactly once).
// fpga: lut=0, bram_bits=0, cycles=0
class NicPipeline {
 public:
  explicit NicPipeline(NicPipelineConfig cfg = {});

  /// Registers a GW pod slice: its PLB engine geometry, pkt_dir
  /// programming and mode.
  void register_pod(PodId pod, const PlbEngineConfig& plb,
                    const PktDirConfig& dir, LbMode mode);

  /// Enables FPGA session offload for a pod (§7 future-offload plan #1).
  /// Sessions installed via session_offload(pod).install() are then
  /// forwarded entirely inside the NIC.
  void enable_session_offload(PodId pod, SessionOffloadConfig cfg = {});
  [[nodiscard]] bool session_offload_enabled(PodId pod) const;
  SessionOffload& session_offload(PodId pod);

  /// Enables the DPU co-offload tier for a pod (docs/DPU_TIER.md):
  /// ingress stage 3 then consults FPGA -> DPU -> miss instead of the
  /// FPGA table alone. Enables the FPGA session offload with cfg.fpga
  /// when the pod doesn't have it yet.
  void enable_dpu_tier(PodId pod, DpuTierConfig cfg = {});
  [[nodiscard]] bool dpu_tier_enabled(PodId pod) const;
  DpuTier& dpu_tier(PodId pod);
  void set_pod_mode(PodId pod, LbMode mode);
  [[nodiscard]] LbMode pod_mode(PodId pod) const;

  /// Full ingress processing of one packet arriving at `now`.
  IngressResult ingress(PacketPtr pkt, PodId pod, NanoTime now);

  /// Largest burst ingress_burst() accepts per call.
  static constexpr std::size_t kMaxIngressBurst = 32;

  /// Burst ingress: runs pkts[i] (arriving at arrivals[i]) through the
  /// pipeline stage by stage — parse/classify, GOP admit, offload fast
  /// path, dispatch, split, RX DMA — each stage walking the whole burst
  /// before the next starts, the way the FPGA modules overlap packets.
  /// Results are positional and bit-identical to sequential ingress()
  /// calls in index order (stages touch disjoint state). Arrival times
  /// must be non-decreasing; at most kMaxIngressBurst packets.
  void ingress_burst(std::span<PacketPtr> pkts,
                     std::span<const NanoTime> arrivals, PodId pod,
                     std::span<IngressResult> out);

  /// Host TX submission: returns the time the packet reaches the FPGA
  /// (TX DMA completion). The caller schedules egress() at that time.
  NanoTime tx_submit(PodId pod, NanoTime now, std::size_t bytes);

  /// Egress processing at the FPGA: reorder write-back for PLB packets,
  /// straight-through for RSS/priority. Emissions carry wire times.
  std::vector<EgressEmission> egress(PacketPtr pkt, PodId pod, NanoTime now);
  /// Allocation-free variant for the per-packet hot path: appends to a
  /// caller-owned (typically reused) vector instead of returning one.
  void egress_into(PacketPtr pkt, PodId pod, NanoTime now,
                   std::vector<EgressEmission>& out);

  /// Timeout-driven reorder drain for a pod.
  std::vector<EgressEmission> drain_expired(PodId pod, NanoTime now);
  /// Allocation-free variant of drain_expired (see egress_into).
  void drain_expired_into(PodId pod, NanoTime now,
                          std::vector<EgressEmission>& out);
  [[nodiscard]] std::optional<NanoTime> next_reorder_deadline(PodId pod) const;

  TenantRateLimiter& limiter() { return limiter_; }
  PktDir& pkt_dir() { return pkt_dir_; }
  BasicPipeline& basic() { return basic_; }
  PlbEngine& engine(PodId pod) { return *slice(pod).plb; }
  [[nodiscard]] const PlbEngine& engine(PodId pod) const {
    return *pods_[pod].plb;
  }
  [[nodiscard]] const NicPipelineConfig& config() const { return cfg_; }

  /// Ingress latency the NIC adds before DMA (Tab. 4 RX sum sans DMA).
  [[nodiscard]] NanoTime rx_pipeline_latency(bool plb) const;

  // --- conformance probes (src/check) ----------------------------------
  /// Arms a reorder-invariant probe on one pod's PLB engine.
  void attach_reorder_probe(PodId pod, ReorderProbeHook* probe) {
    slice(pod).plb->set_probe(probe);
  }
  /// Arms an admit probe on the shared tenant rate limiter.
  void attach_limiter_probe(RateLimiterProbeHook* probe) {
    limiter_.set_probe(probe);
  }

  // --- fault injection (chaos subsystem) -------------------------------
  /// Degrades both DMA directions of a pod's slice until `until`
  /// (latency multiplied by `slowdown`), modelling PCIe error retries.
  void inject_dma_fault(PodId pod, NanoTime until, double slowdown = 8.0) {
    slice(pod).dma_rx.inject_fault(until, slowdown);
    slice(pod).dma_tx.inject_fault(until, slowdown);
  }
  /// Wedges the pod's reorder module until `until`.
  void inject_reorder_stall(PodId pod, NanoTime until) {
    slice(pod).plb->inject_reorder_stall(until);
  }
  /// Wedges one DPU datapath core until `until` (latency-only fault;
  /// queued packets wait, nothing drops). No-op without the tier.
  void inject_dpu_core_stall(PodId pod, std::uint16_t core, NanoTime until) {
    if (dpu_tier_enabled(pod)) slice(pod).dpu->stall_core(core, until);
  }
  /// Wipes the pod's DPU session table (tier-table fault); flows fall
  /// back to the CPU until re-admitted. No-op without the tier.
  std::size_t inject_tier_table_flush(PodId pod, NanoTime now) {
    return dpu_tier_enabled(pod) ? slice(pod).dpu->flush_tier_table(now) : 0;
  }
  [[nodiscard]] std::uint64_t dma_faulted_transfers(PodId pod) const {
    return pods_[pod].dma_rx.stats().faulted_transfers +
           pods_[pod].dma_tx.stats().faulted_transfers;
  }

 private:
  struct PodSlice {
    std::unique_ptr<PlbEngine> plb;
    std::unique_ptr<SessionOffload> offload;  ///< null = not enabled
    std::unique_ptr<DpuTier> dpu;             ///< null = FPGA-only offload
    LbMode mode = LbMode::kPlb;
    DmaChannel dma_rx;
    DmaChannel dma_tx;
    std::uint16_t rx_queues = 1;
  };

  PodSlice& slice(PodId pod);
  EgressEmission finish_tx(PacketPtr pkt, NanoTime now, bool in_order,
                           bool was_plb);

  NicPipelineConfig cfg_;
  PktDir pkt_dir_;
  TenantRateLimiter limiter_;
  BasicPipeline basic_;
  std::vector<PodSlice> pods_;
  /// Reused per-call scratch for reorder write-back/drain emissions
  /// (egress_into / drain_expired_into); never holds state across calls.
  std::vector<ReorderEgress> reorder_scratch_;
};

}  // namespace albatross
