#include "nic/basic_pipeline.hpp"

#include <cstring>

#include "common/endian.hpp"

namespace albatross {

PayloadBuffer::PayloadBuffer(std::uint16_t slots)
    : slots_(slots > (1u << kSlotBits) ? (1u << kSlotBits) : slots) {}

namespace {
std::uint16_t payload_id(std::uint16_t slot, std::uint64_t age) {
  return static_cast<std::uint16_t>(
      slot | ((age & 0x7u) << PayloadBuffer::kSlotBits));
}
}  // namespace

std::uint16_t PayloadBuffer::store(std::vector<std::uint8_t> payload) {
  // Scan from the cursor for a free slot; if none within one lap, evict
  // the slot under the cursor (oldest by construction of the rotation).
  const std::size_t n = slots_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::uint16_t slot =
        static_cast<std::uint16_t>((cursor_ + probe) % n);
    if (!slots_[slot].valid) {
      cursor_ = static_cast<std::uint16_t>((slot + 1) % n);
      bytes_ += payload.size();
      ++in_use_;
      const std::uint64_t age = next_age_++;
      slots_[slot] = Slot{std::move(payload), true, age};
      return payload_id(slot, age);
    }
  }
  const std::uint16_t slot = cursor_;
  cursor_ = static_cast<std::uint16_t>((cursor_ + 1) % n);
  ++evictions_;
  bytes_ -= slots_[slot].payload.size();
  bytes_ += payload.size();
  const std::uint64_t age = next_age_++;
  slots_[slot] = Slot{std::move(payload), true, age};
  return payload_id(slot, age);
}

std::optional<std::vector<std::uint8_t>> PayloadBuffer::fetch_release(
    std::uint16_t id) {
  const std::uint16_t slot = id & kSlotMask;
  if (slot >= slots_.size() || !slots_[slot].valid) return std::nullopt;
  if (payload_id(slot, slots_[slot].age) != id) {
    return std::nullopt;  // slot reused since this header was split
  }
  bytes_ -= slots_[slot].payload.size();
  --in_use_;
  slots_[slot].valid = false;
  return std::move(slots_[slot].payload);
}

BasicPipeline::BasicPipeline(std::uint16_t payload_slots)
    : payloads_(payload_slots) {}

bool BasicPipeline::rx_process(Packet& pkt,
                               std::optional<std::uint16_t>& vlan_id) {
  ++stats_.rx_frames;
  vlan_id.reset();
  if (pkt.size() >= EthernetHeader::kSize + VlanTag::kSize) {
    const std::uint16_t etype = load_be16(pkt.data() + 12);
    if (etype == static_cast<std::uint16_t>(EtherType::kVlan)) {
      const VlanTag tag = VlanTag::read(pkt.data() + EthernetHeader::kSize);
      vlan_id = tag.vlan_id;
      // Decap: shift the MACs over the tag (uplink switches applied it
      // purely for VF steering).
      std::uint8_t macs[12];
      std::memcpy(macs, pkt.data(), 12);
      pkt.adj(VlanTag::kSize);
      std::memcpy(pkt.data(), macs, 12);
      store_be16(pkt.data() + 12, tag.inner_ether_type);
      ++stats_.vlan_decap;
    }
  }
  if (!parse_and_annotate(pkt)) {
    // Synthetic fast-path frames carry metadata instead of real bytes;
    // only count an error when the metadata is absent too.
    if (pkt.tuple == FiveTuple{}) ++stats_.parse_errors;
    return false;
  }
  return true;
}

std::optional<std::uint16_t> BasicPipeline::split(Packet& pkt) {
  if (pkt.size() <= kHeaderSplitBytes) return std::nullopt;
  std::vector<std::uint8_t> payload(pkt.data() + kHeaderSplitBytes,
                                    pkt.data() + pkt.size());
  pkt.trim(pkt.size() - kHeaderSplitBytes);
  ++stats_.split_headers;
  return payloads_.store(std::move(payload));
}

bool BasicPipeline::tx_process(Packet& pkt, const PlbMeta& meta,
                               std::optional<std::uint16_t> vlan_id) {
  if (meta.header_only) {
    auto payload = payloads_.fetch_release(meta.payload_id);
    if (!payload) {
      ++stats_.headers_dropped_payload_gone;
      return false;
    }
    std::memcpy(pkt.append(payload->size()), payload->data(),
                payload->size());
    ++stats_.reassembled;
  }
  if (vlan_id) {
    // Re-tag for the uplink: insert 802.1Q after the MACs.
    const std::uint16_t inner = pkt.size() >= 14 ? load_be16(pkt.data() + 12)
                                                 : 0;
    std::uint8_t macs[12];
    std::memcpy(macs, pkt.data(), 12);
    pkt.prepend(VlanTag::kSize);
    std::memcpy(pkt.data(), macs, 12);
    VlanTag tag;
    tag.vlan_id = *vlan_id;
    tag.inner_ether_type = inner;
    store_be16(pkt.data() + 12,
               static_cast<std::uint16_t>(EtherType::kVlan));
    tag.write(pkt.data() + 14);
    ++stats_.vlan_encap;
  }
  ++stats_.tx_frames;
  return true;
}

}  // namespace albatross
