#include "nic/plb_dispatch.hpp"

namespace albatross {

PlbEngine::PlbEngine(PlbEngineConfig cfg) : cfg_(cfg) {
  if (cfg_.num_reorder_queues == 0) cfg_.num_reorder_queues = 1;
  if (cfg_.num_rx_queues == 0) cfg_.num_rx_queues = 1;
  queues_.reserve(cfg_.num_reorder_queues);
  for (std::uint16_t i = 0; i < cfg_.num_reorder_queues; ++i) {
    queues_.push_back(std::make_unique<ReorderQueue>(cfg_.reorder_entries,
                                                     cfg_.reorder_timeout));
  }
}

std::uint16_t PlbEngine::ordq_index(const FiveTuple& tuple) const {
  // get_ordq_idx (Fig. 3): 5-tuple hash so one flow maps to one
  // order-preserving queue; reordering is per flow-group, not per flow.
  return static_cast<std::uint16_t>(crc32c(tuple) %
                                    cfg_.num_reorder_queues);
}

std::optional<PlbDispatchResult> PlbEngine::dispatch(Packet& pkt,
                                                     NanoTime now) {
  const std::uint16_t ordq = ordq_index(pkt.tuple);
  const auto psn = queues_[ordq]->reserve(now);
  if (!psn) {
    ++ingress_drops_;
    return std::nullopt;
  }
  PlbMeta meta;
  meta.psn = *psn;
  meta.ordq_idx = static_cast<std::uint8_t>(ordq);
  pkt.attach_plb_meta(meta);

  PlbDispatchResult r;
  r.ordq = static_cast<std::uint8_t>(ordq);
  r.psn = *psn;
  // Pure round-robin spray across the pod's RX data queues — this is
  // the packet-level load balancing itself.
  r.rx_queue = static_cast<std::uint16_t>(rx_rr_++ % cfg_.num_rx_queues);
  pkt.rx_queue = r.rx_queue;
  return r;
}

void PlbEngine::dispatch_burst(std::span<Packet* const> pkts,
                               std::span<const NanoTime> times,
                               std::span<std::optional<PlbDispatchResult>> out) {
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    out[i] = dispatch(*pkts[i], times[i]);
  }
}

void PlbEngine::writeback(PacketPtr pkt, NanoTime now,
                          std::vector<ReorderEgress>& out) {
  PlbMeta meta;
  if (pkt == nullptr || !pkt->strip_plb_meta(meta)) {
    // A PLB packet without a trailer cannot be order-checked; emit it
    // best-effort rather than wedging the FIFO.
    if (pkt != nullptr) {
      out.push_back(ReorderEgress{std::move(pkt), false, PlbMeta{}});
    }
    return;
  }
  const std::size_t q = meta.ordq_idx % queues_.size();
  queues_[q]->writeback(std::move(pkt), meta, now, out);
  queues_[q]->drain(now, out);
}

void PlbEngine::drain_all(NanoTime now, std::vector<ReorderEgress>& out) {
  for (auto& q : queues_) q->drain(now, out);
}

std::optional<NanoTime> PlbEngine::next_deadline() const {
  std::optional<NanoTime> best;
  for (const auto& q : queues_) {
    const auto d = q->head_deadline();
    if (d && (!best || *d < *best)) best = d;
  }
  return best;
}

ReorderQueueStats PlbEngine::total_stats() const {
  ReorderQueueStats t;
  for (const auto& q : queues_) {
    const auto& s = q->stats();
    t.reserved += s.reserved;
    t.fifo_full_drops += s.fifo_full_drops;
    t.in_order_tx += s.in_order_tx;
    t.best_effort_tx += s.best_effort_tx;
    t.timeout_releases += s.timeout_releases;
    t.drop_releases += s.drop_releases;
    t.header_only_payload_lost += s.header_only_payload_lost;
    t.legal_check_fail += s.legal_check_fail;
    t.legal_check_alias += s.legal_check_alias;
  }
  return t;
}

}  // namespace albatross
