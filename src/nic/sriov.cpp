#include "nic/sriov.hpp"

#include <algorithm>

namespace albatross {

SriovManager::SriovManager(SriovConfig cfg) : cfg_(cfg) {
  ports_.resize(std::size_t{cfg_.nics} * cfg_.ports_per_nic);
}

std::optional<PodVfSet> SriovManager::allocate(PodId pod,
                                               NumaNodeId numa_node,
                                               std::uint16_t data_cores) {
  // NICs 0,1 sit on NUMA 0; NICs 2,3 on NUMA 1 (Fig. 2).
  const std::uint16_t nic_base =
      static_cast<std::uint16_t>(numa_node.value() * (cfg_.nics / 2));
  PodVfSet set;
  set.pod = pod;
  set.numa_node = numa_node;

  // One VF per independent port path: (nic_base,0) (nic_base,1)
  // (nic_base+1,0) (nic_base+1,1) — the Fig. B.2 robustness wiring.
  std::vector<std::size_t> chosen;
  for (std::uint16_t v = 0; v < cfg_.vfs_per_pod; ++v) {
    const std::uint16_t nic =
        static_cast<std::uint16_t>(nic_base + v / cfg_.ports_per_nic);
    const std::uint16_t port =
        static_cast<std::uint16_t>(v % cfg_.ports_per_nic);
    const std::size_t pi = port_index(nic, port);
    if (ports_[pi].vfs + 1 > cfg_.max_vfs_per_port ||
        ports_[pi].queue_pairs + data_cores >
            cfg_.max_queue_pairs_per_port) {
      return std::nullopt;  // capacity check failed; nothing committed
    }
    chosen.push_back(pi);
    VfAssignment vf;
    vf.vf_id = next_vf_++;
    vf.nic = nic;
    vf.port = port;
    vf.vlan_id = next_vlan_++;
    vf.queue_pairs = data_cores;
    set.vfs.push_back(vf);
  }
  for (const auto pi : chosen) {
    ports_[pi].vfs += 1;
    ports_[pi].queue_pairs += data_cores;
  }
  pods_.push_back(set);
  return set;
}

void SriovManager::release(PodId pod) {
  const auto it = std::find_if(pods_.begin(), pods_.end(),
                               [pod](const PodVfSet& s) { return s.pod == pod; });
  if (it == pods_.end()) return;
  for (const auto& vf : it->vfs) {
    auto& p = ports_[port_index(vf.nic, vf.port)];
    p.vfs -= 1;
    p.queue_pairs -= vf.queue_pairs;
  }
  pods_.erase(it);
}

std::optional<PodId> SriovManager::pod_for_vlan(std::uint16_t vlan) const {
  for (const auto& s : pods_) {
    for (const auto& vf : s.vfs) {
      if (vf.vlan_id == vlan) return s.pod;
    }
  }
  return std::nullopt;
}

std::uint16_t SriovManager::vfs_in_use() const {
  std::uint16_t n = 0;
  for (const auto& p : ports_) n = static_cast<std::uint16_t>(n + p.vfs);
  return n;
}

}  // namespace albatross
