#include "bgp/message.hpp"

#include "common/endian.hpp"

namespace albatross {
namespace {

constexpr std::size_t kHeaderSize = 19;  // 16B marker + len + type

void put_u8(std::vector<std::uint8_t>& v, std::uint8_t x) { v.push_back(x); }
void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x));
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  put_u16(v, static_cast<std::uint16_t>(x >> 16));
  put_u16(v, static_cast<std::uint16_t>(x));
}
void put_prefix(std::vector<std::uint8_t>& v, const RoutePrefix& p) {
  put_u8(v, p.len);
  put_u32(v, p.prefix.addr);
}

struct Reader {
  const std::vector<std::uint8_t>& b;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > b.size()) return fail8();
    return b[pos++];
  }
  std::uint16_t u16() {
    if (pos + 2 > b.size()) return fail8();
    const auto v = load_be16(b.data() + pos);
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (pos + 4 > b.size()) return fail8();
    const auto v = load_be32(b.data() + pos);
    pos += 4;
    return v;
  }
  RoutePrefix prefix() {
    RoutePrefix p;
    p.len = u8();
    p.prefix.addr = u32();
    return p;
  }
  std::uint8_t fail8() {
    ok = false;
    return 0;
  }
};

}  // namespace

BgpMessage BgpMessage::make_open(std::uint32_t asn, std::uint32_t router_id,
                                 std::uint16_t hold_s) {
  BgpMessage m;
  m.type = BgpMsgType::kOpen;
  m.open = BgpOpen{asn, router_id, hold_s};
  return m;
}

BgpMessage BgpMessage::make_keepalive() { return BgpMessage{}; }

BgpMessage BgpMessage::make_update(BgpUpdate u) {
  BgpMessage m;
  m.type = BgpMsgType::kUpdate;
  m.update = std::move(u);
  return m;
}

BgpMessage BgpMessage::make_notification(std::uint8_t code,
                                         std::uint8_t sub) {
  BgpMessage m;
  m.type = BgpMsgType::kNotification;
  m.notif = BgpNotification{code, sub};
  return m;
}

std::vector<std::uint8_t> BgpMessage::serialize() const {
  std::vector<std::uint8_t> out(16, 0xff);  // marker
  put_u16(out, 0);                          // length placeholder
  put_u8(out, static_cast<std::uint8_t>(type));
  switch (type) {
    case BgpMsgType::kOpen:
      put_u32(out, open.asn);
      put_u32(out, open.router_id);
      put_u16(out, open.hold_time_s);
      break;
    case BgpMsgType::kUpdate: {
      put_u16(out, static_cast<std::uint16_t>(update.withdrawn.size()));
      for (const auto& p : update.withdrawn) put_prefix(out, p);
      put_u16(out, static_cast<std::uint16_t>(update.nlri.size()));
      for (const auto& p : update.nlri) put_prefix(out, p);
      put_u32(out, update.next_hop);
      put_u8(out, static_cast<std::uint8_t>(update.as_path.size()));
      for (const auto asn : update.as_path) put_u32(out, asn);
      break;
    }
    case BgpMsgType::kNotification:
      put_u8(out, notif.code);
      put_u8(out, notif.subcode);
      break;
    case BgpMsgType::kKeepalive:
      break;
  }
  const auto len = static_cast<std::uint16_t>(out.size());
  out[16] = static_cast<std::uint8_t>(len >> 8);
  out[17] = static_cast<std::uint8_t>(len);
  return out;
}

std::optional<BgpMessage> BgpMessage::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  for (std::size_t i = 0; i < 16; ++i) {
    if (bytes[i] != 0xff) return std::nullopt;
  }
  const std::uint16_t len = load_be16(bytes.data() + 16);
  if (len != bytes.size()) return std::nullopt;
  BgpMessage m;
  m.type = static_cast<BgpMsgType>(bytes[18]);
  Reader r{bytes, kHeaderSize};
  switch (m.type) {
    case BgpMsgType::kOpen:
      m.open.asn = r.u32();
      m.open.router_id = r.u32();
      m.open.hold_time_s = r.u16();
      break;
    case BgpMsgType::kUpdate: {
      const std::uint16_t nw = r.u16();
      for (std::uint16_t i = 0; i < nw && r.ok; ++i) {
        m.update.withdrawn.push_back(r.prefix());
      }
      const std::uint16_t nn = r.u16();
      for (std::uint16_t i = 0; i < nn && r.ok; ++i) {
        m.update.nlri.push_back(r.prefix());
      }
      m.update.next_hop = r.u32();
      const std::uint8_t np = r.u8();
      for (std::uint8_t i = 0; i < np && r.ok; ++i) {
        m.update.as_path.push_back(r.u32());
      }
      break;
    }
    case BgpMsgType::kNotification:
      m.notif.code = r.u8();
      m.notif.subcode = r.u8();
      break;
    case BgpMsgType::kKeepalive:
      break;
    default:
      return std::nullopt;
  }
  if (!r.ok) return std::nullopt;
  return m;
}

NanoTime BgpMessage::processing_cost() const {
  switch (type) {
    case BgpMsgType::kOpen:
      // Session setup is the expensive step on a switch control CPU:
      // TCP/MD5 handling, policy evaluation, per-peer RIB allocation and
      // generating the full adj-RIB-out advertisement for the new peer.
      return 70 * kMillisecond;
    case BgpMsgType::kUpdate:
      // Per-prefix best-path computation dominates.
      return 2 * kMillisecond +
             static_cast<std::int64_t>(update.nlri.size() +
                                      update.withdrawn.size()) *
                 200 * kMicrosecond;
    case BgpMsgType::kNotification:
      return kMillisecond;
    case BgpMsgType::kKeepalive:
      return 50 * kMicrosecond;
  }
  return kMillisecond;
}

}  // namespace albatross
