// BGP-lite message model (RFC 4271 shapes, simplified attributes).
// Gateways advertise their VIP routes to uplink switches over eBGP (or,
// with the proxy, over iBGP to the proxy pod). Messages serialise to a
// compact wire format so parsing is testable, and each carries a
// control-plane CPU cost used by the switch saturation model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace albatross {

enum class BgpMsgType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

struct RoutePrefix {
  Ipv4Address prefix;
  std::uint8_t len = 32;

  constexpr auto operator<=>(const RoutePrefix&) const = default;
};

struct BgpOpen {
  std::uint32_t asn = 0;
  std::uint32_t router_id = 0;
  std::uint16_t hold_time_s = 90;
};

struct BgpUpdate {
  std::vector<RoutePrefix> withdrawn;
  std::vector<RoutePrefix> nlri;
  std::uint32_t next_hop = 0;
  std::vector<std::uint32_t> as_path;
};

struct BgpNotification {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
};

struct BgpMessage {
  BgpMsgType type = BgpMsgType::kKeepalive;
  BgpOpen open;            // valid when type == kOpen
  BgpUpdate update;        // valid when type == kUpdate
  BgpNotification notif;   // valid when type == kNotification

  static BgpMessage make_open(std::uint32_t asn, std::uint32_t router_id,
                              std::uint16_t hold_s);
  static BgpMessage make_keepalive();
  static BgpMessage make_update(BgpUpdate u);
  static BgpMessage make_notification(std::uint8_t code, std::uint8_t sub);

  /// Serialises to the wire (19-byte header + body).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<BgpMessage> deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// Control-plane CPU cost to process this message on a switch
  /// (handshakes and full-table updates are far pricier than keepalives).
  [[nodiscard]] NanoTime processing_cost() const;
};

}  // namespace albatross
