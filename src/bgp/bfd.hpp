// BFD-lite (RFC 5880 semantics, §4.3): sub-second link-failure
// detection. Each session transmits control packets every `tx_interval`;
// missing `detect_mult` consecutive packets declares the link down —
// which is why GOP must carry BFD through priority queues: under data-
// plane saturation, three lost 50-ms probes take down an otherwise
// healthy link and BGP with it.
#pragma once

#include <functional>

#include "sim/event_loop.hpp"

namespace albatross {

struct BfdConfig {
  NanoTime tx_interval = 50 * kMillisecond;
  std::uint8_t detect_mult = 3;
  std::uint32_t my_discriminator = 1;
};

enum class BfdState : std::uint8_t { kDown, kUp };

class BfdSession {
 public:
  /// `tx` sends a probe toward the peer; delivery (or loss) is decided
  /// by the harness, which calls the peer's on_rx() for survivors.
  using TxFn = std::function<void(NanoTime)>;
  using StateFn = std::function<void(BfdState, NanoTime)>;

  BfdSession(EventLoop& loop, BfdConfig cfg);

  void start(NanoTime now);
  void stop() { running_ = false; }

  /// Peer probe received.
  void on_rx(NanoTime now);

  void set_tx(TxFn fn) { tx_ = std::move(fn); }
  void set_on_state(StateFn fn) { on_state_ = std::move(fn); }

  [[nodiscard]] BfdState state() const { return state_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t failures_detected() const { return failures_; }

 private:
  void tick(NanoTime now);

  EventLoop& loop_;
  BfdConfig cfg_;
  bool running_ = false;
  BfdState state_ = BfdState::kDown;
  NanoTime last_rx_ = NanoTime{0};
  std::uint64_t sent_ = 0;
  std::uint64_t failures_ = 0;
  TxFn tx_;
  StateFn on_state_;
};

}  // namespace albatross
