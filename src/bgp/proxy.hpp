// BGP proxy (Fig. 7): instead of every GW pod holding its own eBGP peer
// with the uplink switch (m peers per server), a proxy pod terminates
// the pods' iBGP sessions locally and maintains a single eBGP session to
// the switch, re-advertising every pod VIP with itself as next hop. This
// divides the switch's peer count by m — the enabler for high container
// density. Production runs two proxies per server for redundancy.
#pragma once

#include <memory>
#include <vector>

#include "bgp/session.hpp"
#include "bgp/switch_model.hpp"

namespace albatross {

struct BgpProxyConfig {
  std::uint32_t local_asn = 64600;
  std::uint32_t router_id = 0x0a640001;
  NanoTime pod_link_latency = 20 * kMicrosecond;  ///< intra-server veth
};

class BgpProxy {
 public:
  BgpProxy(EventLoop& loop, UplinkSwitch& uplink, BgpProxyConfig cfg,
           NanoTime now);

  /// Registers a GW pod: creates the proxy-side iBGP endpoint and binds
  /// it to `pod_session`. Routes the pod announces are re-advertised to
  /// the switch.
  void attach_pod(BgpSession& pod_session, NanoTime now);

  [[nodiscard]] std::size_t pods_attached() const {
    return pod_sides_.size();
  }
  [[nodiscard]] BgpSession& uplink_session() { return *uplink_session_; }
  [[nodiscard]] std::size_t routes_proxied() const { return proxied_; }

 private:
  EventLoop& loop_;
  BgpProxyConfig cfg_;
  std::unique_ptr<BgpSession> uplink_session_;  ///< proxy -> switch eBGP
  std::vector<std::unique_ptr<BgpSession>> pod_sides_;
  std::size_t proxied_ = 0;
};

}  // namespace albatross
