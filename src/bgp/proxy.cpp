#include "bgp/proxy.hpp"

namespace albatross {

BgpProxy::BgpProxy(EventLoop& loop, UplinkSwitch& uplink, BgpProxyConfig cfg,
                   NanoTime now)
    : loop_(loop), cfg_(cfg) {
  BgpSessionConfig sc;
  sc.asn = cfg_.local_asn;
  sc.router_id = cfg_.router_id;
  uplink_session_ = std::make_unique<BgpSession>(loop_, sc);
  uplink.add_peer(*uplink_session_, now);
}

void BgpProxy::attach_pod(BgpSession& pod_session, NanoTime now) {
  BgpSessionConfig sc;
  sc.asn = cfg_.local_asn;  // iBGP: same AS as the pods
  sc.router_id =
      cfg_.router_id + 0x100 + static_cast<std::uint32_t>(pod_sides_.size());
  sc.passive = true;
  auto side = std::make_unique<BgpSession>(loop_, sc);
  BgpSession& proxy_side = *side;

  // Re-advertise learned pod VIPs upstream with the proxy as next hop.
  proxy_side.set_on_route([this](const RoutePrefix& p, const RibEntry* e,
                                 NanoTime t) {
    if (e != nullptr) {
      ++proxied_;
      uplink_session_->announce(p, cfg_.router_id, t);
    } else {
      uplink_session_->withdraw(p, t);
    }
  });

  proxy_side.bind(&pod_session, cfg_.pod_link_latency, nullptr);
  pod_session.bind(&proxy_side, cfg_.pod_link_latency, nullptr);
  proxy_side.start(now);
  pod_session.start(now);
  pod_sides_.push_back(std::move(side));
}

}  // namespace albatross
