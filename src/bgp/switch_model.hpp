// Uplink switch model (§5): the switch terminates every gateway's eBGP
// session on a weak control-plane CPU. It is a single-server queue — all
// sessions' OPENs, UPDATEs and KEEPALIVEs serialise through it — which
// is exactly why the safe peer budget is 64: a restart with hundreds of
// peers makes handshakes queue behind each other, hold timers expire,
// peers retry, and convergence stretches to tens of minutes.
#pragma once

#include <memory>
#include <vector>

#include "bgp/session.hpp"

namespace albatross {

struct SwitchConfig {
  std::uint32_t asn = 65001;
  std::uint32_t router_id = 0x0a000001;
  /// Vendor-documented safe peer budget.
  std::uint16_t safe_bgp_peer_limit = 64;
  /// Control CPU slowdown factor applied once outstanding work piles up
  /// (scheduler thrash / table churn beyond the happy path).
  double overload_slowdown = 6.0;
  NanoTime overload_backlog_threshold = 5 * kSecond;
  NanoTime link_latency = 50 * kMicrosecond;
};

/// The switch's control-plane CPU: a shared MessageProcessor.
class SwitchCpu final : public MessageProcessor {
 public:
  explicit SwitchCpu(const SwitchConfig& cfg) : cfg_(&cfg) {}

  NanoTime enqueue(NanoTime arrival, NanoTime cost) override;

  [[nodiscard]] NanoTime backlog(NanoTime now) const {
    return busy_until_ > now ? busy_until_ - now : NanoTime{};
  }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] NanoTime busy_ns() const { return busy_accum_; }

 private:
  const SwitchConfig* cfg_;
  NanoTime busy_until_ = NanoTime{0};
  NanoTime busy_accum_ = NanoTime{0};
  std::uint64_t messages_ = 0;
};

class UplinkSwitch {
 public:
  UplinkSwitch(EventLoop& loop, SwitchConfig cfg = {});

  /// Creates the switch-side endpoint for one new peer and wires it to
  /// `remote`. The switch side is passive (listens for OPEN).
  BgpSession& add_peer(BgpSession& remote, NanoTime now);

  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  [[nodiscard]] std::size_t established_count() const;

  /// Total routes currently learned across peers.
  [[nodiscard]] std::size_t routes_learned() const;

  /// Simulates a switch restart: every session drops and must
  /// re-establish through the shared control CPU. Returns nothing;
  /// measure convergence by polling established_count()/routes_learned().
  void restart(NanoTime now);

  SwitchCpu& cpu() { return cpu_; }
  [[nodiscard]] const SwitchConfig& config() const { return cfg_; }

 private:
  EventLoop& loop_;
  SwitchConfig cfg_;
  SwitchCpu cpu_;
  std::vector<std::unique_ptr<BgpSession>> peers_;
};

}  // namespace albatross
