// BGP-lite session FSM over the discrete-event loop. Two sessions are
// bound back-to-back with a link latency; incoming messages optionally
// pass through a MessageProcessor (the switch control-plane CPU model),
// which is where peer-count saturation and its convergence blow-up come
// from (§5: >64 peers -> tens of minutes to converge).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "bgp/message.hpp"
#include "sim/event_loop.hpp"

namespace albatross {

enum class BgpState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

[[nodiscard]] std::string_view bgp_state_name(BgpState s);

/// Serialises message handling onto a shared control-plane CPU.
/// Returns the virtual time at which processing completes.
class MessageProcessor {
 public:
  virtual ~MessageProcessor() = default;
  virtual NanoTime enqueue(NanoTime arrival, NanoTime cost) = 0;
};

/// Pass-through processor: dedicated CPU, no queueing.
class ImmediateProcessor final : public MessageProcessor {
 public:
  NanoTime enqueue(NanoTime arrival, NanoTime cost) override {
    return arrival + cost;
  }
};

struct BgpSessionConfig {
  std::uint32_t asn = 64512;
  std::uint32_t router_id = 1;
  std::uint16_t hold_time_s = 90;
  NanoTime keepalive_interval = 3 * kSecond;
  NanoTime connect_retry = 5 * kSecond;
  /// Retry backoff cap (exponential: 5s, 10s, 20s ... like BGP's
  /// IdleHoldTime damping); prevents synchronized retry storms from
  /// livelocking a saturated switch CPU forever.
  NanoTime connect_retry_max = 160 * kSecond;
  bool passive = false;  ///< waits for the peer's OPEN (switch side)
};

struct RibEntry {
  std::uint32_t next_hop = 0;
  std::vector<std::uint32_t> as_path;
};

struct BgpSessionStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t session_resets = 0;
  std::uint64_t hold_timer_expiries = 0;
};

class BgpSession {
 public:
  using EstablishedFn = std::function<void(NanoTime)>;
  using DownFn = std::function<void(NanoTime)>;
  using RouteFn =
      std::function<void(const RoutePrefix&, const RibEntry*, NanoTime)>;

  BgpSession(EventLoop& loop, BgpSessionConfig cfg);

  /// Binds this endpoint to its peer with a propagation latency and an
  /// optional inbound processor (nullptr = dedicated CPU).
  void bind(BgpSession* peer, NanoTime link_latency,
            MessageProcessor* inbound = nullptr);

  /// Starts (or restarts) the session from Idle.
  void start(NanoTime now);
  /// Administrative shutdown: sends NOTIFICATION, goes Idle, no retry.
  void stop(NanoTime now);

  /// Local route management (adj-rib-out).
  void announce(const RoutePrefix& p, std::uint32_t next_hop, NanoTime now);
  void withdraw(const RoutePrefix& p, NanoTime now);

  void set_on_established(EstablishedFn fn) { on_established_ = std::move(fn); }
  void set_on_down(DownFn fn) { on_down_ = std::move(fn); }
  void set_on_route(RouteFn fn) { on_route_ = std::move(fn); }

  [[nodiscard]] BgpState state() const { return state_; }
  [[nodiscard]] BgpSession* peer() const { return peer_; }
  [[nodiscard]] const std::map<RoutePrefix, RibEntry>& rib_in() const {
    return rib_in_;
  }
  [[nodiscard]] const BgpSessionStats& stats() const { return stats_; }
  [[nodiscard]] const BgpSessionConfig& config() const { return cfg_; }

  /// Signals link loss (e.g. BFD detection): immediate session reset and
  /// reconnect attempts.
  void link_failure(NanoTime now);

 private:
  void send(const BgpMessage& msg, NanoTime now);
  void on_arrival(BgpMessage msg, NanoTime arrival);
  void handle(const BgpMessage& msg, NanoTime now);
  void go_established(NanoTime now);
  void go_idle(NanoTime now, bool retry);
  void arm_keepalive(NanoTime now);
  void arm_hold_check(NanoTime now);
  void flush_adj_rib_out(NanoTime now);

  EventLoop& loop_;
  BgpSessionConfig cfg_;
  BgpSession* peer_ = nullptr;
  NanoTime link_latency_ = kMillisecond;
  MessageProcessor* inbound_ = nullptr;
  ImmediateProcessor immediate_;

  BgpState state_ = BgpState::kIdle;
  bool admin_down_ = false;  ///< stop()ed: refuse peer OPENs until start()
  NanoTime retry_interval_ = NanoTime{0};  ///< current (backed-off) retry interval
  std::uint64_t epoch_ = 0;  ///< invalidates timers from old incarnations
  NanoTime last_rx_ = NanoTime{0};
  bool open_sent_ = false;

  std::map<RoutePrefix, RibEntry> rib_in_;
  std::map<RoutePrefix, std::uint32_t> local_routes_;

  EstablishedFn on_established_;
  DownFn on_down_;
  RouteFn on_route_;
  BgpSessionStats stats_;
};

/// Convenience: binds a<->b with symmetric latency and per-side inbound
/// processors, then starts both.
void bgp_connect(BgpSession& a, BgpSession& b, NanoTime latency,
                 MessageProcessor* a_in, MessageProcessor* b_in,
                 NanoTime now);

}  // namespace albatross
