#include "bgp/bfd.hpp"

namespace albatross {

BfdSession::BfdSession(EventLoop& loop, BfdConfig cfg)
    : loop_(loop), cfg_(cfg) {}

void BfdSession::start(NanoTime now) {
  running_ = true;
  last_rx_ = now;
  tick(now);
}

void BfdSession::tick(NanoTime now) {
  if (!running_) return;
  ++sent_;
  if (tx_) tx_(now);

  // Detection: no probe from the peer within detect_mult intervals.
  const NanoTime detect_window =
      cfg_.tx_interval * std::int64_t{cfg_.detect_mult};
  if (state_ == BfdState::kUp && now - last_rx_ > detect_window) {
    state_ = BfdState::kDown;
    ++failures_;
    if (on_state_) on_state_(state_, now);
  }
  loop_.schedule_at(now + cfg_.tx_interval,
                    [this] { tick(loop_.now()); });
}

void BfdSession::on_rx(NanoTime now) {
  last_rx_ = now;
  if (state_ == BfdState::kDown) {
    state_ = BfdState::kUp;
    if (on_state_) on_state_(state_, now);
  }
}

}  // namespace albatross
