#include "bgp/switch_model.hpp"

namespace albatross {

NanoTime SwitchCpu::enqueue(NanoTime arrival, NanoTime cost) {
  ++messages_;
  const NanoTime start = busy_until_ > arrival ? busy_until_ : arrival;
  // Past the backlog threshold the CPU degrades further (retry storms,
  // RIB churn, periodic housekeeping preempting BGP).
  NanoTime effective = cost;
  if (start - arrival > cfg_->overload_backlog_threshold) {
    effective = cost * cfg_->overload_slowdown;
  }
  busy_until_ = start + effective;
  busy_accum_ += effective;
  return busy_until_;
}

UplinkSwitch::UplinkSwitch(EventLoop& loop, SwitchConfig cfg)
    : loop_(loop), cfg_(cfg), cpu_(cfg_) {}

BgpSession& UplinkSwitch::add_peer(BgpSession& remote, NanoTime now) {
  BgpSessionConfig sc;
  sc.asn = cfg_.asn;
  sc.router_id = cfg_.router_id + static_cast<std::uint32_t>(peers_.size());
  sc.passive = true;
  auto side = std::make_unique<BgpSession>(loop_, sc);
  BgpSession& sw_side = *side;
  peers_.push_back(std::move(side));
  sw_side.bind(&remote, cfg_.link_latency, &cpu_);
  remote.bind(&sw_side, cfg_.link_latency, nullptr);
  sw_side.start(now);
  remote.start(now);
  return sw_side;
}

std::size_t UplinkSwitch::established_count() const {
  std::size_t n = 0;
  for (const auto& p : peers_) {
    if (p->state() == BgpState::kEstablished) ++n;
  }
  return n;
}

std::size_t UplinkSwitch::routes_learned() const {
  std::size_t n = 0;
  for (const auto& p : peers_) n += p->rib_in().size();
  return n;
}

void UplinkSwitch::restart(NanoTime now) {
  for (auto& p : peers_) {
    // Both ends observe the TCP reset.
    if (p->peer() != nullptr) p->peer()->link_failure(now);
    p->link_failure(now);
  }
}

}  // namespace albatross
