#include "bgp/session.hpp"

#include <algorithm>

namespace albatross {

std::string_view bgp_state_name(BgpState s) {
  switch (s) {
    case BgpState::kIdle:
      return "Idle";
    case BgpState::kConnect:
      return "Connect";
    case BgpState::kOpenSent:
      return "OpenSent";
    case BgpState::kOpenConfirm:
      return "OpenConfirm";
    case BgpState::kEstablished:
      return "Established";
  }
  return "?";
}

BgpSession::BgpSession(EventLoop& loop, BgpSessionConfig cfg)
    : loop_(loop), cfg_(cfg) {}

void BgpSession::bind(BgpSession* peer, NanoTime link_latency,
                      MessageProcessor* inbound) {
  peer_ = peer;
  link_latency_ = link_latency;
  inbound_ = inbound != nullptr ? inbound : &immediate_;
}

void BgpSession::send(const BgpMessage& msg, NanoTime now) {
  if (peer_ == nullptr) return;
  ++stats_.msgs_sent;
  BgpSession* peer = peer_;
  const NanoTime arrival = now + link_latency_;
  loop_.schedule_at(arrival, [peer, msg, arrival] {
    peer->on_arrival(msg, arrival);
  });
}

void BgpSession::on_arrival(BgpMessage msg, NanoTime arrival) {
  // Charge the inbound control-plane CPU; handling happens when the CPU
  // gets to it. This single queueing step is what melts down a switch
  // with too many peers.
  const NanoTime done = inbound_->enqueue(arrival, msg.processing_cost());
  const std::uint64_t epoch = epoch_;
  loop_.schedule_at(done, [this, msg = std::move(msg), done, epoch] {
    if (epoch != epoch_ && msg.type != BgpMsgType::kOpen) return;
    handle(msg, done);
  });
}

void BgpSession::start(NanoTime now) {
  ++epoch_;
  admin_down_ = false;
  state_ = BgpState::kConnect;
  open_sent_ = false;
  last_rx_ = now;
  rib_in_.clear();
  if (retry_interval_ == NanoTime{}) retry_interval_ = cfg_.connect_retry;
  if (!cfg_.passive) {
    send(BgpMessage::make_open(cfg_.asn, cfg_.router_id, cfg_.hold_time_s),
         now);
    open_sent_ = true;
    state_ = BgpState::kOpenSent;
    // Connect-retry with exponential backoff: a saturated peer CPU must
    // not be hammered at a fixed cadence or the storm never drains.
    const std::uint64_t epoch = epoch_;
    const NanoTime retry_in = retry_interval_;
    retry_interval_ = std::min(retry_interval_ * 2, cfg_.connect_retry_max);
    loop_.schedule_at(now + retry_in, [this, epoch] {
      if (epoch == epoch_ && state_ != BgpState::kEstablished &&
          state_ != BgpState::kIdle) {
        start(loop_.now());
      }
    });
  }
  arm_hold_check(now);
}

void BgpSession::stop(NanoTime now) {
  if (state_ != BgpState::kIdle) {
    send(BgpMessage::make_notification(6, 2), now);  // admin shutdown
  }
  go_idle(now, /*retry=*/false);
  admin_down_ = true;  // refuse resurrection by peer OPEN retries
}

void BgpSession::link_failure(NanoTime now) {
  ++stats_.session_resets;
  go_idle(now, /*retry=*/true);
}

void BgpSession::go_idle(NanoTime now, bool retry) {
  const bool was_established = state_ == BgpState::kEstablished;
  ++epoch_;
  state_ = BgpState::kIdle;
  rib_in_.clear();
  if (was_established && on_down_) on_down_(now);
  if (retry) {
    const std::uint64_t epoch = epoch_;
    loop_.schedule_at(now + cfg_.connect_retry, [this, epoch] {
      if (epoch == epoch_ && state_ == BgpState::kIdle) start(loop_.now());
    });
  }
}

void BgpSession::go_established(NanoTime now) {
  state_ = BgpState::kEstablished;
  retry_interval_ = cfg_.connect_retry;  // reset the backoff
  arm_keepalive(now);
  flush_adj_rib_out(now);
  if (on_established_) on_established_(now);
}

void BgpSession::arm_keepalive(NanoTime now) {
  const std::uint64_t epoch = epoch_;
  loop_.schedule_at(now + cfg_.keepalive_interval, [this, epoch] {
    if (epoch != epoch_) return;
    if (state_ == BgpState::kEstablished ||
        state_ == BgpState::kOpenConfirm) {
      send(BgpMessage::make_keepalive(), loop_.now());
      arm_keepalive(loop_.now());
    }
  });
}

void BgpSession::arm_hold_check(NanoTime now) {
  const std::uint64_t epoch = epoch_;
  const NanoTime hold = std::int64_t{cfg_.hold_time_s} * kSecond;
  loop_.schedule_at(now + hold, [this, epoch, hold] {
    if (epoch != epoch_ || state_ == BgpState::kIdle) return;
    if (loop_.now() - last_rx_ >= hold) {
      ++stats_.hold_timer_expiries;
      ++stats_.session_resets;
      send(BgpMessage::make_notification(4, 0), loop_.now());
      go_idle(loop_.now(), /*retry=*/true);
    } else {
      arm_hold_check(last_rx_);
    }
  });
}

void BgpSession::flush_adj_rib_out(NanoTime now) {
  if (local_routes_.empty()) return;
  // Group by next hop into one UPDATE per hop (typical packing).
  std::map<std::uint32_t, BgpUpdate> by_hop;
  for (const auto& [prefix, hop] : local_routes_) {
    auto& u = by_hop[hop];
    u.next_hop = hop;
    u.as_path = {cfg_.asn};
    u.nlri.push_back(prefix);
  }
  for (auto& [hop, u] : by_hop) {
    send(BgpMessage::make_update(std::move(u)), now);
  }
}

void BgpSession::announce(const RoutePrefix& p, std::uint32_t next_hop,
                          NanoTime now) {
  local_routes_[p] = next_hop;
  if (state_ == BgpState::kEstablished) {
    BgpUpdate u;
    u.next_hop = next_hop;
    u.as_path = {cfg_.asn};
    u.nlri.push_back(p);
    send(BgpMessage::make_update(std::move(u)), now);
  }
}

void BgpSession::withdraw(const RoutePrefix& p, NanoTime now) {
  local_routes_.erase(p);
  if (state_ == BgpState::kEstablished) {
    BgpUpdate u;
    u.withdrawn.push_back(p);
    send(BgpMessage::make_update(std::move(u)), now);
  }
}

void BgpSession::handle(const BgpMessage& msg, NanoTime now) {
  ++stats_.msgs_received;
  if (admin_down_) return;  // administratively down: drop everything
  last_rx_ = now;
  switch (msg.type) {
    case BgpMsgType::kOpen:
      if (state_ == BgpState::kIdle || state_ == BgpState::kConnect ||
          state_ == BgpState::kOpenSent) {
        if (!open_sent_ || state_ == BgpState::kIdle) {
          // Passive side (or re-sync): answer with our OPEN.
          if (state_ == BgpState::kIdle) {
            ++epoch_;
            rib_in_.clear();
            arm_hold_check(now);
          }
          send(BgpMessage::make_open(cfg_.asn, cfg_.router_id,
                                     cfg_.hold_time_s),
               now);
          open_sent_ = true;
        }
        send(BgpMessage::make_keepalive(), now);
        state_ = BgpState::kOpenConfirm;
      } else if (state_ == BgpState::kOpenConfirm) {
        send(BgpMessage::make_keepalive(), now);
      }
      break;
    case BgpMsgType::kKeepalive:
      if (state_ == BgpState::kOpenConfirm) {
        go_established(now);
      }
      break;
    case BgpMsgType::kUpdate: {
      if (state_ != BgpState::kEstablished) break;
      ++stats_.updates_received;
      for (const auto& p : msg.update.withdrawn) {
        rib_in_.erase(p);
        if (on_route_) on_route_(p, nullptr, now);
      }
      for (const auto& p : msg.update.nlri) {
        RibEntry e{msg.update.next_hop, msg.update.as_path};
        rib_in_[p] = e;
        if (on_route_) on_route_(p, &rib_in_[p], now);
      }
      break;
    }
    case BgpMsgType::kNotification:
      ++stats_.session_resets;
      go_idle(now, /*retry=*/true);
      break;
  }
}

void bgp_connect(BgpSession& a, BgpSession& b, NanoTime latency,
                 MessageProcessor* a_in, MessageProcessor* b_in,
                 NanoTime now) {
  a.bind(&b, latency, a_in);
  b.bind(&a, latency, b_in);
  a.start(now);
  b.start(now);
}

}  // namespace albatross
